// Package cnsvorder implements the Cnsv-order primitive of the paper
// (Sections 5.4–5.5): the conservative ordering of epoch k, solved by
// reduction to Maj-validity consensus.
//
//	{Bad; New} ← Cnsv-order(O_delivered, O_notdelivered)
//
// Each process proposes the pair (O_delivered, O_notdelivered) for epoch k;
// the consensus decision D_k is the sequence of pairs proposed by a majority
// of processes. From D_k, every process deterministically computes (Figure 7)
//
//	Bad  — the messages it Opt-delivered in the wrong order (to Opt-undeliver,
//	       in reverse delivery order),
//	New  — the messages to A-deliver now,
//	Good — the prefix it Opt-delivered in the agreed order (kept, and
//	       committed when the epoch closes).
//
// The package also exposes CheckSpec, an executable version of the eight
// properties of Section 5.4 used by the test suite and the run-time trace
// checker.
package cnsvorder

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/mseq"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Input is one process's proposal to Cnsv-order for an epoch: the sequence
// it Opt-delivered and the sequence it received but did not deliver yet.
// Full requests (not just IDs) are carried so that any process can A-deliver
// a message it never received directly.
type Input struct {
	Dlv    []proto.Request
	NotDlv []proto.Request
}

// Marshal encodes the input as a consensus initial value.
func (in Input) Marshal() []byte {
	w := wire.NewWriter(64)
	encodeReqs(w, in.Dlv)
	encodeReqs(w, in.NotDlv)
	return w.Bytes()
}

// UnmarshalInput decodes a consensus initial value.
func UnmarshalInput(b []byte) (Input, error) {
	r := wire.NewReader(b)
	var in Input
	in.Dlv = decodeReqs(r)
	in.NotDlv = decodeReqs(r)
	if err := r.Err(); err != nil {
		return Input{}, fmt.Errorf("cnsvorder: decode input: %w", err)
	}
	return in, nil
}

func encodeReqs(w *wire.Writer, reqs []proto.Request) {
	w.Uint64(uint64(len(reqs)))
	for _, req := range reqs {
		req.Encode(w)
	}
}

func decodeReqs(r *wire.Reader) []proto.Request {
	n := r.Uint64()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil
	}
	reqs := make([]proto.Request, 0, n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, proto.DecodeRequest(r))
	}
	return reqs
}

// Result is the outcome of Cnsv-order at one process.
type Result struct {
	// Bad is the sequence of messages Opt-delivered in the wrong order, in
	// delivery order; the caller must Opt-undeliver them in *reverse* order
	// (footnote 2 of the paper).
	Bad []proto.RequestID
	// New is the sequence of messages to A-deliver now, in order, with full
	// payloads.
	New []proto.Request
	// Good is the prefix of O_delivered confirmed in the agreed order
	// (O_delivered ⊖ Bad). Transactional applications commit these (§6).
	Good []proto.RequestID
}

// ids projects requests onto their identifiers.
func ids(reqs []proto.Request) mseq.Seq[proto.RequestID] {
	if len(reqs) == 0 {
		return nil
	}
	out := make(mseq.Seq[proto.RequestID], len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	return out
}

// Compute runs lines 5–19 of Figure 7 on the consensus decision. ownInput
// must be the exact value this process proposed. The decision's pairs must
// satisfy Lemma 2 (all dlv_i sequences are prefixes of one another); a
// violation — impossible unless the sequencer protocol is broken — is
// reported as an error.
func Compute(ownInput Input, decision consensus.Decision) (Result, error) {
	return ComputeOpt(ownInput, decision, true)
}

// ComputeOpt is Compute with the undo-thriftiness optimization (lines 15–19
// of Figure 7) made optional — the A2 ablation of DESIGN.md measures how
// many unnecessary Opt-undelivers the optimization saves. Production code
// always wants thrifty == true.
func ComputeOpt(ownInput Input, decision consensus.Decision, thrifty bool) (Result, error) {
	// Decode every pair in D_k and index payloads.
	type pair struct {
		dlv    mseq.Seq[proto.RequestID]
		notdlv mseq.Seq[proto.RequestID]
	}
	pairs := make([]pair, 0, len(decision))
	payloads := make(map[proto.RequestID]proto.Request)
	for _, pv := range decision {
		in, err := UnmarshalInput(pv.Val)
		if err != nil {
			return Result{}, fmt.Errorf("cnsvorder: decision entry from %v: %w", pv.From, err)
		}
		for _, r := range in.Dlv {
			payloads[r.ID] = r
		}
		for _, r := range in.NotDlv {
			payloads[r.ID] = r
		}
		pairs = append(pairs, pair{dlv: ids(in.Dlv), notdlv: ids(in.NotDlv)})
	}
	for _, r := range ownInput.Dlv {
		payloads[r.ID] = r
	}
	for _, r := range ownInput.NotDlv {
		payloads[r.ID] = r
	}

	// Line 5: dlvmax ← longest dlv_i in D_k.
	var dlvmax mseq.Seq[proto.RequestID]
	for _, p := range pairs {
		if p.dlv.Len() > dlvmax.Len() {
			dlvmax = p.dlv
		}
	}
	// Lemma 2 sanity check: every dlv_i must be a prefix of dlvmax.
	for _, p := range pairs {
		if !dlvmax.HasPrefix(p.dlv) {
			return Result{}, fmt.Errorf("cnsvorder: decision violates the prefix property (Lemma 2): %v not a prefix of %v", p.dlv, dlvmax)
		}
	}

	oDlv := ids(ownInput.Dlv)
	var bad, newIDs, good mseq.Seq[proto.RequestID]
	// Lines 6–11.
	if dlvmax.HasPrefix(oDlv) {
		newIDs = mseq.Minus(dlvmax, oDlv)
		good = oDlv
	} else {
		good = mseq.CommonPrefix(oDlv, dlvmax)
		bad = mseq.Minus(oDlv, good)
	}

	// Lines 12–14: merge the not-delivered sequences deterministically and
	// schedule whatever is not already covered by dlvmax.
	notdlvSeqs := make([]mseq.Seq[proto.RequestID], 0, len(pairs))
	for _, p := range pairs {
		notdlvSeqs = append(notdlvSeqs, p.notdlv)
	}
	notdlv := mseq.Minus(mseq.Merge(notdlvSeqs...), dlvmax)
	newIDs = mseq.Concat(newIDs, notdlv)

	// Lines 15–19: undo thriftiness — do not undeliver messages that would
	// be immediately re-delivered in the same order.
	if prefix := mseq.CommonPrefix(bad, newIDs); thrifty && !prefix.IsEmpty() {
		good = mseq.Concat(good, prefix)
		bad = mseq.Minus(bad, prefix)
		newIDs = mseq.Minus(newIDs, prefix)
	}

	// Materialize New with payloads.
	newReqs := make([]proto.Request, 0, newIDs.Len())
	for _, id := range newIDs {
		req, ok := payloads[id]
		if !ok {
			return Result{}, fmt.Errorf("cnsvorder: no payload for scheduled message %v", id)
		}
		newReqs = append(newReqs, req)
	}
	return Result{Bad: bad, New: newReqs, Good: good}, nil
}

// FinalSequence returns the definitive delivery sequence of the epoch implied
// by a result: (O_delivered ⊖ Bad) ⊕ New. By the Agreement property it is
// identical at every correct process.
func FinalSequence(ownInput Input, res Result) mseq.Seq[proto.RequestID] {
	return mseq.Concat(mseq.Minus(ids(ownInput.Dlv), mseq.New(res.Bad...)), ids(res.New))
}
