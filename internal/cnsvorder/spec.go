package cnsvorder

import (
	"fmt"

	"repro/internal/mseq"
	"repro/internal/proto"
)

// SpecViolation describes a violated Cnsv-order property (Section 5.4).
type SpecViolation struct {
	Property string
	Detail   string
}

// Error implements the error interface.
func (v *SpecViolation) Error() string {
	return fmt.Sprintf("cnsvorder: %s violated: %s", v.Property, v.Detail)
}

// CheckSpec mechanically verifies the Cnsv-order specification of
// Section 5.4 over the inputs of *all* processes of Π (allInputs — the
// test's omniscient knowledge, keyed by process) and the results obtained by
// the processes that completed the call (results; crashed processes may be
// absent). groupSize is |Π|. It returns all violations found.
//
// Properties checked: Agreement, Unicity, Non-triviality, Validity, Undo
// legality, Undo consistency and Undo thriftiness. (Termination is checked
// by the callers' own timeouts.)
func CheckSpec(groupSize int, allInputs map[proto.NodeID]Input, results map[proto.NodeID]Result) []*SpecViolation {
	var violations []*SpecViolation
	report := func(prop, format string, args ...any) {
		violations = append(violations, &SpecViolation{Property: prop, Detail: fmt.Sprintf(format, args...)})
	}
	maj := proto.MajoritySize(groupSize)

	// Agreement: (O_delivered_p ⊖ Bad_p) ⊕ New_p identical for all p.
	var refSeq mseq.Seq[proto.RequestID]
	var refID proto.NodeID
	first := true
	for p, res := range results {
		final := FinalSequence(allInputs[p], res)
		if first {
			refSeq, refID, first = final, p, false
			continue
		}
		if !mseq.Equal(refSeq, final) {
			report("agreement", "%v computed %v, %v computed %v", refID, refSeq, p, final)
		}
	}

	for p, res := range results {
		in := allInputs[p]
		oDlv := ids(in.Dlv)
		badSeq := mseq.New(res.Bad...)
		newSeq := ids(res.New)
		kept := mseq.Minus(oDlv, badSeq)

		// Unicity: New_p ∩ (O_delivered_p ⊖ Bad_p) = ∅.
		if mseq.Intersects(newSeq, kept) {
			report("unicity", "%v: New %v intersects kept prefix %v", p, newSeq, kept)
		}

		// Undo legality: (O_delivered_p ⊖ Bad_p) ⊕ Bad_p = O_delivered_p.
		if !mseq.Equal(mseq.Concat(kept, badSeq), oDlv) {
			report("undo legality", "%v: Bad %v is not a suffix of O_delivered %v", p, badSeq, oDlv)
		}

		// Undo thriftiness: ⊓(Bad_p, New_p) = ε.
		if !mseq.CommonPrefix(badSeq, newSeq).IsEmpty() {
			report("undo thriftiness", "%v: Bad %v and New %v share prefix", p, badSeq, newSeq)
		}

		// Validity: every m ∈ New_p was delivered or received by someone.
		for _, req := range res.New {
			found := false
			for _, qin := range allInputs {
				if ids(qin.Dlv).Contains(req.ID) || ids(qin.NotDlv).Contains(req.ID) {
					found = true
					break
				}
			}
			if !found {
				report("validity", "%v: New contains %v which nobody proposed", p, req.ID)
			}
		}

		// Undo consistency: m ∈ Bad_p ⇒ a majority never Opt-delivered m.
		for _, id := range res.Bad {
			notDelivered := 0
			for _, qin := range allInputs {
				if !ids(qin.Dlv).Contains(id) {
					notDelivered++
				}
			}
			notDelivered += groupSize - len(allInputs) // unknown processes delivered nothing
			if notDelivered < maj {
				report("undo consistency", "%v: %v undone but only %d of %d processes lack it", p, id, notDelivered, groupSize)
			}
		}
	}

	// Non-triviality: any m known to a majority must be in the final
	// sequence of every process that completed.
	counts := make(map[proto.RequestID]int)
	for _, in := range allInputs {
		seen := make(map[proto.RequestID]struct{})
		for _, r := range in.Dlv {
			seen[r.ID] = struct{}{}
		}
		for _, r := range in.NotDlv {
			seen[r.ID] = struct{}{}
		}
		for id := range seen {
			counts[id]++
		}
	}
	for id, c := range counts {
		if c < maj {
			continue
		}
		for p, res := range results {
			if !FinalSequence(allInputs[p], res).Contains(id) {
				report("non-triviality", "%v: %v known to %d processes but absent from final sequence", p, id, c)
			}
		}
	}

	return violations
}
