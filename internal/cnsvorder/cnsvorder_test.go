package cnsvorder

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/mseq"
	"repro/internal/proto"
)

// req builds a request with a deterministic ID from a small integer.
func req(i int) proto.Request {
	return proto.Request{
		ID:  proto.RequestID{Client: proto.ClientID(0), Seq: uint64(i)},
		Cmd: []byte{byte(i)},
	}
}

func reqs(is ...int) []proto.Request {
	out := make([]proto.Request, len(is))
	for j, i := range is {
		out[j] = req(i)
	}
	return out
}

func rids(is ...int) []proto.RequestID {
	out := make([]proto.RequestID, len(is))
	for j, i := range is {
		out[j] = req(i).ID
	}
	return out
}

func decisionOf(inputs map[proto.NodeID]Input, members ...proto.NodeID) consensus.Decision {
	d := make(consensus.Decision, 0, len(members))
	for _, m := range members {
		d = append(d, consensus.ProposedValue{From: m, Val: inputs[m].Marshal()})
	}
	return d
}

func idsEqual(a []proto.RequestID, b []proto.RequestID) bool {
	return mseq.Equal(mseq.New(a...), mseq.New(b...))
}

func TestInputMarshalRoundTrip(t *testing.T) {
	in := Input{Dlv: reqs(1, 2), NotDlv: reqs(4, 3)}
	got, err := UnmarshalInput(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !idsEqual(ids(got.Dlv), rids(1, 2)) || !idsEqual(ids(got.NotDlv), rids(4, 3)) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if string(got.Dlv[0].Cmd) != "\x01" {
		t.Error("payload lost in round trip")
	}
	if _, err := UnmarshalInput([]byte{0xFF, 0xFF}); err == nil {
		t.Error("garbage input accepted")
	}
}

// TestFigure3 reproduces the run of Figure 3: three servers; the sequencer
// p0 crashes after ordering m3, m4; only p1 saw the ordering. A majority
// (p0, p1) Opt-delivered m3 before m4, so nobody reorders.
func TestFigure3(t *testing.T) {
	inputs := map[proto.NodeID]Input{
		0: {Dlv: reqs(1, 2, 3, 4)},               // crashed sequencer (proposed before crash? no — excluded below)
		1: {Dlv: reqs(1, 2, 3, 4)},               // received ordering
		2: {Dlv: reqs(1, 2), NotDlv: reqs(4, 3)}, // never saw the m3,m4 ordering
	}
	// Consensus majority: p1 and p2 (the sequencer is dead).
	d := decisionOf(inputs, 1, 2)

	resP1, err := Compute(inputs[1], d)
	if err != nil {
		t.Fatal(err)
	}
	if len(resP1.Bad) != 0 || len(resP1.New) != 0 {
		t.Fatalf("p1: Bad=%v New=%v, want both empty", resP1.Bad, resP1.New)
	}
	resP2, err := Compute(inputs[2], d)
	if err != nil {
		t.Fatal(err)
	}
	if len(resP2.Bad) != 0 {
		t.Fatalf("p2: Bad=%v, want empty", resP2.Bad)
	}
	if !idsEqual(ids(resP2.New), rids(3, 4)) {
		t.Fatalf("p2: New=%v, want [m3;m4]", ids(resP2.New))
	}
	results := map[proto.NodeID]Result{1: resP1, 2: resP2}
	if vs := CheckSpec(3, inputs, results); len(vs) != 0 {
		t.Fatalf("spec violations: %v", vs)
	}
	// Majority guarantee: m3 before m4 everywhere.
	final := FinalSequence(inputs[1], resP1)
	if final.Index(req(3).ID) > final.Index(req(4).ID) {
		t.Fatal("majority guarantee violated: m4 ordered before m3")
	}
}

// TestFigure4Phenomenon reproduces the Opt-undeliver scenario of Figure 4.
// With the strictly majority-inclusive Maj-validity consensus that the
// paper's Proposition 14 relies on, the minimal configuration is five
// servers: the minority partition {p0 (sequencer), p1} Opt-delivers m3, m4
// while the majority {p2, p3, p4} completes consensus without them and
// orders m4 before m3. p1 must then undo m3, m4 and redeliver them as
// m4, m3 — and the spec still holds.
func TestFigure4Phenomenon(t *testing.T) {
	inputs := map[proto.NodeID]Input{
		0: {Dlv: reqs(1, 2, 3, 4)},               // sequencer, partitioned minority
		1: {Dlv: reqs(1, 2, 3, 4)},               // received ordering, partitioned minority
		2: {Dlv: reqs(1, 2), NotDlv: reqs(4, 3)}, // majority side
		3: {Dlv: reqs(1, 2), NotDlv: reqs(4, 3)},
		4: {Dlv: reqs(1, 2), NotDlv: reqs(3, 4)},
	}
	// The majority {p2,p3,p4} decides alone; deterministic merge order puts
	// p2's notdlv first: {m4;m3}.
	d := decisionOf(inputs, 2, 3, 4)

	resP1, err := Compute(inputs[1], d)
	if err != nil {
		t.Fatal(err)
	}
	if !idsEqual(resP1.Bad, rids(3, 4)) {
		t.Fatalf("p1: Bad=%v, want [m3;m4]", resP1.Bad)
	}
	if !idsEqual(ids(resP1.New), rids(4, 3)) {
		t.Fatalf("p1: New=%v, want [m4;m3]", ids(resP1.New))
	}
	resP2, err := Compute(inputs[2], d)
	if err != nil {
		t.Fatal(err)
	}
	if len(resP2.Bad) != 0 || !idsEqual(ids(resP2.New), rids(4, 3)) {
		t.Fatalf("p2: Bad=%v New=%v", resP2.Bad, ids(resP2.New))
	}

	results := map[proto.NodeID]Result{1: resP1, 2: resP2}
	for _, p := range []proto.NodeID{3, 4} {
		r, err := Compute(inputs[p], d)
		if err != nil {
			t.Fatal(err)
		}
		results[p] = r
	}
	if vs := CheckSpec(5, inputs, results); len(vs) != 0 {
		t.Fatalf("spec violations: %v", vs)
	}
}

// TestUndoThriftiness exercises lines 15–19 of Figure 7: messages whose
// conservative order happens to match their optimistic order must not be
// undone even when they fell outside dlvmax.
func TestUndoThriftiness(t *testing.T) {
	// p1 delivered [m1;m2;m3]; the majority decided dlvmax=[m1] and the
	// merged notdlv re-schedules m2, m3 in the same order.
	inputs := map[proto.NodeID]Input{
		0: {Dlv: reqs(1, 2, 3)},
		1: {Dlv: reqs(1), NotDlv: reqs(2, 3)},
		2: {Dlv: reqs(1), NotDlv: reqs(2, 3)},
	}
	d := decisionOf(inputs, 1, 2)
	res, err := Compute(inputs[0], d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bad) != 0 {
		t.Fatalf("thriftiness violated: Bad=%v for an order-preserving redelivery", res.Bad)
	}
	if len(res.New) != 0 {
		t.Fatalf("p0 already delivered everything; New=%v", ids(res.New))
	}
	if !idsEqual(res.Good, rids(1, 2, 3)) {
		t.Fatalf("Good=%v, want [m1;m2;m3]", res.Good)
	}
}

// TestPartialThriftiness: only a prefix of Bad matches New; the rest must
// still be undone.
func TestPartialThriftiness(t *testing.T) {
	// p0 delivered [m1;m2;m3]; majority decided dlvmax=ε (nobody in the
	// decision delivered anything) and merged notdlv = [m1;m3;m2].
	inputs := map[proto.NodeID]Input{
		0: {Dlv: reqs(1, 2, 3)},
		1: {NotDlv: reqs(1, 3, 2)},
		2: {NotDlv: reqs(1, 3, 2)},
	}
	d := decisionOf(inputs, 1, 2)
	res, err := Compute(inputs[0], d)
	if err != nil {
		t.Fatal(err)
	}
	// m1 survives (same position); m2, m3 are undone and redelivered swapped.
	if !idsEqual(res.Bad, rids(2, 3)) {
		t.Fatalf("Bad=%v, want [m2;m3]", res.Bad)
	}
	if !idsEqual(ids(res.New), rids(3, 2)) {
		t.Fatalf("New=%v, want [m3;m2]", ids(res.New))
	}
	if !idsEqual(res.Good, rids(1)) {
		t.Fatalf("Good=%v, want [m1]", res.Good)
	}
}

func TestLemma2ViolationRejected(t *testing.T) {
	inputs := map[proto.NodeID]Input{
		0: {Dlv: reqs(1, 2)},
		1: {Dlv: reqs(2, 1)}, // not a prefix of the other — impossible run
	}
	d := decisionOf(inputs, 0, 1)
	if _, err := Compute(inputs[0], d); err == nil {
		t.Fatal("prefix violation accepted")
	}
}

func TestCorruptDecisionEntryRejected(t *testing.T) {
	d := consensus.Decision{{From: 0, Val: []byte{0xFF, 0xFF}}}
	if _, err := Compute(Input{}, d); err == nil {
		t.Fatal("corrupt decision accepted")
	}
}

func TestEmptyEpoch(t *testing.T) {
	inputs := map[proto.NodeID]Input{0: {}, 1: {}, 2: {}}
	d := decisionOf(inputs, 0, 1)
	res, err := Compute(inputs[2], d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bad) != 0 || len(res.New) != 0 || len(res.Good) != 0 {
		t.Fatalf("empty epoch produced %+v", res)
	}
}

func TestNewCarriesPayloads(t *testing.T) {
	inputs := map[proto.NodeID]Input{
		0: {},
		1: {NotDlv: reqs(7)},
		2: {NotDlv: reqs(7)},
	}
	d := decisionOf(inputs, 1, 2)
	res, err := Compute(inputs[0], d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.New) != 1 || string(res.New[0].Cmd) != "\x07" {
		t.Fatalf("payload missing from New: %+v", res.New)
	}
}

// TestPropRandomScenarios drives Compute + CheckSpec over randomized runs:
// a random sequencer order, a random prefix delivered per process, random
// permutations of the remainder as notdlv, and a random majority subset
// forming the decision. The full Section 5.4 specification must hold every
// time, and all processes must agree on the final sequence.
func TestPropRandomScenarios(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(5)     // 3..7 processes
			total := rng.Intn(8)     // messages in the epoch
			order := rng.Perm(total) // the sequencer's order

			inputs := make(map[proto.NodeID]Input, n)
			for p := 0; p < n; p++ {
				prefix := rng.Intn(total + 1)
				var in Input
				for _, i := range order[:prefix] {
					in.Dlv = append(in.Dlv, req(i))
				}
				// The rest, in random order, partially received.
				rest := append([]int(nil), order[prefix:]...)
				rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
				take := rng.Intn(len(rest) + 1)
				for _, i := range rest[:take] {
					in.NotDlv = append(in.NotDlv, req(i))
				}
				inputs[proto.NodeID(p)] = in
			}

			// Random majority subset as the decision.
			perm := rng.Perm(n)
			maj := proto.MajoritySize(n)
			k := maj + rng.Intn(n-maj+1)
			members := make([]proto.NodeID, 0, k)
			for _, i := range perm[:k] {
				members = append(members, proto.NodeID(i))
			}
			d := decisionOf(inputs, members...)

			results := make(map[proto.NodeID]Result, n)
			for p := 0; p < n; p++ {
				res, err := Compute(inputs[proto.NodeID(p)], d)
				if err != nil {
					t.Fatalf("p%d: %v", p, err)
				}
				results[proto.NodeID(p)] = res
			}
			if vs := CheckSpec(n, inputs, results); len(vs) != 0 {
				for _, v := range vs {
					t.Error(v)
				}
			}
		})
	}
}

func BenchmarkComputeEpoch(b *testing.B) {
	for _, size := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("msgs=%d", size), func(b *testing.B) {
			var all []proto.Request
			for i := 0; i < size; i++ {
				all = append(all, req(i))
			}
			inputs := map[proto.NodeID]Input{
				0: {Dlv: all},
				1: {Dlv: all[:size/2], NotDlv: all[size/2:]},
				2: {Dlv: all[:size/2], NotDlv: all[size/2:]},
			}
			d := decisionOf(inputs, 1, 2)
			own := inputs[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(own, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
