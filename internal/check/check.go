// Package check is the run-time trace checker: it records every protocol
// event through the core.Tracer interface and mechanically verifies the
// correctness propositions of the paper (Appendix A) plus the Cnsv-order
// specification of Section 5.4 on the actual trace of a run.
//
// Because the checker validates safety on whatever schedule really happened,
// tests do not depend on reproducing one exact interleaving: any run that
// violates Total order, At-most-once, External consistency or the Cnsv-order
// spec fails loudly.
//
// Checked properties:
//
//	Prop 1  Validity of request handling  (deliveries only for issued requests)
//	Prop 2/3 At-most-once request handling (no duplicate definitive delivery;
//	        undo must match the last optimistic delivery)
//	Prop 4  At-least-once request handling (quiescent runs: every issued
//	        request definitively delivered at every correct server)
//	Prop 5  Total order (definitive logs of correct servers are
//	        prefix-consistent, with identical positions and results)
//	Prop 7  External consistency (every adopted reply matches the definitive
//	        delivery position/result at every correct server)
//	§5.4    Cnsv-order spec per closed epoch (via cnsvorder.CheckSpec)
//	§4      Majority guarantee (follows from Prop 5 + §5.4; checked via both)
//	Reads   Read consistency: every adopted fast-path read was served from a
//	        prefix of the definitive order (no adopted read observed an
//	        optimistic entry that was later Opt-undelivered), and per-client
//	        read positions are monotonic over the client's prior adoptions
//	        (monotonic reads + read-your-writes).
//	Recovery A restarted replica delivers nothing between Restarted and
//	        Recovered, and the prefix it reports recovering to is a prefix of
//	        the group's observed definitive history — crash-recovery may
//	        never invent, reorder, or run ahead of the canonical order.
package check

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/backend"
	"repro/internal/cnsvorder"
	"repro/internal/core"
	"repro/internal/proto"
)

// Violation is one detected property violation.
type Violation struct {
	Property string
	Detail   string
}

// Error implements error.
func (v *Violation) Error() string { return v.Property + ": " + v.Detail }

// entry is one definitive-log slot at a server.
type entry struct {
	req    proto.RequestID
	pos    uint64
	result []byte
	epoch  uint64
	opt    bool // delivered optimistically (still tentative until epoch close)
}

type serverLog struct {
	log        []entry                 // current sequence: committed prefix + tentative suffix
	tentative  int                     // number of tentative (opt, current-epoch) entries at the tail
	delivered  map[proto.RequestID]int // definitive deliveries per request (for at-most-once)
	optPending map[proto.RequestID]struct{}
}

type epochData struct {
	inputs  map[proto.NodeID]cnsvorder.Input
	results map[proto.NodeID]cnsvorder.Result
}

// Checker records events and verifies properties. It implements
// core.Tracer and is safe for concurrent use.
type Checker struct {
	n int

	mu         sync.Mutex
	issued     map[proto.RequestID][]byte // req -> cmd
	servers    map[proto.NodeID]*serverLog
	epochs     map[uint64]*epochData
	adoptions  map[proto.RequestID]proto.Reply
	crashed    map[proto.NodeID]bool
	recovering map[proto.NodeID]bool
	recoveries int
	violations []*Violation

	// Read fast path state: adopted reads (kept apart from adoptions — a
	// fast-path read never appears in any server's definitive log), the
	// per-client adoption high-water position mirroring the client's
	// monotonic-prefix guard, and the (epoch, pos) of every Opt-undelivered
	// entry (an adopted read must never have observed one).
	readAdoptions map[proto.RequestID]proto.Reply
	clientHW      map[proto.NodeID]uint64
	undone        []undoneAt

	undeliveries int
	optCount     int
	aCount       int
}

// undoneAt records where one Opt-undelivered entry sat when it was undone.
type undoneAt struct {
	server proto.NodeID
	epoch  uint64
	pos    uint64
}

var _ core.Tracer = (*Checker)(nil)
var _ backend.RecoveryTracer = (*Checker)(nil)

// New creates a checker for a group of n servers.
func New(n int) *Checker {
	return &Checker{
		n:             n,
		issued:        make(map[proto.RequestID][]byte),
		servers:       make(map[proto.NodeID]*serverLog),
		epochs:        make(map[uint64]*epochData),
		adoptions:     make(map[proto.RequestID]proto.Reply),
		crashed:       make(map[proto.NodeID]bool),
		recovering:    make(map[proto.NodeID]bool),
		readAdoptions: make(map[proto.RequestID]proto.Reply),
		clientHW:      make(map[proto.NodeID]uint64),
	}
}

func (c *Checker) report(prop, format string, args ...any) {
	c.violations = append(c.violations, &Violation{Property: prop, Detail: fmt.Sprintf(format, args...)})
}

func (c *Checker) server(id proto.NodeID) *serverLog {
	sl, ok := c.servers[id]
	if !ok {
		sl = &serverLog{
			delivered:  make(map[proto.RequestID]int),
			optPending: make(map[proto.RequestID]struct{}),
		}
		c.servers[id] = sl
	}
	return sl
}

// MarkCrashed tells the checker that a server was crashed on purpose; its
// log is excluded from liveness and cross-server checks from that point on.
func (c *Checker) MarkCrashed(id proto.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed[id] = true
}

// Restarted implements backend.RecoveryTracer: the replica is booting after a
// crash and must stay silent — no deliveries, no epoch closes — until the
// matching Recovered. Its pre-crash log is retained as a canonical-history
// source (a replica recovering from its own WAL with no live peers rebuilds
// exactly that prefix), but the replica stays excluded from liveness and
// cross-server checks until it recovers.
func (c *Checker) Restarted(server proto.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed[server] = true
	c.recovering[server] = true
}

// Recovered implements backend.RecoveryTracer: the replica rejoined with a
// definitive prefix of length pos. That prefix must be a prefix of the
// group's observed history — recovery may replay and catch up, never invent.
// The checker rebuilds the replica's log as the canonical prefix[:pos] (from
// the longest committed log it has observed, the replica's own pre-crash log
// included); every later delivery is then checked against the group exactly
// as if the replica had never crashed.
func (c *Checker) Recovered(server proto.NodeID, epoch uint64, pos uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = epoch
	if !c.recovering[server] {
		c.report("recovery", "%v Recovered without a preceding Restarted", server)
	}
	delete(c.recovering, server)
	delete(c.crashed, server)
	c.recoveries++

	// The canonical history: the longest committed (non-tentative) prefix any
	// server has shown. The responder that served the catch-up had committed
	// through pos before it answered, and its trace events precede the
	// prober's Recovered, so a valid recovery always finds pos covered here.
	var canonical []entry
	for _, sl := range c.servers {
		if committed := len(sl.log) - sl.tentative; committed > len(canonical) {
			canonical = sl.log[:committed]
		}
	}
	if uint64(len(canonical)) < pos {
		c.report("recovery", "%v recovered to pos %d beyond the observed definitive history (%d)",
			server, pos, len(canonical))
		pos = uint64(len(canonical))
	}
	sl := c.server(server)
	sl.log = append([]entry(nil), canonical[:pos]...)
	sl.tentative = 0
	sl.delivered = make(map[proto.RequestID]int, pos)
	sl.optPending = make(map[proto.RequestID]struct{})
	for i := range sl.log {
		sl.log[i].opt = false
		sl.delivered[sl.log[i].req]++
	}
}

// Recoveries returns how many Recovered events were recorded.
func (c *Checker) Recoveries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recoveries
}

// Issue implements core.Tracer.
func (c *Checker) Issue(_ proto.NodeID, req proto.RequestID, cmd []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.issued[req] = append([]byte(nil), cmd...)
}

// OptDeliver implements core.Tracer.
func (c *Checker) OptDeliver(server proto.NodeID, epoch uint64, req proto.RequestID, pos uint64, result []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.optCount++
	sl := c.server(server)
	if c.recovering[server] {
		c.report("recovery", "%v Opt-delivered %v while recovering (before Recovered)", server, req)
	}
	if _, ok := c.issued[req]; !ok {
		c.report("prop1 validity", "%v Opt-delivered %v which was never issued", server, req)
	}
	if n := sl.delivered[req]; n > 0 {
		c.report("prop3 at-most-once", "%v Opt-delivered %v already definitively delivered", server, req)
	}
	if _, pending := sl.optPending[req]; pending {
		c.report("prop2 at-most-once", "%v Opt-delivered %v twice without undo", server, req)
	}
	if want := uint64(len(sl.log)) + 1; pos != want {
		c.report("position", "%v Opt-delivered %v at pos %d, expected %d", server, req, pos, want)
	}
	sl.log = append(sl.log, entry{req: req, pos: pos, result: append([]byte(nil), result...), epoch: epoch, opt: true})
	sl.tentative++
	sl.optPending[req] = struct{}{}
}

// OptUndeliver implements core.Tracer.
func (c *Checker) OptUndeliver(server proto.NodeID, epoch uint64, req proto.RequestID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.undeliveries++
	sl := c.server(server)
	if sl.tentative == 0 || len(sl.log) == 0 {
		c.report("undo", "%v Opt-undelivered %v with no tentative deliveries", server, req)
		return
	}
	top := sl.log[len(sl.log)-1]
	if top.req != req {
		c.report("undo order", "%v Opt-undelivered %v but last delivery was %v (must undo in reverse order)", server, req, top.req)
	}
	c.undone = append(c.undone, undoneAt{server: server, epoch: epoch, pos: top.pos})
	sl.log = sl.log[:len(sl.log)-1]
	sl.tentative--
	delete(sl.optPending, req)
}

// ADeliver implements core.Tracer.
func (c *Checker) ADeliver(server proto.NodeID, epoch uint64, req proto.RequestID, pos uint64, result []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aCount++
	sl := c.server(server)
	if c.recovering[server] {
		c.report("recovery", "%v A-delivered %v while recovering (before Recovered)", server, req)
	}
	if _, ok := c.issued[req]; !ok {
		c.report("prop1 validity", "%v A-delivered %v which was never issued", server, req)
	}
	if n := sl.delivered[req]; n > 0 {
		c.report("prop3 at-most-once", "%v A-delivered %v already definitively delivered", server, req)
	}
	if _, pending := sl.optPending[req]; pending {
		c.report("prop2 at-most-once", "%v A-delivered %v while its optimistic delivery stands (must Opt-undeliver first)", server, req)
	}
	if want := uint64(len(sl.log)) + 1; pos != want {
		c.report("position", "%v A-delivered %v at pos %d, expected %d", server, req, pos, want)
	}
	sl.log = append(sl.log, entry{req: req, pos: pos, result: append([]byte(nil), result...), epoch: epoch})
	sl.delivered[req]++
}

// EpochClose implements core.Tracer.
func (c *Checker) EpochClose(server proto.NodeID, epoch uint64, input cnsvorder.Input, result cnsvorder.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sl := c.server(server)
	// Every surviving optimistic delivery of the epoch becomes definitive.
	for i := len(sl.log) - sl.tentative; i < len(sl.log); i++ {
		e := &sl.log[i]
		e.opt = false
		sl.delivered[e.req]++
		delete(sl.optPending, e.req)
	}
	sl.tentative = 0

	ed, ok := c.epochs[epoch]
	if !ok {
		ed = &epochData{
			inputs:  make(map[proto.NodeID]cnsvorder.Input),
			results: make(map[proto.NodeID]cnsvorder.Result),
		}
		c.epochs[epoch] = ed
	}
	ed.inputs[server] = input
	ed.results[server] = result
}

// Adopt implements core.Tracer.
func (c *Checker) Adopt(client proto.NodeID, req proto.RequestID, reply proto.Reply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.adoptions[req]; dup {
		c.report("client", "request %v adopted twice (%v then %v)", req, prev, reply)
		return
	}
	c.adoptions[req] = reply
	if reply.Pos > c.clientHW[client] {
		c.clientHW[client] = reply.Pos
	}
}

// ReadAdopt implements core.Tracer. The monotonicity check mirrors the
// client's guard exactly: per-client adoption events arrive in the order the
// client performed them (they are emitted under the client's lock), so an
// adopted read below the client's running high-water position is a broken
// monotonic-reads / read-your-writes guarantee.
func (c *Checker) ReadAdopt(client proto.NodeID, req proto.RequestID, reply proto.Reply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, dup := c.readAdoptions[req]; dup {
		c.report("client", "read %v adopted twice (%v then %v)", req, prev, reply)
		return
	}
	if _, dup := c.adoptions[req]; dup {
		c.report("client", "read %v also adopted via the ordered path", req)
		return
	}
	if hw := c.clientHW[client]; reply.Pos < hw {
		c.report("read monotonicity",
			"client %v adopted read %v at pos %d below its adoption high-water %d", client, req, reply.Pos, hw)
	}
	c.readAdoptions[req] = reply
	if reply.Pos > c.clientHW[client] {
		c.clientHW[client] = reply.Pos
	}
}

// Undeliveries returns how many Opt-undeliver events were recorded.
func (c *Checker) Undeliveries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.undeliveries
}

// Deliveries returns the (optimistic, conservative) delivery counts.
func (c *Checker) Deliveries() (opt, cons int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.optCount, c.aCount
}

// Adoptions returns the number of adopted replies (ordered path only).
func (c *Checker) Adoptions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.adoptions)
}

// ReadAdoptions returns the number of adopted fast-path reads.
func (c *Checker) ReadAdoptions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.readAdoptions)
}

// Counts is a snapshot of the checker's trace counters, comparable with ==.
// The nemesis determinism regression compares two same-seed runs by it.
type Counts struct {
	Issued        int
	Adoptions     int
	ReadAdoptions int
	Opt           int
	Cons          int
	Undeliveries  int
	Recoveries    int
}

// Counts returns a snapshot of the trace counters.
func (c *Checker) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counts{
		Issued:        len(c.issued),
		Adoptions:     len(c.adoptions),
		ReadAdoptions: len(c.readAdoptions),
		Opt:           c.optCount,
		Cons:          c.aCount,
		Undeliveries:  c.undeliveries,
		Recoveries:    c.recoveries,
	}
}

// LivenessSettled reports whether the trace currently satisfies Prop 4's
// precondition-free reading: every issued request has reached every correct
// server (definitively delivered, or optimistically delivered and still
// standing). Unlike VerifyLiveness it reports a boolean instead of
// violations, so schedule executors can poll it to find the quiescent point
// between fault windows — liveness is checked when the system has settled,
// not only at the end of the run.
func (c *Checker) LivenessSettled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, sl := range c.servers {
		if c.crashed[id] {
			continue
		}
		for req := range c.issued {
			if sl.delivered[req] == 0 {
				if _, pending := sl.optPending[req]; !pending {
					return false
				}
			}
		}
	}
	// A server that never appeared in the trace at all also blocks settling:
	// with requests issued, n correct servers must each hold them.
	if len(c.issued) > 0 {
		correct := 0
		for id := range c.servers {
			if !c.crashed[id] {
				correct++
			}
		}
		crashedKnown := len(c.crashed)
		if correct+crashedKnown < c.n {
			return false
		}
	}
	return true
}

// Verify checks all safety properties over the trace recorded so far and
// returns the violations (streaming violations recorded during the run
// included). Call it when the cluster is quiescent.
func (c *Checker) Verify() []*Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]*Violation(nil), c.violations...)
	out = append(out, c.verifyTotalOrderLocked()...)
	out = append(out, c.verifyExternalConsistencyLocked()...)
	out = append(out, c.verifyEpochSpecsLocked()...)
	out = append(out, c.verifyReadConsistencyLocked()...)
	return out
}

// VerifyLiveness additionally checks Prop 4 (at-least-once): every issued
// request is definitively delivered at every correct server. Only meaningful
// once the run is quiescent and all issued requests were given time to
// complete.
func (c *Checker) VerifyLiveness() []*Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Violation
	for id, sl := range c.servers {
		if c.crashed[id] {
			continue
		}
		for req := range c.issued {
			definitive := sl.delivered[req] > 0
			if _, pending := sl.optPending[req]; !definitive && !pending {
				out = append(out, &Violation{
					Property: "prop4 at-least-once",
					Detail:   fmt.Sprintf("%v never delivered issued request %v", id, req),
				})
			}
		}
	}
	return out
}

// verifyTotalOrderLocked checks Prop 5: the definitive logs (committed
// prefix + still-standing optimistic suffix) of correct servers must be
// prefix-consistent with identical (request, position, result) triples.
func (c *Checker) verifyTotalOrderLocked() []*Violation {
	var out []*Violation
	var ref []entry
	var refID proto.NodeID
	have := false
	for id, sl := range c.servers {
		if c.crashed[id] {
			continue
		}
		if !have {
			ref, refID, have = sl.log, id, true
			continue
		}
		a, b := ref, sl.log
		n := min(len(a), len(b))
		for i := 0; i < n; i++ {
			if a[i].req != b[i].req || a[i].pos != b[i].pos || !bytes.Equal(a[i].result, b[i].result) {
				out = append(out, &Violation{
					Property: "prop5 total order",
					Detail: fmt.Sprintf("position %d: %v has (%v,%d,%q) but %v has (%v,%d,%q)",
						i+1, refID, a[i].req, a[i].pos, a[i].result, id, b[i].req, b[i].pos, b[i].result),
				})
				break
			}
		}
		if len(b) > len(a) {
			ref, refID = b, id
		}
	}
	return out
}

// verifyExternalConsistencyLocked checks Prop 7: an adopted reply must
// agree with every correct server's definitive record of that request.
func (c *Checker) verifyExternalConsistencyLocked() []*Violation {
	var out []*Violation
	for req, adopted := range c.adoptions {
		for id, sl := range c.servers {
			if c.crashed[id] {
				continue
			}
			for _, e := range sl.log {
				if e.req != req {
					continue
				}
				if e.pos != adopted.Pos || !bytes.Equal(e.result, adopted.Result) {
					out = append(out, &Violation{
						Property: "prop7 external consistency",
						Detail: fmt.Sprintf("client adopted (%d,%q) for %v but %v delivered it as (%d,%q)",
							adopted.Pos, adopted.Result, req, id, e.pos, e.result),
					})
				}
			}
		}
	}
	return out
}

// verifyReadConsistencyLocked checks the read-consistency proposition: every
// adopted fast-path read equals the state after some prefix of the final
// definitive order. A read adopted at (epoch k, pos x) observed exactly the
// definitive prefix through epoch k-1 plus epoch k's optimistic prefix of
// length x - base; that state is a definitive prefix if and only if no
// epoch-k optimistic entry at position ≤ x was later Opt-undelivered. The
// client's majority rule guarantees this (a majority of servers held prefix
// ≥ x in epoch k when they answered, their Cnsv-order proposals only grow
// within the epoch, and any Maj-validity decision intersects that majority,
// so dlvmax extends the prefix); a read observed only pre-rollback can thus
// never gather an adopting majority — which is exactly what this check
// enforces on the actual trace.
func (c *Checker) verifyReadConsistencyLocked() []*Violation {
	var out []*Violation
	for req, adopted := range c.readAdoptions {
		for _, u := range c.undone {
			if u.epoch == adopted.Epoch && u.pos <= adopted.Pos {
				out = append(out, &Violation{
					Property: "read consistency",
					Detail: fmt.Sprintf(
						"read %v adopted at epoch %d pos %d observed entry at pos %d that %v later Opt-undelivered",
						req, adopted.Epoch, adopted.Pos, u.pos, u.server),
				})
				break
			}
		}
	}
	return out
}

// verifyEpochSpecsLocked re-checks the Cnsv-order specification for every
// epoch that at least two servers closed.
func (c *Checker) verifyEpochSpecsLocked() []*Violation {
	var out []*Violation
	for epoch, ed := range c.epochs {
		if len(ed.results) == 0 {
			continue
		}
		for _, v := range cnsvorder.CheckSpec(c.n, ed.inputs, ed.results) {
			out = append(out, &Violation{
				Property: "cnsvorder " + v.Property,
				Detail:   fmt.Sprintf("epoch %d: %s", epoch, v.Detail),
			})
		}
	}
	return out
}
