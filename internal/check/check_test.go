package check

import (
	"strings"
	"testing"

	"repro/internal/cnsvorder"
	"repro/internal/proto"
)

func rid(i int) proto.RequestID {
	return proto.RequestID{Client: proto.ClientID(0), Seq: uint64(i)}
}

func issue(c *Checker, is ...int) {
	for _, i := range is {
		c.Issue(proto.ClientID(0), rid(i), []byte("cmd"))
	}
}

func hasViolation(vs []*Violation, prop string) bool {
	for _, v := range vs {
		if strings.HasPrefix(v.Property, prop) {
			return true
		}
	}
	return false
}

func TestCleanOptimisticTrace(t *testing.T) {
	c := New(3)
	issue(c, 1, 2)
	for _, s := range proto.Group(3) {
		c.OptDeliver(s, 0, rid(1), 1, []byte("a"))
		c.OptDeliver(s, 0, rid(2), 2, []byte("b"))
	}
	c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1, Result: []byte("a")})
	if vs := c.Verify(); len(vs) != 0 {
		t.Fatalf("clean trace flagged: %v", vs)
	}
	if vs := c.VerifyLiveness(); len(vs) != 0 {
		t.Fatalf("pending optimistic deliveries flagged as liveness failures: %v", vs)
	}
	if opt, cons := c.Deliveries(); opt != 6 || cons != 0 {
		t.Errorf("deliveries = %d/%d", opt, cons)
	}
}

func TestUnissuedRequestFlagged(t *testing.T) {
	c := New(3)
	c.OptDeliver(0, 0, rid(9), 1, nil)
	if !hasViolation(c.Verify(), "prop1") {
		t.Fatal("unissued delivery not flagged")
	}
	c2 := New(3)
	c2.ADeliver(0, 0, rid(9), 1, nil)
	if !hasViolation(c2.Verify(), "prop1") {
		t.Fatal("unissued A-delivery not flagged")
	}
}

func TestDuplicateDeliveryFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.OptDeliver(0, 0, rid(1), 2, nil) // same epoch, no undo in between
	if !hasViolation(c.Verify(), "prop2") {
		t.Fatal("duplicate optimistic delivery not flagged")
	}
}

func TestADeliverOverStandingOptFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.ADeliver(0, 0, rid(1), 2, nil) // must Opt-undeliver first (Prop 2)
	if !hasViolation(c.Verify(), "prop2") {
		t.Fatal("A-delivery over standing optimistic delivery not flagged")
	}
}

func TestRedeliveryAfterEpochCloseFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.EpochClose(0, 0, cnsvorder.Input{}, cnsvorder.Result{})
	c.OptDeliver(0, 1, rid(1), 2, nil) // definitive in epoch 0, redelivered in 1
	if !hasViolation(c.Verify(), "prop3") {
		t.Fatal("cross-epoch redelivery not flagged")
	}
}

func TestUndoReverseOrderEnforced(t *testing.T) {
	c := New(3)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.OptDeliver(0, 0, rid(2), 2, nil)
	c.OptUndeliver(0, 0, rid(1)) // wrong: rid(2) was last
	if !hasViolation(c.Verify(), "undo order") {
		t.Fatal("out-of-order undo not flagged")
	}
	c2 := New(3)
	c2.OptUndeliver(0, 0, rid(1)) // nothing delivered at all
	if !hasViolation(c2.Verify(), "undo") {
		t.Fatal("undo without delivery not flagged")
	}
}

func TestUndoThenRedeliverIsClean(t *testing.T) {
	c := New(3)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.OptDeliver(0, 0, rid(2), 2, nil)
	c.OptUndeliver(0, 0, rid(2))
	c.OptUndeliver(0, 0, rid(1))
	c.ADeliver(0, 0, rid(2), 1, nil)
	c.ADeliver(0, 0, rid(1), 2, nil)
	if vs := c.Verify(); len(vs) != 0 {
		t.Fatalf("legal undo/redeliver flagged: %v", vs)
	}
	if c.Undeliveries() != 2 {
		t.Errorf("undeliveries = %d", c.Undeliveries())
	}
}

func TestPositionGapFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1)
	c.OptDeliver(0, 0, rid(1), 5, nil) // first delivery must be pos 1
	if !hasViolation(c.Verify(), "position") {
		t.Fatal("position gap not flagged")
	}
}

func TestTotalOrderDivergenceFlagged(t *testing.T) {
	c := New(2)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.OptDeliver(0, 0, rid(2), 2, nil)
	c.OptDeliver(1, 0, rid(2), 1, nil) // p1 swapped the order
	c.OptDeliver(1, 0, rid(1), 2, nil)
	if !hasViolation(c.Verify(), "prop5") {
		t.Fatal("order divergence not flagged")
	}
}

func TestResultDivergenceFlagged(t *testing.T) {
	c := New(2)
	issue(c, 1)
	c.OptDeliver(0, 0, rid(1), 1, []byte("x"))
	c.OptDeliver(1, 0, rid(1), 1, []byte("y"))
	if !hasViolation(c.Verify(), "prop5") {
		t.Fatal("result divergence not flagged")
	}
}

func TestExternalInconsistencyFlagged(t *testing.T) {
	c := New(2)
	issue(c, 1)
	c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 2, Result: []byte("y")})
	c.OptDeliver(0, 0, rid(1), 1, []byte("x"))
	if !hasViolation(c.Verify(), "prop7") {
		t.Fatal("adopted/delivered mismatch not flagged")
	}
}

func TestCrashedServerExcluded(t *testing.T) {
	c := New(2)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.MarkCrashed(0)
	c.OptDeliver(1, 0, rid(2), 1, nil) // diverges from the crashed p0 — fine
	if vs := c.Verify(); len(vs) != 0 {
		t.Fatalf("crashed server's log still checked: %v", vs)
	}
	if vs := c.VerifyLiveness(); len(vs) != 1 {
		// p1 never delivered rid(1): a genuine liveness failure of the test
		// trace; p0 being crashed must not add a second one.
		t.Fatalf("liveness = %v", vs)
	}
}

func TestDoubleAdoptionFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1)
	r := proto.Reply{Req: rid(1), Pos: 1}
	c.Adopt(proto.ClientID(0), rid(1), r)
	c.Adopt(proto.ClientID(0), rid(1), r)
	if !hasViolation(c.Verify(), "client") {
		t.Fatal("double adoption not flagged")
	}
	if c.Adoptions() != 1 {
		t.Errorf("adoptions = %d", c.Adoptions())
	}
}

func TestEpochSpecChecked(t *testing.T) {
	// Two servers closing the same epoch with disagreeing final sequences
	// must trip the Cnsv-order agreement property.
	c := New(2)
	issue(c, 1, 2)
	req := func(i int) proto.Request { return proto.Request{ID: rid(i)} }
	c.EpochClose(0, 0, cnsvorder.Input{Dlv: []proto.Request{req(1)}}, cnsvorder.Result{Good: []proto.RequestID{rid(1)}})
	c.EpochClose(1, 0, cnsvorder.Input{Dlv: []proto.Request{req(2)}}, cnsvorder.Result{Good: []proto.RequestID{rid(2)}})
	if !hasViolation(c.Verify(), "cnsvorder agreement") {
		t.Fatalf("epoch disagreement not flagged: %v", c.Verify())
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Property: "p", Detail: "d"}
	if v.Error() != "p: d" {
		t.Errorf("Error() = %q", v.Error())
	}
}

// TestReadConsistencyFlagged: a fast-path read adopted at a prefix that a
// server later rolls back is the read-consistency violation — the failure
// the majority-validated adoption rule exists to make impossible.
func TestReadConsistencyFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, []byte("a"))
	c.OptDeliver(0, 0, rid(2), 2, []byte("b"))
	c.ReadAdopt(proto.ClientID(0), rid(7), proto.Reply{Req: rid(7), Epoch: 0, Pos: 2, Result: []byte("b")})
	c.OptUndeliver(0, 0, rid(2)) // pos 2 — inside the adopted read's prefix
	if !hasViolation(c.Verify(), "read consistency") {
		t.Fatal("read over a rolled-back prefix not flagged")
	}
}

// TestReadBeforeRollbackPointIsClean: an undo strictly beyond the adopted
// read's position does not invalidate the read, and an undo in a different
// epoch is judged against that epoch only.
func TestReadBeforeRollbackPointIsClean(t *testing.T) {
	c := New(3)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, []byte("a"))
	c.OptDeliver(0, 0, rid(2), 2, []byte("b"))
	c.ReadAdopt(proto.ClientID(0), rid(7), proto.Reply{Req: rid(7), Epoch: 0, Pos: 1, Result: []byte("a")})
	c.OptUndeliver(0, 0, rid(2)) // pos 2 > the read's pos 1: the read survives
	if vs := c.Verify(); hasViolation(vs, "read consistency") {
		t.Fatalf("read below the rollback point flagged: %v", vs)
	}
	// Same shape, but the read was adopted in a later epoch: epoch 1's pos 1
	// is not epoch 0's pos 1.
	c2 := New(3)
	issue(c2, 1, 2)
	c2.OptDeliver(0, 0, rid(1), 1, []byte("a"))
	c2.ReadAdopt(proto.ClientID(0), rid(8), proto.Reply{Req: rid(8), Epoch: 1, Pos: 1, Result: []byte("a")})
	c2.OptUndeliver(0, 0, rid(1))
	if vs := c2.Verify(); hasViolation(vs, "read consistency") {
		t.Fatalf("cross-epoch undo flagged against the read: %v", vs)
	}
}

// TestReadMonotonicityFlagged: an adopted read below the client's running
// adoption high-water mark breaks monotonic reads / read-your-writes.
func TestReadMonotonicityFlagged(t *testing.T) {
	c := New(3)
	issue(c, 1)
	c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 4, Result: []byte("a")})
	c.ReadAdopt(proto.ClientID(0), rid(2), proto.Reply{Req: rid(2), Pos: 3})
	if !hasViolation(c.Verify(), "read monotonicity") {
		t.Fatal("read below the adoption high-water not flagged")
	}
	// Another client's high-water does not constrain this one.
	c2 := New(3)
	issue(c2, 1)
	c2.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 4, Result: []byte("a")})
	c2.ReadAdopt(proto.ClientID(1), rid(2), proto.Reply{Req: rid(2), Pos: 3})
	if vs := c2.Verify(); hasViolation(vs, "read monotonicity") {
		t.Fatalf("cross-client high-water applied: %v", vs)
	}
}

// TestReadDoubleAdoptionFlagged: one read adopted twice, or via both paths.
func TestReadDoubleAdoptionFlagged(t *testing.T) {
	c := New(3)
	c.ReadAdopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1})
	c.ReadAdopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 2})
	if !hasViolation(c.Verify(), "client") {
		t.Fatal("double read adoption not flagged")
	}
	c2 := New(3)
	issue(c2, 1)
	c2.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1})
	c2.ReadAdopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1})
	if !hasViolation(c2.Verify(), "client") {
		t.Fatal("read adopted via both paths not flagged")
	}
	if c2.ReadAdoptions() != 0 {
		t.Errorf("rejected read counted: %d", c2.ReadAdoptions())
	}
}
