package check

import (
	"strings"
	"testing"

	"repro/internal/cnsvorder"
	"repro/internal/proto"
)

// TestEveryPropositionFiresExclusively injects one minimal violation per
// checker proposition and asserts the checker reports exactly that property —
// nothing else co-fires. The older per-property tests only assert presence;
// this table is the guard against a silently-dead check (a property that
// never fires would fail its row) and against cascades (a fabricated bad
// trace tripping unrelated checks would hide which proposition caught it,
// which matters when the nemesis shrinker labels failures by property).
//
// scope selects the verifier the assertion runs against: most rows are
// judged on Verify()+VerifyLiveness() combined ("both"); rows whose injected
// corruption necessarily leaves the per-server books inconsistent (a
// wrong-order undo) are judged on Verify() alone, and the liveness row on
// VerifyLiveness() alone with Verify() required clean.
func TestEveryPropositionFiresExclusively(t *testing.T) {
	const (
		both = iota
		safetyOnly
		livenessOnly
	)
	cases := []struct {
		name  string
		n     int
		want  string // exact property, or prefix if prefix==true
		pfx   bool
		scope int
		trace func(c *Checker)
	}{
		{
			name: "prop1 validity", n: 3, want: "prop1 validity",
			trace: func(c *Checker) {
				c.OptDeliver(0, 0, rid(9), 1, nil) // never issued
			},
		},
		{
			name: "prop2 at-most-once", n: 3, want: "prop2 at-most-once",
			trace: func(c *Checker) {
				issue(c, 1)
				c.OptDeliver(0, 0, rid(1), 1, nil)
				c.OptDeliver(0, 0, rid(1), 2, nil) // no undo in between
			},
		},
		{
			name: "prop3 at-most-once", n: 3, want: "prop3 at-most-once",
			trace: func(c *Checker) {
				issue(c, 1)
				c.OptDeliver(0, 0, rid(1), 1, nil)
				c.EpochClose(0, 0, cnsvorder.Input{Dlv: []proto.Request{{ID: rid(1)}}},
					cnsvorder.Result{Good: []proto.RequestID{rid(1)}})
				c.OptDeliver(0, 1, rid(1), 2, nil) // already definitive
			},
		},
		{
			name: "position", n: 3, want: "position",
			trace: func(c *Checker) {
				issue(c, 1)
				c.OptDeliver(0, 0, rid(1), 5, nil) // first delivery must be pos 1
			},
		},
		{
			name: "undo without delivery", n: 3, want: "undo",
			trace: func(c *Checker) {
				c.OptUndeliver(0, 0, rid(1))
			},
		},
		{
			name: "undo order", n: 3, want: "undo order", scope: safetyOnly,
			trace: func(c *Checker) {
				issue(c, 1, 2)
				c.OptDeliver(0, 0, rid(1), 1, nil)
				c.OptDeliver(0, 0, rid(2), 2, nil)
				c.OptUndeliver(0, 0, rid(1)) // rid(2) was last in
			},
		},
		{
			name: "prop4 at-least-once", n: 2, want: "prop4 at-least-once", scope: livenessOnly,
			trace: func(c *Checker) {
				issue(c, 1, 2)
				c.ADeliver(0, 0, rid(1), 1, nil)
				c.ADeliver(0, 0, rid(2), 2, nil)
				c.ADeliver(1, 0, rid(1), 1, nil) // p1 never delivers rid(2)
			},
		},
		{
			name: "prop5 order divergence", n: 2, want: "prop5 total order",
			trace: func(c *Checker) {
				issue(c, 1, 2)
				c.ADeliver(0, 0, rid(1), 1, nil)
				c.ADeliver(0, 0, rid(2), 2, nil)
				c.ADeliver(1, 0, rid(2), 1, nil)
				c.ADeliver(1, 0, rid(1), 2, nil)
			},
		},
		{
			name: "prop5 result divergence", n: 2, want: "prop5 total order",
			trace: func(c *Checker) {
				issue(c, 1)
				c.ADeliver(0, 0, rid(1), 1, []byte("x"))
				c.ADeliver(1, 0, rid(1), 1, []byte("y"))
			},
		},
		{
			name: "prop7 external consistency", n: 2, want: "prop7 external consistency",
			trace: func(c *Checker) {
				issue(c, 1)
				c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 2, Result: []byte("y")})
				c.ADeliver(0, 0, rid(1), 1, []byte("x"))
			},
		},
		{
			name: "cnsvorder spec", n: 2, want: "cnsvorder", pfx: true, scope: safetyOnly,
			trace: func(c *Checker) {
				issue(c, 1, 2)
				c.EpochClose(0, 0, cnsvorder.Input{Dlv: []proto.Request{{ID: rid(1)}}},
					cnsvorder.Result{Good: []proto.RequestID{rid(1)}})
				c.EpochClose(1, 0, cnsvorder.Input{Dlv: []proto.Request{{ID: rid(2)}}},
					cnsvorder.Result{Good: []proto.RequestID{rid(2)}})
			},
		},
		{
			name: "client double adoption", n: 3, want: "client",
			trace: func(c *Checker) {
				issue(c, 1)
				r := proto.Reply{Req: rid(1), Pos: 1}
				c.Adopt(proto.ClientID(0), rid(1), r)
				c.Adopt(proto.ClientID(0), rid(1), r)
			},
		},
		{
			name: "client read via both paths", n: 3, want: "client",
			trace: func(c *Checker) {
				issue(c, 1)
				c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1})
				c.ReadAdopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1})
			},
		},
		{
			name: "read monotonicity", n: 3, want: "read monotonicity",
			trace: func(c *Checker) {
				issue(c, 1)
				c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 4, Result: []byte("a")})
				c.ReadAdopt(proto.ClientID(0), rid(2), proto.Reply{Req: rid(2), Pos: 3})
			},
		},
		{
			name: "read consistency", n: 3, want: "read consistency",
			trace: func(c *Checker) {
				issue(c, 1, 2)
				c.OptDeliver(0, 0, rid(1), 1, []byte("a"))
				c.OptDeliver(0, 0, rid(2), 2, []byte("b"))
				c.ReadAdopt(proto.ClientID(0), rid(7), proto.Reply{Req: rid(7), Epoch: 0, Pos: 2, Result: []byte("b")})
				c.OptUndeliver(0, 0, rid(2)) // rolls back inside the read's prefix
				c.ADeliver(0, 0, rid(2), 2, []byte("b"))
			},
		},
		{
			name: "recovery delivery while recovering", n: 3, want: "recovery",
			trace: func(c *Checker) {
				issue(c, 1)
				c.Restarted(0)
				c.ADeliver(0, 0, rid(1), 1, nil) // must stay silent until Recovered
			},
		},
		{
			name: "recovery beyond observed history", n: 2, want: "recovery",
			trace: func(c *Checker) {
				issue(c, 1)
				c.ADeliver(1, 0, rid(1), 1, nil)
				c.Restarted(0)
				c.Recovered(0, 1, 5) // group history only reaches pos 1
			},
		},
		{
			name: "recovery without restart", n: 2, want: "recovery",
			trace: func(c *Checker) {
				c.Recovered(0, 0, 0)
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.n)
			tc.trace(c)
			var vs []*Violation
			switch tc.scope {
			case safetyOnly:
				vs = c.Verify()
			case livenessOnly:
				if sv := c.Verify(); len(sv) != 0 {
					t.Fatalf("safety verifier tripped on a liveness-only trace: %v", sv)
				}
				vs = c.VerifyLiveness()
			default:
				vs = append(c.Verify(), c.VerifyLiveness()...)
			}
			if len(vs) == 0 {
				t.Fatalf("injected %q violation not detected — dead check", tc.want)
			}
			for _, v := range vs {
				match := v.Property == tc.want
				if tc.pfx {
					match = strings.HasPrefix(v.Property, tc.want)
				}
				if !match {
					t.Errorf("unrelated property co-fired: got %q (detail: %s), want only %q",
						v.Property, v.Detail, tc.want)
				}
			}
		})
	}
}

// TestRecoveryRebuild drives the positive recovery path: a replica crashes,
// the group moves on, the replica recovers to the group's position, and its
// rebuilt prefix participates in every later check exactly as if it had never
// crashed — including catching post-recovery divergence.
func TestRecoveryRebuild(t *testing.T) {
	c := New(2)
	issue(c, 1, 2, 3)
	c.ADeliver(0, 0, rid(1), 1, []byte("a"))
	c.ADeliver(1, 0, rid(1), 1, []byte("a"))
	c.MarkCrashed(1)
	c.ADeliver(0, 0, rid(2), 2, []byte("b")) // group moves on while 1 is down
	c.Restarted(1)
	c.Recovered(1, 1, 2) // catch-up adopted the 2-entry prefix
	c.ADeliver(0, 1, rid(3), 3, []byte("c"))
	c.ADeliver(1, 1, rid(3), 3, []byte("c"))
	if vs := append(c.Verify(), c.VerifyLiveness()...); len(vs) != 0 {
		t.Fatalf("clean recovery trace reported violations: %v", vs)
	}
	if got := c.Recoveries(); got != 1 {
		t.Fatalf("Recoveries() = %d, want 1", got)
	}

	// A post-recovery divergence must be caught against the rebuilt prefix.
	issue(c, 4)
	c.ADeliver(0, 1, rid(4), 4, []byte("d"))
	c.ADeliver(1, 1, rid(4), 4, []byte("e")) // result diverges at the recovered node
	found := false
	for _, v := range c.Verify() {
		if v.Property == "prop5 total order" {
			found = true
		}
	}
	if !found {
		t.Fatal("post-recovery divergence not checked against the rebuilt prefix")
	}
}

// TestLivenessSettled drives the quiescence predicate the nemesis executor
// polls between fault windows.
func TestLivenessSettled(t *testing.T) {
	c := New(2)
	if !c.LivenessSettled() {
		t.Fatal("empty trace must count as settled")
	}
	issue(c, 1)
	if c.LivenessSettled() {
		t.Fatal("issued-but-undelivered must not be settled (no servers seen)")
	}
	c.OptDeliver(0, 0, rid(1), 1, nil)
	if c.LivenessSettled() {
		t.Fatal("one of two servers delivered: not settled")
	}
	c.OptDeliver(1, 0, rid(1), 1, nil)
	if !c.LivenessSettled() {
		t.Fatal("standing optimistic deliveries at every correct server settle Prop 4")
	}
	issue(c, 2)
	if c.LivenessSettled() {
		t.Fatal("fresh issue must unsettle")
	}
	c.ADeliver(0, 0, rid(2), 2, nil)
	c.MarkCrashed(1)
	if !c.LivenessSettled() {
		t.Fatal("a crashed server must not block settling")
	}
}

// TestCounts pins the snapshot used by the seed-determinism regression.
func TestCounts(t *testing.T) {
	c := New(2)
	issue(c, 1, 2)
	c.OptDeliver(0, 0, rid(1), 1, nil)
	c.OptDeliver(0, 0, rid(2), 2, nil)
	c.OptUndeliver(0, 0, rid(2))
	c.ADeliver(0, 0, rid(2), 2, nil)
	c.Adopt(proto.ClientID(0), rid(1), proto.Reply{Req: rid(1), Pos: 1})
	c.ReadAdopt(proto.ClientID(0), rid(3), proto.Reply{Req: rid(3), Pos: 2})
	got := c.Counts()
	want := Counts{Issued: 2, Adoptions: 1, ReadAdoptions: 1, Opt: 2, Cons: 1, Undeliveries: 1}
	if got != want {
		t.Fatalf("Counts() = %+v, want %+v", got, want)
	}
}
