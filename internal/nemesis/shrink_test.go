package nemesis

import (
	"testing"
	"time"
)

// mkSteps builds a schedule of n distinguishable heal steps (the kind is
// irrelevant to the synthetic oracles; At keeps them distinguishable).
func mkSteps(n int) *Schedule {
	s := &Schedule{}
	for i := 0; i < n; i++ {
		s.Steps = append(s.Steps, Step{At: time.Duration(i+1) * time.Millisecond, Kind: StepHeal})
	}
	return s
}

// hasAt reports whether the schedule retains the step stamped t ms.
func hasAt(s *Schedule, t int) bool {
	for _, st := range s.Steps {
		if st.At == time.Duration(t)*time.Millisecond {
			return true
		}
	}
	return false
}

// TestShrinkTwoStepCause: the failure needs steps 3 AND 7 together; ddmin
// must land on exactly those two steps, in order.
func TestShrinkTwoStepCause(t *testing.T) {
	fails := func(s *Schedule) bool { return hasAt(s, 3) && hasAt(s, 7) }
	got := Shrink(mkSteps(12), fails)
	if len(got.Steps) != 2 || !hasAt(got, 3) || !hasAt(got, 7) {
		t.Fatalf("want exactly steps @3ms and @7ms, got:\n%s", got.Encode())
	}
	if got.Steps[0].At > got.Steps[1].At {
		t.Fatal("shrunk schedule lost step order")
	}
}

// TestShrinkSingleCause: one causal step out of many shrinks to length 1.
func TestShrinkSingleCause(t *testing.T) {
	fails := func(s *Schedule) bool { return hasAt(s, 5) }
	got := Shrink(mkSteps(9), fails)
	if len(got.Steps) != 1 || !hasAt(got, 5) {
		t.Fatalf("want only step @5ms, got:\n%s", got.Encode())
	}
}

// TestShrinkDeterministic: same input and oracle ⇒ byte-identical output.
func TestShrinkDeterministic(t *testing.T) {
	fails := func(s *Schedule) bool { return hasAt(s, 2) && hasAt(s, 9) && hasAt(s, 10) }
	a := Shrink(mkSteps(14), fails).Encode()
	b := Shrink(mkSteps(14), fails).Encode()
	if a != b {
		t.Fatalf("nondeterministic shrink:\n%s\nvs\n%s", a, b)
	}
}

// TestShrinkAlreadyMinimal: a minimal schedule terminates unchanged, and
// the oracle is consulted a bounded number of times (no infinite loop).
func TestShrinkAlreadyMinimal(t *testing.T) {
	calls := 0
	fails := func(s *Schedule) bool { calls++; return hasAt(s, 1) && hasAt(s, 2) }
	got := Shrink(mkSteps(2), fails)
	if len(got.Steps) != 2 {
		t.Fatalf("minimal schedule changed: %s", got.Encode())
	}
	if calls == 0 || calls > 16 {
		t.Fatalf("oracle consulted %d times", calls)
	}
}

// TestShrinkOneMinimal: ddmin's guarantee is 1-minimality — removing any
// single step from the result makes the failure disappear.
func TestShrinkOneMinimal(t *testing.T) {
	// Failure: at least 3 of the even steps present.
	fails := func(s *Schedule) bool {
		n := 0
		for _, st := range s.Steps {
			if (st.At/time.Millisecond)%2 == 0 {
				n++
			}
		}
		return n >= 3
	}
	got := Shrink(mkSteps(16), fails)
	if !fails(got) {
		t.Fatalf("shrunk schedule no longer fails:\n%s", got.Encode())
	}
	for i := range got.Steps {
		cand := &Schedule{Steps: append(append([]Step(nil), got.Steps[:i]...), got.Steps[i+1:]...)}
		if fails(cand) {
			t.Fatalf("not 1-minimal: still fails without step %d:\n%s", i, got.Encode())
		}
	}
}

// TestShrinkEmptyAndSingleton: degenerate inputs pass through untouched.
func TestShrinkEmptyAndSingleton(t *testing.T) {
	always := func(*Schedule) bool { return true }
	if got := Shrink(&Schedule{}, always); len(got.Steps) != 0 {
		t.Fatalf("empty schedule grew: %s", got.Encode())
	}
	if got := Shrink(mkSteps(1), always); len(got.Steps) != 1 {
		t.Fatalf("singleton changed: %s", got.Encode())
	}
}
