package nemesis

// Shrink reduces a failing schedule to a locally-minimal one with the ddmin
// delta-debugging algorithm: starting at granularity 2 it tries removing
// each chunk of steps (and keeping each chunk alone), recursing to finer
// granularity until no single chunk can be removed — so the result is
// 1-minimal: removing ANY single remaining step makes the failure disappear.
//
// fails must report whether a candidate schedule still reproduces the
// failure; it is the caller's oracle (typically: run the schedule and check
// Result.Failed(), treating an invalid candidate as not-failing). Shrinking
// is fully deterministic for a deterministic oracle: candidates are
// enumerated in a fixed order and steps keep their times, shards and
// relative order throughout. Shrink assumes fails(s) is true on entry; it
// returns s unchanged (as a copy) when s is already minimal or empty.
func Shrink(s *Schedule, fails func(*Schedule) bool) *Schedule {
	steps := append([]Step(nil), s.Steps...)
	n := 2
	for len(steps) >= 2 {
		chunk := (len(steps) + n - 1) / n // ceil: n chunks cover every step
		reduced := false
		// Pass 1: try each complement (remove one chunk).
		for i := 0; i < len(steps); i += chunk {
			cand := make([]Step, 0, len(steps)-chunk)
			cand = append(cand, steps[:i]...)
			if i+chunk < len(steps) {
				cand = append(cand, steps[i+chunk:]...)
			}
			if len(cand) < len(steps) && fails(&Schedule{Steps: cand}) {
				steps = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		// Pass 2: try each chunk alone (fast path to tiny causes).
		if n < len(steps) {
			for i := 0; i < len(steps); i += chunk {
				end := min(i+chunk, len(steps))
				cand := append([]Step(nil), steps[i:end]...)
				if len(cand) < len(steps) && fails(&Schedule{Steps: cand}) {
					steps = cand
					n = 2
					reduced = true
					break
				}
			}
		}
		if reduced {
			continue
		}
		if n >= len(steps) {
			break // singleton granularity and nothing removable: 1-minimal
		}
		n = min(n*2, len(steps))
	}
	out := (&Schedule{Steps: steps}).Clone()
	out.Normalize()
	return out
}
