package nemesis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/proto"
)

// sampleSchedule exercises every verb and operand form once.
func sampleSchedule() *Schedule {
	return &Schedule{Steps: []Step{
		{At: 5 * time.Millisecond, Shard: 0, Kind: StepSlow, A: Replica(0), B: Client(1),
			Min: time.Millisecond, Max: 3 * time.Millisecond},
		{At: 8 * time.Millisecond, Shard: 1, Kind: StepPartition,
			Groups: [][]int{{0, 1}, {2, 3, 4}}, ClientSide: 1},
		{At: 10 * time.Millisecond, Shard: 1, Kind: StepSuspect, A: Replica(2), B: Replica(0)},
		{At: 12 * time.Millisecond, Shard: 0, Kind: StepDrop, MsgKind: proto.KindSeqOrder,
			A: Replica(0), B: Any, Count: 2},
		{At: 13 * time.Millisecond, Shard: 0, Kind: StepCrash, A: Replica(0)},
		{At: 14 * time.Millisecond, Shard: 0, Kind: StepSuspect, A: Any, B: Replica(0)},
		{At: 20 * time.Millisecond, Shard: 1, Kind: StepHeal},
		{At: 21 * time.Millisecond, Shard: 1, Kind: StepTrust, A: Any, B: Replica(0)},
		{At: 22 * time.Millisecond, Shard: 0, Kind: StepRestart, A: Replica(0)},
		{At: 24 * time.Millisecond, Shard: 0, Kind: StepBlock, A: Replica(1), B: Replica(2)},
		{At: 25 * time.Millisecond, Shard: 0, Kind: StepBlockOneWay, A: Replica(2), B: Replica(1)},
		{At: 26 * time.Millisecond, Shard: 0, Kind: StepUnblock, A: Replica(1), B: Replica(2)},
		{At: 30 * time.Millisecond, Shard: 0, Kind: StepRegions,
			Groups: [][]int{{0, 1}, {2}}, Min: 0, Max: 200 * time.Microsecond,
			Min2: time.Millisecond, Max2: 4 * time.Millisecond},
		{At: 33 * time.Millisecond, Shard: 0, Kind: StepFast},
		{At: 35 * time.Millisecond, Shard: 0, Kind: StepDup, MsgKind: proto.KindReply,
			A: Any, B: Client(0), Count: 3},
		{At: 36 * time.Millisecond, Shard: 0, Kind: StepReorder, MsgKind: proto.KindRead,
			A: Client(0), B: Replica(1), Count: 1, Delay: 2 * time.Millisecond},
		{At: 40 * time.Millisecond, Shard: 0, Kind: StepCheckpoint},
	}}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	s := sampleSchedule()
	text := s.Encode()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Encode): %v\n%s", err, text)
	}
	if got := parsed.Encode(); got != text {
		t.Fatalf("round trip not byte-identical:\n--- encoded ---\n%s--- reparsed ---\n%s", text, got)
	}
	if len(parsed.Steps) != len(s.Steps) {
		t.Fatalf("lost steps: %d != %d", len(parsed.Steps), len(s.Steps))
	}
}

func TestParseSkipsCommentsAndCanonicalizes(t *testing.T) {
	text := `
# a hand-written schedule, with sloppy whitespace
  @10ms   s0   heal

@5ms s0 crash 1
# trailing comment
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	want := header + "\n@5ms s0 crash 1\n@10ms s0 heal\n"
	if got := s.Encode(); got != want {
		t.Fatalf("canonical form:\n%q\nwant\n%q", got, want)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"@5ms s0 explode 1",             // unknown verb
		"5ms s0 heal",                   // missing @
		"@5ms x0 heal",                  // bad shard
		"@5ms s0 crash",                 // missing operand
		"@5ms s0 slow 0->1 1ms",         // short slow
		"@5ms s0 drop nonsense 0->1 x1", // unknown kind
		"@5ms s0 reorder reply 0->1 x1", // missing by
		"@5ms s0 partition 0 1 | 2",     // missing clients=
		"@5ms s0 dup reply 0->1 y3",     // bad count
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidateEnforcesModelBoundaries(t *testing.T) {
	ok := func(s *Schedule) error { return s.Validate(5, 2) }
	// The sample (built for n=5, shards=2) is legal.
	if err := ok(sampleSchedule()); err != nil {
		t.Fatalf("sample rejected: %v", err)
	}
	// A restart refills the crash budget: two down, one back, one more down.
	refill := Schedule{Steps: []Step{
		{Kind: StepCrash, A: Replica(0)},
		{At: 1 * time.Millisecond, Kind: StepCrash, A: Replica(1)},
		{At: 2 * time.Millisecond, Kind: StepRestart, A: Replica(0)},
		{At: 3 * time.Millisecond, Kind: StepCrash, A: Replica(2)},
	}}
	if err := ok(&refill); err != nil {
		t.Fatalf("restart did not refill the crash budget: %v", err)
	}
	cases := []struct {
		name string
		s    Schedule
	}{
		{"seqorder drop without crash", Schedule{Steps: []Step{
			{Kind: StepDrop, MsgKind: proto.KindSeqOrder, A: Replica(0), B: Any, Count: 1},
		}}},
		{"seqorder drop after the crash", Schedule{Steps: []Step{
			{At: 1 * time.Millisecond, Kind: StepCrash, A: Replica(0)},
			{At: 5 * time.Millisecond, Kind: StepDrop, MsgKind: proto.KindSeqOrder, A: Replica(0), B: Any, Count: 1},
		}}},
		{"wildcard drop", Schedule{Steps: []Step{
			{Kind: StepDrop, MsgKind: 0, A: Any, B: Any, Count: 1},
		}}},
		{"reorder of seqorder", Schedule{Steps: []Step{
			{Kind: StepReorder, MsgKind: proto.KindSeqOrder, A: Any, B: Any, Count: 1, Delay: time.Millisecond},
		}}},
		{"crash majority", Schedule{Steps: []Step{
			{Kind: StepCrash, A: Replica(0)},
			{At: time.Millisecond, Kind: StepCrash, A: Replica(1)},
			{At: 2 * time.Millisecond, Kind: StepCrash, A: Replica(2)},
		}}},
		{"partition missing a replica", Schedule{Steps: []Step{
			{Kind: StepPartition, Groups: [][]int{{0, 1}, {2, 3}}, ClientSide: 0},
		}}},
		{"partition duplicate replica", Schedule{Steps: []Step{
			{Kind: StepPartition, Groups: [][]int{{0, 1, 2}, {2, 3, 4}}, ClientSide: 0},
		}}},
		{"replica out of range", Schedule{Steps: []Step{
			{Kind: StepCrash, A: Replica(7)},
		}}},
		{"restart of a live replica", Schedule{Steps: []Step{
			{Kind: StepRestart, A: Replica(0)},
		}}},
		{"restart before the crash", Schedule{Steps: []Step{
			{At: 2 * time.Millisecond, Kind: StepRestart, A: Replica(0)},
			{At: 5 * time.Millisecond, Kind: StepCrash, A: Replica(0)},
		}}},
		{"majority down despite restarts", Schedule{Steps: []Step{
			{Kind: StepCrash, A: Replica(0)},
			{At: 1 * time.Millisecond, Kind: StepCrash, A: Replica(1)},
			{At: 2 * time.Millisecond, Kind: StepRestart, A: Replica(0)},
			{At: 3 * time.Millisecond, Kind: StepCrash, A: Replica(2)},
			{At: 4 * time.Millisecond, Kind: StepCrash, A: Replica(3)},
		}}},
		{"shard out of range", Schedule{Steps: []Step{
			{Shard: 5, Kind: StepHeal},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ok(&tc.s); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

// TestGenerateDeterministic: same seed ⇒ byte-identical encoding (the first
// half of the whole-stack determinism regression); different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{N: 5, Shards: 2, Motifs: 4, Seed: 42}
	a := Generate(spec).Encode()
	b := Generate(spec).Encode()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	spec.Seed = 43
	if Generate(spec).Encode() == a {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateAlwaysValid: the generator must never emit a schedule its own
// validator rejects, across shapes and many seeds.
func TestGenerateAlwaysValid(t *testing.T) {
	shapes := []GenSpec{
		{N: 3, Shards: 1},
		{N: 5, Shards: 1, Motifs: 5},
		{N: 4, Shards: 2, Motifs: 4},
		{N: 7, Shards: 3, Motifs: 6},
	}
	for _, shape := range shapes {
		for seed := int64(1); seed <= 200; seed++ {
			shape.Seed = seed
			s := Generate(shape)
			if err := s.Validate(shape.N, shape.Shards); err != nil {
				t.Fatalf("shape %+v seed %d: %v\n%s", shape, seed, err, s.Encode())
			}
			if len(s.Steps) == 0 {
				t.Fatalf("shape %+v seed %d: empty schedule", shape, seed)
			}
			// Generated schedules must round-trip like hand-written ones.
			back, err := Parse(s.Encode())
			if err != nil {
				t.Fatalf("seed %d: reparse: %v", seed, err)
			}
			if back.Encode() != s.Encode() {
				t.Fatalf("seed %d: encode not canonical", seed)
			}
		}
	}
}

// TestGenerateCoversHardRegions: over a window of seeds the generator must
// actually emit its bias targets (partition windows, crash+suspect pairs,
// flaps, checkpoints) — a silently dead motif would hollow out the search.
func TestGenerateCoversHardRegions(t *testing.T) {
	found := map[StepKind]bool{}
	for seed := int64(1); seed <= 300; seed++ {
		s := Generate(GenSpec{N: 5, Shards: 1, Motifs: 4, Seed: seed})
		for _, st := range s.Steps {
			found[st.Kind] = true
		}
	}
	for _, want := range []StepKind{
		StepCrash, StepSuspect, StepTrust, StepPartition, StepHeal,
		StepBlockOneWay, StepUnblock, StepSlow, StepFast, StepRegions,
		StepDrop, StepDup, StepReorder, StepCheckpoint,
	} {
		if !found[want] {
			t.Errorf("no generated schedule used step kind %d", want)
		}
	}
	if strings.Contains(Generate(GenSpec{N: 3, Seed: 7}).Encode(), "kind") {
		t.Error("generator emitted an unnamed message kind")
	}
}
