package nemesis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCorpusReplay replays every committed schedule in testdata/corpus as a
// regression test: each file is a previously-interesting (hand-distilled or
// shrunk) schedule, and every one must run checker-clean on the current
// tree. Failing shrunk artifacts from the nightly search get committed here
// once their bug is fixed.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus: testdata/corpus/*.txt missing")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			text, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := Parse(string(text))
			if err != nil {
				t.Fatalf("corpus file does not parse: %v", err)
			}
			// Corpus schedules target the default 3-replica single-shard
			// cluster and the read-heavy shared-client workload that every
			// shrunk artifact is minimized under.
			res, err := Run(Config{Requests: 64, Workers: 4, Clients: 1, ReadRatio: 0.6, Seed: 5}, sched)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatalf("violations: %v", res.Violations)
			}
		})
	}
}
