// Package nemesis is the fault-schedule harness: a declarative,
// seed-deterministic scenario DSL over memnet's fault surface, an executor
// that drives any cluster.Cluster through a schedule while a workload runs
// and then machine-checks the full proposition suite, a randomized generator
// biased toward the protocol's hard regions, and a delta-debugging shrinker
// that reduces failing schedules to locally-minimal replayable artifacts.
//
// # Schedule model
//
// A Schedule is an ordered list of timed Steps. Each step names an offset
// from the start of the run, a target shard, a verb, and operands. The text
// encoding is line-based, committable and diffable:
//
//	# oar-nemesis schedule v1
//	@10ms s0 partition 0 1 | 2 3 4 clients=1
//	@18ms s0 suspect * 0
//	@48ms s0 heal
//	@52ms s0 trust * 0
//	@70ms s0 checkpoint
//
// Encode and Parse round-trip exactly: Parse(Encode(s)) == s, and Encode is
// canonical (a parsed hand-written file re-encodes to the canonical form).
// Schedules therefore diff cleanly and a shrunk artifact replays bit-for-bit.
//
// # Determinism rules
//
// Everything downstream of a seed must be a pure function of it: the
// generator derives every choice from a single rand.Rand, never iterates a
// map, and quantizes times so encodings are byte-stable; memnet's per-link
// latency samplers are seeded from (Seed, from, to); the workload streams
// are functions of (Seed, worker). Wall-clock scheduling of steps makes the
// *interleaving* nondeterministic (that is the point of searching many
// seeds), but the schedule itself — and therefore the artifact a failure
// shrinks to — is fully reproducible.
//
// # Fault semantics
//
// The verbs map 1:1 onto memnet's scenario hooks, and the schedule layer
// enforces the model boundaries the protocol is entitled to (see Validate):
// channels between correct processes are reliable FIFO, so `drop` is only
// legal for kinds the protocol compensates (rmcast relays re-deliver, read
// frames and replies fall back) or when the sender is crashed later in the
// schedule ("the send was lost in the crash" — the Figure 1b scenario);
// `reorder` is only legal for reply/read kinds because the ordered-path
// kinds (SeqOrder, PhaseII inside rmcast) rely on per-link FIFO.
//
// A `drop seqorder` rule has suffix semantics: an ordering stream carries
// its positions implicitly (arrival order IS the order), so losing an
// interior message would forge a gapped optimistic order no real crash can
// produce (it breaks the Lemma 2 prefix property). The executor therefore
// severs whole destinations — `x2` means the first two destinations to
// match lose that ordering message and every later one from the sender,
// exactly the per-destination suffix a crash cuts off. For other kinds xN
// counts individual messages.
//
// # Adding a fault type
//
// Add a StepKind constant, its operands to Step, an arm to Step.String and
// parseStep (keep them exact inverses), a validation arm, and an arm to the
// executor's apply. The generator picks motifs independently, so a new verb
// becomes searchable by adding a motif that emits it.
package nemesis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/proto"
)

// StepKind enumerates the schedule verbs.
type StepKind int

// The schedule verbs.
const (
	// StepCrash kills replica A (its endpoint closes; in-flight sends
	// survive). Irreversible for the run.
	StepCrash StepKind = iota + 1
	// StepSuspect makes observer A's failure detector suspect replica B
	// (A = Any scripts every replica's oracle).
	StepSuspect
	// StepTrust clears observer A's suspicion of replica B.
	StepTrust
	// StepPartition installs a full partition: each replica group is an
	// island, clients ride with group ClientSide. Unlisted replicas are
	// isolated (memnet semantics), so groups should cover the shard.
	StepPartition
	// StepHeal removes all partitions and pairwise blocks.
	StepHeal
	// StepBlock holds A<->B traffic both ways (pairwise block).
	StepBlock
	// StepBlockOneWay holds A->B only; B->A keeps flowing (asymmetric
	// partition).
	StepBlockOneWay
	// StepUnblock removes the A<->B hold (both directions).
	StepUnblock
	// StepSlow overrides the A->B link latency with [Min, Max) — the
	// gray-slow link. Connectivity is unaffected.
	StepSlow
	// StepFast clears every link-latency override in the shard.
	StepFast
	// StepRegions installs a WAN topology: replica groups are regions,
	// intra-region links get [Min, Max), inter-region links [Min2, Max2).
	StepRegions
	// StepDrop discards the next Count matching messages at send time.
	StepDrop
	// StepDup delivers the next Count matching messages twice.
	StepDup
	// StepReorder delays the next Count matching messages by Delay,
	// letting later traffic overtake them.
	StepReorder
	// StepCheckpoint pauses the workload, restores connectivity, waits for
	// the shard(s) to settle and runs the full safety check mid-schedule —
	// the schedule-aware liveness window. Fault state installed before the
	// checkpoint is cleared; later steps re-install theirs.
	StepCheckpoint
	// StepRestart re-boots crashed replica A as a fresh incarnation
	// (cluster.Restart): the replica replays its WAL (when the run has one),
	// catches up from peers, and re-enters ordering. Restarting returns the
	// replica to the crash budget, so crash -> restart -> crash chains are
	// legal as long as a majority is up at every instant.
	StepRestart
)

// AnyIndex is the NodeRef index meaning "every replica" (observer wildcards)
// or "any node" (filter endpoints).
const AnyIndex = -1

// NodeRef names a node in a schedule: replica i, client i, or the wildcard.
type NodeRef struct {
	Client bool
	Index  int // AnyIndex = wildcard
}

// Any is the wildcard NodeRef ("*").
var Any = NodeRef{Index: AnyIndex}

// Replica returns the NodeRef of replica i.
func Replica(i int) NodeRef { return NodeRef{Index: i} }

// Client returns the NodeRef of client i.
func Client(i int) NodeRef { return NodeRef{Client: true, Index: i} }

// IsAny reports whether r is the wildcard.
func (r NodeRef) IsAny() bool { return r.Index == AnyIndex }

// ID returns the proto.NodeID r names. Panics on the wildcard.
func (r NodeRef) ID() proto.NodeID {
	if r.IsAny() {
		panic("nemesis: wildcard NodeRef has no single ID")
	}
	if r.Client {
		return proto.ClientID(r.Index)
	}
	return proto.NodeID(r.Index) //nolint:gosec // validated against N
}

// Matches reports whether r names id.
func (r NodeRef) Matches(id proto.NodeID) bool {
	if r.IsAny() {
		return true
	}
	return r.ID() == id
}

// String encodes r ("3", "c0", "*").
func (r NodeRef) String() string {
	if r.IsAny() {
		return "*"
	}
	if r.Client {
		return "c" + strconv.Itoa(r.Index)
	}
	return strconv.Itoa(r.Index)
}

func parseNodeRef(tok string) (NodeRef, error) {
	if tok == "*" {
		return Any, nil
	}
	client := false
	if strings.HasPrefix(tok, "c") {
		client = true
		tok = tok[1:]
	}
	i, err := strconv.Atoi(tok)
	if err != nil || i < 0 {
		return NodeRef{}, fmt.Errorf("nemesis: bad node ref %q", tok)
	}
	return NodeRef{Client: client, Index: i}, nil
}

// kindNames maps the filterable message kinds to their DSL names. Only leaf
// kinds appear here: memnet expands proto.Batch envelopes before the filter
// runs, so a rule never has to match "batch".
var kindNames = map[proto.Kind]string{
	proto.KindRMcast:    "rmcast",
	proto.KindSeqOrder:  "seqorder",
	proto.KindReply:     "reply",
	proto.KindRead:      "read",
	proto.KindHeartbeat: "heartbeat",
}

func kindByName(name string) (proto.Kind, error) {
	if name == "*" {
		return 0, nil
	}
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("nemesis: unknown message kind %q", name)
}

func kindName(k proto.Kind) string {
	if k == 0 {
		return "*"
	}
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind%d", k)
}

// Step is one timed fault action.
type Step struct {
	// At is the offset from run start.
	At time.Duration
	// Shard is the ordering group the step targets.
	Shard int
	// Kind is the verb.
	Kind StepKind

	// A, B are the node operands: crash/suspect/trust use A (and B as the
	// suspicion target); block/slow use A->B; filter rules match A->B.
	A, B NodeRef
	// Groups are replica-index groups (partition islands / WAN regions).
	Groups [][]int
	// ClientSide is the Groups index clients join in a partition.
	ClientSide int
	// Min, Max are the latency band of slow / the intra-region band of
	// regions; Min2, Max2 the inter-region band.
	Min, Max, Min2, Max2 time.Duration
	// MsgKind restricts a filter rule (0 = any kind).
	MsgKind proto.Kind
	// Count is how many matching messages a filter rule consumes.
	Count int
	// Delay is the reorder hold.
	Delay time.Duration
}

func groupsString(groups [][]int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		toks := make([]string, len(g))
		for j, r := range g {
			toks[j] = strconv.Itoa(r)
		}
		parts[i] = strings.Join(toks, " ")
	}
	return strings.Join(parts, " | ")
}

func parseGroups(toks []string) ([][]int, error) {
	groups := [][]int{{}}
	for _, tok := range toks {
		if tok == "|" {
			groups = append(groups, []int{})
			continue
		}
		i, err := strconv.Atoi(tok)
		if err != nil || i < 0 {
			return nil, fmt.Errorf("nemesis: bad replica index %q in groups", tok)
		}
		last := len(groups) - 1
		groups[last] = append(groups[last], i)
	}
	for _, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("nemesis: empty group")
		}
	}
	return groups, nil
}

// String encodes the step in the canonical one-line form.
func (st Step) String() string {
	head := fmt.Sprintf("@%s s%d", st.At, st.Shard)
	switch st.Kind {
	case StepCrash:
		return fmt.Sprintf("%s crash %s", head, st.A)
	case StepSuspect:
		return fmt.Sprintf("%s suspect %s %s", head, st.A, st.B)
	case StepTrust:
		return fmt.Sprintf("%s trust %s %s", head, st.A, st.B)
	case StepPartition:
		return fmt.Sprintf("%s partition %s clients=%d", head, groupsString(st.Groups), st.ClientSide)
	case StepHeal:
		return head + " heal"
	case StepBlock:
		return fmt.Sprintf("%s block %s %s", head, st.A, st.B)
	case StepBlockOneWay:
		return fmt.Sprintf("%s block1 %s %s", head, st.A, st.B)
	case StepUnblock:
		return fmt.Sprintf("%s unblock %s %s", head, st.A, st.B)
	case StepSlow:
		return fmt.Sprintf("%s slow %s->%s %s %s", head, st.A, st.B, st.Min, st.Max)
	case StepFast:
		return head + " fast"
	case StepRegions:
		return fmt.Sprintf("%s regions %s intra %s %s inter %s %s",
			head, groupsString(st.Groups), st.Min, st.Max, st.Min2, st.Max2)
	case StepDrop:
		return fmt.Sprintf("%s drop %s %s->%s x%d", head, kindName(st.MsgKind), st.A, st.B, st.Count)
	case StepDup:
		return fmt.Sprintf("%s dup %s %s->%s x%d", head, kindName(st.MsgKind), st.A, st.B, st.Count)
	case StepReorder:
		return fmt.Sprintf("%s reorder %s %s->%s x%d by %s",
			head, kindName(st.MsgKind), st.A, st.B, st.Count, st.Delay)
	case StepCheckpoint:
		return head + " checkpoint"
	case StepRestart:
		return fmt.Sprintf("%s restart %s", head, st.A)
	default:
		return fmt.Sprintf("%s ?kind%d", head, st.Kind)
	}
}

// header is the first line of every encoded schedule.
const header = "# oar-nemesis schedule v1"

// Schedule is an ordered fault plan.
type Schedule struct {
	Steps []Step
}

// Clone returns a deep copy (Groups included).
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Steps: make([]Step, len(s.Steps))}
	copy(out.Steps, s.Steps)
	for i := range out.Steps {
		if g := out.Steps[i].Groups; g != nil {
			ng := make([][]int, len(g))
			for j := range g {
				ng[j] = append([]int(nil), g[j]...)
			}
			out.Steps[i].Groups = ng
		}
	}
	return out
}

// Horizon is the offset of the last step (the executor keeps the run alive
// at least this long).
func (s *Schedule) Horizon() time.Duration {
	var h time.Duration
	for _, st := range s.Steps {
		if st.At > h {
			h = st.At
		}
	}
	return h
}

// Normalize sorts the steps by time (stably: same-time steps keep their
// relative order). Encode and the executor both rely on sorted order.
func (s *Schedule) Normalize() {
	sort.SliceStable(s.Steps, func(i, j int) bool { return s.Steps[i].At < s.Steps[j].At })
}

// Encode renders the canonical text form.
func (s *Schedule) Encode() string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for _, st := range s.Steps {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String implements fmt.Stringer (== Encode).
func (s *Schedule) String() string { return s.Encode() }

// Parse decodes the text form. Comments (#...) and blank lines are skipped;
// the result is normalized, so Encode(Parse(x)) is canonical.
func Parse(text string) (*Schedule, error) {
	s := &Schedule{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st, err := parseStep(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		s.Steps = append(s.Steps, st)
	}
	s.Normalize()
	return s, nil
}

func parseStep(line string) (Step, error) {
	toks := strings.Fields(line)
	if len(toks) < 3 {
		return Step{}, fmt.Errorf("nemesis: short step %q", line)
	}
	var st Step
	if !strings.HasPrefix(toks[0], "@") {
		return Step{}, fmt.Errorf("nemesis: step must start with @offset, got %q", toks[0])
	}
	at, err := time.ParseDuration(toks[0][1:])
	if err != nil || at < 0 {
		return Step{}, fmt.Errorf("nemesis: bad offset %q", toks[0])
	}
	st.At = at
	if !strings.HasPrefix(toks[1], "s") {
		return Step{}, fmt.Errorf("nemesis: expected shard sN, got %q", toks[1])
	}
	st.Shard, err = strconv.Atoi(toks[1][1:])
	if err != nil || st.Shard < 0 {
		return Step{}, fmt.Errorf("nemesis: bad shard %q", toks[1])
	}
	verb, args := toks[2], toks[3:]

	needNodes := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("nemesis: %s wants %d operands, got %d", verb, n, len(args))
		}
		return nil
	}
	parseArrow := func(tok string) (NodeRef, NodeRef, error) {
		from, to, ok := strings.Cut(tok, "->")
		if !ok {
			return NodeRef{}, NodeRef{}, fmt.Errorf("nemesis: expected from->to, got %q", tok)
		}
		a, err := parseNodeRef(from)
		if err != nil {
			return NodeRef{}, NodeRef{}, err
		}
		b, err := parseNodeRef(to)
		return a, b, err
	}
	parseCount := func(tok string) (int, error) {
		if !strings.HasPrefix(tok, "x") {
			return 0, fmt.Errorf("nemesis: expected xN count, got %q", tok)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("nemesis: bad count %q", tok)
		}
		return n, nil
	}

	switch verb {
	case "crash", "restart":
		if err := needNodes(1); err != nil {
			return Step{}, err
		}
		st.Kind = StepCrash
		if verb == "restart" {
			st.Kind = StepRestart
		}
		st.A, err = parseNodeRef(args[0])
	case "suspect", "trust":
		if err := needNodes(2); err != nil {
			return Step{}, err
		}
		st.Kind = StepSuspect
		if verb == "trust" {
			st.Kind = StepTrust
		}
		if st.A, err = parseNodeRef(args[0]); err != nil {
			return Step{}, err
		}
		st.B, err = parseNodeRef(args[1])
	case "partition":
		if len(args) < 2 {
			return Step{}, fmt.Errorf("nemesis: partition wants groups and clients=")
		}
		last := args[len(args)-1]
		if !strings.HasPrefix(last, "clients=") {
			return Step{}, fmt.Errorf("nemesis: partition must end with clients=<group>, got %q", last)
		}
		st.Kind = StepPartition
		st.ClientSide, err = strconv.Atoi(strings.TrimPrefix(last, "clients="))
		if err != nil || st.ClientSide < 0 {
			return Step{}, fmt.Errorf("nemesis: bad clients= %q", last)
		}
		st.Groups, err = parseGroups(args[:len(args)-1])
	case "heal":
		st.Kind = StepHeal
		err = needNodes(0)
	case "block", "block1", "unblock":
		if err := needNodes(2); err != nil {
			return Step{}, err
		}
		switch verb {
		case "block":
			st.Kind = StepBlock
		case "block1":
			st.Kind = StepBlockOneWay
		default:
			st.Kind = StepUnblock
		}
		if st.A, err = parseNodeRef(args[0]); err != nil {
			return Step{}, err
		}
		st.B, err = parseNodeRef(args[1])
	case "slow":
		if err := needNodes(3); err != nil {
			return Step{}, err
		}
		st.Kind = StepSlow
		if st.A, st.B, err = parseArrow(args[0]); err != nil {
			return Step{}, err
		}
		if st.Min, err = time.ParseDuration(args[1]); err != nil {
			return Step{}, err
		}
		st.Max, err = time.ParseDuration(args[2])
	case "fast":
		st.Kind = StepFast
		err = needNodes(0)
	case "regions":
		st.Kind = StepRegions
		intra := -1
		for i, a := range args {
			if a == "intra" {
				intra = i
				break
			}
		}
		if intra < 0 || len(args) != intra+6 || args[intra+3] != "inter" {
			return Step{}, fmt.Errorf("nemesis: regions wants GROUPS intra MIN MAX inter MIN MAX")
		}
		if st.Groups, err = parseGroups(args[:intra]); err != nil {
			return Step{}, err
		}
		if st.Min, err = time.ParseDuration(args[intra+1]); err != nil {
			return Step{}, err
		}
		if st.Max, err = time.ParseDuration(args[intra+2]); err != nil {
			return Step{}, err
		}
		if st.Min2, err = time.ParseDuration(args[intra+4]); err != nil {
			return Step{}, err
		}
		st.Max2, err = time.ParseDuration(args[intra+5])
	case "drop", "dup", "reorder":
		want := 3
		if verb == "reorder" {
			want = 5
		}
		if err := needNodes(want); err != nil {
			return Step{}, err
		}
		switch verb {
		case "drop":
			st.Kind = StepDrop
		case "dup":
			st.Kind = StepDup
		default:
			st.Kind = StepReorder
		}
		if st.MsgKind, err = kindByName(args[0]); err != nil {
			return Step{}, err
		}
		if st.A, st.B, err = parseArrow(args[1]); err != nil {
			return Step{}, err
		}
		if st.Count, err = parseCount(args[2]); err != nil {
			return Step{}, err
		}
		if verb == "reorder" {
			if args[3] != "by" {
				return Step{}, fmt.Errorf("nemesis: reorder wants ... by DELAY")
			}
			st.Delay, err = time.ParseDuration(args[4])
		}
	case "checkpoint":
		st.Kind = StepCheckpoint
		err = needNodes(0)
	default:
		return Step{}, fmt.Errorf("nemesis: unknown verb %q", verb)
	}
	if err != nil {
		return Step{}, err
	}
	return st, nil
}

// Validate checks the schedule against a cluster shape and the protocol's
// model boundaries. It returns the first problem found.
func (s *Schedule) Validate(n, shards int) error {
	if n <= 0 || shards <= 0 {
		return fmt.Errorf("nemesis: invalid shape n=%d shards=%d", n, shards)
	}
	crashed := make(map[[2]int]bool)            // (shard, replica) crashed anywhere in the schedule
	lastCrash := make(map[[2]int]time.Duration) // latest crash time (restart chains crash twice)
	for _, st := range s.Steps {
		if st.Kind == StepCrash {
			if st.A.IsAny() || st.A.Client || st.A.Index >= n {
				return fmt.Errorf("nemesis: crash target %s invalid", st.A)
			}
			key := [2]int{st.Shard, st.A.Index}
			crashed[key] = true
			if st.At > lastCrash[key] {
				lastCrash[key] = st.At
			}
		}
	}
	// Crash budget, time-ordered: a restart returns its replica to the pool,
	// so the invariant is not "at most (n-1)/2 crashes total" but "at most
	// (n-1)/2 replicas down at any instant". Same-time steps keep their slice
	// order, matching the executor.
	type lifeEvent struct {
		at      time.Duration
		shard   int
		idx     int
		restart bool
	}
	var life []lifeEvent
	for _, st := range s.Steps {
		switch st.Kind {
		case StepCrash:
			life = append(life, lifeEvent{at: st.At, shard: st.Shard, idx: st.A.Index})
		case StepRestart:
			if st.A.IsAny() || st.A.Client || st.A.Index >= n {
				return fmt.Errorf("nemesis: restart target %s invalid", st.A)
			}
			life = append(life, lifeEvent{at: st.At, shard: st.Shard, idx: st.A.Index, restart: true})
		}
	}
	sort.SliceStable(life, func(i, j int) bool { return life[i].at < life[j].at })
	down := make(map[[2]int]bool)
	perShardDown := make(map[int]int)
	for _, ev := range life {
		key := [2]int{ev.shard, ev.idx}
		if ev.restart {
			if !down[key] {
				return fmt.Errorf("nemesis: restart of replica %d on shard %d, which is not down at %v",
					ev.idx, ev.shard, ev.at)
			}
			delete(down, key)
			perShardDown[ev.shard]--
			continue
		}
		if down[key] {
			continue // repeated crash of a down replica is a no-op
		}
		down[key] = true
		perShardDown[ev.shard]++
		if perShardDown[ev.shard] > (n-1)/2 {
			return fmt.Errorf("nemesis: shard %d has %d replicas down at %v, majority of %d lost",
				ev.shard, perShardDown[ev.shard], ev.at, n)
		}
	}
	checkReplica := func(r NodeRef, what string) error {
		if r.IsAny() || r.Client {
			return nil
		}
		if r.Index >= n {
			return fmt.Errorf("nemesis: %s replica %d out of range (n=%d)", what, r.Index, n)
		}
		return nil
	}
	for i, st := range s.Steps {
		if st.Shard >= shards {
			return fmt.Errorf("nemesis: step %d targets shard %d of %d", i, st.Shard, shards)
		}
		switch st.Kind {
		case StepCrash, StepRestart:
			// shape checked above
		case StepSuspect, StepTrust:
			if st.A.Client || st.B.Client || st.B.IsAny() {
				return fmt.Errorf("nemesis: step %d: suspect/trust wants replica operands with a concrete target", i)
			}
			if err := checkReplica(st.A, "observer"); err != nil {
				return err
			}
			if err := checkReplica(st.B, "target"); err != nil {
				return err
			}
		case StepPartition, StepRegions:
			seen := make(map[int]bool)
			for _, g := range st.Groups {
				for _, r := range g {
					if r >= n {
						return fmt.Errorf("nemesis: step %d: replica %d out of range", i, r)
					}
					if seen[r] {
						return fmt.Errorf("nemesis: step %d: replica %d in two groups", i, r)
					}
					seen[r] = true
				}
			}
			if st.Kind == StepPartition {
				if len(seen) != n {
					return fmt.Errorf("nemesis: step %d: partition must place every replica (got %d of %d)", i, len(seen), n)
				}
				if st.ClientSide >= len(st.Groups) {
					return fmt.Errorf("nemesis: step %d: clients=%d but only %d groups", i, st.ClientSide, len(st.Groups))
				}
			}
		case StepBlock, StepBlockOneWay, StepUnblock:
			if st.A.IsAny() || st.B.IsAny() {
				return fmt.Errorf("nemesis: step %d: block operands must be concrete", i)
			}
			if err := checkReplica(st.A, "block"); err != nil {
				return err
			}
			if err := checkReplica(st.B, "block"); err != nil {
				return err
			}
		case StepSlow:
			if st.A.IsAny() || st.B.IsAny() {
				return fmt.Errorf("nemesis: step %d: slow operands must be concrete", i)
			}
			if st.Max < st.Min || st.Min < 0 {
				return fmt.Errorf("nemesis: step %d: bad latency band [%v, %v)", i, st.Min, st.Max)
			}
		case StepDrop:
			// Dropping must not break the reliable-channel model the
			// protocol assumes. Compensated kinds are always legal: rmcast
			// copies are re-relayed by every receiver, read frames and
			// replies fall back or are quorum-redundant. Anything else
			// (SeqOrder, wildcard) is only legal when the sender is a
			// concrete replica that crashes later — "lost in the crash".
			switch st.MsgKind {
			case proto.KindRMcast, proto.KindRead, proto.KindReply:
			default:
				if st.A.IsAny() || st.A.Client {
					return fmt.Errorf("nemesis: step %d: drop of %s needs a concrete replica sender", i, kindName(st.MsgKind))
				}
				key := [2]int{st.Shard, st.A.Index}
				if !crashed[key] || lastCrash[key] < st.At {
					return fmt.Errorf("nemesis: step %d: drop of %s from %s requires crashing %s later in the schedule",
						i, kindName(st.MsgKind), st.A, st.A)
				}
			}
			if err := checkReplica(st.A, "drop"); err != nil {
				return err
			}
			if err := checkReplica(st.B, "drop"); err != nil {
				return err
			}
		case StepDup:
			if err := checkReplica(st.A, "dup"); err != nil {
				return err
			}
			if err := checkReplica(st.B, "dup"); err != nil {
				return err
			}
		case StepReorder:
			// FIFO-dependent kinds (SeqOrder carries no position field;
			// PhaseII rides rmcast) must never be reordered — only the
			// kinds the client side tolerates out of order.
			switch st.MsgKind {
			case proto.KindReply, proto.KindRead:
			default:
				return fmt.Errorf("nemesis: step %d: reorder of %s breaks the FIFO channel model (reply/read only)",
					i, kindName(st.MsgKind))
			}
			if st.Delay <= 0 {
				return fmt.Errorf("nemesis: step %d: reorder needs a positive delay", i)
			}
		case StepHeal, StepFast, StepCheckpoint:
		default:
			return fmt.Errorf("nemesis: step %d: unknown kind %d", i, st.Kind)
		}
	}
	return nil
}
