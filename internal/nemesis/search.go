package nemesis

import "fmt"

// SearchConfig shapes a randomized fault-schedule search.
type SearchConfig struct {
	// Run is the executor config every candidate schedule runs under.
	Run Config
	// Gen shapes the generated schedules; N/Shards are forced to match Run.
	Gen GenSpec
	// Budget is how many seeds to try (default 50).
	Budget int
	// BaseSeed is the first schedule seed; seed i is BaseSeed+i (default 1).
	BaseSeed int64
	// Progress, when non-nil, is called after every run.
	Progress func(seed int64, res *Result)
}

// Found is a failing schedule discovered by Search.
type Found struct {
	// Seed generated Schedule.
	Seed int64
	// Schedule is the generated (unshrunk) failing schedule.
	Schedule *Schedule
	// Result is the failing run's outcome.
	Result *Result
}

// Search runs Budget seeded random schedules and returns the first failure,
// or (nil, ran, nil) if every schedule was checker-clean. ran counts the
// schedules executed. A harness error (cluster boot failure, invalid
// config) aborts the search; a checker violation is a finding, not an
// error.
func Search(cfg SearchConfig) (*Found, int, error) {
	if cfg.Budget == 0 {
		cfg.Budget = 50
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	run := cfg.Run.withDefaults()
	gen := cfg.Gen
	gen.N, gen.Shards = run.N, run.Shards
	for i := 0; i < cfg.Budget; i++ {
		seed := cfg.BaseSeed + int64(i)
		gen.Seed = seed
		sched := Generate(gen)
		res, err := Run(run, sched)
		if err != nil {
			return nil, i, fmt.Errorf("nemesis: seed %d: %w", seed, err)
		}
		if cfg.Progress != nil {
			cfg.Progress(seed, res)
		}
		if res.Failed() {
			return &Found{Seed: seed, Schedule: sched, Result: res}, i + 1, nil
		}
	}
	return nil, cfg.Budget, nil
}

// FailOracle wraps an executor config into a Shrink predicate: a candidate
// fails when it validates and a run under cfg reports violations. Running
// the schedule `repeats` times (default 1) and requiring ANY failing run
// makes shrinking robust for timing-dependent failures at the cost of
// re-runs.
func FailOracle(cfg Config, repeats int) func(*Schedule) bool {
	if repeats <= 0 {
		repeats = 1
	}
	run := cfg.withDefaults()
	return func(s *Schedule) bool {
		if err := s.Validate(run.N, run.Shards); err != nil {
			return false
		}
		for i := 0; i < repeats; i++ {
			res, err := Run(run, s)
			if err != nil {
				return false
			}
			if res.Failed() {
				return true
			}
		}
		return false
	}
}
