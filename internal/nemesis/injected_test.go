package nemesis

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSearchFindsInjectedReadFloorBug is the end-to-end acceptance test for
// the whole nemesis loop: re-introduce the stale-read-floor bug behind its
// test hook (a client that freezes a read's discard floor at issue time
// instead of re-taking the live high-water per reply), let the randomized
// search find it, shrink the failing schedule to a locally-minimal artifact
// of at most 5 steps, and replay the artifact through its text encoding.
//
// The search config deliberately sits in the bug's hard region: several
// workers interleaving writes and fast-path reads on ONE shared client, so
// a write adoption regularly lands between a read's issue and its adoption.
func TestSearchFindsInjectedReadFloorBug(t *testing.T) {
	if !core.StaleReadFloorBug.CompareAndSwap(false, true) {
		t.Fatal("StaleReadFloorBug already enabled")
	}
	defer core.StaleReadFloorBug.Store(false)

	cfg := Config{Requests: 96, Workers: 4, Clients: 1, ReadRatio: 0.65, Seed: 5}
	found, ran, err := Search(SearchConfig{Run: cfg, Gen: GenSpec{Motifs: 2}, Budget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if found == nil {
		t.Fatalf("search missed the injected bug over %d schedules", ran)
	}
	if !strings.Contains(violationProperties(found.Result), "read monotonicity") {
		t.Fatalf("wrong property fired: %v", found.Result.Violations)
	}

	oracle := FailOracle(cfg, 3)
	shrunk := Shrink(found.Schedule, oracle)
	if len(shrunk.Steps) > 5 {
		t.Fatalf("shrunk schedule still has %d steps (want <= 5):\n%s",
			len(shrunk.Steps), shrunk.Encode())
	}

	// The artifact must replay through its committable text form: encode,
	// re-parse, run — and reproduce the same violation.
	replayed, err := Parse(shrunk.Encode())
	if err != nil {
		t.Fatalf("shrunk artifact does not re-parse: %v\n%s", err, shrunk.Encode())
	}
	reproduced := false
	for i := 0; i < 5 && !reproduced; i++ {
		res, err := Run(cfg, replayed)
		if err != nil {
			t.Fatal(err)
		}
		reproduced = strings.Contains(violationProperties(res), "read monotonicity")
	}
	if !reproduced {
		t.Fatalf("shrunk artifact did not replay the violation:\n%s", shrunk.Encode())
	}

	// Sanity: with the hook off the very same schedule is clean — the finding
	// is the injected bug, not harness noise.
	core.StaleReadFloorBug.Store(false)
	for i := 0; i < 3; i++ {
		res, err := Run(cfg, replayed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("schedule fails with the hook off: %v", res.Violations)
		}
	}
}
