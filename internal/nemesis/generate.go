package nemesis

import (
	"math/rand"
	"time"

	"repro/internal/proto"
)

// GenSpec shapes the randomized schedule generator.
type GenSpec struct {
	// N, Shards describe the cluster the schedule targets (defaults 3, 1).
	N, Shards int
	// Motifs is how many fault motifs to compose (default 3).
	Motifs int
	// Seed makes the schedule a pure function of this value.
	Seed int64
}

func (g GenSpec) withDefaults() GenSpec {
	if g.N == 0 {
		g.N = 3
	}
	if g.Shards == 0 {
		g.Shards = 1
	}
	if g.Motifs == 0 {
		g.Motifs = 3
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	return g
}

// Generate derives a schedule deterministically from spec.Seed. The
// generator is biased toward the protocol's hard regions rather than
// uniform over the verb set:
//
//   - minority partitions that trap the sequencer on the small side while
//     the majority elects around it (the minority-prefix window of Figure 1b);
//   - crashes paired with scripted suspicions — including the "ordering
//     messages lost in the crash" pattern when the victim is the sequencer —
//     and, half the time, a crash-recovery chain: the victim restarts
//     mid-run so its catch-up races live traffic, and is sometimes crashed
//     again as soon as it rejoins;
//   - wrongful-suspicion flaps, which force epoch boundaries with no real
//     failure (rollback/redelivery pressure with every replica alive);
//   - gray-slow links and asymmetric one-way blocks, which skew reply
//     arrival so fast-path reads race the write path;
//   - duplicate and reorder rules on the kinds the model permits.
//
// Every motif cleans up after itself (heal / trust / fast), so motifs
// compose on a timeline without hidden interference, and checkpoints —
// mid-run quiescent verification windows — are sprinkled between them. The
// output always passes Validate for the same (N, Shards).
func Generate(spec GenSpec) *Schedule {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed)) //nolint:gosec // deterministic by design
	n := spec.N

	s := &Schedule{}
	ms := func(lo, hi int) time.Duration { // quantized: encodings stay byte-stable
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Millisecond
	}
	at := func(t time.Duration, shard int, st Step) {
		st.At, st.Shard = t, shard
		s.Steps = append(s.Steps, st)
	}
	crashed := make([]map[int]bool, spec.Shards)
	for i := range crashed {
		crashed[i] = make(map[int]bool)
	}
	budget := func(shard int) int { return (n-1)/2 - len(crashed[shard]) }
	liveVictim := func(shard int) int {
		for tries := 0; tries < 8; tries++ {
			if r := rng.Intn(n); !crashed[shard][r] {
				return r
			}
		}
		return -1
	}

	t := ms(5, 12)
	for m := 0; m < spec.Motifs; m++ {
		shard := rng.Intn(spec.Shards)
		w := ms(15, 35) // fault window width
		pick := rng.Intn(100)
		switch {
		case pick < 28 && n >= 3: // minority partition around the sequencer
			minority := map[int]bool{0: true}
			for len(minority) < (n-1)/2 && rng.Intn(2) == 0 {
				minority[rng.Intn(n)] = true
			}
			var minor, major []int
			for r := 0; r < n; r++ {
				if minority[r] {
					minor = append(minor, r)
				} else {
					major = append(major, r)
				}
			}
			clientSide := 1 // usually the majority keeps serving
			if rng.Intn(100) < 20 {
				clientSide = 0
			}
			at(t, shard, Step{Kind: StepPartition, Groups: [][]int{minor, major}, ClientSide: clientSide})
			// Only the majority observers suspect the unreachable minority
			// (the Figure 4 scripting): the minority keeps trusting its old
			// world and must catch up after the heal.
			dt := ms(3, 8)
			for _, r := range minor {
				for _, o := range major {
					at(t+dt, shard, Step{Kind: StepSuspect, A: Replica(o), B: Replica(r)})
				}
			}
			at(t+w, shard, Step{Kind: StepHeal})
			for _, r := range minor {
				at(t+w+ms(1, 4), shard, Step{Kind: StepTrust, A: Any, B: Replica(r)})
			}
		case pick < 48: // crash + suspicion (maybe with orders lost in the crash)
			if budget(shard) <= 0 {
				m-- // retry as another motif
				continue
			}
			victim := liveVictim(shard)
			if victim < 0 {
				continue
			}
			crashed[shard][victim] = true
			if victim == 0 && rng.Intn(2) == 0 {
				// Figure 1b: the sequencer's last ordering messages die with
				// it — legal because the crash follows in this schedule. The
				// count is destinations severed (suffix semantics), so one to
				// three replicas lose the tail of the ordering stream.
				at(t, shard, Step{Kind: StepDrop, MsgKind: proto.KindSeqOrder,
					A: Replica(0), B: Any, Count: 1 + rng.Intn(3)})
			}
			at(t+ms(1, 3), shard, Step{Kind: StepCrash, A: Replica(victim)})
			at(t+ms(4, 9), shard, Step{Kind: StepSuspect, A: Any, B: Replica(victim)})
			if rng.Intn(2) == 0 {
				// Crash-recovery chain: bring the victim back mid-run — its
				// catch-up races the live traffic — and sometimes kill it
				// again while (or right after) it rejoins. The restart
				// returns the crash budget, so the re-crash is legal even at
				// (n-1)/2 concurrent failures.
				at(t+w, shard, Step{Kind: StepRestart, A: Replica(victim)})
				at(t+w+ms(2, 6), shard, Step{Kind: StepTrust, A: Any, B: Replica(victim)})
				delete(crashed[shard], victim)
				if rng.Intn(100) < 35 {
					crashed[shard][victim] = true
					at(t+w+ms(8, 14), shard, Step{Kind: StepCrash, A: Replica(victim)})
					at(t+w+ms(16, 20), shard, Step{Kind: StepSuspect, A: Any, B: Replica(victim)})
				}
			}
		case pick < 63: // wrongful-suspicion flap: epoch change, nobody dead
			victim := liveVictim(shard)
			if victim < 0 {
				continue
			}
			// Everyone else wrongly suspects a live victim (a node does not
			// suspect itself): an epoch boundary with no failure behind it.
			for o := 0; o < n; o++ {
				if o != victim && !crashed[shard][o] {
					at(t, shard, Step{Kind: StepSuspect, A: Replica(o), B: Replica(victim)})
				}
			}
			at(t+w, shard, Step{Kind: StepTrust, A: Any, B: Replica(victim)})
		case pick < 73: // gray-slow link
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			lo := ms(1, 3)
			at(t, shard, Step{Kind: StepSlow, A: Replica(a), B: Replica(b),
				Min: lo, Max: lo + ms(1, 4)})
			at(t+w, shard, Step{Kind: StepFast})
		case pick < 80 && n >= 3: // asymmetric one-way block
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			at(t, shard, Step{Kind: StepBlockOneWay, A: Replica(a), B: Replica(b)})
			at(t+w, shard, Step{Kind: StepUnblock, A: Replica(a), B: Replica(b)})
		case pick < 85 && n >= 4: // WAN regions
			cut := 1 + rng.Intn(n-2)
			var ga, gb []int
			for r := 0; r < n; r++ {
				if r < cut {
					ga = append(ga, r)
				} else {
					gb = append(gb, r)
				}
			}
			at(t, shard, Step{Kind: StepRegions, Groups: [][]int{ga, gb},
				Min: 0, Max: 200 * time.Microsecond,
				Min2: ms(1, 2), Max2: ms(3, 5)})
			at(t+w, shard, Step{Kind: StepFast})
		case pick < 93: // duplicate deliveries (idempotence pressure)
			kinds := []proto.Kind{proto.KindRMcast, proto.KindSeqOrder, proto.KindReply, proto.KindRead}
			at(t, shard, Step{Kind: StepDup, MsgKind: kinds[rng.Intn(len(kinds))],
				A: Any, B: Any, Count: 1 + rng.Intn(3)})
		default: // reorder replies/reads (the only FIFO-safe kinds)
			kinds := []proto.Kind{proto.KindReply, proto.KindRead}
			at(t, shard, Step{Kind: StepReorder, MsgKind: kinds[rng.Intn(len(kinds))],
				A: Any, B: Any, Count: 1 + rng.Intn(2), Delay: ms(1, 4)})
		}
		t += w + ms(4, 10)
		if rng.Intn(100) < 30 {
			at(t, rng.Intn(spec.Shards), Step{Kind: StepCheckpoint})
			t += ms(3, 6)
		}
	}
	s.Normalize()
	return s
}
