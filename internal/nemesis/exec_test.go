package nemesis

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
)

// oarSchedule is a full-contact schedule for the OAR backend: sequencer
// minority partition with scripted suspicions, a mid-run checkpoint, a
// wrongful flap, and reply duplication.
const oarScheduleText = `
@6ms s0 partition 0 | 1 2 clients=1
@9ms s0 suspect 1 0
@9ms s0 suspect 2 0
@30ms s0 heal
@33ms s0 trust * 0
@40ms s0 checkpoint
@46ms s0 suspect 0 2
@46ms s0 suspect 1 2
@60ms s0 trust * 2
@64ms s0 dup reply *->* x2
@70ms s0 checkpoint
`

// mildScheduleText avoids epoch machinery the baselines don't have: slow
// links, a non-sequencer partition, duplication, and a checkpoint.
const mildScheduleText = `
@5ms s0 slow 1->2 1ms 2ms
@10ms s0 partition 1 | 0 2 clients=1
@26ms s0 heal
@30ms s0 dup reply *->* x2
@36ms s0 fast
@40ms s0 checkpoint
`

// TestRunCleanUnderFaults: every backend survives its schedule with zero
// violations and completes the full workload.
func TestRunCleanUnderFaults(t *testing.T) {
	cases := []struct {
		protocol cluster.Protocol
		text     string
	}{
		{cluster.OAR, oarScheduleText},
		{cluster.FixedSeq, mildScheduleText},
		{cluster.CTab, mildScheduleText},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.protocol), func(t *testing.T) {
			t.Parallel()
			sched, err := Parse(tc.text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{Protocol: tc.protocol, Requests: 48, Seed: 7}, sched)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatalf("violations: %v", res.Violations)
			}
			if res.Ops != 48 {
				t.Fatalf("completed %d/48 ops", res.Ops)
			}
		})
	}
}

// TestRunShardedOAR: per-shard nemesis attachment — the schedule hits shard 1
// while shard 0 runs undisturbed; both must stay clean.
func TestRunShardedOAR(t *testing.T) {
	sched, err := Parse(`
@5ms s1 partition 0 | 1 2 clients=1
@8ms s1 suspect 1 0
@8ms s1 suspect 2 0
@24ms s1 heal
@27ms s1 trust * 0
@32ms s0 checkpoint
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: 2, Requests: 48, Workers: 4, Seed: 3}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(res.Counts) != 2 {
		t.Fatalf("want 2 per-shard count snapshots, got %d", len(res.Counts))
	}
}

// TestRunSeedDeterminism is the whole-stack determinism regression: the same
// seeds must yield a byte-identical schedule encoding AND identical checker
// trace counts across two in-process runs. The schedule keeps suspicions out
// (no epoch closes ⇒ conservative-delivery count is exactly 0) and the
// workload is all-writes, so every Counts field is closed-form.
func TestRunSeedDeterminism(t *testing.T) {
	spec := GenSpec{Seed: 11}
	if a, b := Generate(spec).Encode(), Generate(spec).Encode(); a != b {
		t.Fatalf("schedule encoding diverged between generations:\n%s\nvs\n%s", a, b)
	}

	sched, err := Parse(`
@4ms s0 slow 0->1 1ms 2ms
@12ms s0 slow 2->c0 1ms 2ms
@25ms s0 fast
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Requests: 40, ReadRatio: -1, Seed: 5}
	want := check.Counts{Issued: 40, Adoptions: 40, Opt: 3 * 40}
	var prev check.Counts
	for run := 0; run < 2; run++ {
		res, err := Run(cfg, sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("run %d violations: %v", run, res.Violations)
		}
		if res.Counts[0] != want {
			t.Fatalf("run %d counts %+v, want %+v", run, res.Counts[0], want)
		}
		if run > 0 && res.Counts[0] != prev {
			t.Fatalf("counts diverged across runs: %+v vs %+v", prev, res.Counts[0])
		}
		prev = res.Counts[0]
	}
}

// TestSeqOrderDropIsSuffixLoss: regression for a harness-model bug the full
// E14 run caught. A count-limited seqorder drop used to lose interior
// ordering messages while the sequencer kept sending until its crash step —
// forging a gapped optimistic order that panicked applyDecision with a
// Lemma 2 prefix violation. The rule now severs whole destinations (suffix
// semantics), so a heavy write burst through the drop→crash window must
// stay clean, repeatedly.
func TestSeqOrderDropIsSuffixLoss(t *testing.T) {
	sched, err := Parse(`
@6ms s0 drop seqorder 0->1 x2
@9ms s0 crash 0
@13ms s0 suspect * 0
`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := Run(Config{Requests: 256, Workers: 8, ReadRatio: -1, Seed: int64(i + 1)}, sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("iter %d violations: %v", i, res.Violations)
		}
	}
}

// TestRunRejectsInvalidSchedule: executor refuses schedules outside the
// model instead of silently running them.
func TestRunRejectsInvalidSchedule(t *testing.T) {
	sched := &Schedule{Steps: []Step{{Kind: StepCrash, A: Replica(5)}}}
	if _, err := Run(Config{}, sched); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

// TestRunReadsExerciseFastPath: a read-heavy run on OAR actually records
// fast-path read adoptions (guards against the nemesis silently testing
// nothing on the read side).
func TestRunReadsExerciseFastPath(t *testing.T) {
	sched, err := Parse("@5ms s0 slow 1->2 1ms 2ms\n@20ms s0 fast\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Requests: 64, ReadRatio: 0.6, Seed: 9}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Reads == 0 {
		t.Fatal("workload issued no reads")
	}
	if res.Counts[0].ReadAdoptions == 0 {
		t.Fatal("no fast-path read adoptions recorded")
	}
}

// violationProperties flattens result violations for assertions.
func violationProperties(res *Result) string {
	var b strings.Builder
	for _, v := range res.Violations {
		b.WriteString(v.Property)
		b.WriteString(";")
	}
	return b.String()
}
