package nemesis

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/proto"
	"repro/internal/workload"
)

// Config shapes one nemesis run: the cluster under test and the workload
// that drives it while the schedule plays.
type Config struct {
	// Protocol is the ordering backend (default "oar").
	Protocol cluster.Protocol
	// N is replicas per group (default 3); Shards the number of groups
	// (default 1).
	N, Shards int
	// Machine is the replicated state machine (default "kv" — it implements
	// app.Reader, so the read fast path is exercised).
	Machine string
	// Requests is the total operation count across all workers (default 64).
	Requests int
	// Workers is the closed-loop concurrency (default 4).
	Workers int
	// Clients is how many client endpoints the workers share (default 1:
	// workers interleaving writes and reads on one client is exactly the
	// monotonic-reads race window the read checks guard).
	Clients int
	// ReadRatio is the fraction of reads (0 = the workload default 0.5;
	// negative = all writes).
	ReadRatio float64
	// Seed derives every workload stream (default 1).
	Seed int64
	// Net configures each shard's network (zero = instant links).
	Net memnet.Options
	// WALRoot, when non-empty, gives every replica a write-ahead log there
	// (see cluster.Options.WALRoot): restarted replicas then recover from
	// disk before catching up from peers. Backends without WAL support
	// ignore it and recover from peers alone.
	WALRoot string
	// WAL gives every replica a write-ahead log in a fresh temporary
	// directory, removed when the run ends. This is the right knob for
	// Search, which replays many schedules with one Config: a shared
	// WALRoot would leak one schedule's durable state into the next run.
	// Ignored when WALRoot is set.
	WAL bool
	// OpTimeout bounds one operation (default 30s — it must comfortably
	// exceed any fault window, since invokes stall under partitions).
	OpTimeout time.Duration
	// SettleTimeout bounds how long a quiescence wait (checkpoint or final)
	// may take before it becomes a liveness violation (default 10s).
	SettleTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Protocol == "" {
		c.Protocol = cluster.OAR
	}
	if c.N == 0 {
		c.N = 3
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Machine == "" {
		c.Machine = "kv"
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.SettleTimeout == 0 {
		c.SettleTimeout = 10 * time.Second
	}
	return c
}

// Violation is one checked-property violation, attributed to its shard.
type Violation struct {
	Shard    int
	Property string
	Detail   string
}

func (v Violation) String() string {
	return fmt.Sprintf("s%d %s: %s", v.Shard, v.Property, v.Detail)
}

// Result is the outcome of one nemesis run.
type Result struct {
	// Violations are all distinct property violations, streaming checks,
	// checkpoint windows and the final verification combined.
	Violations []Violation
	// Counts is the per-shard checker counter snapshot.
	Counts []check.Counts
	// Ops and Reads count completed operations (reads included in Ops).
	Ops, Reads int
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// Failed reports whether any check tripped.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// rule is one armed message-filter action (drop/dup/reorder), consumed
// count-limited at send time. Drops of ordering messages are special: a
// SeqOrder stream carries positions implicitly (arrival order IS the
// order), so losing an interior message would violate the Lemma 2 prefix
// property no real crash can produce. A seqorder drop therefore severs
// whole destinations — the first Count destinations to match lose that one
// AND every later ordering message from the sender (the validator already
// requires the sender to crash after the rule arms, so this is exactly the
// Figure 1b "ordering messages lost in the crash" suffix loss).
type rule struct {
	kind     proto.Kind // 0 = any
	from, to NodeRef
	count    int
	action   StepKind
	delay    time.Duration
	severed  map[proto.NodeID]bool // seqorder drops: destinations cut so far
}

// ruleSet is one shard's mutable filter program. The filter body runs on
// sender goroutines; the mutex only guards the rule list, and a rule is
// consumed (count decremented) before its side effect runs, so a dup's
// inline re-send — which re-enters the filter — can never match itself.
type ruleSet struct {
	net *memnet.Network
	mu  sync.Mutex
	rs  []*rule
	wg  sync.WaitGroup // in-flight reorder timers
}

func (s *ruleSet) add(r *rule) {
	s.mu.Lock()
	s.rs = append(s.rs, r)
	s.mu.Unlock()
}

func (s *ruleSet) clear() {
	s.mu.Lock()
	s.rs = nil
	s.mu.Unlock()
}

// dropSenderRules disarms every drop rule whose sender is from. A drop of
// ordering traffic is justified by the sender's upcoming crash ("lost in the
// crash"); when that sender restarts, the justification is spent — the new
// incarnation's sends are live traffic and must flow.
func (s *ruleSet) dropSenderRules(from NodeRef) {
	s.mu.Lock()
	kept := s.rs[:0]
	for _, r := range s.rs {
		if r.action == StepDrop && r.from == from {
			continue
		}
		kept = append(kept, r)
	}
	s.rs = kept
	s.mu.Unlock()
}

// filter implements memnet.Filter. memnet expands batch envelopes before
// calling it, so payload is always a single kind-tagged message.
func (s *ruleSet) filter(from, to proto.NodeID, payload []byte) memnet.Verdict {
	kind, _, _, err := proto.Unmarshal(payload)
	if err != nil {
		return memnet.Deliver
	}
	s.mu.Lock()
	var hit *rule
	for _, r := range s.rs {
		if r.kind != 0 && r.kind != kind {
			continue
		}
		if !r.from.Matches(from) || !r.to.Matches(to) {
			continue
		}
		if r.action == StepDrop && r.kind == proto.KindSeqOrder {
			// Sticky per destination: severed links stay severed, and up
			// to Count destinations get severed on first match.
			if r.severed[to] {
				hit = r
				break
			}
			if len(r.severed) < r.count {
				r.severed[to] = true
				hit = r
				break
			}
			continue
		}
		if r.count <= 0 {
			continue
		}
		r.count--
		hit = r
		break
	}
	s.mu.Unlock()
	if hit == nil {
		return memnet.Deliver
	}
	switch hit.action {
	case StepDrop:
		return memnet.Drop
	case StepDup:
		// The payload may alias a pooled frame that dies after this send;
		// the duplicate needs its own copy. The inline re-send re-enters
		// this filter with the rule already consumed.
		clone := append([]byte(nil), payload...)
		_ = s.net.Node(from).Send(to, clone)
		return memnet.Deliver
	case StepReorder:
		clone := append([]byte(nil), payload...)
		s.wg.Add(1)
		time.AfterFunc(hit.delay, func() {
			defer s.wg.Done()
			_ = s.net.Node(from).Send(to, clone)
		})
		return memnet.Drop // the delayed re-send IS the message
	}
	return memnet.Deliver
}

// gate pauses the workload for checkpoint windows: workers enter() before
// each operation and exit() after; pause() blocks new entries and waits for
// the in-flight ones to drain.
type gate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	paused   bool
	inflight int
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gate) enter() {
	g.mu.Lock()
	for g.paused {
		g.cond.Wait()
	}
	g.inflight++
	g.mu.Unlock()
}

func (g *gate) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *gate) pause() {
	g.mu.Lock()
	g.paused = true
	for g.inflight > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *gate) resume() {
	g.mu.Lock()
	g.paused = false
	g.cond.Broadcast()
	g.mu.Unlock()
}

// executor is the per-run state.
type executor struct {
	cfg      Config
	cl       *cluster.Cluster
	checkers []*check.Checker
	rules    []*ruleSet
	gate      *gate
	crashed   []map[int]bool // per shard: replica index -> currently crashed
	restarted []map[int]bool // per shard: replica index -> restarted at least once

	vmu  sync.Mutex
	seen map[string]bool
	out  []Violation
}

func (e *executor) record(shard int, property, detail string) {
	e.vmu.Lock()
	defer e.vmu.Unlock()
	key := fmt.Sprintf("%d\x00%s\x00%s", shard, property, detail)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.out = append(e.out, Violation{Shard: shard, Property: property, Detail: detail})
}

func (e *executor) recordChecker(shard int, vs []*check.Violation) {
	for _, v := range vs {
		e.record(shard, v.Property, v.Detail)
	}
}

// Run drives a cluster through the schedule while the workload runs, then
// verifies every proposition plus liveness and structural convergence. The
// returned error is for harness problems (bad config, boot failure) — a
// protocol violation is a Result with Failed()==true, not an error.
func Run(cfg Config, sched *Schedule) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := sched.Validate(cfg.N, cfg.Shards); err != nil {
		return nil, err
	}
	if cfg.WAL && cfg.WALRoot == "" {
		dir, err := os.MkdirTemp("", "oar-nemesis-wal-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.WALRoot = dir
	}

	e := &executor{
		cfg:       cfg,
		checkers:  make([]*check.Checker, cfg.Shards),
		rules:     make([]*ruleSet, cfg.Shards),
		gate:      newGate(),
		crashed:   make([]map[int]bool, cfg.Shards),
		restarted: make([]map[int]bool, cfg.Shards),
		seen:      make(map[string]bool),
	}
	for s := range e.checkers {
		e.checkers[s] = check.New(cfg.N)
		e.crashed[s] = make(map[int]bool)
		e.restarted[s] = make(map[int]bool)
	}

	cl, err := cluster.New(cluster.Options{
		Protocol:  cfg.Protocol,
		N:         cfg.N,
		Shards:    cfg.Shards,
		Machine:   cfg.Machine,
		Net:       cfg.Net,
		FD:        cluster.FDOracle,
		WALRoot:   cfg.WALRoot,
		TracerFor: func(s int) backend.Tracer { return e.checkers[s] },
	})
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	e.cl = cl
	for s := 0; s < cfg.Shards; s++ {
		rs := &ruleSet{net: cl.Net(s)}
		e.rules[s] = rs
		cl.Net(s).SetFilter(rs.filter)
	}

	type rwClient struct {
		inv  cluster.Invoker
		read backend.ReadInvoker // nil when the backend has no fast path
	}
	clients := make([]rwClient, cfg.Clients)
	for i := range clients {
		inv, err := cl.NewClient()
		if err != nil {
			return nil, err
		}
		clients[i].inv = inv
		clients[i].read, _ = inv.(backend.ReadInvoker)
	}

	start := time.Now()
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Workload: workers claim a shared sequence and draw ops from their own
	// deterministic stream (same discipline as workload.RunRW, but pausable
	// at checkpoints and tolerant of mid-run faults via per-op timeouts).
	spec := workload.Spec{
		Workers:   cfg.Workers,
		Requests:  cfg.Requests,
		Warmup:    -1,
		ReadRatio: cfg.ReadRatio,
		Keys:      64,
		ValueSize: 8,
		Seed:      cfg.Seed,
	}
	var (
		next  atomic.Int64
		ops   atomic.Int64
		reads atomic.Int64
		wwg   sync.WaitGroup
	)
	for w := 0; w < cfg.Workers; w++ {
		gen, err := workload.NewGenerator(spec, w)
		if err != nil {
			return nil, err
		}
		cli := clients[w%len(clients)]
		wwg.Add(1)
		go func(w int, gen *workload.Generator, cli rwClient) {
			defer wwg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Requests) || runCtx.Err() != nil {
					return
				}
				e.gate.enter()
				op := gen.NextOp()
				opCtx, opCancel := context.WithTimeout(runCtx, cfg.OpTimeout)
				var err error
				if op.Read && cli.read != nil {
					_, err = cli.read.InvokeRead(opCtx, op.Cmd)
				} else {
					_, err = cli.inv.Invoke(opCtx, op.Cmd)
				}
				opCancel()
				e.gate.exit()
				if err != nil {
					if runCtx.Err() == nil {
						e.record(0, "liveness", fmt.Sprintf("worker %d op %d never completed: %v", w, i, err))
						cancel()
					}
					return
				}
				ops.Add(1)
				if op.Read {
					reads.Add(1)
				}
			}
		}(w, gen, cli)
	}

	// Scheduler: fire the (sorted) steps on the wall clock.
	sorted := sched.Clone()
	sorted.Normalize()
	for _, st := range sorted.Steps {
		if d := time.Until(start.Add(st.At)); d > 0 {
			time.Sleep(d)
		}
		if runCtx.Err() != nil {
			break
		}
		if st.Kind == StepCheckpoint {
			e.checkpoint()
			continue
		}
		e.apply(st)
	}

	// End of schedule: restore the world, let the workload finish, then run
	// the full verification.
	e.stabilizeFaults()
	wwg.Wait()
	for s := range e.rules {
		e.rules[s].wg.Wait() // flush reorder re-sends
	}
	e.settleAndVerify(true)

	res := &Result{
		Violations: e.out,
		Counts:     make([]check.Counts, cfg.Shards),
		Ops:        int(ops.Load()),
		Reads:      int(reads.Load()),
		Elapsed:    time.Since(start),
	}
	for s, c := range e.checkers {
		res.Counts[s] = c.Counts()
	}
	return res, nil
}

// apply executes one non-checkpoint step.
func (e *executor) apply(st Step) {
	net := e.cl.Net(st.Shard)
	group := e.cl.Group()
	switch st.Kind {
	case StepCrash:
		id := st.A.ID()
		net.Crash(id)
		e.checkers[st.Shard].MarkCrashed(id)
		e.crashed[st.Shard][st.A.Index] = true
	case StepRestart:
		// The replica re-boots recovering; the checker learns of the rebirth
		// through the replica's own Restarted/Recovered trace events. Drop
		// rules justified by this replica's crash are spent now — the new
		// incarnation's sends must flow.
		e.rules[st.Shard].dropSenderRules(st.A)
		if err := e.cl.Restart(st.Shard, st.A.Index); err != nil {
			e.record(st.Shard, "harness", fmt.Sprintf("restart %s failed: %v", st.A, err))
			return
		}
		e.crashed[st.Shard][st.A.Index] = false
		e.restarted[st.Shard][st.A.Index] = true
	case StepSuspect:
		if st.A.IsAny() {
			e.cl.Suspect(st.Shard, st.B.ID())
		} else {
			e.cl.Oracle(st.Shard, st.A.Index).Suspect(st.B.ID())
		}
	case StepTrust:
		if st.A.IsAny() {
			e.cl.Trust(st.Shard, st.B.ID())
		} else {
			e.cl.Oracle(st.Shard, st.A.Index).Trust(st.B.ID())
		}
	case StepPartition:
		groups := make([][]proto.NodeID, len(st.Groups))
		for gi, g := range st.Groups {
			for _, r := range g {
				groups[gi] = append(groups[gi], group[r])
			}
		}
		// Every client endpoint must be placed deliberately: memnet isolates
		// any node a partition does not mention.
		groups[st.ClientSide] = append(groups[st.ClientSide], e.cl.ClientIDs()...)
		net.SetPartitions(groups...)
	case StepHeal:
		net.Heal()
	case StepBlock:
		net.Block(st.A.ID(), st.B.ID())
	case StepBlockOneWay:
		net.BlockDirected(st.A.ID(), st.B.ID())
	case StepUnblock:
		net.Unblock(st.A.ID(), st.B.ID())
	case StepSlow:
		net.SetLinkDelay(st.A.ID(), st.B.ID(), memnet.DelayRange{Min: st.Min, Max: st.Max})
	case StepFast:
		net.ClearLinkDelays()
	case StepRegions:
		region := make(map[int]int)
		for gi, g := range st.Groups {
			for _, r := range g {
				region[r] = gi
			}
		}
		for _, a := range st.Groups {
			for _, ra := range a {
				for rb, gb := range region {
					if ra == rb {
						continue
					}
					band := memnet.DelayRange{Min: st.Min, Max: st.Max}
					if region[ra] != gb {
						band = memnet.DelayRange{Min: st.Min2, Max: st.Max2}
					}
					net.SetLinkDelay(group[ra], group[rb], band)
				}
			}
		}
	case StepDrop, StepDup, StepReorder:
		r := &rule{
			kind:   st.MsgKind,
			from:   st.A,
			to:     st.B,
			count:  st.Count,
			action: st.Kind,
			delay:  st.Delay,
		}
		if st.Kind == StepDrop && st.MsgKind == proto.KindSeqOrder {
			r.severed = make(map[proto.NodeID]bool)
		}
		e.rules[st.Shard].add(r)
	}
}

// stabilizeFaults restores every shard to a live configuration: filters
// disarmed, partitions/blocks healed, latency overrides cleared, every
// crashed replica suspected by all survivors and every live replica
// trusted. Latency overrides and suspicions are independent axes of
// connectivity, so each is reset explicitly.
func (e *executor) stabilizeFaults() {
	group := e.cl.Group()
	for s := 0; s < e.cfg.Shards; s++ {
		e.rules[s].clear()
		net := e.cl.Net(s)
		net.Heal()
		net.ClearLinkDelays()
		for i, id := range group {
			if e.crashed[s][i] {
				e.cl.Suspect(s, id)
			} else {
				e.cl.Trust(s, id)
			}
		}
	}
}

// settleAndVerify waits for every shard to reach Prop-4 quiescence, then
// runs the safety suite; with final it adds the liveness verdict and the
// structural assertion that all live replicas' machines converged.
func (e *executor) settleAndVerify(final bool) {
	// Recovery liveness first: a restarted replica that is still up must
	// complete catch-up. The checker cannot see a stalled recovery — the
	// replica stays in its crashed set until Recovered — so this is checked
	// against the replica's own counters.
	for s := 0; s < e.cfg.Shards; s++ {
		for i, restarted := range e.restarted[s] {
			if !restarted || e.crashed[s][i] {
				continue
			}
			i := i
			if !cluster.WaitUntil(e.cfg.SettleTimeout, func() bool {
				return e.cl.ReplicaStats(s, i).Recoveries >= 1
			}) {
				e.record(s, "recovery liveness",
					fmt.Sprintf("restarted replica %d never finished catch-up within %v", i, e.cfg.SettleTimeout))
			}
		}
	}
	for s := 0; s < e.cfg.Shards; s++ {
		if !cluster.WaitUntil(e.cfg.SettleTimeout, e.checkers[s].LivenessSettled) {
			e.record(s, "liveness", fmt.Sprintf("shard did not settle within %v", e.cfg.SettleTimeout))
		}
	}
	for s := 0; s < e.cfg.Shards; s++ {
		e.recordChecker(s, e.checkers[s].Verify())
		if !final {
			continue
		}
		e.recordChecker(s, e.checkers[s].VerifyLiveness())
		// Structural convergence: the live machines of a settled shard hold
		// prefix-consistent logs with identical request sets, so their
		// fingerprints must meet. Polled because the tracer event precedes
		// the sender's next instant by a hair.
		live := -1
		for i := 0; i < e.cfg.N; i++ {
			if !e.crashed[s][i] {
				live = i
				break
			}
		}
		if live < 0 {
			continue
		}
		s := s
		converged := cluster.WaitUntil(e.cfg.SettleTimeout, func() bool {
			want := e.cl.Machine(s, live).Fingerprint()
			for i := live + 1; i < e.cfg.N; i++ {
				if e.crashed[s][i] {
					continue
				}
				if e.cl.Machine(s, i).Fingerprint() != want {
					return false
				}
			}
			return true
		})
		if !converged {
			e.record(s, "structural", "live replicas' machine fingerprints never converged")
		}
	}
}

// checkpoint is the schedule-aware liveness window: restore connectivity,
// drain the workload, wait for quiescence, run the safety suite mid-run,
// resume. Faults are restored FIRST — in-flight operations may be stalled
// behind a partition, and the drain must not wait on them forever.
func (e *executor) checkpoint() {
	e.stabilizeFaults()
	e.gate.pause()
	for s := range e.rules {
		e.rules[s].wg.Wait()
	}
	e.settleAndVerify(false)
	e.gate.resume()
}
