//go:build framecheck

package memnet

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// TestBatcherRecycleFramecheck drives the full pooled-frame recycle loop —
// Batcher.Flush acquires a frame and hands it to memnet's SendFrame, memnet
// delivers it as an owned Message, the receiver expands and releases — with
// the framecheck instrumentation live. Combined with -race this turns the
// two failure modes of the recycle path (double release re-pooling a live
// frame; a sender touching a released buffer) into immediate panics at the
// faulty site instead of corrupt-decode heisenbugs downstream:
//
//	go test -race -tags=framecheck ./internal/transport/ ./internal/memnet/
func TestBatcherRecycleFramecheck(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)

	const rounds, perRound = 200, 8
	done := make(chan int, 1)
	go func() {
		got := 0
		for m := range b.Recv() {
			msgs, ok := transport.ExpandBatch(m)
			if ok {
				got += len(msgs)
			} else {
				got++
			}
			// One Release per delivered envelope: the inner messages alias
			// its frame and are dead after this.
			m.Release()
			if got >= rounds*perRound {
				break
			}
		}
		done <- got
	}()

	batcher := transport.NewBatcher(a, 0)
	payload := proto.Marshal(proto.KindHeartbeat, 0, nil)
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			batcher.Add(1, payload)
		}
		batcher.Flush()
	}

	select {
	case got := <-done:
		if got != rounds*perRound {
			t.Fatalf("received %d inner messages, want %d", got, rounds*perRound)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for deliveries")
	}
}
