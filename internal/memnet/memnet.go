// Package memnet is an in-process implementation of the transport abstraction
// with configurable per-message latency, network partitions and fault
// injection. It implements the system model of Section 3 of the paper:
// channels are reliable and FIFO. A partition does not lose messages — it
// holds them until the partition heals (reliable channels merely become slow,
// which is what makes ◊S suspicions possible without violating the model).
//
// Fault injection:
//   - Crash(id) crashes a process: it stops receiving and further sends fail.
//   - SetFilter installs a send-time filter that can silently drop specific
//     messages (used to reproduce the Figure 1(b) scenario where the
//     sequencer's reply reaches the client but its ordering message is lost
//     in the crash).
//   - SetPartitions splits the network into groups; cross-group messages are
//     held until Heal.
package memnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// Options configures a Network.
type Options struct {
	// MinDelay and MaxDelay bound the one-way latency applied to each
	// message. Delays are sampled uniformly; FIFO order is preserved by
	// enforcing monotonic delivery times per link. Zero means instant.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Seed seeds the latency sampler. Zero picks a fixed default so runs are
	// reproducible unless the caller opts into variation.
	Seed int64
}

// Verdict is a filter's decision about a message at send time.
type Verdict int

// Filter verdicts.
const (
	// Deliver lets the message proceed normally.
	Deliver Verdict = iota + 1
	// Drop silently discards the message (models a crash between sends).
	Drop
)

// Filter inspects an outgoing message. It runs on the sender's goroutine
// before the message enters the network.
type Filter func(from, to proto.NodeID, payload []byte) Verdict

// Stats aggregates network-wide counters. MessagesSent counts transport
// frames; BatchFrames counts the subset that were proto.Batch envelopes and
// BatchedMessages the kind-tagged messages those envelopes carried, so
// (MessagesSent - BatchFrames + BatchedMessages) is the logical message count.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64
	BytesSent         uint64
	BatchFrames       uint64
	BatchedMessages   uint64
}

// Add accumulates other into s (used to aggregate per-shard networks).
func (s *Stats) Add(other Stats) {
	s.MessagesSent += other.MessagesSent
	s.MessagesDelivered += other.MessagesDelivered
	s.MessagesDropped += other.MessagesDropped
	s.BytesSent += other.BytesSent
	s.BatchFrames += other.BatchFrames
	s.BatchedMessages += other.BatchedMessages
}

// Network is an in-memory message bus between nodes.
type Network struct {
	opts Options

	mu       sync.Mutex
	topo     *sync.Cond // broadcast on partition change / close / crash
	rng      *rand.Rand
	nodes    map[proto.NodeID]*Node
	links    map[linkKey]*link
	group    map[proto.NodeID]int // partition group; empty map = fully connected
	hasParts bool
	blocked  map[linkKey]bool // pairwise holds, independent of groups
	crashed  map[proto.NodeID]bool
	filter   Filter
	closed   bool
	wg       sync.WaitGroup

	sent        atomic.Uint64
	delivered   atomic.Uint64
	dropped     atomic.Uint64
	bytes       atomic.Uint64
	batchFrames atomic.Uint64
	batchedMsgs atomic.Uint64
	kindCount   [256]atomic.Uint64
}

type linkKey struct {
	from, to proto.NodeID
}

// New creates a network.
func New(opts Options) *Network {
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	n := &Network{
		opts:    opts,
		rng:     rand.New(rand.NewSource(seed)),
		nodes:   make(map[proto.NodeID]*Node),
		links:   make(map[linkKey]*link),
		group:   make(map[proto.NodeID]int),
		blocked: make(map[linkKey]bool),
		crashed: make(map[proto.NodeID]bool),
	}
	n.topo = sync.NewCond(&n.mu)
	return n
}

// Node returns (creating on first use) the endpoint for id.
func (n *Network) Node(id proto.NodeID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[id]; ok {
		return nd
	}
	nd := &Node{net: n, id: id, inbox: transport.NewQueue()}
	n.nodes[id] = nd
	return nd
}

// SetFilter installs f as the send-time filter (nil removes it).
func (n *Network) SetFilter(f Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.filter = f
}

// Crash marks id as crashed: its pending inbox is discarded, future sends
// from it fail and messages addressed to it are dropped. In-flight messages
// it already sent are still delivered (they left the process before the
// crash).
func (n *Network) Crash(id proto.NodeID) {
	n.mu.Lock()
	nd := n.nodes[id]
	if n.crashed[id] {
		n.mu.Unlock()
		return
	}
	n.crashed[id] = true
	n.topo.Broadcast()
	n.mu.Unlock()
	if nd != nil {
		nd.inbox.Close()
	}
}

// Crashed reports whether id has crashed.
func (n *Network) Crashed(id proto.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// SetPartitions splits the network: only processes within the same group can
// exchange messages; cross-group messages are held (not lost) until Heal or
// a new topology permits them. A process not listed in any group is isolated.
func (n *Network) SetPartitions(groups ...[]proto.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[proto.NodeID]int)
	n.hasParts = true
	for gi, g := range groups {
		for _, id := range g {
			n.group[id] = gi + 1
		}
	}
	n.topo.Broadcast()
}

// Heal removes all partitions and pairwise blocks; held messages resume
// delivery in order.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[proto.NodeID]int)
	n.hasParts = false
	n.blocked = make(map[linkKey]bool)
	n.topo.Broadcast()
}

// Block holds all traffic between a and b, in both directions, until
// Unblock or Heal. Unlike a partition it affects only this pair. Messages
// are held, not lost (reliable channels).
func (n *Network) Block(a, b proto.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[linkKey{from: a, to: b}] = true
	n.blocked[linkKey{from: b, to: a}] = true
	n.topo.Broadcast()
}

// BlockGroups blocks every pair (a, b) with a ∈ as and b ∈ bs, both
// directions — a convenience for scripting minority partitions while
// leaving other connectivity (e.g. clients) intact.
func (n *Network) BlockGroups(as, bs []proto.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range as {
		for _, b := range bs {
			n.blocked[linkKey{from: a, to: b}] = true
			n.blocked[linkKey{from: b, to: a}] = true
		}
	}
	n.topo.Broadcast()
}

// Unblock removes the pairwise hold between a and b.
func (n *Network) Unblock(a, b proto.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, linkKey{from: a, to: b})
	delete(n.blocked, linkKey{from: b, to: a})
	n.topo.Broadcast()
}

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats {
	return Stats{
		MessagesSent:      n.sent.Load(),
		MessagesDelivered: n.delivered.Load(),
		MessagesDropped:   n.dropped.Load(),
		BytesSent:         n.bytes.Load(),
		BatchFrames:       n.batchFrames.Load(),
		BatchedMessages:   n.batchedMsgs.Load(),
	}
}

// KindCount returns how many messages with the given leading kind byte were
// sent. Protocol payloads are kind-tagged, so this gives per-message-type
// traffic counts for the experiments.
func (n *Network) KindCount(k proto.Kind) uint64 {
	return n.kindCount[byte(k)].Load()
}

// ResetStats zeroes all counters (used between benchmark phases).
func (n *Network) ResetStats() {
	n.sent.Store(0)
	n.delivered.Store(0)
	n.dropped.Store(0)
	n.bytes.Store(0)
	n.batchFrames.Store(0)
	n.batchedMsgs.Store(0)
	for i := range n.kindCount {
		n.kindCount[i].Store(0)
	}
}

// Close shuts the network down: all links stop and all node inboxes close.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]*Node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.topo.Broadcast()
	n.mu.Unlock()

	for _, l := range links {
		l.close()
	}
	n.wg.Wait()
	for _, nd := range nodes {
		nd.inbox.Close()
	}
}

// blockedLocked reports whether from->to traffic is currently held.
// Caller must hold n.mu.
func (n *Network) blockedLocked(from, to proto.NodeID) bool {
	if n.blocked[linkKey{from: from, to: to}] {
		return true
	}
	if !n.hasParts {
		return false
	}
	gf, okf := n.group[from]
	gt, okt := n.group[to]
	return !okf || !okt || gf != gt
}

// sampleDelayLocked draws a one-way latency. Caller must hold n.mu.
func (n *Network) sampleDelayLocked() time.Duration {
	lo, hi := n.opts.MinDelay, n.opts.MaxDelay
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(n.rng.Int63n(int64(hi-lo)))
}

// Node is one process's endpoint on a Network.
type Node struct {
	net   *Network
	id    proto.NodeID
	inbox *transport.Queue
}

var _ transport.Node = (*Node)(nil)

// ID implements transport.Node.
func (nd *Node) ID() proto.NodeID { return nd.id }

// Recv implements transport.Node.
func (nd *Node) Recv() <-chan transport.Message { return nd.inbox.Out() }

// Close implements transport.Node. It only closes this endpoint's inbox; the
// network keeps running for other nodes.
func (nd *Node) Close() error {
	nd.inbox.Close()
	return nil
}

// Send implements transport.Node.
func (nd *Node) Send(to proto.NodeID, payload []byte) error {
	n := nd.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	if n.crashed[nd.id] {
		n.mu.Unlock()
		return fmt.Errorf("send from %v: %w", nd.id, transport.ErrCrashed)
	}
	filter := n.filter
	n.mu.Unlock()

	if filter != nil {
		payload, ok := applyFilter(filter, nd.id, to, payload)
		if !ok {
			n.dropped.Add(1)
			return nil // a dropped message is indistinguishable from a slow one
		}
		return nd.sendFiltered(to, payload)
	}
	return nd.sendFiltered(to, payload)
}

// applyFilter runs the send-time filter. Filters are batch-aware: for a
// proto.Batch frame the filter judges each inner message individually and the
// envelope is rebuilt from the survivors, so fault-injection scripts written
// against single messages (e.g. "drop the sequencer's ordering messages")
// keep working when the hot path coalesces frames. Returns ok=false when the
// whole payload is dropped.
func applyFilter(filter Filter, from, to proto.NodeID, payload []byte) ([]byte, bool) {
	kind, group, body, err := proto.Unmarshal(payload)
	if err != nil || kind != proto.KindBatch {
		return payload, filter(from, to, payload) == Deliver
	}
	batch, err := proto.UnmarshalBatch(body)
	if err != nil {
		return payload, filter(from, to, payload) == Deliver
	}
	kept := make([][]byte, 0, len(batch.Msgs))
	for _, inner := range batch.Msgs {
		if filter(from, to, inner) == Deliver {
			kept = append(kept, inner)
		}
	}
	switch len(kept) {
	case 0:
		return nil, false
	case len(batch.Msgs):
		return payload, true // nothing dropped; keep the original envelope
	case 1:
		return kept[0], true
	default:
		return proto.MarshalBatch(group, kept), true
	}
}

// sendFiltered enqueues a payload that has passed the filter stage.
func (nd *Node) sendFiltered(to proto.NodeID, payload []byte) error {
	n := nd.net

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	key := linkKey{from: nd.id, to: to}
	l, ok := n.links[key]
	if !ok {
		l = newLink(n, key)
		n.links[key] = l
		n.wg.Add(1)
		go l.run()
	}
	delay := n.sampleDelayLocked()
	n.mu.Unlock()

	n.sent.Add(1)
	n.bytes.Add(uint64(len(payload)))
	if len(payload) > 0 {
		n.kindCount[payload[0]].Add(1)
		// Batch-aware accounting: a KindBatch frame also counts its inner
		// messages under their own kinds (and in the batching counters), so
		// per-message-type experiment counters stay meaningful when the hot
		// path coalesces frames.
		if proto.Kind(payload[0]) == proto.KindBatch {
			if _, _, body, err := proto.Unmarshal(payload); err == nil {
				if batch, err := proto.UnmarshalBatch(body); err == nil {
					n.batchFrames.Add(1)
					n.batchedMsgs.Add(uint64(len(batch.Msgs)))
					for _, inner := range batch.Msgs {
						n.kindCount[inner[0]].Add(1)
					}
				}
			}
		}
	}
	l.push(payload, delay)
	return nil
}

// link is a FIFO channel from one process to another with latency and
// hold-on-partition semantics. A single goroutine per link preserves order.
type link struct {
	net *Network
	key linkKey

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []inflight
	lastAt  time.Time
	closing bool
}

type inflight struct {
	payload   []byte
	deliverAt time.Time
}

func newLink(n *Network, key linkKey) *link {
	l := &link{net: n, key: key}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *link) push(payload []byte, delay time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closing {
		return
	}
	at := time.Now().Add(delay)
	if at.Before(l.lastAt) {
		at = l.lastAt // keep delivery times monotonic => FIFO
	}
	l.lastAt = at
	l.queue = append(l.queue, inflight{payload: payload, deliverAt: at})
	l.cond.Signal()
}

func (l *link) close() {
	l.mu.Lock()
	l.closing = true
	l.cond.Signal()
	l.mu.Unlock()
}

func (l *link) run() {
	n := l.net
	defer n.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closing {
			l.cond.Wait()
		}
		if l.closing {
			l.mu.Unlock()
			return
		}
		item := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		if d := time.Until(item.deliverAt); d > 0 {
			time.Sleep(d)
		}

		// Hold while the destination is unreachable (partition). Reliable
		// channels: the message waits, it is not lost.
		n.mu.Lock()
		for n.blockedLocked(l.key.from, l.key.to) && !n.closed && !n.crashed[l.key.to] {
			n.topo.Wait()
		}
		dead := n.closed || n.crashed[l.key.to]
		dest := n.nodes[l.key.to]
		n.mu.Unlock()

		if dead || dest == nil {
			n.dropped.Add(1)
			continue
		}
		dest.inbox.Push(transport.Message{From: l.key.from, Payload: item.payload})
		n.delivered.Add(1)
	}
}
