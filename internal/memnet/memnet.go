// Package memnet is an in-process implementation of the transport abstraction
// with configurable per-message latency, network partitions and fault
// injection. It implements the system model of Section 3 of the paper:
// channels are reliable and FIFO. A partition does not lose messages — it
// holds them until the partition heals (reliable channels merely become slow,
// which is what makes ◊S suspicions possible without violating the model).
//
// Fault injection:
//   - Crash(id) crashes a process: it stops receiving and further sends fail.
//   - SetFilter installs a send-time filter that can silently drop specific
//     messages (used to reproduce the Figure 1(b) scenario where the
//     sequencer's reply reaches the client but its ordering message is lost
//     in the crash).
//   - SetPartitions splits the network into groups; cross-group messages are
//     held until Heal.
//   - Block/BlockDirected/BlockGroups hold individual (or one-way) links;
//     SetLinkDelay overrides a link's latency band (gray links, WAN region
//     topologies). All of these are safe to flip concurrently with senders —
//     the nemesis (internal/nemesis) mutates them mid-burst on a schedule.
//
// Locking model: the send path is contention-free in steady state. A send
// touches no network-wide mutex — liveness flags (closed, crashed, filter
// installed, topology restricted) are atomics, the per-link registry is a
// read-mostly sync.Map, latency is sampled by a per-link generator under the
// link's own lock, and all counters are atomics. The network-wide topoMu
// guards only topology mutations (partitions, blocks, crashes, close) and
// the slow paths that must observe them: link/node creation, and a link's
// hold-while-partitioned wait. Fault-injection filters likewise divert the
// affected send onto the slow path; an unfiltered, unpartitioned network
// never takes the global lock after warm-up.
package memnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// Options configures a Network.
type Options struct {
	// MinDelay and MaxDelay bound the one-way latency applied to each
	// message. Delays are sampled uniformly; FIFO order is preserved by
	// enforcing monotonic delivery times per link. Zero means instant.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Seed seeds the latency sampler. Zero picks a fixed default so runs are
	// reproducible unless the caller opts into variation. Each link derives
	// its own deterministic sampler from (Seed, from, to), so sampling never
	// serializes concurrent senders.
	Seed int64
}

// Verdict is a filter's decision about a message at send time.
type Verdict int

// Filter verdicts.
const (
	// Deliver lets the message proceed normally.
	Deliver Verdict = iota + 1
	// Drop silently discards the message (models a crash between sends).
	Drop
)

// Filter inspects an outgoing message. It runs on the sender's goroutine
// before the message enters the network.
type Filter func(from, to proto.NodeID, payload []byte) Verdict

// Stats aggregates network-wide counters. MessagesSent counts transport
// frames; BatchFrames counts the subset that were proto.Batch envelopes and
// BatchedMessages the kind-tagged messages those envelopes carried, so
// (MessagesSent - BatchFrames + BatchedMessages) is the logical message count.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64
	BytesSent         uint64
	BatchFrames       uint64
	BatchedMessages   uint64
}

// Add accumulates other into s (used to aggregate per-shard networks).
func (s *Stats) Add(other Stats) {
	s.MessagesSent += other.MessagesSent
	s.MessagesDelivered += other.MessagesDelivered
	s.MessagesDropped += other.MessagesDropped
	s.BytesSent += other.BytesSent
	s.BatchFrames += other.BatchFrames
	s.BatchedMessages += other.BatchedMessages
}

// Network is an in-memory message bus between nodes.
type Network struct {
	opts Options

	// Topology state, guarded by topoMu. topo is broadcast on partition
	// change / close / crash to wake links holding messages.
	topoMu   sync.Mutex
	topo     *sync.Cond
	group    map[proto.NodeID]int // partition group; empty map = fully connected
	hasParts bool
	blocked  map[linkKey]bool // pairwise holds, independent of groups
	crashed  map[proto.NodeID]bool
	incs     map[proto.NodeID]uint64 // endpoint incarnation, bumped by Revive
	delays   map[linkKey]DelayRange  // per-link latency overrides for links not yet created
	wg       sync.WaitGroup

	// Send-path liveness flags, readable without any lock.
	closed     atomic.Bool
	restricted atomic.Bool // a partition or block may be active: deliver via topoMu
	filter     atomic.Pointer[Filter]

	nodes sync.Map // proto.NodeID -> *Node
	links sync.Map // linkKey -> *link

	sent        atomic.Uint64
	delivered   atomic.Uint64
	dropped     atomic.Uint64
	bytes       atomic.Uint64
	batchFrames atomic.Uint64
	batchedMsgs atomic.Uint64
	kindCount   [256]atomic.Uint64
}

type linkKey struct {
	from, to proto.NodeID
}

// New creates a network.
func New(opts Options) *Network {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	n := &Network{
		opts:    opts,
		group:   make(map[proto.NodeID]int),
		blocked: make(map[linkKey]bool),
		crashed: make(map[proto.NodeID]bool),
		incs:    make(map[proto.NodeID]uint64),
		delays:  make(map[linkKey]DelayRange),
	}
	n.topo = sync.NewCond(&n.topoMu)
	return n
}

// Node returns (creating on first use) the endpoint for id.
func (n *Network) Node(id proto.NodeID) *Node {
	if v, ok := n.nodes.Load(id); ok {
		return v.(*Node)
	}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if v, ok := n.nodes.Load(id); ok {
		return v.(*Node)
	}
	nd := &Node{net: n, id: id, inc: n.incs[id], inbox: transport.NewQueue()}
	if n.crashed[id] {
		nd.crashed.Store(true)
	}
	n.nodes.Store(id, nd)
	return nd
}

// SetFilter installs f as the send-time filter (nil removes it).
func (n *Network) SetFilter(f Filter) {
	if f == nil {
		n.filter.Store(nil)
		return
	}
	n.filter.Store(&f)
}

// Crash marks id as crashed: its pending inbox is discarded, future sends
// from it fail and messages addressed to it are dropped. In-flight messages
// it already sent are still delivered (they left the process before the
// crash).
func (n *Network) Crash(id proto.NodeID) {
	n.topoMu.Lock()
	if n.crashed[id] {
		n.topoMu.Unlock()
		return
	}
	n.crashed[id] = true
	var nd *Node
	if v, ok := n.nodes.Load(id); ok {
		nd = v.(*Node)
		nd.crashed.Store(true)
	}
	n.topo.Broadcast()
	n.topoMu.Unlock()
	if nd != nil {
		nd.inbox.Close()
	}
}

// Revive re-registers a crashed endpoint as a fresh incarnation and returns
// its incarnation number. The previous incarnation's endpoint is superseded:
// messages that were addressed to it — stamped with its incarnation at send
// time — are dropped at delivery even if they are still in flight when the
// new incarnation comes up, exactly as a real rebooted process never
// receives packets accepted by its predecessor's sockets. The caller owns
// booting a new process (replica) on the returned endpoint via Node(id).
func (n *Network) Revive(id proto.NodeID) uint64 {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if !n.crashed[id] {
		return n.incs[id]
	}
	delete(n.crashed, id)
	n.incs[id]++
	inc := n.incs[id]
	nd := &Node{net: n, id: id, inc: inc, inbox: transport.NewQueue()}
	n.nodes.Store(id, nd)
	// Re-stamp every link into id: new sends address the new incarnation.
	// (The nodes.Store above is ordered before the dstInc stores; a sender
	// observing the new incarnation therefore resolves the new endpoint.)
	n.links.Range(func(k, v any) bool {
		if k.(linkKey).to == id {
			l := v.(*link)
			l.dst.Store(nd)
			l.dstInc.Store(inc)
		}
		return true
	})
	n.topo.Broadcast()
	return inc
}

// Crashed reports whether id has crashed.
func (n *Network) Crashed(id proto.NodeID) bool {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	return n.crashed[id]
}

// SetPartitions splits the network: only processes within the same group can
// exchange messages; cross-group messages are held (not lost) until Heal or
// a new topology permits them. A process not listed in any group is isolated.
func (n *Network) SetPartitions(groups ...[]proto.NodeID) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.group = make(map[proto.NodeID]int)
	n.hasParts = true
	for gi, g := range groups {
		for _, id := range g {
			n.group[id] = gi + 1
		}
	}
	n.restricted.Store(true)
	n.topo.Broadcast()
}

// Heal removes all partitions and pairwise blocks; held messages resume
// delivery in order.
func (n *Network) Heal() {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.group = make(map[proto.NodeID]int)
	n.hasParts = false
	n.blocked = make(map[linkKey]bool)
	n.restricted.Store(false)
	n.topo.Broadcast()
}

// DelayRange is a one-way latency band for one directed link. Min == Max
// pins the delay exactly (no sampler draw); otherwise delays are drawn
// uniformly from [Min, Max) by the link's own deterministic sampler.
type DelayRange struct {
	Min, Max time.Duration
}

// SetLinkDelay overrides the one-way latency of the directed link from->to,
// replacing the network-wide Min/MaxDelay band for that link until
// ClearLinkDelays. It is the gray-link / WAN-topology scenario hook: a
// "slow" node is one whose links carry a fat override, a multi-region
// topology is a pairwise set of overrides. The override applies to messages
// sent after the call (in-flight messages keep the delay they were stamped
// with); FIFO per link is preserved — shrinking a delay mid-stream never
// reorders a link. Safe to call concurrently with senders: the override is
// an atomic pointer swap observed by the next send.
func (n *Network) SetLinkDelay(from, to proto.NodeID, d DelayRange) {
	key := linkKey{from: from, to: to}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.delays[key] = d
	if v, ok := n.links.Load(key); ok {
		dr := d
		v.(*link).override.Store(&dr)
	}
}

// ClearLinkDelays removes every per-link latency override; links fall back
// to the network-wide Min/MaxDelay band. Connectivity state (partitions,
// blocks) is untouched — latency quality and reachability are independent
// axes, and Heal likewise leaves overrides in place.
func (n *Network) ClearLinkDelays() {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.delays = make(map[linkKey]DelayRange)
	n.links.Range(func(_, v any) bool {
		v.(*link).override.Store(nil)
		return true
	})
}

// Block holds all traffic between a and b, in both directions, until
// Unblock or Heal. Unlike a partition it affects only this pair. Messages
// are held, not lost (reliable channels).
func (n *Network) Block(a, b proto.NodeID) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.blocked[linkKey{from: a, to: b}] = true
	n.blocked[linkKey{from: b, to: a}] = true
	n.restricted.Store(true)
	n.topo.Broadcast()
}

// BlockDirected holds traffic from a to b only; b can still reach a. This
// is the asymmetric-partition primitive (a router dropping one direction, a
// congested uplink): blockedLocked already evaluates the pair directionally,
// so one-way holds compose with Block/BlockGroups and are cleared by the
// same Unblock/Heal paths.
func (n *Network) BlockDirected(a, b proto.NodeID) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.blocked[linkKey{from: a, to: b}] = true
	n.restricted.Store(true)
	n.topo.Broadcast()
}

// BlockGroups blocks every pair (a, b) with a ∈ as and b ∈ bs, both
// directions — a convenience for scripting minority partitions while
// leaving other connectivity (e.g. clients) intact.
func (n *Network) BlockGroups(as, bs []proto.NodeID) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	for _, a := range as {
		for _, b := range bs {
			n.blocked[linkKey{from: a, to: b}] = true
			n.blocked[linkKey{from: b, to: a}] = true
		}
	}
	n.restricted.Store(true)
	n.topo.Broadcast()
}

// Unblock removes the pairwise hold between a and b. The network stays on
// the checked delivery path until Heal clears all restrictions.
func (n *Network) Unblock(a, b proto.NodeID) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	delete(n.blocked, linkKey{from: a, to: b})
	delete(n.blocked, linkKey{from: b, to: a})
	n.topo.Broadcast()
}

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats {
	return Stats{
		MessagesSent:      n.sent.Load(),
		MessagesDelivered: n.delivered.Load(),
		MessagesDropped:   n.dropped.Load(),
		BytesSent:         n.bytes.Load(),
		BatchFrames:       n.batchFrames.Load(),
		BatchedMessages:   n.batchedMsgs.Load(),
	}
}

// KindCount returns how many messages with the given leading kind byte were
// sent. Protocol payloads are kind-tagged, so this gives per-message-type
// traffic counts for the experiments.
func (n *Network) KindCount(k proto.Kind) uint64 {
	return n.kindCount[byte(k)].Load()
}

// ResetStats zeroes all counters (used between benchmark phases).
func (n *Network) ResetStats() {
	n.sent.Store(0)
	n.delivered.Store(0)
	n.dropped.Store(0)
	n.bytes.Store(0)
	n.batchFrames.Store(0)
	n.batchedMsgs.Store(0)
	for i := range n.kindCount {
		n.kindCount[i].Store(0)
	}
}

// Close shuts the network down: all links stop and all node inboxes close.
func (n *Network) Close() {
	n.topoMu.Lock()
	if n.closed.Load() {
		n.topoMu.Unlock()
		return
	}
	n.closed.Store(true)
	n.topo.Broadcast()
	n.topoMu.Unlock()

	n.links.Range(func(_, v any) bool {
		v.(*link).close()
		return true
	})
	n.wg.Wait()
	n.nodes.Range(func(_, v any) bool {
		v.(*Node).inbox.Close()
		return true
	})
}

// link returns (creating on first use) the FIFO channel from->to, or nil if
// the network is closed.
func (n *Network) link(from, to proto.NodeID) *link {
	key := linkKey{from: from, to: to}
	if v, ok := n.links.Load(key); ok {
		return v.(*link)
	}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if n.closed.Load() {
		return nil
	}
	if v, ok := n.links.Load(key); ok {
		return v.(*link)
	}
	l := newLink(n, key)
	n.links.Store(key, l)
	n.wg.Add(1)
	go l.run()
	return l
}

// blockedLocked reports whether from->to traffic is currently held.
// Caller must hold n.topoMu.
func (n *Network) blockedLocked(from, to proto.NodeID) bool {
	if n.blocked[linkKey{from: from, to: to}] {
		return true
	}
	if !n.hasParts {
		return false
	}
	gf, okf := n.group[from]
	gt, okt := n.group[to]
	return !okf || !okt || gf != gt
}

// Node is one process's endpoint on a Network. Each incarnation of a
// process (initial boot, then one per Revive) is a distinct Node.
type Node struct {
	net     *Network
	id      proto.NodeID
	inc     uint64 // incarnation this endpoint belongs to
	inbox   *transport.Queue
	crashed atomic.Bool
}

var (
	_ transport.Node        = (*Node)(nil)
	_ transport.FrameSender = (*Node)(nil)
)

// ID implements transport.Node.
func (nd *Node) ID() proto.NodeID { return nd.id }

// Recv implements transport.Node.
func (nd *Node) Recv() <-chan transport.Message { return nd.inbox.Out() }

// Close implements transport.Node. It only closes this endpoint's inbox; the
// network keeps running for other nodes.
func (nd *Node) Close() error {
	nd.inbox.Close()
	return nil
}

// Send implements transport.Node. The payload is borrowed by reference: it
// is delivered to the receiver as-is (the sender may share one slice across
// destinations but must not mutate it afterwards).
func (nd *Node) Send(to proto.NodeID, payload []byte) error {
	return nd.send(to, payload, nil)
}

// SendFrame implements transport.FrameSender: ownership of the pooled frame
// transfers to the network, which hands it to the receiving event loop (the
// receiver's Release recycles it) or releases it itself if the message is
// dropped.
func (nd *Node) SendFrame(to proto.NodeID, f *transport.Frame) error {
	return nd.send(to, f.Buf, f)
}

// send is the shared steady-state path: no network-wide lock is taken.
// frame, when non-nil, is the pooled buffer payload aliases.
func (nd *Node) send(to proto.NodeID, payload []byte, frame *transport.Frame) error {
	n := nd.net
	if n.closed.Load() {
		if frame != nil {
			frame.Release()
		}
		return transport.ErrClosed
	}
	if nd.crashed.Load() {
		if frame != nil {
			frame.Release()
		}
		return fmt.Errorf("send from %v: %w", nd.id, transport.ErrCrashed)
	}
	if fp := n.filter.Load(); fp != nil {
		filtered, rebuilt, ok := applyFilter(*fp, nd.id, to, payload)
		if !ok {
			n.dropped.Add(1)
			if frame != nil {
				frame.Release()
			}
			return nil // a dropped message is indistinguishable from a slow one
		}
		if rebuilt {
			// The filter re-assembled the envelope into a fresh owned
			// buffer; the original frame is no longer referenced.
			if frame != nil {
				frame.Release()
			}
			frame = nil
		}
		payload = filtered
	}
	l := n.link(nd.id, to)
	if l == nil {
		if frame != nil {
			frame.Release()
		}
		return transport.ErrClosed
	}
	n.countSend(payload)
	l.push(payload, frame)
	return nil
}

// countSend updates the lock-free traffic counters for one outgoing frame.
// Batch envelopes additionally count their inner messages under their own
// kinds (and in the batching counters), so per-message-type experiment
// counters stay meaningful when the hot path coalesces frames. The envelope
// walk decodes in place — no allocation per frame.
func (n *Network) countSend(payload []byte) {
	n.sent.Add(1)
	n.bytes.Add(uint64(len(payload)))
	if len(payload) == 0 {
		return
	}
	n.kindCount[payload[0]].Add(1)
	if proto.Kind(payload[0]) != proto.KindBatch {
		return
	}
	_, _, body, err := proto.Unmarshal(payload)
	if err != nil {
		return
	}
	inner := uint64(0)
	if err := proto.WalkBatch(body, func(msg []byte) {
		inner++
		n.kindCount[msg[0]].Add(1)
	}); err != nil {
		return
	}
	n.batchFrames.Add(1)
	n.batchedMsgs.Add(inner)
}

// applyFilter runs the send-time filter. Filters are batch-aware: for a
// proto.Batch frame the filter judges each inner message individually and the
// envelope is rebuilt from the survivors, so fault-injection scripts written
// against single messages (e.g. "drop the sequencer's ordering messages")
// keep working when the hot path coalesces frames. Returns ok=false when the
// whole payload is dropped; rebuilt=true when the returned payload is a
// freshly allocated envelope that no longer aliases the input.
func applyFilter(filter Filter, from, to proto.NodeID, payload []byte) (out []byte, rebuilt, ok bool) {
	kind, group, body, err := proto.Unmarshal(payload)
	if err != nil || kind != proto.KindBatch {
		return payload, false, filter(from, to, payload) == Deliver
	}
	batch, err := proto.UnmarshalBatch(body)
	if err != nil {
		return payload, false, filter(from, to, payload) == Deliver
	}
	kept := make([][]byte, 0, len(batch.Msgs))
	for _, inner := range batch.Msgs {
		if filter(from, to, inner) == Deliver {
			kept = append(kept, inner)
		}
	}
	switch len(kept) {
	case 0:
		return nil, false, false
	case len(batch.Msgs):
		return payload, false, true // nothing dropped; keep the original envelope
	case 1:
		return kept[0], false, true // aliases the original payload
	default:
		return proto.MarshalBatch(group, kept), true, true
	}
}

// link is a FIFO channel from one process to another with latency and
// hold-on-partition semantics. A single goroutine per link preserves order.
type link struct {
	net      *Network
	key      linkKey
	dst      atomic.Pointer[Node]       // cached destination endpoint
	dstInc   atomic.Uint64              // destination incarnation new sends address
	override atomic.Pointer[DelayRange] // scenario latency override (SetLinkDelay)

	mu      sync.Mutex
	cond    *sync.Cond
	rng     *rand.Rand // per-link latency sampler; guarded by mu
	queue   []inflight
	lastAt  time.Time
	closing bool
}

type inflight struct {
	payload   []byte
	frame     *transport.Frame // pooled backing buffer; nil for borrowed payloads
	deliverAt time.Time
	inc       uint64 // destination incarnation the message is addressed to
}

// newLink builds the from->to channel. Caller holds n.topoMu (so reading the
// pending delay-override table is race-free). The sampler is created
// unconditionally — a zero-latency network can still grow a slow link later
// via SetLinkDelay, and an unused rand.Rand costs nothing.
func newLink(n *Network, key linkKey) *link {
	l := &link{net: n, key: key}
	l.dstInc.Store(n.incs[key.to])
	l.cond = sync.NewCond(&l.mu)
	// Derive a deterministic per-link seed so concurrent senders never
	// serialize on a shared generator.
	const mix = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	seed := n.opts.Seed
	seed = seed*mix + int64(key.from)
	seed = seed*mix + int64(key.to)
	l.rng = rand.New(rand.NewSource(seed))
	if d, ok := n.delays[key]; ok {
		dr := d
		l.override.Store(&dr)
	}
	return l
}

// sampleDelayLocked draws a one-way latency. Caller must hold l.mu.
func (l *link) sampleDelayLocked() time.Duration {
	lo, hi := l.net.opts.MinDelay, l.net.opts.MaxDelay
	if ov := l.override.Load(); ov != nil {
		lo, hi = ov.Min, ov.Max
	}
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(l.rng.Int63n(int64(hi-lo)))
}

func (l *link) push(payload []byte, frame *transport.Frame) {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		if frame != nil {
			frame.Release()
		}
		return
	}
	at := time.Now().Add(l.sampleDelayLocked())
	if at.Before(l.lastAt) {
		at = l.lastAt // keep delivery times monotonic => FIFO
	}
	l.lastAt = at
	//oar:frame-handoff released by the delivery goroutine after OwnedMessage hand-off, or by close()'s drain
	l.queue = append(l.queue, inflight{payload: payload, frame: frame, deliverAt: at, inc: l.dstInc.Load()})
	l.cond.Signal()
	l.mu.Unlock()
}

func (l *link) close() {
	l.mu.Lock()
	l.closing = true
	dropped := l.queue
	l.queue = nil
	l.cond.Signal()
	l.mu.Unlock()
	for _, item := range dropped {
		if item.frame != nil {
			item.frame.Release()
		}
	}
}

// dest resolves (and caches) the destination endpoint of incarnation inc.
// A cached endpoint of a different incarnation is re-validated against the
// registry; nil means the endpoint does not exist or the message was
// addressed to a superseded incarnation (→ drop, the process it was sent to
// is gone).
func (l *link) dest(inc uint64) *Node {
	if nd := l.dst.Load(); nd != nil && nd.inc == inc {
		return nd
	}
	if v, ok := l.net.nodes.Load(l.key.to); ok {
		nd := v.(*Node)
		l.dst.Store(nd)
		if nd.inc == inc {
			return nd
		}
	}
	return nil
}

func (l *link) run() {
	n := l.net
	defer n.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closing {
			l.cond.Wait()
		}
		if l.closing {
			l.mu.Unlock()
			return
		}
		item := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		if d := time.Until(item.deliverAt); d > 0 {
			time.Sleep(d)
		}

		// Hold while the destination is unreachable (partition). Reliable
		// channels: the message waits, it is not lost. Only a network with
		// partitions or blocks configured takes this lock.
		if n.restricted.Load() {
			n.topoMu.Lock()
			for n.blockedLocked(l.key.from, l.key.to) && !n.closed.Load() && !n.crashed[l.key.to] {
				n.topo.Wait()
			}
			n.topoMu.Unlock()
		}

		dest := l.dest(item.inc)
		if n.closed.Load() || dest == nil || dest.crashed.Load() {
			n.dropped.Add(1)
			if item.frame != nil {
				item.frame.Release()
			}
			continue
		}
		if item.frame != nil {
			dest.inbox.Push(transport.OwnedMessage(l.key.from, item.payload, item.frame))
		} else {
			dest.inbox.Push(transport.Message{From: l.key.from, Payload: item.payload})
		}
		n.delivered.Add(1)
	}
}
