package memnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

func recvOne(t *testing.T, nd *Node, timeout time.Duration) transport.Message {
	t.Helper()
	select {
	case m, ok := <-nd.Recv():
		if !ok {
			t.Fatal("inbox closed")
		}
		return m
	case <-time.After(timeout):
		t.Fatal("timed out waiting for message")
	}
	return transport.Message{}
}

func TestBasicDelivery(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b, time.Second)
	if m.From != 0 || string(m.Payload) != "hi" {
		t.Fatalf("got %+v", m)
	}
}

func TestFIFOPerLink(t *testing.T) {
	net := New(Options{MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 9})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := recvOne(t, b, 2*time.Second)
		if m.Payload[0] != byte(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, m.Payload[0])
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	net := New(Options{MinDelay: 30 * time.Millisecond, MaxDelay: 31 * time.Millisecond})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	start := time.Now()
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~30ms", elapsed)
	}
}

func TestCrashStopsSendAndReceive(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	net.Crash(1)
	if !net.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
	// Sends to a crashed node vanish.
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The crashed node's inbox closes.
	select {
	case _, ok := <-b.Recv():
		if ok {
			t.Fatal("crashed node received a message")
		}
	case <-time.After(time.Second):
		t.Fatal("inbox of crashed node not closed")
	}
	// Sends from a crashed node fail.
	if err := b.Send(0, []byte("y")); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestPartitionHoldsThenHeals(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	net.SetPartitions([]proto.NodeID{0}, []proto.NodeID{1})

	if err := a.Send(1, []byte("held")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("message crossed a partition")
	case <-time.After(50 * time.Millisecond):
	}

	net.Heal()
	m := recvOne(t, b, time.Second)
	if string(m.Payload) != "held" {
		t.Fatalf("got %q", m.Payload)
	}
}

func TestPartitionIntraGroupStillWorks(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b, c := net.Node(0), net.Node(1), net.Node(2)
	net.SetPartitions([]proto.NodeID{0, 1}, []proto.NodeID{2})
	if err := a.Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	if err := a.Send(2, []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Recv():
		t.Fatal("cross-partition delivery")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnlistedNodeIsIsolated(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, c := net.Node(0), net.Node(2)
	net.SetPartitions([]proto.NodeID{0, 1}) // node 2 not listed
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Recv():
		t.Fatal("isolated node received a message")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFilterDrop(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	net.SetFilter(func(from, to proto.NodeID, payload []byte) Verdict {
		if string(payload) == "drop-me" {
			return Drop
		}
		return Deliver
	})
	if err := a.Send(1, []byte("drop-me")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b, time.Second)
	if string(m.Payload) != "keep" {
		t.Fatalf("got %q, want the non-dropped message", m.Payload)
	}
	if s := net.Stats(); s.MessagesDropped == 0 {
		t.Error("dropped counter not incremented")
	}
}

func TestStatsAndKindCount(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)
	payload := proto.Marshal(proto.KindReply, 0, []byte("r"))
	if err := a.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	s := net.Stats()
	if s.MessagesSent != 1 || s.MessagesDelivered != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesSent != uint64(len(payload)) {
		t.Errorf("bytes = %d, want %d", s.BytesSent, len(payload))
	}
	if net.KindCount(proto.KindReply) != 1 {
		t.Error("kind count missing")
	}
	net.ResetStats()
	if s := net.Stats(); s.MessagesSent != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestSendAfterClose(t *testing.T) {
	net := New(Options{})
	a := net.Node(0)
	net.Node(1)
	net.Close()
	if err := a.Send(1, []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	net.Close() // idempotent
}

func TestCloseUnblocksPartitionedLinks(t *testing.T) {
	net := New(Options{})
	a := net.Node(0)
	net.Node(1)
	net.SetPartitions([]proto.NodeID{0}, []proto.NodeID{1})
	if err := a.Send(1, []byte("held")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the link goroutine block on topo
	done := make(chan struct{})
	go func() {
		net.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked on a partition-held link")
	}
}

func TestConcurrentSendersManyNodes(t *testing.T) {
	net := New(Options{MaxDelay: time.Millisecond, Seed: 3})
	defer net.Close()
	const nodes = 6
	const msgs = 100
	for i := 0; i < nodes; i++ {
		net.Node(proto.NodeID(i))
	}
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nd := net.Node(proto.NodeID(i))
			for j := 0; j < msgs; j++ {
				for k := 0; k < nodes; k++ {
					if k == i {
						continue
					}
					if err := nd.Send(proto.NodeID(k), []byte{byte(i), byte(j)}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	// Drain all inboxes; per-sender FIFO must hold at each receiver.
	var recvWG sync.WaitGroup
	for i := 0; i < nodes; i++ {
		recvWG.Add(1)
		go func(i int) {
			defer recvWG.Done()
			nd := net.Node(proto.NodeID(i))
			next := map[byte]byte{}
			for c := 0; c < msgs*(nodes-1); c++ {
				select {
				case m := <-nd.Recv():
					from, seq := m.Payload[0], m.Payload[1]
					if seq != next[from] {
						t.Errorf("node %d: from %d got seq %d want %d", i, from, seq, next[from])
						return
					}
					next[from]++
				case <-time.After(5 * time.Second):
					t.Errorf("node %d: timed out after %d messages", i, c)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	recvWG.Wait()
}

func TestReviveRegistersFreshIncarnation(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a := net.Node(0)
	old := net.Node(1)

	// Warm the a->1 link's destination cache, then crash 1.
	if err := a.Send(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, old, time.Second)
	net.Crash(1)

	// A message sent while 1 is down is addressed to the dead incarnation:
	// it must never surface at the revived endpoint.
	if err := a.Send(1, []byte("stale")); err != nil {
		t.Fatal(err)
	}

	if inc := net.Revive(1); inc != 1 {
		t.Fatalf("Revive(1) = %d, want incarnation 1", inc)
	}
	if net.Crashed(1) {
		t.Fatal("Crashed(1) = true after Revive")
	}
	fresh := net.Node(1)
	if fresh == old {
		t.Fatal("Revive did not re-register the endpoint: Node(1) is the crashed instance")
	}

	// The revived endpoint receives messages sent after the revive — the
	// crashed instance's closed inbox must not shadow it (the dst cache of
	// the a->1 link still pointed at the old incarnation).
	if err := a.Send(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, fresh, time.Second)
	if string(m.Payload) != "post" {
		t.Fatalf("revived node got %q, want %q (stale pre-revive message leaked in?)", m.Payload, "post")
	}

	// And the revived incarnation can send.
	if err := fresh.Send(0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, a, time.Second); string(m.Payload) != "back" {
		t.Fatalf("got %q, want %q", m.Payload, "back")
	}
}

func TestReviveInFlightToOldIncarnationDropped(t *testing.T) {
	// A message in flight (delayed) when its destination crashes and revives
	// was addressed to the previous incarnation and must be dropped, not
	// delivered to the new process.
	net := New(Options{MinDelay: 50 * time.Millisecond, MaxDelay: 51 * time.Millisecond})
	defer net.Close()
	a := net.Node(0)
	net.Node(1)
	if err := a.Send(1, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	net.Crash(1)
	net.Revive(1)
	fresh := net.Node(1)
	select {
	case m, ok := <-fresh.Recv():
		if ok {
			t.Fatalf("new incarnation received %q addressed to the old one", m.Payload)
		}
		t.Fatal("revived inbox closed")
	case <-time.After(150 * time.Millisecond):
		// Dropped, as required.
	}
	if err := a.Send(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, fresh, time.Second); string(m.Payload) != "post" {
		t.Fatalf("got %q, want %q", m.Payload, "post")
	}
}
