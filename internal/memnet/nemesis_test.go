package memnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
)

// These tests pin the topology-mutation semantics the nemesis executor
// (internal/nemesis) builds on. The executor flips partitions, blocks and
// latency overrides on a schedule while the replicas' batchers are sending,
// so every interaction here is load-bearing: if a semantic changes, change
// it here first and knowingly.

// TestHealClearsPairwiseBlocks pins the documented Heal contract: Heal
// removes partitions AND pairwise blocks (both directions), so a nemesis
// schedule's final heal restores full connectivity regardless of which
// block/partition mix produced the outage.
func TestHealClearsPairwiseBlocks(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a, b := n.Node(0), n.Node(1)

	n.Block(0, 1)
	n.BlockDirected(1, 0)
	n.SetPartitions([]proto.NodeID{0}, []proto.NodeID{1})
	if err := a.Send(1, []byte("held")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("message crossed a blocked+partitioned link")
	case <-time.After(20 * time.Millisecond):
	}

	n.Heal()
	select {
	case m := <-b.Recv():
		if string(m.Payload) != "held" {
			t.Fatalf("got %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Heal did not clear the pairwise block")
	}
}

// TestUnblockDoesNotClearPartitions pins the converse: Unblock removes only
// the pairwise hold; a partition keeping the pair apart still holds traffic.
func TestUnblockDoesNotClearPartitions(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a, b := n.Node(0), n.Node(1)

	n.SetPartitions([]proto.NodeID{0}, []proto.NodeID{1})
	n.Block(0, 1)
	n.Unblock(0, 1)
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("Unblock must not pierce an active partition")
	case <-time.After(20 * time.Millisecond):
	}
	n.Heal()
	select {
	case <-b.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("message lost")
	}
}

// TestBlockDirectedIsOneWay verifies the asymmetric-partition primitive:
// a->b held, b->a flowing.
func TestBlockDirectedIsOneWay(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a, b := n.Node(0), n.Node(1)

	n.BlockDirected(0, 1)
	if err := b.Send(0, []byte("up")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-a.Recv():
		if string(m.Payload) != "up" {
			t.Fatalf("got %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reverse direction must keep flowing")
	}

	if err := a.Send(1, []byte("down")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("blocked direction delivered")
	case <-time.After(20 * time.Millisecond):
	}
	n.Unblock(0, 1)
	select {
	case <-b.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("Unblock did not release the one-way hold")
	}
}

// TestSetLinkDelayOverride checks that a gray-link override slows exactly
// the targeted direction of the targeted pair, applies to links that do not
// exist yet (lazy creation), and that ClearLinkDelays restores the base
// band while Heal does not touch it (latency and connectivity are
// independent axes).
func TestSetLinkDelayOverride(t *testing.T) {
	n := New(Options{}) // instant base network
	defer n.Close()
	a, b := n.Node(0), n.Node(1)

	const slow = 40 * time.Millisecond
	// Installed before the 0->1 link exists: must stick on lazy creation.
	n.SetLinkDelay(0, 1, DelayRange{Min: slow, Max: slow})

	t0 := time.Now()
	if err := a.Send(1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	<-b.Recv()
	if d := time.Since(t0); d < slow {
		t.Fatalf("override not applied: delivered in %v, want >= %v", d, slow)
	}

	// The reverse direction is untouched.
	t0 = time.Now()
	if err := b.Send(0, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	<-a.Recv()
	if d := time.Since(t0); d >= slow {
		t.Fatalf("reverse direction inherited the override: %v", d)
	}

	// Heal leaves the override in place...
	n.Heal()
	t0 = time.Now()
	if err := a.Send(1, []byte("still slow")); err != nil {
		t.Fatal(err)
	}
	<-b.Recv()
	if d := time.Since(t0); d < slow {
		t.Fatalf("Heal cleared the latency override (delivered in %v)", d)
	}

	// ...and ClearLinkDelays removes it.
	n.ClearLinkDelays()
	t0 = time.Now()
	if err := a.Send(1, []byte("fast again")); err != nil {
		t.Fatal(err)
	}
	<-b.Recv()
	if d := time.Since(t0); d >= slow {
		t.Fatalf("ClearLinkDelays did not restore the base band: %v", d)
	}
}

// TestLinkDelayPreservesFIFO: shrinking a link's delay mid-stream must not
// let a later message overtake an earlier one (the monotonic-delivery clamp
// is what the FIFO channel model rests on).
func TestLinkDelayPreservesFIFO(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a, b := n.Node(0), n.Node(1)

	n.SetLinkDelay(0, 1, DelayRange{Min: 30 * time.Millisecond, Max: 30 * time.Millisecond})
	if err := a.Send(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	n.SetLinkDelay(0, 1, DelayRange{}) // instant from here on
	if err := a.Send(1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	m1 := <-b.Recv()
	m2 := <-b.Recv()
	if string(m1.Payload) != "first" || string(m2.Payload) != "second" {
		t.Fatalf("FIFO broken: got %q then %q", m1.Payload, m2.Payload)
	}
}

// TestConcurrentScheduleMutation is the race audit behind the nemesis
// executor: many senders blast traffic while a mutator goroutine flips
// partitions, pairwise and one-way blocks, latency overrides and the
// send-time filter as fast as it can. Run under -race this pins that the
// whole scenario-mutation surface is safe mid-burst; the final heal+drain
// asserts no message was lost (reliable channels: holds delay, never drop).
func TestConcurrentScheduleMutation(t *testing.T) {
	n := New(Options{MaxDelay: 100 * time.Microsecond})
	defer n.Close()

	const nodes = 4
	const perSender = 300
	ids := make([]proto.NodeID, nodes)
	for i := range ids {
		ids[i] = proto.NodeID(i)
	}
	var received atomic.Uint64
	var rwg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		nd := n.Node(ids[i])
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for m := range nd.Recv() {
				received.Add(1)
				m.Release()
			}
		}()
	}

	stop := make(chan struct{})
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		rng := rand.New(rand.NewSource(1))
		passthrough := Filter(func(_, _ proto.NodeID, _ []byte) Verdict { return Deliver })
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := ids[rng.Intn(nodes)]
			b := ids[rng.Intn(nodes)]
			switch rng.Intn(8) {
			case 0:
				n.SetPartitions(ids[:nodes/2], ids[nodes/2:])
			case 1:
				n.Heal()
			case 2:
				n.Block(a, b)
			case 3:
				n.BlockDirected(a, b)
			case 4:
				n.Unblock(a, b)
			case 5:
				n.SetLinkDelay(a, b, DelayRange{Min: time.Microsecond, Max: 50 * time.Microsecond})
			case 6:
				n.ClearLinkDelays()
			case 7:
				if rng.Intn(2) == 0 {
					n.SetFilter(passthrough)
				} else {
					n.SetFilter(nil)
				}
			}
		}
	}()

	var swg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		nd := n.Node(ids[i])
		swg.Add(1)
		go func(i int) {
			defer swg.Done()
			for j := 0; j < perSender; j++ {
				to := ids[(i+1+j%(nodes-1))%nodes]
				if err := nd.Send(to, []byte(fmt.Sprintf("m%d-%d", i, j))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(i)
	}
	swg.Wait()
	close(stop)
	mwg.Wait()

	n.Heal()
	n.SetFilter(nil)
	n.ClearLinkDelays()
	want := uint64(nodes * perSender)
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := received.Load()
	n.Close()
	rwg.Wait()
	if got != want {
		t.Fatalf("lost messages under concurrent mutation: delivered %d of %d", got, want)
	}
}
