//go:build framecheck

package memnet

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// TestBatcherUnderScheduleMutationFramecheck replays the nemesis executor's
// steady state — a Batcher flushing pooled frames through memnet while a
// scheduler goroutine flips partitions, blocks, latency overrides and the
// send-time filter — with the frame-ownership instrumentation live. The
// filter path is the dangerous one: applyFilter walks the *borrowed* frame
// bytes (including the inner messages of a batch envelope) on the sender's
// goroutine, so a filter installed mid-burst must never extend a frame's
// lifetime past the Send call. With -race and framecheck any such aliasing
// panics at the faulty site:
//
//	go test -race -tags=framecheck -run ScheduleMutation ./internal/memnet/
func TestBatcherUnderScheduleMutationFramecheck(t *testing.T) {
	net := New(Options{})
	defer net.Close()
	a, b := net.Node(0), net.Node(1)

	const rounds, perRound = 300, 8
	done := make(chan int, 1)
	go func() {
		got := 0
		for m := range b.Recv() {
			msgs, ok := transport.ExpandBatch(m)
			if ok {
				got += len(msgs)
			} else {
				got++
			}
			m.Release()
			if got >= rounds*perRound {
				break
			}
		}
		done <- got
	}()

	stop := make(chan struct{})
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		rng := rand.New(rand.NewSource(7))
		// A filter that inspects every inner message forces applyFilter to
		// decode the whole borrowed frame each send.
		inspect := Filter(func(_, _ proto.NodeID, payload []byte) Verdict {
			if k, _, _, err := proto.Unmarshal(payload); err == nil && k == 0 {
				return Drop // unreachable: kind 0 is invalid
			}
			return Deliver
		})
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(6) {
			case 0:
				net.SetPartitions([]proto.NodeID{0}, []proto.NodeID{1})
			case 1:
				net.Heal()
			case 2:
				net.BlockDirected(0, 1)
			case 3:
				net.SetLinkDelay(0, 1, DelayRange{Min: time.Microsecond, Max: 20 * time.Microsecond})
			case 4:
				net.ClearLinkDelays()
			case 5:
				if rng.Intn(2) == 0 {
					net.SetFilter(inspect)
				} else {
					net.SetFilter(nil)
				}
			}
		}
	}()

	batcher := transport.NewBatcher(a, 0)
	payload := proto.Marshal(proto.KindHeartbeat, 0, nil)
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			batcher.Add(1, payload)
		}
		batcher.Flush()
	}
	close(stop)
	mwg.Wait()
	net.Heal()
	net.SetFilter(nil)
	net.ClearLinkDelays()

	select {
	case got := <-done:
		if got != rounds*perRound {
			t.Fatalf("received %d inner messages, want %d", got, rounds*perRound)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("timed out waiting for deliveries")
	}
}
