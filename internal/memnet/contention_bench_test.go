package memnet

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/proto"
	"repro/internal/transport"
)

// BenchmarkMemnetContention measures the send path under concurrent senders
// sharing one Network — the scenario the sharded locking model exists for.
// Every sender ships frames to its own destination over its own link, so on
// the old design the only shared state was the network-global mutex; on the
// current design the fast path touches only atomics, the link registry
// (read-mostly sync.Map) and the per-link lock. ns/op is the cost of one
// Send as observed by a sender; the parallel variants raise the sender count
// via RunParallel.
func BenchmarkMemnetContention(b *testing.B) {
	run := func(b *testing.B, pooled bool) {
		n := New(Options{}) // instant delivery: the send path dominates
		defer n.Close()

		// One destination per sender goroutine, each with a drainer, so the
		// benchmark measures send-side contention rather than one inbox's
		// consumer throughput.
		var senderIdx atomic.Int32
		payload := proto.MarshalHeartbeat(0)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := senderIdx.Add(1)
			src := n.Node(proto.NodeID(i))
			dst := n.Node(proto.ClientID(int(i)))
			done := make(chan struct{})
			go func() {
				defer close(done)
				for m := range dst.Recv() {
					m.Release()
				}
			}()
			for pb.Next() {
				if pooled {
					f := transport.GetFrame()
					f.Buf = append(f.Buf, payload...)
					if err := src.SendFrame(dst.ID(), f); err != nil {
						b.Error(err)
						return
					}
				} else {
					if err := src.Send(dst.ID(), payload); err != nil {
						b.Error(err)
						return
					}
				}
			}
			_ = dst.Close()
			<-done
		})
	}
	for _, parallelism := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("borrowed/senders=%dx", parallelism), func(b *testing.B) {
			b.SetParallelism(parallelism)
			run(b, false)
		})
		b.Run(fmt.Sprintf("pooled/senders=%dx", parallelism), func(b *testing.B) {
			b.SetParallelism(parallelism)
			run(b, true)
		})
	}
}
