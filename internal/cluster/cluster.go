// Package cluster boots an OAR replica group plus clients over an in-memory
// network and provides the fault-injection and observation hooks used by the
// integration tests, examples, the scenario runner (cmd/oar-sim) and the
// benchmark harness: crash a server, block links between groups, script
// oracle suspicions, poll protocol counters, and verify traces.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/baseline/ctab"
	"repro/internal/baseline/fixedseq"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/memnet"
	"repro/internal/proto"
	"repro/internal/rmcast"
)

// Protocol selects which replication protocol the cluster runs.
type Protocol int

// Protocols.
const (
	// OAR is the paper's optimistic active replication (internal/core).
	OAR Protocol = iota + 1
	// FixedSeq is the Isis-style sequencer baseline (unsafe fail-over).
	FixedSeq
	// CTab is the conservative consensus-per-batch baseline.
	CTab
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case OAR:
		return "oar"
	case FixedSeq:
		return "fixedseq"
	case CTab:
		return "ctab"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Invoker is the common client surface of all three protocols.
type Invoker interface {
	// Invoke submits a command and blocks until a reply is adopted.
	Invoke(ctx context.Context, cmd []byte) (proto.Reply, error)
	// Stop shuts the client down.
	Stop()
}

// FDMode selects how replicas detect failures.
type FDMode int

// Failure-detector modes.
const (
	// FDHeartbeat uses the heartbeat-timeout ◊S detector.
	FDHeartbeat FDMode = iota + 1
	// FDOracle gives every replica a scriptable oracle (tests drive
	// suspicions explicitly; heartbeats are disabled).
	FDOracle
	// FDNever never suspects anyone (pure failure-free benchmarking).
	FDNever
)

// Options configures a cluster.
type Options struct {
	// Protocol selects the replication protocol (default OAR).
	Protocol Protocol
	// N is the number of replicas (1..64).
	N int
	// Machine names the replicated state machine (see app.Names). Default
	// "recorder".
	Machine string
	// Net configures the in-memory network.
	Net memnet.Options
	// FD selects the failure detector (default FDHeartbeat).
	FD FDMode
	// FDTimeout is the heartbeat suspicion timeout (default 25ms).
	FDTimeout time.Duration
	// RelayMode selects the reliable-multicast strategy (default Eager).
	RelayMode rmcast.Mode
	// EpochRequestLimit forces a PhaseII after that many optimistic
	// deliveries per epoch (0 = off); see the Section 5.3 Remark.
	EpochRequestLimit int
	// BatchWindow and MaxBatch tune the sequencer's ordering batches (OAR
	// only); see core.ServerConfig. MaxBatch=1 reproduces the unbatched
	// one-SeqOrder-per-request behavior.
	BatchWindow time.Duration
	MaxBatch    int
	// TickInterval and HeartbeatInterval tune the server loops (defaults
	// from core).
	TickInterval      time.Duration
	HeartbeatInterval time.Duration
	// Tracer observes all protocol events (e.g. a *check.Checker).
	Tracer core.Tracer
}

// lockedMachine makes an app.Machine safe for the cluster's cross-goroutine
// observation (the server loop applies; tests poll Fingerprint).
type lockedMachine struct {
	mu    sync.Mutex
	inner app.Machine
}

var _ app.Machine = (*lockedMachine)(nil)

func (m *lockedMachine) Apply(cmd []byte) ([]byte, func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	result, undo := m.inner.Apply(cmd)
	return result, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		undo()
	}
}

func (m *lockedMachine) Fingerprint() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Fingerprint()
}

// runner is any replica event loop.
type runner interface {
	Run(ctx context.Context) error
}

// Cluster is a running replica group (OAR or one of the baselines).
type Cluster struct {
	opts    Options
	group   []proto.NodeID
	net     *memnet.Network
	servers []*core.Server     // Protocol == OAR
	fsSrv   []*fixedseq.Server // Protocol == FixedSeq
	ctSrv   []*ctab.Server     // Protocol == CTab
	oracles []*fd.Oracle       // non-nil in FDOracle mode
	mach    []app.Machine

	cancel  context.CancelFunc
	wg      sync.WaitGroup
	clients []Invoker
	nextCli int
	mu      sync.Mutex
}

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.N <= 0 || opts.N > proto.MaxGroupSize {
		return nil, fmt.Errorf("cluster: N=%d out of range", opts.N)
	}
	if opts.Machine == "" {
		opts.Machine = "recorder"
	}
	if opts.Protocol == 0 {
		opts.Protocol = OAR
	}
	if opts.FD == 0 {
		opts.FD = FDHeartbeat
	}
	if opts.FDTimeout == 0 {
		opts.FDTimeout = 25 * time.Millisecond
	}

	c := &Cluster{
		opts:  opts,
		group: proto.Group(opts.N),
		net:   memnet.New(opts.Net),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel

	start := time.Now()
	for i := 0; i < opts.N; i++ {
		inner, err := app.New(opts.Machine)
		if err != nil {
			cancel()
			return nil, err
		}
		machine := app.Machine(&lockedMachine{inner: inner})
		c.mach = append(c.mach, machine)

		var detector fd.Detector
		hbInterval := opts.HeartbeatInterval
		switch opts.FD {
		case FDHeartbeat:
			detector = fd.NewTimeout(opts.FDTimeout, c.group, start)
		case FDOracle:
			o := fd.NewOracle()
			c.oracles = append(c.oracles, o)
			detector = o
			hbInterval = -1 // oracles ignore heartbeats; skip the traffic
		case FDNever:
			detector = fd.Never{}
			hbInterval = -1
		default:
			cancel()
			return nil, fmt.Errorf("cluster: unknown FD mode %d", opts.FD)
		}

		var run runner
		switch opts.Protocol {
		case OAR:
			srv, err := core.NewServer(core.ServerConfig{
				ID:                c.group[i],
				Group:             c.group,
				Node:              c.net.Node(c.group[i]),
				Machine:           machine,
				Detector:          detector,
				RelayMode:         opts.RelayMode,
				TickInterval:      opts.TickInterval,
				HeartbeatInterval: hbInterval,
				EpochRequestLimit: opts.EpochRequestLimit,
				BatchWindow:       opts.BatchWindow,
				MaxBatch:          opts.MaxBatch,
				Tracer:            opts.Tracer,
			})
			if err != nil {
				cancel()
				return nil, err
			}
			c.servers = append(c.servers, srv)
			run = srv
		case FixedSeq:
			srv, err := fixedseq.NewServer(fixedseq.Config{
				ID:                c.group[i],
				Group:             c.group,
				Node:              c.net.Node(c.group[i]),
				Machine:           machine,
				Detector:          detector,
				TickInterval:      opts.TickInterval,
				HeartbeatInterval: hbInterval,
				Tracer:            opts.Tracer,
			})
			if err != nil {
				cancel()
				return nil, err
			}
			c.fsSrv = append(c.fsSrv, srv)
			run = srv
		case CTab:
			srv, err := ctab.NewServer(ctab.Config{
				ID:                c.group[i],
				Group:             c.group,
				Node:              c.net.Node(c.group[i]),
				Machine:           machine,
				Detector:          detector,
				TickInterval:      opts.TickInterval,
				HeartbeatInterval: hbInterval,
				Tracer:            opts.Tracer,
			})
			if err != nil {
				cancel()
				return nil, err
			}
			c.ctSrv = append(c.ctSrv, srv)
			run = srv
		default:
			cancel()
			return nil, fmt.Errorf("cluster: unknown protocol %v", opts.Protocol)
		}

		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			_ = run.Run(ctx)
		}()
	}
	return c, nil
}

// Net exposes the underlying network for fault injection and stats.
func (c *Cluster) Net() *memnet.Network { return c.net }

// Group returns Π.
func (c *Cluster) Group() []proto.NodeID { return c.group }

// Server returns replica i's protocol object (for Stats).
func (c *Cluster) Server(i int) *core.Server { return c.servers[i] }

// Machine returns replica i's state machine. Only read it (Fingerprint)
// when the cluster is quiescent.
func (c *Cluster) Machine(i int) app.Machine { return c.mach[i] }

// Oracle returns replica i's scriptable failure detector (FDOracle mode).
func (c *Cluster) Oracle(i int) *fd.Oracle { return c.oracles[i] }

// SuspectEverywhere makes every live replica's oracle suspect id.
func (c *Cluster) SuspectEverywhere(id proto.NodeID) {
	for _, o := range c.oracles {
		o.Suspect(id)
	}
}

// TrustEverywhere clears suspicion of id at every replica's oracle.
func (c *Cluster) TrustEverywhere(id proto.NodeID) {
	for _, o := range c.oracles {
		o.Trust(id)
	}
}

// Crash kills replica i: its endpoint closes and its event loop exits.
func (c *Cluster) Crash(i int) {
	c.net.Crash(c.group[i])
}

// NewClient creates and starts a client matching the cluster's protocol:
// the weight-quorum client of Figure 5 for OAR, the classic first-reply
// client for the baselines.
func (c *Cluster) NewClient() (Invoker, error) {
	c.mu.Lock()
	id := proto.ClientID(c.nextCli)
	c.nextCli++
	c.mu.Unlock()

	var (
		cli Invoker
		err error
	)
	if c.opts.Protocol == OAR {
		var oc *core.Client
		oc, err = core.NewClient(core.ClientConfig{
			ID:        id,
			Group:     c.group,
			Node:      c.net.Node(id),
			Tracer:    c.opts.Tracer,
			Unbatched: c.opts.BatchWindow < 0,
		})
		if err == nil {
			oc.Start()
			cli = oc
		}
	} else {
		var bc *baseline.Client
		bc, err = baseline.NewClient(baseline.ClientConfig{
			ID:     id,
			Group:  c.group,
			Node:   c.net.Node(id),
			Tracer: c.opts.Tracer,
		})
		if err == nil {
			bc.Start()
			cli = bc
		}
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cli)
	c.mu.Unlock()
	return cli, nil
}

// FixedSeqServer returns replica i of a FixedSeq cluster.
func (c *Cluster) FixedSeqServer(i int) *fixedseq.Server { return c.fsSrv[i] }

// CTabServer returns replica i of a CTab cluster.
func (c *Cluster) CTabServer(i int) *ctab.Server { return c.ctSrv[i] }

// DeliveredTotal sums definitive deliveries across replicas, regardless of
// protocol (OAR counts optimistic + conservative deliveries).
func (c *Cluster) DeliveredTotal() uint64 {
	var total uint64
	switch c.opts.Protocol {
	case FixedSeq:
		for _, s := range c.fsSrv {
			total += s.Stats().Delivered
		}
	case CTab:
		for _, s := range c.ctSrv {
			total += s.Stats().Delivered
		}
	default:
		for _, s := range c.servers {
			st := s.Stats()
			total += st.OptDelivered + st.ADelivered - st.OptUndelivered
		}
	}
	return total
}

// TotalStats sums the protocol counters of all replicas.
func (c *Cluster) TotalStats() core.ServerStats {
	var total core.ServerStats
	for _, s := range c.servers {
		st := s.Stats()
		total.OptDelivered += st.OptDelivered
		total.OptUndelivered += st.OptUndelivered
		total.ADelivered += st.ADelivered
		total.Epochs += st.Epochs
		total.SeqOrdersSent += st.SeqOrdersSent
	}
	return total
}

// WaitUntil polls cond every millisecond until it is true or the timeout
// elapses; it reports whether the condition was met.
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// Stop shuts everything down: clients first, then servers, then the network.
func (c *Cluster) Stop() {
	c.mu.Lock()
	clients := append([]Invoker(nil), c.clients...)
	c.mu.Unlock()
	for _, cli := range clients {
		cli.Stop()
	}
	c.cancel()
	c.net.Close() // closes inboxes, unblocking any server loop still reading
	c.wg.Wait()
}
