// Package cluster boots one or more replica groups of any registered
// ordering backend plus clients over in-memory networks and provides the
// fault-injection and observation hooks used by the integration tests,
// examples, the scenario runner (cmd/oar-sim) and the benchmark harness:
// crash a server, block links between groups, script oracle suspicions, poll
// protocol counters, and verify traces.
//
// The cluster is protocol-agnostic: Options.Protocol names a backend in the
// internal/backend registry ("oar", "fixedseq", "ctab", or anything a test
// registers) and every replica and client is built through that one
// interface — there is no protocol-specific code path here. It is also
// group-parameterized: Options.Shards runs that many independent ordering
// groups side by side (each with its own network, failure detectors and
// tracer) — for any backend — and NewClient returns a key-hash-routing
// client spanning all of them. Shards=1 — the default — is the paper's
// single-group system.
//
// Every accessor is group-qualified: Net(s), Machine(s, i), Oracle(s, i),
// Crash(s, i), Suspect(s, id) target ordering group s, so fault injection
// and observation reach any shard. Single-group callers pass 0.
package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/fd"
	"repro/internal/memnet"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/shard"
	"repro/internal/wal"

	// The built-in backends register themselves at init time.
	_ "repro/internal/baseline/ctab"
	_ "repro/internal/baseline/fixedseq"
	_ "repro/internal/core"
)

// Protocol names an ordering backend in the internal/backend registry.
type Protocol string

// The built-in protocols.
const (
	// OAR is the paper's optimistic active replication (internal/core).
	OAR Protocol = "oar"
	// FixedSeq is the Isis-style sequencer baseline (unsafe fail-over).
	FixedSeq Protocol = "fixedseq"
	// CTab is the conservative consensus-per-batch baseline.
	CTab Protocol = "ctab"
)

// String implements fmt.Stringer.
func (p Protocol) String() string { return string(p) }

// Invoker is the common client surface of every backend (and of the sharded
// fan-out client).
type Invoker = backend.Invoker

// FDMode selects how replicas detect failures.
type FDMode int

// Failure-detector modes.
const (
	// FDHeartbeat uses the heartbeat-timeout ◊S detector.
	FDHeartbeat FDMode = iota + 1
	// FDOracle gives every replica a scriptable oracle (tests drive
	// suspicions explicitly; heartbeats are disabled).
	FDOracle
	// FDNever never suspects anyone (pure failure-free benchmarking).
	FDNever
)

// Options configures a cluster.
type Options struct {
	// Protocol names the ordering backend (default OAR). Any backend in the
	// internal/backend registry is valid, including test-registered ones.
	Protocol Protocol
	// N is the number of replicas per ordering group (1..64).
	N int
	// Shards is the number of independent ordering groups (default 1). Each
	// shard is a complete N-replica group of the selected backend on its own
	// in-memory network; clients route commands by key hash.
	Shards int
	// ShardKey extracts the routing key of a command (default: the
	// conventional extractor for Machine, shard.MachineKey).
	ShardKey shard.KeyFunc
	// Machine names the replicated state machine (see app.Names). Default
	// "recorder".
	Machine string
	// Net configures each shard's in-memory network.
	Net memnet.Options
	// FD selects the failure detector (default FDHeartbeat).
	FD FDMode
	// FDTimeout is the heartbeat suspicion timeout (default 25ms).
	FDTimeout time.Duration
	// RelayMode selects the reliable-multicast strategy (default Eager; OAR
	// only).
	RelayMode rmcast.Mode
	// EpochRequestLimit forces a PhaseII after that many optimistic
	// deliveries per epoch (0 = off; OAR only); see the Section 5.3 Remark.
	EpochRequestLimit int
	// BatchWindow and MaxBatch tune the transport batching layer and (for
	// OAR) the sequencer's ordering batches; see core.ServerConfig. A
	// negative BatchWindow disables send coalescing in every backend;
	// MaxBatch=1 reproduces the unbatched one-SeqOrder-per-request behavior.
	BatchWindow time.Duration
	MaxBatch    int
	// AutoTune replaces the static send-side hold with a closed-loop
	// controller (internal/tune) on every replica and client batcher; the
	// effective window then floats between the latency floor and MaxWindow.
	// Requires batching (BatchWindow >= 0).
	AutoTune bool
	// Pipeline runs each replica's event loop as decode → order → send
	// stages on separate goroutines connected by SPSC rings (backends
	// without a staged loop ignore it); PipelineDepth sets the per-ring
	// capacity (backend default when zero).
	Pipeline      bool
	PipelineDepth int
	// TickInterval and HeartbeatInterval tune the server loops (defaults
	// from core).
	TickInterval      time.Duration
	HeartbeatInterval time.Duration
	// Tracer observes all protocol events (e.g. a *check.Checker). With
	// Shards > 1 prefer TracerFor: each group has its own independent total
	// order, so one checker must never observe two groups.
	Tracer backend.Tracer
	// TracerFor, when non-nil, supplies the tracer for each shard and
	// overrides Tracer.
	TracerFor func(s int) backend.Tracer
	// WALRoot, when non-empty, gives every replica a write-ahead log under
	// <WALRoot>/s<shard>/r<i>; a replica restarted via Restart then replays
	// its own log before catching up from peers. Empty (the default) keeps
	// replicas in-memory — Restart still works, recovering purely over the
	// catch-up protocol.
	WALRoot string
	// WALSync selects the fsync policy of replica logs (default
	// wal.SyncAlways: sync once per closed epoch).
	WALSync wal.SyncPolicy
	// SnapshotEvery is the replica snapshot cadence in closed epochs
	// (0 = backend default, negative disables).
	SnapshotEvery int
}

// lockedMachine makes an app.Machine safe for the cluster's cross-goroutine
// observation (the server loop applies; tests poll Fingerprint).
type lockedMachine struct {
	mu    sync.Mutex
	inner app.Machine
}

var _ app.Machine = (*lockedMachine)(nil)

func (m *lockedMachine) Apply(cmd []byte) ([]byte, func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	result, undo := m.inner.Apply(cmd)
	return result, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		undo()
	}
}

func (m *lockedMachine) Fingerprint() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Fingerprint()
}

// lockedReaderMachine additionally forwards the read-only Query surface for
// machines that have one. It is a separate type so that wrapping never
// grants app.Reader to a machine that does not implement it — the replica's
// read fast path keys off the type assertion.
type lockedReaderMachine struct {
	lockedMachine
	reader app.Reader
}

var _ app.Reader = (*lockedReaderMachine)(nil)

func (m *lockedReaderMachine) Query(cmd []byte) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reader.Query(cmd)
}

// lockedDurable forwards the app.Durable surface under the owning wrapper's
// lock. Like app.Reader above, durability is only granted when the inner
// machine has it — the replica's snapshot/recovery path keys off the type
// assertion.
type lockedDurable struct {
	mu      *sync.Mutex
	durable app.Durable
}

func (m *lockedDurable) Snapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable.Snapshot()
}

func (m *lockedDurable) Restore(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable.Restore(data)
}

type lockedDurableMachine struct {
	lockedMachine
	lockedDurable
}

var _ app.Durable = (*lockedDurableMachine)(nil)

type lockedReaderDurableMachine struct {
	lockedReaderMachine
	lockedDurable
}

var (
	_ app.Reader  = (*lockedReaderDurableMachine)(nil)
	_ app.Durable = (*lockedReaderDurableMachine)(nil)
)

// lockMachine wraps inner for cross-goroutine observation, preserving its
// app.Reader and app.Durable implementations exactly when present.
func lockMachine(inner app.Machine) app.Machine {
	r, isReader := inner.(app.Reader)
	d, isDurable := inner.(app.Durable)
	switch {
	case isReader && isDurable:
		m := &lockedReaderDurableMachine{}
		m.inner = inner
		m.reader = r
		m.durable = d
		m.lockedDurable.mu = &m.lockedMachine.mu
		return m
	case isDurable:
		m := &lockedDurableMachine{}
		m.inner = inner
		m.durable = d
		m.lockedDurable.mu = &m.lockedMachine.mu
		return m
	case isReader:
		m := &lockedReaderMachine{reader: r}
		m.inner = inner
		return m
	default:
		return &lockedMachine{inner: inner}
	}
}

// shardGroup is the runtime of one ordering group: its network, replicas,
// machines and scripted detectors. Replicas are backend.Replicas — the
// cluster neither knows nor cares which protocol is behind them.
type shardGroup struct {
	id     proto.GroupID
	net    *memnet.Network
	tracer backend.Tracer
	// mu guards the per-replica slots below: Restart replaces a slot's
	// replica, machine and oracle while observers (stats pollers, fault
	// injectors) read them concurrently.
	mu       sync.RWMutex
	replicas []backend.Replica
	oracles  []*fd.Oracle // non-nil in FDOracle mode
	mach     []app.Machine
	// done[i] closes when replica i's event loop has exited. Restart waits
	// on it: the old loop may still drain queued frames (and append to the
	// WAL) after the crash, and the new incarnation must not share the WAL
	// directory with it.
	done []chan struct{}
	// latency collects client-observed response times for this group: every
	// invoker NewClient hands out is wrapped in backend.Measure recording
	// here, so per-group and cluster-wide percentiles are always available.
	// readLatency splits out fast-path reads (InvokeRead) so the read/write
	// latency gap is observable.
	latency     *metrics.Histogram
	readLatency *metrics.Histogram
}

// Cluster is a running set of replica groups of one ordering backend.
type Cluster struct {
	opts   Options
	be     backend.Backend
	group  []proto.NodeID
	shards []*shardGroup
	router *shard.Router

	ctx     context.Context // run context; Restart boots new replicas into it
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	clients []Invoker
	nextCli int
	mu      sync.Mutex
}

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.N <= 0 || opts.N > proto.MaxGroupSize {
		return nil, fmt.Errorf("cluster: N=%d out of range", opts.N)
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("cluster: Shards=%d out of range", opts.Shards)
	}
	if opts.Machine == "" {
		opts.Machine = "recorder"
	}
	if opts.Protocol == "" {
		opts.Protocol = OAR
	}
	be, err := backend.Lookup(string(opts.Protocol))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if opts.FD == 0 {
		opts.FD = FDHeartbeat
	}
	if opts.FDTimeout == 0 {
		opts.FDTimeout = 25 * time.Millisecond
	}
	if opts.ShardKey == nil {
		opts.ShardKey = shard.MachineKey(opts.Machine)
	}
	router, err := shard.NewRouter(opts.Shards, opts.ShardKey)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		opts:   opts,
		be:     be,
		group:  proto.Group(opts.N),
		router: router,
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.ctx = ctx
	c.cancel = cancel

	for s := 0; s < opts.Shards; s++ {
		sg, err := c.bootShard(ctx, s)
		if err != nil {
			cancel()
			for _, prev := range c.shards {
				prev.net.Close()
			}
			return nil, err
		}
		c.shards = append(c.shards, sg)
	}
	return c, nil
}

// tracerFor resolves the tracer of shard s from the options.
func (c *Cluster) tracerFor(s int) backend.Tracer {
	if c.opts.TracerFor != nil {
		return c.opts.TracerFor(s)
	}
	return c.opts.Tracer
}

// bootShard builds and starts ordering group s.
func (c *Cluster) bootShard(ctx context.Context, s int) (*shardGroup, error) {
	opts := c.opts
	sg := &shardGroup{
		id:          proto.GroupID(s), //nolint:gosec // bounded by Options validation
		net:         memnet.New(opts.Net),
		tracer:      c.tracerFor(s),
		latency:     metrics.NewHistogram(),
		readLatency: metrics.NewHistogram(),
	}
	start := time.Now()
	for i := 0; i < opts.N; i++ {
		inner, err := app.New(opts.Machine)
		if err != nil {
			return nil, err
		}
		machine := lockMachine(inner)
		sg.mach = append(sg.mach, machine)

		rep, oracle, done, err := c.buildReplica(ctx, sg, i, machine, false, 0, start)
		if err != nil {
			return nil, err
		}
		if opts.FD == FDOracle {
			sg.oracles = append(sg.oracles, oracle)
		}
		sg.replicas = append(sg.replicas, rep)
		sg.done = append(sg.done, done)
	}
	return sg, nil
}

// buildReplica constructs and starts one replica of shard sg on the current
// incarnation of its network endpoint. Shared between the initial boot and
// Restart (which passes recovering=true and the new incarnation number).
func (c *Cluster) buildReplica(ctx context.Context, sg *shardGroup, i int, machine app.Machine, recovering bool, incarnation uint64, start time.Time) (backend.Replica, *fd.Oracle, chan struct{}, error) {
	opts := c.opts
	var detector fd.Detector
	var oracle *fd.Oracle
	hbInterval := opts.HeartbeatInterval
	switch opts.FD {
	case FDHeartbeat:
		detector = fd.NewTimeout(opts.FDTimeout, c.group, start)
	case FDOracle:
		oracle = fd.NewOracle()
		detector = oracle
		hbInterval = -1 // oracles ignore heartbeats; skip the traffic
	case FDNever:
		detector = fd.Never{}
		hbInterval = -1
	default:
		return nil, nil, nil, fmt.Errorf("cluster: unknown FD mode %d", opts.FD)
	}

	walDir := ""
	if opts.WALRoot != "" {
		walDir = filepath.Join(opts.WALRoot, fmt.Sprintf("s%d", int(sg.id)), fmt.Sprintf("r%d", i))
	}

	rep, err := c.be.NewReplica(backend.ReplicaConfig{
		ID:                c.group[i],
		Group:             c.group,
		GroupID:           sg.id,
		Node:              sg.net.Node(c.group[i]),
		Machine:           machine,
		Detector:          detector,
		RelayMode:         opts.RelayMode,
		TickInterval:      opts.TickInterval,
		HeartbeatInterval: hbInterval,
		EpochRequestLimit: opts.EpochRequestLimit,
		BatchWindow:       opts.BatchWindow,
		MaxBatch:          opts.MaxBatch,
		AutoTune:          opts.AutoTune,
		Pipeline:          opts.Pipeline,
		PipelineDepth:     opts.PipelineDepth,
		Tracer:            sg.tracer,
		WALDir:            walDir,
		WALSync:           opts.WALSync,
		SnapshotEvery:     opts.SnapshotEvery,
		Recovering:        recovering,
		Incarnation:       incarnation,
	})
	if err != nil {
		return nil, nil, nil, err
	}

	done := make(chan struct{})
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(done)
		_ = rep.Run(ctx)
	}()
	return rep, oracle, done, nil
}

// Protocol returns the name of the ordering backend the cluster runs.
func (c *Cluster) Protocol() Protocol { return Protocol(c.be.Name()) }

// Shards returns the number of ordering groups.
func (c *Cluster) Shards() int { return len(c.shards) }

// Router returns the key→group router clients use.
func (c *Cluster) Router() *shard.Router { return c.router }

// Net exposes shard s's network for fault injection and stats.
func (c *Cluster) Net(s int) *memnet.Network { return c.shards[s].net }

// NetTotal aggregates the network counters of every shard.
func (c *Cluster) NetTotal() memnet.Stats {
	var total memnet.Stats
	for _, sg := range c.shards {
		total.Add(sg.net.Stats())
	}
	return total
}

// ResetNetStats zeroes every shard's network counters.
func (c *Cluster) ResetNetStats() {
	for _, sg := range c.shards {
		sg.net.ResetStats()
	}
}

// Group returns Π (identical in every shard).
func (c *Cluster) Group() []proto.NodeID { return c.group }

// Replica returns shard s's replica i (the current incarnation, if it has
// been restarted). Protocol-specific surfaces (e.g. the OAR server's
// Footprint) are reachable by asserting the returned value to the interface
// that declares them.
func (c *Cluster) Replica(s, i int) backend.Replica {
	sg := c.shards[s]
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	return sg.replicas[i]
}

// ReplicaStats returns the protocol counters of shard s's replica i.
func (c *Cluster) ReplicaStats(s, i int) backend.Stats { return c.Replica(s, i).Stats() }

// Machine returns shard s's replica-i state machine (the current
// incarnation's). Only read it (Fingerprint) when the group is quiescent.
func (c *Cluster) Machine(s, i int) app.Machine {
	sg := c.shards[s]
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	return sg.mach[i]
}

// Oracle returns shard s's replica-i scriptable failure detector (FDOracle
// mode).
func (c *Cluster) Oracle(s, i int) *fd.Oracle {
	sg := c.shards[s]
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	return sg.oracles[i]
}

// SuspectEverywhere makes every live replica's oracle (in every shard)
// suspect id.
func (c *Cluster) SuspectEverywhere(id proto.NodeID) {
	for _, sg := range c.shards {
		sg.mu.RLock()
		for _, o := range sg.oracles {
			o.Suspect(id)
		}
		sg.mu.RUnlock()
	}
}

// TrustEverywhere clears suspicion of id at every replica's oracle.
func (c *Cluster) TrustEverywhere(id proto.NodeID) {
	for _, sg := range c.shards {
		sg.mu.RLock()
		for _, o := range sg.oracles {
			o.Trust(id)
		}
		sg.mu.RUnlock()
	}
}

// Suspect makes shard s's oracles suspect id, leaving other shards'
// detectors untouched (per-shard fault scripting).
func (c *Cluster) Suspect(s int, id proto.NodeID) {
	sg := c.shards[s]
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	for _, o := range sg.oracles {
		o.Suspect(id)
	}
}

// Trust clears suspicion of id at shard s's oracles.
func (c *Cluster) Trust(s int, id proto.NodeID) {
	sg := c.shards[s]
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	for _, o := range sg.oracles {
		o.Trust(id)
	}
}

// Crash kills shard s's replica i: its endpoint closes and its event loop
// exits. Other shards are untouched — their groups neither see the crash nor
// depend on the crashed replica.
func (c *Cluster) Crash(s, i int) {
	c.shards[s].net.Crash(c.group[i])
}

// Restart re-boots shard s's crashed replica i as a fresh process: a new
// incarnation of its endpoint on the shard's network, a fresh state machine,
// and a new replica instance. The replica recovers — replaying its WAL when
// the cluster has one (Options.WALRoot), then running the backend's peer
// catch-up protocol — before it re-enters ordering; until then it defers
// protocol traffic and refuses fast-path reads. It is an error to restart a
// replica that is not crashed.
func (c *Cluster) Restart(s, i int) error {
	sg := c.shards[s]
	id := c.group[i]
	if !sg.net.Crashed(id) {
		return fmt.Errorf("cluster: restart s%d/r%d: replica is not crashed", s, i)
	}
	// The crashed loop may still be draining frames that were queued before
	// the crash — and appending them to the WAL. Wait for it to exit before
	// the new incarnation opens the same WAL directory.
	sg.mu.RLock()
	oldDone := sg.done[i]
	sg.mu.RUnlock()
	<-oldDone
	incarnation := sg.net.Revive(id)
	inner, err := app.New(c.opts.Machine)
	if err != nil {
		return err
	}
	machine := lockMachine(inner)
	rep, oracle, done, err := c.buildReplica(c.ctx, sg, i, machine, true, incarnation, time.Now())
	if err != nil {
		return fmt.Errorf("cluster: restart s%d/r%d: %w", s, i, err)
	}
	sg.mu.Lock()
	sg.mach[i] = machine
	sg.replicas[i] = rep
	sg.done[i] = done
	if c.opts.FD == FDOracle {
		sg.oracles[i] = oracle
	}
	sg.mu.Unlock()
	return nil
}

// NewClient creates and starts a client. With one shard it is the backend's
// native client (the weight-quorum client of Figure 5 for OAR, the classic
// first-reply client for the baselines); with several it is a shard.Client
// that owns one per-group invoker and routes every Invoke by key hash —
// whatever the backend.
func (c *Cluster) NewClient() (Invoker, error) {
	c.mu.Lock()
	idx := c.nextCli
	c.nextCli++
	c.mu.Unlock()

	cli, err := c.newClientAt(idx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cli)
	c.mu.Unlock()
	return cli, nil
}

func (c *Cluster) newClientAt(idx int) (Invoker, error) {
	id := proto.ClientID(idx)
	perGroup := make([]shard.Invoker, len(c.shards))
	started := make([]backend.Invoker, 0, len(c.shards))
	for s, sg := range c.shards {
		inv, err := c.be.NewInvoker(backend.InvokerConfig{
			ID:        id,
			Group:     c.group,
			GroupID:   sg.id,
			Node:      sg.net.Node(id),
			Tracer:    sg.tracer,
			Unbatched: c.opts.BatchWindow < 0,
			AutoTune:  c.opts.AutoTune,
		})
		if err != nil {
			for _, prev := range started {
				prev.Stop()
			}
			return nil, err
		}
		// Every client endpoint records its response times into the group's
		// histogram (successful invokes only); with several groups the
		// sharded client below then attributes each request to the group
		// that actually served it.
		inv = backend.Measure(inv, sg.latency, sg.readLatency)
		started = append(started, inv)
		perGroup[s] = inv
	}
	if len(started) == 1 {
		return started[0], nil
	}
	sc, err := shard.NewClient(c.router, perGroup)
	if err != nil {
		for _, prev := range started {
			prev.Stop()
		}
		return nil, err
	}
	return sc, nil
}

// ClientIDs returns the node IDs of every client the cluster has handed out
// so far, in creation order. Fault injectors need the full roster: a
// partition described over replicas must still place every client endpoint
// on a deliberate side (memnet's SetPartitions isolates any node it is not
// told about).
func (c *Cluster) ClientIDs() []proto.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]proto.NodeID, c.nextCli)
	for i := range ids {
		ids[i] = proto.ClientID(i)
	}
	return ids
}

// DeliveredTotal sums definitive deliveries across all shards' replicas,
// regardless of backend (OAR counts optimistic + conservative deliveries,
// rollbacks deducted).
func (c *Cluster) DeliveredTotal() uint64 {
	var total uint64
	for _, sg := range c.shards {
		sg.mu.RLock()
		for _, rep := range sg.replicas {
			total += rep.Stats().Delivered
		}
		sg.mu.RUnlock()
	}
	return total
}

// TotalStats sums the protocol counters of all replicas in all shards.
func (c *Cluster) TotalStats() backend.Stats {
	var total backend.Stats
	for s := range c.shards {
		total.Accumulate(c.ShardStats(s))
	}
	return total
}

// ShardStats sums the protocol counters of shard s's replicas and attaches
// the group's client-observed latency histogram (an owned copy — callers may
// merge it freely).
func (c *Cluster) ShardStats(s int) backend.Stats {
	var total backend.Stats
	c.shards[s].mu.RLock()
	for _, rep := range c.shards[s].replicas {
		total.Accumulate(rep.Stats())
	}
	c.shards[s].mu.RUnlock()
	total.Latency = metrics.NewHistogram()
	total.Latency.Merge(c.shards[s].latency)
	total.ReadLatency = metrics.NewHistogram()
	total.ReadLatency.Merge(c.shards[s].readLatency)
	return total
}

// Latency summarizes the client-observed end-to-end response times of every
// invoker the cluster handed out, across all shards. Response time — not
// just throughput — is what the paper's optimistic delivery is about, so
// every invoker is measured unconditionally; recording is one lock-free
// histogram increment.
func (c *Cluster) Latency() metrics.Snapshot {
	merged := metrics.NewHistogram()
	for _, sg := range c.shards {
		merged.Merge(sg.latency)
	}
	return merged.Snapshot()
}

// ShardLatency summarizes the response times of requests served by ordering
// group s (useful for spotting skew under non-uniform key distributions).
func (c *Cluster) ShardLatency(s int) metrics.Snapshot {
	return c.shards[s].latency.Snapshot()
}

// ReadLatency summarizes the response times of fast-path reads (InvokeRead)
// across all shards, split out from Latency so the read/write gap — the
// point of the zero-ordering read path — is directly observable.
func (c *Cluster) ReadLatency() metrics.Snapshot {
	merged := metrics.NewHistogram()
	for _, sg := range c.shards {
		merged.Merge(sg.readLatency)
	}
	return merged.Snapshot()
}

// WaitUntil polls cond every millisecond until it is true or the timeout
// elapses; it reports whether the condition was met.
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// Stop shuts everything down: clients first, then servers, then the
// networks.
func (c *Cluster) Stop() {
	c.mu.Lock()
	clients := append([]Invoker(nil), c.clients...)
	c.mu.Unlock()
	for _, cli := range clients {
		cli.Stop()
	}
	c.cancel()
	for _, sg := range c.shards {
		sg.net.Close() // closes inboxes, unblocking any server loop still reading
	}
	c.wg.Wait()
}
