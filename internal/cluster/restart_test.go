package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/wal"
)

// driveRestartUnderLoad runs the canonical crash/restart scenario against a
// running cluster: load, crash replica `victim` mid-stream, more load while it
// is down, restart it, more load, then wait for the recovered replica to
// converge to the group's state. Returns the checker for final verification.
func driveRestartUnderLoad(t *testing.T, c *Cluster, ck *check.Checker, victim int) {
	t.Helper()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	invoke := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
	}

	invoke(0, 16)
	c.Crash(0, victim)
	ck.MarkCrashed(c.Group()[victim])
	c.Suspect(0, c.Group()[victim])
	invoke(16, 32) // the surviving majority moves on

	if err := c.Restart(0, victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	invoke(32, 48) // load lands while the replica is catching up

	if !WaitUntil(30*time.Second, func() bool {
		return c.ReplicaStats(0, victim).Recoveries >= 1
	}) {
		t.Fatalf("replica %d never recovered; stats: %+v", victim, c.ReplicaStats(0, victim))
	}
	c.Trust(0, c.Group()[victim])
	invoke(48, 64) // the recovered replica participates again

	// Convergence: the restarted replica's machine must reach the byte-exact
	// state of the survivors.
	if !WaitUntil(30*time.Second, func() bool {
		want := c.Machine(0, (victim+1)%3).Fingerprint()
		return want != "" && c.Machine(0, victim).Fingerprint() == want
	}) {
		t.Fatalf("fingerprints diverge after recovery:\n  r%d: %q\n  r%d: %q",
			victim, c.Machine(0, victim).Fingerprint(),
			(victim+1)%3, c.Machine(0, (victim+1)%3).Fingerprint())
	}
	if !WaitUntil(30*time.Second, ck.LivenessSettled) {
		t.Fatal("run never settled after recovery")
	}
	for _, v := range append(ck.Verify(), ck.VerifyLiveness()...) {
		t.Errorf("checker: %v", v)
	}
	if ck.Recoveries() != 1 {
		t.Errorf("checker saw %d recoveries, want 1", ck.Recoveries())
	}
}

// TestRestartUnderLoad drives the full crash/restart/catch-up cycle on every
// backend, with the trace checker — recovery proposition included — attached.
// OAR additionally runs with a WAL, so its recovery is local replay plus peer
// catch-up; the baselines recover from peers alone.
func TestRestartUnderLoad(t *testing.T) {
	for _, proto := range []Protocol{OAR, "fixedseq", "ctab"} {
		t.Run(string(proto), func(t *testing.T) {
			ck := check.New(3)
			opts := Options{
				Protocol:          proto,
				N:                 3,
				FD:                FDOracle,
				Machine:           "kv",
				EpochRequestLimit: 4,
				Tracer:            ck,
			}
			if proto == OAR {
				opts.WALRoot = t.TempDir()
				opts.WALSync = wal.SyncAlways
			}
			c, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			driveRestartUnderLoad(t, c, ck, 2)
		})
	}
}

// TestRestartNotCrashed pins the Restart precondition.
func TestRestartNotCrashed(t *testing.T) {
	c, err := New(Options{N: 3, FD: FDNever})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Restart(0, 1); err == nil {
		t.Fatal("restarting a live replica must error")
	}
}

// TestRestartReplaysWAL exercises the disk path in isolation: a single-replica
// OAR group (no peers to catch up from) is crashed after its epochs are
// closed and durable, and the restarted incarnation must rebuild the exact
// machine state from snapshot+WAL replay alone.
func TestRestartReplaysWAL(t *testing.T) {
	ck := check.New(1)
	c, err := New(Options{
		N:                 1,
		FD:                FDNever,
		Machine:           "kv",
		EpochRequestLimit: 4,
		WALRoot:           t.TempDir(),
		WALSync:           wal.SyncAlways,
		SnapshotEvery:     2,
		Tracer:            ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 32 // multiple of the epoch limit: every delivery ends up durable
	for i := 0; i < n; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitUntil(10*time.Second, func() bool {
		return c.ReplicaStats(0, 0).Delivered >= n
	}) {
		t.Fatalf("only %d of %d deliveries became definitive", c.ReplicaStats(0, 0).Delivered, n)
	}
	want := c.Machine(0, 0).Fingerprint()

	c.Crash(0, 0)
	ck.MarkCrashed(c.Group()[0])
	if err := c.Restart(0, 0); err != nil {
		t.Fatal(err)
	}
	if !WaitUntil(10*time.Second, func() bool {
		return c.ReplicaStats(0, 0).Recoveries >= 1
	}) {
		t.Fatal("single replica never finished local recovery")
	}
	if got := c.Machine(0, 0).Fingerprint(); got != want {
		t.Fatalf("WAL replay rebuilt %q, want %q", got, want)
	}
	for _, v := range ck.Verify() {
		t.Errorf("checker: %v", v)
	}
}
