package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/proto"
)

const shardTestTimeout = 30 * time.Second

// shardCheckers builds one trace checker per shard and the TracerFor hook
// wiring them in. Each group has its own total order, so each gets its own
// checker.
func shardCheckers(shards, n int) ([]*check.Checker, func(s int) core.Tracer) {
	cks := make([]*check.Checker, shards)
	for s := range cks {
		cks[s] = check.New(n)
	}
	return cks, func(s int) core.Tracer { return cks[s] }
}

// keyFor finds a command whose key routes to the wanted shard.
func keyFor(t *testing.T, c *Cluster, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", i)
		if int(c.Router().Route([]byte(key))) == shard {
			return key
		}
	}
	t.Fatalf("no key routes to shard %d", shard)
	return ""
}

func TestShardValidation(t *testing.T) {
	if _, err := New(Options{N: 3, Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
}

// TestShardedEndToEnd: a 2-shard kv cluster must serve reads and writes
// through one routing client, keep each group's checker clean, spread load
// over both groups, and never leak a frame across groups.
func TestShardedEndToEnd(t *testing.T) {
	cks, tracerFor := shardCheckers(2, 3)
	c, err := New(Options{N: 3, Shards: 2, Machine: "kv", FD: FDNever, TracerFor: tracerFor})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.Shards() != 2 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), shardTestTimeout)
	defer cancel()

	const keys = 16
	for i := 0; i < keys; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		reply, err := cli.Invoke(ctx, []byte(fmt.Sprintf("get k%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(reply.Result) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%d = %q", i, reply.Result)
		}
	}

	// Both groups carried traffic, with no cross-group leakage.
	for s := 0; s < 2; s++ {
		st := c.ShardStats(s)
		if st.OptDelivered == 0 {
			t.Errorf("shard %d served no requests", s)
		}
		if st.ForeignDropped != 0 {
			t.Errorf("shard %d dropped %d foreign messages on a disjoint network", s, st.ForeignDropped)
		}
	}
	// Each group's trace satisfies Propositions 1–7 on its own.
	for s, ck := range cks {
		if vs := ck.Verify(); len(vs) != 0 {
			t.Errorf("shard %d checker: %v", s, vs)
		}
	}
	// The two groups really are independent sequences: each shard's replicas
	// delivered only its own requests, and the totals add up.
	if got := c.DeliveredTotal(); got != uint64(3*2*keys) {
		t.Errorf("DeliveredTotal = %d, want %d", got, 3*2*keys)
	}
}

// TestShardFaultIsolation crashes the sequencer of one shard mid-load and
// requires that (a) the other shards keep serving with normal latency while
// the wounded shard is stalled, (b) the wounded shard fails over and
// completes its pending request once its detector fires, and (c) every
// shard's trace checker stays clean.
func TestShardFaultIsolation(t *testing.T) {
	const shards = 3
	cks, tracerFor := shardCheckers(shards, 3)
	c, err := New(Options{N: 3, Shards: shards, FD: FDOracle, TracerFor: tracerFor})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), shardTestTimeout)
	defer cancel()

	keyOf := make([]string, shards)
	for s := range keyOf {
		keyOf[s] = keyFor(t, c, s)
	}
	// Warm-up: every shard serves.
	for s := 0; s < shards; s++ {
		if _, err := cli.Invoke(ctx, []byte(keyOf[s]+" warm")); err != nil {
			t.Fatalf("warm-up shard %d: %v", s, err)
		}
	}

	// Crash shard 1's epoch-0 sequencer. Nobody suspects it yet, so shard 1
	// is stalled: its pending request cannot be ordered.
	const wounded = 1
	cks[wounded].MarkCrashed(c.Group()[0])
	c.Crash(wounded, 0)
	stalled := make(chan proto.Reply, 1)
	go func() {
		if r, err := cli.Invoke(ctx, []byte(keyOf[wounded]+" after-crash")); err == nil {
			stalled <- r
		}
	}()

	// The healthy shards must keep serving while shard 1 is down. Their
	// sequencers, detectors and networks are disjoint from the wounded
	// group, so each invoke completes quickly; the per-invoke deadline turns
	// any cross-shard interference into a hard failure.
	for round := 0; round < 5; round++ {
		for _, s := range []int{0, 2} {
			ictx, icancel := context.WithTimeout(ctx, 5*time.Second)
			if _, err := cli.Invoke(ictx, []byte(fmt.Sprintf("%s load%d", keyOf[s], round))); err != nil {
				icancel()
				t.Fatalf("healthy shard %d stalled during shard %d's outage: %v", s, wounded, err)
			}
			icancel()
		}
	}
	select {
	case <-stalled:
		t.Fatal("wounded shard made progress with a crashed, unsuspected sequencer")
	default:
	}

	// Let shard 1's detector fire: its group fails over (PhaseII + consensus
	// among the two survivors) and the stalled request completes.
	c.Suspect(wounded, c.Group()[0])
	select {
	case <-stalled:
	case <-time.After(shardTestTimeout):
		t.Fatal("wounded shard never failed over")
	}
	if !WaitUntil(shardTestTimeout, func() bool { return c.ShardStats(wounded).Epochs >= 1 }) {
		t.Fatalf("wounded shard closed no epoch: %+v", c.ShardStats(wounded))
	}

	// Safety held everywhere, independently.
	for s, ck := range cks {
		if vs := ck.Verify(); len(vs) != 0 {
			t.Errorf("shard %d checker: %v", s, vs)
		}
	}
	if st := c.TotalStats(); st.ForeignDropped != 0 {
		t.Errorf("foreign-group traffic observed on disjoint networks: %+v", st)
	}
}

// TestShardedBaselineFaultIsolation is the proof that sharding is no longer
// an OAR privilege: a 2-shard fixed-sequencer cluster boots through the same
// backend path, routes by key hash, and — using the group-qualified fault
// hooks — one shard's sequencer crash stalls only that shard until its
// (scripted) detector fires the view change, while the other keeps serving.
func TestShardedBaselineFaultIsolation(t *testing.T) {
	const shards = 2
	c, err := New(Options{Protocol: FixedSeq, N: 3, Shards: shards, FD: FDOracle})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), shardTestTimeout)
	defer cancel()

	keyOf := make([]string, shards)
	for s := range keyOf {
		keyOf[s] = keyFor(t, c, s)
	}
	for s := 0; s < shards; s++ {
		if _, err := cli.Invoke(ctx, []byte(keyOf[s]+" warm")); err != nil {
			t.Fatalf("warm-up shard %d: %v", s, err)
		}
	}

	// Crash shard 1's view-0 sequencer; nobody suspects it yet.
	const wounded = 1
	c.Crash(wounded, 0)
	stalled := make(chan proto.Reply, 1)
	go func() {
		if r, err := cli.Invoke(ctx, []byte(keyOf[wounded]+" after-crash")); err == nil {
			stalled <- r
		}
	}()

	// The healthy shard keeps serving under its own per-invoke deadline.
	for round := 0; round < 5; round++ {
		ictx, icancel := context.WithTimeout(ctx, 5*time.Second)
		if _, err := cli.Invoke(ictx, []byte(fmt.Sprintf("%s load%d", keyOf[0], round))); err != nil {
			icancel()
			t.Fatalf("healthy shard stalled during shard %d's outage: %v", wounded, err)
		}
		icancel()
	}
	select {
	case <-stalled:
		t.Fatal("wounded shard made progress with a crashed, unsuspected sequencer")
	default:
	}

	// Script the suspicion in the wounded group only: its survivors bump the
	// view, the next rank re-orders, the stalled request completes.
	c.Suspect(wounded, c.Group()[0])
	select {
	case <-stalled:
	case <-time.After(shardTestTimeout):
		t.Fatal("wounded shard never failed over")
	}
	if views := c.ShardStats(wounded).Views; views == 0 {
		t.Errorf("wounded shard recorded no view change: %+v", c.ShardStats(wounded))
	}
	// The healthy shard saw no view change and no foreign traffic.
	if views := c.ShardStats(0).Views; views != 0 {
		t.Errorf("healthy shard changed views during another shard's outage: %+v", c.ShardStats(0))
	}
	if st := c.TotalStats(); st.ForeignDropped != 0 {
		t.Errorf("foreign-group traffic observed on disjoint networks: %+v", st)
	}
}

// TestShardedCTab boots the consensus-per-batch baseline across two shards:
// the conservative protocol must shard exactly like the others.
func TestShardedCTab(t *testing.T) {
	c, err := New(Options{Protocol: CTab, N: 3, Shards: 2, Machine: "kv", FD: FDNever})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), shardTestTimeout)
	defer cancel()
	const keys = 8
	for i := 0; i < keys; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		reply, err := cli.Invoke(ctx, []byte(fmt.Sprintf("get k%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(reply.Result) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%d = %q", i, reply.Result)
		}
	}
	for s := 0; s < 2; s++ {
		st := c.ShardStats(s)
		if st.Delivered == 0 || st.Batches == 0 {
			t.Errorf("shard %d served nothing: %+v", s, st)
		}
	}
	// Delivery at the non-replying replicas is asynchronous; wait for the
	// cluster-wide total to settle.
	if !WaitUntil(shardTestTimeout, func() bool { return c.DeliveredTotal() == uint64(3*2*keys) }) {
		t.Errorf("DeliveredTotal = %d, want %d", c.DeliveredTotal(), 3*2*keys)
	}
}
