package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestValidation(t *testing.T) {
	if _, err := New(Options{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := New(Options{N: 65}); err == nil {
		t.Error("N=65 accepted")
	}
	if _, err := New(Options{N: 3, Machine: "nope"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := New(Options{N: 3, FD: FDMode(9)}); err == nil {
		t.Error("unknown FD mode accepted")
	}
	if _, err := New(Options{N: 3, Protocol: Protocol("no-such-backend")}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	c, err := New(Options{N: 3, FD: FDOracle})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Group()) != 3 {
		t.Errorf("group = %v", c.Group())
	}
	if c.Replica(0, 0) == nil || c.Machine(0, 0) == nil || c.Oracle(0, 0) == nil || c.Net(0) == nil {
		t.Error("accessor returned nil")
	}
	c.SuspectEverywhere(proto.NodeID(0))
	if !c.Oracle(0, 1).Suspected(0, time.Now()) {
		t.Error("SuspectEverywhere did not reach oracle 1")
	}
	c.TrustEverywhere(proto.NodeID(0))
	if c.Oracle(0, 1).Suspected(0, time.Now()) {
		t.Error("TrustEverywhere did not clear suspicion")
	}
}

func TestLockedMachineUndo(t *testing.T) {
	c, err := New(Options{N: 1, FD: FDNever, Machine: "stack"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	m := c.Machine(0, 0)
	_, undo := m.Apply([]byte("push a"))
	if m.Fingerprint() != "a" {
		t.Fatalf("state = %q", m.Fingerprint())
	}
	undo()
	if m.Fingerprint() != "" {
		t.Fatalf("undo through wrapper failed: %q", m.Fingerprint())
	}
}

func TestEndToEndSmoke(t *testing.T) {
	c, err := New(Options{N: 3, FD: FDNever})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cli.Invoke(ctx, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if got := c.DeliveredTotal(); got == 0 {
		t.Error("DeliveredTotal = 0 after an invoke")
	}
	if st := c.TotalStats(); st.SeqOrdersSent == 0 {
		t.Error("no sequencer orders counted")
	}
}

// TestLatencyObservability: every invoker the cluster hands out records
// response times — per shard, merged cluster-wide, and attached to the
// protocol stats — with no opt-in from the caller.
func TestLatencyObservability(t *testing.T) {
	c, err := New(Options{N: 3, Shards: 2, FD: FDNever, Machine: "kv"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set key%d v", i))); err != nil {
			t.Fatal(err)
		}
	}
	lat := c.Latency()
	if lat.Count != n {
		t.Errorf("Latency().Count = %d, want %d", lat.Count, n)
	}
	if lat.P50 <= 0 || lat.P99 < lat.P50 || lat.Max < lat.P99 {
		t.Errorf("malformed latency snapshot: %+v", lat)
	}
	var perShard uint64
	for s := 0; s < c.Shards(); s++ {
		sl := c.ShardLatency(s)
		perShard += sl.Count
		if st := c.ShardStats(s); st.Latency == nil || st.Latency.Count() != sl.Count {
			t.Errorf("shard %d stats latency out of step with ShardLatency (%v vs %d)", s, st.Latency, sl.Count)
		}
	}
	if perShard != n {
		t.Errorf("per-shard latency counts sum to %d, want %d", perShard, n)
	}
	total := c.TotalStats()
	if total.Latency == nil || total.Latency.Count() != n {
		t.Errorf("TotalStats().Latency missing or wrong: %v", total.Latency)
	}
	// The sharded client exposes the observed routing split.
	type routedder interface{ Routed() []uint64 }
	rc, ok := cli.(routedder)
	if !ok {
		t.Fatalf("sharded client %T exposes no Routed()", cli)
	}
	var routed uint64
	for _, r := range rc.Routed() {
		routed += r
	}
	if routed != n {
		t.Errorf("Routed sums to %d, want %d", routed, n)
	}
}

// TestLatencySingleShard: the single-group fast path (no fan-out client)
// must be measured too.
func TestLatencySingleShard(t *testing.T) {
	c, err := New(Options{N: 1, FD: FDNever})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cli.Invoke(ctx, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if got := c.Latency().Count; got != 1 {
		t.Errorf("Latency().Count = %d, want 1", got)
	}
}

func TestWaitUntil(t *testing.T) {
	n := 0
	if !WaitUntil(time.Second, func() bool { n++; return n >= 3 }) {
		t.Error("condition never satisfied")
	}
	if WaitUntil(10*time.Millisecond, func() bool { return false }) {
		t.Error("false condition reported satisfied")
	}
}

func TestStopIdempotentClients(t *testing.T) {
	c, err := New(Options{N: 3, FD: FDNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewClient(); err != nil {
		t.Fatal(err)
	}
	c.Stop() // must stop clients and servers without deadlock
}
