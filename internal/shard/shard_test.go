package shard

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/proto"
)

func TestFirstToken(t *testing.T) {
	cases := map[string]string{
		"set k v":   "set",
		"  lead ws": "lead",
		"single":    "single",
		"":          "",
		"   ":       "",
		"a\tb":      "a",
	}
	for in, want := range cases {
		if got := FirstToken([]byte(in)); string(got) != want {
			t.Errorf("FirstToken(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMachineKey(t *testing.T) {
	kv := MachineKey("kv")
	if got := kv([]byte("set user:7 alice")); string(got) != "user:7" {
		t.Errorf("kv key = %q, want user:7", got)
	}
	if got := kv([]byte("get user:7")); string(got) != "user:7" {
		t.Errorf("kv get key = %q, want user:7", got)
	}
	// Same key regardless of verb: all ops on a datum share a group.
	if !bytes.Equal(kv([]byte("set x 1")), kv([]byte("del x"))) {
		t.Error("kv verb changed the routing key")
	}
	// Degenerate command: falls back to the last available token.
	if got := kv([]byte("get")); string(got) != "get" {
		t.Errorf("kv degenerate key = %q", got)
	}
	bank := MachineKey("bank")
	if got := bank([]byte("deposit acct1 50")); string(got) != "acct1" {
		t.Errorf("bank key = %q, want acct1", got)
	}
	if got := MachineKey("recorder")([]byte("m1 payload")); string(got) != "m1" {
		t.Errorf("default machine key = %q, want m1", got)
	}
}

func TestRouterDeterministicAndBounded(t *testing.T) {
	r, err := NewRouter(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		cmd := []byte(fmt.Sprintf("key%d rest of command", i))
		g := r.Route(cmd)
		if int(g) >= r.Shards() {
			t.Fatalf("Route(%q) = %v out of range", cmd, g)
		}
		if again := r.Route(cmd); again != g {
			t.Fatalf("Route(%q) not deterministic: %v then %v", cmd, g, again)
		}
	}
}

func TestRouterSpreadsKeys(t *testing.T) {
	r, err := NewRouter(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const keys = 1000
	for i := 0; i < keys; i++ {
		counts[r.Route([]byte(fmt.Sprintf("key%d", i)))]++
	}
	for g, c := range counts {
		// A uniform hash puts ~250 keys per group; 2x imbalance would mean a
		// broken hash, not an unlucky draw.
		if c < keys/4/2 || c > keys/4*2 {
			t.Errorf("group %d owns %d of %d keys (severe imbalance): %v", g, c, keys, counts)
		}
	}
}

func TestRouteMatchesStdlibFNV(t *testing.T) {
	r, err := NewRouter(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key%d", i)
		h := fnv.New32a()
		h.Write([]byte(key))
		want := proto.GroupID(h.Sum32() % 16)
		if got := r.Route([]byte(key)); got != want {
			t.Fatalf("Route(%q) = %v, stdlib FNV-1a gives %v", key, got, want)
		}
	}
}

func TestRouterSameKeySameGroup(t *testing.T) {
	r, err := NewRouter(8, MachineKey("kv"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Route([]byte("set acct 5")) != r.Route([]byte("get acct")) {
		t.Error("operations on one key routed to different groups")
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(0, nil); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewRouter(-1, nil); err == nil {
		t.Error("negative shards accepted")
	}
}

// fakeInvoker records which backend served each command.
type fakeInvoker struct {
	group   proto.GroupID
	served  int
	stopped bool
}

func (f *fakeInvoker) Invoke(_ context.Context, cmd []byte) (proto.Reply, error) {
	f.served++
	return proto.Reply{Req: proto.RequestID{Group: f.group}, Result: cmd}, nil
}

func (f *fakeInvoker) Stop() { f.stopped = true }

func TestClientFansOutByKey(t *testing.T) {
	const shards = 4
	r, err := NewRouter(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]Invoker, shards)
	fakes := make([]*fakeInvoker, shards)
	for g := range backends {
		fakes[g] = &fakeInvoker{group: proto.GroupID(g)}
		backends[g] = fakes[g]
	}
	cli, err := NewClient(r, backends)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		cmd := []byte(fmt.Sprintf("key%d v", i))
		reply, err := cli.Invoke(ctx, cmd)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Req.Group != cli.Route(cmd) {
			t.Fatalf("cmd %q served by group %v, routed to %v", cmd, reply.Req.Group, cli.Route(cmd))
		}
	}
	total := 0
	busy := 0
	for _, f := range fakes {
		total += f.served
		if f.served > 0 {
			busy++
		}
	}
	if total != 100 {
		t.Errorf("backends served %d invokes, want 100", total)
	}
	if busy < 2 {
		t.Errorf("only %d of %d groups saw traffic", busy, shards)
	}
	cli.Stop()
	for g, f := range fakes {
		if !f.stopped {
			t.Errorf("group %d backend not stopped", g)
		}
	}
	// Routed() mirrors what the backends actually served.
	routed := cli.Routed()
	if len(routed) != shards {
		t.Fatalf("Routed() has %d entries, want %d", len(routed), shards)
	}
	var routedTotal uint64
	for g, n := range routed {
		if n != uint64(fakes[g].served) {
			t.Errorf("group %d: Routed=%d, served=%d", g, n, fakes[g].served)
		}
		routedTotal += n
	}
	if routedTotal != 100 {
		t.Errorf("Routed total = %d, want 100", routedTotal)
	}
}

func TestClientValidation(t *testing.T) {
	r, _ := NewRouter(2, nil)
	if _, err := NewClient(nil, nil); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := NewClient(r, make([]Invoker, 1)); err == nil {
		t.Error("backend count mismatch accepted")
	}
	if _, err := NewClient(r, make([]Invoker, 2)); err == nil {
		t.Error("nil backend accepted")
	}
}
