package shard

import (
	"bytes"
	"testing"
)

// FuzzKeyFunc feeds arbitrary command bytes and machine names to every key
// extractor: none may panic, and the extracted key must always be a
// (possibly empty) sub-slice of the command — keys are views, not copies, so
// the router's hash loop never touches memory outside the command.
func FuzzKeyFunc(f *testing.F) {
	f.Add([]byte("set k1 v1"), "kv")
	f.Add([]byte("push x"), "stack")
	f.Add([]byte("  \t  "), "bank")
	f.Add([]byte(""), "")
	f.Add([]byte("a"), "no-such-machine")
	f.Add([]byte("deposit acct-9 100"), "bank")
	f.Fuzz(func(t *testing.T, cmd []byte, machine string) {
		for _, kf := range []KeyFunc{FirstToken, MachineKey(machine)} {
			key := kf(cmd)
			if len(key) > len(cmd) {
				t.Fatalf("key longer than command: %q from %q", key, cmd)
			}
			if len(key) > 0 && !bytes.Contains(cmd, key) {
				t.Fatalf("key %q is not a sub-slice of command %q", key, cmd)
			}
			for _, b := range key {
				if b == ' ' || b == '\t' {
					t.Fatalf("key %q contains whitespace", key)
				}
			}
		}
	})
}

// FuzzRouter feeds arbitrary commands and shard counts to the router: Route
// must never panic, its output must always be a valid group index, and the
// assignment must be deterministic — two clients hashing the same command
// must land on the same group, that is the whole no-directory design.
func FuzzRouter(f *testing.F) {
	f.Add([]byte("set k1 v1"), uint8(4))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte("x"), uint8(255))
	f.Fuzz(func(t *testing.T, cmd []byte, shards uint8) {
		n := int(shards)%64 + 1
		r, err := NewRouter(n, FirstToken)
		if err != nil {
			t.Fatalf("NewRouter(%d): %v", n, err)
		}
		g := r.Route(cmd)
		if int(g) >= n {
			t.Fatalf("Route(%q) = %v with only %d groups", cmd, g, n)
		}
		if again := r.Route(cmd); again != g {
			t.Fatalf("Route(%q) not deterministic: %v then %v", cmd, g, again)
		}
		// An independently built router (another client) must agree.
		r2, err := NewRouter(n, FirstToken)
		if err != nil {
			t.Fatal(err)
		}
		if other := r2.Route(cmd); other != g {
			t.Fatalf("independent routers disagree on %q: %v vs %v", cmd, g, other)
		}
	})
}
