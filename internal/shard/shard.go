// Package shard partitions the keyspace of a replicated service across
// several independent OAR ordering groups and routes each command to the
// group that owns its key.
//
// The design follows the scaling rule of every production ordered-replication
// system: a single group's throughput is capped by one sequencer's event
// loop, so N groups run side by side — each a complete OAR instance
// satisfying Propositions 1–7 on its own key subspace — and a stateless
// router decides which group serves a command. Cross-group operations are
// deliberately out of scope: the total order is per group, which is exactly
// the consistency contract a key-partitioned service offers.
//
// The three pieces:
//
//   - KeyFunc extracts the routing key from an opaque command. The default,
//     FirstToken, takes the first whitespace-separated token; MachineKey
//     returns a key extractor matched to a built-in state machine's command
//     syntax (e.g. the <k> of the kv machine's "set <k> <v>").
//   - Router maps a key to a proto.GroupID by FNV-1a hash, giving a
//     deterministic, uniform assignment that every client computes
//     independently — no directory service.
//   - Client owns one per-group backend (a core.Client in production) and
//     fans each Invoke out to the owning group.
package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/proto"
)

// KeyFunc extracts the routing key of a command. Commands with equal keys
// are ordered by the same group; commands with different keys may be served
// by different groups and carry no mutual ordering guarantee.
type KeyFunc func(cmd []byte) []byte

// FirstToken is the default KeyFunc: the first whitespace-separated token of
// the command (the whole command when it has no whitespace).
func FirstToken(cmd []byte) []byte { return nthToken(0)(cmd) }

func isSpace(b byte) bool { return b == ' ' || b == '\t' }

// nthToken returns a KeyFunc extracting the n-th (0-based) whitespace-
// separated token. A command with fewer tokens keys on its last one (so
// "get" routes with "get <k>" traffic only when no key exists to do better);
// an empty command yields an empty key.
func nthToken(n int) KeyFunc {
	return func(cmd []byte) []byte {
		var tok []byte
		rest := cmd
		for i := 0; ; i++ {
			for len(rest) > 0 && isSpace(rest[0]) {
				rest = rest[1:]
			}
			if len(rest) == 0 {
				return tok
			}
			end := 0
			for end < len(rest) && !isSpace(rest[end]) {
				end++
			}
			tok = rest[:end]
			if i == n {
				return tok
			}
			rest = rest[end:]
		}
	}
}

// MachineKey returns the conventional KeyFunc for a built-in state machine.
// Verb-first machines (kv, bank) route on the command's second token — the
// key or account the verb operates on — so all operations on one datum land
// in one group. Machines whose whole state is one object (stack, counter,
// queue, recorder) route on the first token; sharding them splits load but
// not semantics, which is the honest best a hash router can do for an
// unpartitionable structure.
func MachineKey(machine string) KeyFunc {
	switch machine {
	case "kv", "bank":
		return nthToken(1)
	default:
		return FirstToken
	}
}

// Router deterministically maps commands to ordering groups.
type Router struct {
	shards uint32
	key    KeyFunc
}

// NewRouter creates a router over the given number of groups. A nil key uses
// FirstToken.
func NewRouter(shards int, key KeyFunc) (*Router, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", shards)
	}
	if key == nil {
		key = FirstToken
	}
	return &Router{shards: uint32(shards), key: key}, nil
}

// Shards returns the number of groups routed over.
func (r *Router) Shards() int { return int(r.shards) }

// FNV-1a constants (hash/fnv's 32-bit variant, inlined so the per-Invoke
// routing decision is allocation-free).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// Route returns the ordering group that owns cmd's key: FNV-1a of the key,
// modulo the group count.
func (r *Router) Route(cmd []byte) proto.GroupID {
	h := uint32(fnvOffset32)
	for _, b := range r.key(cmd) {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	return proto.GroupID(h % r.shards)
}

// Invoker is the per-group client surface the shard client fans out to
// (satisfied by *core.Client and by the cluster package's protocol clients).
type Invoker interface {
	Invoke(ctx context.Context, cmd []byte) (proto.Reply, error)
	Stop()
}

// Client is a sharded client: one backend per ordering group, each Invoke
// routed to the group owning the command's key. It is safe for concurrent
// use iff its backends are (core.Client is).
type Client struct {
	router *Router
	groups []Invoker
	routed []atomic.Uint64
}

// NewClient builds a sharded client. groups[g] serves proto.GroupID(g); the
// slice length must match the router's shard count.
func NewClient(router *Router, groups []Invoker) (*Client, error) {
	if router == nil {
		return nil, fmt.Errorf("shard: router is required")
	}
	if len(groups) != router.Shards() {
		return nil, fmt.Errorf("shard: %d group clients for %d shards", len(groups), router.Shards())
	}
	for g, cli := range groups {
		if cli == nil {
			return nil, fmt.Errorf("shard: group %d client is nil", g)
		}
	}
	return &Client{router: router, groups: groups, routed: make([]atomic.Uint64, len(groups))}, nil
}

// Route exposes the routing decision (for tests and load generators).
func (c *Client) Route(cmd []byte) proto.GroupID { return c.router.Route(cmd) }

// Invoke submits cmd to the group owning its key and blocks until that
// group's client adopts a reply.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	g := c.router.Route(cmd)
	c.routed[g].Add(1)
	return c.groups[g].Invoke(ctx, cmd)
}

// readInvoker mirrors backend.ReadInvoker (redeclared here to keep this
// package below the backend seam, like Invoker above).
type readInvoker interface {
	InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error)
}

// InvokeRead submits a read-only cmd to the group owning its key on that
// group's read fast path. Groups whose client has no fast path serve the
// read as an ordinary Invoke — per-key consistency is identical either way,
// only the ordering cost differs.
func (c *Client) InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error) {
	g := c.router.Route(cmd)
	c.routed[g].Add(1)
	if ri, ok := c.groups[g].(readInvoker); ok {
		return ri.InvokeRead(ctx, cmd)
	}
	return c.groups[g].Invoke(ctx, cmd)
}

// Routed returns how many Invokes were routed to each group — the observed
// load split. Under a uniform key distribution the counts are near-equal;
// under a skewed one (e.g. a zipfian workload) the imbalance quantifies how
// much of the keyspace's heat one group absorbs. Counts include failed
// invocations: routing happened either way.
func (c *Client) Routed() []uint64 {
	out := make([]uint64, len(c.routed))
	for i := range c.routed {
		out[i] = c.routed[i].Load()
	}
	return out
}

// Stop shuts every per-group backend down.
func (c *Client) Stop() {
	for _, cli := range c.groups {
		cli.Stop()
	}
}
