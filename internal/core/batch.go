package core

import (
	"encoding/binary"

	"repro/internal/proto"
	"repro/internal/transport"
)

// sendBuf accumulates one destination's outbound messages as a proto.Batch
// envelope under construction: [KindBatch][group][len][msg][len][msg]... The
// buffer is reused across flushes.
type sendBuf struct {
	buf   []byte
	count int
}

// sendBufMaxIdle caps the capacity a reusable send buffer may retain after a
// flush, so one exceptional burst does not pin memory forever.
const sendBufMaxIdle = 64 << 10

// batcher coalesces the sends of one batching round per destination, tagging
// every envelope with the owning ordering group. It is owned by a single
// goroutine (the server event loop, or the client's sender loop). FIFO per
// destination is preserved because frames are appended in send order and
// rounds never interleave.
type batcher struct {
	node   transport.Node
	header []byte // precomputed [KindBatch][group] envelope header
	bufs   map[proto.NodeID]*sendBuf
	order  []proto.NodeID // destinations with buffered sends, in first-send order
}

func newBatcher(node transport.Node, group proto.GroupID) *batcher {
	return &batcher{
		node:   node,
		header: proto.AppendHeader(nil, proto.KindBatch, group),
		bufs:   make(map[proto.NodeID]*sendBuf),
	}
}

// add appends one kind-tagged message to to's envelope buffer.
func (b *batcher) add(to proto.NodeID, frame []byte) {
	sb, ok := b.bufs[to]
	if !ok {
		sb = &sendBuf{}
		b.bufs[to] = sb
	}
	if sb.count == 0 {
		b.order = append(b.order, to)
		sb.buf = append(sb.buf[:0], b.header...)
	}
	sb.buf = binary.AppendUvarint(sb.buf, uint64(len(frame)))
	sb.buf = append(sb.buf, frame...)
	sb.count++
}

// flush ships every buffered send: one owned frame per destination — the
// batch envelope, or the bare inner message when the round produced just one
// (so single-message traffic is byte-identical to the unbatched wire). Send
// errors mean the network or this node is gone; the caller's receive side
// will observe the closed inbox. Nothing useful to do here.
func (b *batcher) flush() {
	for _, to := range b.order {
		sb := b.bufs[to]
		raw := sb.buf
		if sb.count == 1 {
			// Unwrap [KindBatch][group][len][msg] to the bare message.
			skip := len(b.header)
			_, n := binary.Uvarint(raw[skip:])
			raw = raw[skip+n:]
		}
		frame := make([]byte, len(raw))
		copy(frame, raw)
		_ = b.node.Send(to, frame)
		sb.count = 0
		if cap(sb.buf) > sendBufMaxIdle {
			sb.buf = nil
		}
	}
	b.order = b.order[:0]
}
