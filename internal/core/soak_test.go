package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/proto"
)

// TestRandomizedFaultSoak drives randomized workloads against randomized
// fault schedules — crashes of a minority, transient link blocks, network
// jitter — and lets the trace checker judge every run against Propositions
// 1–7 and the Cnsv-order specification. Any schedule that violates safety
// fails loudly; quiescent runs are also checked for at-least-once delivery.
func TestRandomizedFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	const seeds = 12
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := []int{3, 3, 5}[rng.Intn(3)]
	machine := []string{"recorder", "kv", "bank", "stack"}[rng.Intn(4)]
	gc := []int{0, 4, 16}[rng.Intn(3)]

	ck := check.New(n)
	c := mustCluster(t, cluster.Options{
		N: n, Machine: machine, Tracer: ck,
		EpochRequestLimit: gc,
		FDTimeout:         12 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
		Net: memnet.Options{
			MaxDelay: time.Duration(rng.Intn(3)) * time.Millisecond,
			Seed:     seed + 1,
		},
	})

	// Fault schedule: crash up to a minority, plus one transient link block.
	maxCrash := (n - 1) / 2
	crashes := rng.Intn(maxCrash + 1)
	crashAfter := make(map[int]int) // request index -> replica
	for i := 0; i < crashes; i++ {
		crashAfter[3+rng.Intn(15)] = rng.Intn(n)
	}
	blockAt := -1
	if rng.Intn(2) == 0 {
		blockAt = 2 + rng.Intn(10)
	}

	const clients = 2
	const perClient = 12
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	crashed := make(map[int]bool)
	var mu sync.Mutex

	for ci := 0; ci < clients; ci++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ci int, cli cluster.Invoker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
			defer cancel()
			for j := 0; j < perClient; j++ {
				step := ci*perClient + j
				mu.Lock()
				if r, ok := crashAfter[step]; ok && !crashed[r] && len(crashed) < maxCrash {
					crashed[r] = true
					ck.MarkCrashed(proto.NodeID(r))
					c.Crash(0, r)
				}
				if step == blockAt {
					a, b := proto.NodeID(rng.Intn(n)), proto.NodeID(rng.Intn(n))
					c.Net(0).Block(a, b)
					go func() {
						time.Sleep(30 * time.Millisecond)
						c.Net(0).Unblock(a, b)
					}()
				}
				mu.Unlock()

				cmd := soakCmd(machine, ci, j)
				if _, err := cli.Invoke(ctx, []byte(cmd)); err != nil {
					errCh <- fmt.Errorf("client %d step %d: %w", ci, j, err)
					return
				}
			}
			errCh <- nil
		}(ci, cli)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Wait for quiescence: every live replica holds every adopted request.
	total := uint64(clients * perClient)
	live := n - func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(crashed)
	}()
	cluster.WaitUntil(testTimeout, func() bool {
		sum := c.TotalStats()
		return sum.OptDelivered+sum.ADelivered-sum.OptUndelivered >= total*uint64(live)
	})
	time.Sleep(20 * time.Millisecond)

	for _, v := range ck.Verify() {
		t.Errorf("safety: %v", v)
	}
	for _, v := range ck.VerifyLiveness() {
		t.Errorf("liveness: %v", v)
	}
}

func soakCmd(machine string, ci, j int) string {
	switch machine {
	case "kv":
		return fmt.Sprintf("set k%d-%d v%d", ci, j, j)
	case "bank":
		if j == 0 {
			return fmt.Sprintf("open acct%d", ci)
		}
		return fmt.Sprintf("deposit acct%d 5", ci)
	case "stack":
		if j%3 == 2 {
			return "pop"
		}
		return fmt.Sprintf("push v%d-%d", ci, j)
	default:
		return fmt.Sprintf("cmd%d-%d", ci, j)
	}
}
