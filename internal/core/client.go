package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/transport"
)

// ClientConfig configures an OAR client.
type ClientConfig struct {
	// ID is the client's node ID (use proto.ClientID(i)).
	ID proto.NodeID
	// Group is Π, the server group.
	Group []proto.NodeID
	// Node is the client's transport endpoint.
	Node transport.Node
	// Tracer observes reply adoptions (nil disables tracing).
	Tracer Tracer
}

// Client implements the client side of the OAR algorithm (Figure 5):
// OAR-multicast the request, wait for a set of same-epoch replies whose
// combined weight reaches ⌈(|Π|+1)/2⌉, then adopt a reply of maximal
// individual weight.
//
// A Client is safe for concurrent use: multiple goroutines may Invoke at
// once (each request is tracked independently). Start must be called before
// Invoke, and Stop when done.
type Client struct {
	cfg    ClientConfig
	n      int
	tracer Tracer

	mu      sync.Mutex
	rm      *rmcast.RMcast
	nextSeq uint64
	pending map[proto.RequestID]*call

	done chan struct{} // reply-dispatch loop exited
	stop context.CancelFunc
}

// call accumulates replies for one outstanding request.
type call struct {
	byEpoch map[uint64]*epochReplies
	result  chan proto.Reply // buffered(1); receives the adopted reply
	adopted bool
}

// epochReplies groups the replies of one epoch, per the "for some k" clause
// of Figure 5 line 3.
type epochReplies struct {
	replies []proto.Reply
	union   proto.Weight
}

// NewClient validates cfg and creates a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("core: client Node is required")
	}
	if len(cfg.Group) == 0 {
		return nil, fmt.Errorf("core: client needs a non-empty group")
	}
	if !cfg.ID.IsClient() {
		return nil, fmt.Errorf("core: %v is not a client ID", cfg.ID)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = nopTracer{}
	}
	c := &Client{
		cfg:     cfg,
		n:       len(cfg.Group),
		tracer:  cfg.Tracer,
		pending: make(map[proto.RequestID]*call),
		done:    make(chan struct{}),
	}
	c.rm = rmcast.New(rmcast.Config{
		Self:  cfg.ID,
		Group: cfg.Group,
		Send: func(to proto.NodeID, payload []byte) {
			_ = cfg.Node.Send(to, payload)
		},
	})
	return c, nil
}

// Start launches the reply-dispatch loop.
func (c *Client) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.loop(ctx)
}

// Stop terminates the dispatch loop and waits for it to exit. Outstanding
// Invokes fail with their context (or hang until their context ends), so
// cancel those first.
func (c *Client) Stop() {
	if c.stop != nil {
		c.stop()
	}
	<-c.done
}

func (c *Client) loop(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-c.cfg.Node.Recv():
			if !ok {
				return
			}
			kind, body, err := proto.Unmarshal(m.Payload)
			if err != nil || kind != proto.KindReply {
				continue
			}
			reply, err := proto.UnmarshalReply(body)
			if err != nil {
				continue
			}
			c.onReply(reply)
		}
	}
}

// onReply implements lines 3–5 of Figure 5.
func (c *Client) onReply(reply proto.Reply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	call, ok := c.pending[reply.Req]
	if !ok || call.adopted {
		return
	}
	acc, ok := call.byEpoch[reply.Epoch]
	if !ok {
		acc = &epochReplies{}
		call.byEpoch[reply.Epoch] = acc
	}
	acc.replies = append(acc.replies, reply)
	acc.union = acc.union.Union(reply.Weight)

	// Line 3: wait until, for some k, the union weight reaches ⌈(|Π|+1)/2⌉.
	if !acc.union.IsMajority(c.n) {
		return
	}
	// Lines 4–5: adopt a reply with the largest individual weight.
	best := acc.replies[0]
	for _, r := range acc.replies[1:] {
		if r.Weight.Count() > best.Weight.Count() {
			best = r
		}
	}
	call.adopted = true
	call.result <- best
	delete(c.pending, reply.Req)
	c.tracer.Adopt(c.cfg.ID, reply.Req, best)
}

// Invoke performs OAR-multicast(m, Π) and blocks until a reply is adopted or
// ctx ends. The returned Reply carries the application result, the delivery
// position and the endorsing weight.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	call := &call{
		byEpoch: make(map[uint64]*epochReplies),
		result:  make(chan proto.Reply, 1),
	}
	c.pending[id] = call
	c.tracer.Issue(c.cfg.ID, id, cmd)
	// Line 2: R-multicast (m, Π). The rmcast endpoint is guarded by c.mu.
	c.rm.Multicast(proto.MarshalRequest(proto.Request{ID: id, Cmd: cmd}))
	c.mu.Unlock()

	select {
	case reply := <-call.result:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("core: invoke %v: %w", id, ctx.Err())
	}
}
