package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/transport"
	"repro/internal/tune"
)

// ClientConfig configures an OAR client.
type ClientConfig struct {
	// ID is the client's node ID (use proto.ClientID(i)).
	ID proto.NodeID
	// Group is Π, the server group.
	Group []proto.NodeID
	// GroupID is the ordering group this client talks to. Requests carry it
	// in their identity, outgoing frames are tagged with it, and replies
	// tagged with a different group are dropped. Zero is the single-group
	// system.
	GroupID proto.GroupID
	// Node is the client's transport endpoint.
	Node transport.Node
	// Tracer observes reply adoptions (nil disables tracing).
	Tracer Tracer
	// Unbatched disables the adaptive request-batching sender: each
	// R-multicast copy goes out as its own frame from the invoking
	// goroutine, the pre-batching behavior. By default concurrent Invokes
	// are coalesced per server into proto.Batch frames by a sender loop,
	// with no added latency when the client is idle.
	Unbatched bool
	// AutoTune gives the batching sender a closed-loop hold-window
	// controller (internal/tune): under load, outbound request frames are
	// held up to the tuned window to coalesce more R-multicast copies per
	// frame; at idle the window collapses to zero. A drain timer bounds any
	// hold at about a tick even if no further Invokes arrive. Ignored when
	// Unbatched.
	AutoTune bool
}

// Client implements the client side of the OAR algorithm (Figure 5):
// OAR-multicast the request, wait for a set of same-epoch replies whose
// combined weight reaches ⌈(|Π|+1)/2⌉, then adopt a reply of maximal
// individual weight.
//
// A Client is safe for concurrent use: multiple goroutines may Invoke at
// once (each request is tracked independently). Start must be called before
// Invoke, and Stop when done.
type Client struct {
	cfg    ClientConfig
	n      int
	tracer Tracer

	mu      sync.Mutex
	rm      *rmcast.RMcast
	nextSeq uint64
	pending map[proto.RequestID]*call
	// highWater is the largest delivery position this client has adopted a
	// reply at — write or read. Fast-path read replies from shorter prefixes
	// are discarded (not counted toward adoption), which makes reads monotonic
	// and read-your-writes: a read issued after an adopted operation can only
	// adopt state that includes it.
	highWater uint64

	// Request batching: Invokes enqueue their outbound frames here and a
	// sender loop coalesces whatever has accumulated per server into one
	// proto.Batch frame per drain round (nil when cfg.Unbatched).
	sendCh chan sendJob

	done       chan struct{} // reply-dispatch loop exited
	senderDone chan struct{} // sender loop exited (closed immediately if unbatched)
	stop       context.CancelFunc
	stopOnce   sync.Once
	stopped    chan struct{} // closed by Stop; unblocks enqueues
}

// sendJob is one frame bound for one server.
type sendJob struct {
	to      proto.NodeID
	payload []byte
}

// call accumulates replies for one outstanding request.
type call struct {
	byEpoch map[uint64]*epochReplies
	result  chan proto.Reply // buffered(1); receives the adopted reply
	adopted bool

	// Read fast path only: rq runs the shared majority-validated adoption
	// rule and tracks which replicas answered at all, so the invoker can give
	// up and fall back to the ordered path as soon as the whole group has
	// answered without an adoptable majority.
	rq     *backend.ReadQuorum
	giveUp chan struct{} // closed once every replica answered without adoption
	gaveUp bool
	// issueFloor is the client high-water at read-issue time. Only consulted
	// when StaleReadFloorBug is enabled (fault injection): the correct floor
	// is the live c.highWater, re-read at every reply.
	issueFloor uint64
}

// epochReplies groups the replies of one epoch, per the "for some k" clause
// of Figure 5 line 3.
type epochReplies struct {
	replies []proto.Reply
	union   proto.Weight
}

// NewClient validates cfg and creates a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("core: client Node is required")
	}
	if len(cfg.Group) == 0 {
		return nil, fmt.Errorf("core: client needs a non-empty group")
	}
	if !cfg.ID.IsClient() {
		return nil, fmt.Errorf("core: %v is not a client ID", cfg.ID)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = NopTracer()
	}
	c := &Client{
		cfg:        cfg,
		n:          len(cfg.Group),
		tracer:     cfg.Tracer,
		pending:    make(map[proto.RequestID]*call),
		done:       make(chan struct{}),
		senderDone: make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	send := func(to proto.NodeID, payload []byte) {
		_ = cfg.Node.Send(to, payload)
	}
	if !cfg.Unbatched {
		c.sendCh = make(chan sendJob, 256)
		send = c.enqueue
	}
	c.rm = rmcast.New(rmcast.Config{
		Self:    cfg.ID,
		Group:   cfg.Group,
		GroupID: cfg.GroupID,
		Send:    send,
	})
	return c, nil
}

// enqueue hands one outbound frame to the sender loop. After Stop the frame
// is dropped — outstanding Invokes are failing with their contexts anyway.
func (c *Client) enqueue(to proto.NodeID, payload []byte) {
	select {
	case c.sendCh <- sendJob{to: to, payload: payload}:
	case <-c.stopped:
	}
}

// clientFlushSpins is how many consecutive empty-queue scheduler yields the
// sender tolerates before flushing a round. Concurrent Invokes serialize on
// the client mutex, so the goroutine that will enqueue the next frames is
// often runnable-but-not-yet-run when the queue looks empty; yielding lets it
// contribute to the current round. An idle client pays only the yields.
const clientFlushSpins = 2

// sendLoop drains queued frames and flushes them per destination, coalescing
// the sends of concurrent Invokes into one frame per server per round. With
// AutoTune the batcher may additionally hold a round's frames to coalesce
// across rounds; the drain timer guarantees held frames still ship within
// about a tick when no further Invokes arrive to trigger a flush.
func (c *Client) sendLoop(ctx context.Context) {
	defer close(c.senderDone)
	var opts transport.BatcherOptions
	if c.cfg.AutoTune {
		opts.Tuner = tune.New(tune.Config{})
	}
	out := transport.NewBatcherWith(c.cfg.Node, c.cfg.GroupID, opts)
	defer out.Close()
	drain := time.NewTimer(time.Hour)
	if !drain.Stop() {
		<-drain.C
	}
	armed := false
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-c.sendCh:
			out.Add(job.to, job.payload)
			transport.DrainLinger(c.sendCh, clientFlushSpins, maxDrain-1, func(j sendJob) {
				out.Add(j.to, j.payload)
			})
			out.Flush()
		case <-drain.C:
			armed = false
			out.Flush()
		}
		if !armed && out.Pending() > 0 {
			drain.Reset(DefaultTickInterval)
			armed = true
		}
	}
}

// Start launches the reply-dispatch loop (and the batching sender loop).
func (c *Client) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.loop(ctx)
	if c.sendCh != nil {
		go c.sendLoop(ctx)
	} else {
		close(c.senderDone)
	}
}

// Stop terminates the dispatch and sender loops and waits for them to exit.
// Outstanding Invokes fail with their context (or hang until their context
// ends), so cancel those first.
func (c *Client) Stop() {
	if c.stop != nil {
		c.stop()
	}
	c.stopOnce.Do(func() { close(c.stopped) })
	<-c.done
	<-c.senderDone
}

func (c *Client) loop(ctx context.Context) {
	defer close(c.done)
	var replies []proto.Reply // reused across frames
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-c.cfg.Node.Recv():
			if !ok {
				return
			}
			// Servers coalesce the replies of one delivery round into a
			// proto.Batch frame; expand it (a non-batch message passes
			// through unchanged), decode the inner replies, and process the
			// whole frame under one lock. The decoded results alias the
			// frame; onReplies clones whatever it retains, so the frame's
			// pooled buffer is recycled as soon as dispatch returns.
			msgs, _ := transport.ExpandBatch(m)
			replies = replies[:0]
			for _, inner := range msgs {
				kind, group, body, err := proto.Unmarshal(inner.Payload)
				if err != nil || kind != proto.KindReply || group != c.cfg.GroupID {
					continue
				}
				reply, err := proto.UnmarshalReply(body)
				if err != nil {
					continue
				}
				replies = append(replies, reply)
			}
			c.onReplies(replies)
			m.Release()
		}
	}
}

// onReplies runs lines 3–5 of Figure 5 for every reply of one received
// frame, holding the client lock once rather than per reply.
func (c *Client) onReplies(replies []proto.Reply) {
	if len(replies) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, reply := range replies {
		c.onReplyLocked(reply)
	}
}

// onReplyLocked implements lines 3–5 of Figure 5. Caller holds c.mu.
//
// The per-epoch accumulator retains the reply across frames (the quorum
// builds up from several servers' frames), and the adopted reply is handed
// to the invoking goroutine — both outlive the inbound frame the reply was
// decoded from. The reply is therefore cloned at retention (copy-on-retain);
// replies for unknown or already-adopted requests cost nothing.
func (c *Client) onReplyLocked(reply proto.Reply) {
	call, ok := c.pending[reply.Req]
	if !ok || call.adopted {
		return
	}
	if call.rq != nil {
		c.onReadReplyLocked(call, reply)
		return
	}
	acc, ok := call.byEpoch[reply.Epoch]
	if !ok {
		acc = &epochReplies{}
		call.byEpoch[reply.Epoch] = acc
	}
	acc.replies = append(acc.replies, reply.Clone())
	acc.union = acc.union.Union(reply.Weight)

	// Line 3: wait until, for some k, the union weight reaches ⌈(|Π|+1)/2⌉.
	if !acc.union.IsMajority(c.n) {
		return
	}
	// Lines 4–5: adopt a reply with the largest individual weight.
	best := acc.replies[0]
	for _, r := range acc.replies[1:] {
		if r.Weight.Count() > best.Weight.Count() {
			best = r
		}
	}
	call.adopted = true
	call.result <- best
	delete(c.pending, reply.Req)
	if best.Pos > c.highWater {
		c.highWater = best.Pos
	}
	c.tracer.Adopt(c.cfg.ID, reply.Req, best)
}

// onReadReplyLocked feeds a read call's reply through the shared
// majority-validated adoption rule (backend.ReadQuorum). Replies below the
// client's high-water mark are discarded before they enter the accumulator
// (they would break monotonic reads) but still count toward the answered
// weight, so a read that can never be adopted — e.g. every replica behind
// the client's last write — falls back instead of hanging. Caller holds
// c.mu.
func (c *Client) onReadReplyLocked(rc *call, reply proto.Reply) {
	defer func() {
		if !rc.adopted && !rc.gaveUp && rc.rq.AllAnswered() {
			rc.gaveUp = true
			close(rc.giveUp)
		}
	}()
	floor := c.highWater
	if StaleReadFloorBug.Load() {
		floor = rc.issueFloor // injected bug: floor frozen at issue time
	}
	if reply.Pos < floor {
		rc.rq.Answer(reply)
		return // stale prefix: predates this client's last adopted operation
	}
	best, ok := rc.rq.Offer(reply.Clone(), floor)
	if !ok {
		return
	}
	rc.adopted = true
	rc.result <- best
	delete(c.pending, reply.Req)
	if best.Pos > c.highWater {
		c.highWater = best.Pos
	}
	c.tracer.ReadAdopt(c.cfg.ID, reply.Req, best)
}

// Invoke performs OAR-multicast(m, Π) and blocks until a reply is adopted or
// ctx ends. The returned Reply carries the application result, the delivery
// position and the endorsing weight.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Group: c.cfg.GroupID, Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	call := &call{
		byEpoch: make(map[uint64]*epochReplies),
		result:  make(chan proto.Reply, 1),
	}
	c.pending[id] = call
	c.tracer.Issue(c.cfg.ID, id, cmd)
	// Line 2: R-multicast (m, Π). The rmcast endpoint is guarded by c.mu.
	// The inner request is encoded via a pooled writer: Multicast copies it
	// into the (owned) wrapper payload before returning.
	w := proto.GetWriter()
	proto.EncodeHeader(w, proto.KindRequest, id.Group)
	proto.Request{ID: id, Cmd: cmd}.Encode(w)
	c.rm.Multicast(w.Bytes())
	proto.PutWriter(w)
	c.mu.Unlock()

	select {
	case reply := <-call.result:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("core: invoke %v: %w", id, ctx.Err())
	}
}

// readFallbackTimeout bounds how long a fast-path read waits for an
// adoptable majority before re-issuing on the ordered path. It only fires
// when replies were lost or replicas hang — the all-answered-without-adoption
// case falls back immediately — so it is deliberately generous next to
// normal round-trip latency.
const readFallbackTimeout = 64 * DefaultTickInterval

// InvokeRead performs a read-only request on the fast path: the command goes
// directly to every replica of the group — no reliable multicast, no
// sequencer, no position in the definitive order — and each replica that
// implements app.Reader answers inline from its optimistic prefix. The reply
// is adopted under the majority-validated rule of onReadReplyLocked, which
// also keeps this client's reads monotonic and read-your-writes.
//
// A read that cannot be adopted — the machine has no Reader, the command is
// not a well-formed read, or no compatible majority forms — falls back to
// the ordered path via a fresh Invoke (safe: the fast-path attempt had no
// effect on any replica). Replica-side fallbacks resolve transparently: all
// replicas then reply from the request's single delivery position, which
// satisfies the read rule at that position.
func (c *Client) InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Group: c.cfg.GroupID, Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	rc := &call{
		result:     make(chan proto.Reply, 1),
		rq:         backend.NewReadQuorum(c.n),
		giveUp:     make(chan struct{}),
		issueFloor: c.highWater,
	}
	c.pending[id] = rc
	c.mu.Unlock()

	// One owned frame shared across every destination: sent payloads are
	// immutable, and the batching sender copies on Add anyway.
	frame := proto.MarshalRead(proto.Request{ID: id, Cmd: cmd, ReadOnly: true})
	for _, srv := range c.cfg.Group {
		if c.sendCh != nil {
			c.enqueue(srv, frame)
		} else {
			_ = c.cfg.Node.Send(srv, frame)
		}
	}

	timer := time.NewTimer(readFallbackTimeout)
	defer timer.Stop()
	select {
	case reply := <-rc.result:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("core: read %v: %w", id, ctx.Err())
	case <-rc.giveUp:
	case <-timer.C:
	}

	// Fall back to the ordered path. Retire the fast-path attempt first;
	// once it leaves pending no late adoption can race the re-issue, and an
	// adoption that slipped in before the lock sits in the buffered result
	// channel.
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
	select {
	case reply := <-rc.result:
		return reply, nil
	default:
	}
	return c.Invoke(ctx, cmd)
}
