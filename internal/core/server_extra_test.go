package core_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/proto"
	"repro/internal/rmcast"
)

// TestLaggingReplicaCatchesUp: p2 is cut off while the rest of the group
// advances through several GC epochs; after healing it must replay the
// buffered orderings/decisions and converge. Exercises the future-epoch
// SeqOrder buffer, pending-PhaseII and stored-decision paths.
func TestLaggingReplicaCatchesUp(t *testing.T) {
	ck := check.New(3)
	// Heartbeat FD: the isolated p2 becomes the sequencer every third epoch
	// and must be suspected for the majority to keep advancing.
	c := mustCluster(t, cluster.Options{
		N: 3, Tracer: ck, EpochRequestLimit: 2,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")

	// Isolate p2 (messages held, not lost — reliable channels).
	c.Net(0).BlockGroups([]proto.NodeID{2}, []proto.NodeID{0, 1})

	// The majority {p0, p1} keeps going through multiple epochs. With
	// EpochRequestLimit=2 the sequencer forces PhaseII repeatedly; consensus
	// instances complete with the majority alone.
	for i := 2; i <= 9; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.ReplicaStats(0, 0).Epochs >= 2 }) {
		t.Fatalf("majority did not advance epochs: %+v", c.TotalStats())
	}
	if got := c.ReplicaStats(0, 2).OptDelivered + c.ReplicaStats(0, 2).ADelivered; got > 1 {
		t.Fatalf("isolated replica delivered %d messages", got)
	}

	// Heal: p2 replays held traffic (orderings for later epochs arrive
	// before it finishes earlier phase 2s) and converges.
	c.Net(0).Heal()
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

// TestSeqOrderPayloadPiggyback: a client request reaches ONLY the sequencer
// (drops to the other replicas, lazy relay so nothing re-forwards it); the
// others must still Opt-deliver it because the ordering message carries full
// payloads.
func TestSeqOrderPayloadPiggyback(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		N: 3, FD: cluster.FDNever, Tracer: ck, RelayMode: rmcast.Lazy,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// Drop the client's R-multicast copies to p1 and p2 (not the sequencer's
	// ordering). With Lazy relay, no replica re-forwards either.
	cid := proto.ClientID(0)
	c.Net(0).SetFilter(func(from, to proto.NodeID, payload []byte) memnet.Verdict {
		if from == cid && to != proto.NodeID(0) {
			return memnet.Drop
		}
		return memnet.Deliver
	})

	reply := invoke(t, cli, "only-p0-gets-this")
	if reply.Pos != 1 {
		t.Fatalf("pos = %d", reply.Pos)
	}
	// All three replicas must have delivered it — p1/p2 learned the payload
	// from the SeqOrder message alone.
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 3 }) {
		t.Fatalf("piggyback failed: %+v", c.TotalStats())
	}
	verifyAll(t, ck, true)
}

// TestTwoCrashesWithFive: n=5 tolerates two crash failures; crash the
// sequencer of epoch 0 and then another replica, service continues.
func TestTwoCrashesWithFive(t *testing.T) {
	ck := check.New(5)
	c := mustCluster(t, cluster.Options{
		N: 5, Tracer: ck,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")
	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)
	invoke(t, cli, "m2")
	invoke(t, cli, "m3")
	ck.MarkCrashed(proto.NodeID(2))
	c.Crash(0, 2)
	for i := 4; i <= 7; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	fingerprintsConverge(t, c, []int{1, 3, 4})
	verifyAll(t, ck, true)
}

// TestSequencerRotationWrapsAround: with a 1-request epoch limit the
// sequencer role must rotate through the whole group and wrap.
func TestSequencerRotationWrapsAround(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		N: 3, FD: cluster.FDNever, Tracer: ck, EpochRequestLimit: 1,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		reply := invoke(t, cli, fmt.Sprintf("m%d", i))
		if reply.Pos != uint64(i) {
			t.Fatalf("pos %d for m%d", reply.Pos, i)
		}
	}
	// 8 requests, 1 per epoch: epochs well beyond n=3, so the rotating
	// sequencer wrapped at least twice.
	if !cluster.WaitUntil(testTimeout, func() bool { return c.ReplicaStats(0, 0).Epochs >= 6 }) {
		t.Fatalf("epochs = %+v", c.ReplicaStats(0, 0))
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

// TestNonSequencerCrashIsSeamless: crashing a replica that is neither the
// sequencer nor needed for the majority must not even trigger phase 2.
func TestNonSequencerCrashIsSeamless(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		N: 3, FD: cluster.FDNever, Tracer: ck,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")
	ck.MarkCrashed(proto.NodeID(2))
	c.Crash(0, 2)
	for i := 2; i <= 5; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	if got := c.TotalStats().Epochs; got != 0 {
		t.Errorf("non-sequencer crash triggered %d phase-2 runs", got)
	}
	fingerprintsConverge(t, c, []int{0, 1})
	verifyAll(t, ck, true)
}

// TestSuspicionStormThenStabilize: every replica suspects everyone for a
// while (epochs churn, consensus rounds rotate past n); once the detectors
// stabilize (◊S eventual accuracy), the service must make progress again.
func TestSuspicionStormThenStabilize(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDOracle, Tracer: ck})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")

	for _, id := range c.Group() {
		c.SuspectEverywhere(id)
	}
	// Issue a request into the storm; it cannot be served while everyone
	// nacks everyone.
	done := make(chan proto.Reply, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		if r, err := cli.Invoke(ctx, []byte("m2")); err == nil {
			done <- r
		}
	}()
	time.Sleep(50 * time.Millisecond) // let epochs churn

	for _, id := range c.Group() {
		c.TrustEverywhere(id)
	}
	select {
	case r := <-done:
		if r.Pos != 2 {
			t.Fatalf("m2 at pos %d", r.Pos)
		}
	case <-time.After(testTimeout):
		t.Fatal("no progress after detectors stabilized")
	}
	invoke(t, cli, "m3")
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

// TestGarbageOnTheWire: servers and clients must survive arbitrary bytes
// arriving on their transport without crashing or corrupting state.
func TestGarbageOnTheWire(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDNever, Tracer: ck})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")

	evil := c.Net(0).Node(proto.ClientID(99))
	payloads := [][]byte{
		nil,
		{0x00},
		{0xFF, 0xFF, 0xFF},
		{byte(proto.KindRMcast), 0xFF},
		{byte(proto.KindSeqOrder), 0xFF, 0xFF},
		{byte(proto.KindEstimate)},
		{byte(proto.KindDecide), 0x01},
		{byte(proto.KindReply), 0xFF},
	}
	for _, p := range payloads {
		for _, id := range c.Group() {
			_ = evil.Send(id, p)
		}
		_ = evil.Send(proto.ClientID(0), p)
	}

	// The cluster still works.
	reply := invoke(t, cli, "m2")
	if reply.Pos != 2 {
		t.Fatalf("pos = %d after garbage injection", reply.Pos)
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 6 }) {
		t.Fatalf("deliveries incomplete: %+v", c.TotalStats())
	}
	verifyAll(t, ck, true)
}

// TestSingleReplicaDegenerate: n=1 is a legal (non-fault-tolerant) group;
// the sequencer is the whole majority.
func TestSingleReplicaDegenerate(t *testing.T) {
	ck := check.New(1)
	c := mustCluster(t, cluster.Options{N: 1, FD: cluster.FDNever, Tracer: ck, EpochRequestLimit: 2})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		reply := invoke(t, cli, fmt.Sprintf("m%d", i))
		if reply.Pos != uint64(i) {
			t.Fatalf("pos %d", reply.Pos)
		}
	}
	verifyAll(t, ck, true)
}

// TestInterleavedClientsSeeOneOrder: two clients race commuting and
// non-commuting operations on a kv store; whatever order wins, all replicas
// and all adopted replies agree on it.
func TestInterleavedClientsSeeOneOrder(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, Machine: "kv", FD: cluster.FDNever, Tracer: ck})
	c1, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	done := make(chan error, 2)
	for i, cli := range []cluster.Invoker{c1, c2} {
		go func(i int, cli cluster.Invoker) {
			for j := 0; j < 20; j++ {
				if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set shared c%d-%d", i, j))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, cli)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	reply := invoke(t, c1, "get shared")
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 3*41 }) {
		t.Fatalf("deliveries incomplete: %+v", c.TotalStats())
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	// The read must reflect the last write in the agreed order at all replicas.
	fp := c.Machine(0, 0).Fingerprint()
	if want := "shared=" + string(reply.Result) + ";"; fp != want {
		t.Fatalf("final state %q does not match read %q", fp, reply.Result)
	}
	verifyAll(t, ck, true)
}
