// Durability and crash-recovery for the OAR replica: WAL persistence of the
// definitive order, snapshot-at-epoch-boundary, and the peer catch-up
// protocol a restarted replica runs before re-entering ordering.
//
// The durability contract is scoped to A-delivery: optimistic deliveries are
// revocable by design (their replies carry minority weight until the epoch
// closes), so only the conservative order is logged. With SyncAlways the WAL
// is synced once per closed epoch, before the full-weight replies ship —
// every reply a client could have adopted as definitive is backed by disk.
//
// Recovery has three phases:
//
//  1. Local replay (initDurability, at boot): restore the newest valid
//     snapshot, then replay the WAL suffix. This rebuilds machine state, the
//     definitive position, the epoch, and the at-most-once filter without
//     any network traffic.
//  2. Peer catch-up (recovering): the replica defers all protocol traffic,
//     drops fast-path reads, and probes peers each few ticks with its local
//     position. A peer that is between epochs answers with its boundary
//     state; the first answer at or beyond our position is adopted (snapshot
//     restore and/or log-suffix replay), the deferred frames are replayed,
//     and the replica force-broadcasts PhaseII for the adopted epoch.
//     Mid-phase-2 peers answer without state: their epoch's closing
//     broadcasts may predate our restart, so adopting their epoch could
//     strand us waiting for messages that were already sent.
//  3. Observe mode (observing): during the adopted join epoch the replica
//     participates in phase 2 (its O_delivered proposal is empty) but never
//     orders or Opt-delivers — orderings sent before its restart are lost,
//     so Opt-delivering a later one would assign wrong positions and claim
//     the sequencer's endorsement weight for them; a single such {p,s}
//     reply would look like a majority to a client of a 3-replica group.
//     The epoch-closing decision carries the epoch's full request payloads,
//     so the replica A-delivers the whole epoch at close and leaves observe
//     mode in lockstep with its peers.
package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/proto"
	"repro/internal/wal"
	"repro/internal/wire"
)

// DefaultSnapshotEvery is the snapshot cadence (in closed epochs) when
// ServerConfig.SnapshotEvery is zero.
const DefaultSnapshotEvery = 8

// recoveryProbeTicks is how many ticks a recovering replica waits between
// catch-up probes.
const recoveryProbeTicks = 4

// maxRecoveryBuffer bounds the deferred-frame buffer of a recovering
// replica; beyond it, further protocol frames are dropped (the closing
// consensus re-delivers what matters).
const maxRecoveryBuffer = 1 << 14

// deferredFrame is one protocol frame a recovering replica set aside, to be
// replayed through dispatch after adoption.
type deferredFrame struct {
	from proto.NodeID
	kind proto.Kind
	body []byte // owned copy
}

// initDurability opens the WAL (when configured), replays the local
// snapshot+WAL into the machine, and decides whether the replica boots into
// recovery mode. Called from NewServer, before the event loop starts.
func (s *Server) initDurability() error {
	s.snapEvery = s.cfg.SnapshotEvery
	if s.snapEvery == 0 {
		s.snapEvery = DefaultSnapshotEvery
	}
	if s.cfg.WALDir != "" {
		// The log is opened SyncNever: the replica syncs explicitly, once
		// per closed epoch, when the policy is SyncAlways.
		log, err := wal.Open(wal.Options{Dir: s.cfg.WALDir, Sync: wal.SyncNever})
		if err != nil {
			return fmt.Errorf("core: open wal: %w", err)
		}
		s.log = log
		snap, ok, err := wal.LoadSnapshot(s.cfg.WALDir)
		if err != nil {
			return fmt.Errorf("core: load snapshot: %w", err)
		}
		from := log.Start()
		if ok {
			blob, err := backend.DecodeSnapshotBlob(snap.Data)
			if err != nil {
				return fmt.Errorf("core: snapshot %d: %w", snap.Pos, err)
			}
			if err := s.restoreBlob(blob, snap.Data); err != nil {
				return fmt.Errorf("core: snapshot %d: %w", snap.Pos, err)
			}
			from = snap.Pos
		}
		err = log.Replay(from, func(_ uint64, typ wal.RecordType, payload []byte) error {
			switch typ {
			case wal.RecordCommand:
				req, err := decodeWALCommand(payload)
				if err != nil {
					return err
				}
				s.applyDefinitive(req)
			case wal.RecordEpoch:
				if len(payload) != 8 {
					return fmt.Errorf("bad epoch marker length %d", len(payload))
				}
				s.epoch = binary.LittleEndian.Uint64(payload) + 1
				s.ds.Epoch = s.epoch
			}
			return nil // RecordConfig markers are forward-compat; skip
		})
		if err != nil {
			return fmt.Errorf("core: wal replay: %w", err)
		}
	}
	// Any non-empty local history — and any explicit restart — must go
	// through peer catch-up before rejoining: the group has moved on, and a
	// replica that rejoins at a stale epoch would stall waiting for closing
	// messages that were sent before its boot. A single-replica group has no
	// peers (and no concurrent history to miss): its local replay alone is
	// the recovery.
	recovering := s.cfg.Recovering || s.pos > 0 || s.epoch > 0
	if recovering {
		if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
			rt.Restarted(s.cfg.ID)
		}
	}
	if recovering && s.n > 1 {
		s.recovering = true
		s.catchupTick = recoveryProbeTicks // first tick probes immediately
	} else if recovering {
		s.statRecoveries.Add(1)
		if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
			rt.Recovered(s.cfg.ID, s.epoch, s.pos)
		}
	}
	return nil
}

// restoreBlob installs a decoded snapshot: machine image, definitive
// position, epoch, the at-most-once filter, and the catch-up base state.
// encoded is the blob's wire form, retained (owned) for serving catch-up.
func (s *Server) restoreBlob(blob backend.SnapshotBlob, encoded []byte) error {
	d, ok := s.cfg.Machine.(app.Durable)
	if !ok {
		return fmt.Errorf("machine %T does not implement app.Durable", s.cfg.Machine)
	}
	if err := d.Restore(blob.Image); err != nil {
		return err
	}
	s.pos = blob.Pos
	s.epoch = blob.Epoch
	s.aDelivered = make(map[proto.RequestID]struct{}, len(blob.Delivered))
	for _, id := range blob.Delivered {
		s.aDelivered[id] = struct{}{}
	}
	s.ds.SnapBlob = append([]byte(nil), encoded...)
	s.ds.SnapPos = blob.Pos
	s.ds.Tail = s.ds.Tail[:0]
	s.ds.Pos = blob.Pos
	s.ds.Epoch = blob.Epoch
	return nil
}

// applyDefinitive applies one already-definitive command without the
// optimistic bookkeeping: machine, position, at-most-once filter, catch-up
// tail. Used by WAL replay and catch-up adoption — never on the live path,
// where applyDecision owns delivery.
func (s *Server) applyDefinitive(req proto.Request) {
	s.cfg.Machine.Apply(req.Cmd)
	s.pos++
	s.aDelivered[req.ID] = struct{}{}
	s.ds.Append(req)
}

// encodeWALCommand / decodeWALCommand frame a request as a RecordCommand
// payload (the canonical request body encoding).
func encodeWALCommand(dst []byte, req proto.Request) []byte {
	w := wire.Wrap(dst)
	req.Encode(&w)
	return w.Bytes()
}

func decodeWALCommand(payload []byte) (proto.Request, error) {
	r := wire.NewReader(payload)
	req := proto.DecodeRequest(r)
	if err := r.Err(); err != nil {
		return proto.Request{}, fmt.Errorf("decode command record: %w", err)
	}
	return req, nil
}

// walAppend appends one definitive command to the WAL (no-op without one).
// WAL write errors are unrecoverable — the replica's durability contract is
// broken — so they halt the replica like a protocol invariant violation.
func (s *Server) walAppend(req proto.Request) {
	if s.log == nil {
		return
	}
	s.walBuf = encodeWALCommand(s.walBuf[:0], req)
	if _, err := s.log.Append(wal.RecordCommand, s.walBuf); err != nil {
		panic(fmt.Sprintf("oar server %v: wal append: %v", s.cfg.ID, err))
	}
}

// persistEpoch records epoch k's definitive batch — the kept optimistic
// prefix (O_delivered ⊖ Bad, already pruned of Bad) followed by New — in the
// in-memory catch-up tail and the WAL, closes with an epoch marker, and
// syncs when the policy demands it. Runs inside applyDecision, before the
// payload GC and before the round's replies flush, so a synced epoch is on
// disk before any full-weight reply ships.
func (s *Server) persistEpoch(k uint64, newReqs []proto.Request) {
	for _, id := range s.oDelivered {
		req := s.payloads[id]
		s.ds.Append(req)
		s.walAppend(req)
	}
	for _, req := range newReqs {
		s.ds.Append(req)
		s.walAppend(req)
	}
	s.ds.Epoch = k + 1
	if s.log != nil {
		var marker [8]byte
		binary.LittleEndian.PutUint64(marker[:], k)
		if _, err := s.log.Append(wal.RecordEpoch, marker[:]); err != nil {
			panic(fmt.Sprintf("oar server %v: wal append: %v", s.cfg.ID, err))
		}
		if s.cfg.WALSync == wal.SyncAlways {
			if err := s.log.Sync(); err != nil {
				panic(fmt.Sprintf("oar server %v: wal sync: %v", s.cfg.ID, err))
			}
		}
	}
}

// maybeSnapshot takes a machine snapshot every snapEvery closed epochs.
// Called at the end of applyDecision: the undo-stack is empty there, so the
// machine state is exactly the A-delivered prefix of length s.pos. The
// snapshot resets the in-memory catch-up tail and lets the WAL drop sealed
// segments the snapshot covers.
func (s *Server) maybeSnapshot() {
	if s.snapEvery < 0 {
		return
	}
	s.sinceSnap++
	if s.sinceSnap < s.snapEvery {
		return
	}
	d, ok := s.cfg.Machine.(app.Durable)
	if !ok {
		return
	}
	img, err := d.Snapshot()
	if err != nil {
		return // keep the full tail; snapshotting is an optimization
	}
	s.sinceSnap = 0
	ids := make([]proto.RequestID, 0, len(s.aDelivered))
	for id := range s.aDelivered {
		ids = append(ids, id)
	}
	blob := backend.EncodeSnapshotBlob(backend.SnapshotBlob{
		Epoch:     s.epoch,
		Pos:       s.pos,
		Delivered: ids,
		Image:     img,
	})
	s.ds.SetSnapshot(blob)
	s.persistSnapshot(blob, s.epoch)
}

// persistSnapshot writes an encoded snapshot blob next to the WAL and
// truncates the log prefix it covers. Failures are tolerated: the full log
// remains authoritative.
func (s *Server) persistSnapshot(blob []byte, epoch uint64) {
	if s.log == nil {
		return
	}
	next := s.log.Next()
	if err := wal.SaveSnapshot(s.cfg.WALDir, wal.Snapshot{Pos: next, Epoch: epoch, Data: blob}); err != nil {
		return
	}
	if next > 0 {
		_ = s.log.TruncateThrough(next - 1)
	}
}

// dispatchRecovering is dispatch while catching up: heartbeats keep the
// detector warm, catch-up responses drive adoption, fast-path reads are
// refused (dropped — the live majority answers the client), and protocol
// traffic is deferred for replay after adoption.
func (s *Server) dispatchRecovering(from proto.NodeID, kind proto.Kind, body []byte, now time.Time) {
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(from, now)
	case proto.KindCatchupResp:
		s.handleCatchupResp(from, body, now)
	case proto.KindCatchupReq:
		// Nothing authoritative to serve; the prober retries elsewhere.
	case proto.KindRead:
		s.statReadRefused.Add(1)
	case proto.KindBatch:
		batch, err := proto.UnmarshalBatch(body)
		if err != nil {
			return
		}
		for _, inner := range batch.Msgs {
			k, g, b, err := proto.Unmarshal(inner)
			if err != nil || g != s.cfg.GroupID {
				continue
			}
			s.dispatchRecovering(from, k, b, now)
		}
	case proto.KindRMcast, proto.KindSeqOrder,
		proto.KindEstimate, proto.KindPropose, proto.KindAck, proto.KindDecide:
		// Defer: the body aliases a pooled frame, so keep an owned copy.
		if len(s.recoveryBuf) < maxRecoveryBuffer {
			s.recoveryBuf = append(s.recoveryBuf, deferredFrame{
				from: from,
				kind: kind,
				body: append([]byte(nil), body...),
			})
		}
	default:
		// Replies and baseline traffic are not for servers; drop.
	}
}

// handleCatchupReq answers a recovering peer's probe. Only a replica between
// epochs answers with state: its DurableState is exactly the definitive
// boundary, and — crucially — every closing broadcast of its current epoch
// is still in the future, so the prober cannot adopt an epoch whose PhaseII
// or Decide it has already missed.
func (s *Server) handleCatchupReq(from proto.NodeID, body []byte) {
	req, err := proto.UnmarshalCatchupReq(body)
	if err != nil {
		return
	}
	resp := proto.CatchupResp{CurEpoch: s.epoch, InPhase2: s.inPhase2, Pos: s.ds.Pos, FirstPos: s.ds.Pos}
	if !s.inPhase2 {
		snap, firstPos, entries := s.ds.Respond(req.HavePos)
		resp.Snap, resp.FirstPos, resp.Entries = snap, firstPos, entries
		if len(entries) > 0 || len(snap) > 0 {
			s.statCatchup.Add(1)
		}
	}
	s.send(from, proto.MarshalCatchupResp(s.cfg.GroupID, resp))
}

// handleCatchupResp adopts a peer's boundary state: validate, restore the
// snapshot (if any), replay the log suffix, persist what was adopted, then
// replay the deferred frames and force an epoch boundary for the join epoch.
func (s *Server) handleCatchupResp(_ proto.NodeID, body []byte, now time.Time) {
	if !s.recovering {
		return
	}
	resp, err := proto.UnmarshalCatchupResp(body)
	if err != nil || resp.InPhase2 {
		return
	}
	if resp.Pos < s.pos {
		return // responder is behind our local replay; keep probing
	}
	// Validate the response's shape before mutating anything.
	useSnap := len(resp.Snap) > 0
	var blob backend.SnapshotBlob
	if useSnap {
		if blob, err = backend.DecodeSnapshotBlob(resp.Snap); err != nil || blob.Pos != resp.FirstPos {
			return
		}
		if blob.Pos <= s.pos {
			return // would rewind our prefix; a suffix-only answer will come
		}
	} else if resp.FirstPos != s.pos {
		return // suffix does not extend our prefix
	}
	if resp.Pos != resp.FirstPos+uint64(len(resp.Entries)) {
		return
	}

	if useSnap {
		if err := s.restoreBlob(blob, resp.Snap); err != nil {
			return
		}
		// Persist the adopted snapshot: a crash from here on re-boots from
		// it instead of from our (shorter) pre-crash history.
		s.persistSnapshot(s.ds.SnapBlob, blob.Epoch)
	}
	for _, e := range resp.Entries {
		s.applyDefinitive(e)
		s.walAppend(e)
	}
	s.epoch = resp.CurEpoch
	s.ds.Epoch = resp.CurEpoch
	if s.log != nil {
		if resp.CurEpoch > 0 {
			var marker [8]byte
			binary.LittleEndian.PutUint64(marker[:], resp.CurEpoch-1)
			if _, err := s.log.Append(wal.RecordEpoch, marker[:]); err != nil {
				panic(fmt.Sprintf("oar server %v: wal append: %v", s.cfg.ID, err))
			}
		}
		if s.cfg.WALSync == wal.SyncAlways {
			if err := s.log.Sync(); err != nil {
				panic(fmt.Sprintf("oar server %v: wal sync: %v", s.cfg.ID, err))
			}
		}
	}

	s.recovering = false
	s.observing = true
	s.observeEpoch = s.epoch
	s.statRecoveries.Add(1)
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Recovered(s.cfg.ID, s.epoch, s.pos)
	}

	// Replay the deferred protocol frames through the normal dispatch: stale
	// epochs drop out, the join epoch's traffic lands in observe mode, and a
	// deferred Decide for the join epoch is stashed until phase 2 starts.
	buf := s.recoveryBuf
	s.recoveryBuf = nil
	for _, f := range buf {
		s.dispatch(f.from, f.kind, f.body, now)
	}

	// Force an epoch boundary: observe mode ends when the join epoch closes,
	// and this guarantees it closes even on an otherwise idle group.
	s.broadcastPhaseII()
}
