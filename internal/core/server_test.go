package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/rmcast"
)

const testTimeout = 10 * time.Second

func mustCluster(t *testing.T, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func invoke(t *testing.T, cli cluster.Invoker, cmd string) proto.Reply {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	reply, err := cli.Invoke(ctx, []byte(cmd))
	if err != nil {
		t.Fatalf("invoke %q: %v", cmd, err)
	}
	return reply
}

func verifyAll(t *testing.T, ck *check.Checker, liveness bool) {
	t.Helper()
	for _, v := range ck.Verify() {
		t.Error(v)
	}
	if liveness {
		for _, v := range ck.VerifyLiveness() {
			t.Error(v)
		}
	}
}

// fingerprintsConverge polls until all listed replicas report the same
// machine fingerprint.
func fingerprintsConverge(t *testing.T, c *cluster.Cluster, replicas []int) {
	t.Helper()
	ok := cluster.WaitUntil(testTimeout, func() bool {
		ref := c.Machine(0, replicas[0]).Fingerprint()
		for _, i := range replicas[1:] {
			if c.Machine(0, i).Fingerprint() != ref {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, i := range replicas {
			t.Logf("p%d: %q", i, c.Machine(0, i).Fingerprint())
		}
		t.Fatal("replica states did not converge")
	}
}

// TestFailureFreeSequentialReplies reproduces the Figure 2 run: no failures,
// only phase 1, replies are consecutive positions.
func TestFailureFreeSequentialReplies(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDNever, Tracer: ck})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		reply := invoke(t, cli, fmt.Sprintf("m%d", i))
		if reply.Pos != uint64(i) {
			t.Fatalf("request %d adopted at pos %d", i, reply.Pos)
		}
		if string(reply.Result) != fmt.Sprint(i) {
			t.Fatalf("request %d result %q", i, reply.Result)
		}
	}
	// Figure 2: only phase 1 executes — no epochs close, nothing A-delivered.
	st := c.TotalStats()
	if st.Epochs != 0 || st.ADelivered != 0 || st.OptUndelivered != 0 {
		t.Errorf("failure-free run used the conservative path: %+v", st)
	}
	ok := cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 15 })
	if !ok {
		t.Fatalf("not all replicas delivered: %+v", c.TotalStats())
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

func TestConcurrentClientsKV(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, Machine: "kv", Tracer: ck,
		FDTimeout: 50 * time.Millisecond})
	const clients, perClient = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, cli cluster.Invoker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
			defer cancel()
			for j := 0; j < perClient; j++ {
				if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d-%d v%d", i, j, j))); err != nil {
					errs <- err
					return
				}
			}
		}(i, cli)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := uint64(3 * clients * perClient)
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered >= total }) {
		t.Fatalf("deliveries incomplete: %+v", c.TotalStats())
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	if got := c.Machine(0, 0).Fingerprint(); len(got) == 0 {
		t.Error("kv store empty after 100 sets")
	}
	verifyAll(t, ck, true)
	if ck.Adoptions() != clients*perClient {
		t.Errorf("adoptions = %d, want %d", ck.Adoptions(), clients*perClient)
	}
}

// TestSequencerCrashFailover reproduces the Figure 3 run: the sequencer
// crashes, the survivors suspect it, run the conservative phase and the
// service continues with the next sequencer — no client inconsistency.
func TestSequencerCrashFailover(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		N: 3, Tracer: ck,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// A few requests through the healthy sequencer p0.
	for i := 1; i <= 3; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	// Kill the sequencer.
	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)

	// Requests must keep completing through fail-over.
	for i := 4; i <= 8; i++ {
		reply := invoke(t, cli, fmt.Sprintf("m%d", i))
		if reply.Pos == 0 {
			t.Fatalf("empty reply for m%d", i)
		}
	}
	// The survivors must have run at least one conservative phase.
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 1).Epochs >= 1 && c.ReplicaStats(0, 2).Epochs >= 1
	}) {
		t.Fatal("no epoch closed after sequencer crash")
	}
	fingerprintsConverge(t, c, []int{1, 2})
	verifyAll(t, ck, true)
}

// TestFigure4OptUndeliver reproduces the Opt-undeliver scenario of Figure 4
// (with n=5, the minimal group for the strictly majority-inclusive
// Cnsv-order — see DESIGN.md): a minority partition {p0 (sequencer), p1}
// optimistically delivers m3, m4; the majority completes the conservative
// phase without them and orders m4 first; after the partition heals, p0 and
// p1 must undo both messages, and no client ever adopts an invalidated
// reply.
func TestFigure4OptUndeliver(t *testing.T) {
	ck := check.New(5)
	c := mustCluster(t, cluster.Options{N: 5, FD: cluster.FDOracle, Tracer: ck})
	pmin := []proto.NodeID{0, 1}
	pmaj := []proto.NodeID{2, 3, 4}

	c1, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// Stage A: m1, m2 committed everywhere (positions 1, 2).
	invoke(t, c1, "m1")
	invoke(t, c1, "m2")
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 10 }) {
		t.Fatalf("stage A incomplete: %+v", c.TotalStats())
	}

	// Stage B: partition the minority (and c1) away from the majority.
	c.Net(0).BlockGroups(pmin, pmaj)
	c1ID := proto.ClientID(0)
	c.Net(0).BlockGroups([]proto.NodeID{c1ID}, pmaj)

	// m3 reaches only the minority; p0 orders it, both opt-deliver.
	m3done := make(chan proto.Reply, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		r, err := c1.Invoke(ctx, []byte("m3"))
		if err == nil {
			m3done <- r
		}
	}()
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 0).OptDelivered == 3 && c.ReplicaStats(0, 1).OptDelivered == 3
	}) {
		t.Fatal("minority did not opt-deliver m3")
	}
	// The client must NOT have adopted m3: its weight union {p0, p1} is
	// below the majority of 3 — the heart of the paper's client rule.
	select {
	case r := <-m3done:
		t.Fatalf("client adopted minority-weight reply %+v", r)
	case <-time.After(50 * time.Millisecond):
	}

	// m4 from c2 reaches everyone; the minority opt-delivers it (pos 4),
	// the majority only buffers it. Its adoption requires the conservative
	// phase below, so invoke asynchronously.
	m4done := make(chan proto.Reply, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		r, err := c2.Invoke(ctx, []byte("m4"))
		if err == nil {
			m4done <- r
		}
	}()
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 0).OptDelivered == 4 && c.ReplicaStats(0, 1).OptDelivered == 4
	}) {
		t.Fatal("minority did not opt-deliver m4")
	}

	// Majority suspects the whole minority, runs phase 2 of epoch 0 without
	// them, A-delivers m4 at position 3 and moves to epoch 1.
	for _, i := range []int{2, 3, 4} {
		c.Oracle(0, i).Suspect(0)
		c.Oracle(0, i).Suspect(1)
	}
	if !cluster.WaitUntil(testTimeout, func() bool {
		for _, i := range []int{2, 3, 4} {
			st := c.ReplicaStats(0, i)
			if st.Epochs < 1 || st.ADelivered < 1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("majority did not complete the conservative phase")
	}
	var m4reply proto.Reply
	select {
	case m4reply = <-m4done:
	case <-time.After(testTimeout):
		t.Fatal("m4 never adopted despite majority-side A-delivery")
	}
	if m4reply.Pos != 3 {
		t.Fatalf("m4 adopted at pos %d, want 3 (conservative order)", m4reply.Pos)
	}

	// Heal. The minority must now Opt-undeliver m4 then m3 (reverse order),
	// A-deliver m4 at position 3, and m3 gets re-ordered in epoch 1.
	c.TrustEverywhere(0)
	c.TrustEverywhere(1)
	c.Net(0).Heal()

	var m3reply proto.Reply
	select {
	case m3reply = <-m3done:
	case <-time.After(testTimeout):
		t.Fatal("m3 never adopted after heal")
	}
	if m3reply.Pos != 4 {
		t.Fatalf("m3 adopted at pos %d, want 4", m3reply.Pos)
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return ck.Undeliveries() == 4 }) {
		t.Fatalf("undeliveries = %d, want 4 (m4 and m3 at both p0 and p1)", ck.Undeliveries())
	}
	// All five replicas converge on the same history: m1 m2 m4 m3.
	if !cluster.WaitUntil(testTimeout, func() bool {
		ref := c.Machine(0, 0).Fingerprint()
		for i := 1; i < 5; i++ {
			if c.Machine(0, i).Fingerprint() != ref {
				return false
			}
		}
		return ref == "m1|m2|m4|m3"
	}) {
		for i := 0; i < 5; i++ {
			t.Logf("p%d: %q", i, c.Machine(0, i).Fingerprint())
		}
		t.Fatal("states did not converge to m1|m2|m4|m3")
	}
	verifyAll(t, ck, true)
}

// TestWrongSuspicionIsHarmless: a false suspicion triggers phase 2 but the
// (alive) sequencer's deliveries survive (its value is in the decision), so
// nothing is undone and clients stay consistent.
func TestWrongSuspicionIsHarmless(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDOracle, Tracer: ck})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")
	invoke(t, cli, "m2")

	// p1 and p2 wrongly suspect the healthy sequencer p0.
	c.Oracle(0, 1).Suspect(0)
	c.Oracle(0, 2).Suspect(0)
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().Epochs >= 3 }) {
		t.Fatalf("phase 2 did not run: %+v", c.TotalStats())
	}
	c.TrustEverywhere(0)

	// Service continues in the next epoch (sequencer p1 now).
	invoke(t, cli, "m3")
	if got := ck.Undeliveries(); got != 0 {
		t.Errorf("wrong suspicion caused %d undeliveries; majority guarantee protects them", got)
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

// TestEpochGC exercises the Section 5.3 Remark: the sequencer forces a
// PhaseII every EpochRequestLimit deliveries, bounding O_delivered.
func TestEpochGC(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDNever, Tracer: ck, EpochRequestLimit: 4})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	// 12 requests with a limit of 4 must have closed at least 2 epochs, and
	// the rotating sequencer must have moved on.
	if !cluster.WaitUntil(testTimeout, func() bool { return c.ReplicaStats(0, 0).Epochs >= 2 }) {
		t.Fatalf("GC epochs did not close: %+v", c.TotalStats())
	}
	if ck.Undeliveries() != 0 {
		t.Errorf("GC phase 2 undid %d deliveries", ck.Undeliveries())
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

func TestLazyRelayFailureFree(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDNever, Tracer: ck, RelayMode: rmcast.Lazy})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 30 }) {
		t.Fatalf("lazy mode lost deliveries: %+v", c.TotalStats())
	}
	fingerprintsConverge(t, c, []int{0, 1, 2})
	verifyAll(t, ck, true)
}

func TestBankConsistencyUnderFailover(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		N: 3, Machine: "bank", Tracer: ck,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "open a")
	invoke(t, cli, "open b")
	invoke(t, cli, "deposit a 100")

	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)

	for i := 0; i < 5; i++ {
		invoke(t, cli, "transfer a b 10")
	}
	if got := invoke(t, cli, "balance a"); string(got.Result) != "50" {
		t.Errorf("balance a = %q, want 50", got.Result)
	}
	if got := invoke(t, cli, "balance b"); string(got.Result) != "50" {
		t.Errorf("balance b = %q, want 50", got.Result)
	}
	fingerprintsConverge(t, c, []int{1, 2})
	verifyAll(t, ck, true)
}

func TestClientContextCancelled(t *testing.T) {
	c := mustCluster(t, cluster.Options{N: 3, FD: cluster.FDNever})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cli.Invoke(ctx, []byte("m")); err == nil {
		t.Fatal("cancelled invoke succeeded")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := core.NewServer(core.ServerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := core.NewServer(core.ServerConfig{ID: 9, Group: proto.Group(3)}); err == nil {
		t.Error("non-member server accepted")
	}
	if _, err := core.NewClient(core.ClientConfig{}); err == nil {
		t.Error("empty client config accepted")
	}
}

// TestManyReplicaSizes runs a failure-free smoke workload at several group
// sizes, checking latency-path correctness scales with n.
func TestManyReplicaSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			ck := check.New(n)
			c := mustCluster(t, cluster.Options{N: n, FD: cluster.FDNever, Tracer: ck})
			cli, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 5; i++ {
				reply := invoke(t, cli, fmt.Sprintf("m%d", i))
				if reply.Pos != uint64(i) {
					t.Fatalf("pos %d for request %d", reply.Pos, i)
				}
			}
			verifyAll(t, ck, false)
		})
	}
}
