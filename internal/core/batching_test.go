package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
)

// TestBatchingModesEquivalent runs the same workload under the batching
// layer's configurations — disabled (the pre-batching wire behavior),
// adaptive, windowed, self-tuned, and self-tuned with the pipelined replica
// loop — and requires identical client-visible semantics: consecutive
// positions, correct results, and a clean trace-checker verdict.
func TestBatchingModesEquivalent(t *testing.T) {
	modes := []struct {
		name        string
		batchWindow time.Duration
		maxBatch    int
		autoTune    bool
		pipeline    bool
	}{
		{name: "disabled", batchWindow: -1, maxBatch: 1},
		{name: "adaptive", batchWindow: 0, maxBatch: 0},
		{name: "windowed", batchWindow: 2 * time.Millisecond, maxBatch: 4},
		{name: "autotune", batchWindow: 0, maxBatch: 0, autoTune: true},
		{name: "pipeline", batchWindow: 0, maxBatch: 0, pipeline: true},
		{name: "autotune+pipeline", batchWindow: 0, maxBatch: 0, autoTune: true, pipeline: true},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			ck := check.New(3)
			c := mustCluster(t, cluster.Options{
				N: 3, FD: cluster.FDNever, Tracer: ck,
				BatchWindow: m.batchWindow, MaxBatch: m.maxBatch,
				AutoTune: m.autoTune, Pipeline: m.pipeline,
			})
			cli, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 8; i++ {
				reply := invoke(t, cli, fmt.Sprintf("m%d", i))
				if reply.Pos != uint64(i) {
					t.Fatalf("request %d adopted at pos %d", i, reply.Pos)
				}
				if string(reply.Result) != fmt.Sprint(i) {
					t.Fatalf("request %d result %q", i, reply.Result)
				}
			}
			ok := cluster.WaitUntil(testTimeout, func() bool {
				return c.TotalStats().OptDelivered == 24
			})
			if !ok {
				t.Fatalf("not all replicas delivered: %+v", c.TotalStats())
			}
			fingerprintsConverge(t, c, []int{0, 1, 2})
			verifyAll(t, ck, true)
		})
	}
}
