package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/proto"
)

// readClient is the fast-path surface a cluster client exposes when its
// backend supports zero-ordering reads.
type readClient interface {
	cluster.Invoker
	backend.ReadInvoker
}

// TestReadFastPathHappyPath: a read after an adopted write is answered
// without any ordering work — deliveries don't move — at a position at or
// beyond the write, with the result the write installed.
func TestReadFastPathHappyPath(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{N: 3, Machine: "kv", FD: cluster.FDNever, Tracer: ck})

	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := cli.(readClient)
	if !ok {
		t.Fatal("cluster client does not expose the read fast path")
	}
	w := invoke(t, cli, "set a 1")

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	before := c.TotalStats().Delivered
	r, err := rc.InvokeRead(ctx, []byte("get a"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(r.Result) != "1" {
		t.Fatalf("read %q, want %q", r.Result, "1")
	}
	if r.Pos < w.Pos {
		t.Fatalf("read adopted at pos %d below the write's pos %d", r.Pos, w.Pos)
	}
	if after := c.TotalStats().Delivered; after != before {
		t.Fatalf("read moved the delivery count %d -> %d: it entered the ordered path", before, after)
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().ReadsServed == 3 }) {
		t.Fatalf("reads served = %d, want 3 (one per replica)", c.TotalStats().ReadsServed)
	}
	if got := c.TotalStats().ReadFallbacks; got != 0 {
		t.Fatalf("read fallbacks = %d, want 0", got)
	}
	if ck.ReadAdoptions() != 1 {
		t.Fatalf("checker saw %d read adoptions, want 1", ck.ReadAdoptions())
	}
	verifyAll(t, ck, true)
}

// TestReadNeverAdoptsDoomedPrefix replays the Figure 4 rollback with a
// fast-path read in flight against the minority's optimistic prefix: the
// read observes state ("set c" applied) that the minority later
// Opt-undelivers. The client's majority rule must refuse the adoption — the
// minority's union weight never reaches 3 of 5 — and the read must complete
// through the ordered fallback after the heal instead. This is the
// read-path analog of the m3 write-adoption refusal, checked end to end by
// the trace checker's read-consistency and read-monotonicity propositions.
func TestReadNeverAdoptsDoomedPrefix(t *testing.T) {
	ck := check.New(5)
	c := mustCluster(t, cluster.Options{N: 5, Machine: "kv", FD: cluster.FDOracle, Tracer: ck})
	pmin := []proto.NodeID{0, 1}
	pmaj := []proto.NodeID{2, 3, 4}

	c1, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := c1.(readClient)
	if !ok {
		t.Fatal("cluster client does not expose the read fast path")
	}
	c2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// Stage A: two writes committed everywhere (positions 1, 2).
	invoke(t, c1, "set a 1")
	invoke(t, c1, "set b 2")
	if !cluster.WaitUntil(testTimeout, func() bool { return c.TotalStats().OptDelivered == 10 }) {
		t.Fatalf("stage A incomplete: %+v", c.TotalStats())
	}

	// Stage B: partition the minority {p0 (sequencer), p1} and c1 away.
	c.Net(0).BlockGroups(pmin, pmaj)
	c1ID := proto.ClientID(0)
	c.Net(0).BlockGroups([]proto.NodeID{c1ID}, pmaj)

	// "set c 3" reaches only the minority, which opt-delivers it at pos 3 —
	// the prefix that is doomed to roll back.
	setCdone := make(chan proto.Reply, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		if r, err := c1.Invoke(ctx, []byte("set c 3")); err == nil {
			setCdone <- r
		}
	}()
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 0).OptDelivered == 3 && c.ReplicaStats(0, 1).OptDelivered == 3
	}) {
		t.Fatal("minority did not opt-deliver set c")
	}

	// The read in flight during the rollback window: both minority replicas
	// answer "get c" inline from the doomed prefix (epoch 0, pos 3, result
	// "3"), but their union weight {p0, p1} is 2 < 3 — the read must hang
	// unadopted exactly like the m3 write, then fall back to the ordered
	// path, which the partition also blocks until the heal.
	readDone := make(chan proto.Reply, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		if r, err := rc.InvokeRead(ctx, []byte("get c")); err == nil {
			readDone <- r
		}
	}()
	select {
	case r := <-readDone:
		t.Fatalf("client adopted a minority-weight read %+v from the doomed prefix", r)
	case <-time.After(100 * time.Millisecond): // beyond the fallback timeout
	}

	// "set d 4" from c2 reaches everyone; the minority opt-delivers it at
	// pos 4, the majority buffers it for the conservative phase.
	setDdone := make(chan proto.Reply, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		if r, err := c2.Invoke(ctx, []byte("set d 4")); err == nil {
			setDdone <- r
		}
	}()
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 0).OptDelivered == 4 && c.ReplicaStats(0, 1).OptDelivered == 4
	}) {
		t.Fatal("minority did not opt-deliver set d")
	}

	// The majority suspects the minority, closes epoch 0 without it and
	// A-delivers "set d" at pos 3.
	for _, i := range []int{2, 3, 4} {
		c.Oracle(0, i).Suspect(0)
		c.Oracle(0, i).Suspect(1)
	}
	if !cluster.WaitUntil(testTimeout, func() bool {
		for _, i := range []int{2, 3, 4} {
			st := c.ReplicaStats(0, i)
			if st.Epochs < 1 || st.ADelivered < 1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("majority did not complete the conservative phase")
	}

	// Heal; the minority rolls back {set d, set c} and converges; the
	// pending write and the fallen-back read both complete.
	c.TrustEverywhere(0)
	c.TrustEverywhere(1)
	c.Net(0).Heal()

	var read proto.Reply
	select {
	case read = <-readDone:
	case <-time.After(testTimeout):
		t.Fatal("read never completed after the heal")
	}
	select {
	case <-setCdone:
	case <-time.After(testTimeout):
		t.Fatal("set c never adopted after the heal")
	}
	select {
	case <-setDdone:
	case <-time.After(testTimeout):
		t.Fatal("set d never adopted after the heal")
	}
	// At least set c and set d roll back at both minority replicas; the
	// fallen-back ordered read may be opt-delivered there too and add its
	// own undos, so the exact count is timing-dependent (unlike the pure
	// Figure 4 script).
	if !cluster.WaitUntil(testTimeout, func() bool { return ck.Undeliveries() >= 4 }) {
		t.Fatalf("undeliveries = %d, want >= 4", ck.Undeliveries())
	}
	// The fallback read is an ordered adoption: no fast-path read adoption
	// may exist in this trace, and the result must reflect the definitive
	// order at the read's position, never the rolled-back prefix's "3" at a
	// pre-rollback position.
	if ck.ReadAdoptions() != 0 {
		t.Fatalf("checker saw %d fast-path read adoptions, want 0", ck.ReadAdoptions())
	}
	if read.Pos <= 2 {
		t.Fatalf("ordered read adopted at pos %d, inside the pre-partition prefix", read.Pos)
	}
	verifyAll(t, ck, true)
}
