package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/fd"
	"repro/internal/proto"
	"repro/internal/transport"
)

// sinkNode is a transport.Node whose inbound side the test drives directly:
// pushed messages (including pooled frames) flow to the client's Recv loop,
// and outbound sends are discarded.
type sinkNode struct {
	id proto.NodeID
	q  *transport.Queue
}

func newSinkNode(id proto.NodeID) *sinkNode {
	return &sinkNode{id: id, q: transport.NewQueue()}
}

func (s *sinkNode) ID() proto.NodeID                { return s.id }
func (s *sinkNode) Send(proto.NodeID, []byte) error { return nil }
func (s *sinkNode) Recv() <-chan transport.Message  { return s.q.Out() }
func (s *sinkNode) Close() error                    { s.q.Close(); return nil }

// issueTracer signals once the client has registered its request, so the
// test can deliver replies only after the call is pending.
type issueTracer struct {
	Tracer
	issued chan struct{}
}

func (t *issueTracer) Issue(proto.NodeID, proto.RequestID, []byte) {
	select {
	case t.issued <- struct{}{}:
	default:
	}
}

// TestPooledReplyBufferReuseSafety proves the copy-on-retain ownership rule
// on the client's zero-copy reply path: a reply decoded from a pooled frame
// is retained across frames (the Figure 5 quorum accumulates from several
// servers' messages) and eventually handed to the invoking goroutine — both
// after the frame it aliased has been released and recycled. The test
// delivers the quorum in two pooled frames, scribbles over the first frame's
// buffer once the protocol has consumed it (simulating the pool handing the
// buffer to an unrelated message), and asserts the adopted reply still
// carries the original result. Run under -race, a retained alias into the
// recycled buffer would also be reported as a data race.
func TestPooledReplyBufferReuseSafety(t *testing.T) {
	node := newSinkNode(proto.ClientID(0))
	group := proto.Group(3)
	tracer := &issueTracer{Tracer: NopTracer(), issued: make(chan struct{}, 1)}
	cli, err := NewClient(ClientConfig{ID: proto.ClientID(0), Group: group, Node: node, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	cli.Start()
	defer cli.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	type result struct {
		reply proto.Reply
		err   error
	}
	resCh := make(chan result, 1)
	go func() {
		r, err := cli.Invoke(ctx, []byte("cmd"))
		resCh <- result{r, err}
	}()
	select {
	case <-tracer.issued: // the call is registered; replies will be accepted
	case <-ctx.Done():
		t.Fatal("invoke never issued")
	}

	// The Invoke above is the client's first: Seq 0.
	id := proto.RequestID{Group: 0, Client: proto.ClientID(0), Seq: 0}
	wantResult := []byte("retained-result")

	mkFrame := func(reply proto.Reply) *transport.Frame {
		f := transport.GetFrame()
		f.Buf = proto.AppendReply(f.Buf, reply)
		return f
	}

	// Frame 1: a reply from p1 with weight {p1} — below the majority of 2,
	// so the client must retain it while waiting for more weight.
	f1 := mkFrame(proto.Reply{
		Req: id, From: 1, Epoch: 0, Weight: proto.WeightOf(1), Pos: 7,
		Result: wantResult,
	})
	f1buf := f1.Buf
	node.q.Push(transport.OwnedMessage(1, f1.Buf, f1))

	// Frame 2: a reply from p0 completing the quorum ({p0} ∪ {p1} is a
	// majority of 3). Equal individual weights: the client adopts the first
	// accumulated reply — the one decoded from frame 1.
	f2 := mkFrame(proto.Reply{
		Req: id, From: 0, Epoch: 0, Weight: proto.WeightOf(0), Pos: 7,
		Result: []byte("other-result"),
	})
	node.q.Push(transport.OwnedMessage(0, f2.Buf, f2))

	var got result
	select {
	case got = <-resCh:
	case <-ctx.Done():
		t.Fatal("invoke did not complete")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}

	// The client has released frame 1 (it handled frame 2 afterwards, and
	// frames are released in handling order). Simulate the pool recycling
	// the buffer for an unrelated message: overwrite every byte. If the
	// adopted reply's Result still aliased the frame, the assertion below
	// would observe the scribble — and -race would flag the write racing
	// the retained read.
	for i := range f1buf {
		f1buf[i] = 0xAA
	}

	if got.reply.From != 1 {
		t.Fatalf("adopted reply from %v, want p1 (the retained frame-1 reply)", got.reply.From)
	}
	if !bytes.Equal(got.reply.Result, wantResult) {
		t.Fatalf("adopted result %q corrupted by buffer reuse, want %q", got.reply.Result, wantResult)
	}
	if got.reply.Pos != 7 {
		t.Fatalf("adopted pos %d, want 7", got.reply.Pos)
	}
}

// TestPooledRequestBufferReuseSafety is the server-side twin: a request
// decoded zero-copy from a pooled SeqOrder frame is retained in the
// replica's payloads map (Task 0 piggyback) long after the frame is
// recycled. The test delivers an ordering message for a future epoch — the
// path that buffers both the requests and the order itself — then scribbles
// the frame and verifies the server's later re-materialization of the
// request (via the consensus input it would propose) is intact. It drives
// the server's handler directly, single-threaded, as the event loop would.
func TestPooledRequestBufferReuseSafety(t *testing.T) {
	node := newSinkNode(proto.NodeID(0))
	defer node.Close()
	srv, err := NewServer(ServerConfig{
		ID:       proto.NodeID(0),
		Group:    proto.Group(3),
		Node:     node,
		Machine:  app.NewRecorder(),
		Detector: fd.Never{},
	})
	if err != nil {
		t.Fatal(err)
	}

	want := []byte("command-body-kept-across-reuse")
	req := proto.Request{
		ID:  proto.RequestID{Group: 0, Client: proto.ClientID(3), Seq: 11},
		Cmd: want,
	}
	// An order for epoch 2 while the server is at epoch 0: the lagging path
	// buffers the order and the request payloads — both must survive the
	// frame's recycling.
	f := transport.GetFrame()
	f.Buf = proto.AppendSeqOrder(f.Buf, 0, proto.SeqOrder{Epoch: 2, Reqs: []proto.Request{req}})
	fbuf := f.Buf
	m := transport.OwnedMessage(proto.NodeID(1), f.Buf, f)
	srv.handleMessage(m, time.Now())
	m.Release()

	// Recycle simulation: the frame's bytes now belong to someone else.
	for i := range fbuf {
		fbuf[i] = 0x55
	}

	stored, ok := srv.payloads[req.ID]
	if !ok {
		t.Fatal("request not buffered by the future-epoch ordering path")
	}
	if !bytes.Equal(stored.Cmd, want) {
		t.Fatalf("buffered command %q corrupted by buffer reuse, want %q", stored.Cmd, want)
	}
	buffered := srv.seqOrderBuf[2]
	if len(buffered) != 1 || len(buffered[0].Reqs) != 1 {
		t.Fatalf("future-epoch order not buffered: %+v", buffered)
	}
	if !bytes.Equal(buffered[0].Reqs[0].Cmd, want) {
		t.Fatalf("buffered order command %q corrupted by buffer reuse, want %q", buffered[0].Reqs[0].Cmd, want)
	}
}
