package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/memnet"
	"repro/internal/proto"
)

// TestServerDropsForeignGroupTraffic: a replica of group 1 must discard
// well-formed protocol messages tagged with group 0 before they touch any
// protocol state, while identical traffic tagged with its own group is
// processed normally.
func TestServerDropsForeignGroupTraffic(t *testing.T) {
	net := memnet.New(memnet.Options{})
	defer net.Close()
	machine, err := app.New("recorder")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(core.ServerConfig{
		ID:                0,
		Group:             proto.Group(1),
		GroupID:           1,
		Node:              net.Node(0),
		Machine:           machine,
		Detector:          fd.Never{},
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Run(ctx) }()

	evil := net.Node(proto.ClientID(0))
	order := func(g proto.GroupID, seq uint64) []byte {
		req := proto.Request{ID: proto.RequestID{Group: g, Client: proto.ClientID(0), Seq: seq}, Cmd: []byte("x")}
		return proto.MarshalSeqOrder(g, proto.SeqOrder{Epoch: 0, Reqs: []proto.Request{req}})
	}
	// Foreign (group-0) ordering message: dropped, not delivered.
	if err := evil.Send(0, order(0, 1)); err != nil {
		t.Fatal(err)
	}
	if !cluster.WaitUntil(5*time.Second, func() bool { return srv.Stats().ForeignDropped >= 1 }) {
		t.Fatalf("foreign message never counted as dropped: %+v", srv.Stats())
	}
	if got := srv.Stats().OptDelivered; got != 0 {
		t.Fatalf("foreign-group request was delivered: OptDelivered=%d", got)
	}
	// The same message tagged with the server's own group is processed.
	if err := evil.Send(0, order(1, 2)); err != nil {
		t.Fatal(err)
	}
	if !cluster.WaitUntil(5*time.Second, func() bool { return srv.Stats().OptDelivered == 1 }) {
		t.Fatalf("own-group request never delivered: %+v", srv.Stats())
	}
}
