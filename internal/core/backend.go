package core

import (
	"repro/internal/backend"
)

// BackendName is the registry name of the OAR protocol.
const BackendName = "oar"

func init() { backend.Register(oarBackend{}) }

// oarBackend adapts the OAR protocol (Server/Client) to the protocol-
// agnostic backend contract: the one place the generic replica runtime's
// knob set is mapped onto this protocol's configuration.
type oarBackend struct{}

var _ backend.Backend = oarBackend{}

func (oarBackend) Name() string { return BackendName }

func (oarBackend) NewReplica(cfg backend.ReplicaConfig) (backend.Replica, error) {
	srv, err := NewServer(ServerConfig{
		ID:                cfg.ID,
		Group:             cfg.Group,
		GroupID:           cfg.GroupID,
		Node:              cfg.Node,
		Machine:           cfg.Machine,
		Detector:          cfg.Detector,
		RelayMode:         cfg.RelayMode,
		TickInterval:      cfg.TickInterval,
		HeartbeatInterval: cfg.HeartbeatInterval,
		EpochRequestLimit: cfg.EpochRequestLimit,
		BatchWindow:       cfg.BatchWindow,
		MaxBatch:          cfg.MaxBatch,
		AutoTune:          cfg.AutoTune,
		Pipeline:          cfg.Pipeline,
		PipelineDepth:     cfg.PipelineDepth,
		Tracer:            cfg.Tracer,
		WALDir:            cfg.WALDir,
		WALSync:           cfg.WALSync,
		SnapshotEvery:     cfg.SnapshotEvery,
		Recovering:        cfg.Recovering,
		Incarnation:       cfg.Incarnation,
	})
	if err != nil {
		return nil, err
	}
	return oarReplica{srv}, nil
}

func (oarBackend) NewInvoker(cfg backend.InvokerConfig) (backend.Invoker, error) {
	cli, err := NewClient(ClientConfig{
		ID:        cfg.ID,
		Group:     cfg.Group,
		GroupID:   cfg.GroupID,
		Node:      cfg.Node,
		Tracer:    cfg.Tracer,
		Unbatched: cfg.Unbatched,
		AutoTune:  cfg.AutoTune,
	})
	if err != nil {
		return nil, err
	}
	cli.Start()
	return cli, nil
}

// oarReplica wraps *Server so the protocol-specific counter set maps onto
// the shared one. The embedded server keeps its full surface (Footprint,
// Epoch) reachable through a type assertion where a test needs it.
type oarReplica struct{ *Server }

var _ backend.Replica = oarReplica{}

func (r oarReplica) Stats() backend.Stats {
	s := r.Server.Stats()
	return backend.Stats{
		Delivered:      s.Delivered(),
		OptDelivered:   s.OptDelivered,
		OptUndelivered: s.OptUndelivered,
		ADelivered:     s.ADelivered,
		Epochs:         s.Epochs,
		SeqOrdersSent:  s.SeqOrdersSent,
		ForeignDropped: s.ForeignDropped,
		ReadsServed:    s.ReadsServed,
		ReadFallbacks:  s.ReadFallbacks,
		BatchFrames:    s.BatchFrames,
		BatchedSends:   s.BatchedMsgs,
		BatchWindowNS:  int64(s.BatchWindow),

		Recoveries:           s.Recoveries,
		CatchupServed:        s.CatchupServed,
		RecoveryRefusedReads: s.RecoveryRefusedReads,
	}
}
