package core_test

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
)

// runFigure4WithTracer runs the Figure 4 scenario with an extra tracer
// attached (exercising the cmd/oar-sim integration path).
func runFigure4WithTracer(extra core.Tracer) (experiments.Outcome, error) {
	return experiments.RunFigure4(cluster.OAR, extra)
}
