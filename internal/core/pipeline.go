package core

import (
	"context"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// The pipelined event loop splits a replica's work across three goroutines
// connected by SPSC rings, so one ordering group can saturate more than one
// core while the protocol state machine stays strictly single-writer:
//
//	decode (Run goroutine)        order (protocol goroutine)     send
//	 inbox recv, envelope parse,   Figure 6 state machine,        Batcher owner:
//	 garbage + foreign-group  ──▶  ordering flush, footprint ──▶  envelope
//	 drop, tick admission    ring                           ring  assembly,
//	                          AB                             BC   transport write
//
// Ownership is linear: an inbound frame is owned by decode until its
// pipeItem is pushed onto ring AB, then by order, which releases it after
// dispatch. Outbound payloads are copied into pooled frames by the protocol
// goroutine (send/sendReply) and owned by the sender stage from the ring BC
// push until Batcher.Add has copied them into an envelope. Shutdown is
// linear too: decode closes AB, order drains it, flushes, and closes BC,
// the sender drains and force-ships the batcher — no cycles, so no
// shutdown deadlock.
//
// Rounds: the order stage treats each wakeup's drained backlog as one
// round (mirroring transport.DrainLinger in the single-goroutine loop) and
// emits a flush sentinel down ring BC at each round boundary, so the sender
// flushes exactly as often as the legacy loop does — and ticks flowing
// through both rings guarantee a held (AutoTune) envelope is never stranded
// longer than a tick.
type pipeline struct {
	ab *transport.Ring[pipeItem]
	bc *transport.Ring[sendItem]
}

// pipeItem is one unit of work handed from the decode stage to the protocol
// goroutine: an envelope-validated inbound message, or a tick.
type pipeItem struct {
	m    transport.Message // owned by the order stage; zero for ticks
	kind proto.Kind
	body []byte // envelope body, aliasing m's frame
	now  time.Time
	tick bool
}

// sendItem is one unit handed from the protocol goroutine to the sender: a
// pooled frame bound for a destination, or a round-boundary flush sentinel.
type sendItem struct {
	to    proto.NodeID
	f     *transport.Frame // owned by the sender stage; nil for flushes
	flush bool
}

// sendFrame hands an outbound frame to the sender stage. If the ring is
// already closed (shutdown), ownership stays here and the frame is recycled.
func (p *pipeline) sendFrame(to proto.NodeID, f *transport.Frame) {
	// Released by the sender stage after Batcher.Add copies the payload
	// into an envelope: //oar:frame-handoff (release site: pipeSend).
	if !p.bc.Push(sendItem{to: to, f: f}) {
		f.Release()
	}
}

// runPipelined is Run's staged variant: this goroutine becomes the decode
// stage and the other two stages are spawned here and joined before return.
func (s *Server) runPipelined(ctx context.Context) error {
	p := &pipeline{
		ab: transport.NewRing[pipeItem](s.cfg.PipelineDepth),
		bc: transport.NewRing[sendItem](s.cfg.PipelineDepth),
	}
	s.pipe = p // before the stages start, so their sends route through it

	orderDone := make(chan struct{})
	sendDone := make(chan struct{})
	go func() {
		defer close(orderDone)
		s.pipeOrder(p)
	}()
	go func() {
		defer close(sendDone)
		s.pipeSend(p)
	}()

	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	inbox := s.cfg.Node.Recv()
	var err error
loop:
	for {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break loop
		case m, ok := <-inbox:
			if !ok {
				break loop
			}
			now := time.Now()
			s.admit(p, m, now)
			// Absorb the backlog that already arrived (the decode-stage half
			// of round formation; the order stage re-forms rounds from ring
			// occupancy on its side).
			if _, open := transport.DrainLinger(inbox, serverFlushSpins, maxDrain-1, func(m transport.Message) {
				s.admit(p, m, now)
			}); !open {
				break loop
			}
		case now := <-ticker.C:
			p.ab.Push(pipeItem{tick: true, now: now})
		}
	}
	p.ab.Close()
	<-orderDone
	<-sendDone
	return err
}

// admit is the decode stage's per-message work: parse the envelope header,
// drop garbage and foreign-group traffic (recycling the frame on the spot),
// and hand everything else to the protocol goroutine.
func (s *Server) admit(p *pipeline, m transport.Message, now time.Time) {
	kind, group, body, err := proto.Unmarshal(m.Payload)
	if err != nil {
		m.Release()
		return // garbage on the wire; drop
	}
	if group != s.cfg.GroupID {
		s.statForeign.Add(1)
		m.Release()
		return
	}
	// Released by the order stage after dispatch; a closed ring (shutdown)
	// keeps ownership here: //oar:frame-handoff (release site: pipeOrder).
	if !p.ab.Push(pipeItem{m: m, kind: kind, body: body, now: now}) {
		m.Release()
	}
}

// pipeOrder is the protocol goroutine: the only writer of Figure 6 state.
// It mirrors the single-goroutine loop's round structure — drain, order
// flush, send flush (as a sentinel down ring BC), footprint publish.
func (s *Server) pipeOrder(p *pipeline) {
	for {
		it, ok := p.ab.Pop()
		if !ok {
			break
		}
		s.handleItem(it)
		for drained := 1; drained < maxDrain; drained++ {
			it, ok := p.ab.TryPop()
			if !ok {
				break
			}
			s.handleItem(it)
		}
		s.flushOrder(time.Now())
		p.bc.Push(sendItem{flush: true})
		s.publishFootprint()
	}
	// Decode stage closed the ring: run one final flush so nothing pending
	// is stranded, then propagate shutdown to the sender.
	s.flushOrder(time.Now())
	p.bc.Push(sendItem{flush: true})
	s.publishFootprint()
	p.bc.Close()
}

func (s *Server) handleItem(it pipeItem) {
	if it.tick {
		s.tick(it.now)
		return
	}
	s.dispatch(it.m.From, it.kind, it.body, it.now)
	it.m.Release()
}

// pipeSend is the sender stage: sole owner of the outbound batcher. It
// copies each frame into its destination's envelope, recycles it, and
// flushes at round boundaries; on shutdown it force-ships whatever a held
// window still buffers.
func (s *Server) pipeSend(p *pipeline) {
	for {
		it, ok := p.bc.Pop()
		if !ok {
			break
		}
		if it.flush {
			s.out.Flush()
			continue
		}
		s.out.Add(it.to, it.f.Buf)
		it.f.Release()
	}
	s.out.Close()
}
