package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
)

// footprint reaches through the protocol-agnostic replica handle to the OAR
// server's bookkeeping gauge.
func footprint(c *cluster.Cluster, i int) core.Footprint {
	return c.Replica(0, i).(interface{ Footprint() core.Footprint }).Footprint()
}

// TestBookkeepingBoundedByEpochGC is the regression test for the unbounded
// per-request state growth: before the fix, rOrder and payloads kept every
// request ever R-delivered, forever. With epoch GC on (EpochRequestLimit),
// everything a replica buffers for a request must be released once the
// request is A-delivered, so the live footprint after a long run stays
// bounded by the in-flight window rather than the run length.
func TestBookkeepingBoundedByEpochGC(t *testing.T) {
	const (
		limit    = 8
		requests = 240
	)
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		N: 3, FD: cluster.FDNever, Tracer: ck,
		EpochRequestLimit: limit,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < requests; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}

	// Every request definitively delivered everywhere, and the live tables
	// drained: nothing is pending and only the tail epoch's requests (not
	// yet forced through phase 2 by the limit) may still be buffered.
	maxLive := 3 * limit
	settled := func() bool {
		for i := 0; i < 3; i++ {
			fp := footprint(c, i)
			if fp.ADelivered < requests-limit || fp.Payloads > maxLive || fp.Pending != 0 {
				return false
			}
		}
		return true
	}
	if !cluster.WaitUntil(testTimeout, settled) {
		for i := 0; i < 3; i++ {
			t.Logf("p%d footprint: %+v", i, footprint(c, i))
		}
		t.Fatal("per-request bookkeeping did not drain after A-delivery")
	}
	for i := 0; i < 3; i++ {
		fp := footprint(c, i)
		if fp.ROrder > maxLive || fp.Payloads > maxLive || fp.ODelivered > maxLive {
			t.Errorf("p%d: live footprint not bounded by the epoch limit: %+v", i, fp)
		}
		if fp.ROrder >= requests/2 {
			t.Errorf("p%d: rOrder grew with the run length: %+v", i, fp)
		}
	}
	verifyAll(t, ck, true)
}
