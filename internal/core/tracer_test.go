package core_test

import (
	"sync"
	"testing"

	"repro/internal/cnsvorder"
	"repro/internal/core"
	"repro/internal/proto"
)

// countingTracer counts events per kind.
type countingTracer struct {
	mu     sync.Mutex
	counts map[string]int
}

func newCountingTracer() *countingTracer {
	return &countingTracer{counts: make(map[string]int)}
}

func (c *countingTracer) bump(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[k]++
}

func (c *countingTracer) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

func (c *countingTracer) Issue(proto.NodeID, proto.RequestID, []byte) { c.bump("issue") }
func (c *countingTracer) OptDeliver(proto.NodeID, uint64, proto.RequestID, uint64, []byte) {
	c.bump("opt")
}
func (c *countingTracer) OptUndeliver(proto.NodeID, uint64, proto.RequestID) { c.bump("undo") }
func (c *countingTracer) ADeliver(proto.NodeID, uint64, proto.RequestID, uint64, []byte) {
	c.bump("a")
}
func (c *countingTracer) EpochClose(proto.NodeID, uint64, cnsvorder.Input, cnsvorder.Result) {
	c.bump("epoch")
}
func (c *countingTracer) Adopt(proto.NodeID, proto.RequestID, proto.Reply) { c.bump("adopt") }
func (c *countingTracer) ReadAdopt(proto.NodeID, proto.RequestID, proto.Reply) {
	c.bump("readadopt")
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := newCountingTracer(), newCountingTracer()
	m := core.MultiTracer(a, nil, b) // nil entries must be skipped

	m.Issue(proto.ClientID(0), proto.RequestID{}, nil)
	m.OptDeliver(0, 0, proto.RequestID{}, 1, nil)
	m.OptUndeliver(0, 0, proto.RequestID{})
	m.ADeliver(0, 0, proto.RequestID{}, 1, nil)
	m.EpochClose(0, 0, cnsvorder.Input{}, cnsvorder.Result{})
	m.Adopt(proto.ClientID(0), proto.RequestID{}, proto.Reply{})
	m.ReadAdopt(proto.ClientID(0), proto.RequestID{}, proto.Reply{})

	for _, tr := range []*countingTracer{a, b} {
		for _, k := range []string{"issue", "opt", "undo", "a", "epoch", "adopt", "readadopt"} {
			if tr.get(k) != 1 {
				t.Errorf("tracer missed event %q: count=%d", k, tr.get(k))
			}
		}
	}
}

func TestNopTracerIsSafe(t *testing.T) {
	n := core.NopTracer()
	n.Issue(0, proto.RequestID{}, nil)
	n.OptDeliver(0, 0, proto.RequestID{}, 0, nil)
	n.OptUndeliver(0, 0, proto.RequestID{})
	n.ADeliver(0, 0, proto.RequestID{}, 0, nil)
	n.EpochClose(0, 0, cnsvorder.Input{}, cnsvorder.Result{})
	n.Adopt(0, proto.RequestID{}, proto.Reply{})
	n.ReadAdopt(0, proto.RequestID{}, proto.Reply{})
}

// TestExtraTracerObservesScenario: the scenario runners accept additional
// tracers (used by cmd/oar-sim); they must see the same events the checker
// sees.
func TestExtraTracerObservesScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run skipped in -short mode")
	}
	// Imported here to avoid a dependency cycle at the package level.
	ct := newCountingTracer()
	out, err := runFigure4WithTracer(ct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Undeliveries != 4 {
		t.Fatalf("undeliveries = %d", out.Undeliveries)
	}
	if ct.get("undo") != 4 {
		t.Errorf("extra tracer saw %d undos, want 4", ct.get("undo"))
	}
	if ct.get("issue") != 4 || ct.get("adopt") != 4 {
		t.Errorf("extra tracer saw %d issues / %d adoptions, want 4 / 4", ct.get("issue"), ct.get("adopt"))
	}
	if ct.get("opt") == 0 || ct.get("a") == 0 || ct.get("epoch") == 0 {
		t.Error("extra tracer missed deliveries or epoch closes")
	}
}
