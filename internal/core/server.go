package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/cnsvorder"
	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/mseq"
	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/transport"
	"repro/internal/tune"
	"repro/internal/wal"
)

// Defaults for ServerConfig. The loop intervals live in backend (they are
// shared by every protocol); DefaultMaxBatch is OAR's own.
const (
	DefaultTickInterval      = backend.DefaultTickInterval
	DefaultHeartbeatInterval = backend.DefaultHeartbeatInterval
	// DefaultMaxBatch is the ordering batch size used when MaxBatch is zero.
	DefaultMaxBatch = 512
	// DefaultPipelineDepth is the per-ring capacity of the pipelined event
	// loop when PipelineDepth is zero.
	DefaultPipelineDepth = 256
)

// maxDrain bounds how many backlogged messages one event-loop round absorbs
// before running the deferred ordering flush, so a flooded replica still
// orders (and heartbeats) regularly.
const maxDrain = 1024

// serverFlushSpins is how many consecutive empty-inbox scheduler yields a
// batching replica tolerates before closing its round (see Run).
const serverFlushSpins = 2

// ServerConfig configures one OAR replica.
type ServerConfig struct {
	// ID is this replica's rank in Π.
	ID proto.NodeID
	// Group is Π. Must contain ID; |Π| ≤ 64.
	Group []proto.NodeID
	// GroupID is the ordering group (shard) this replica belongs to. Every
	// outgoing message is tagged with it and inbound messages tagged with a
	// different group are dropped, so several groups can share a transport
	// without ever mixing their protocol state. Zero is the single-group
	// system.
	GroupID proto.GroupID
	// Node is the replica's transport endpoint.
	Node transport.Node
	// Machine is the deterministic, undoable replicated state machine.
	Machine app.Machine
	// Detector is the ◊S failure detector used to suspect the sequencer and
	// consensus coordinators. Required.
	Detector fd.Detector
	// RelayMode selects the reliable-multicast relay strategy (default Eager).
	RelayMode rmcast.Mode
	// TickInterval drives Task 1a batching, suspicion sampling, heartbeats
	// and consensus timeouts. Default DefaultTickInterval.
	TickInterval time.Duration
	// HeartbeatInterval is the gap between heartbeats to peers. Default
	// DefaultHeartbeatInterval. Set negative to disable heartbeats (e.g.
	// when using an Oracle detector).
	HeartbeatInterval time.Duration
	// EpochRequestLimit, when positive, makes the sequencer R-broadcast a
	// PhaseII after that many optimistic deliveries in one epoch — the
	// garbage-collection mechanism of the Remark in Section 5.3 that bounds
	// the O_delivered sequence.
	EpochRequestLimit int
	// BatchWindow is how long the sequencer may hold pending requests to
	// grow an ordering batch. Zero (the default) is adaptive batching with no
	// added latency: each event-loop round first drains the inbox backlog and
	// then orders everything that arrived in one SeqOrder, so batches form
	// exactly when there is load. A positive window additionally delays
	// ordering until the oldest pending request is that old (or MaxBatch is
	// reached), trading latency for larger batches; its precision is bounded
	// by TickInterval. A negative window disables the batching layer
	// entirely — per-message sends and one ordering round per request, the
	// pre-batching behavior — which is the control in experiment E8.
	BatchWindow time.Duration
	// MaxBatch caps the number of requests per SeqOrder message (larger
	// pending sets are ordered as several messages in one round). Zero means
	// DefaultMaxBatch; 1 reproduces the unbatched one-SeqOrder-per-request
	// behavior.
	MaxBatch int
	// AutoTune replaces the static send-side coalescing with a closed-loop
	// controller (internal/tune): the replica's outbound batcher holds
	// envelopes up to a continuously adjusted window — zero when idle, up to
	// the controller's ceiling when frames ship under-filled — observing
	// every shipped frame's coalescing and hold latency. The ordering-side
	// BatchWindow semantics are unchanged (AutoTune adds exactly one hold
	// point, at the transport). Requires the batching layer (BatchWindow >= 0).
	AutoTune bool
	// Pipeline splits the event loop into decode → order → send stages on
	// separate goroutines connected by SPSC rings, so envelope decoding and
	// reply/ordering marshalling run off the protocol goroutine and one
	// group can use multiple cores. Protocol state stays single-writer. The
	// default single-goroutine loop remains when false. Requires the
	// batching layer (BatchWindow >= 0).
	Pipeline bool
	// PipelineDepth is the capacity of each pipeline ring (default
	// DefaultPipelineDepth).
	PipelineDepth int
	// WALDir enables the write-ahead log: A-delivered commands and epoch
	// markers are persisted there and replayed on the next boot (empty
	// disables durability). WALSync selects the fsync policy: SyncAlways
	// syncs once per closed epoch, before the conservative replies ship, so
	// every fully-acked command is on disk; SyncNever leaves flushing to the
	// OS (crash-recovery then leans on peer catch-up for the tail).
	WALDir  string
	WALSync wal.SyncPolicy
	// SnapshotEvery takes a machine snapshot every that many closed epochs
	// (0 = DefaultSnapshotEvery, negative = never). Snapshots are taken at
	// epoch boundaries — the undo-set is empty there, so the image is a pure
	// A-delivered prefix — and bound both the on-disk WAL and the in-memory
	// catch-up tail. Requires the Machine to implement app.Durable.
	SnapshotEvery int
	// Recovering marks a replica booting after a crash: after replaying its
	// local snapshot+WAL it defers all protocol traffic, refuses fast-path
	// reads, and probes its peers (KindCatchupReq) until it has adopted a
	// peer's definitive boundary state; only then does it re-enter ordering.
	Recovering bool
	// Incarnation counts this replica's boots (0 for the first); restarted
	// replicas claim the reliable-multicast sequence range
	// [Incarnation<<32, ...) so peers' dedup state from the previous
	// incarnation cannot swallow their multicasts.
	Incarnation uint64
	// Tracer observes protocol events (nil disables tracing).
	Tracer Tracer
}

// ServerStats are monotonically increasing protocol counters, readable
// concurrently while the server runs.
type ServerStats struct {
	OptDelivered   uint64 // optimistic deliveries (Fig. 6 line 17)
	OptUndelivered uint64 // undone deliveries (Fig. 6 line 26)
	ADelivered     uint64 // conservative deliveries (Fig. 6 line 28)
	Epochs         uint64 // completed phase-2 rounds
	SeqOrdersSent  uint64 // Task 1a ordering messages sent
	ForeignDropped uint64 // inbound messages dropped for a foreign GroupID

	// Read fast path: reads answered inline from the optimistic prefix
	// (zero ordering messages) and reads that fell back to the ordered path
	// because the machine has no Reader or refused the command.
	ReadsServed   uint64
	ReadFallbacks uint64

	// Recovery counters: completed crash-recoveries, catch-up probes this
	// replica answered with state, and fast-path reads refused (dropped)
	// because the replica had not caught up yet.
	Recoveries           uint64
	CatchupServed        uint64
	RecoveryRefusedReads uint64

	// Send-batcher observability: how many frames the replica shipped, how
	// many protocol messages they carried, and the effective hold window at
	// snapshot time (the AutoTune controller's output; the static window
	// otherwise).
	BatchFrames uint64
	BatchedMsgs uint64
	BatchWindow time.Duration
}

// Delivered is the net delivery count: optimistic plus conservative
// deliveries minus rollbacks. The three counters are independently-updated
// atomics, so a concurrent snapshot can land between related increments and
// transiently violate OptDelivered+ADelivered >= OptUndelivered; the sum is
// therefore computed signed and clamped at zero rather than wrapping to a
// near-2^64 value.
func (s ServerStats) Delivered() uint64 {
	d := int64(s.OptDelivered) + int64(s.ADelivered) - int64(s.OptUndelivered) //nolint:gosec // counters far below 2^63
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// Accumulate adds other's counters to s (used to aggregate replicas and
// shards). BatchWindow, a gauge, aggregates as the maximum.
func (s *ServerStats) Accumulate(other ServerStats) {
	s.OptDelivered += other.OptDelivered
	s.OptUndelivered += other.OptUndelivered
	s.ADelivered += other.ADelivered
	s.Epochs += other.Epochs
	s.SeqOrdersSent += other.SeqOrdersSent
	s.ForeignDropped += other.ForeignDropped
	s.ReadsServed += other.ReadsServed
	s.ReadFallbacks += other.ReadFallbacks
	s.Recoveries += other.Recoveries
	s.CatchupServed += other.CatchupServed
	s.RecoveryRefusedReads += other.RecoveryRefusedReads
	s.BatchFrames += other.BatchFrames
	s.BatchedMsgs += other.BatchedMsgs
	if other.BatchWindow > s.BatchWindow {
		s.BatchWindow = other.BatchWindow
	}
}

// Server is one OAR replica. Create with NewServer, drive with Run.
type Server struct {
	cfg ServerConfig
	n   int
	rm  *rmcast.RMcast

	// reader is the machine's optional read-only interface (nil when the
	// machine does not implement app.Reader); with it, KindRead requests are
	// answered inline from the event loop without touching the ordering
	// pipeline.
	reader app.Reader

	// Figure 6 state. rOrder holds only live requests: entries are pruned
	// (with rKnown and payloads) once a request is A-delivered, so the
	// per-request footprint is bounded by the in-flight window, not the run
	// length. pending and oSet are incremental views kept in sync with it:
	// pending == (rOrder ⊖ aDelivered) ⊖ oDelivered and oSet == set(oDelivered),
	// replacing the per-call full scans of the original implementation.
	rOrder     mseq.Seq[proto.RequestID]         // R_delivered, not yet A-delivered (arrival order)
	payloads   map[proto.RequestID]proto.Request // request bodies by ID; doubles as the set view of rOrder
	aDelivered map[proto.RequestID]struct{}      // A_delivered (set view)
	oDelivered mseq.Seq[proto.RequestID]         // O_delivered (current epoch)
	oSet       map[proto.RequestID]struct{}      // set view of oDelivered
	pending    mseq.Seq[proto.RequestID]         // unordered live requests, arrival order
	undoStack  []func()                          // undo closures, aligned with oDelivered
	epoch      uint64                            // k
	inPhase2   bool
	pos        uint64 // next delivery position - 1 (reply value of App. A)

	// Batching state (Task 1a flush control).
	orderDirty     bool      // pending grew since the last flush decision
	firstPendingAt time.Time // arrival of the oldest pending request

	// Epoch/consensus bookkeeping.
	phase2Sent    map[uint64]struct{} // epochs whose PhaseII we broadcast (Task 1c guard)
	phase2Started map[uint64]struct{}
	pendingPhase2 map[uint64]struct{}         // PhaseII(k') for future epochs
	seqOrderBuf   map[uint64][]proto.SeqOrder // ordering messages for future epochs
	cons          map[uint64]*consensus.Instance
	decisions     map[uint64]consensus.Decision // decided, possibly before we start the epoch's phase 2
	ownInput      cnsvorder.Input               // our proposal for the current epoch's phase 2

	lastHeartbeat time.Time
	tracer        Tracer

	// Per-round outbound coalescing: every send of one event-loop round is
	// appended to a per-destination envelope buffer and flushed as one
	// proto.Batch frame at the end of the round (relays, ordering messages,
	// replies and consensus traffic share frames). The buffers are reused
	// across rounds and the flushed frames come from the shared frame pool,
	// so the steady-state send path allocates nothing.
	out     *transport.Batcher
	encBuf  []byte // reusable encode scratch for replies and ordering messages
	hbFrame []byte // heartbeat payload, constant per group

	// tuner is the AutoTune controller driving the batcher's hold window
	// (nil without AutoTune). pipe is the staged event loop (nil without
	// Pipeline); when set, sends route through its rings instead of touching
	// s.out directly — the batcher is owned by the pipeline's sender stage.
	tuner *tune.Controller
	pipe  *pipeline

	// orderScratch is the reusable decode target for inbound SeqOrder
	// bodies: the steady-state decode allocates nothing, and the decoded
	// request commands alias the inbound frame (anything retained past the
	// frame is cloned — see bufferRequest and handleSeqOrder). reqScratch is
	// the reusable request slice the sequencer materializes each outgoing
	// ordering batch into.
	orderScratch proto.SeqOrder
	reqScratch   []proto.Request

	// Durability & recovery state (recovery.go). log is the open WAL (nil
	// without WALDir); ds is the in-memory boundary state every replica
	// maintains for peer catch-up. recovering defers all protocol traffic to
	// recoveryBuf until a peer's boundary state is adopted; observing spans
	// the join epoch after adoption — the replica participates in phase 2
	// but neither orders nor Opt-delivers until the epoch closes, because
	// mid-epoch opt positions assigned before its restart are unknowable.
	log          *wal.Log
	ds           backend.DurableState
	snapEvery    int
	sinceSnap    int
	walBuf       []byte // reusable WAL-record encode scratch
	recovering   bool
	observing    bool
	observeEpoch uint64
	catchupTick  int
	recoveryBuf  []deferredFrame

	statOpt         atomic.Uint64
	statUndo        atomic.Uint64
	statA           atomic.Uint64
	statEpochs      atomic.Uint64
	statOrders      atomic.Uint64
	statForeign     atomic.Uint64
	statReads       atomic.Uint64
	statReadFalls   atomic.Uint64
	statRecoveries  atomic.Uint64
	statCatchup     atomic.Uint64
	statReadRefused atomic.Uint64

	// fp is the footprint snapshot published at the end of every event-loop
	// round, so Footprint is safe to poll while the server runs.
	fp atomic.Pointer[Footprint]
}

// NewServer validates cfg and creates a replica.
func NewServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.Group) == 0 || len(cfg.Group) > proto.MaxGroupSize {
		return nil, fmt.Errorf("core: group size %d out of range [1,%d]", len(cfg.Group), proto.MaxGroupSize)
	}
	member := false
	for _, p := range cfg.Group {
		if p == cfg.ID {
			member = true
			break
		}
	}
	if !member {
		return nil, fmt.Errorf("core: server %v not in its own group", cfg.ID)
	}
	if cfg.Node == nil || cfg.Machine == nil || cfg.Detector == nil {
		return nil, fmt.Errorf("core: Node, Machine and Detector are required")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.Tracer == nil {
		cfg.Tracer = NopTracer()
	}
	if (cfg.AutoTune || cfg.Pipeline) && cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("core: AutoTune and Pipeline require the batching layer (BatchWindow >= 0)")
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = DefaultPipelineDepth
	}
	var opts transport.BatcherOptions
	var tuner *tune.Controller
	if cfg.AutoTune {
		tuner = tune.New(tune.Config{})
		opts.Tuner = tuner
		if cfg.MaxBatch > 0 {
			opts.MaxBatch = cfg.MaxBatch
		} else {
			opts.MaxBatch = DefaultMaxBatch
		}
	}
	s := &Server{
		cfg:           cfg,
		n:             len(cfg.Group),
		tuner:         tuner,
		payloads:      make(map[proto.RequestID]proto.Request),
		aDelivered:    make(map[proto.RequestID]struct{}),
		oSet:          make(map[proto.RequestID]struct{}),
		out:           transport.NewBatcherWith(cfg.Node, cfg.GroupID, opts),
		encBuf:        make([]byte, 0, 256),
		hbFrame:       proto.MarshalHeartbeat(cfg.GroupID),
		phase2Sent:    make(map[uint64]struct{}),
		phase2Started: make(map[uint64]struct{}),
		pendingPhase2: make(map[uint64]struct{}),
		seqOrderBuf:   make(map[uint64][]proto.SeqOrder),
		cons:          make(map[uint64]*consensus.Instance),
		decisions:     make(map[uint64]consensus.Decision),
		tracer:        cfg.Tracer,
	}
	if r, ok := cfg.Machine.(app.Reader); ok {
		s.reader = r
	}
	s.rm = rmcast.New(rmcast.Config{
		Self:    cfg.ID,
		Group:   cfg.Group,
		GroupID: cfg.GroupID,
		Send:    s.send,
		Mode:    cfg.RelayMode,
		// On the batching path every send is copied into the round's
		// envelope buffers immediately, so the relay hot path may encode
		// into a reusable scratch buffer.
		SendCopies: s.batching(),
		// Each incarnation multicasts from a disjoint sequence range, so
		// peers' (origin, seq) dedup state from before a crash cannot
		// swallow the restarted replica's multicasts.
		FirstSeq: cfg.Incarnation << 32,
	})
	if err := s.initDurability(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns a snapshot of the protocol counters. Safe to call
// concurrently with Run.
func (s *Server) Stats() ServerStats {
	bs := s.out.Stats()
	return ServerStats{
		OptDelivered:   s.statOpt.Load(),
		OptUndelivered: s.statUndo.Load(),
		ADelivered:     s.statA.Load(),
		Epochs:         s.statEpochs.Load(),
		SeqOrdersSent:  s.statOrders.Load(),
		ForeignDropped: s.statForeign.Load(),
		ReadsServed:          s.statReads.Load(),
		ReadFallbacks:        s.statReadFalls.Load(),
		Recoveries:           s.statRecoveries.Load(),
		CatchupServed:        s.statCatchup.Load(),
		RecoveryRefusedReads: s.statReadRefused.Load(),
		BatchFrames:          bs.Frames,
		BatchedMsgs:    bs.Msgs,
		BatchWindow:    bs.Window,
	}
}

// Run executes the replica event loop until ctx is cancelled or the
// transport closes (e.g. the process is crashed by fault injection).
//
// Each round handles one inbound message, then opportunistically drains the
// backlog that has already arrived before running the deferred ordering
// flush. Under load this is what forms ordering batches: the sequencer
// coalesces every request of the round into one SeqOrder instead of one per
// request, with zero added latency when the inbox is empty.
func (s *Server) Run(ctx context.Context) error {
	if s.cfg.Pipeline {
		return s.runPipelined(ctx)
	}
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	// Ship anything a held window still buffers when the loop exits.
	defer s.out.Close()
	inbox := s.cfg.Node.Recv()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-inbox:
			if !ok {
				return nil
			}
			now := time.Now()
			// Each message's pooled frame is recycled as soon as it is
			// handled: every retention point in the handlers clones what it
			// keeps (copy-on-retain), so nothing aliases the frame afterwards.
			s.handleMessage(m, now)
			m.Release()
			// Round formation (transport.DrainLinger): absorb the backlog —
			// with a short scheduler-yield linger — so the ordering batch
			// and every coalesced outbound frame cover the whole round.
			// Skipped entirely when the batching layer is off.
			spins := 0
			if s.batching() {
				spins = serverFlushSpins
			}
			if _, open := transport.DrainLinger(inbox, spins, maxDrain-1, func(m transport.Message) {
				s.handleMessage(m, now)
				m.Release()
			}); !open {
				return nil
			}
			s.flushOrder(time.Now())
			s.flushSends()
			s.publishFootprint()
		case now := <-ticker.C:
			s.tick(now)
			s.flushSends()
			s.publishFootprint()
		}
	}
}

// sequencer returns s, the sequencer of the current epoch: the rotating
// coordinator s = k mod |Π| (Section 5.3's rotation, since k increments
// exactly once per phase 2).
func (s *Server) sequencer() proto.NodeID {
	return s.cfg.Group[int(s.epoch%uint64(s.n))] //nolint:gosec // n ≤ 64
}

// batching reports whether the message-batching layer is enabled.
func (s *Server) batching() bool { return s.cfg.BatchWindow >= 0 }

func (s *Server) send(to proto.NodeID, payload []byte) {
	if s.pipe != nil {
		// Pipelined: the batcher belongs to the sender stage. Copy the
		// payload into a pooled frame and hand it down the ring.
		f := transport.GetFrame()
		f.Buf = append(f.Buf, payload...)
		s.pipe.sendFrame(to, f)
		return
	}
	if !s.batching() {
		// Send errors mean the network or this node is gone; the event loop
		// will observe the closed inbox and stop.
		_ = s.cfg.Node.Send(to, payload)
		return
	}
	s.out.Add(to, payload)
}

// sendReply encodes and sends a reply. On the batching path the reply is
// encoded into the reusable scratch buffer and copied straight into the
// destination's envelope buffer — no per-reply allocation. On the pipelined
// path it is encoded straight into a pooled frame for the sender stage, so
// reply marshalling happens off the protocol goroutine's critical data but
// still on its thread; the expensive part — envelope assembly and the
// transport write — happens downstream.
func (s *Server) sendReply(to proto.NodeID, reply proto.Reply) {
	if s.pipe != nil {
		f := transport.GetFrame()
		f.Buf = proto.AppendReply(f.Buf, reply)
		s.pipe.sendFrame(to, f)
		return
	}
	if !s.batching() {
		_ = s.cfg.Node.Send(to, proto.MarshalReply(reply))
		return
	}
	s.encBuf = proto.AppendReply(s.encBuf[:0], reply)
	s.out.Add(to, s.encBuf)
}

// flushSends ships every send the current round buffered.
func (s *Server) flushSends() {
	s.out.Flush()
}

func (s *Server) sendToPeers(payload []byte) {
	for _, p := range s.cfg.Group {
		if p != s.cfg.ID {
			s.send(p, payload)
		}
	}
}

// handleMessage dispatches one inbound transport message. Messages tagged
// with a foreign ordering group are dropped before any body decode: each
// group's protocol state machine only ever sees its own traffic.
func (s *Server) handleMessage(m transport.Message, now time.Time) {
	kind, group, body, err := proto.Unmarshal(m.Payload)
	if err != nil {
		return // garbage on the wire; drop
	}
	if group != s.cfg.GroupID {
		s.statForeign.Add(1)
		return
	}
	s.dispatch(m.From, kind, body, now)
}

// dispatch routes one already-envelope-decoded message to its handler. The
// pipelined loop's decode stage performs the envelope parse (and the
// garbage/foreign drops) off the protocol goroutine and enters here.
func (s *Server) dispatch(from proto.NodeID, kind proto.Kind, body []byte, now time.Time) {
	if s.recovering {
		s.dispatchRecovering(from, kind, body, now)
		return
	}
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(from, now)
	case proto.KindRMcast:
		inner, deliver, err := s.rm.OnMessage(body)
		if err != nil || !deliver {
			return
		}
		s.handleRDelivery(inner)
	case proto.KindRead:
		s.handleRead(body)
	case proto.KindSeqOrder:
		// Decode into the reusable scratch order: zero allocations, with
		// the request commands aliasing the inbound frame. handleSeqOrder
		// clones anything it retains past this call.
		if err := s.orderScratch.UnmarshalBody(body); err != nil {
			return
		}
		s.handleSeqOrder(s.orderScratch)
	case proto.KindEstimate, proto.KindPropose, proto.KindAck, proto.KindDecide:
		s.handleConsensus(from, kind, body)
	case proto.KindCatchupReq:
		s.handleCatchupReq(from, body)
	case proto.KindCatchupResp:
		// A response to a recovery that already completed; drop.
	case proto.KindBatch:
		batch, err := proto.UnmarshalBatch(body)
		if err != nil {
			return // corrupt envelope; drop
		}
		// UnmarshalBatch rejects nested batches, so this recursion is flat.
		for _, inner := range batch.Msgs {
			s.handleMessage(transport.Message{From: from, Payload: inner}, now)
		}
	default:
		// Replies and baseline traffic are not for servers; drop.
	}
}

// handleRDelivery processes an R-delivered inner payload: a client request
// (Task 0) or a PhaseII notification (start of Task 2).
func (s *Server) handleRDelivery(inner []byte) {
	kind, group, body, err := proto.Unmarshal(inner)
	if err != nil {
		return
	}
	if group != s.cfg.GroupID {
		s.statForeign.Add(1)
		return // misrouted into our group's R-multicast stream
	}
	switch kind {
	case proto.KindRequest:
		req, err := proto.UnmarshalRequest(body)
		if err != nil {
			return
		}
		// Ordering is deferred to the event loop's flushOrder, which runs
		// after the inbox backlog is drained — the low-latency path when the
		// replica is idle, and the batch-forming path when it is not. With
		// batching disabled, order immediately as the original code did.
		s.bufferRequest(req)
		if !s.batching() {
			s.maybeOrder()
		}
	case proto.KindPhaseII:
		p2, err := proto.UnmarshalPhaseII(body)
		if err != nil {
			return
		}
		s.handlePhaseII(p2.Epoch)
	}
}

// handleRead serves a read-only request without touching the ordering
// pipeline: the machine's Reader answers from the current optimistic prefix
// and the reply is tagged with (epoch, pos, own weight). The client adopts
// such a reply only once a majority of the group has answered at a
// compatible prefix — by Maj-validity of the epoch-closing consensus, a
// majority-endorsed prefix can never be rolled back, so the adopted read is
// consistent with the definitive order. Nothing is buffered or retained:
// reads cost zero ordering messages and zero payload retention.
//
// Machines without a Reader — and well-formed writes or malformed commands
// mislabelled as reads — fall back to the ordered path: the request is
// buffered like an R-delivered write and every replica eventually replies
// from its single delivery position, which satisfies the client's read rule
// at that position.
func (s *Server) handleRead(body []byte) {
	req, err := proto.UnmarshalRead(body)
	if err != nil {
		return
	}
	if s.reader != nil {
		if result, ok := s.reader.Query(req.Cmd); ok {
			s.statReads.Add(1)
			s.sendReply(req.ID.Client, proto.Reply{
				Req:    req.ID,
				From:   s.cfg.ID,
				Epoch:  s.epoch,
				Weight: proto.WeightOf(s.cfg.ID),
				Pos:    s.pos,
				Result: result,
			})
			return
		}
	}
	s.statReadFalls.Add(1)
	s.bufferRequest(req)
	if !s.batching() {
		s.maybeOrder()
	}
}

// bufferRequest is Task 0: R_delivered ← R_delivered ⊕ {m}. Requests that
// already reached A_delivered (whose live bookkeeping has been pruned) are
// ignored, preserving at-most-once across the garbage collection.
//
// The payloads map retains the request past this frame's handling, so the
// command is cloned here (copy-on-retain; req.Cmd usually aliases the
// inbound frame). Duplicates — every eager-relay copy after the first —
// return before the clone, so deduplication costs no allocation.
func (s *Server) bufferRequest(req proto.Request) {
	if _, done := s.aDelivered[req.ID]; done {
		return
	}
	if _, known := s.payloads[req.ID]; known {
		return
	}
	s.payloads[req.ID] = req.Clone()
	s.rOrder = append(s.rOrder, req.ID)
	if s.cfg.BatchWindow > 0 && s.pending.IsEmpty() {
		s.firstPendingAt = time.Now() // only the windowed mode reads this
	}
	s.pending = append(s.pending, req.ID)
	s.orderDirty = true
}

// notDelivered is (R_delivered ⊖ A_delivered) ⊖ O_delivered (Figure 6, lines
// 9 and 23). It is maintained incrementally — appended in bufferRequest,
// shrunk as requests are Opt-delivered, rebuilt at epoch close — so reading
// it costs O(1) instead of the original O(|R_delivered|) scan with a full
// O_delivered set rebuild per call.
func (s *Server) notDelivered() mseq.Seq[proto.RequestID] {
	return s.pending
}

// maxBatch returns the effective per-SeqOrder request cap.
func (s *Server) maxBatch() int {
	if s.cfg.MaxBatch > 0 {
		return s.cfg.MaxBatch
	}
	return DefaultMaxBatch
}

// flushOrder decides whether Task 1a runs now. With no BatchWindow it orders
// whatever the current event-loop round accumulated; with a window it holds
// small batches until the oldest pending request has waited long enough.
func (s *Server) flushOrder(now time.Time) {
	if !s.orderDirty || s.inPhase2 || s.sequencer() != s.cfg.ID {
		return
	}
	if s.pending.IsEmpty() {
		s.orderDirty = false
		return
	}
	if s.cfg.BatchWindow > 0 && s.pending.Len() < s.maxBatch() &&
		now.Sub(s.firstPendingAt) < s.cfg.BatchWindow {
		return // keep accumulating; a later message or tick flushes
	}
	s.orderDirty = false
	s.maybeOrder()
}

// maybeOrder is Task 1a: if this replica is the sequencer of the current
// epoch and there are unordered messages, it orders them — in batches of at
// most MaxBatch — and sends each sequence to all, then Opt-delivers it
// immediately itself ("we assume that the sequencer immediately delivers
// this message"). Delivering each batch before emitting the next keeps that
// assumption intact when a delivery triggers the epoch-limit PhaseII.
func (s *Server) maybeOrder() {
	if s.observing {
		return // no ordering in the join epoch; see handleSeqOrder
	}
	for !s.inPhase2 && s.sequencer() == s.cfg.ID && !s.pending.IsEmpty() {
		chunk := s.pending
		if limit := s.maxBatch(); len(chunk) > limit {
			chunk = chunk[:limit]
		}
		// Materialize into the reusable scratch slice (the payload bodies
		// are owned by the payloads map) and, on the batching path, encode
		// into the reusable scratch buffer — the steady-state ordering path
		// allocates nothing.
		s.reqScratch = s.reqScratch[:0]
		for _, id := range chunk {
			s.reqScratch = append(s.reqScratch, s.payloads[id])
		}
		order := proto.SeqOrder{Epoch: s.epoch, Reqs: s.reqScratch}
		if s.batching() {
			s.encBuf = proto.AppendSeqOrder(s.encBuf[:0], s.cfg.GroupID, order)
			s.sendToPeers(s.encBuf)
		} else {
			s.sendToPeers(proto.MarshalSeqOrder(s.cfg.GroupID, order))
		}
		s.statOrders.Add(1)
		s.optDeliverBatch(order) // removes the chunk from pending
	}
}

func (s *Server) materialize(ids mseq.Seq[proto.RequestID]) []proto.Request {
	reqs := make([]proto.Request, 0, len(ids))
	for _, id := range ids {
		reqs = append(reqs, s.payloads[id])
	}
	return reqs
}

// handleSeqOrder is the receiving half of Task 1b.
func (s *Server) handleSeqOrder(order proto.SeqOrder) {
	switch {
	case order.Epoch < s.epoch:
		return // stale epoch
	case order.Epoch > s.epoch:
		// We lag behind; keep the payloads (Task 0 piggyback) and buffer the
		// ordering until our phase 2s catch us up. The buffered order
		// outlives the inbound frame (order may be the decode scratch), so
		// it is deep-copied here — the lagging path is off the steady state.
		for _, req := range order.Reqs {
			s.bufferRequest(req)
		}
		s.seqOrderBuf[order.Epoch] = append(s.seqOrderBuf[order.Epoch], order.Clone())
		return
	case s.inPhase2:
		// Orderings of the current epoch arriving after PhaseII are not
		// Opt-delivered; their messages stay in R_delivered and will be
		// re-ordered (by the next sequencer or the consensus merge).
		for _, req := range order.Reqs {
			s.bufferRequest(req)
		}
		return
	case s.observing:
		// Join epoch after recovery: orderings sent before our restart are
		// lost, so Opt-delivering this one would assign positions (and claim
		// the sequencer's reply weight) for a prefix we never saw. Keep the
		// payloads; the epoch-closing consensus delivers them definitively.
		for _, req := range order.Reqs {
			s.bufferRequest(req)
		}
		return
	}
	s.optDeliverBatch(order)
}

// optDeliverBatch is Task 1b: Opt-deliver every message of msgSet_k in
// order, send replies weighted {s} (at the sequencer) or {p, s}. Replies go
// through the round's per-destination send buffer, so a round that serves
// many requests of one client costs one frame.
func (s *Server) optDeliverBatch(order proto.SeqOrder) {
	seq := s.sequencer()
	var weight proto.Weight
	if s.cfg.ID == seq {
		weight = proto.WeightOf(seq)
	} else {
		weight = proto.WeightOf(s.cfg.ID, seq)
	}
	var delivered mseq.Seq[proto.RequestID]
	for _, req := range order.Reqs {
		if _, done := s.aDelivered[req.ID]; done {
			continue
		}
		if _, done := s.oSet[req.ID]; done {
			continue
		}
		// The ordering message carries full payloads, so we may learn the
		// request here before its R-multicast copy arrives (dedup in Task 0).
		s.bufferRequest(req)

		result, undo := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.oDelivered = append(s.oDelivered, req.ID)
		s.oSet[req.ID] = struct{}{}
		s.undoStack = append(s.undoStack, undo)
		delivered = append(delivered, req.ID)
		s.statOpt.Add(1)
		s.tracer.OptDeliver(s.cfg.ID, s.epoch, req.ID, s.pos, result)
		s.sendReply(req.ID.Client, proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  s.epoch,
			Weight: weight,
			Pos:    s.pos,
			Result: result,
		})
	}
	if !delivered.IsEmpty() {
		// Fast path: at the sequencer (and usually at replicas, which see
		// orders in arrival order) the delivered batch is exactly a prefix
		// of pending, so the subtraction is a slice-off instead of a scan.
		if s.pending.HasPrefix(delivered) {
			s.pending = s.pending[len(delivered):].Clone()
		} else {
			s.pending = mseq.Minus(s.pending, delivered)
		}
	}

	// Garbage collection (Remark, Section 5.3): the sequencer periodically
	// forces phase 2 to truncate O_delivered.
	if s.cfg.EpochRequestLimit > 0 && s.cfg.ID == seq && !s.inPhase2 &&
		s.oDelivered.Len() >= s.cfg.EpochRequestLimit {
		s.broadcastPhaseII()
	}
}

// broadcastPhaseII is the sending half of Task 1c (also used by the GC
// path): R-broadcast (k, PhaseII) to all.
func (s *Server) broadcastPhaseII() {
	if _, sent := s.phase2Sent[s.epoch]; sent {
		return
	}
	s.phase2Sent[s.epoch] = struct{}{}
	inner := proto.MarshalPhaseII(s.cfg.GroupID, proto.PhaseII{Epoch: s.epoch})
	if local, ok := s.rm.Multicast(inner); ok {
		s.handleRDelivery(local)
	}
}

// handlePhaseII is the start of Task 2 for epoch k.
func (s *Server) handlePhaseII(k uint64) {
	if k < s.epoch {
		return
	}
	if k > s.epoch {
		s.pendingPhase2[k] = struct{}{}
		return
	}
	if _, started := s.phase2Started[k]; started {
		return
	}
	s.phase2Started[k] = struct{}{}
	s.inPhase2 = true

	// Lazy relay: agreement on buffered R-multicasts matters exactly now.
	if s.cfg.RelayMode == rmcast.Lazy {
		s.rm.RelayAll()
	}

	// Figure 6 lines 23–24: propose (O_delivered, O_notdelivered).
	s.ownInput = cnsvorder.Input{
		Dlv:    s.materialize(s.oDelivered),
		NotDlv: s.materialize(s.notDelivered()),
	}
	inst := s.instance(k)
	inst.Start(s.ownInput.Marshal())
	// The decision may already be known (we were slow; others decided).
	if d, ok := s.decisions[k]; ok {
		s.applyDecision(k, d)
	}
}

// instance returns (creating if needed) the consensus instance for epoch k.
func (s *Server) instance(k uint64) *consensus.Instance {
	if inst, ok := s.cons[k]; ok {
		return inst
	}
	inst := consensus.NewInstance(consensus.Config{
		Self:     s.cfg.ID,
		Group:    s.cfg.Group,
		GroupID:  s.cfg.GroupID,
		Instance: k,
		Send:     s.send,
		Detector: s.cfg.Detector,
		OnDecide: func(d consensus.Decision) { s.onDecide(k, d) },
	})
	s.cons[k] = inst
	return inst
}

func (s *Server) handleConsensus(from proto.NodeID, kind proto.Kind, body []byte) {
	k, err := consensus.InstanceOf(body)
	if err != nil || k < s.epoch {
		return
	}
	inst := s.instance(k)
	_ = inst.OnMessage(from, kind, body) // malformed messages are dropped
}

// onDecide runs when consensus for epoch k decides. If we are inside that
// epoch's phase 2, apply immediately; otherwise remember the decision until
// we get there.
func (s *Server) onDecide(k uint64, d consensus.Decision) {
	if k == s.epoch && s.inPhase2 {
		s.applyDecision(k, d)
		return
	}
	s.decisions[k] = d
}

// applyDecision finishes Task 2: Cnsv-order, Opt-undeliver Bad (reverse
// order), A-deliver New, advance to epoch k+1.
func (s *Server) applyDecision(k uint64, d consensus.Decision) {
	res, err := cnsvorder.Compute(s.ownInput, d)
	if err != nil {
		// A malformed decision would mean a broken consensus/sequencer
		// implementation; halting this replica is the only safe response.
		panic(fmt.Sprintf("oar server %v epoch %d: %v", s.cfg.ID, k, err))
	}

	// Lines 25–26: Opt-undeliver Bad, last delivered first (footnote 2).
	// Undo legality guarantees Bad is a suffix of O_delivered.
	for i := len(res.Bad) - 1; i >= 0; i-- {
		top := s.oDelivered.Len() - 1
		if top < 0 || s.oDelivered[top] != res.Bad[i] {
			panic(fmt.Sprintf("oar server %v epoch %d: Bad %v is not the O_delivered suffix %v",
				s.cfg.ID, k, res.Bad, s.oDelivered))
		}
		s.undoStack[top]()
		s.undoStack = s.undoStack[:top]
		delete(s.oSet, s.oDelivered[top])
		s.oDelivered = s.oDelivered[:top]
		s.pos--
		s.statUndo.Add(1)
		s.tracer.OptUndeliver(s.cfg.ID, k, res.Bad[i])
	}

	// Lines 27–29: A-deliver New, replying with the conservative weight Π.
	// (Replies share the round's per-destination batch frames.)
	full := proto.FullWeight(s.n)
	for _, req := range res.New {
		s.bufferRequest(req) // consensus may carry payloads we never received
		result, _ := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.statA.Add(1)
		s.tracer.ADeliver(s.cfg.ID, k, req.ID, s.pos, result)
		s.sendReply(req.ID.Client, proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  k,
			Weight: full,
			Pos:    s.pos,
			Result: result,
		})
	}

	// Lines 30–32: commit the epoch.
	for _, id := range s.oDelivered { // O_delivered ⊖ Bad (Bad already removed)
		s.aDelivered[id] = struct{}{}
	}
	for _, req := range res.New {
		s.aDelivered[req.ID] = struct{}{}
	}
	// Persist the epoch's definitive batch (in-memory catch-up tail, and the
	// WAL when configured) while the payloads of the kept optimistic prefix
	// are still in the bookkeeping — the GC below prunes them.
	s.persistEpoch(k, res.New)
	s.tracer.EpochClose(s.cfg.ID, k, s.ownInput, res)

	// Garbage-collect the per-request bookkeeping of everything that just
	// became definitive: the payloads and rOrder slots of A-delivered
	// requests are never needed again (re-arrivals are rejected by the
	// aDelivered guard in bufferRequest). What survives the compaction —
	// exactly the live, unordered requests — is the next epoch's pending
	// sequence.
	live := s.rOrder[:0]
	for _, id := range s.rOrder {
		if _, done := s.aDelivered[id]; done {
			delete(s.payloads, id)
			continue
		}
		live = append(live, id)
	}
	s.rOrder = live
	s.pending = live.Clone()
	s.orderDirty = !s.pending.IsEmpty()
	s.firstPendingAt = time.Time{} // leftovers have waited a whole phase 2

	s.oDelivered = nil
	s.oSet = make(map[proto.RequestID]struct{})
	s.undoStack = nil
	s.ownInput = cnsvorder.Input{}
	s.inPhase2 = false
	s.epoch = k + 1
	s.statEpochs.Add(1)
	if s.observing && s.epoch > s.observeEpoch {
		s.observing = false // the join epoch closed; back in full standing
	}
	s.maybeSnapshot()

	// Drop per-epoch bookkeeping we no longer need.
	delete(s.cons, k)
	delete(s.decisions, k)
	delete(s.phase2Sent, k)
	delete(s.phase2Started, k)
	delete(s.pendingPhase2, k)
	delete(s.seqOrderBuf, k)

	// Catch up with the new epoch: buffered orderings, a pending PhaseII,
	// or — if we are the new sequencer — leftover unordered requests.
	if orders, ok := s.seqOrderBuf[s.epoch]; ok {
		delete(s.seqOrderBuf, s.epoch)
		for _, o := range orders {
			s.handleSeqOrder(o)
		}
	}
	if _, ok := s.pendingPhase2[s.epoch]; ok {
		delete(s.pendingPhase2, s.epoch)
		s.handlePhaseII(s.epoch)
		return
	}
	s.maybeOrder()
}

// tick drives the periodic duties: heartbeats, Task 1a batching, Task 1c
// suspicion, and consensus timeouts.
func (s *Server) tick(now time.Time) {
	if s.cfg.HeartbeatInterval > 0 && now.Sub(s.lastHeartbeat) >= s.cfg.HeartbeatInterval {
		s.lastHeartbeat = now
		// The heartbeat payload is constant per group: one frame, encoded at
		// start-up, resent every tick (it is immutable, so sharing it with
		// the transport across ticks and peers is safe).
		s.sendToPeers(s.hbFrame)
	}

	if s.recovering {
		// Re-probe peers for catch-up state until one answers from an epoch
		// boundary; everything else (ordering, suspicion, consensus) waits.
		s.catchupTick++
		if s.catchupTick >= recoveryProbeTicks {
			s.catchupTick = 0
			s.sendToPeers(proto.MarshalCatchupReq(s.cfg.GroupID, proto.CatchupReq{HavePos: s.pos}))
		}
		return
	}

	if !s.inPhase2 {
		// Task 1a catch-up (e.g. a BatchWindow that expired with no further
		// traffic, or requests that arrived during phase 2).
		s.flushOrder(now)
		// Task 1c: when p suspects the sequencer, R-broadcast (k, PhaseII).
		seq := s.sequencer()
		if seq != s.cfg.ID && s.cfg.Detector.Suspected(seq, now) {
			s.broadcastPhaseII()
		}
	}

	// Drive the active consensus instance (coordinator suspicion).
	if s.inPhase2 {
		if inst, ok := s.cons[s.epoch]; ok {
			inst.Tick(now)
		}
	}
}

// Epoch returns the current epoch (k). Intended for tests and tools; it is
// only safe to read when the server is quiescent or from its own tracer
// callbacks.
func (s *Server) Epoch() uint64 { return s.epoch }

// Footprint reports the sizes of the replica's per-request bookkeeping
// structures. Payloads, ROrder and Pending cover only live requests and stay
// bounded by the in-flight window when epoch GC is on
// (EpochRequestLimit > 0); ADelivered is the at-most-once filter and grows
// with the number of distinct requests ever completed.
type Footprint struct {
	Payloads   int // buffered request bodies (doubles as the R_delivered dedup set)
	ROrder     int // live R_delivered sequence
	Pending    int // live unordered requests
	ODelivered int // current epoch's optimistic deliveries
	ADelivered int // definitive-delivery filter (grows with history)
}

// publishFootprint snapshots the bookkeeping sizes for concurrent readers.
// Called from the event loop at the end of every round.
func (s *Server) publishFootprint() {
	s.fp.Store(&Footprint{
		Payloads:   len(s.payloads),
		ROrder:     s.rOrder.Len(),
		Pending:    s.pending.Len(),
		ODelivered: s.oDelivered.Len(),
		ADelivered: len(s.aDelivered),
	})
}

// Footprint returns the bookkeeping sizes as of the end of the last
// event-loop round (at most one round stale). Safe to call concurrently
// with Run.
func (s *Server) Footprint() Footprint {
	if fp := s.fp.Load(); fp != nil {
		return *fp
	}
	return Footprint{} // Run has not completed a round yet
}
