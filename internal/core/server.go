package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/cnsvorder"
	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/mseq"
	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/transport"
)

// Defaults for ServerConfig.
const (
	DefaultTickInterval      = time.Millisecond
	DefaultHeartbeatInterval = 5 * time.Millisecond
)

// ServerConfig configures one OAR replica.
type ServerConfig struct {
	// ID is this replica's rank in Π.
	ID proto.NodeID
	// Group is Π. Must contain ID; |Π| ≤ 64.
	Group []proto.NodeID
	// Node is the replica's transport endpoint.
	Node transport.Node
	// Machine is the deterministic, undoable replicated state machine.
	Machine app.Machine
	// Detector is the ◊S failure detector used to suspect the sequencer and
	// consensus coordinators. Required.
	Detector fd.Detector
	// RelayMode selects the reliable-multicast relay strategy (default Eager).
	RelayMode rmcast.Mode
	// TickInterval drives Task 1a batching, suspicion sampling, heartbeats
	// and consensus timeouts. Default DefaultTickInterval.
	TickInterval time.Duration
	// HeartbeatInterval is the gap between heartbeats to peers. Default
	// DefaultHeartbeatInterval. Set negative to disable heartbeats (e.g.
	// when using an Oracle detector).
	HeartbeatInterval time.Duration
	// EpochRequestLimit, when positive, makes the sequencer R-broadcast a
	// PhaseII after that many optimistic deliveries in one epoch — the
	// garbage-collection mechanism of the Remark in Section 5.3 that bounds
	// the O_delivered sequence.
	EpochRequestLimit int
	// Tracer observes protocol events (nil disables tracing).
	Tracer Tracer
}

// ServerStats are monotonically increasing protocol counters, readable
// concurrently while the server runs.
type ServerStats struct {
	OptDelivered   uint64 // optimistic deliveries (Fig. 6 line 17)
	OptUndelivered uint64 // undone deliveries (Fig. 6 line 26)
	ADelivered     uint64 // conservative deliveries (Fig. 6 line 28)
	Epochs         uint64 // completed phase-2 rounds
	SeqOrdersSent  uint64 // Task 1a ordering messages sent
}

// Server is one OAR replica. Create with NewServer, drive with Run.
type Server struct {
	cfg ServerConfig
	n   int
	rm  *rmcast.RMcast

	// Figure 6 state.
	rOrder     mseq.Seq[proto.RequestID]         // R_delivered (arrival order)
	rKnown     map[proto.RequestID]struct{}      // set view of R_delivered
	payloads   map[proto.RequestID]proto.Request // request bodies by ID
	aDelivered map[proto.RequestID]struct{}      // A_delivered (set view)
	oDelivered mseq.Seq[proto.RequestID]         // O_delivered (current epoch)
	undoStack  []func()                          // undo closures, aligned with oDelivered
	epoch      uint64                            // k
	inPhase2   bool
	pos        uint64 // next delivery position - 1 (reply value of App. A)

	// Epoch/consensus bookkeeping.
	phase2Sent    map[uint64]struct{} // epochs whose PhaseII we broadcast (Task 1c guard)
	phase2Started map[uint64]struct{}
	pendingPhase2 map[uint64]struct{}         // PhaseII(k') for future epochs
	seqOrderBuf   map[uint64][]proto.SeqOrder // ordering messages for future epochs
	cons          map[uint64]*consensus.Instance
	decisions     map[uint64]consensus.Decision // decided, possibly before we start the epoch's phase 2
	ownInput      cnsvorder.Input               // our proposal for the current epoch's phase 2

	lastHeartbeat time.Time
	tracer        Tracer

	statOpt    atomic.Uint64
	statUndo   atomic.Uint64
	statA      atomic.Uint64
	statEpochs atomic.Uint64
	statOrders atomic.Uint64
}

// NewServer validates cfg and creates a replica.
func NewServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.Group) == 0 || len(cfg.Group) > proto.MaxGroupSize {
		return nil, fmt.Errorf("core: group size %d out of range [1,%d]", len(cfg.Group), proto.MaxGroupSize)
	}
	member := false
	for _, p := range cfg.Group {
		if p == cfg.ID {
			member = true
			break
		}
	}
	if !member {
		return nil, fmt.Errorf("core: server %v not in its own group", cfg.ID)
	}
	if cfg.Node == nil || cfg.Machine == nil || cfg.Detector == nil {
		return nil, fmt.Errorf("core: Node, Machine and Detector are required")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.Tracer == nil {
		cfg.Tracer = nopTracer{}
	}
	s := &Server{
		cfg:           cfg,
		n:             len(cfg.Group),
		rKnown:        make(map[proto.RequestID]struct{}),
		payloads:      make(map[proto.RequestID]proto.Request),
		aDelivered:    make(map[proto.RequestID]struct{}),
		phase2Sent:    make(map[uint64]struct{}),
		phase2Started: make(map[uint64]struct{}),
		pendingPhase2: make(map[uint64]struct{}),
		seqOrderBuf:   make(map[uint64][]proto.SeqOrder),
		cons:          make(map[uint64]*consensus.Instance),
		decisions:     make(map[uint64]consensus.Decision),
		tracer:        cfg.Tracer,
	}
	s.rm = rmcast.New(rmcast.Config{
		Self:  cfg.ID,
		Group: cfg.Group,
		Send:  s.send,
		Mode:  cfg.RelayMode,
	})
	return s, nil
}

// Stats returns a snapshot of the protocol counters. Safe to call
// concurrently with Run.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		OptDelivered:   s.statOpt.Load(),
		OptUndelivered: s.statUndo.Load(),
		ADelivered:     s.statA.Load(),
		Epochs:         s.statEpochs.Load(),
		SeqOrdersSent:  s.statOrders.Load(),
	}
}

// Run executes the replica event loop until ctx is cancelled or the
// transport closes (e.g. the process is crashed by fault injection).
func (s *Server) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-s.cfg.Node.Recv():
			if !ok {
				return nil
			}
			s.handleMessage(m, time.Now())
		case now := <-ticker.C:
			s.tick(now)
		}
	}
}

// sequencer returns s, the sequencer of the current epoch: the rotating
// coordinator s = k mod |Π| (Section 5.3's rotation, since k increments
// exactly once per phase 2).
func (s *Server) sequencer() proto.NodeID {
	return s.cfg.Group[int(s.epoch%uint64(s.n))] //nolint:gosec // n ≤ 64
}

func (s *Server) send(to proto.NodeID, payload []byte) {
	// Send errors mean the network or this node is gone; the event loop will
	// observe the closed inbox and stop. Nothing useful to do here.
	_ = s.cfg.Node.Send(to, payload)
}

func (s *Server) sendToPeers(payload []byte) {
	for _, p := range s.cfg.Group {
		if p != s.cfg.ID {
			s.send(p, payload)
		}
	}
}

// handleMessage dispatches one inbound transport message.
func (s *Server) handleMessage(m transport.Message, now time.Time) {
	kind, body, err := proto.Unmarshal(m.Payload)
	if err != nil {
		return // garbage on the wire; drop
	}
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(m.From, now)
	case proto.KindRMcast:
		inner, deliver, err := s.rm.OnMessage(body)
		if err != nil || !deliver {
			return
		}
		s.handleRDelivery(inner)
	case proto.KindSeqOrder:
		order, err := proto.UnmarshalSeqOrder(body)
		if err != nil {
			return
		}
		s.handleSeqOrder(order)
	case proto.KindEstimate, proto.KindPropose, proto.KindAck, proto.KindDecide:
		s.handleConsensus(m.From, kind, body)
	default:
		// Replies and baseline traffic are not for servers; drop.
	}
}

// handleRDelivery processes an R-delivered inner payload: a client request
// (Task 0) or a PhaseII notification (start of Task 2).
func (s *Server) handleRDelivery(inner []byte) {
	kind, body, err := proto.Unmarshal(inner)
	if err != nil {
		return
	}
	switch kind {
	case proto.KindRequest:
		req, err := proto.UnmarshalRequest(body)
		if err != nil {
			return
		}
		s.bufferRequest(req)
		// Low-latency path for Task 1a: the sequencer orders as soon as a
		// request arrives instead of waiting for the next tick.
		s.maybeOrder()
	case proto.KindPhaseII:
		p2, err := proto.UnmarshalPhaseII(body)
		if err != nil {
			return
		}
		s.handlePhaseII(p2.Epoch)
	}
}

// bufferRequest is Task 0: R_delivered ← R_delivered ⊕ {m}.
func (s *Server) bufferRequest(req proto.Request) {
	if _, known := s.rKnown[req.ID]; known {
		return
	}
	s.rKnown[req.ID] = struct{}{}
	s.payloads[req.ID] = req
	s.rOrder = append(s.rOrder, req.ID)
}

// notDelivered computes (R_delivered ⊖ A_delivered) ⊖ O_delivered
// (Figure 6, lines 9 and 23).
func (s *Server) notDelivered() mseq.Seq[proto.RequestID] {
	oSet := s.oDelivered.Set()
	out := make(mseq.Seq[proto.RequestID], 0)
	for _, id := range s.rOrder {
		if _, a := s.aDelivered[id]; a {
			continue
		}
		if _, o := oSet[id]; o {
			continue
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// maybeOrder is Task 1a: if this replica is the sequencer of the current
// epoch and there are unordered messages, it orders them and sends the
// sequence to all — then Opt-delivers immediately itself ("we assume that
// the sequencer immediately delivers this message").
func (s *Server) maybeOrder() {
	if s.inPhase2 || s.sequencer() != s.cfg.ID {
		return
	}
	pending := s.notDelivered()
	if pending.IsEmpty() {
		return
	}
	reqs := s.materialize(pending)
	order := proto.SeqOrder{Epoch: s.epoch, Reqs: reqs}
	s.sendToPeers(proto.MarshalSeqOrder(order))
	s.statOrders.Add(1)
	s.optDeliverBatch(order)
}

func (s *Server) materialize(ids mseq.Seq[proto.RequestID]) []proto.Request {
	reqs := make([]proto.Request, 0, len(ids))
	for _, id := range ids {
		reqs = append(reqs, s.payloads[id])
	}
	return reqs
}

// handleSeqOrder is the receiving half of Task 1b.
func (s *Server) handleSeqOrder(order proto.SeqOrder) {
	switch {
	case order.Epoch < s.epoch:
		return // stale epoch
	case order.Epoch > s.epoch:
		// We lag behind; keep the payloads (Task 0 piggyback) and buffer the
		// ordering until our phase 2s catch us up.
		for _, req := range order.Reqs {
			s.bufferRequest(req)
		}
		s.seqOrderBuf[order.Epoch] = append(s.seqOrderBuf[order.Epoch], order)
		return
	case s.inPhase2:
		// Orderings of the current epoch arriving after PhaseII are not
		// Opt-delivered; their messages stay in R_delivered and will be
		// re-ordered (by the next sequencer or the consensus merge).
		for _, req := range order.Reqs {
			s.bufferRequest(req)
		}
		return
	}
	s.optDeliverBatch(order)
}

// optDeliverBatch is Task 1b: Opt-deliver every message of msgSet_k in
// order, send replies weighted {s} (at the sequencer) or {p, s}.
func (s *Server) optDeliverBatch(order proto.SeqOrder) {
	seq := s.sequencer()
	var weight proto.Weight
	if s.cfg.ID == seq {
		weight = proto.WeightOf(seq)
	} else {
		weight = proto.WeightOf(s.cfg.ID, seq)
	}
	oSet := s.oDelivered.Set()
	for _, req := range order.Reqs {
		if _, done := s.aDelivered[req.ID]; done {
			continue
		}
		if _, done := oSet[req.ID]; done {
			continue
		}
		// The ordering message carries full payloads, so we may learn the
		// request here before its R-multicast copy arrives (dedup in Task 0).
		s.bufferRequest(req)

		result, undo := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.oDelivered = append(s.oDelivered, req.ID)
		s.undoStack = append(s.undoStack, undo)
		s.statOpt.Add(1)
		s.tracer.OptDeliver(s.cfg.ID, s.epoch, req.ID, s.pos, result)
		s.send(req.ID.Client, proto.MarshalReply(proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  s.epoch,
			Weight: weight,
			Pos:    s.pos,
			Result: result,
		}))
	}

	// Garbage collection (Remark, Section 5.3): the sequencer periodically
	// forces phase 2 to truncate O_delivered.
	if s.cfg.EpochRequestLimit > 0 && s.cfg.ID == seq && !s.inPhase2 &&
		s.oDelivered.Len() >= s.cfg.EpochRequestLimit {
		s.broadcastPhaseII()
	}
}

// broadcastPhaseII is the sending half of Task 1c (also used by the GC
// path): R-broadcast (k, PhaseII) to all.
func (s *Server) broadcastPhaseII() {
	if _, sent := s.phase2Sent[s.epoch]; sent {
		return
	}
	s.phase2Sent[s.epoch] = struct{}{}
	inner := proto.MarshalPhaseII(proto.PhaseII{Epoch: s.epoch})
	if local, ok := s.rm.Multicast(inner); ok {
		s.handleRDelivery(local)
	}
}

// handlePhaseII is the start of Task 2 for epoch k.
func (s *Server) handlePhaseII(k uint64) {
	if k < s.epoch {
		return
	}
	if k > s.epoch {
		s.pendingPhase2[k] = struct{}{}
		return
	}
	if _, started := s.phase2Started[k]; started {
		return
	}
	s.phase2Started[k] = struct{}{}
	s.inPhase2 = true

	// Lazy relay: agreement on buffered R-multicasts matters exactly now.
	if s.cfg.RelayMode == rmcast.Lazy {
		s.rm.RelayAll()
	}

	// Figure 6 lines 23–24: propose (O_delivered, O_notdelivered).
	s.ownInput = cnsvorder.Input{
		Dlv:    s.materialize(s.oDelivered),
		NotDlv: s.materialize(s.notDelivered()),
	}
	inst := s.instance(k)
	inst.Start(s.ownInput.Marshal())
	// The decision may already be known (we were slow; others decided).
	if d, ok := s.decisions[k]; ok {
		s.applyDecision(k, d)
	}
}

// instance returns (creating if needed) the consensus instance for epoch k.
func (s *Server) instance(k uint64) *consensus.Instance {
	if inst, ok := s.cons[k]; ok {
		return inst
	}
	inst := consensus.NewInstance(consensus.Config{
		Self:     s.cfg.ID,
		Group:    s.cfg.Group,
		Instance: k,
		Send:     s.send,
		Detector: s.cfg.Detector,
		OnDecide: func(d consensus.Decision) { s.onDecide(k, d) },
	})
	s.cons[k] = inst
	return inst
}

func (s *Server) handleConsensus(from proto.NodeID, kind proto.Kind, body []byte) {
	k, err := consensus.InstanceOf(body)
	if err != nil || k < s.epoch {
		return
	}
	inst := s.instance(k)
	_ = inst.OnMessage(from, kind, body) // malformed messages are dropped
}

// onDecide runs when consensus for epoch k decides. If we are inside that
// epoch's phase 2, apply immediately; otherwise remember the decision until
// we get there.
func (s *Server) onDecide(k uint64, d consensus.Decision) {
	if k == s.epoch && s.inPhase2 {
		s.applyDecision(k, d)
		return
	}
	s.decisions[k] = d
}

// applyDecision finishes Task 2: Cnsv-order, Opt-undeliver Bad (reverse
// order), A-deliver New, advance to epoch k+1.
func (s *Server) applyDecision(k uint64, d consensus.Decision) {
	res, err := cnsvorder.Compute(s.ownInput, d)
	if err != nil {
		// A malformed decision would mean a broken consensus/sequencer
		// implementation; halting this replica is the only safe response.
		panic(fmt.Sprintf("oar server %v epoch %d: %v", s.cfg.ID, k, err))
	}

	// Lines 25–26: Opt-undeliver Bad, last delivered first (footnote 2).
	// Undo legality guarantees Bad is a suffix of O_delivered.
	for i := len(res.Bad) - 1; i >= 0; i-- {
		top := s.oDelivered.Len() - 1
		if top < 0 || s.oDelivered[top] != res.Bad[i] {
			panic(fmt.Sprintf("oar server %v epoch %d: Bad %v is not the O_delivered suffix %v",
				s.cfg.ID, k, res.Bad, s.oDelivered))
		}
		s.undoStack[top]()
		s.undoStack = s.undoStack[:top]
		s.oDelivered = s.oDelivered[:top]
		s.pos--
		s.statUndo.Add(1)
		s.tracer.OptUndeliver(s.cfg.ID, k, res.Bad[i])
	}

	// Lines 27–29: A-deliver New, replying with the conservative weight Π.
	full := proto.FullWeight(s.n)
	for _, req := range res.New {
		s.bufferRequest(req) // consensus may carry payloads we never received
		result, _ := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.statA.Add(1)
		s.tracer.ADeliver(s.cfg.ID, k, req.ID, s.pos, result)
		s.send(req.ID.Client, proto.MarshalReply(proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  k,
			Weight: full,
			Pos:    s.pos,
			Result: result,
		}))
	}

	// Lines 30–32: commit the epoch.
	for _, id := range s.oDelivered { // O_delivered ⊖ Bad (Bad already removed)
		s.aDelivered[id] = struct{}{}
	}
	for _, req := range res.New {
		s.aDelivered[req.ID] = struct{}{}
	}
	s.tracer.EpochClose(s.cfg.ID, k, s.ownInput, res)
	s.oDelivered = nil
	s.undoStack = nil
	s.ownInput = cnsvorder.Input{}
	s.inPhase2 = false
	s.epoch = k + 1
	s.statEpochs.Add(1)

	// Drop per-epoch bookkeeping we no longer need.
	delete(s.cons, k)
	delete(s.decisions, k)
	delete(s.phase2Sent, k)
	delete(s.phase2Started, k)
	delete(s.pendingPhase2, k)
	delete(s.seqOrderBuf, k)

	// Catch up with the new epoch: buffered orderings, a pending PhaseII,
	// or — if we are the new sequencer — leftover unordered requests.
	if orders, ok := s.seqOrderBuf[s.epoch]; ok {
		delete(s.seqOrderBuf, s.epoch)
		for _, o := range orders {
			s.handleSeqOrder(o)
		}
	}
	if _, ok := s.pendingPhase2[s.epoch]; ok {
		delete(s.pendingPhase2, s.epoch)
		s.handlePhaseII(s.epoch)
		return
	}
	s.maybeOrder()
}

// tick drives the periodic duties: heartbeats, Task 1a batching, Task 1c
// suspicion, and consensus timeouts.
func (s *Server) tick(now time.Time) {
	if s.cfg.HeartbeatInterval > 0 && now.Sub(s.lastHeartbeat) >= s.cfg.HeartbeatInterval {
		s.lastHeartbeat = now
		s.sendToPeers(proto.MarshalHeartbeat())
	}

	if !s.inPhase2 {
		// Task 1a catch-up (e.g. requests that arrived during phase 2).
		s.maybeOrder()
		// Task 1c: when p suspects the sequencer, R-broadcast (k, PhaseII).
		seq := s.sequencer()
		if seq != s.cfg.ID && s.cfg.Detector.Suspected(seq, now) {
			s.broadcastPhaseII()
		}
	}

	// Drive the active consensus instance (coordinator suspicion).
	if s.inPhase2 {
		if inst, ok := s.cons[s.epoch]; ok {
			inst.Tick(now)
		}
	}
}

// Epoch returns the current epoch (k). Intended for tests and tools; it is
// only safe to read when the server is quiescent or from its own tracer
// callbacks.
func (s *Server) Epoch() uint64 { return s.epoch }
