package core

import "sync/atomic"

// StaleReadFloorBug re-introduces the read-floor bug the read fast path
// shipped without: when enabled, a fast-path read judges candidate replies
// against the high-water position captured when the read was ISSUED instead
// of the client's live high-water at each reply. A write adopted between
// issue and reply then no longer raises the read's floor, so a replica
// answering from a prefix that predates the write can gather an adopting
// majority — a read-monotonicity / read-your-writes violation the trace
// checker flags.
//
// This is a fault-injection hook for the nemesis harness (it proves the
// search actually finds planted bugs, end to end through search and
// shrinking); it must never be enabled outside tests. It is process-global
// and racy-by-design cheap: an atomic load on the read-reply path.
var StaleReadFloorBug atomic.Bool
