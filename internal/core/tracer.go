// Package core implements the Optimistic Active Replication (OAR) protocol
// of Felber & Schiper (ICDCS 2001): the client-side weight-quorum algorithm
// of Figure 5 and the server-side epoch algorithm of Figure 6 (Tasks 0,
// 1a, 1b, 1c and 2), with conservative ordering per Figure 7 via
// Maj-validity consensus.
//
// Execution model: each server is one goroutine owning all protocol state —
// the paper's "tasks execute in any order, but in mutual exclusion" — fed by
// a transport inbox and a timer tick. During phase 2, Task 0 (buffering),
// heartbeats and consensus stay live while Tasks 1a/1b are suppressed for
// the epoch, exactly as the "wait until decide" in Figure 6 implies.
package core

import (
	"repro/internal/backend"
)

// Tracer observes protocol events. The interface itself lives in
// internal/backend (every ordering backend emits the same event
// vocabulary); this alias keeps core's historical spelling — the paper's
// events are defined here — valid everywhere.
type Tracer = backend.Tracer

// NopTracer returns the tracer that ignores all events.
func NopTracer() Tracer { return backend.NopTracer() }

// MultiTracer fans every event out to all given tracers (nil entries are
// skipped), letting e.g. a trace checker and a timeline printer observe the
// same run.
func MultiTracer(tracers ...Tracer) Tracer { return backend.MultiTracer(tracers...) }
