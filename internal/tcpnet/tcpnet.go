// Package tcpnet implements the transport abstraction over TCP, for running
// replicas and clients as separate OS processes (cmd/oar-server,
// cmd/oar-client).
//
// Wire format: a connection starts with a handshake — the sender's NodeID
// (8 bytes, big-endian two's complement) and its listen address (2-byte
// length + bytes; empty if none) — followed by length-prefixed frames
// (4-byte big-endian length, then payload). The advertised listen address
// lets a server dial back clients it has never been configured with (replies
// go to the request's originating NodeID). One outgoing connection per destination
// preserves the FIFO property of the model; dialing is lazy with
// exponential backoff, and frames queue unboundedly while a peer is down.
// Each sender wakeup drains its whole queued backlog, assembles it into one
// length-prefixed burst, and hands it to a buffered writer that flushes when
// the queue runs dry (plus an optional Config.FlushWindow linger), so message
// bursts — including proto.Batch envelopes produced by the replicas — cost
// one buffered write and one syscall instead of one per message —
// matching the reliable-channel abstraction for crash-stop runs (frames in
// flight during a genuine TCP reset can be lost; the protocols above tolerate
// this exactly the way they tolerate a slow channel, via relays and
// consensus).
// Frames are pooled in both directions (transport.Frame): sends recycle
// their buffers once written, and received frames are recycled by the
// consuming event loop's Message.Release.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// MaxFrame bounds a single message (16 MiB), protecting against corrupt
// length prefixes.
const MaxFrame = 16 << 20

// Config configures a TCP node.
type Config struct {
	// ID is this process's node ID.
	ID proto.NodeID
	// Listen is the local listen address, e.g. ":7000". Empty means
	// client-only (no inbound connections are accepted; suitable for
	// clients, which only receive replies over their outgoing dials... and
	// therefore must set Listen too in practice — replies are sent to the
	// client's listen address).
	Listen string
	// Peers maps node IDs to "host:port" addresses for outgoing traffic.
	// Additional peers are learned dynamically from inbound handshakes.
	Peers map[proto.NodeID]string
	// Advertise is the address announced in outbound handshakes so peers can
	// dial back (e.g. the externally visible form of Listen). Empty defaults
	// to the bound listen address.
	Advertise string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryMax bounds the reconnect backoff (default 1s).
	RetryMax time.Duration
	// FlushWindow is how long a sender lingers after draining its queue
	// before flushing buffered frames to the socket, coalescing bursts into
	// fewer syscalls. Zero flushes as soon as the queue is idle (no added
	// latency); a small positive value (tens of microseconds) trades a little
	// latency for larger writes under streaming load.
	FlushWindow time.Duration
}

// sendBufSize is the bufio buffer in front of each outgoing socket. Frames
// larger than this still work: bufio writes through when its buffer fills.
const sendBufSize = 64 << 10

// Stats counts a node's wire traffic: whole frames (one frame may be a
// proto.Batch carrying many protocol messages) and payload bytes, in both
// directions. Byte counts exclude the 4-byte length prefixes and the
// connection handshakes.
type Stats struct {
	FramesSent     uint64
	FramesReceived uint64
	BytesSent      uint64
	BytesReceived  uint64
}

// Node is a TCP transport endpoint.
type Node struct {
	cfg   Config
	ln    net.Listener
	inbox *transport.Queue

	framesSent     atomic.Uint64
	framesReceived atomic.Uint64
	bytesSent      atomic.Uint64
	bytesReceived  atomic.Uint64

	mu      sync.Mutex
	outs    map[proto.NodeID]*outgoing
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

var _ transport.Node = (*Node)(nil)

// outgoing is a per-destination sender: an unbounded queue of pooled frames
// drained by one goroutine that (re)dials as needed, preserving FIFO order.
// The single consumer is woken through signal, which also supports the timed
// wait of the flush window.
type outgoing struct {
	mu     sync.Mutex
	queue  []*transport.Frame
	spare  []*transport.Frame // drained queue storage, recycled by popBatch
	closed bool
	signal chan struct{} // capacity 1; single consumer
}

// pop outcomes.
const (
	popFrames  = iota // one or more frames were dequeued
	popTimeout        // the wait elapsed with the queue still empty
	popClosed         // the sender was closed
)

// popBatch dequeues the entire queued backlog in one swap, so a wakeup
// under streaming load drains every frame the senders accumulated (the
// caller coalesces them into a single buffered write). wait < 0 blocks until
// a frame or close; wait >= 0 gives up after that duration (0 = poll). The
// timeout timer is only allocated once the queue is actually observed empty,
// so the streaming-load path pays no timer churn. The returned slice is
// owned by the caller until its next popBatch call.
func (o *outgoing) popBatch(wait time.Duration) ([]*transport.Frame, int) {
	var timer *time.Timer
	var timeoutC <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		o.mu.Lock()
		if len(o.queue) > 0 {
			batch := o.queue
			o.queue = o.spare[:0]
			o.spare = batch[:0] // recycled on the next swap
			o.mu.Unlock()
			return batch, popFrames
		}
		closed := o.closed
		o.mu.Unlock()
		if closed {
			return nil, popClosed
		}
		if wait == 0 {
			return nil, popTimeout
		}
		if wait > 0 && timer == nil {
			timer = time.NewTimer(wait)
			timeoutC = timer.C
		}
		select {
		case <-o.signal:
		case <-timeoutC:
			return nil, popTimeout
		}
	}
}

// wake nudges the consumer (non-blocking; capacity-1 channel).
func (o *outgoing) wake() {
	select {
	case o.signal <- struct{}{}:
	default:
	}
}

// New creates a node and starts listening (if configured).
func New(cfg Config) (*Node, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	n := &Node{
		cfg:     cfg,
		inbox:   transport.NewQueue(),
		outs:    make(map[proto.NodeID]*outgoing),
		inbound: make(map[net.Conn]struct{}),
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.Listen, err)
		}
		n.ln = ln
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the bound listen address (nil without a listener).
func (n *Node) Addr() net.Addr {
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// ID implements transport.Node.
func (n *Node) ID() proto.NodeID { return n.cfg.ID }

// Recv implements transport.Node.
func (n *Node) Recv() <-chan transport.Message { return n.inbox.Out() }

// Stats returns a snapshot of the node's wire-traffic counters. Sent frames
// are counted when written to the socket buffer (not when queued), so after
// a quiescent period the counts reflect what actually reached the kernel.
func (n *Node) Stats() Stats {
	return Stats{
		FramesSent:     n.framesSent.Load(),
		FramesReceived: n.framesReceived.Load(),
		BytesSent:      n.bytesSent.Load(),
		BytesReceived:  n.bytesReceived.Load(),
	}
}

// SetPeer adds or updates a peer address (e.g. when a client learns its
// reply-to address dynamically). Safe to call concurrently.
func (n *Node) SetPeer(id proto.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.Peers == nil {
		n.cfg.Peers = make(map[proto.NodeID]string)
	}
	n.cfg.Peers[id] = addr
}

// Send implements transport.Node. The payload is borrowed: it is copied
// into the queue, so the caller may reuse its buffer immediately.
func (n *Node) Send(to proto.NodeID, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(payload))
	}
	// Copy into a pooled frame: the send loop releases it once the bytes
	// are on their way to the socket.
	f := transport.GetFrame()
	f.Buf = append(f.Buf, payload...)
	return n.enqueue(to, f)
}

// SendFrame implements transport.FrameSender: ownership of the pooled frame
// transfers to the node, which releases it after writing the bytes to the
// socket buffer (or on close) — no copy on the way in.
func (n *Node) SendFrame(to proto.NodeID, f *transport.Frame) error {
	if size := len(f.Buf); size > MaxFrame {
		f.Release()
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", size)
	}
	return n.enqueue(to, f)
}

func (n *Node) enqueue(to proto.NodeID, f *transport.Frame) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		f.Release()
		return transport.ErrClosed
	}
	out, ok := n.outs[to]
	if !ok {
		out = &outgoing{signal: make(chan struct{}, 1)}
		n.outs[to] = out
		n.wg.Add(1)
		go n.sendLoop(to, out)
	}
	n.mu.Unlock()

	out.mu.Lock()
	if out.closed {
		out.mu.Unlock()
		f.Release()
		return transport.ErrClosed
	}
	out.queue = append(out.queue, f) //oar:frame-handoff released by sendLoop after the socket write, or by the drain in closeLocked
	out.mu.Unlock()
	out.wake()
	return nil
}

// Close shuts the node down: listener, inbox and all senders.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	outs := make([]*outgoing, 0, len(n.outs))
	for _, o := range n.outs {
		outs = append(outs, o)
	}
	conns := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	if n.ln != nil {
		_ = n.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close() // unblocks readLoops
	}
	for _, o := range outs {
		o.mu.Lock()
		o.closed = true
		o.mu.Unlock()
		o.wake()
	}
	n.wg.Wait()
	n.inbox.Close()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop consumes one inbound connection: handshake, then frames.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	var idBuf [8]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		return
	}
	from := proto.NodeID(int32(binary.BigEndian.Uint64(idBuf[:]))) //nolint:gosec // truncation is the inverse of the handshake encoding
	var addrLen [2]byte
	if _, err := io.ReadFull(conn, addrLen[:]); err != nil {
		return
	}
	if size := binary.BigEndian.Uint16(addrLen[:]); size > 0 {
		addr := make([]byte, size)
		if _, err := io.ReadFull(conn, addr); err != nil {
			return
		}
		// Learn the peer's dial-back address unless statically configured.
		n.mu.Lock()
		if n.cfg.Peers == nil {
			n.cfg.Peers = make(map[proto.NodeID]string)
		}
		if _, ok := n.cfg.Peers[from]; !ok {
			n.cfg.Peers[from] = string(addr)
		}
		n.mu.Unlock()
	}

	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size > MaxFrame {
			return // corrupt stream; drop the connection
		}
		// Read into a pooled frame; the receiving event loop's Release
		// recycles it once the message is handled.
		f := transport.GetFrame()
		if cap(f.Buf) < int(size) {
			f.Buf = make([]byte, size)
		} else {
			f.Buf = f.Buf[:size]
		}
		if _, err := io.ReadFull(conn, f.Buf); err != nil {
			f.Release()
			return
		}
		n.framesReceived.Add(1)
		n.bytesReceived.Add(uint64(size))
		n.inbox.Push(transport.OwnedMessage(from, f.Buf, f))
	}
}

// sendLoop drains one destination queue over a (re)dialed connection. Each
// wakeup takes the entire queued backlog in one swap, length-prefixes every
// frame into a reusable scratch buffer, releases the pooled frames, and
// hands the whole burst to the bufio.Writer as a single write; the writer is
// flushed only when the queue runs dry (plus the optional FlushWindow
// linger). A burst of messages therefore costs one buffered write and one
// syscall instead of one per frame. Frames buffered but not yet flushed when
// the connection breaks are lost exactly like frames in flight on the wire —
// the loss mode the protocols above already tolerate.
func (n *Node) sendLoop(to proto.NodeID, out *outgoing) {
	defer n.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	defer func() {
		if conn != nil {
			if bw != nil {
				_ = bw.Flush()
			}
			conn.Close()
		}
		// Recycle whatever was still queued at close.
		out.mu.Lock()
		leftover := out.queue
		out.queue = nil
		out.mu.Unlock()
		for _, f := range leftover {
			f.Release()
		}
	}()
	backoff := 10 * time.Millisecond
	buffered := false // bytes written to bw since the last flush
	var burst []byte  // reusable length-prefixed assembly buffer
	var lenBuf [4]byte

	for {
		wait := time.Duration(-1) // nothing buffered: block until work arrives
		if buffered {
			wait = n.cfg.FlushWindow // linger briefly for coalescing
		}
		batch, st := out.popBatch(wait)
		switch st {
		case popClosed:
			return
		case popTimeout:
			// Queue idle: push the buffered burst to the kernel.
			if bw != nil {
				if err := bw.Flush(); err != nil {
					conn.Close()
					conn, bw = nil, nil
				}
			}
			buffered = false
			continue
		}

		// Assemble the burst: [len][frame][len][frame]... then recycle the
		// pooled frames — their bytes now live in the scratch buffer.
		burst = burst[:0]
		frames := 0
		bytes := 0
		for _, f := range batch {
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(f.Buf))) //nolint:gosec // length checked in Send
			burst = append(burst, lenBuf[:]...)
			burst = append(burst, f.Buf...)
			frames++
			bytes += len(f.Buf)
			f.Release()
		}

		for {
			if out.isClosed() {
				return
			}
			if conn == nil {
				c, err := n.dial(to)
				if err != nil {
					time.Sleep(backoff)
					backoff = min(backoff*2, n.cfg.RetryMax)
					continue
				}
				conn = c
				bw = bufio.NewWriterSize(conn, sendBufSize)
				backoff = 10 * time.Millisecond
			}
			if err := writeAll(bw, burst); err != nil {
				conn.Close()
				conn, bw = nil, nil
				continue // the burst is retried on a fresh connection
			}
			n.framesSent.Add(uint64(frames))
			n.bytesSent.Add(uint64(bytes))
			buffered = true
			break
		}
		if cap(burst) > sendBufMaxIdle {
			burst = nil
		}
	}
}

// sendBufMaxIdle caps the capacity the burst-assembly scratch may retain
// between wakeups.
const sendBufMaxIdle = 256 << 10

func (o *outgoing) isClosed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.closed
}

func (n *Node) dial(to proto.NodeID) (net.Conn, error) {
	n.mu.Lock()
	addr, ok := n.cfg.Peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for %v: %w", to, errUnknownPeer)
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	var idBuf [8]byte
	binary.BigEndian.PutUint64(idBuf[:], uint64(int64(n.cfg.ID)))
	if err := writeAll(conn, idBuf[:]); err != nil {
		conn.Close()
		return nil, err
	}
	advertise := n.cfg.Advertise
	if advertise == "" && n.ln != nil {
		advertise = n.ln.Addr().String()
	}
	if len(advertise) > 0xFFFF {
		advertise = ""
	}
	var addrLen [2]byte
	binary.BigEndian.PutUint16(addrLen[:], uint16(len(advertise)))
	if err := writeAll(conn, addrLen[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if advertise != "" {
		if err := writeAll(conn, []byte(advertise)); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}

var errUnknownPeer = errors.New("unknown peer")

func writeAll(w io.Writer, b []byte) error {
	for len(b) > 0 {
		m, err := w.Write(b)
		if err != nil {
			return err
		}
		b = b[m:]
	}
	return nil
}
