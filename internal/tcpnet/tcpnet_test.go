package tcpnet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/proto"
	"repro/internal/transport"
)

func newNode(t *testing.T, id proto.NodeID) *Node {
	t.Helper()
	n, err := New(Config{ID: id, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func connect(nodes ...*Node) {
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.SetPeer(b.ID(), b.Addr().String())
			}
		}
	}
}

// TestStatsCounters: frames and payload bytes are counted in both
// directions (handshakes and length prefixes excluded).
func TestStatsCounters(t *testing.T) {
	a, b := newNode(t, 0), newNode(t, 1)
	connect(a, b)
	payload := []byte("counted-payload")
	if err := a.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b, 5*time.Second)
	if string(got.Payload) != string(payload) {
		t.Fatalf("payload = %q", got.Payload)
	}
	as, bs := a.Stats(), b.Stats()
	if as.FramesSent != 1 || as.BytesSent != uint64(len(payload)) {
		t.Errorf("sender stats = %+v, want 1 frame / %d bytes", as, len(payload))
	}
	if bs.FramesReceived != 1 || bs.BytesReceived != uint64(len(payload)) {
		t.Errorf("receiver stats = %+v, want 1 frame / %d bytes", bs, len(payload))
	}
	if as.FramesReceived != 0 || bs.FramesSent != 0 {
		t.Errorf("phantom reverse traffic: a=%+v b=%+v", as, bs)
	}
}

func recvOne(t *testing.T, n *Node, timeout time.Duration) transport.Message {
	t.Helper()
	select {
	case m, ok := <-n.Recv():
		if !ok {
			t.Fatal("inbox closed")
		}
		return m
	case <-time.After(timeout):
		t.Fatal("timed out")
	}
	return transport.Message{}
}

func TestSendReceive(t *testing.T) {
	a, b := newNode(t, 0), newNode(t, 1)
	connect(a, b)
	if err := a.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b, 5*time.Second)
	if m.From != 0 || string(m.Payload) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestFIFOOrder(t *testing.T) {
	a, b := newNode(t, 0), newNode(t, 1)
	connect(a, b)
	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		m := recvOne(t, b, 5*time.Second)
		got := int(m.Payload[0]) | int(m.Payload[1])<<8
		if got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestBidirectional(t *testing.T) {
	a, b := newNode(t, 0), newNode(t, 1)
	connect(a, b)
	if err := a.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 5*time.Second)
	if err := b.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, a, 5*time.Second)
	if string(m.Payload) != "pong" {
		t.Fatalf("got %q", m.Payload)
	}
}

func TestClientIDsSurviveHandshake(t *testing.T) {
	a, b := newNode(t, proto.ClientID(3)), newNode(t, 1)
	connect(a, b)
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b, 5*time.Second)
	if m.From != proto.ClientID(3) {
		t.Fatalf("from = %v, want %v", m.From, proto.ClientID(3))
	}
}

func TestSendToUnknownPeerQueues(t *testing.T) {
	a := newNode(t, 0)
	// No address for node 1: Send must not fail (frames wait), and once the
	// peer appears, they flow.
	if err := a.Send(1, []byte("early")); err != nil {
		t.Fatal(err)
	}
	b := newNode(t, 1)
	a.SetPeer(1, b.Addr().String())
	m := recvOne(t, b, 5*time.Second)
	if string(m.Payload) != "early" {
		t.Fatalf("got %q", m.Payload)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	a := newNode(t, 0)
	if err := a.Send(1, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, err := New(Config{ID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := a.Send(1, []byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
	a.Close() // idempotent
}

// TestOARClusterOverTCP runs the full protocol over real sockets: three
// replicas + one client, a handful of requests, position-consistent replies.
func TestOARClusterOverTCP(t *testing.T) {
	group := proto.Group(3)
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = newNode(t, group[i])
	}
	cliNode := newNode(t, proto.ClientID(0))
	all := append(append([]*Node(nil), nodes...), cliNode)
	connect(all...)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	for i := range nodes {
		machine, _ := app.New("recorder")
		srv, err := core.NewServer(core.ServerConfig{
			ID:       group[i],
			Group:    group,
			Node:     nodes[i],
			Machine:  machine,
			Detector: fd.NewTimeout(200*time.Millisecond, group, start),
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Run(ctx) }()
	}

	cli, err := core.NewClient(core.ClientConfig{
		ID:    proto.ClientID(0),
		Group: group,
		Node:  cliNode,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli.Start()
	defer func() {
		cancel()
		cli.Stop()
	}()

	for i := 1; i <= 5; i++ {
		ictx, icancel := context.WithTimeout(context.Background(), 10*time.Second)
		reply, err := cli.Invoke(ictx, []byte(fmt.Sprintf("m%d", i)))
		icancel()
		if err != nil {
			t.Fatalf("invoke m%d over TCP: %v", i, err)
		}
		if reply.Pos != uint64(i) {
			t.Fatalf("m%d at pos %d", i, reply.Pos)
		}
	}
}

// TestDialBackViaHandshake: a server with no static peer entry for the
// client must learn the client's address from the handshake and reply.
func TestDialBackViaHandshake(t *testing.T) {
	srv := newNode(t, 0)
	cli := newNode(t, proto.ClientID(0))
	cli.SetPeer(0, srv.Addr().String()) // only the client knows the server

	if err := cli.Send(0, []byte("request")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, srv, 5*time.Second)
	if m.From != proto.ClientID(0) {
		t.Fatalf("from = %v", m.From)
	}
	// The server can now reach the client without any SetPeer call.
	if err := srv.Send(proto.ClientID(0), []byte("reply")); err != nil {
		t.Fatal(err)
	}
	r := recvOne(t, cli, 5*time.Second)
	if string(r.Payload) != "reply" {
		t.Fatalf("got %q", r.Payload)
	}
}

// TestBatchFrameDeliversInnerInOrder sends a proto.Batch envelope between
// nodes and checks the receiver can expand it to the inner messages in the
// original order (the contract the replicas rely on when coalescing the hot
// path over TCP).
func TestBatchFrameDeliversInnerInOrder(t *testing.T) {
	a, b := newNode(t, 0), newNode(t, 1)
	connect(a, b)
	inner := make([][]byte, 50)
	for i := range inner {
		inner[i] = []byte(fmt.Sprintf("msg-%03d", i))
	}
	if err := transport.SendBatch(a, 0, 1, inner); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b, 5*time.Second)
	msgs, ok := transport.ExpandBatch(m)
	if !ok {
		t.Fatalf("expected a batch frame, got %q", m.Payload)
	}
	if len(msgs) != len(inner) {
		t.Fatalf("got %d inner messages, want %d", len(msgs), len(inner))
	}
	for i, mm := range msgs {
		if string(mm.Payload) != string(inner[i]) {
			t.Fatalf("inner %d: got %q want %q", i, mm.Payload, inner[i])
		}
		if mm.From != 0 {
			t.Fatalf("inner %d: from %v", i, mm.From)
		}
	}
}

// TestFlushWindowCoalescesAndPreservesOrder floods one destination queue
// while a FlushWindow is configured and verifies every frame arrives, in
// order — the buffered writer must not drop or reorder across flush
// boundaries or reconnects.
func TestFlushWindowCoalescesAndPreservesOrder(t *testing.T) {
	a, err := New(Config{ID: 0, Listen: "127.0.0.1:0", FlushWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b := newNode(t, 1)
	connect(a, b)

	const frames = 500
	for i := 0; i < frames; i++ {
		if err := a.Send(1, []byte(fmt.Sprintf("f%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		m := recvOne(t, b, 5*time.Second)
		if want := fmt.Sprintf("f%04d", i); string(m.Payload) != want {
			t.Fatalf("frame %d: got %q want %q", i, m.Payload, want)
		}
	}
}
