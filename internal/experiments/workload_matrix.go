package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/workload"
)

// E11WorkloadMatrix sweeps the workload engine over every selected ordering
// backend × key distribution (uniform, zipfian) × loop discipline (closed,
// open) on a 2-shard kv deployment, and reports what no earlier experiment
// did: client-observed latency percentiles — the metric the paper's
// optimistic delivery exists to cut — next to throughput, for workload
// shapes chosen by the operator rather than hard-coded by the harness.
//
// The open-loop rows are rate-calibrated, not absolute: each (backend,
// distribution) pair first runs the closed loop, and the open loop then
// offers half that measured capacity, so open-loop percentiles are
// comparable across backends of very different speeds ("the same relative
// load") and stay meaningful on CI boxes of any size. Open-loop samples are
// measured from each request's scheduled arrival (coordinated-omission
// corrected — see EXPERIMENTS.md "Measurement methodology"), which is why a
// zipfian open row's tail can far exceed its closed sibling: the hottest
// group's queue is visible instead of throttling the load.
//
// The OAR cells run one trace checker per ordering group, so every latency
// number only counts where Propositions 1–7 still hold. The "hottest group"
// column reports the observed routing split (from shard.Client.Routed):
// ~50% under uniform keys, and the head key's true weight under zipfian.
func E11WorkloadMatrix(cfg Config) (Result, error) {
	res := Result{
		ID:     "E11",
		Title:  "workload matrix: backend × key distribution × loop discipline (2 shards × n=3, kv, instant network)",
		Header: []string{"backend", "dist", "mode", "target/s", "req/s", "p50", "p90", "p99", "max", "hottest", "violations"},
		Notes: []string{
			"open-loop rows offer half the closed-loop capacity measured for the same (backend, dist) cell",
			"open-loop latency is measured from each request's scheduled arrival (coordinated omission corrected)",
			"hottest = share of requests routed to the busiest ordering group (uniform ≈ 50%, zipfian = head-key weight)",
			"OAR cells run one trace checker per group; baselines are unchecked (-)",
		},
	}
	dists, err := cfg.dists()
	if err != nil {
		return res, err
	}
	wantClosed, wantOpen, err := cfg.workloadModes()
	if err != nil {
		return res, err
	}
	requests := cfg.requests(3000)
	for _, p := range cfg.protocols() {
		for _, dist := range dists {
			// The closed cell always runs: it is either a row of its own, a
			// calibration for the open row, or both.
			closed, err := e11Cell(cfg, p, dist, 0, requests)
			if err != nil {
				return res, fmt.Errorf("E11 %v/%s/closed: %w", p, dist, err)
			}
			if wantClosed {
				res.Rows = append(res.Rows, closed.row)
				res.Latency = append(res.Latency, closed.sample)
			}
			if wantOpen {
				rate := closed.rep.Throughput / 2
				open, err := e11Cell(cfg, p, dist, rate, requests)
				if err != nil {
					return res, fmt.Errorf("E11 %v/%s/open: %w", p, dist, err)
				}
				res.Rows = append(res.Rows, open.row)
				res.Latency = append(res.Latency, open.sample)
			}
		}
	}
	return res, nil
}

// dists resolves the -dist selection.
func (c Config) dists() ([]string, error) {
	switch c.Dist {
	case "":
		return workload.Dists(), nil
	case workload.Uniform, workload.Zipfian:
		return []string{c.Dist}, nil
	default:
		return nil, fmt.Errorf("unknown key distribution %q (have: uniform, zipfian)", c.Dist)
	}
}

// workloadModes resolves the -workload selection.
func (c Config) workloadModes() (closed, open bool, err error) {
	switch c.Workload {
	case "":
		return true, true, nil
	case "closed":
		return true, false, nil
	case "open":
		return false, true, nil
	default:
		return false, false, fmt.Errorf("unknown workload mode %q (have: closed, open)", c.Workload)
	}
}

// e11Result is one cell's outcome: the table row, the machine-readable
// sample and the raw workload report (the closed cell's report calibrates
// the open cell's rate).
type e11Result struct {
	row    []string
	sample LatencySample
	rep    workload.Report
}

// routedder is the routing-split surface of the sharded client.
type routedder interface{ Routed() []uint64 }

// e11Cell runs one (backend, distribution, rate) cell: boot a 2-shard
// cluster, drive the workload through two client endpoints, and collect
// latency, throughput, routing split and checker verdicts.
func e11Cell(cfg Config, p cluster.Protocol, dist string, rate float64, requests int) (e11Result, error) {
	const shards = 2
	checked := p == cluster.OAR
	var cks []*check.Checker
	opts := cluster.Options{
		Protocol:    p,
		N:           3,
		Shards:      shards,
		Machine:     "kv",
		FD:          cluster.FDNever,
		Net:         memnet.Options{Seed: 31}, // instant delivery
		BatchWindow: cfg.BatchWindow,
		MaxBatch:    cfg.MaxBatch,
	}
	if checked {
		cks = make([]*check.Checker, shards)
		for i := range cks {
			cks[i] = check.New(3)
		}
		opts.TracerFor = func(s int) backend.Tracer { return cks[s] }
	}
	c, err := cluster.New(opts)
	if err != nil {
		return e11Result{}, err
	}
	defer c.Stop()

	const endpoints = 2
	invokers := make([]workload.Invoke, endpoints)
	clients := make([]cluster.Invoker, endpoints)
	for i := range invokers {
		cli, err := c.NewClient()
		if err != nil {
			return e11Result{}, err
		}
		clients[i] = cli
		invokers[i] = func(ctx context.Context, cmd []byte) error {
			_, err := cli.Invoke(ctx, cmd)
			return err
		}
	}
	spec := workload.Spec{
		Workers:   8,
		Rate:      rate,
		Requests:  requests,
		ReadRatio: cfg.ReadRatio,
		Keys:      256,
		Dist:      dist,
		Seed:      17,
		ValueSize: 16,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*invokeTimeout)
	defer cancel()
	rep, err := workload.Run(ctx, spec, invokers, nil)
	if err != nil {
		return e11Result{}, err
	}

	// Routing split: sum the per-group counts over all endpoints.
	routed := make([]uint64, shards)
	var total uint64
	for _, cli := range clients {
		if rc, ok := cli.(routedder); ok {
			for g, n := range rc.Routed() {
				routed[g] += n
				total += n
			}
		}
	}
	hot, hotShare := 0, 0.0
	if total > 0 {
		for g, n := range routed {
			if share := float64(n) / float64(total); share > hotShare {
				hot, hotShare = g, share
			}
		}
	}

	violations := "-"
	if checked {
		n := 0
		for _, ck := range cks {
			n += len(ck.Verify())
		}
		violations = fmt.Sprint(n)
	}
	mode, target := "closed", "-"
	if rate > 0 {
		mode, target = "open", fmt.Sprintf("%.0f", rate)
	}
	s := rep.Latency
	row := []string{
		p.String(), dist, mode, target,
		fmt.Sprintf("%.0f", rep.Throughput),
		s.P50.Round(time.Microsecond).String(),
		s.P90.Round(time.Microsecond).String(),
		s.P99.Round(time.Microsecond).String(),
		s.Max.Round(time.Microsecond).String(),
		fmt.Sprintf("g%d %.0f%%", hot, 100*hotShare),
		violations,
	}
	sample := latencySample(map[string]string{
		"backend": p.String(), "dist": dist, "mode": mode,
	}, s, rep.Throughput)
	return e11Result{row: row, sample: sample, rep: rep}, nil
}
