// Package experiments implements the reproduction experiment suite of
// DESIGN.md: one function per experiment (E1–E7) and ablation (A1–A2), each
// returning a formatted table. The same code backs the root bench_test.go
// benchmarks and the cmd/oar-bench tool; EXPERIMENTS.md records the results.
//
// The paper has no measurement section, so these experiments quantify its
// qualitative claims: one-phase latency in failure-free runs (E2, E5),
// fail-over bounded by detection time (E3), rarity and harmlessness of
// Opt-undeliver (E4), the cost of the client weight quorum (E7), the
// O_delivered garbage-collection remark (E6) — and, centrally, that the
// Isis-style baseline really does produce external inconsistencies that OAR
// eliminates (E1).
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rmcast"
)

// Result is one experiment's output table, plus the machine-readable
// latency samples behind it.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Latency carries one structured sample per measured cell — the stable
	// schema BENCH_*.json trend tracking consumes (table Rows are formatted
	// strings; these are not).
	Latency []LatencySample
}

// LatencySample is the machine-readable latency record of one experiment
// cell. Durations are nanoseconds; the json field names are a stable schema
// (CI fails the build when they go missing or zero — see oar-bench
// -require-latency).
type LatencySample struct {
	// Labels identifies the cell, e.g. {"backend": "oar", "dist": "zipfian",
	// "mode": "open"}.
	Labels map[string]string `json:"labels"`
	Count  uint64            `json:"count"`
	MeanNS int64             `json:"mean_ns"`
	P50NS  int64             `json:"p50_ns"`
	P90NS  int64             `json:"p90_ns"`
	P99NS  int64             `json:"p99_ns"`
	MinNS  int64             `json:"min_ns"`
	MaxNS  int64             `json:"max_ns"`
	// ReqPerSec is the cell's measured throughput (0 when the cell measured
	// latency only).
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
}

// latencySample builds the machine-readable record for one cell.
func latencySample(labels map[string]string, s metrics.Snapshot, reqPerSec float64) LatencySample {
	return LatencySample{
		Labels:    labels,
		Count:     s.Count,
		MeanNS:    int64(s.Mean),
		P50NS:     int64(s.P50),
		P90NS:     int64(s.P90),
		P99NS:     int64(s.P99),
		MinNS:     int64(s.Min),
		MaxNS:     int64(s.Max),
		ReqPerSec: reqPerSec,
	}
}

// String renders the result as text.
func (r Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, metrics.Table(r.Header, r.Rows))
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Config scales the suite.
type Config struct {
	// Quick shrinks request counts and sweep ranges (used by `go test`).
	Quick bool
	// BatchWindow and MaxBatch are the sequencer batching knobs applied to
	// the "batched" rows of E8 and all rows of E9 (zero values use the core
	// defaults).
	BatchWindow time.Duration
	MaxBatch    int
	// Shards, when positive, overrides E9's shard-count sweep to the powers
	// of two up to this value (default sweep: 1, 2, 4).
	Shards int
	// Protocols, when non-empty, restricts the backend sweeps (E2, E5, E10,
	// E11) to the given backends (the -protocol flag of oar-bench). Default:
	// all three built-ins.
	Protocols []cluster.Protocol
	// Workload restricts E11's loop-discipline sweep to "closed" or "open"
	// (the -workload flag); empty sweeps both.
	Workload string
	// Dist restricts E11's key-distribution sweep to "uniform" or "zipfian"
	// (the -dist flag); empty sweeps both.
	Dist string
	// ReadRatio is E11's read fraction (the -rw flag): 0 means the default
	// 50/50 mix, negative means all writes.
	ReadRatio float64
}

func (c Config) requests(full int) int {
	if c.Quick {
		return full / 10
	}
	return full
}

func (c Config) sizes() []int {
	if c.Quick {
		return []int{3, 5}
	}
	return []int{3, 5, 7}
}

// netOpts gives most experiments the same campus-network latency model
// (1–2ms one-way), making message hops visible in latencies. Sub-millisecond
// delays are not used because the OS sleep granularity on typical CI
// machines (~1ms) would flatten them; at 1–2ms the hop-count shapes the
// paper argues about are faithfully visible.
func netOpts(seed int64) memnet.Options {
	return memnet.Options{
		MinDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond,
		Seed:     seed,
	}
}

const invokeTimeout = 30 * time.Second

// runClosedLoop drives total requests through clients concurrent closed-loop
// clients and records per-request latency. Returns the elapsed wall time.
func runClosedLoop(c *cluster.Cluster, clients, total int, hist *metrics.Histogram) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	per := total / clients
	start := time.Now()
	for i := 0; i < clients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(i int, cli cluster.Invoker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), invokeTimeout)
			defer cancel()
			for j := 0; j < per; j++ {
				t0 := time.Now()
				if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("req %d %d", i, j))); err != nil {
					errCh <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if hist != nil {
					hist.Record(time.Since(t0))
				}
			}
			errCh <- nil
		}(i, cli)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// protocols under comparison in the latency/throughput experiments.
var protocols = []cluster.Protocol{cluster.OAR, cluster.FixedSeq, cluster.CTab}

// protocols returns the backends a sweep covers: the -protocol selection, or
// all three built-ins.
func (c Config) protocols() []cluster.Protocol {
	if len(c.Protocols) > 0 {
		return c.Protocols
	}
	return protocols
}

// E2FailureFreeLatency reproduces the Figure 2 claim: in failure-free runs
// OAR needs one ordering phase, like the sequencer baseline and unlike the
// consensus-per-batch baseline. Reports client latency and messages per
// request for each protocol and group size.
func E2FailureFreeLatency(cfg Config) (Result, error) {
	res := Result{
		ID:     "E2",
		Title:  "failure-free client latency (Figure 2 / one-phase claim)",
		Header: []string{"protocol", "n", "mean", "p50", "p99", "msgs/req"},
		Notes: []string{
			"expected shape: oar ≈ fixedseq + one reply delay, both well below ctab",
		},
	}
	requests := cfg.requests(400)
	for _, n := range cfg.sizes() {
		for _, p := range cfg.protocols() {
			c, err := cluster.New(cluster.Options{
				Protocol: p, N: n, FD: cluster.FDNever, Net: netOpts(int64(n)),
			})
			if err != nil {
				return res, err
			}
			hist := metrics.NewHistogram()
			c.Net(0).ResetStats()
			_, err = runClosedLoop(c, 1, requests, hist)
			stats := c.Net(0).Stats()
			c.Stop()
			if err != nil {
				return res, fmt.Errorf("E2 %v n=%d: %w", p, n, err)
			}
			s := hist.Snapshot()
			res.Rows = append(res.Rows, []string{
				p.String(), fmt.Sprint(n),
				s.Mean.Round(time.Microsecond).String(),
				s.P50.Round(time.Microsecond).String(),
				s.P99.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1f", float64(stats.MessagesSent)/float64(requests)),
			})
			res.Latency = append(res.Latency, latencySample(
				map[string]string{"protocol": p.String(), "n": fmt.Sprint(n)}, s, 0))
		}
	}
	return res, nil
}

// E5Throughput measures closed-loop throughput at several client counts.
func E5Throughput(cfg Config) (Result, error) {
	res := Result{
		ID:     "E5",
		Title:  "closed-loop throughput under the 1–2ms network, n=3",
		Header: []string{"protocol", "clients", "req/s"},
		Notes: []string{
			"oar tracks fixedseq at a ~1.5x latency handicap (the quorum reply);",
			"ctab is worst per request but batching lets it catch up at high concurrency",
		},
	}
	clientCounts := []int{1, 4, 16}
	if cfg.Quick {
		clientCounts = []int{1, 4}
	}
	requests := cfg.requests(800)
	for _, clients := range clientCounts {
		for _, p := range cfg.protocols() {
			c, err := cluster.New(cluster.Options{
				Protocol: p, N: 3, FD: cluster.FDNever, Net: netOpts(7),
			})
			if err != nil {
				return res, err
			}
			elapsed, err := runClosedLoop(c, clients, requests, nil)
			c.Stop()
			if err != nil {
				return res, fmt.Errorf("E5 %v c=%d: %w", p, clients, err)
			}
			res.Rows = append(res.Rows, []string{
				p.String(), fmt.Sprint(clients),
				fmt.Sprintf("%.0f", float64(requests)/elapsed.Seconds()),
			})
		}
	}
	return res, nil
}

// E3Failover measures the time from sequencer crash to the next adopted
// reply, as a function of the failure-detector timeout — the fail-over cost
// argument of Section 2.2.
func E3Failover(cfg Config) (Result, error) {
	res := Result{
		ID:     "E3",
		Title:  "fail-over time vs ◊S timeout (Figure 3 scenario)",
		Header: []string{"fd timeout", "recovery latency", "healthy latency"},
		Notes: []string{
			"recovery latency = crash of sequencer -> next reply adopted; " +
				"expected to track the detection timeout",
		},
	}
	timeouts := []time.Duration{10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	if cfg.Quick {
		timeouts = timeouts[:2]
	}
	reps := 5
	if cfg.Quick {
		reps = 2
	}
	for _, fdTimeout := range timeouts {
		var recovery, healthy time.Duration
		for r := 0; r < reps; r++ {
			c, err := cluster.New(cluster.Options{
				N: 3, Net: netOpts(int64(r)),
				FDTimeout:         fdTimeout,
				HeartbeatInterval: fdTimeout / 4,
			})
			if err != nil {
				return res, err
			}
			cli, err := c.NewClient()
			if err != nil {
				c.Stop()
				return res, err
			}
			ctx, cancel := context.WithTimeout(context.Background(), invokeTimeout)
			t0 := time.Now()
			if _, err := cli.Invoke(ctx, []byte("healthy")); err != nil {
				cancel()
				c.Stop()
				return res, fmt.Errorf("E3 healthy: %w", err)
			}
			healthy += time.Since(t0)

			c.Crash(0, 0) // the epoch-0 sequencer
			t0 = time.Now()
			if _, err := cli.Invoke(ctx, []byte("after-crash")); err != nil {
				cancel()
				c.Stop()
				return res, fmt.Errorf("E3 recovery: %w", err)
			}
			recovery += time.Since(t0)
			cancel()
			c.Stop()
		}
		res.Rows = append(res.Rows, []string{
			fdTimeout.String(),
			(recovery / time.Duration(reps)).Round(time.Microsecond).String(),
			(healthy / time.Duration(reps)).Round(time.Microsecond).String(),
		})
	}
	return res, nil
}

// E7QuorumRule isolates the price of the Figure 5 weight quorum: OAR's
// adopted-reply latency vs the first-reply rule of classic active
// replication (fixedseq), at identical network settings.
func E7QuorumRule(cfg Config) (Result, error) {
	res := Result{
		ID:     "E7",
		Title:  "client weight-quorum cost (Figure 5 rule vs first reply)",
		Header: []string{"n", "oar (majority weight)", "fixedseq (first reply)", "overhead"},
		Notes: []string{
			"the overhead buys external consistency: no adopted reply is ever invalidated",
		},
	}
	requests := cfg.requests(300)
	for _, n := range cfg.sizes() {
		var lat [2]time.Duration
		for i, p := range []cluster.Protocol{cluster.OAR, cluster.FixedSeq} {
			c, err := cluster.New(cluster.Options{
				Protocol: p, N: n, FD: cluster.FDNever, Net: netOpts(int64(n) * 3),
			})
			if err != nil {
				return res, err
			}
			hist := metrics.NewHistogram()
			_, err = runClosedLoop(c, 1, requests, hist)
			c.Stop()
			if err != nil {
				return res, fmt.Errorf("E7 %v n=%d: %w", p, n, err)
			}
			lat[i] = hist.Snapshot().P50
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n),
			lat[0].Round(time.Microsecond).String(),
			lat[1].Round(time.Microsecond).String(),
			fmt.Sprintf("%+.0f%%", 100*(float64(lat[0])-float64(lat[1]))/float64(lat[1])),
		})
	}
	return res, nil
}

// E6EpochGC measures the Section 5.3 Remark: periodically forcing phase 2
// bounds O_delivered at the cost of periodic consensus pauses.
func E6EpochGC(cfg Config) (Result, error) {
	res := Result{
		ID:     "E6",
		Title:  "periodic PhaseII garbage collection (Section 5.3 Remark)",
		Header: []string{"epoch limit", "epochs closed", "mean", "p99", "req/s"},
		Notes: []string{
			"limit 0 = GC off: one endless epoch; small limits pay consensus pauses",
		},
	}
	requests := cfg.requests(1000)
	limits := []int{0, 32, 128, 512}
	if cfg.Quick {
		limits = []int{0, 32}
	}
	for _, limit := range limits {
		c, err := cluster.New(cluster.Options{
			N: 3, FD: cluster.FDNever, Net: netOpts(11), EpochRequestLimit: limit,
		})
		if err != nil {
			return res, err
		}
		hist := metrics.NewHistogram()
		elapsed, err := runClosedLoop(c, 4, requests, hist)
		epochs := c.ReplicaStats(0, 0).Epochs
		c.Stop()
		if err != nil {
			return res, fmt.Errorf("E6 limit=%d: %w", limit, err)
		}
		s := hist.Snapshot()
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(limit), fmt.Sprint(epochs),
			s.Mean.Round(time.Microsecond).String(),
			s.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(requests)/elapsed.Seconds()),
		})
	}
	return res, nil
}

// A1RelayStrategy compares eager vs lazy reliable-multicast relaying in
// failure-free runs: the message-count saving of deferring the Agreement
// work to phase 2.
func A1RelayStrategy(cfg Config) (Result, error) {
	res := Result{
		ID:     "A1",
		Title:  "R-multicast relay strategy (eager vs lazy), failure-free",
		Header: []string{"mode", "n", "msgs/req", "mean latency"},
		Notes:  []string{"lazy defers relaying to phase 2 entry; failure-free cost drops from O(n²) to O(n)"},
	}
	requests := cfg.requests(300)
	for _, n := range cfg.sizes() {
		for _, mode := range []rmcast.Mode{rmcast.Eager, rmcast.Lazy} {
			name := "eager"
			if mode == rmcast.Lazy {
				name = "lazy"
			}
			c, err := cluster.New(cluster.Options{
				N: n, FD: cluster.FDNever, Net: netOpts(int64(n)), RelayMode: mode,
			})
			if err != nil {
				return res, err
			}
			hist := metrics.NewHistogram()
			c.Net(0).ResetStats()
			_, err = runClosedLoop(c, 1, requests, hist)
			stats := c.Net(0).Stats()
			c.Stop()
			if err != nil {
				return res, fmt.Errorf("A1 %s n=%d: %w", name, n, err)
			}
			res.Rows = append(res.Rows, []string{
				name, fmt.Sprint(n),
				fmt.Sprintf("%.1f", float64(stats.MessagesSent)/float64(requests)),
				hist.Snapshot().Mean.Round(time.Microsecond).String(),
			})
		}
	}
	return res, nil
}

// ids used by the scenario experiments below.
var (
	pminIDs = []proto.NodeID{0, 1}
	pmajIDs = []proto.NodeID{2, 3, 4}
)

// countProp7 counts external-consistency violations in a verdict.
func countProp7(vs []*check.Violation) int {
	n := 0
	for _, v := range vs {
		if v.Property == "prop7 external consistency" {
			n++
		}
	}
	return n
}
