package experiments

import (
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
)

// E10BackendMatrix sweeps the full backend × shards × fault matrix through
// the one protocol-agnostic replica runtime: every registered built-in
// backend (or the subset selected with -protocol), at 1/2(/4) ordering
// groups, with and without a mid-run crash of one group's rank-0 replica —
// the epoch-0 sequencer for OAR and fixedseq, the first consensus
// coordinator for ctab. All cells run the identical cluster code path and
// the identical transport-batching layer; the OAR cells additionally run
// one trace checker per ordering group, so the matrix's numbers only count
// where Propositions 1–7 still hold.
//
// This is the experiment the refactor exists for: before it, the baselines
// could not shard at all and bypassed the proto.Batch layer entirely, so
// cross-protocol rows compared transports as much as protocols.
func E10BackendMatrix(cfg Config) (Result, error) {
	res := Result{
		ID:     "E10",
		Title:  "backend × shards × fault matrix through the unified replica runtime (instant network, n=3 per group)",
		Header: []string{"backend", "shards", "fault", "req/s", "frames/req", "batched/req", "violations"},
		Notes: []string{
			"fault = crash of one group's rank-0 replica between two load phases (heartbeat ◊S fail-over)",
			"every cell boots through the same backend registry path; baselines shard and batch like OAR",
			"violations come from one trace checker per OAR ordering group; baselines are unchecked (-)",
		},
	}
	shardCounts := []int{1, 2}
	if !cfg.Quick {
		shardCounts = []int{1, 2, 4}
	}
	total := cfg.requests(4000)
	const nClients, outstanding = 4, 8
	for _, p := range cfg.protocols() {
		for _, shards := range shardCounts {
			for _, fault := range []bool{false, true} {
				row, err := e10Cell(cfg, p, shards, fault, total, nClients, outstanding)
				if err != nil {
					return res, fmt.Errorf("E10 %v shards=%d fault=%v: %w", p, shards, fault, err)
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// e10Cell runs one cell of the matrix and returns its table row.
func e10Cell(cfg Config, p cluster.Protocol, shards int, fault bool, total, nClients, outstanding int) ([]string, error) {
	checked := p == cluster.OAR
	var cks []*check.Checker
	opts := cluster.Options{
		Protocol:    p,
		N:           3,
		Shards:      shards,
		FD:          cluster.FDNever,
		Net:         memnet.Options{Seed: 29}, // instant delivery
		BatchWindow: cfg.BatchWindow,
		MaxBatch:    cfg.MaxBatch,
	}
	if checked {
		cks = make([]*check.Checker, shards)
		for i := range cks {
			cks[i] = check.New(3)
		}
		opts.TracerFor = func(s int) backend.Tracer { return cks[s] }
	}
	if fault {
		// The crash cells need a live detector; the generous timeout keeps
		// loaded event loops from false-suspecting on 1-vCPU CI boxes (false
		// suspicion is safe for OAR and ctab, merely noisy — but it would
		// blur the fail-over cost this cell measures).
		opts.FD = cluster.FDHeartbeat
		opts.FDTimeout = 100 * time.Millisecond
		opts.HeartbeatInterval = 20 * time.Millisecond
	}
	c, err := cluster.New(opts)
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	c.ResetNetStats()

	// Per-request keys spread the load over every ordering group.
	cmd := func(i, w, j int) []byte { return []byte(fmt.Sprintf("k%d.%d.%d x", i, w, j)) }
	executed, elapsed, err := pipelinedLoadCmd(c, nClients, outstanding, total/2, cmd)
	if err != nil {
		return nil, err
	}
	if fault {
		// Crash the last group's rank-0 replica: its shard must fail over
		// while the other shards keep serving undisturbed.
		wounded := shards - 1
		if checked {
			cks[wounded].MarkCrashed(c.Group()[0])
		}
		c.Crash(wounded, 0)
	}
	executed2, elapsed2, err := pipelinedLoadCmd(c, nClients, outstanding, total/2, func(i, w, j int) []byte {
		return []byte(fmt.Sprintf("p%d.%d.%d x", i, w, j))
	})
	if err != nil {
		return nil, err
	}
	executed += executed2
	elapsed += elapsed2
	stats := c.NetTotal()

	violations := "-"
	if checked {
		n := 0
		for _, ck := range cks {
			n += len(ck.Verify())
		}
		violations = fmt.Sprint(n)
	}
	faultCol := "none"
	if fault {
		faultCol = "crash"
	}
	return []string{
		p.String(),
		fmt.Sprint(shards),
		faultCol,
		fmt.Sprintf("%.0f", float64(executed)/elapsed.Seconds()),
		fmt.Sprintf("%.1f", float64(stats.MessagesSent)/float64(executed)),
		fmt.Sprintf("%.1f", float64(stats.BatchedMessages)/float64(executed)),
		violations,
	}, nil
}
