package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/cnsvorder"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/memnet"
	"repro/internal/proto"
)

// Outcome summarizes one fault-injection run.
type Outcome struct {
	External     int // prop7 external-consistency violations
	TotalOrder   int // prop5 divergence violations
	Undeliveries int
	OtherViols   int
}

func classify(vs []*check.Violation, und int) Outcome {
	out := Outcome{Undeliveries: und}
	for _, v := range vs {
		switch v.Property {
		case "prop7 external consistency":
			out.External++
		case "prop5 total order":
			out.TotalOrder++
		default:
			out.OtherViols++
		}
	}
	return out
}

// RunFigure1b replays the Figure 1(b) fault — the sequencer's reply reaches
// the client, its ordering message is lost in the crash — against the given
// protocol, and reports what the trace checker saw.
//
// Script: stack holds [y]; client c1's "pop" reaches only the sequencer p0;
// client c2's "push x" reaches everyone; p0 processes both, replies, and
// crashes with its ordering messages undelivered; the survivors take over;
// the c1 links heal.
func RunFigure1b(protocol cluster.Protocol, extra ...core.Tracer) (Outcome, error) {
	ck := check.New(3)
	tracer := core.MultiTracer(append([]core.Tracer{ck}, extra...)...)
	c, err := cluster.New(cluster.Options{
		Protocol: protocol, N: 3, Machine: "stack", Tracer: tracer,
		Net:               memnet.Options{MinDelay: 50 * time.Microsecond, MaxDelay: 150 * time.Microsecond, Seed: 5},
		FDTimeout:         10 * time.Millisecond,
		HeartbeatInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return Outcome{}, err
	}
	defer c.Stop()

	c1, err := c.NewClient()
	if err != nil {
		return Outcome{}, err
	}
	c2, err := c.NewClient()
	if err != nil {
		return Outcome{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), invokeTimeout)
	defer cancel()

	if _, err := c1.Invoke(ctx, []byte("push y")); err != nil {
		return Outcome{}, fmt.Errorf("push y: %w", err)
	}
	if !cluster.WaitUntil(invokeTimeout, func() bool { return c.DeliveredTotal() == 3 }) {
		return Outcome{}, fmt.Errorf("push y did not replicate")
	}

	// The crash-in-flight: p0's ordering messages stop leaving the box.
	c.Net(0).SetFilter(func(from, to proto.NodeID, payload []byte) memnet.Verdict {
		if from == proto.NodeID(0) && len(payload) > 0 && proto.Kind(payload[0]) == proto.KindSeqOrder {
			return memnet.Drop
		}
		return memnet.Deliver
	})
	c1ID := proto.ClientID(0)
	c.Net(0).Block(c1ID, proto.NodeID(1))
	c.Net(0).Block(c1ID, proto.NodeID(2))

	// The unified Delivered counter makes this wait protocol-agnostic: OAR's
	// optimistic deliveries and the baseline's irrevocable ones both count.
	deliveredAtP0 := func() uint64 { return c.ReplicaStats(0, 0).Delivered }

	// c1: pop (reaches p0 only, directly); wait until p0 ordered it so that
	// p0's order is deterministically (pop; push x), as in Figure 1(b).
	popCh := make(chan proto.Reply, 1)
	go func() {
		ictx, icancel := context.WithTimeout(context.Background(), invokeTimeout)
		defer icancel()
		if r, err := c1.Invoke(ictx, []byte("pop")); err == nil {
			popCh <- r
		}
	}()
	if !cluster.WaitUntil(invokeTimeout, func() bool { return deliveredAtP0() >= 2 }) {
		return Outcome{}, fmt.Errorf("sequencer never processed pop")
	}

	// c2: push x (reaches everyone).
	pushCh := make(chan proto.Reply, 1)
	go func() {
		ictx, icancel := context.WithTimeout(context.Background(), invokeTimeout)
		defer icancel()
		if r, err := c2.Invoke(ictx, []byte("push x")); err == nil {
			pushCh <- r
		}
	}()
	if !cluster.WaitUntil(invokeTimeout, func() bool { return deliveredAtP0() >= 3 }) {
		return Outcome{}, fmt.Errorf("sequencer never processed push x")
	}
	time.Sleep(5 * time.Millisecond) // let p0's replies leave before the crash
	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)

	// Fail-over happens; then the client links heal.
	time.Sleep(50 * time.Millisecond)
	c.Net(0).Unblock(c1ID, proto.NodeID(1))
	c.Net(0).Unblock(c1ID, proto.NodeID(2))

	// Both requests must eventually complete at the survivors.
	survivorsDone := func() bool {
		return c.ReplicaStats(0, 1).Delivered >= 3 && c.ReplicaStats(0, 2).Delivered >= 3
	}
	if !cluster.WaitUntil(invokeTimeout, survivorsDone) {
		return Outcome{}, fmt.Errorf("survivors never completed the run")
	}
	// Give adoptions a moment to land, then judge the trace.
	select {
	case <-popCh:
	case <-time.After(2 * time.Second):
	}
	select {
	case <-pushCh:
	case <-time.After(2 * time.Second):
	}
	time.Sleep(20 * time.Millisecond)
	return classify(ck.Verify(), ck.Undeliveries()), nil
}

// E1ExternalInconsistency runs the Figure 1(b) fault against both the
// fixed-sequencer baseline and OAR. The baseline must exhibit external
// inconsistency; OAR must not (Proposition 7).
func E1ExternalInconsistency(cfg Config) (Result, error) {
	res := Result{
		ID:     "E1",
		Title:  "Figure 1(b) fault: crash between client reply and ordering broadcast",
		Header: []string{"protocol", "runs", "external inconsistencies", "order divergences", "opt-undeliveries"},
		Notes: []string{
			"fixedseq: the adopted reply is contradicted by the survivors (the paper's motivating flaw)",
			"oar: the client never adopts a minority-weight reply, so the same fault is harmless",
		},
	}
	runs := 3
	if cfg.Quick {
		runs = 1
	}
	for _, p := range []cluster.Protocol{cluster.FixedSeq, cluster.OAR} {
		var sum Outcome
		for r := 0; r < runs; r++ {
			out, err := RunFigure1b(p)
			if err != nil {
				return res, fmt.Errorf("E1 %v run %d: %w", p, r, err)
			}
			sum.External += out.External
			sum.TotalOrder += out.TotalOrder
			sum.Undeliveries += out.Undeliveries
		}
		res.Rows = append(res.Rows, []string{
			p.String(), fmt.Sprint(runs),
			fmt.Sprint(sum.External), fmt.Sprint(sum.TotalOrder), fmt.Sprint(sum.Undeliveries),
		})
	}
	return res, nil
}

// RunFigure4 replays the minority-partition scenario of Figure 4 (n=5, see
// DESIGN.md) against the given protocol and reports the outcome.
func RunFigure4(protocol cluster.Protocol, extra ...core.Tracer) (Outcome, error) {
	ck := check.New(5)
	tracer := core.MultiTracer(append([]core.Tracer{ck}, extra...)...)
	c, err := cluster.New(cluster.Options{
		Protocol: protocol, N: 5, FD: cluster.FDOracle, Tracer: tracer,
		Net: memnet.Options{MinDelay: 50 * time.Microsecond, MaxDelay: 150 * time.Microsecond, Seed: 9},
	})
	if err != nil {
		return Outcome{}, err
	}
	defer c.Stop()

	c1, err := c.NewClient()
	if err != nil {
		return Outcome{}, err
	}
	c2, err := c.NewClient()
	if err != nil {
		return Outcome{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), invokeTimeout)
	defer cancel()

	for _, cmd := range []string{"m1", "m2"} {
		if _, err := c1.Invoke(ctx, []byte(cmd)); err != nil {
			return Outcome{}, fmt.Errorf("%s: %w", cmd, err)
		}
	}
	if !cluster.WaitUntil(invokeTimeout, func() bool { return c.DeliveredTotal() == 10 }) {
		return Outcome{}, fmt.Errorf("stage A incomplete")
	}

	// Partition the minority {p0 (sequencer), p1} and c1 from the majority.
	c.Net(0).BlockGroups(pminIDs, pmajIDs)
	c1ID := proto.ClientID(0)
	c.Net(0).BlockGroups([]proto.NodeID{c1ID}, pmajIDs)

	m3Ch := make(chan proto.Reply, 1)
	go func() {
		ictx, icancel := context.WithTimeout(context.Background(), invokeTimeout)
		defer icancel()
		if r, err := c1.Invoke(ictx, []byte("m3")); err == nil {
			m3Ch <- r
		}
	}()
	minorityHas := func(count uint64) bool {
		return c.ReplicaStats(0, 0).Delivered >= count && c.ReplicaStats(0, 1).Delivered >= count
	}
	if !cluster.WaitUntil(invokeTimeout, func() bool { return minorityHas(3) }) {
		return Outcome{}, fmt.Errorf("minority never processed m3")
	}

	m4Ch := make(chan proto.Reply, 1)
	go func() {
		ictx, icancel := context.WithTimeout(context.Background(), invokeTimeout)
		defer icancel()
		if r, err := c2.Invoke(ictx, []byte("m4")); err == nil {
			m4Ch <- r
		}
	}()
	if !cluster.WaitUntil(invokeTimeout, func() bool { return minorityHas(4) }) {
		return Outcome{}, fmt.Errorf("minority never processed m4")
	}

	// The majority suspects the whole minority and moves on without it.
	for _, i := range []int{2, 3, 4} {
		c.Oracle(0, i).Suspect(0)
		c.Oracle(0, i).Suspect(1)
	}
	majorityMoved := func() bool {
		if protocol == cluster.OAR {
			for _, i := range []int{2, 3, 4} {
				if c.ReplicaStats(0, i).Epochs < 1 {
					return false
				}
			}
			return true
		}
		for _, i := range []int{2, 3, 4} {
			if c.ReplicaStats(0, i).Delivered < 3 { // m1 m2 m4
				return false
			}
		}
		return true
	}
	if !cluster.WaitUntil(invokeTimeout, majorityMoved) {
		return Outcome{}, fmt.Errorf("majority never moved on")
	}

	// Heal; trust again; everything must converge.
	c.TrustEverywhere(0)
	c.TrustEverywhere(1)
	c.Net(0).Heal()

	select {
	case <-m3Ch:
	case <-time.After(5 * time.Second):
	}
	select {
	case <-m4Ch:
	case <-time.After(5 * time.Second):
	}
	// Wait for convergence of the replicated state.
	cluster.WaitUntil(5*time.Second, func() bool {
		ref := c.Machine(0, 0).Fingerprint()
		for i := 1; i < 5; i++ {
			if c.Machine(0, i).Fingerprint() != ref {
				return false
			}
		}
		return true
	})
	time.Sleep(20 * time.Millisecond)
	return classify(ck.Verify(), ck.Undeliveries()), nil
}

// E4OptUndeliver runs the Figure 4 minority-partition scenario against both
// protocols: OAR repairs the divergence with Opt-undeliver and keeps clients
// consistent; the baseline splits brain and diverges permanently.
func E4OptUndeliver(cfg Config) (Result, error) {
	res := Result{
		ID:     "E4",
		Title:  "Figure 4 scenario: minority partition with sequencer (n=5)",
		Header: []string{"protocol", "runs", "opt-undeliveries", "external inconsistencies", "order divergences"},
		Notes: []string{
			"oar: exactly 4 undeliveries per run (m3, m4 at both minority replicas), zero client impact",
			"the three-event conjunction of Section 6 makes this the only undo-producing shape",
		},
	}
	runs := 2
	if cfg.Quick {
		runs = 1
	}
	for _, p := range []cluster.Protocol{cluster.OAR, cluster.FixedSeq} {
		var sum Outcome
		for r := 0; r < runs; r++ {
			out, err := RunFigure4(p)
			if err != nil {
				return res, fmt.Errorf("E4 %v run %d: %w", p, r, err)
			}
			sum.External += out.External
			sum.TotalOrder += out.TotalOrder
			sum.Undeliveries += out.Undeliveries
		}
		res.Rows = append(res.Rows, []string{
			p.String(), fmt.Sprint(runs),
			fmt.Sprint(sum.Undeliveries), fmt.Sprint(sum.External), fmt.Sprint(sum.TotalOrder),
		})
	}
	return res, nil
}

// A2UndoThriftiness measures lines 15–19 of Figure 7 on synthetic epochs:
// how many Opt-undelivers the common-prefix optimization avoids.
func A2UndoThriftiness(cfg Config) (Result, error) {
	res := Result{
		ID:     "A2",
		Title:  "undo thriftiness (Figure 7 lines 15–19) on synthetic epochs",
		Header: []string{"mode", "epochs", "total undos", "avoided"},
		Notes:  []string{"scenarios: random delivered prefixes + random majority decisions"},
	}
	epochs := 2000
	if cfg.Quick {
		epochs = 200
	}
	rng := rand.New(rand.NewSource(42))
	var thrifty, wasteful int
	for e := 0; e < epochs; e++ {
		n := 3 + rng.Intn(5)
		total := 1 + rng.Intn(8)
		order := rng.Perm(total)
		req := func(i int) proto.Request {
			return proto.Request{ID: proto.RequestID{Client: proto.ClientID(0), Seq: uint64(i)}}
		}
		inputs := make([]cnsvorder.Input, n)
		for p := 0; p < n; p++ {
			prefix := rng.Intn(total + 1)
			var in cnsvorder.Input
			for _, i := range order[:prefix] {
				in.Dlv = append(in.Dlv, req(i))
			}
			rest := append([]int(nil), order[prefix:]...)
			rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
			for _, i := range rest[:rng.Intn(len(rest)+1)] {
				in.NotDlv = append(in.NotDlv, req(i))
			}
			inputs[p] = in
		}
		maj := proto.MajoritySize(n)
		perm := rng.Perm(n)
		var decision consensus.Decision
		for _, i := range perm[:maj] {
			decision = append(decision, consensus.ProposedValue{From: proto.NodeID(i), Val: inputs[i].Marshal()})
		}
		for p := 0; p < n; p++ {
			rt, err := cnsvorder.ComputeOpt(inputs[p], decision, true)
			if err != nil {
				return res, err
			}
			rw, err := cnsvorder.ComputeOpt(inputs[p], decision, false)
			if err != nil {
				return res, err
			}
			thrifty += len(rt.Bad)
			wasteful += len(rw.Bad)
		}
	}
	res.Rows = append(res.Rows, []string{"thrifty (paper)", fmt.Sprint(epochs), fmt.Sprint(thrifty), fmt.Sprint(wasteful - thrifty)})
	res.Rows = append(res.Rows, []string{"no-thrift (ablation)", fmt.Sprint(epochs), fmt.Sprint(wasteful), "0"})
	return res, nil
}

// All runs the full suite in order.
func All(cfg Config) ([]Result, error) {
	type exp struct {
		name string
		fn   func(Config) (Result, error)
	}
	suite := []exp{
		{"E1", E1ExternalInconsistency},
		{"E2", E2FailureFreeLatency},
		{"E3", E3Failover},
		{"E4", E4OptUndeliver},
		{"E5", E5Throughput},
		{"E6", E6EpochGC},
		{"E7", E7QuorumRule},
		{"E8", E8Batching},
		{"E9", E9ShardScaling},
		{"A1", A1RelayStrategy},
		{"A2", A2UndoThriftiness},
	}
	results := make([]Result, 0, len(suite))
	for _, e := range suite {
		r, err := e.fn(cfg)
		if err != nil {
			return results, fmt.Errorf("%s: %w", e.name, err)
		}
		results = append(results, r)
	}
	return results, nil
}
