package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/cluster"
)

// The experiment suite doubles as a system-level test: every experiment must
// run to completion in quick mode and produce a well-formed table with the
// expected qualitative shape.

func quick() Config { return Config{Quick: true} }

func checkShape(t *testing.T, r Result, wantRows int) {
	t.Helper()
	if r.ID == "" || r.Title == "" || len(r.Header) == 0 {
		t.Fatalf("malformed result: %+v", r)
	}
	if len(r.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d: %v", r.ID, len(r.Rows), wantRows, r.Rows)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("%s: row width %d != header width %d", r.ID, len(row), len(r.Header))
		}
	}
	if !strings.Contains(r.String(), r.ID) {
		t.Errorf("%s: String() missing the experiment id", r.ID)
	}
}

func TestE1QualitativeShape(t *testing.T) {
	r, err := E1ExternalInconsistency(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2)
	// Row 0 is fixedseq, row 1 is oar.
	if r.Rows[0][2] == "0" {
		t.Errorf("fixedseq produced no external inconsistency under the Figure 1(b) fault: %v", r.Rows[0])
	}
	if r.Rows[1][2] != "0" {
		t.Errorf("OAR produced external inconsistencies: %v", r.Rows[1])
	}
}

func TestE2Shape(t *testing.T) {
	r, err := E2FailureFreeLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2*3) // 2 sizes x 3 protocols
}

func TestE3Shape(t *testing.T) {
	r, err := E3Failover(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2)
}

func TestE4QualitativeShape(t *testing.T) {
	r, err := E4OptUndeliver(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2)
	// Row 0 is oar: exactly 4 undeliveries per run, zero inconsistency.
	if r.Rows[0][2] != "4" {
		t.Errorf("OAR undeliveries = %s, want 4", r.Rows[0][2])
	}
	if r.Rows[0][3] != "0" || r.Rows[0][4] != "0" {
		t.Errorf("OAR run was inconsistent: %v", r.Rows[0])
	}
	// Row 1 is fixedseq: it must diverge under the same fault.
	if r.Rows[1][3] == "0" && r.Rows[1][4] == "0" {
		t.Errorf("fixedseq survived the Figure 4 fault unscathed: %v", r.Rows[1])
	}
}

func TestE5Shape(t *testing.T) {
	r, err := E5Throughput(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2*3)
}

func TestE6Shape(t *testing.T) {
	r, err := E6EpochGC(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2)
	// GC off closes no epochs; GC on closes at least one.
	if r.Rows[0][1] != "0" {
		t.Errorf("limit=0 closed %s epochs, want 0", r.Rows[0][1])
	}
	if r.Rows[1][1] == "0" {
		t.Errorf("limit=32 closed no epochs")
	}
}

func TestE7Shape(t *testing.T) {
	r, err := E7QuorumRule(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2)
}

func TestA1Shape(t *testing.T) {
	r, err := A1RelayStrategy(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2*2)
}

func TestA2QualitativeShape(t *testing.T) {
	r, err := A2UndoThriftiness(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2)
	if r.Rows[0][3] == "0" {
		t.Log("thriftiness avoided no undos in this sample (possible but unusual)")
	}
}

func TestProtocolsEnumerated(t *testing.T) {
	if len(protocols) != 3 {
		t.Fatal("expected 3 protocols under comparison")
	}
	seen := map[string]bool{}
	for _, p := range protocols {
		seen[p.String()] = true
	}
	if !seen["oar"] || !seen["fixedseq"] || !seen["ctab"] {
		t.Errorf("protocols = %v", seen)
	}
	for _, p := range protocols {
		if _, err := backend.Lookup(p.String()); err != nil {
			t.Errorf("protocol %v has no registered backend: %v", p, err)
		}
	}
}

func TestE8QualitativeShape(t *testing.T) {
	r, err := E8Batching(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 3)
	// Row 0 is unbatched OAR, row 1 batched OAR: both must hold Propositions
	// 1-7 under the checker (violations column is last).
	for _, row := range r.Rows[:2] {
		if row[len(row)-1] != "0" {
			t.Errorf("%s: trace checker saw violations: %v", row[0], row)
		}
	}
}

func TestE9QualitativeShape(t *testing.T) {
	r, err := E9ShardScaling(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2) // quick mode sweeps shards 1 and 2
	// Every row must be checker-clean: sharding may never buy throughput by
	// weakening any group's Propositions 1-7 (violations is second-to-last).
	for _, row := range r.Rows {
		if row[len(row)-2] != "0" {
			t.Errorf("shards=%s: trace checkers saw violations: %v", row[0], row)
		}
	}
	// The speedup claim (>=2.5x at 4 shards) is hardware-dependent: shards
	// scale by running event loops in parallel, so it only shows with at
	// least shards x n cores — and even there it is a performance number,
	// not a correctness property, so it is asserted only when explicitly
	// requested (the acceptance run: OAR_E9_ACCEPTANCE=1 go test on a
	// >=16-core box), keeping the default `go test ./...` gate
	// deterministic.
	if os.Getenv("OAR_E9_ACCEPTANCE") != "" && runtime.NumCPU() >= 16 {
		full, err := E9ShardScaling(Config{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		last := full.Rows[len(full.Rows)-1]
		var speedup float64
		if _, err := fmt.Sscanf(last[3], "%fx", &speedup); err != nil {
			t.Fatalf("unparseable speedup %q", last[3])
		}
		if speedup < 2.5 {
			t.Errorf("4-shard speedup %.2fx < 2.5x on a %d-core machine", speedup, runtime.NumCPU())
		}
	}
}

func TestE10QualitativeShape(t *testing.T) {
	r, err := E10BackendMatrix(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 3*2*2) // 3 backends x shards {1,2} x fault {none,crash}
	for _, row := range r.Rows {
		// Every OAR cell — sharded, faulted, or both — must be checker-clean;
		// the unchecked baseline cells report "-".
		if viol := row[len(row)-1]; row[0] == "oar" && viol != "0" {
			t.Errorf("oar cell saw checker violations: %v", row)
		} else if row[0] != "oar" && viol != "-" {
			t.Errorf("baseline cell claims a checker verdict: %v", row)
		}
	}
}

func TestE11QualitativeShape(t *testing.T) {
	r, err := E11WorkloadMatrix(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 3*2*2) // 3 backends x dists {uniform,zipfian} x modes {closed,open}
	if len(r.Latency) != len(r.Rows) {
		t.Fatalf("%d latency samples for %d rows", len(r.Latency), len(r.Rows))
	}
	for i, row := range r.Rows {
		// Every OAR cell runs under per-group trace checkers.
		if viol := row[len(row)-1]; row[0] == "oar" && viol != "0" {
			t.Errorf("oar cell saw checker violations: %v", row)
		} else if row[0] != "oar" && viol != "-" {
			t.Errorf("baseline cell claims a checker verdict: %v", row)
		}
		// The latency schema must be filled: this is what CI's
		// -require-latency gate protects.
		s := r.Latency[i]
		if s.Count == 0 || s.P50NS <= 0 || s.P99NS < s.P50NS || s.MaxNS < s.P99NS {
			t.Errorf("malformed latency sample for row %v: %+v", row, s)
		}
		if s.Labels["backend"] == "" || s.Labels["dist"] == "" || s.Labels["mode"] == "" {
			t.Errorf("latency sample missing labels: %+v", s)
		}
	}
	// Zipfian rows must show more routing skew than uniform rows: that is
	// the point of carrying the distribution knob all the way down.
	share := func(row []string) int {
		var g, pct int
		if _, err := fmt.Sscanf(row[len(row)-2], "g%d %d%%", &g, &pct); err != nil {
			t.Fatalf("unparseable hottest column %q", row[len(row)-2])
		}
		return pct
	}
	for i := 0; i+2 < len(r.Rows); i += 4 {
		// Rows come in (uniform closed, uniform open, zipfian closed,
		// zipfian open) blocks per backend.
		if u, z := share(r.Rows[i]), share(r.Rows[i+2]); z < u {
			t.Errorf("zipfian skew %d%% below uniform %d%% (rows %v / %v)", z, u, r.Rows[i], r.Rows[i+2])
		}
	}
}

func TestE11Selection(t *testing.T) {
	cfg := quick()
	cfg.Protocols = []cluster.Protocol{cluster.OAR}
	cfg.Dist = "zipfian"
	cfg.Workload = "closed"
	r, err := E11WorkloadMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 1)
	if r.Rows[0][0] != "oar" || r.Rows[0][1] != "zipfian" || r.Rows[0][2] != "closed" {
		t.Errorf("selection ignored: %v", r.Rows[0])
	}
	for _, bad := range []Config{{Dist: "pareto"}, {Workload: "sorta-open"}} {
		bad.Quick = true
		if _, err := E11WorkloadMatrix(bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestE10ProtocolSelection(t *testing.T) {
	cfg := quick()
	cfg.Protocols = []cluster.Protocol{cluster.CTab}
	r, err := E10BackendMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2*2) // one backend x shards {1,2} x fault {none,crash}
	for _, row := range r.Rows {
		if row[0] != "ctab" {
			t.Errorf("unexpected backend in restricted sweep: %v", row)
		}
	}
}

func TestE12QualitativeShape(t *testing.T) {
	r, err := E12AdaptiveBatching(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2*4) // procs {1,4} x modes {static/0, static/1ms, autotune, autotune+pipeline}
	if len(r.Latency) != len(r.Rows) {
		t.Fatalf("%d latency samples for %d rows", len(r.Latency), len(r.Rows))
	}
	for i, row := range r.Rows {
		// Every cell runs OAR under the trace checker, saturated and idle.
		if viol := row[len(row)-1]; viol != "0" {
			t.Errorf("cell saw checker violations: %v", row)
		}
		s := r.Latency[i]
		if s.Count == 0 || s.P50NS <= 0 || s.ReqPerSec <= 0 {
			t.Errorf("malformed latency sample for row %v: %+v", row, s)
		}
		if s.Labels["procs"] == "" || s.Labels["mode"] == "" {
			t.Errorf("latency sample missing labels: %+v", s)
		}
	}
}

// TestE13QualitativeShape: the read-fast-path matrix must produce its full
// grid with the per-cell invariants holding (the cells self-assert: zero
// ordered reads, zero fallbacks, read p50 bounded by write p50, checkers
// clean — any breach is an error, so reaching the shape check means the
// fast path actually worked in every cell).
func TestE13QualitativeShape(t *testing.T) {
	r, err := E13ReadFastPath(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 3*2*1*2) // 3 backends x dists {uniform,zipfian} x ratios {0.9} x shards {1,2}
	if len(r.Latency) != 2*len(r.Rows) {
		t.Fatalf("%d latency samples for %d rows (want a read and a write sample per cell)", len(r.Latency), len(r.Rows))
	}
	for i, row := range r.Rows {
		if viol := row[len(row)-1]; row[0] == "oar" && viol != "0" {
			t.Errorf("oar cell saw checker violations: %v", row)
		} else if row[0] != "oar" && viol != "-" {
			t.Errorf("baseline cell claims a checker verdict: %v", row)
		}
		for _, s := range r.Latency[2*i : 2*i+2] {
			if s.Count == 0 || s.P50NS <= 0 || s.MaxNS < s.P50NS {
				t.Errorf("malformed latency sample for row %v: %+v", row, s)
			}
			if s.Labels["backend"] == "" || s.Labels["path"] == "" || s.Labels["rw"] == "" {
				t.Errorf("latency sample missing labels: %+v", s)
			}
		}
	}
}

// TestE13Selection: the -protocol/-dist/-rw knobs shape the grid.
func TestE13Selection(t *testing.T) {
	cfg := quick()
	cfg.Protocols = []cluster.Protocol{cluster.OAR}
	cfg.Dist = "uniform"
	cfg.ReadRatio = 0.99
	r, err := E13ReadFastPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 2) // one backend x one dist x one ratio x shards {1,2}
	for _, row := range r.Rows {
		if row[0] != "oar" || row[1] != "uniform" || row[2] != "0.99" {
			t.Errorf("selection ignored: %v", row)
		}
	}
}

// TestE14QualitativeShape: the nemesis search experiment is self-asserting
// (any checker violation in a positive row is an error, and the control row
// errors unless the injected bug is found and shrunk), so a returned Result
// already proves the interesting properties; the shape test pins the table
// and sample schema.
func TestE14QualitativeShape(t *testing.T) {
	r, err := E14Nemesis(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 3+1) // three clean shapes + the injected-bug control
	if len(r.Latency) != len(r.Rows) {
		t.Fatalf("%d latency samples for %d rows", len(r.Latency), len(r.Rows))
	}
	for i, row := range r.Rows {
		if s := r.Latency[i]; s.Count == 0 || s.P50NS <= 0 || s.P99NS <= 0 {
			t.Errorf("malformed latency sample for row %v: %+v", row, s)
		}
	}
	control := r.Rows[len(r.Rows)-1]
	if !strings.HasPrefix(control[6], "seed ") {
		t.Errorf("control row did not report a found seed: %v", control)
	}
}

// TestE15QualitativeShape: the recovery experiment is self-asserting (any
// checker violation, missing recovery, or fingerprint divergence is an error,
// not a table cell), so a returned Result already proves crash-recovery held
// up; the shape test pins the table and sample schema.
func TestE15QualitativeShape(t *testing.T) {
	r, err := E15Recovery(quick())
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, r, 3*2+1) // 3 backends x shards {1,2} + the durability row
	if len(r.Latency) != len(r.Rows) {
		t.Fatalf("%d latency samples for %d rows", len(r.Latency), len(r.Rows))
	}
	for i, row := range r.Rows {
		if row[6] != "0" {
			t.Errorf("row reports violations: %v", row)
		}
		if s := r.Latency[i]; s.Count == 0 || s.P50NS <= 0 || s.P99NS <= 0 {
			t.Errorf("malformed latency sample for row %v: %+v", row, s)
		}
	}
	durability := r.Rows[len(r.Rows)-1]
	if durability[5] != "3" {
		t.Errorf("durability row saw %s recoveries, want 3: %v", durability[5], durability)
	}
}
