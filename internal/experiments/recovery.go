package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/nemesis"
	"repro/internal/wal"
)

// restartSchedule builds the canonical crash-recovery schedule for a run
// with the given shard count (the committed corpus file
// internal/nemesis/testdata/corpus/restart-under-load.txt is the one-shard
// instance): replica 2 crashes mid-run, restarts while traffic is still
// flowing — catch-up racing live epochs — passes a full checkpoint in the
// recovered configuration, and is then crashed again right after rejoining.
// Shards are staggered by 3ms so their fault windows overlap but do not
// align.
func restartSchedule(shards int) *nemesis.Schedule {
	s := &nemesis.Schedule{}
	for sh := 0; sh < shards; sh++ {
		off := time.Duration(sh*3) * time.Millisecond
		add := func(at time.Duration, st nemesis.Step) {
			st.At, st.Shard = at+off, sh
			s.Steps = append(s.Steps, st)
		}
		add(6*time.Millisecond, nemesis.Step{Kind: nemesis.StepCrash, A: nemesis.Replica(2)})
		add(9*time.Millisecond, nemesis.Step{Kind: nemesis.StepSuspect, A: nemesis.Any, B: nemesis.Replica(2)})
		add(24*time.Millisecond, nemesis.Step{Kind: nemesis.StepRestart, A: nemesis.Replica(2)})
		add(28*time.Millisecond, nemesis.Step{Kind: nemesis.StepTrust, A: nemesis.Any, B: nemesis.Replica(2)})
		add(48*time.Millisecond, nemesis.Step{Kind: nemesis.StepCheckpoint})
		add(58*time.Millisecond, nemesis.Step{Kind: nemesis.StepCrash, A: nemesis.Replica(2)})
		add(61*time.Millisecond, nemesis.Step{Kind: nemesis.StepSuspect, A: nemesis.Any, B: nemesis.Replica(2)})
		add(80*time.Millisecond, nemesis.Step{Kind: nemesis.StepCheckpoint})
	}
	s.Normalize()
	return s
}

// E15Recovery exercises crash-recovery under load: every backend must survive
// a replica dying mid-run, restarting while traffic flows (local WAL replay
// plus peer catch-up for OAR; in-memory peer catch-up for the baselines),
// passing the full proposition suite — recovery proposition included — in the
// recovered configuration, and dying again right after it rejoined. The
// experiment is self-asserting: any checker violation, or a run in which the
// restarted replica fails to recover, is an error rather than a table cell.
//
// The final row isolates durability: an OAR group with a per-epoch-fsync WAL
// is put through rolling restarts — every replica killed and recovered in
// sequence, under load — and all three machines must converge to byte-exact
// fingerprints, with the checker clean and exactly one recovery observed per
// replica.
func E15Recovery(cfg Config) (Result, error) {
	res := Result{
		ID:     "E15",
		Title:  "crash-recovery under load: WAL replay + peer catch-up, checker-clean",
		Header: []string{"row", "backend", "n", "shards", "runs", "recoveries", "violations", "run p50", "run p99"},
		Notes: []string{
			"schedule per shard: crash r2, restart under load, checkpoint (full suite in the recovered configuration), crash it again",
			"oar cells run with a per-epoch-fsync WAL (restart = local replay + peer catch-up); baselines recover from peers alone",
			"the durability row rolls a crash/restart through every replica of an OAR group and asserts byte-exact fingerprint convergence",
		},
	}

	runs := 6
	if cfg.Quick {
		runs = 2
	}
	for _, sh := range []int{1, 2} {
		sched := restartSchedule(sh)
		for _, p := range cfg.protocols() {
			h := metrics.NewHistogram()
			recoveries := 0
			for seed := int64(1); seed <= int64(runs); seed++ {
				run := nemesis.Config{
					Protocol: p, N: 3, Shards: sh,
					Requests: cfg.requests(640), Workers: 4, Clients: 1,
					ReadRatio: 0.6, Seed: seed,
				}
				if p == cluster.OAR {
					dir, err := os.MkdirTemp("", "oar-e15-wal-")
					if err != nil {
						return res, err
					}
					defer os.RemoveAll(dir)
					run.WALRoot = dir
				}
				r, err := nemesis.Run(run, sched)
				if err != nil {
					return res, fmt.Errorf("E15 %v shards=%d seed=%d: %w", p, sh, seed, err)
				}
				if r.Failed() {
					return res, fmt.Errorf("E15 %v shards=%d seed=%d: violations: %v", p, sh, seed, r.Violations)
				}
				for _, c := range r.Counts {
					recoveries += c.Recoveries
				}
				h.Record(r.Elapsed)
			}
			// Every shard's victim restarts once per run and must have
			// completed recovery by the mid-run checkpoint.
			if want := runs * sh; recoveries < want {
				return res, fmt.Errorf("E15 %v shards=%d: %d recoveries over %d runs, want >= %d",
					p, sh, recoveries, runs, want)
			}
			s := h.Snapshot()
			res.Rows = append(res.Rows, []string{
				"restart under load", p.String(), "3", fmt.Sprint(sh),
				fmt.Sprint(runs), fmt.Sprint(recoveries), "0",
				s.P50.Round(time.Millisecond).String(), s.P99.Round(time.Millisecond).String(),
			})
			res.Latency = append(res.Latency, latencySample(map[string]string{
				"experiment": "E15", "row": "restart-under-load",
				"backend": p.String(), "shards": fmt.Sprint(sh),
			}, s, 0))
		}
	}

	recoveries, elapsed, err := e15RollingRestarts(cfg)
	if err != nil {
		return res, fmt.Errorf("E15 durability: %w", err)
	}
	h := metrics.NewHistogram()
	h.Record(elapsed)
	s := h.Snapshot()
	res.Rows = append(res.Rows, []string{
		"durability: rolling restarts", cluster.OAR.String(), "3", "1",
		"1", fmt.Sprint(recoveries), "0",
		s.P50.Round(time.Millisecond).String(), s.P99.Round(time.Millisecond).String(),
	})
	res.Latency = append(res.Latency, latencySample(map[string]string{
		"experiment": "E15", "row": "durability", "backend": cluster.OAR.String(),
	}, s, 0))
	return res, nil
}

// e15RollingRestarts kills and recovers every replica of a WAL-backed OAR
// group in sequence, with load between the faults, and requires byte-exact
// machine-fingerprint convergence plus a clean checker at the end.
func e15RollingRestarts(cfg Config) (int, time.Duration, error) {
	walRoot, err := os.MkdirTemp("", "oar-e15-durability-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(walRoot)

	ck := check.New(3)
	c, err := cluster.New(cluster.Options{
		Protocol:          cluster.OAR,
		N:                 3,
		FD:                cluster.FDOracle,
		Machine:           "kv",
		EpochRequestLimit: 4,
		WALRoot:           walRoot,
		WALSync:           wal.SyncAlways,
		Tracer:            ck,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Stop()
	cli, err := c.NewClient()
	if err != nil {
		return 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	batch := cfg.requests(120) / 10 // 12 requests per load phase (3 in quick mode)
	seq := 0
	load := func() error {
		for i := 0; i < batch; i++ {
			if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d v%d", seq%16, seq))); err != nil {
				return fmt.Errorf("invoke %d: %w", seq, err)
			}
			seq++
		}
		return nil
	}

	start := time.Now()
	for victim := 0; victim < 3; victim++ {
		if err := load(); err != nil {
			return 0, 0, err
		}
		id := c.Group()[victim]
		c.Crash(0, victim)
		ck.MarkCrashed(id)
		c.Suspect(0, id)
		if err := load(); err != nil { // the surviving majority moves on
			return 0, 0, err
		}
		if err := c.Restart(0, victim); err != nil {
			return 0, 0, err
		}
		if !cluster.WaitUntil(30*time.Second, func() bool {
			return c.ReplicaStats(0, victim).Recoveries >= 1
		}) {
			return 0, 0, fmt.Errorf("replica %d never recovered", victim)
		}
		c.Trust(0, id)
	}
	if err := load(); err != nil {
		return 0, 0, err
	}

	if !cluster.WaitUntil(30*time.Second, func() bool {
		fp := c.Machine(0, 0).Fingerprint()
		return fp != "" &&
			c.Machine(0, 1).Fingerprint() == fp &&
			c.Machine(0, 2).Fingerprint() == fp
	}) {
		return 0, 0, fmt.Errorf("fingerprints diverge after rolling restarts: %q / %q / %q",
			c.Machine(0, 0).Fingerprint(), c.Machine(0, 1).Fingerprint(), c.Machine(0, 2).Fingerprint())
	}
	if !cluster.WaitUntil(30*time.Second, ck.LivenessSettled) {
		return 0, 0, fmt.Errorf("run never settled after the last recovery")
	}
	elapsed := time.Since(start)
	if vs := append(ck.Verify(), ck.VerifyLiveness()...); len(vs) > 0 {
		return 0, 0, fmt.Errorf("checker violations: %v", vs)
	}
	if got := ck.Recoveries(); got != 3 {
		return 0, 0, fmt.Errorf("checker saw %d recoveries, want 3", got)
	}
	return 3, elapsed, nil
}
