package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nemesis"
)

// E14Nemesis runs the randomized fault-schedule search of internal/nemesis
// as an experiment: batches of seed-derived schedules (minority partitions
// around the sequencer, crashes with orders lost in the crash, wrongful-
// suspicion flaps, gray-slow links, drop/dup/reorder rules) drive a live
// cluster under a mixed read/write workload, and every run must come out
// clean across the full proposition suite plus liveness and structural
// convergence. Quick mode runs 50 schedules, full mode 1000.
//
// The experiment is self-asserting twice over:
//
//   - every positive row must be 100% checker-clean — a single violation
//     fails the experiment instead of printing a hollow table;
//   - a negative-control row re-enables the stale-read-floor bug behind its
//     test hook (core.StaleReadFloorBug) and requires the SAME search to
//     find a violation and ddmin to shrink it to at most 5 steps — proof
//     the harness detects what it claims to detect, with the exact class of
//     bug the read fast path shipped with.
func E14Nemesis(cfg Config) (Result, error) {
	res := Result{
		ID:     "E14",
		Title:  "randomized fault-schedule search: seeded nemesis schedules, full proposition suite per run",
		Header: []string{"row", "backend", "n", "shards", "schedules", "clean", "found", "shrunk steps", "run p50", "run p99"},
		Notes: []string{
			"each schedule composes fault motifs biased toward hard regions: sequencer-minority partitions, crash+suspicion (orders lost in the crash), flaps, gray links, drop/dup/reorder",
			"every run ends with Verify + VerifyLiveness + machine-fingerprint convergence; positive rows assert zero violations over the whole batch",
			"the control row re-injects the stale read floor bug behind its test hook and asserts the search finds it and shrinking lands at <= 5 steps",
		},
	}

	budget := 1000
	if cfg.Quick {
		budget = 50
	}
	run := nemesis.Config{Requests: 96, Workers: 4, Clients: 1, ReadRatio: 0.65, Seed: 5}

	type shape struct {
		name   string
		n      int
		shards int
		motifs int
		share  int // fraction of the budget, in tenths
	}
	shapes := []shape{
		{"n=3", 3, 1, 2, 6},
		{"n=5", 5, 1, 3, 2},
		{"n=3 x2 shards", 3, 2, 3, 2},
	}

	for _, sh := range shapes {
		count := budget * sh.share / 10
		if count == 0 {
			count = 1
		}
		h := metrics.NewHistogram()
		rc := run
		rc.N, rc.Shards = sh.n, sh.shards
		found, ran, err := nemesis.Search(nemesis.SearchConfig{
			Run:    rc,
			Gen:    nemesis.GenSpec{Motifs: sh.motifs},
			Budget: count,
			Progress: func(seed int64, r *nemesis.Result) {
				h.Record(r.Elapsed)
			},
		})
		if err != nil {
			return res, fmt.Errorf("E14 %s: %w", sh.name, err)
		}
		if found != nil {
			return res, fmt.Errorf("E14 %s: seed %d violated the proposition suite: %v\n%s",
				sh.name, found.Seed, found.Result.Violations, found.Schedule.Encode())
		}
		s := h.Snapshot()
		res.Rows = append(res.Rows, []string{
			sh.name, string(cluster.OAR), fmt.Sprint(sh.n), fmt.Sprint(sh.shards),
			fmt.Sprint(ran), fmt.Sprint(ran), "-", "-",
			s.P50.Round(time.Millisecond).String(), s.P99.Round(time.Millisecond).String(),
		})
		res.Latency = append(res.Latency, latencySample(map[string]string{
			"experiment": "E14", "row": sh.name, "backend": string(cluster.OAR),
		}, s, 1/h.Mean().Seconds()))
	}

	// Negative control: the detector must detect.
	if !core.StaleReadFloorBug.CompareAndSwap(false, true) {
		return res, fmt.Errorf("E14 control: StaleReadFloorBug already enabled")
	}
	defer core.StaleReadFloorBug.Store(false)
	h := metrics.NewHistogram()
	found, ran, err := nemesis.Search(nemesis.SearchConfig{
		Run:    run,
		Gen:    nemesis.GenSpec{Motifs: 2},
		Budget: 200,
		Progress: func(seed int64, r *nemesis.Result) {
			h.Record(r.Elapsed)
		},
	})
	if err != nil {
		return res, fmt.Errorf("E14 control: %w", err)
	}
	if found == nil {
		return res, fmt.Errorf("E14 control: injected stale-read-floor bug not found in %d schedules", ran)
	}
	shrunk := nemesis.Shrink(found.Schedule, nemesis.FailOracle(run, 3))
	if len(shrunk.Steps) > 5 {
		return res, fmt.Errorf("E14 control: shrunk schedule has %d steps (want <= 5):\n%s",
			len(shrunk.Steps), shrunk.Encode())
	}
	s := h.Snapshot()
	res.Rows = append(res.Rows, []string{
		"control: stale read floor", string(cluster.OAR), "3", "1",
		fmt.Sprint(ran), fmt.Sprint(ran - 1), fmt.Sprintf("seed %d", found.Seed),
		fmt.Sprint(len(shrunk.Steps)),
		s.P50.Round(time.Millisecond).String(), s.P99.Round(time.Millisecond).String(),
	})
	res.Latency = append(res.Latency, latencySample(map[string]string{
		"experiment": "E14", "row": "control", "backend": string(cluster.OAR),
	}, s, 0))
	return res, nil
}
