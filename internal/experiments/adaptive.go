package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/metrics"
)

// E12AdaptiveBatching measures the self-tuning batch window (AutoTune) and
// the pipelined replica loop against the static batching knobs, at both ends
// of the latency/throughput trade-off the controller is supposed to cover:
//
//   - a saturated pipelined load (the throughput end), where a larger hold
//     window coalesces more messages per frame, and
//   - a single closed-loop client (the latency end), where any hold is pure
//     added latency and the right window is zero.
//
// Each static window is optimal at one end only; the claim under test is
// that the closed-loop controller lands within a few percent of the *best*
// static setting at BOTH ends without being told the workload. The sweep
// runs at GOMAXPROCS 1 and 4 — the pipelined rows split the replica loop
// into decode/order/send stages, which can only pay off with cores to run
// them on. All OAR rows run under the full trace checker.
func E12AdaptiveBatching(cfg Config) (Result, error) {
	res := Result{
		ID:     "E12",
		Title:  "self-tuned batch window vs static settings (instant network, n=3)",
		Header: []string{"procs", "mode", "sat req/s", "frames/req", "window@sat", "idle p99", "window@idle", "violations"},
		Notes: []string{
			"static rows pin BatchWindow; autotune rows let the controller float it per replica",
			"window@sat / window@idle are the effective hold windows at snapshot time (max across replicas)",
			"the idle p99 of a static window includes the window itself; the tuner must collapse it to ~0",
		},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type mode struct {
		name     string
		window   time.Duration
		autoTune bool
		pipeline bool
	}
	modes := []mode{{name: "static/0", window: 0}}
	if !cfg.Quick {
		modes = append(modes, mode{name: "static/200µs", window: 200 * time.Microsecond})
	}
	modes = append(modes,
		mode{name: "static/1ms", window: time.Millisecond},
		mode{name: "autotune", autoTune: true},
		mode{name: "autotune+pipeline", autoTune: true, pipeline: true},
	)
	procsSweep := []int{1, 4}

	satTotal := cfg.requests(6000)
	idleTotal := cfg.requests(400)
	const nClients, outstanding = 8, 16

	type cell struct {
		mode    mode
		satRate float64
		idleP99 time.Duration
	}
	for _, procs := range procsSweep {
		runtime.GOMAXPROCS(procs)
		var cells []cell
		for _, m := range modes {
			opts := cluster.Options{
				Protocol:    cluster.OAR,
				N:           3,
				FD:          cluster.FDNever,
				Net:         memnet.Options{Seed: 12}, // instant delivery
				BatchWindow: m.window,
				AutoTune:    m.autoTune,
				Pipeline:    m.pipeline,
			}
			violations := 0

			// Throughput end: a deep pipelined load saturates the group.
			ck := check.New(3)
			opts.Tracer = ck
			c, err := cluster.New(opts)
			if err != nil {
				return res, err
			}
			c.ResetNetStats()
			executed, elapsed, err := pipelinedLoad(c, nClients, outstanding, satTotal)
			net := c.NetTotal()
			satWindow := time.Duration(c.TotalStats().BatchWindowNS)
			c.Stop()
			if err != nil {
				return res, fmt.Errorf("E12 %s (procs=%d, saturated): %w", m.name, procs, err)
			}
			violations += len(ck.Verify())
			satRate := float64(executed) / elapsed.Seconds()

			// Latency end: one closed-loop client, nothing to coalesce.
			ck = check.New(3)
			opts.Tracer = ck
			c, err = cluster.New(opts)
			if err != nil {
				return res, err
			}
			hist := metrics.NewHistogram()
			if _, err = runClosedLoop(c, 1, idleTotal, hist); err != nil {
				c.Stop()
				return res, fmt.Errorf("E12 %s (procs=%d, idle): %w", m.name, procs, err)
			}
			idleWindow := time.Duration(c.TotalStats().BatchWindowNS)
			c.Stop()
			violations += len(ck.Verify())
			idle := hist.Snapshot()

			cells = append(cells, cell{mode: m, satRate: satRate, idleP99: idle.P99})
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(procs),
				m.name,
				fmt.Sprintf("%.0f", satRate),
				fmt.Sprintf("%.1f", float64(net.MessagesSent)/float64(executed)),
				satWindow.String(),
				idle.P99.Round(time.Microsecond).String(),
				idleWindow.String(),
				fmt.Sprint(violations),
			})
			res.Latency = append(res.Latency, latencySample(map[string]string{
				"exp":   "E12",
				"procs": fmt.Sprint(procs),
				"mode":  m.name,
			}, idle, satRate))
		}

		// How close did the tuner land to the best static setting at each
		// end? (The best static differs per end — that is the point.)
		bestSat, bestIdle := 0.0, time.Duration(0)
		for _, cl := range cells {
			if cl.mode.autoTune {
				continue
			}
			if cl.satRate > bestSat {
				bestSat = cl.satRate
			}
			if bestIdle == 0 || cl.idleP99 < bestIdle {
				bestIdle = cl.idleP99
			}
		}
		for _, cl := range cells {
			if !cl.mode.autoTune {
				continue
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"procs=%d %s: %.0f%% of best static throughput, idle p99 %+.0f%% vs best static",
				procs, cl.mode.name, 100*cl.satRate/bestSat,
				100*(float64(cl.idleP99)/float64(bestIdle)-1)))
			// The tuner must not lose either end outright. The bounds are
			// loose (shared-CI noise on a throughput measurement is easily
			// tens of percent); EXPERIMENTS.md records the measured margins,
			// which land within a few percent on a quiet machine. The
			// throughput floor only applies when the machine really has
			// `procs` cores: GOMAXPROCS above NumCPU adds scheduling
			// overhead without parallelism (worst for the pipelined rows,
			// whose stages then preempt each other on one core), which is
			// an artifact of the host, not a controller regression.
			if !cfg.Quick {
				if cl.satRate < 0.7*bestSat && procs <= runtime.NumCPU() {
					return res, fmt.Errorf("E12 %s (procs=%d): saturated throughput %.0f < 70%% of best static %.0f",
						cl.mode.name, procs, cl.satRate, bestSat)
				}
				if cl.idleP99 > 2*bestIdle {
					return res, fmt.Errorf("E12 %s (procs=%d): idle p99 %v > 2x best static %v",
						cl.mode.name, procs, cl.idleP99, bestIdle)
				}
			}
		}
	}
	return res, nil
}
