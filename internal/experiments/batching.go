package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
)

// pipelinedLoad drives ~total requests through clients client endpoints,
// each invoked from outstanding concurrent goroutines (a pipelined open-ish
// load, unlike runClosedLoop's one-outstanding-per-client). It returns the
// number of requests actually executed (total rounded to a whole number per
// worker, at least one each) and the elapsed wall time. Pipelining is what
// gives the hot path something to coalesce: several requests of the same
// client can complete in one delivery round and share one reply frame.
func pipelinedLoad(c *cluster.Cluster, clients, outstanding, total int) (int, time.Duration, error) {
	return pipelinedLoadCmd(c, clients, outstanding, total, func(i, w, j int) []byte {
		return []byte(fmt.Sprintf("req %d %d %d", i, w, j))
	})
}

// pipelinedLoadCmd is pipelinedLoad with a caller-supplied command
// generator. Sharded experiments use it to issue commands with per-request
// keys, so the key-hash router spreads the load over all ordering groups.
func pipelinedLoadCmd(c *cluster.Cluster, clients, outstanding, total int, cmdf func(i, w, j int) []byte) (int, time.Duration, error) {
	var wg sync.WaitGroup
	workers := clients * outstanding
	errCh := make(chan error, workers)
	per := max(1, total/workers)
	start := time.Now()
	for i := 0; i < clients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			return 0, 0, err
		}
		for w := 0; w < outstanding; w++ {
			wg.Add(1)
			go func(i, w int, cli cluster.Invoker) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), invokeTimeout)
				defer cancel()
				for j := 0; j < per; j++ {
					if _, err := cli.Invoke(ctx, cmdf(i, w, j)); err != nil {
						errCh <- fmt.Errorf("client %d/%d: %w", i, w, err)
						return
					}
				}
				errCh <- nil
			}(i, w, cli)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, 0, err
		}
	}
	return per * workers, elapsed, nil
}

// E8Batching measures the end-to-end effect of the message-batching layer on
// the optimistic hot path: OAR with per-request ordering (MaxBatch=1, the
// pre-batching behavior) vs. OAR with adaptive batching, against the ctab
// baseline, on the instant in-memory network where protocol CPU and message
// count — not simulated wire latency — are the bottleneck. The OAR rows run
// under the full trace checker, so the throughput numbers only count if
// Propositions 1–7 still hold.
func E8Batching(cfg Config) (Result, error) {
	res := Result{
		ID:     "E8",
		Title:  "sequencer batching on the optimistic hot path (instant network, n=3)",
		Header: []string{"mode", "clients×pipeline", "req/s", "frames/req", "batched/req", "seqorders", "violations"},
		Notes: []string{
			"unbatched = MaxBatch 1 (one SeqOrder and one reply frame per request)",
			"batched coalesces each round's orders and per-client replies into proto.Batch frames",
			"frames/req and batched/req come from the transport's batching counters (also in oar.Stats)",
		},
	}
	total := cfg.requests(8000)
	const nClients, outstanding = 8, 16
	modes := []struct {
		name        string
		protocol    cluster.Protocol
		maxBatch    int
		batchWindow time.Duration
		checked     bool
	}{
		{"oar/unbatched", cluster.OAR, 1, -1, true}, // negative window = batching layer off
		{"oar/batched", cluster.OAR, cfg.MaxBatch, cfg.BatchWindow, true},
		{"ctab", cluster.CTab, 0, 0, false},
	}
	for _, m := range modes {
		opts := cluster.Options{
			Protocol:    m.protocol,
			N:           3,
			FD:          cluster.FDNever,
			Net:         memnet.Options{Seed: 21}, // instant delivery
			MaxBatch:    m.maxBatch,
			BatchWindow: m.batchWindow,
		}
		var ck *check.Checker
		if m.checked {
			ck = check.New(3)
			opts.Tracer = ck
		}
		c, err := cluster.New(opts)
		if err != nil {
			return res, err
		}
		c.ResetNetStats()
		executed, elapsed, err := pipelinedLoad(c, nClients, outstanding, total)
		stats := c.NetTotal()
		var orders uint64
		if m.protocol == cluster.OAR {
			orders = c.TotalStats().SeqOrdersSent
		}
		c.Stop()
		if err != nil {
			return res, fmt.Errorf("E8 %s: %w", m.name, err)
		}
		violations := "-"
		if ck != nil {
			violations = fmt.Sprint(len(ck.Verify()))
		}
		ordersCol := "-"
		if m.protocol == cluster.OAR {
			ordersCol = fmt.Sprint(orders)
		}
		res.Rows = append(res.Rows, []string{
			m.name,
			fmt.Sprintf("%d×%d", nClients, outstanding),
			fmt.Sprintf("%.0f", float64(executed)/elapsed.Seconds()),
			fmt.Sprintf("%.1f", float64(stats.MessagesSent)/float64(executed)),
			fmt.Sprintf("%.1f", float64(stats.BatchedMessages)/float64(executed)),
			ordersCol,
			violations,
		})
	}
	return res, nil
}
