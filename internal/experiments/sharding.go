package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/memnet"
)

// E9ShardScaling measures throughput as the keyspace is sharded across
// independent OAR ordering groups (1, 2, 4, ... groups of n=3 each) on the
// instant in-memory network, under the same pipelined load as E8. Every
// group runs under its own trace checker, so the scaling numbers only count
// if each shard still satisfies Propositions 1–7 on its own key subspace.
//
// The expected shape: a single group is capped by one sequencer's event
// loop, so with enough CPU cores throughput grows near-linearly in the shard
// count (the acceptance target is ≥2.5x at 4 shards). On machines with fewer
// cores than event loops the shards time-slice one another and the speedup
// column flattens toward 1x — the gocpus column records what the run had to
// work with.
func E9ShardScaling(cfg Config) (Result, error) {
	res := Result{
		ID:     "E9",
		Title:  "keyspace sharding across independent OAR groups (instant network, n=3 per group)",
		Header: []string{"shards", "clients×pipeline", "req/s", "speedup", "frames/req", "seqorders", "violations", "gocpus"},
		Notes: []string{
			"each shard is a full OAR group with its own sequencer, network and trace checker",
			"clients route by fnv key hash (per-request keys here, so load spreads evenly)",
			"speedup is vs the 1-shard row; it needs >= shards x n cores to approach shards x",
		},
	}
	counts := []int{1, 2, 4}
	if cfg.Quick {
		counts = []int{1, 2}
	}
	if max := cfg.Shards; max > 0 {
		counts = counts[:0]
		for s := 1; s <= max; s *= 2 {
			counts = append(counts, s)
		}
	}
	total := cfg.requests(8000)
	const nClients, outstanding = 8, 16
	var base float64
	for _, shards := range counts {
		cks := make([]*check.Checker, shards)
		for i := range cks {
			cks[i] = check.New(3)
		}
		c, err := cluster.New(cluster.Options{
			N:           3,
			Shards:      shards,
			FD:          cluster.FDNever,
			Net:         memnet.Options{Seed: 23}, // instant delivery
			BatchWindow: cfg.BatchWindow,
			MaxBatch:    cfg.MaxBatch,
			TracerFor:   func(s int) core.Tracer { return cks[s] },
		})
		if err != nil {
			return res, err
		}
		c.ResetNetStats()
		executed, elapsed, err := pipelinedLoadCmd(c, nClients, outstanding, total, func(i, w, j int) []byte {
			// One key per request: the router spreads them uniformly.
			return []byte(fmt.Sprintf("k%d.%d.%d x", i, w, j))
		})
		stats := c.NetTotal()
		orders := c.TotalStats().SeqOrdersSent
		c.Stop()
		if err != nil {
			return res, fmt.Errorf("E9 shards=%d: %w", shards, err)
		}
		violations := 0
		for _, ck := range cks {
			violations += len(ck.Verify())
		}
		throughput := float64(executed) / elapsed.Seconds()
		if shards == 1 {
			base = throughput
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(shards),
			fmt.Sprintf("%d×%d", nClients, outstanding),
			fmt.Sprintf("%.0f", throughput),
			fmt.Sprintf("%.2fx", throughput/base),
			fmt.Sprintf("%.1f", float64(stats.MessagesSent)/float64(executed)),
			fmt.Sprint(orders),
			fmt.Sprint(violations),
			fmt.Sprint(runtime.GOMAXPROCS(0)),
		})
	}
	return res, nil
}
