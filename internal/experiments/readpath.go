package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/workload"
)

// E13ReadFastPath measures the zero-ordering read fast path: read-only
// requests answered inline from the optimistic prefix under the majority-
// validated adoption rule (DESIGN.md "Read fast path"), across read ratio ×
// key distribution × backend × shard count. Every cell drives the RunRW
// engine, so reads and writes are timed separately and each worker's
// read-your-writes oracle is live throughout.
//
// Unlike the other performance experiments, E13's cells are self-asserting —
// the speedup claim rests on invariants the counters can check exactly, so a
// cell that merely "runs" without exercising the fast path fails instead of
// printing a hollow number:
//
//   - zero ordering frames for reads: definitive deliveries == writes × n,
//     exactly — no read ever entered the ordered path (a client fallback
//     re-issues through Invoke and would break the equality);
//   - every read served fast: ReadsServed == reads × n and ReadFallbacks ==
//     0 — all n replicas answered every read inline;
//   - reads are not slower: read p50 ≤ write p50 (reads skip the ordering
//     hop entirely) — except under fixedseq, whose first-reply write rule
//     is faster than any majority quorum precisely because it is unsafe
//     (E1); those cells only bound the gap at 2×;
//   - the read-your-writes oracle engaged (RYWChecked > 0) and, for OAR,
//     the per-group trace checkers report zero violations.
func E13ReadFastPath(cfg Config) (Result, error) {
	res := Result{
		ID:     "E13",
		Title:  "zero-ordering read fast path: read ratio × distribution × backend × shards (kv, n=3 per group, instant network)",
		Header: []string{"backend", "dist", "rw", "shards", "req/s", "write p50", "read p50", "read/write", "reads", "fallbacks", "violations"},
		Notes: []string{
			"reads are answered inline from the optimistic prefix; adoption needs majority weight at a compatible prefix",
			"every cell asserts: deliveries == writes × n (no read was ever ordered), ReadFallbacks == 0, read p50 ≤ write p50",
			"fixedseq's write rule is the unsafe first reply (see E1), which a majority read need not beat: its cells only bound the gap at 2×",
			"the read-your-writes oracle (worker-tagged values) runs in every cell; OAR cells add one trace checker per group",
		},
	}
	dists, err := cfg.dists()
	if err != nil {
		return res, err
	}
	ratios := []float64{0.5, 0.9, 0.99}
	if cfg.Quick {
		ratios = []float64{0.9}
	}
	// -rw off its 0.5 default restricts the sweep to that single ratio (0.5
	// itself is in the default sweep, so pinning it adds nothing).
	if cfg.ReadRatio > 0 && cfg.ReadRatio != 0.5 {
		ratios = []float64{cfg.ReadRatio}
	}
	requests := cfg.requests(3000)
	for _, p := range cfg.protocols() {
		for _, dist := range dists {
			for _, ratio := range ratios {
				for _, shards := range []int{1, 2} {
					cell, err := e13Cell(cfg, p, dist, ratio, shards, requests)
					if err != nil {
						return res, fmt.Errorf("E13 %v/%s/rw=%v/shards=%d: %w", p, dist, ratio, shards, err)
					}
					res.Rows = append(res.Rows, cell.row)
					res.Latency = append(res.Latency, cell.samples...)
				}
			}
		}
	}
	return res, nil
}

// e13Result is one cell's outcome.
type e13Result struct {
	row     []string
	samples []LatencySample
}

// e13Cell runs one (backend, distribution, read ratio, shards) cell and
// checks the fast-path invariants listed on E13ReadFastPath.
func e13Cell(cfg Config, p cluster.Protocol, dist string, ratio float64, shards, requests int) (e13Result, error) {
	const n = 3
	checked := p == cluster.OAR
	var cks []*check.Checker
	opts := cluster.Options{
		Protocol:    p,
		N:           n,
		Shards:      shards,
		Machine:     "kv",
		FD:          cluster.FDNever,
		Net:         memnet.Options{Seed: 37}, // instant delivery
		BatchWindow: cfg.BatchWindow,
		MaxBatch:    cfg.MaxBatch,
	}
	if checked {
		cks = make([]*check.Checker, shards)
		for i := range cks {
			cks[i] = check.New(n)
		}
		opts.TracerFor = func(s int) backend.Tracer { return cks[s] }
	}
	c, err := cluster.New(opts)
	if err != nil {
		return e13Result{}, err
	}
	defer c.Stop()

	// The issued-operation counters make the invariants exact: the workload
	// report only counts the measured window, but the deliveries the cluster
	// accumulates include warmup.
	//
	// One client endpoint per worker: the monotonic-read high-water mark is
	// per client session, so sharing an endpoint across concurrent workers
	// lets another worker's write raise the mark while a read is in flight —
	// a legitimate ordered-path fallback, but one that would fail this cell's
	// zero-ordering assertion without measuring anything about the fast path.
	var readsIssued, writesIssued atomic.Uint64
	const endpoints = 8 // == spec.Workers
	invokers := make([]workload.RWInvoke, endpoints)
	for i := range invokers {
		cli, err := c.NewClient()
		if err != nil {
			return e13Result{}, err
		}
		rd, ok := cli.(backend.ReadInvoker)
		if !ok {
			return e13Result{}, fmt.Errorf("%v client has no read fast path", p)
		}
		invokers[i] = func(ctx context.Context, cmd []byte, read bool) ([]byte, error) {
			if read {
				readsIssued.Add(1)
				r, err := rd.InvokeRead(ctx, cmd)
				return r.Result, err
			}
			writesIssued.Add(1)
			r, err := cli.Invoke(ctx, cmd)
			return r.Result, err
		}
	}

	spec := workload.Spec{
		Workers:   8,
		Requests:  requests,
		ReadRatio: ratio,
		Keys:      256,
		Dist:      dist,
		Seed:      23,
		ValueSize: 16,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*invokeTimeout)
	defer cancel()
	rep, err := workload.RunRW(ctx, spec, invokers, nil, nil)
	if err != nil {
		return e13Result{}, err
	}
	reads, writes := readsIssued.Load(), writesIssued.Load()

	// Let the trailing replica catch up (adoption only waits for a
	// majority), then hold the counters to exact equality.
	settled := func() bool {
		ts := c.TotalStats()
		return ts.Delivered >= writes*n && ts.ReadsServed >= reads*n
	}
	cluster.WaitUntil(invokeTimeout, settled)
	ts := c.TotalStats()
	if ts.ReadFallbacks != 0 {
		return e13Result{}, fmt.Errorf("%d reads fell back to the ordered path", ts.ReadFallbacks)
	}
	if ts.Delivered != writes*n {
		return e13Result{}, fmt.Errorf("deliveries %d != writes×n %d: a read entered the ordered path", ts.Delivered, writes*n)
	}
	if ts.ReadsServed != reads*n {
		return e13Result{}, fmt.Errorf("reads served %d != reads×n %d", ts.ReadsServed, reads*n)
	}
	// The oracle can only engage when workers re-read keys they wrote; at
	// extreme read ratios on scaled-down runs a worker may never write at
	// all, so engagement is only required when every worker plausibly wrote
	// a few keys. (The workload package's own tests pin engagement
	// deterministically.)
	if writes >= 4*uint64(spec.Workers) && rep.RYWChecked == 0 {
		return e13Result{}, fmt.Errorf("read-your-writes oracle never engaged")
	}
	// Reads must not lose to the ordered path. For OAR and ctab the write
	// reply itself waits for an ordering step (majority-weight adoption /
	// consensus), so the majority-validated read must be at least as fast.
	// fixedseq is the exception by design: its write rule adopts the
	// sequencer's immediate first reply — the unsafe shortcut E1 exposes —
	// which a majority-quorum read cannot be expected to beat; that cell
	// only bounds the gap.
	writeP50 := rep.Latency.P50
	limit := writeP50
	if p == cluster.FixedSeq {
		limit = 2 * writeP50
	}
	if rep.ReadLatency.P50 > limit {
		return e13Result{}, fmt.Errorf("read p50 %v > limit %v (write p50 %v)", rep.ReadLatency.P50, limit, writeP50)
	}
	violations := "-"
	if checked {
		v := 0
		for _, ck := range cks {
			v += len(ck.Verify())
		}
		if v != 0 {
			var first error
			for _, ck := range cks {
				if vs := ck.Verify(); len(vs) > 0 {
					first = vs[0]
					break
				}
			}
			return e13Result{}, fmt.Errorf("%d trace-checker violations (first: %v)", v, first)
		}
		violations = fmt.Sprint(v)
	}

	labels := map[string]string{
		"exp": "E13", "backend": p.String(), "dist": dist,
		"rw": fmt.Sprint(ratio), "shards": fmt.Sprint(shards),
	}
	readLabels := make(map[string]string, len(labels)+1)
	writeLabels := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		readLabels[k], writeLabels[k] = v, v
	}
	readLabels["path"], writeLabels["path"] = "read", "write"
	row := []string{
		p.String(), dist, fmt.Sprint(ratio), fmt.Sprint(shards),
		fmt.Sprintf("%.0f", rep.Throughput),
		rep.Latency.P50.Round(time.Microsecond).String(),
		rep.ReadLatency.P50.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2f", float64(rep.ReadLatency.P50)/float64(max64(1, int64(rep.Latency.P50)))),
		fmt.Sprint(ts.ReadsServed),
		fmt.Sprint(ts.ReadFallbacks),
		violations,
	}
	return e13Result{
		row: row,
		samples: []LatencySample{
			latencySample(readLabels, rep.ReadLatency, 0),
			latencySample(writeLabels, rep.Latency, rep.Throughput),
		},
	}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
