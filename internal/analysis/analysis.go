// Package analysis is a custom static-analysis suite that machine-checks the
// concurrency and ownership invariants this repository's hot path relies on.
// The rules it enforces are exactly the prose contracts written where the
// invariants live:
//
//   - framelease: every transport.GetFrame has exactly one matching
//     Release/ownership hand-off, no use after release, and no frame stored
//     into a long-lived structure without an explicit //oar:frame-handoff
//     marker (internal/transport/transport.go, "Ownership rule").
//   - retained: zero-copy decoded values (wire.Reader.BytesFieldRef,
//     proto.DecodeRequest/DecodeReply, proto.WalkBatch, ...) must be Clone()d
//     before being stored somewhere that outlives the input frame
//     (the clone-on-retain rule on proto.Request/Reply/SeqOrder).
//   - atomicfield: a struct field accessed through sync/atomic — either an
//     atomic.* typed field or a plain field passed to atomic.Load*/Store*/...
//     — must never be read or written plainly (memnet's liveness flags,
//     core's Footprint snapshot).
//   - grouptag: replica-side constructors of kind-tagged wire messages must
//     tag them with a configured GroupID, never a hard-coded constant — the
//     invariant behind TestServerDropsForeignGroupTraffic.
//
// The suite is deliberately self-contained: it drives go/parser and go/types
// directly (package layout and export data come from `go list -export`), so
// it needs no dependency on golang.org/x/tools. The analyzers are shipped as
// the cmd/oar-vet binary, which runs standalone (`oar-vet ./...`) and as a
// `go vet -vettool` backend, and the repository is kept clean under all four
// via TestAnalyzersClean.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "framelease").
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run reports the analyzer's findings on one package through pass.
	Run func(pass *Pass) error
}

// All returns the default suite: every analyzer, configured for this
// repository.
func All() []*Analyzer {
	return []*Analyzer{Framelease, Retained, AtomicField, GroupTag}
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies every analyzer to every package and returns the
// accumulated findings in file/position order of discovery.
//
// Test files are exempt: tests deliberately construct the misuse the suite
// forbids (reuse-safety tests release frames early, protocol tests hand-craft
// single-group traffic with literal tags), and the invariants being enforced
// are production-path contracts.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		files := nonTestFiles(pkg)
		if len(files) == 0 {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	return diags, nil
}

func nonTestFiles(pkg *Package) []*ast.File {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// --- shared type/AST helpers ---

// calleeFunc resolves the function or method called by call, or nil for
// builtins, function-typed variables and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcIs reports whether fn is the package-level function pkgPath.name.
func funcIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodIs reports whether fn is the method recvType.name (pointer or value
// receiver) declared in pkgPath.
func methodIs(fn *types.Func, pkgPath, recvType, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgPath, recvType)
}

// isNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// parentMap records the enclosing node of every AST node in a file.
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	parents := parentMap{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// forEachFunc visits every function body in the package: declarations and
// function literals, each exactly once as an independent scope.
func forEachFunc(files []*ast.File, visit func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Body)
				}
			case *ast.FuncLit:
				visit(fn.Body)
			}
			return true
		})
	}
}

// objectOf resolves an identifier to the variable it denotes, or nil.
func objectOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	switch obj := info.ObjectOf(id).(type) {
	case *types.Var:
		return obj
	}
	return nil
}

// rootIdent walks selector/index expressions down to their base identifier:
// s.payloads[id] -> s, out.queue -> out. Returns nil for other shapes.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
