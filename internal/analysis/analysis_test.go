package analysis

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The fixture tests typecheck the testdata packages against the module's
// real packages (fixtures import repro/internal/transport and friends), so
// they need the module's export data. Building that map costs one `go list
// -export -deps` run; share it across all fixture tests.
var fixtureLoader struct {
	once sync.Once
	l    *Loader
	err  error
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func loaderForFixtures(t *testing.T) *Loader {
	t.Helper()
	fixtureLoader.once.Do(func() {
		fixtureLoader.l, fixtureLoader.err = NewExportLoader(repoRoot(t))
	})
	if fixtureLoader.err != nil {
		t.Fatalf("loading export data: %v", fixtureLoader.err)
	}
	return fixtureLoader.l
}

// wantRe matches the fixture expectation syntax: // want `regexp`
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture typechecks testdata/src/<name> as package <name>, runs the
// analyzer over it, and matches the diagnostics against the fixture's
// // want `...` comments: every expectation must be hit by a diagnostic on
// its line, and every diagnostic must be expected.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := loaderForFixtures(t)
	files, err := filepath.Glob(filepath.Join("testdata", "src", name, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files for %s: %v", name, err)
	}
	pkg, err := l.Check(name, files)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", name, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("expected diagnostic at %s:%d matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestFrameleaseFixture(t *testing.T)  { runFixture(t, Framelease, "framelease") }
func TestRetainedFixture(t *testing.T)    { runFixture(t, Retained, "retained") }
func TestAtomicFieldFixture(t *testing.T) { runFixture(t, AtomicField, "atomicfield") }
func TestGroupTagFixture(t *testing.T)    { runFixture(t, NewGroupTag("grouptag"), "grouptag") }

// TestAnalyzersClean runs the full suite over the whole repository — the
// same check `make check` and CI run via cmd/oar-vet. The repo must stay
// clean: a finding here is either a real invariant violation or a missing
// //oar:frame-handoff marker at a new hand-off site.
func TestAnalyzersClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	diags, err := Run(repoRoot(t), All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the violation or, for an intentional ownership transfer, document it with an //oar:frame-handoff marker naming the balancing release site")
	}
}
