// Package framelease is the analysistest fixture for the framelease
// analyzer. Each function is one positive or negative case of the
// transport.Frame ownership rule (internal/transport/transport.go): "a Frame
// has exactly one owner; exactly one Release per GetFrame; the caller must
// not touch the frame after Release or after handing ownership off".
//
// Negative cases ("ok...") reproduce, one by one, the usage patterns the
// transport.go ownership comments document as correct; the comment on each
// names the rule it exercises. They must stay diagnostic-free: a false
// positive here means the analyzer forbids the documented idiom itself.
package framelease

import (
	"repro/internal/proto"
	"repro/internal/transport"
)

// --- acquisitions must be captured and consumed ---

func discard() {
	transport.GetFrame() // want `discarded`
}

func discardBlank() {
	_ = transport.GetFrame() // want `discarded`
}

func leak() {
	f := transport.GetFrame() // want `never released or handed off`
	f.Buf = append(f.Buf, 0x1)
}

// okSend: transport.go FrameSender rule — "SendFrame transfers ownership of
// a pooled frame"; the send is the frame's one consumption.
func okSend(s transport.FrameSender, to proto.NodeID, payload []byte) error {
	f := transport.GetFrame()
	f.Buf = append(f.Buf, payload...)
	return s.SendFrame(to, f)
}

// okErrorPath: transport.go Release rule — "exactly one Release per
// GetFrame": on paths that do not hand the frame off, the owner releases.
func okErrorPath(s transport.FrameSender, to proto.NodeID, payload []byte) error {
	f := transport.GetFrame()
	f.Buf = append(f.Buf, payload...)
	if len(f.Buf) > 1024 {
		f.Release()
		return nil
	}
	return s.SendFrame(to, f)
}

// okDeferRelease: deferred release runs at function exit, after every use in
// the body — the canonical borrow-for-the-scope shape.
func okDeferRelease() int {
	f := transport.GetFrame()
	defer f.Release()
	f.Buf = append(f.Buf, 0x2)
	return len(f.Buf)
}

// okOwnedMessage: transport.go OwnedMessage rule — "the message takes over
// the frame's single ownership: the receiver's Release recycles it".
func okOwnedMessage(from proto.NodeID, payload []byte) transport.Message {
	f := transport.GetFrame()
	f.Buf = append(f.Buf, payload...)
	return transport.OwnedMessage(from, f.Buf, f)
}

// okGoHandoff: handing the frame to a spawned goroutine transfers ownership;
// the goroutine's body is its own scope with its own Release.
func okGoHandoff() {
	f := transport.GetFrame()
	go consume(f)
}

func consume(f *transport.Frame) { f.Release() }

// okReassign: reassignment rebinds the name to a fresh frame; the old
// frame's consumption does not poison the new one.
func okReassign(s transport.FrameSender, to proto.NodeID) error {
	f := transport.GetFrame()
	f.Release()
	f = transport.GetFrame()
	return s.SendFrame(to, f)
}

// --- no use after release / hand-off, no double consumption ---

func doubleRelease() {
	f := transport.GetFrame()
	f.Release()
	f.Release() // want `again after it was already released`
}

func useAfterRelease() {
	f := transport.GetFrame()
	f.Release()
	f.Buf = nil // want `use of f after`
}

func useAfterSend(s transport.FrameSender, to proto.NodeID) int {
	f := transport.GetFrame()
	_ = s.SendFrame(to, f)
	return len(f.Buf) // want `use of f after`
}

func doubleMessageRelease(m transport.Message) {
	m.Release()
	m.Release() // want `again after it was already released`
}

// okSelect: the arms of a select are alternatives, not a sequence — the
// hand-off on one arm and the release on the other are exclusive (the
// transport.Queue pump pattern).
func okSelect(out chan transport.Message, stop chan struct{}, m transport.Message) {
	select {
	case out <- m: //oar:frame-handoff released by the consumer of out
	case <-stop:
		m.Release()
	}
}

// --- stores into long-lived structures carry the hand-off marker ---

type pending struct {
	frames []*transport.Frame
	slot   *transport.Frame
	ch     chan *transport.Frame
}

type boxed struct{ f *transport.Frame }

func (p *pending) appendBad(f *transport.Frame) {
	p.frames = append(p.frames, f) // want `appended to a slice without`
}

func (p *pending) fieldBad(f *transport.Frame) {
	p.slot = f // want `stored in a field or element without`
}

func (p *pending) sendBad(f *transport.Frame) {
	p.ch <- f // want `sent on a channel without`
}

func litBad(f *transport.Frame) boxed {
	return boxed{f: f} // want `stored in a composite literal without`
}

// okMarkedStores: the marker names the balancing release site, which is what
// makes the transfer auditable (transport.go "Ownership rule").
func (p *pending) okMarkedAppend(f *transport.Frame) {
	p.frames = append(p.frames, f) //oar:frame-handoff released by pending.drain
}

func (p *pending) okMarkedSend(f *transport.Frame) {
	//oar:frame-handoff released by the consumer draining p.ch
	p.ch <- f
}

func (p *pending) drain() {
	for _, f := range p.frames {
		f.Release()
	}
	p.frames = nil
}
