// Package atomicfield is the analysistest fixture for the atomicfield
// analyzer: struct fields accessed through sync/atomic — wrapper-typed
// fields and plain fields used via atomic.Load*/Store*/Add* — must never be
// read or written plainly.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  atomic.Uint64
	total uint64 // accessed via atomic.AddUint64/LoadUint64 below
	plain int    // never atomic: free to use directly
}

// ok: the wrapper's own methods, and &field to the old-style functions, are
// the two sanctioned access forms.
func (c *counters) ok() uint64 {
	c.hits.Add(1)
	atomic.AddUint64(&c.total, 1)
	return c.hits.Load() + atomic.LoadUint64(&c.total)
}

func (c *counters) copyBad() atomic.Uint64 {
	return c.hits // want `accessed without its atomic API`
}

func (c *counters) readBad() uint64 {
	return c.total // want `read or written plainly here`
}

func (c *counters) writeBad() {
	c.total = 0 // want `read or written plainly here`
}

// okPlain: a field never touched by sync/atomic has no atomic discipline to
// violate.
func (c *counters) okPlain() {
	c.plain++
}

// okAlias: taking the address for a local alias is allowed — the alias is
// presumed to feed the atomic API (a common shorthand in hot loops).
func (c *counters) okAlias() *uint64 {
	return &c.total
}

type table struct {
	counts [4]atomic.Uint64
}

// ok: element-wise atomic access, length, and index-only range.
func (t *table) bump(i int) {
	t.counts[i].Add(1)
}

func (t *table) size() int {
	return len(t.counts)
}

func (t *table) sum() uint64 {
	var s uint64
	for i := range t.counts {
		s += t.counts[i].Load()
	}
	return s
}

func (t *table) snapshotBad() [4]atomic.Uint64 {
	return t.counts // want `accessed without its atomic API`
}

func (t *table) rangeBad() uint64 {
	var s uint64
	for _, c := range t.counts { // want `accessed without its atomic API`
		s += c.Load()
	}
	return s
}
