// Package retained is the analysistest fixture for the retained analyzer.
// Each function exercises the clone-on-retain rule documented on
// proto.Request, proto.Reply and proto.SeqOrder: a value decoded zero-copy
// from an inbound frame aliases the frame's pooled buffer, so retaining it
// past the frame's lifetime requires Clone() (or a byte copy) first.
//
// Negative cases ("ok...") are the documented-safe shapes — cloning before
// the store, copying the bytes out, keeping only value-typed identity
// fields, or using the value strictly while the frame is live.
package retained

import "repro/internal/proto"

type server struct {
	reqs      map[proto.RequestID]proto.Request
	last      proto.Request
	lastOrder proto.SeqOrder
	lastMsg   []byte
	cmds      [][]byte
	scratch   []byte
	buffered  []proto.RequestID
}

// --- stores of tainted values must be preceded by Clone ---

func (s *server) mapBad(body []byte) {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	s.reqs[req.ID] = req // want `stored in a map or slice element`
}

func (s *server) fieldBad(body []byte) {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	s.last = req // want `stored in a struct field`
}

func (s *server) appendBad(body []byte) {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	s.cmds = append(s.cmds, req.Cmd) // want `stored in a struct field`
}

// rangeBad: elements of a tainted collection are tainted (SeqOrder.Reqs
// aliases the order's input frame).
func (s *server) rangeBad(body []byte) {
	order, err := proto.UnmarshalSeqOrder(body)
	if err != nil {
		return
	}
	for _, req := range order.Reqs {
		s.last = req // want `stored in a struct field`
	}
}

// walkBad: a proto.WalkBatch callback's msg parameter aliases the envelope
// ("msg is valid only for the duration of the callback").
func (s *server) walkBad(body []byte) {
	_ = proto.WalkBatch(body, func(msg []byte) {
		s.lastMsg = msg // want `stored in a struct field`
	})
}

// scratchBad: SeqOrder.UnmarshalBody leaves the receiver aliasing the input
// (the decode-into-scratch pattern).
func (s *server) scratchBad(body []byte) {
	var order proto.SeqOrder
	if err := order.UnmarshalBody(body); err != nil {
		return
	}
	s.lastOrder = order // want `stored in a struct field`
}

// --- documented-safe shapes ---

// okClone: Clone() is the copy-on-retain step — its result owns its memory
// (proto.Request.Clone contract).
func (s *server) okClone(body []byte) {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	s.reqs[req.ID] = req.Clone()
}

// okValueOnlyField: RequestID is integers all the way down — selecting it
// out of a tainted request yields an owned copy by value semantics.
func (s *server) okValueOnlyField(body []byte) {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	s.buffered = append(s.buffered, req.ID)
}

// okByteCopy: append(dst, b...) with a byte slice copies the bytes out of
// the frame; the destination owns them.
func (s *server) okByteCopy(body []byte) {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	s.scratch = append(s.scratch[:0], req.Cmd...)
}

// okTransientUse: reading a zero-copy value while its frame is live is the
// whole point of the zero-copy decode path.
func okTransientUse(body []byte) int {
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return 0
	}
	local := req.Cmd
	return len(local)
}

// --- the read fast path: read requests and read replies ---
//
// proto.UnmarshalRead decodes the KindRead envelope's request; its Cmd
// aliases the frame like any ordered request. On the client side, a read
// reply's Result aliases the reply frame — a ReadQuorum (or any cache)
// keeping replies across frames must Clone them (core.Client does).

type readServer struct {
	pending map[proto.RequestID]proto.Request
	results map[proto.RequestID][]byte
	last    proto.Reply
	scratch []byte
}

// readRequestBad: parking a decoded read request for a deferred Query — the
// machine-without-Reader fallback shape — retains frame memory.
func (s *readServer) readRequestBad(body []byte) {
	req, err := proto.UnmarshalRead(body)
	if err != nil {
		return
	}
	s.pending[req.ID] = req // want `stored in a map or slice element`
}

// readReplyResultBad: caching a read reply's Result beyond its frame (a
// client-side read cache) retains frame memory through the Result slice.
func (s *readServer) readReplyResultBad(body []byte) {
	r, err := proto.UnmarshalReply(body)
	if err != nil {
		return
	}
	s.results[r.Req] = r.Result // want `stored in a map or slice element`
}

// readReplyAccumulateBad: the read-adoption accumulator shape — holding the
// whole reply across frames (what backend.ReadQuorum receives) must be fed
// clones, never the decoded value itself.
func (s *readServer) readReplyAccumulateBad(body []byte) {
	r, err := proto.UnmarshalReply(body)
	if err != nil {
		return
	}
	s.last = r // want `stored in a struct field`
}

// okReadClone: the documented fix — Clone owns Cmd/Result.
func (s *readServer) okReadClone(body []byte) {
	req, err := proto.UnmarshalRead(body)
	if err != nil {
		return
	}
	s.pending[req.ID] = req.Clone()
	r, rerr := proto.UnmarshalReply(body)
	if rerr != nil {
		return
	}
	s.last = r.Clone()
}

// okReadInlineAnswer: the fast path proper — Query and reply while the frame
// is live, copying the result bytes into owned scratch.
func (s *readServer) okReadInlineAnswer(body []byte) int {
	req, err := proto.UnmarshalRead(body)
	if err != nil {
		return 0
	}
	s.scratch = append(s.scratch[:0], req.Cmd...)
	return len(s.scratch)
}
