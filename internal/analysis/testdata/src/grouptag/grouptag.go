// Package grouptag is the analysistest fixture for the grouptag analyzer:
// in replica-side packages, envelope constructors must be passed a
// configuration-derived GroupID (never a constant), and keyed
// proto.RequestID literals must set Group explicitly. The fixture package is
// registered as a checked package by the test.
package grouptag

import "repro/internal/proto"

type config struct {
	group proto.GroupID
}

// ok: the group tag flows from configuration.
func envelopeOK(c config, body []byte) []byte {
	return proto.Marshal(proto.KindRequest, c.group, body)
}

func envelopeBad(body []byte) []byte {
	return proto.Marshal(proto.KindRequest, 3, body) // want `constant group tag`
}

func headerBad(dst []byte) []byte {
	return proto.AppendHeader(dst, proto.KindHeartbeat, proto.GroupID(0)) // want `constant group tag`
}

func heartbeatBad() []byte {
	return proto.MarshalHeartbeat(0) // want `constant group tag`
}

// ok: request identities carry their group.
func idOK(c config, seq uint64) proto.RequestID {
	return proto.RequestID{Group: c.group, Client: 1, Seq: seq}
}

func idBad(seq uint64) proto.RequestID {
	return proto.RequestID{Client: 1, Seq: seq} // want `without a Group field`
}

// ok: the zero value is a comparison/probe, not a constructed identity.
func idZero() proto.RequestID {
	return proto.RequestID{}
}

// ok: a positional literal names every field by construction.
func idPositional(c config, seq uint64) proto.RequestID {
	return proto.RequestID{c.group, 2, seq}
}
