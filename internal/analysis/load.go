package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader typechecks packages of the enclosing module without any dependency
// on golang.org/x/tools: `go list -export -deps` supplies the file layout and
// compiled export data for every dependency (stdlib included), the target
// packages themselves are typechecked from source, and imports resolve
// through the export data. Everything works offline from the build cache.
type Loader struct {
	dir     string
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Module     *struct{ Path string }
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// NewLoader builds a loader rooted at the module directory dir. patterns
// name the packages to make loadable (targets plus, transitively, every
// dependency's export data); "./..." is typical.
func NewLoader(dir string, patterns ...string) (*Loader, []*Package, error) {
	l, targets, err := newLoader(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, gf := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, gf)
		}
		pkg, err := l.Check(t.ImportPath, files)
		if err != nil {
			return nil, nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return l, pkgs, nil
}

// NewExportLoader gathers package layout and export data for patterns (and
// all their dependencies) without typechecking anything — the fixture tests
// use it to typecheck testdata packages against the module's real packages.
func NewExportLoader(dir string, patterns ...string) (*Loader, error) {
	l, _, err := newLoader(dir, patterns)
	return l, err
}

// newLoader runs `go list -export -deps`, seeds the export-data map and
// returns the loader plus the listed target packages (not yet typechecked).
func newLoader(dir string, patterns []string) (*Loader, []listedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}

	l := &Loader{dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("analysis: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		// Analyze only the packages the patterns named, and only those of
		// the module itself (explicitly listed stdlib patterns merely seed
		// export data for fixtures).
		if !p.DepOnly && p.Module != nil {
			targets = append(targets, p)
		}
	}
	return l, targets, nil
}

// NewRawChecker builds a Loader around an existing importer — the vettool
// mode of cmd/oar-vet uses it with go vet's own export-data map instead of a
// go list run.
func NewRawChecker(fset *token.FileSet, imp types.Importer) *Loader {
	return &Loader{fset: fset, imp: imp}
}

// Check parses and typechecks the given source files as one package with the
// given import path, resolving imports through the loader's export data. It
// is used both for the module's own packages and for analyzer test fixtures
// (which live under testdata and are invisible to go list).
func (l *Loader) Check(path string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// Run loads the packages matched by patterns in the module rooted at dir and
// applies analyzers to all of them — the one-call entry point used by
// cmd/oar-vet and TestAnalyzersClean.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	_, pkgs, err := NewLoader(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, analyzers)
}
