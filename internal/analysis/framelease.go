package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Framelease enforces the pooled-frame ownership rule documented on
// transport.Frame (internal/transport/transport.go): a Frame has exactly one
// owner at a time and Release is called exactly once per GetFrame.
//
// Checked:
//
//   - a transport.GetFrame() result must be captured, not discarded;
//   - an acquired frame must be consumed on some path in its function:
//     released, handed to a call that takes ownership (a *transport.Frame
//     parameter — SendFrame, OwnedMessage, ...), returned, sent, or
//     explicitly stored as a hand-off;
//   - straight-line code may not use a frame (or a transport.Message) after
//     the statement that released or handed it off, and may not release it
//     twice;
//   - storing a frame or message into a field, element, composite literal or
//     channel is a transfer into a long-lived structure and must carry an
//     "//oar:frame-handoff" marker on the same or preceding line, naming the
//     release site that balances it.
//
// The analysis is function-local and syntactic over typed ASTs: it does not
// follow a frame through arbitrary aliases or across calls. That is the
// right trade-off here, because the documented discipline is itself local —
// acquire, fill, hand off — and every cross-goroutine transfer goes through
// one of the marked hand-off points.
var Framelease = &Analyzer{
	Name: "framelease",
	Doc:  "check exactly-once Release / ownership hand-off of pooled transport.Frames",
	Run:  runFramelease,
}

// HandoffMarker is the comment marker that documents an intentional store of
// a pooled frame into a long-lived structure.
const HandoffMarker = "oar:frame-handoff"

const transportPath = "repro/internal/transport"

// frameConsumeKind classifies how a statement disposes of a frame.
type frameConsumeKind int

const (
	consumeNone    frameConsumeKind = iota
	consumeRelease                  // f.Release() / m.Release()
	consumeHandoff                  // passed to a *Frame parameter, returned, sent, stored
)

func runFramelease(pass *Pass) error {
	fl := &frameleaseFunc{pass: pass, markers: handoffMarkerLines(pass)}
	fl.checkStores()
	forEachFunc(pass.Files, func(body *ast.BlockStmt) {
		fl.checkLeaks(body)
		fl.checkStraightLine(body)
	})
	return nil
}

// handoffMarkerLines collects the file lines carrying //oar:frame-handoff.
func handoffMarkerLines(pass *Pass) map[string]map[int]bool {
	lines := map[string]map[int]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, HandoffMarker) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m := lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					lines[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return lines
}

type frameleaseFunc struct {
	pass    *Pass
	markers map[string]map[int]bool
}

func (fl *frameleaseFunc) isFrameType(t types.Type) bool {
	return isNamed(t, transportPath, "Frame")
}

func (fl *frameleaseFunc) isTracked(t types.Type) bool {
	return fl.isFrameType(t) || isNamed(t, transportPath, "Message")
}

func (fl *frameleaseFunc) trackedVarOf(e ast.Expr) *types.Var {
	v := objectOf(fl.pass.Info, e)
	if v == nil || !fl.isTracked(v.Type()) {
		return nil
	}
	return v
}

// markedHandoff reports whether pos's line (or the line above it) carries the
// hand-off marker.
func (fl *frameleaseFunc) markedHandoff(pos token.Pos) bool {
	p := fl.pass.Fset.Position(pos)
	m := fl.markers[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// --- rule: stores into long-lived structures need a marker ---

// checkStores reports every store of a frame or message value (composite
// literal, append, field/element assignment, channel send) that lacks the
// //oar:frame-handoff marker. One walk per file, so each site reports once.
func (fl *frameleaseFunc) checkStores() {
	for _, f := range fl.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range node.Elts {
					expr := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						expr = kv.Value
					}
					if v := fl.trackedVarOf(expr); v != nil {
						fl.reportUnmarkedStore(expr.Pos(), v, "stored in a composite literal")
					}
				}
			case *ast.SendStmt:
				if v := fl.trackedVarOf(node.Value); v != nil {
					fl.reportUnmarkedStore(node.Pos(), v, "sent on a channel")
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					v := fl.trackedVarOf(rhs)
					if v == nil || i >= len(node.Lhs) {
						continue
					}
					switch node.Lhs[i].(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						fl.reportUnmarkedStore(node.Pos(), v, "stored in a field or element")
					}
				}
				for _, rhs := range node.Rhs {
					fl.checkAppendStore(rhs)
				}
			case *ast.ExprStmt:
				fl.checkAppendStore(node.X)
			}
			return true
		})
	}
}

// checkAppendStore flags append(dst, f) where f is a frame or message.
func (fl *frameleaseFunc) checkAppendStore(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || fl.pass.Info.Uses[id] != types.Universe.Lookup("append") {
		return
	}
	for _, arg := range call.Args[1:] {
		if v := fl.trackedVarOf(arg); v != nil {
			fl.reportUnmarkedStore(arg.Pos(), v, "appended to a slice")
		}
	}
}

func (fl *frameleaseFunc) reportUnmarkedStore(pos token.Pos, v *types.Var, how string) {
	if fl.markedHandoff(pos) {
		return
	}
	fl.pass.Reportf(pos, "pooled frame %s %s without an %q marker: storing a frame in a long-lived structure transfers ownership and must be documented with the release site that balances it (transport.go Frame ownership rule)", v.Name(), how, "//"+HandoffMarker)
}

// --- rule: every GetFrame is captured and eventually consumed ---

// checkLeaks verifies that every transport.GetFrame() directly inside body
// (not in nested function literals, which are scoped separately) is captured
// and consumed somewhere in the same function.
func (fl *frameleaseFunc) checkLeaks(body *ast.BlockStmt) {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // its own scope; forEachFunc visits it separately
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !funcIs(calleeFunc(fl.pass.Info, call), transportPath, "GetFrame") {
			return true
		}
		switch parent := parents[call].(type) {
		case *ast.AssignStmt:
			v := fl.assignedVar(parent, call)
			if v == nil {
				fl.pass.Reportf(call.Pos(), "result of transport.GetFrame is discarded: the frame leaks from the pool (transport.go Frame ownership rule: exactly one Release per GetFrame)")
				return true
			}
			if !fl.varIsConsumed(body, v) {
				fl.pass.Reportf(call.Pos(), "frame %s acquired from transport.GetFrame is never released or handed off in this function (transport.go Frame ownership rule: exactly one Release per GetFrame)", v.Name())
			}
		case *ast.ExprStmt:
			fl.pass.Reportf(call.Pos(), "result of transport.GetFrame is discarded: the frame leaks from the pool (transport.go Frame ownership rule: exactly one Release per GetFrame)")
		}
		// Direct use as an argument/return value is an immediate hand-off.
		return true
	})
}

// assignedVar returns the variable the call's result is bound to in assign,
// or nil when it is dropped (assigned to _) or not bound to a plain ident.
func (fl *frameleaseFunc) assignedVar(assign *ast.AssignStmt, call *ast.CallExpr) *types.Var {
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) != call || i >= len(assign.Lhs) {
			continue
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		return objectOf(fl.pass.Info, id)
	}
	return nil
}

// varIsConsumed reports whether v is consumed (released, handed off,
// returned, stored, reassigned away) anywhere in body — including inside
// nested closures, which is how deferred cleanups release.
func (fl *frameleaseFunc) varIsConsumed(body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if kind, _ := fl.consumesVar(n, v); kind != consumeNone {
			found = true
			return false
		}
		return true
	})
	return found
}

// consumesVar classifies whether node n, considered in isolation, consumes
// v's frame ownership. It is pure: store-marker violations are reported by
// checkStores, not here.
func (fl *frameleaseFunc) consumesVar(n ast.Node, v *types.Var) (frameConsumeKind, token.Pos) {
	switch node := n.(type) {
	case *ast.CallExpr:
		// f.Release()
		if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
			if objectOf(fl.pass.Info, sel.X) == v {
				fn := calleeFunc(fl.pass.Info, node)
				if methodIs(fn, transportPath, "Frame", "Release") || methodIs(fn, transportPath, "Message", "Release") {
					return consumeRelease, node.Pos()
				}
			}
		}
		// v passed to a *transport.Frame parameter: ownership transfer
		// (SendFrame, OwnedMessage, memnet's link.push, ...). Message-typed
		// parameters borrow — the caller still releases — so they do not
		// consume.
		if fl.isFrameType(v.Type()) {
			sigType := fl.pass.Info.Types[node.Fun].Type
			if sigType == nil {
				if fn := calleeFunc(fl.pass.Info, node); fn != nil {
					sigType = fn.Type()
				}
			}
			if sig, ok := sigType.(*types.Signature); ok {
				for i, arg := range node.Args {
					if objectOf(fl.pass.Info, arg) != v {
						continue
					}
					if pt := paramTypeAt(sig, i); pt != nil && fl.isFrameType(pt) {
						return consumeHandoff, node.Pos()
					}
				}
			}
		}
		// append(dst, v): escapes into dst.
		if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "append" && fl.pass.Info.Uses[id] == types.Universe.Lookup("append") {
			for _, arg := range node.Args[1:] {
				if objectOf(fl.pass.Info, arg) == v {
					return consumeHandoff, node.Pos()
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range node.Results {
			if objectOf(fl.pass.Info, res) == v {
				return consumeHandoff, node.Pos()
			}
		}
	case *ast.SendStmt:
		if objectOf(fl.pass.Info, node.Value) == v {
			return consumeHandoff, node.Pos()
		}
	case *ast.CompositeLit:
		for _, elt := range node.Elts {
			expr := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				expr = kv.Value
			}
			if objectOf(fl.pass.Info, expr) == v {
				return consumeHandoff, node.Pos()
			}
		}
	case *ast.AssignStmt:
		for i, rhs := range node.Rhs {
			if objectOf(fl.pass.Info, rhs) != v || i >= len(node.Lhs) {
				continue
			}
			// Transferred to another name or stored: the alias or the
			// structure takes over ownership.
			return consumeHandoff, node.Pos()
		}
	case *ast.GoStmt:
		for _, arg := range node.Call.Args {
			if objectOf(fl.pass.Info, arg) == v {
				return consumeHandoff, node.Pos() // the new goroutine owns it
			}
		}
	}
	return consumeNone, token.NoPos
}

// paramTypeAt returns the type of the i-th argument's parameter, handling
// variadic signatures.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// --- rule: no use after release, no double release (straight-line) ---

// checkStraightLine walks every statement list and flags uses after the
// statement that consumed the frame, and second consumptions, within the
// same block. Consumptions inside nested blocks (an if body, a loop, one arm
// of a switch or select) are conditional and deliberately do not poison the
// enclosing block.
func (fl *frameleaseFunc) checkStraightLine(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch block := n.(type) {
		case *ast.FuncLit:
			return false // its own scope; forEachFunc visits it separately
		case *ast.BlockStmt:
			if isClauseList(block.List) {
				return true // switch/select body: clauses scanned separately
			}
			fl.scanStmts(block.List)
		case *ast.CaseClause:
			fl.scanStmts(block.Body)
		case *ast.CommClause:
			stmts := block.Body
			if block.Comm != nil {
				// The communication itself (a send hand-off, a receive
				// definition) precedes the clause body.
				stmts = append([]ast.Stmt{block.Comm}, block.Body...)
			}
			fl.scanStmts(stmts)
		}
		return true
	})
}

// isClauseList reports whether a block's statements are switch/select
// clauses rather than ordinary statements.
func isClauseList(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch stmts[0].(type) {
	case *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}

type consumption struct {
	kind frameConsumeKind
	pos  token.Pos
}

func (fl *frameleaseFunc) scanStmts(stmts []ast.Stmt) {
	consumed := map[*types.Var]consumption{}
	for _, stmt := range stmts {
		if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
			continue // runs at function exit, not at this point in the block
		}
		if len(consumed) > 0 {
			// Reassignment targets are not uses of the old frame.
			lhsTargets := map[*ast.Ident]bool{}
			if assign, ok := stmt.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						lhsTargets[id] = true
					}
				}
			}
			// Any use of an already-consumed frame in a later statement?
			fl.eachDirectIdent(stmt, func(id *ast.Ident) {
				if lhsTargets[id] {
					return
				}
				v, ok := fl.pass.Info.Uses[id].(*types.Var)
				if !ok {
					return
				}
				c, was := consumed[v]
				if !was {
					return
				}
				if kind, _ := fl.directConsume(stmt, v); kind != consumeNone {
					verb := "released"
					if c.kind == consumeHandoff {
						verb = "handed off"
					}
					fl.pass.Reportf(id.Pos(), "%s is released or handed off again after it was already %s at line %d (transport.go Frame ownership rule: exactly one Release per GetFrame)", v.Name(), verb, fl.pass.Fset.Position(c.pos).Line)
				} else {
					fl.pass.Reportf(id.Pos(), "use of %s after its frame was released or handed off at line %d: the buffer may already carry an unrelated message (transport.go: the caller must not touch the frame after Release/SendFrame)", v.Name(), fl.pass.Fset.Position(c.pos).Line)
				}
				delete(consumed, v) // one report per incident
			})
		}
		// Reassignment gives the name a fresh frame (e.g. f = nil, or a new
		// GetFrame): clear the consumed state.
		if assign, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if v := objectOf(fl.pass.Info, lhs); v != nil {
					delete(consumed, v)
				}
			}
		}
		// Record this statement's own direct consumptions.
		fl.eachTrackedVar(stmt, func(v *types.Var) {
			if kind, pos := fl.directConsume(stmt, v); kind != consumeNone {
				if _, already := consumed[v]; !already {
					consumed[v] = consumption{kind: kind, pos: pos}
				}
			}
		})
	}
}

// eachTrackedVar calls fn once per distinct Frame/Message variable mentioned
// directly in stmt (not inside nested blocks or function literals).
func (fl *frameleaseFunc) eachTrackedVar(stmt ast.Stmt, fn func(*types.Var)) {
	seen := map[*types.Var]bool{}
	fl.eachDirectIdent(stmt, func(id *ast.Ident) {
		v, ok := fl.pass.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || !fl.isTracked(v.Type()) {
			return
		}
		seen[v] = true
		fn(v)
	})
}

// directConsume reports whether stmt directly (at its top level) consumes v.
func (fl *frameleaseFunc) directConsume(stmt ast.Stmt, v *types.Var) (frameConsumeKind, token.Pos) {
	kind, pos := consumeNone, token.NoPos
	fl.inspectDirect(stmt, func(n ast.Node) {
		if kind != consumeNone {
			return
		}
		if k, p := fl.consumesVar(n, v); k != consumeNone {
			kind, pos = k, p
		}
	})
	return kind, pos
}

// eachDirectIdent visits identifiers that execute unconditionally as part of
// stmt itself — skipping nested statement blocks and function literals.
func (fl *frameleaseFunc) eachDirectIdent(stmt ast.Stmt, fn func(*ast.Ident)) {
	fl.inspectDirect(stmt, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			fn(id)
		}
	})
}

// inspectDirect walks stmt but stops at nested blocks, clauses and function
// literals, so only the statement's own unconditionally-executed expressions
// are seen.
func (fl *frameleaseFunc) inspectDirect(stmt ast.Stmt, fn func(ast.Node)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return true
		case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false // conditional / deferred execution
		}
		fn(n)
		return true
	})
}
