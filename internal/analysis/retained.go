package analysis

import (
	"go/ast"
	"go/types"
)

// Retained enforces the clone-on-retain rule documented on proto.Request,
// proto.Reply and proto.SeqOrder: a value decoded zero-copy from an inbound
// frame (wire.Reader.BytesFieldRef, proto.DecodeRequest, proto.WalkBatch
// callbacks, ...) aliases the frame's pooled buffer and is valid only while
// the frame is. Code that retains such a value past the handling of its
// frame — storing it in a map, a struct field, a slice reachable from the
// receiver — must Clone() it (or copy the bytes) first.
//
// The taint analysis is function-local and flow-forward: values returned by
// the aliasing decode APIs are tainted; taint propagates through plain
// assignment, field selection and composite literals; it is cleared by
// Clone() and by byte-copying appends (append(dst, b...)). A violation is a
// store of a tainted value into a location rooted outside the function's own
// locals (a receiver or parameter field, a package variable, a map). Passing
// a tainted value to another function is not flagged — callees own their own
// retention discipline and are analyzed separately.
var Retained = &Analyzer{
	Name: "retained",
	Doc:  "check that zero-copy decoded values are Clone()d before being retained",
	Run:  runRetained,
}

const (
	protoPath = "repro/internal/proto"
	wirePath  = "repro/internal/wire"
)

// aliasReturn describes one decode API whose results alias its input.
// result is the index of the aliasing return value (-1: all results).
type aliasReturn struct {
	pkg, recv, name string
	result          int
}

// aliasSources are the zero-copy decode entry points, each tied to the
// ownership comment that defines its rule.
var aliasSources = []aliasReturn{
	// wire.Reader: "BytesFieldRef returns a view of the reader's input".
	{wirePath, "Reader", "BytesFieldRef", 0},
	{wirePath, "Reader", "FrameList", 0},
	// proto zero-copy decoders: "Cmd/Result aliases the decode input".
	{protoPath, "", "DecodeRequest", 0},
	{protoPath, "", "DecodeReply", 0},
	{protoPath, "", "Unmarshal", 2}, // body aliases payload
	{protoPath, "", "UnmarshalBatch", 0},
	{protoPath, "", "UnmarshalRMcast", 0},
	{protoPath, "", "UnmarshalRequest", 0},
	// Read-only requests (the zero-ordering fast path) decode through their
	// own entry point but alias the frame exactly like ordered requests: a
	// replica deferring the Query past the frame's handling must Clone first.
	{protoPath, "", "UnmarshalRead", 0},
	{protoPath, "", "UnmarshalReply", 0},
	{protoPath, "", "UnmarshalSeqOrder", 0},
	// transport.ExpandBatch: inner messages alias the envelope frame.
	{transportPath, "", "ExpandBatch", 0},
}

// aliasThroughReceiver are methods that leave their receiver aliasing the
// argument (SeqOrder.UnmarshalBody decodes into a reusable scratch order).
var aliasThroughReceiver = []aliasReturn{
	{protoPath, "SeqOrder", "UnmarshalBody", -1},
}

// cloneMethods launder taint: their results own their memory.
var cloneMethods = map[string]bool{"Clone": true}

// exemptPackages implement the zero-copy codec itself: their bodies are the
// aliasing machinery the rule talks about, not consumers of it.
var exemptPackages = map[string]bool{
	wirePath:  true,
	protoPath: true,
}

func runRetained(pass *Pass) error {
	if exemptPackages[pass.Pkg.Path()] {
		return nil
	}
	// Each top-level function is one scope; closures are analyzed inside
	// their enclosing function so that taint flowing into a callback (the
	// WalkBatch pattern) is visible at the callback's stores.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			rt := &retainedFunc{pass: pass, tainted: map[*types.Var]bool{}, locals: map[*types.Var]bool{}}
			rt.collectLocals(fd.Body)
			rt.scan(fd.Body)
		}
	}
	return nil
}

type retainedFunc struct {
	pass    *Pass
	tainted map[*types.Var]bool
	locals  map[*types.Var]bool // declared in this function body
}

func (rt *retainedFunc) collectLocals(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := rt.pass.Info.Defs[id].(*types.Var); ok {
			rt.locals[v] = true
		}
		return true
	})
}

// scan walks the body in source order, propagating taint and flagging
// escaping stores. One forward pass: loops that carry taint backwards are a
// documented blind spot, kept in exchange for zero false positives.
func (rt *retainedFunc) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			rt.handleAssign(node)
		case *ast.CallExpr:
			rt.handleCall(node)
		case *ast.RangeStmt:
			// Ranging over a tainted collection yields tainted elements
			// (e.g. for _, req := range order.Reqs).
			if node.X != nil && rt.exprTainted(node.X) {
				for _, e := range []ast.Expr{node.Key, node.Value} {
					if e == nil {
						continue
					}
					if v := rt.definedOrUsedVar(e); v != nil {
						rt.tainted[v] = carriesAliases(v.Type(), map[types.Type]bool{})
					}
				}
			}
		}
		return true
	})
}

// handleCall taints WalkBatch callback parameters and receivers of
// decode-into methods.
func (rt *retainedFunc) handleCall(call *ast.CallExpr) {
	fn := calleeFunc(rt.pass.Info, call)
	if fn == nil {
		return
	}
	// proto.WalkBatch(body, func(msg []byte) { ... }): msg aliases body.
	if funcIs(fn, protoPath, "WalkBatch") && len(call.Args) == 2 {
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok && len(lit.Type.Params.List) == 1 {
			for _, name := range lit.Type.Params.List[0].Names {
				if v, ok := rt.pass.Info.Defs[name].(*types.Var); ok {
					rt.tainted[v] = true
				}
			}
		}
	}
	// m.UnmarshalBody(body): m now aliases body.
	for _, src := range aliasThroughReceiver {
		if methodIs(fn, src.pkg, src.recv, src.name) {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if v := objectOf(rt.pass.Info, sel.X); v != nil {
					rt.tainted[v] = true
				}
			}
		}
	}
}

// handleAssign propagates taint through the assignment and flags escaping
// stores of tainted values.
func (rt *retainedFunc) handleAssign(assign *ast.AssignStmt) {
	// Multi-value form: v, err := DecodeX(...).
	if len(assign.Lhs) > 1 && len(assign.Rhs) == 1 {
		if call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); ok {
			if idx := rt.aliasResultIndex(call); idx >= -1 {
				for i, lhs := range assign.Lhs {
					if idx != -1 && i != idx {
						continue
					}
					if v := rt.definedOrUsedVar(lhs); v != nil {
						rt.tainted[v] = carriesAliases(v.Type(), map[types.Type]bool{})
					}
				}
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) {
			break
		}
		lhs := assign.Lhs[i]
		taintedRHS := rt.exprTainted(rhs)
		if v := rt.definedOrUsedVar(lhs); v != nil {
			// Plain variable: inherit (or clear) taint. A variable whose type
			// has no reference fields holds an owned copy by value semantics
			// and cannot carry taint.
			rt.tainted[v] = taintedRHS && carriesAliases(v.Type(), map[types.Type]bool{})
			continue
		}
		if taintedRHS && rt.escapes(lhs) {
			rt.pass.Reportf(assign.Pos(), "zero-copy decoded value is stored in %s, which outlives the input frame: Clone() it first (clone-on-retain rule, proto.Request/Reply/SeqOrder ownership comments)", describeLValue(lhs))
		}
	}
}

// definedOrUsedVar resolves lhs to a plain variable, or nil when lhs is a
// field/index/deref store.
func (rt *retainedFunc) definedOrUsedVar(lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := rt.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := rt.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// aliasResultIndex reports which result of call aliases its input (-1: all,
// -2: none).
func (rt *retainedFunc) aliasResultIndex(call *ast.CallExpr) int {
	fn := calleeFunc(rt.pass.Info, call)
	if fn == nil {
		return -2
	}
	for _, src := range aliasSources {
		ok := false
		if src.recv == "" {
			ok = funcIs(fn, src.pkg, src.name)
		} else {
			ok = methodIs(fn, src.pkg, src.recv, src.name)
		}
		if ok {
			return src.result
		}
	}
	return -2
}

// exprTainted reports whether e evaluates to a value aliasing an input
// frame, under the current taint state.
func (rt *retainedFunc) exprTainted(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := rt.pass.Info.Uses[x].(*types.Var)
		return ok && rt.tainted[v]
	case *ast.SelectorExpr:
		// req.Cmd is as tainted as req — but selecting a purely value-typed
		// field (req.ID, a RequestID of integers) produces an owned copy.
		return rt.exprTainted(x.X) && rt.typeCarriesAliases(e)
	case *ast.IndexExpr:
		return rt.exprTainted(x.X) && rt.typeCarriesAliases(e)
	case *ast.SliceExpr:
		return rt.exprTainted(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			expr := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				expr = kv.Value
			}
			if rt.exprTainted(expr) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return rt.exprTainted(x.X)
	case *ast.CallExpr:
		return rt.callTainted(x)
	}
	return false
}

// callTainted decides whether a call expression yields a tainted value:
// decode APIs do; Clone() and byte-copying appends do not; append that
// embeds a tainted element does.
func (rt *retainedFunc) callTainted(call *ast.CallExpr) bool {
	if fn := calleeFunc(rt.pass.Info, call); fn != nil {
		if cloneMethods[fn.Name()] {
			return false // owned copy by contract
		}
	}
	if idx := rt.aliasResultIndex(call); idx == 0 || idx == -1 {
		return true
	}
	// append(dst, x) keeps an alias of x when x is a reference value;
	// append(dst, b...) with basic element type copies the bytes out.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && rt.pass.Info.Uses[id] == types.Universe.Lookup("append") {
		for i, arg := range call.Args[1:] {
			if !rt.exprTainted(arg) {
				continue
			}
			spread := call.Ellipsis.IsValid() && i == len(call.Args)-2
			if spread {
				if t, ok := rt.pass.Info.Types[arg]; ok {
					if sl, ok := t.Type.Underlying().(*types.Slice); ok {
						if _, basic := sl.Elem().Underlying().(*types.Basic); basic {
							continue // byte-for-byte copy: owned
						}
					}
				}
			}
			return true
		}
		// The backing array of dst is tainted only if dst itself was.
		return len(call.Args) > 0 && rt.exprTainted(call.Args[0])
	}
	return false
}

// escapes reports whether the lvalue is rooted outside the function's own
// value-typed locals: a field of the receiver or a parameter, a package
// variable, a map entry, or anything reached through a pointer/map local.
func (rt *retainedFunc) escapes(lhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil {
		return true // *p = x and friends: assume it escapes
	}
	v, ok := rt.pass.Info.Uses[root].(*types.Var)
	if !ok {
		return true
	}
	if !rt.locals[v] {
		return true // receiver, parameter or package-level variable
	}
	// A local of reference type (map, pointer) may alias long-lived state;
	// slices created locally are treated as local scratch.
	switch v.Type().Underlying().(type) {
	case *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// typeCarriesAliases reports whether e's type can hold a reference into the
// decode input. Purely value-typed data (integers, bools, structs and arrays
// thereof — proto.RequestID, for instance) is an owned copy the moment it is
// selected or assigned, so retaining it is always safe.
func (rt *retainedFunc) typeCarriesAliases(e ast.Expr) bool {
	tv, ok := rt.pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative, keep the taint
	}
	return carriesAliases(tv.Type, map[types.Type]bool{})
}

func carriesAliases(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		// Strings included: the decode layer materializes strings with
		// copying conversions, never via unsafe aliasing.
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesAliases(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesAliases(u.Elem(), seen)
	default:
		// Slices, pointers, maps, chans, interfaces, funcs.
		return true
	}
}

// describeLValue renders the store destination for the diagnostic.
func describeLValue(lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		if x != nil {
			return "a map or slice element"
		}
	case *ast.StarExpr:
		return "a pointed-to location"
	}
	return "a long-lived location"
}
