package analysis

import (
	"go/ast"
	"go/types"
)

// GroupTag enforces the group-tagging invariant behind
// TestServerDropsForeignGroupTraffic: every kind-tagged wire message a
// replica-side package constructs must carry the ordering group it was
// configured with. Since PR 2, receivers drop foreign-group traffic before
// decoding the body — a message tagged with the wrong group is silently
// lost, which presents as a liveness bug, not an error.
//
// In the replica packages (core, the baselines, rmcast, consensus — the
// code that builds protocol traffic), the analyzer requires:
//
//   - the proto.GroupID argument of every envelope constructor
//     (proto.Marshal, AppendHeader, EncodeHeader, Marshal*/Append* and
//     transport.NewBatcher/SendBatch) to be derived from configuration — a
//     variable, field or call — never a constant expression. A hard-coded
//     group compiles, passes single-group tests (group 0), and loses every
//     message the moment the keyspace shards;
//   - every keyed proto.RequestID composite literal to set Group
//     explicitly: request identities are group-qualified, and a zero group
//     silently routes the request's replies to shard 0's clients.
//
// Packages outside the replica set (tests, experiments, the facade wiring a
// fixed group into a config struct) are not checked: constructing a
// one-group system with literal 0 is legitimate there.
var GroupTag = NewGroupTag(DefaultGroupTagPackages()...)

// DefaultGroupTagPackages returns the replica-side packages whose outgoing
// traffic must be group-tagged from configuration.
func DefaultGroupTagPackages() []string {
	return []string{
		"repro/internal/core",
		"repro/internal/baseline",
		"repro/internal/baseline/ctab",
		"repro/internal/baseline/fixedseq",
		"repro/internal/rmcast",
		"repro/internal/consensus",
		"repro/internal/fd",
	}
}

// NewGroupTag builds a GroupTag analyzer checking the given package paths
// (used by the fixture tests to include testdata packages).
func NewGroupTag(pkgs ...string) *Analyzer {
	checked := map[string]bool{}
	for _, p := range pkgs {
		checked[p] = true
	}
	return &Analyzer{
		Name: "grouptag",
		Doc:  "check that replica packages tag outgoing messages with a configured GroupID",
		Run: func(pass *Pass) error {
			if !checked[pass.Pkg.Path()] {
				return nil
			}
			return runGroupTag(pass)
		},
	}
}

func runGroupTag(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkGroupArg(pass, node)
			case *ast.CompositeLit:
				checkRequestIDLit(pass, node)
			}
			return true
		})
	}
	return nil
}

// groupTakingFuncs are the envelope constructors: any parameter of type
// proto.GroupID in these signatures is the message's group tag.
var groupTakingFuncs = map[string][]string{
	protoPath: {
		"Marshal", "AppendHeader", "EncodeHeader",
		"MarshalRMcast", "AppendRMcast",
		"MarshalSeqOrder", "AppendSeqOrder",
		"MarshalPhaseII", "AppendPhaseII",
		"MarshalHeartbeat", "AppendHeartbeat",
		"MarshalBatch",
	},
	transportPath: {"NewBatcher", "SendBatch"},
}

// checkGroupArg flags constant GroupID arguments to envelope constructors.
func checkGroupArg(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	names, ok := groupTakingFuncs[fn.Pkg().Path()]
	if !ok {
		return
	}
	found := false
	for _, name := range names {
		if fn.Name() == name {
			found = true
			break
		}
	}
	if !found {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !isNamed(pt, protoPath, "GroupID") {
			continue
		}
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
			pass.Reportf(arg.Pos(), "%s.%s is called with a constant group tag: replica packages must tag outgoing messages with their configured GroupID (cfg.GroupID), or receivers in other groups will silently drop them", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkRequestIDLit flags keyed proto.RequestID literals that omit Group.
func checkRequestIDLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isNamed(tv.Type, protoPath, "RequestID") {
		return
	}
	if len(lit.Elts) == 0 {
		return // zero value: comparisons, map probes — not a constructed identity
	}
	keyed := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: all fields present by construction
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Group" {
			return
		}
	}
	if keyed {
		pass.Reportf(lit.Pos(), "proto.RequestID literal without a Group field: request identities are group-qualified (proto.RequestID doc), and a zero group mis-routes the request and its replies once the keyspace shards")
	}
}
