package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the atomic-access discipline behind memnet's
// contention-free send path and core's Footprint snapshot: once a struct
// field is accessed through sync/atomic, every access must be.
//
// Two rules:
//
//   - A field whose type is one of the sync/atomic wrapper types
//     (atomic.Bool, atomic.Uint64, atomic.Pointer[T], ...) may only be used
//     as the receiver of its atomic methods (Load, Store, Add, Swap,
//     CompareAndSwap), through &, or indexed on the way to such a call.
//     Copying it, assigning it, or ranging over its values reads the memory
//     without synchronization (and go vet's copylocks only catches some
//     shapes).
//   - A plain field that is passed by address to a sync/atomic function
//     (atomic.AddUint64(&s.n, 1), atomic.StoreInt32, ...) anywhere in the
//     package must never be read or written without sync/atomic in that
//     package: mixed atomic/plain access is a data race that -race only
//     catches probabilistically.
//
// Both rules are per-package, which matches Go's visibility: the fields in
// question are unexported, so every access site is in the package.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "check that atomically-accessed struct fields are never accessed plainly",
	Run:  runAtomicField,
}

const syncAtomicPath = "sync/atomic"

// atomicFuncPrefixes are the old-style sync/atomic function families.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != syncAtomicPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// isAtomicWrapperType reports whether t is one of sync/atomic's typed
// wrappers (Bool, Int32, ..., Pointer[T], Value).
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == syncAtomicPath
}

func runAtomicField(pass *Pass) error {
	parents := buildParents(pass.Files)

	// Pass 1: collect plain fields that are passed by address to a
	// sync/atomic function anywhere in this package.
	atomicFields := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(calleeFunc(pass.Info, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if fld := fieldOfSelector(pass.Info, un.X); fld != nil {
					atomicFields[fld] = true
				}
			}
			return true
		})
	}

	// Pass 2: check every field use.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOfSelector(pass.Info, sel)
			if fld == nil {
				return true
			}
			if isAtomicWrapperType(fld.Type()) || isAtomicArrayField(fld) {
				if !allowedWrapperUse(pass, parents, sel) {
					pass.Reportf(sel.Pos(), "field %s has atomic type %s but is accessed without its atomic API: copying or assigning it reads the value without synchronization", fld.Name(), fld.Type())
				}
				return true
			}
			if atomicFields[fld] && !allowedPlainAtomicUse(pass, parents, sel) {
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package but read or written plainly here: mixed access is a data race -race only catches probabilistically", fld.Name())
			}
			return true
		})
	}
	return nil
}

// fieldOfSelector resolves sel to the struct field it denotes, or nil.
func fieldOfSelector(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified identifiers (pkg.X) land in Uses, not Selections.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isAtomicArrayField reports whether fld is an array of atomic wrappers
// (e.g. [256]atomic.Uint64), which is accessed element-wise.
func isAtomicArrayField(fld *types.Var) bool {
	arr, ok := fld.Type().Underlying().(*types.Array)
	return ok && isAtomicWrapperType(arr.Elem())
}

// allowedWrapperUse reports whether the atomic-wrapper field selector sel
// appears in a context that keeps the access atomic: a method call on it, a
// &-escape to a helper, an index on the way to either, or an index-only
// range.
func allowedWrapperUse(pass *Pass, parents parentMap, sel *ast.SelectorExpr) bool {
	node := ast.Node(sel)
	for {
		parent := parents[node]
		switch p := parent.(type) {
		case *ast.IndexExpr:
			if p.X == node {
				node = parent
				continue // arr[i].Load(): keep climbing
			}
			return true // sel is the index expression, not the accessed value
		case *ast.SelectorExpr:
			if p.X == node {
				// Method call on the wrapper (Load/Store/...), or a further
				// field selection (atomic.Pointer's .Load() chain).
				if fn, ok := pass.Info.Uses[p.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == syncAtomicPath {
					return true
				}
			}
			return false
		case *ast.UnaryExpr:
			return p.Op.String() == "&" // address taken: passed to its methods
		case *ast.RangeStmt:
			// for i := range arr is length-only; a value variable would copy
			// each element out unsynchronized.
			return p.X == node && p.Value == nil
		case *ast.CallExpr:
			// len(arr), cap(arr) are fine; anything else passes a copy.
			if id, ok := p.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && pass.Info.Uses[id] == types.Universe.Lookup(id.Name) {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// allowedPlainAtomicUse reports whether the plain-field selector sel is an
// atomic access: &sel passed to a sync/atomic function.
func allowedPlainAtomicUse(pass *Pass, parents parentMap, sel *ast.SelectorExpr) bool {
	un, ok := parents[sel].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	call, ok := parents[un].(*ast.CallExpr)
	if !ok {
		// &s.f stored or passed around: the alias may be used atomically
		// (e.g. a local shorthand p := &s.n); allow the escape itself.
		return true
	}
	return isAtomicFunc(calleeFunc(pass.Info, call))
}
