package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// The key distributions the engine knows. They are strings (not an enum) so
// CLI flags and experiment configs pass them through unchanged.
const (
	// Uniform draws every key with equal probability — the
	// shard-router-friendly baseline.
	Uniform = "uniform"
	// Zipfian draws keys with the YCSB-style scrambled-zipfian skew: a few
	// keys absorb most of the traffic (θ≈0.99 ≈ the classic web-cache shape),
	// scattered over the keyspace so the hot keys don't cluster in one
	// ordering group by construction.
	Zipfian = "zipfian"
)

// Dists lists the supported key distributions.
func Dists() []string { return []string{Uniform, Zipfian} }

// chooser draws key indices in [0, n) under some distribution. Implementations
// are deterministic functions of their seed and are NOT safe for concurrent
// use — the engine gives each worker its own.
type chooser interface {
	next() uint64
}

// newChooser builds the chooser for one worker.
func newChooser(dist string, n uint64, theta float64, rng *rand.Rand) (chooser, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: empty keyspace")
	}
	switch dist {
	case Uniform, "":
		return uniformChooser{n: n, rng: rng}, nil
	case Zipfian:
		if theta <= 0 || theta >= 1 {
			return nil, fmt.Errorf("workload: zipfian theta %v out of (0,1)", theta)
		}
		return newZipfChooser(n, theta, rng), nil
	default:
		return nil, fmt.Errorf("workload: unknown key distribution %q (have: uniform, zipfian)", dist)
	}
}

type uniformChooser struct {
	n   uint64
	rng *rand.Rand
}

func (u uniformChooser) next() uint64 {
	return uint64(u.rng.Int63n(int64(u.n))) //nolint:gosec // n validated positive
}

// zipfChooser is the Gray et al. quick zipfian generator (the one YCSB
// uses), for skew parameter θ ∈ (0,1) — math/rand's Zipf only covers s > 1.
// Rank r is drawn with probability ∝ 1/r^θ, then scrambled over the
// keyspace with an FNV-1a hash so the popular keys are spread out instead of
// being keys 0..k (YCSB's "scrambled zipfian").
type zipfChooser struct {
	n          uint64
	theta      float64
	alpha      float64
	zetan      float64
	eta        float64
	halfPowWgt float64
	rng        *rand.Rand
}

func newZipfChooser(n uint64, theta float64, rng *rand.Rand) *zipfChooser {
	zetan := zeta(n, theta)
	return &zipfChooser{
		n:          n,
		theta:      theta,
		alpha:      1 / (1 - theta),
		zetan:      zetan,
		eta:        (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		halfPowWgt: 1 + math.Pow(0.5, theta),
		rng:        rng,
	}
}

// zeta computes the generalized harmonic number Σ 1/i^θ for i in [1, n].
// O(n) once per chooser; keyspaces are at most a few million keys.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfChooser) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < z.halfPowWgt:
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	return scramble(rank) % z.n
}

// scramble is FNV-1a over the rank's 8 bytes: a cheap, deterministic spread
// of the hot ranks across the keyspace (and therefore across the ordering
// groups of a sharded deployment — the residual imbalance the zipfian rows
// of E11 report is the head key's true weight, not an artifact of hot keys
// being neighbors).
func scramble(rank uint64) uint64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= (rank >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// valueAlphabet is what synthetic write payloads are made of.
const valueAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// Generator emits a deterministic stream of state-machine commands for one
// worker: kv "get k…"/"set k… v…" operations with the spec's read/write
// mix, key distribution and value size. Two generators built from the same
// spec and worker index emit identical streams — the property that makes
// workload runs reproducible across processes and repetitions. Not safe for
// concurrent use; the engine gives each worker its own.
type Generator struct {
	w         int
	rng       *rand.Rand
	keys      chooser
	readRatio float64
	value     []byte
	buf       []byte
	versions  map[uint64]uint64 // per-key write version (NextOp only)
}

// NewGenerator builds worker w's command generator for the spec. The
// per-worker seed is derived from Spec.Seed so distinct workers draw
// distinct (but individually reproducible) streams.
func NewGenerator(spec Spec, w int) (*Generator, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed + int64(w)*0x9E3779B9))
	keys, err := newChooser(spec.Dist, uint64(spec.Keys), spec.Theta, rng) //nolint:gosec // Keys validated positive
	if err != nil {
		return nil, err
	}
	g := &Generator{
		w:         w,
		rng:       rng,
		keys:      keys,
		readRatio: spec.ReadRatio,
		value:     make([]byte, spec.ValueSize),
		versions:  make(map[uint64]uint64),
	}
	return g, nil
}

// Next returns the next command. The returned slice is reused by the next
// call; invokers that retain commands must copy (every transport in this
// repo copies at Send).
func (g *Generator) Next() []byte {
	key := g.keys.next()
	read := g.rng.Float64() < g.readRatio
	g.buf = g.buf[:0]
	if read {
		g.buf = append(g.buf, "get "...)
		g.buf = appendKey(g.buf, key)
		return g.buf
	}
	for i := range g.value {
		g.value[i] = valueAlphabet[g.rng.Intn(len(valueAlphabet))]
	}
	g.buf = append(g.buf, "set "...)
	g.buf = appendKey(g.buf, key)
	g.buf = append(g.buf, ' ')
	g.buf = append(g.buf, g.value...)
	return g.buf
}

// appendKey renders key ids in a fixed width so every key token has the
// same length (value size is then the only command-size variable).
func appendKey(buf []byte, key uint64) []byte {
	return append(buf, fmt.Sprintf("k%08d", key)...)
}

// Op is one generated operation, with enough shape for the engine to route
// it (reads onto the fast path) and to verify read-your-writes. Cmd and
// Value alias the generator's reused buffer — copy what outlives the next
// NextOp call.
type Op struct {
	Cmd  []byte
	Read bool
	Key  uint64
	// Value is the written value (aliasing Cmd; nil for reads). Values are
	// worker-tagged — "w<worker>v<version>" plus deterministic padding to
	// the spec's value size — so a read result identifies which worker's
	// write it observed, making stale reads of one's own writes detectable.
	Value []byte
}

// NextOp returns the next operation. Unlike Next, write values carry the
// worker tag described on Op — the stream is equally deterministic, but not
// byte-identical to Next's, so a run must use one or the other throughout.
func (g *Generator) NextOp() Op {
	key := g.keys.next()
	read := g.rng.Float64() < g.readRatio
	g.buf = g.buf[:0]
	if read {
		g.buf = append(g.buf, "get "...)
		g.buf = appendKey(g.buf, key)
		return Op{Cmd: g.buf, Read: true, Key: key}
	}
	g.versions[key]++
	g.buf = append(g.buf, "set "...)
	g.buf = appendKey(g.buf, key)
	g.buf = append(g.buf, ' ')
	valStart := len(g.buf)
	g.buf = fmt.Appendf(g.buf, "w%dv%d", g.w, g.versions[key])
	for len(g.buf)-valStart < len(g.value) {
		g.buf = append(g.buf, valueAlphabet[g.rng.Intn(len(valueAlphabet))])
	}
	return Op{Cmd: g.buf, Key: key, Value: g.buf[valStart:]}
}

// OwnValuePrefix is the tag every value worker w writes starts with. The
// trailing 'v' keeps tags prefix-free across workers (w1's tag is never a
// prefix of w11's).
func OwnValuePrefix(w int) []byte { return fmt.Appendf(nil, "w%dv", w) }
