package workload

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGeneratorDeterministic: the same (spec, worker) must emit the same
// command stream, and distinct workers must not.
func TestGeneratorDeterministic(t *testing.T) {
	for _, dist := range Dists() {
		spec := Spec{Dist: dist, Seed: 42, Keys: 64}
		a, err := NewGenerator(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGenerator(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		other, err := NewGenerator(spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		diverged := false
		for i := 0; i < 500; i++ {
			ca, cb := a.Next(), b.Next()
			if !bytes.Equal(ca, cb) {
				t.Fatalf("%s: command %d diverges: %q vs %q", dist, i, ca, cb)
			}
			if !bytes.Equal(ca, other.Next()) {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: workers 3 and 4 emitted identical streams", dist)
		}
	}
}

// TestGeneratorCommandShape: commands must parse as kv operations with the
// requested mix and value size.
func TestGeneratorCommandShape(t *testing.T) {
	gen, err := NewGenerator(Spec{ReadRatio: 0.5, ValueSize: 8, Keys: 16, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for i := 0; i < 2000; i++ {
		cmd := string(gen.Next())
		fields := strings.Fields(cmd)
		switch fields[0] {
		case "get":
			if len(fields) != 2 {
				t.Fatalf("malformed read %q", cmd)
			}
			reads++
		case "set":
			if len(fields) != 3 || len(fields[2]) != 8 {
				t.Fatalf("malformed write %q", cmd)
			}
			writes++
		default:
			t.Fatalf("unknown verb in %q", cmd)
		}
		if !strings.HasPrefix(fields[1], "k") || len(fields[1]) != 9 {
			t.Fatalf("malformed key in %q", cmd)
		}
	}
	if reads < 800 || writes < 800 {
		t.Errorf("mix off: %d reads, %d writes (want ~1000 each)", reads, writes)
	}
}

// TestGeneratorReadRatioExtremes: ReadRatio 1 must yield only reads,
// ReadRatio -1 (explicit all-writes) only writes.
func TestGeneratorReadRatioExtremes(t *testing.T) {
	allReads, err := NewGenerator(Spec{ReadRatio: 1, Keys: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	allWrites, err := NewGenerator(Spec{ReadRatio: -1, Keys: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if cmd := allReads.Next(); !bytes.HasPrefix(cmd, []byte("get ")) {
			t.Fatalf("ReadRatio=1 emitted %q", cmd)
		}
		if cmd := allWrites.Next(); !bytes.HasPrefix(cmd, []byte("set ")) {
			t.Fatalf("ReadRatio=-1 emitted %q", cmd)
		}
	}
}

// TestZipfianSkew: under θ=0.99 the head keys must dominate in a way a
// uniform draw never does.
func TestZipfianSkew(t *testing.T) {
	const keys, draws = 100, 20000
	freq := func(dist string) (max int) {
		rng := rand.New(rand.NewSource(5))
		ch, err := newChooser(dist, keys, 0.99, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint64]int)
		for i := 0; i < draws; i++ {
			k := ch.next()
			if k >= keys {
				t.Fatalf("%s drew key %d outside [0,%d)", dist, k, keys)
			}
			counts[k]++
		}
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		return max
	}
	uniformMax := freq(Uniform)
	zipfMax := freq(Zipfian)
	// Uniform expectation is 200/key; zipfian's head key holds ~1/zeta(100) ≈
	// 19% of the mass. Wide margins keep the test deterministic-by-seed but
	// robust to implementation tweaks.
	if uniformMax > 3*draws/keys {
		t.Errorf("uniform max frequency %d suspiciously high", uniformMax)
	}
	if zipfMax < 5*draws/keys {
		t.Errorf("zipfian max frequency %d shows no skew (uniform max %d)", zipfMax, uniformMax)
	}
}

// fakeInvoker counts invocations and optionally sleeps, standing in for a
// replicated service.
func fakeInvoker(delay time.Duration, count *atomic.Int64) Invoke {
	return func(ctx context.Context, cmd []byte) error {
		if len(cmd) == 0 {
			return errors.New("empty command")
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		count.Add(1)
		return nil
	}
}

func TestRunClosedLoop(t *testing.T) {
	var calls atomic.Int64
	spec := Spec{Workers: 4, Requests: 200, Warmup: 40, Keys: 32, Seed: 9}
	rep, err := Run(context.Background(), spec, []Invoke{fakeInvoker(0, &calls)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 240 || calls.Load() != 240 {
		t.Errorf("executed %d (invoked %d), want 240", rep.Executed, calls.Load())
	}
	if rep.Measured != 200 || rep.Latency.Count != 200 {
		t.Errorf("measured %d samples %d, want 200", rep.Measured, rep.Latency.Count)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Throughput <= 0 {
		t.Errorf("malformed report: %+v", rep)
	}
	if rep.Spec.Mode() != "closed" {
		t.Errorf("mode = %q", rep.Spec.Mode())
	}
}

func TestRunOpenLoopPacing(t *testing.T) {
	var calls atomic.Int64
	// 100 measured requests at 2000/s ≈ a 50ms measured window; the engine
	// must not finish meaningfully faster than the schedule allows.
	spec := Spec{Workers: 8, Rate: 2000, Requests: 100, Warmup: 20, Keys: 32, Seed: 3}
	t0 := time.Now()
	rep, err := Run(context.Background(), spec, []Invoke{fakeInvoker(0, &calls)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(t0)
	if rep.Measured != 100 {
		t.Fatalf("measured %d, want 100", rep.Measured)
	}
	if minWall := 110 * time.Duration(float64(time.Second)/2000); wall < minWall/2 {
		t.Errorf("run took %v, faster than the arrival schedule permits (~%v)", wall, minWall)
	}
	// An unloaded fake service keeps up with the schedule. Only a lower
	// bound is asserted: on a CPU-starved box the arrival schedule can fall
	// behind wholesale and then drain as a burst, which legitimately reports
	// an above-target catch-up rate (the latency samples carry the stall).
	if rep.Throughput < 500 {
		t.Errorf("achieved rate %.0f/s far below the 2000/s target", rep.Throughput)
	}
	if rep.Spec.Mode() != "open" {
		t.Errorf("mode = %q", rep.Spec.Mode())
	}
}

// TestRunOpenLoopCoordinatedOmission: a service stall must surface in the
// recorded percentiles because latency is measured from the scheduled
// arrival, not the send.
func TestRunOpenLoopCoordinatedOmission(t *testing.T) {
	var calls atomic.Int64
	slow := fakeInvoker(5*time.Millisecond, &calls)
	// One worker, arrivals every 1ms, service time 5ms: the queue falls
	// behind immediately and scheduled-time latency must grow well past the
	// 5ms service time.
	spec := Spec{Workers: 1, Rate: 1000, Requests: 40, Warmup: -1, Keys: 8, Seed: 11}
	rep, err := Run(context.Background(), spec, []Invoke{slow}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Max < 40*time.Millisecond {
		t.Errorf("max latency %v hides the backlog (service 5ms, arrivals 1ms, 40 reqs)", rep.Latency.Max)
	}
	if rep.Latency.P99 <= rep.Latency.P50 {
		t.Errorf("backlogged open loop shows no latency ramp: %+v", rep.Latency)
	}
}

func TestRunSpreadsWorkersOverInvokers(t *testing.T) {
	var a, b atomic.Int64
	// The 200µs service time keeps any single worker from draining the whole
	// claim counter before the others are scheduled.
	invokers := []Invoke{fakeInvoker(200*time.Microsecond, &a), fakeInvoker(200*time.Microsecond, &b)}
	spec := Spec{Workers: 4, Requests: 200, Warmup: -1, Keys: 8, Seed: 2}
	if _, err := Run(context.Background(), spec, invokers, nil); err != nil {
		t.Fatal(err)
	}
	if a.Load() == 0 || b.Load() == 0 {
		t.Errorf("invoker load split %d/%d: an endpoint sat idle", a.Load(), b.Load())
	}
	if a.Load()+b.Load() != 200 {
		t.Errorf("total invocations %d, want 200", a.Load()+b.Load())
	}
}

func TestRunAbortsOnError(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int64
	failing := func(ctx context.Context, cmd []byte) error {
		if n.Add(1) > 10 {
			return boom
		}
		return nil
	}
	_, err := Run(context.Background(), Spec{Workers: 2, Requests: 100, Keys: 8}, []Invoke{failing}, nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the invoker's error", err)
	}
}

// TestRunAbortReleasesWorkers: the first error must cancel the run's
// context so blocked workers abort instead of draining the remaining
// workload, and the root-cause error must win over the secondary
// cancellations.
func TestRunAbortReleasesWorkers(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int64
	invoker := func(ctx context.Context, cmd []byte) error {
		if n.Add(1) == 1 {
			return boom // worker 0 fails immediately
		}
		select { // everyone else blocks until cancellation
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return nil
		}
	}
	start := time.Now()
	_, err := Run(context.Background(), Spec{Workers: 4, Requests: 1000, Keys: 8}, []Invoke{invoker}, nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the root cause", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("abort took %v: workers were not released", took)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	ok := func(ctx context.Context, cmd []byte) error { return nil }
	cases := []Spec{
		{Rate: -1},
		{ReadRatio: 1.5},
		{Dist: "pareto"},
		{Keys: -1},
	}
	for _, spec := range cases {
		if _, err := Run(ctx, spec, []Invoke{ok}, nil); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if _, err := Run(ctx, Spec{}, nil, nil); err == nil {
		t.Error("no invokers accepted")
	}
	if _, err := Run(ctx, Spec{}, []Invoke{nil}, nil); err == nil {
		t.Error("nil invoker accepted")
	}
}

// TestRunReproducible: two runs with one worker and the same seed must drive
// the identical command sequence (observed through a recording invoker).
func TestRunReproducible(t *testing.T) {
	record := func() (Invoke, *[]string) {
		var cmds []string
		return func(ctx context.Context, cmd []byte) error {
			cmds = append(cmds, string(cmd))
			return nil
		}, &cmds
	}
	spec := Spec{Workers: 1, Requests: 50, Warmup: -1, Dist: Zipfian, Keys: 32, Seed: 77}
	invA, cmdsA := record()
	invB, cmdsB := record()
	if _, err := Run(context.Background(), spec, []Invoke{invA}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, []Invoke{invB}, nil); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(*cmdsA) != fmt.Sprint(*cmdsB) {
		t.Error("same seed produced different command sequences")
	}
}

// TestNextOpDeterministicAndTagged: NextOp streams are reproducible per
// (spec, worker), reads are flagged, and write values carry the worker tag
// padded to the requested size.
func TestNextOpDeterministicAndTagged(t *testing.T) {
	spec := Spec{ReadRatio: 0.5, ValueSize: 12, Keys: 16, Seed: 9}
	a, err := NewGenerator(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	prefix := OwnValuePrefix(2)
	reads, writes := 0, 0
	for i := 0; i < 1000; i++ {
		oa, ob := a.NextOp(), b.NextOp()
		if string(oa.Cmd) != string(ob.Cmd) || oa.Read != ob.Read || oa.Key != ob.Key {
			t.Fatalf("op %d diverges: %+v vs %+v", i, oa, ob)
		}
		if oa.Read {
			reads++
			if !bytes.HasPrefix(oa.Cmd, []byte("get ")) || oa.Value != nil {
				t.Fatalf("read op malformed: %+v", oa)
			}
			continue
		}
		writes++
		if !bytes.HasPrefix(oa.Value, prefix) {
			t.Fatalf("write value %q missing worker tag %q", oa.Value, prefix)
		}
		if len(oa.Value) < spec.ValueSize {
			t.Fatalf("write value %q shorter than value size %d", oa.Value, spec.ValueSize)
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("mix degenerate: %d reads, %d writes", reads, writes)
	}
}

// fakeKV is a linearizable in-memory kv the RunRW tests drive: the honest
// stand-in for a replicated service.
type fakeKV struct {
	mu   sync.Mutex
	data map[string][]byte
}

func (kv *fakeKV) invoke(ctx context.Context, cmd []byte, read bool) ([]byte, error) {
	f := strings.Fields(string(cmd))
	kv.mu.Lock()
	defer kv.mu.Unlock()
	switch f[0] {
	case "set":
		if kv.data == nil {
			kv.data = make(map[string][]byte)
		}
		kv.data[f[1]] = []byte(f[2])
		return []byte("ok"), nil
	case "get":
		if v, ok := kv.data[f[1]]; ok {
			return v, nil
		}
		return []byte("-"), nil
	}
	return nil, fmt.Errorf("bad cmd %q", cmd)
}

// TestRunRWSplitsAndChecks: reads and writes land in separate histograms,
// the counters add up, and the read-your-writes oracle engages (and stays
// silent) against a correct service.
func TestRunRWSplitsAndChecks(t *testing.T) {
	kv := &fakeKV{}
	spec := Spec{Workers: 3, Requests: 600, Warmup: -1, ReadRatio: 0.5, Keys: 8, Seed: 5}
	rep, err := RunRW(context.Background(), spec, []RWInvoke{kv.invoke}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredReads == 0 || rep.MeasuredReads >= rep.Measured {
		t.Fatalf("degenerate split: %d reads of %d measured", rep.MeasuredReads, rep.Measured)
	}
	if got := rep.ReadLatency.Count; got != rep.MeasuredReads {
		t.Errorf("read histogram holds %d samples, want %d", got, rep.MeasuredReads)
	}
	if got := rep.Latency.Count; got != rep.Measured-rep.MeasuredReads {
		t.Errorf("write histogram holds %d samples, want %d", got, rep.Measured-rep.MeasuredReads)
	}
	if rep.RYWChecked == 0 {
		t.Error("read-your-writes oracle never engaged")
	}
}

// TestRunRWDetectsStaleOwnRead: a service that answers reads from a frozen
// first-write snapshot must trip the oracle — the exact failure a read fast
// path that ignored the client's high-water mark would produce.
func TestRunRWDetectsStaleOwnRead(t *testing.T) {
	var mu sync.Mutex
	first := make(map[string][]byte)
	stale := func(ctx context.Context, cmd []byte, read bool) ([]byte, error) {
		f := strings.Fields(string(cmd))
		mu.Lock()
		defer mu.Unlock()
		switch f[0] {
		case "set":
			if _, ok := first[f[1]]; !ok {
				first[f[1]] = []byte(f[2])
			}
			return []byte("ok"), nil
		case "get":
			if v, ok := first[f[1]]; ok {
				return v, nil
			}
			return []byte("-"), nil
		}
		return nil, fmt.Errorf("bad cmd %q", cmd)
	}
	spec := Spec{Workers: 1, Requests: 400, Warmup: -1, ReadRatio: 0.5, Keys: 2, Seed: 3}
	_, err := RunRW(context.Background(), spec, []RWInvoke{stale}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "read-your-writes violation") {
		t.Fatalf("stale reads not detected: err = %v", err)
	}
}

// TestRunRWDetectsLostWrite: a read that observes the key as absent after
// the worker wrote it is a violation even though no stale value is shown.
func TestRunRWDetectsLostWrite(t *testing.T) {
	lossy := func(ctx context.Context, cmd []byte, read bool) ([]byte, error) {
		if read {
			return []byte("-"), nil
		}
		return []byte("ok"), nil
	}
	spec := Spec{Workers: 1, Requests: 200, Warmup: -1, ReadRatio: 0.5, Keys: 2, Seed: 3}
	_, err := RunRW(context.Background(), spec, []RWInvoke{lossy}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "read as absent") {
		t.Fatalf("lost write not detected: err = %v", err)
	}
}
