// Package workload is the load-generation engine of the benchmark harness:
// it drives a replicated service — through any client that can invoke a
// command — with a configurable workload shape and measures end-to-end
// response time, the metric the source paper's optimistic delivery exists to
// cut.
//
// Two loop disciplines are supported (see the "Measurement methodology"
// section of EXPERIMENTS.md for why the distinction matters):
//
//   - Closed loop (Rate == 0): Workers concurrent clients, each issuing its
//     next request the moment the previous reply arrives. Offered load
//     adapts to service speed, so a slow system is measured under less
//     load — fine for peak-throughput questions, misleading for latency.
//   - Open loop (Rate > 0): requests arrive on a fixed schedule (Rate per
//     second) regardless of completions, like independent users. Latency is
//     measured from each request's *scheduled* arrival, not from when a
//     worker got around to sending it, so scheduler backlog shows up in the
//     percentiles instead of being silently omitted (the coordinated-
//     omission correction). Workers bounds in-flight requests; a rate beyond
//     the system's capacity shows up as an unbounded latency ramp, which is
//     the honest answer.
//
// Key popularity follows a uniform or scrambled-zipfian distribution, the
// read/write mix and value size are configurable, and the first Warmup
// requests are excluded from the measured window. Every stream is a
// deterministic function of Spec.Seed.
package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Spec describes one workload.
type Spec struct {
	// Workers is the number of concurrent workers: the closed-loop
	// concurrency, or the in-flight cap of an open-loop run (default 1).
	Workers int
	// Rate is the open-loop arrival rate in requests/second; 0 (default)
	// selects the closed loop.
	Rate float64
	// Requests is the number of measured requests (default 1000).
	Requests int
	// Warmup is the number of unmeasured leading requests that warm code
	// paths, caches and batching before the measured window opens
	// (default Requests/10).
	Warmup int
	// ReadRatio is the fraction of reads in [0, 1] (default 0.5).
	ReadRatio float64
	// Keys is the keyspace size (default 1024).
	Keys int
	// Dist is the key distribution: Uniform (default) or Zipfian.
	Dist string
	// Theta is the zipfian skew in (0, 1) (default 0.99, the YCSB classic).
	Theta float64
	// ValueSize is the write payload size in bytes (default 16).
	ValueSize int
	// Seed makes the whole run reproducible (default 1).
	Seed int64
}

// withDefaults fills the zero fields.
func (s Spec) withDefaults() Spec {
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Requests == 0 {
		s.Requests = 1000
	}
	if s.Warmup == 0 {
		s.Warmup = s.Requests / 10
	}
	if s.Warmup < 0 { // explicit "no warmup"
		s.Warmup = 0
	}
	if s.ReadRatio == 0 {
		s.ReadRatio = 0.5
	}
	if s.ReadRatio < 0 { // explicit "all writes"
		s.ReadRatio = 0
	}
	if s.Keys == 0 {
		s.Keys = 1024
	}
	if s.Dist == "" {
		s.Dist = Uniform
	}
	if s.Theta == 0 {
		s.Theta = 0.99
	}
	if s.ValueSize == 0 {
		s.ValueSize = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

func (s Spec) validate() error {
	if s.Workers < 0 || s.Requests < 0 || s.Keys <= 0 || s.ValueSize < 0 {
		return fmt.Errorf("workload: invalid spec %+v", s)
	}
	if s.Rate < 0 {
		return fmt.Errorf("workload: negative rate %v", s.Rate)
	}
	if s.ReadRatio > 1 {
		return fmt.Errorf("workload: read ratio %v > 1", s.ReadRatio)
	}
	switch s.Dist {
	case Uniform, Zipfian:
	default:
		return fmt.Errorf("workload: unknown key distribution %q", s.Dist)
	}
	return nil
}

// Mode names the loop discipline the spec selects.
func (s Spec) Mode() string {
	if s.Rate > 0 {
		return "open"
	}
	return "closed"
}

// Invoke submits one command and blocks until the service's reply is
// adopted (or fails). Implementations must be safe for concurrent use —
// every client in this repo is.
type Invoke func(ctx context.Context, cmd []byte) error

// Report is the outcome of one workload run.
type Report struct {
	// Spec is the (defaults-filled) spec the run executed.
	Spec Spec
	// Executed counts all completed requests, warmup included.
	Executed int
	// Measured counts the requests inside the measured window.
	Measured uint64
	// Elapsed is the wall time of the measured window.
	Elapsed time.Duration
	// Throughput is Measured/Elapsed in requests/second.
	Throughput float64
	// Latency summarizes the measured requests' response times. In an
	// open-loop run each sample is measured from the request's scheduled
	// arrival time (coordinated-omission corrected).
	Latency metrics.Snapshot
}

// Run executes the workload against the given client endpoints (worker w
// uses invokers[w % len]) and records measured-window latencies into hist
// (pass nil to let Run allocate one). It aborts on the first invocation
// error.
func Run(ctx context.Context, spec Spec, invokers []Invoke, hist *metrics.Histogram) (Report, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	if len(invokers) == 0 {
		return Report{}, fmt.Errorf("workload: no invokers")
	}
	for i, inv := range invokers {
		if inv == nil {
			return Report{}, fmt.Errorf("workload: invoker %d is nil", i)
		}
	}
	if hist == nil {
		hist = metrics.NewHistogram()
	}
	total := spec.Warmup + spec.Requests

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64 // request sequence claim counter
		executed  atomic.Int64
		measured  atomic.Uint64
		measStart atomic.Int64 // UnixNano of the measured window's opening
		wg        sync.WaitGroup
	)
	var interval time.Duration
	if spec.Rate > 0 {
		interval = time.Duration(float64(time.Second) / spec.Rate)
	}
	base := time.Now()
	if spec.Warmup == 0 {
		measStart.Store(base.UnixNano())
	}

	errCh := make(chan error, spec.Workers)
	for w := 0; w < spec.Workers; w++ {
		gen, err := NewGenerator(spec, w)
		if err != nil {
			return Report{}, err
		}
		wg.Add(1)
		go func(w int, gen *Generator) {
			defer wg.Done()
			invoke := invokers[w%len(invokers)]
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					errCh <- nil
					return
				}
				cmd := gen.Next()
				start := time.Now()
				if interval > 0 {
					// Open loop: this request was due at base + i·interval.
					// Sleep until then if early; if late (all workers busy),
					// send immediately — the backlog wait stays inside the
					// latency sample, per the coordinated-omission rule.
					sched := base.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							errCh <- ctx.Err()
							return
						}
					}
					start = sched
				}
				if i == int64(spec.Warmup) {
					measStart.Store(time.Now().UnixNano())
				}
				if err := invoke(ctx, cmd); err != nil {
					cancel() // first error aborts the run: release the other workers
					errCh <- fmt.Errorf("workload: worker %d request %d: %w", w, i, err)
					return
				}
				executed.Add(1)
				if i >= int64(spec.Warmup) {
					hist.Record(time.Since(start))
					measured.Add(1)
				}
			}
		}(w, gen)
	}
	wg.Wait()
	end := time.Now()
	close(errCh)
	// The first failing worker cancels ctx to release the others, so the
	// channel may hold secondary cancellation errors alongside the root
	// cause — prefer the latter.
	var runErr error
	for err := range errCh {
		if err == nil {
			continue
		}
		if runErr == nil || (errors.Is(runErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			runErr = err
		}
	}
	if runErr != nil {
		return Report{}, runErr
	}

	startNS := measStart.Load()
	if startNS == 0 { // everything was warmup (Requests == 0 edge)
		startNS = end.UnixNano()
	}
	elapsed := end.Sub(time.Unix(0, startNS))
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	rep := Report{
		Spec:     spec,
		Executed: int(executed.Load()),
		Measured: measured.Load(),
		Elapsed:  elapsed,
		Latency:  hist.Snapshot(),
	}
	rep.Throughput = float64(rep.Measured) / elapsed.Seconds()
	return rep, nil
}
