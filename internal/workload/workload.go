// Package workload is the load-generation engine of the benchmark harness:
// it drives a replicated service — through any client that can invoke a
// command — with a configurable workload shape and measures end-to-end
// response time, the metric the source paper's optimistic delivery exists to
// cut.
//
// Two loop disciplines are supported (see the "Measurement methodology"
// section of EXPERIMENTS.md for why the distinction matters):
//
//   - Closed loop (Rate == 0): Workers concurrent clients, each issuing its
//     next request the moment the previous reply arrives. Offered load
//     adapts to service speed, so a slow system is measured under less
//     load — fine for peak-throughput questions, misleading for latency.
//   - Open loop (Rate > 0): requests arrive on a fixed schedule (Rate per
//     second) regardless of completions, like independent users. Latency is
//     measured from each request's *scheduled* arrival, not from when a
//     worker got around to sending it, so scheduler backlog shows up in the
//     percentiles instead of being silently omitted (the coordinated-
//     omission correction). Workers bounds in-flight requests; a rate beyond
//     the system's capacity shows up as an unbounded latency ramp, which is
//     the honest answer.
//
// Key popularity follows a uniform or scrambled-zipfian distribution, the
// read/write mix and value size are configurable, and the first Warmup
// requests are excluded from the measured window. Every stream is a
// deterministic function of Spec.Seed.
package workload

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Spec describes one workload.
type Spec struct {
	// Workers is the number of concurrent workers: the closed-loop
	// concurrency, or the in-flight cap of an open-loop run (default 1).
	Workers int
	// Rate is the open-loop arrival rate in requests/second; 0 (default)
	// selects the closed loop.
	Rate float64
	// Requests is the number of measured requests (default 1000).
	Requests int
	// Warmup is the number of unmeasured leading requests that warm code
	// paths, caches and batching before the measured window opens
	// (default Requests/10).
	Warmup int
	// ReadRatio is the fraction of reads in [0, 1] (default 0.5).
	ReadRatio float64
	// Keys is the keyspace size (default 1024).
	Keys int
	// Dist is the key distribution: Uniform (default) or Zipfian.
	Dist string
	// Theta is the zipfian skew in (0, 1) (default 0.99, the YCSB classic).
	Theta float64
	// ValueSize is the write payload size in bytes (default 16).
	ValueSize int
	// Seed makes the whole run reproducible (default 1).
	Seed int64
}

// withDefaults fills the zero fields.
func (s Spec) withDefaults() Spec {
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Requests == 0 {
		s.Requests = 1000
	}
	if s.Warmup == 0 {
		s.Warmup = s.Requests / 10
	}
	if s.Warmup < 0 { // explicit "no warmup"
		s.Warmup = 0
	}
	if s.ReadRatio == 0 {
		s.ReadRatio = 0.5
	}
	if s.ReadRatio < 0 { // explicit "all writes"
		s.ReadRatio = 0
	}
	if s.Keys == 0 {
		s.Keys = 1024
	}
	if s.Dist == "" {
		s.Dist = Uniform
	}
	if s.Theta == 0 {
		s.Theta = 0.99
	}
	if s.ValueSize == 0 {
		s.ValueSize = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

func (s Spec) validate() error {
	if s.Workers < 0 || s.Requests < 0 || s.Keys <= 0 || s.ValueSize < 0 {
		return fmt.Errorf("workload: invalid spec %+v", s)
	}
	if s.Rate < 0 {
		return fmt.Errorf("workload: negative rate %v", s.Rate)
	}
	if s.ReadRatio > 1 {
		return fmt.Errorf("workload: read ratio %v > 1", s.ReadRatio)
	}
	switch s.Dist {
	case Uniform, Zipfian:
	default:
		return fmt.Errorf("workload: unknown key distribution %q", s.Dist)
	}
	return nil
}

// Mode names the loop discipline the spec selects.
func (s Spec) Mode() string {
	if s.Rate > 0 {
		return "open"
	}
	return "closed"
}

// Invoke submits one command and blocks until the service's reply is
// adopted (or fails). Implementations must be safe for concurrent use —
// every client in this repo is.
type Invoke func(ctx context.Context, cmd []byte) error

// RWInvoke submits one command on its proper path — read=true marks a
// read-only command the client may answer through the zero-ordering fast
// path — and returns the adopted result. Implementations must be safe for
// concurrent use.
type RWInvoke func(ctx context.Context, cmd []byte, read bool) ([]byte, error)

// Report is the outcome of one workload run.
type Report struct {
	// Spec is the (defaults-filled) spec the run executed.
	Spec Spec
	// Executed counts all completed requests, warmup included.
	Executed int
	// Measured counts the requests inside the measured window.
	Measured uint64
	// Elapsed is the wall time of the measured window.
	Elapsed time.Duration
	// Throughput is Measured/Elapsed in requests/second.
	Throughput float64
	// Latency summarizes the measured requests' response times. In an
	// open-loop run each sample is measured from the request's scheduled
	// arrival time (coordinated-omission corrected). In a RunRW run this
	// covers writes only; reads land in ReadLatency.
	Latency metrics.Snapshot

	// MeasuredReads counts the reads inside the measured window (RunRW only;
	// they are included in Measured too).
	MeasuredReads uint64
	// ReadLatency summarizes the measured reads' response times (RunRW only).
	ReadLatency metrics.Snapshot
	// RYWChecked counts reads whose result the engine could verify against
	// the issuing worker's own last write of the key (RunRW only) — the
	// read-your-writes oracle. Zero on a read-heavy run would mean the check
	// never engaged; E13 asserts it is positive.
	RYWChecked uint64
}

// Run executes the workload against the given client endpoints (worker w
// uses invokers[w % len]) and records measured-window latencies into hist
// (pass nil to let Run allocate one). It aborts on the first invocation
// error. Every command travels the ordered path; use RunRW to exercise the
// read fast path.
func Run(ctx context.Context, spec Spec, invokers []Invoke, hist *metrics.Histogram) (Report, error) {
	if err := checkInvokers(len(invokers)); err != nil {
		return Report{}, err
	}
	rw := make([]RWInvoke, len(invokers))
	for i, inv := range invokers {
		if inv == nil {
			return Report{}, fmt.Errorf("workload: invoker %d is nil", i)
		}
		inv := inv
		rw[i] = func(ctx context.Context, cmd []byte, _ bool) ([]byte, error) {
			return nil, inv(ctx, cmd)
		}
	}
	return run(ctx, spec, rw, hist, nil, false)
}

// RunRW executes the workload with the read/write split surfaced: reads are
// routed with read=true (clients with a fast path serve them without any
// ordering messages), read and write latencies are recorded into separate
// histograms (either may be nil), and each worker checks read-your-writes —
// a read of a key the worker itself wrote must never observe an older value
// of its own than the last one it adopted a write reply for (write values
// are worker-tagged, see Op.Value, so foreign and stale-own results are
// distinguishable). The check is a hard oracle: a violation aborts the run
// with an error, deterministically for a given spec and seed.
func RunRW(ctx context.Context, spec Spec, invokers []RWInvoke, hist, readHist *metrics.Histogram) (Report, error) {
	if err := checkInvokers(len(invokers)); err != nil {
		return Report{}, err
	}
	for i, inv := range invokers {
		if inv == nil {
			return Report{}, fmt.Errorf("workload: invoker %d is nil", i)
		}
	}
	return run(ctx, spec, invokers, hist, readHist, true)
}

func checkInvokers(n int) error {
	if n == 0 {
		return fmt.Errorf("workload: no invokers")
	}
	return nil
}

// run is the engine shared by Run and RunRW. split selects the read/write-
// aware mode: NextOp streams (worker-tagged values), fast-path routing,
// per-path histograms and the read-your-writes oracle. The legacy mode keeps
// byte-identical Next streams so measurements stay comparable across
// revisions.
func run(ctx context.Context, spec Spec, invokers []RWInvoke, hist, readHist *metrics.Histogram, split bool) (Report, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	if hist == nil {
		hist = metrics.NewHistogram()
	}
	if readHist == nil {
		readHist = metrics.NewHistogram()
	}
	total := spec.Warmup + spec.Requests

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next       atomic.Int64 // request sequence claim counter
		executed   atomic.Int64
		measured   atomic.Uint64
		measReads  atomic.Uint64
		rywChecked atomic.Uint64
		measStart  atomic.Int64 // UnixNano of the measured window's opening
		wg         sync.WaitGroup
	)
	var interval time.Duration
	if spec.Rate > 0 {
		interval = time.Duration(float64(time.Second) / spec.Rate)
	}
	base := time.Now()
	if spec.Warmup == 0 {
		measStart.Store(base.UnixNano())
	}

	errCh := make(chan error, spec.Workers)
	for w := 0; w < spec.Workers; w++ {
		gen, err := NewGenerator(spec, w)
		if err != nil {
			return Report{}, err
		}
		wg.Add(1)
		go func(w int, gen *Generator) {
			defer wg.Done()
			invoke := invokers[w%len(invokers)]
			var (
				ownPrefix []byte
				lastWrite map[uint64][]byte // this worker's last adopted write per key
			)
			if split {
				ownPrefix = OwnValuePrefix(w)
				lastWrite = make(map[uint64][]byte)
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					errCh <- nil
					return
				}
				var op Op
				if split {
					op = gen.NextOp()
				} else {
					op = Op{Cmd: gen.Next()}
				}
				start := time.Now()
				if interval > 0 {
					// Open loop: this request was due at base + i·interval.
					// Sleep until then if early; if late (all workers busy),
					// send immediately — the backlog wait stays inside the
					// latency sample, per the coordinated-omission rule.
					sched := base.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							errCh <- ctx.Err()
							return
						}
					}
					start = sched
				}
				if i == int64(spec.Warmup) {
					measStart.Store(time.Now().UnixNano())
				}
				result, err := invoke(ctx, op.Cmd, op.Read)
				if err == nil && split {
					if op.Read {
						err = checkReadYourWrites(w, op.Key, result, lastWrite, ownPrefix, &rywChecked)
					} else {
						lastWrite[op.Key] = append(lastWrite[op.Key][:0], op.Value...)
					}
				}
				if err != nil {
					cancel() // first error aborts the run: release the other workers
					errCh <- fmt.Errorf("workload: worker %d request %d: %w", w, i, err)
					return
				}
				executed.Add(1)
				if i >= int64(spec.Warmup) {
					if split && op.Read {
						readHist.Record(time.Since(start))
						measReads.Add(1)
					} else {
						hist.Record(time.Since(start))
					}
					measured.Add(1)
				}
			}
		}(w, gen)
	}
	wg.Wait()
	end := time.Now()
	close(errCh)
	// The first failing worker cancels ctx to release the others, so the
	// channel may hold secondary cancellation errors alongside the root
	// cause — prefer the latter.
	var runErr error
	for err := range errCh {
		if err == nil {
			continue
		}
		if runErr == nil || (errors.Is(runErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			runErr = err
		}
	}
	if runErr != nil {
		return Report{}, runErr
	}

	startNS := measStart.Load()
	if startNS == 0 { // everything was warmup (Requests == 0 edge)
		startNS = end.UnixNano()
	}
	elapsed := end.Sub(time.Unix(0, startNS))
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	rep := Report{
		Spec:          spec,
		Executed:      int(executed.Load()),
		Measured:      measured.Load(),
		Elapsed:       elapsed,
		Latency:       hist.Snapshot(),
		MeasuredReads: measReads.Load(),
		ReadLatency:   readHist.Snapshot(),
		RYWChecked:    rywChecked.Load(),
	}
	rep.Throughput = float64(rep.Measured) / elapsed.Seconds()
	return rep, nil
}

// checkReadYourWrites is the per-read oracle of a RunRW worker: once the
// worker has written a key and adopted the write's reply, a later read of
// that key must observe a state that includes the write. Values are
// worker-tagged (Op.Value), so two violations are directly visible from the
// read result alone:
//
//   - the key reads as absent ("-") after this worker wrote it — no command
//     deletes workload keys, so the adopted prefix lost the write;
//   - the result carries this worker's own tag but is not the worker's
//     latest write of the key — the read was answered from a prefix older
//     than one the worker already observed.
//
// A foreign worker's value is always legal (a later write by someone else),
// so the oracle is sound under concurrency, yet engages on every key the
// worker keeps to itself — deterministically for a given seed.
func checkReadYourWrites(w int, key uint64, result []byte, lastWrite map[uint64][]byte, ownPrefix []byte, checked *atomic.Uint64) error {
	last, wrote := lastWrite[key]
	if !wrote {
		return nil
	}
	checked.Add(1)
	if string(result) == "-" {
		return fmt.Errorf("read-your-writes violation: key k%08d read as absent after this worker wrote %q", key, last)
	}
	if bytes.HasPrefix(result, ownPrefix) && !bytes.Equal(result, last) {
		return fmt.Errorf("read-your-writes violation: key k%08d read own stale value %q, last write was %q", key, result, last)
	}
	return nil
}
