package rmcast

import (
	"bytes"
	"testing"

	"repro/internal/proto"
)

// fakeNet records sends and lets tests shuttle payloads between endpoints.
type fakeNet struct {
	sent []fakeSend
}

type fakeSend struct {
	from, to proto.NodeID
	payload  []byte
}

func (f *fakeNet) sender(from proto.NodeID) func(proto.NodeID, []byte) {
	return func(to proto.NodeID, payload []byte) {
		f.sent = append(f.sent, fakeSend{from: from, to: to, payload: payload})
	}
}

func (f *fakeNet) take() []fakeSend {
	out := f.sent
	f.sent = nil
	return out
}

func body(t *testing.T, payload []byte) []byte {
	t.Helper()
	k, _, b, err := proto.Unmarshal(payload)
	if err != nil || k != proto.KindRMcast {
		t.Fatalf("payload kind=%v err=%v", k, err)
	}
	return b
}

func TestMulticastSendsToAllOthers(t *testing.T) {
	net := &fakeNet{}
	group := proto.Group(3)
	r := New(Config{Self: 0, Group: group, Send: net.sender(0)})

	inner := proto.Marshal(proto.KindPhaseII, 0, []byte{1})
	local, ok := r.Multicast(inner)
	if !ok || !bytes.Equal(local, inner) {
		t.Fatal("member multicast must deliver locally")
	}
	sends := net.take()
	if len(sends) != 2 {
		t.Fatalf("sent %d messages, want 2", len(sends))
	}
	dests := map[proto.NodeID]bool{}
	for _, s := range sends {
		dests[s.to] = true
	}
	if !dests[1] || !dests[2] {
		t.Errorf("destinations %v, want p1 and p2", dests)
	}
}

func TestClientMulticastNoLocalDelivery(t *testing.T) {
	net := &fakeNet{}
	r := New(Config{Self: proto.ClientID(0), Group: proto.Group(3), Send: net.sender(proto.ClientID(0))})
	_, ok := r.Multicast([]byte("req"))
	if ok {
		t.Fatal("client (outside Π) must not deliver locally")
	}
	if len(net.take()) != 3 {
		t.Fatal("client should send to all 3 servers")
	}
}

func TestIntegrityDeliverOnce(t *testing.T) {
	netA, netB := &fakeNet{}, &fakeNet{}
	a := New(Config{Self: 0, Group: proto.Group(2), Send: netA.sender(0)})
	b := New(Config{Self: 1, Group: proto.Group(2), Send: netB.sender(1)})

	a.Multicast([]byte("m"))
	payload := netA.take()[0].payload

	inner, ok, err := b.OnMessage(body(t, payload))
	if err != nil || !ok || string(inner) != "m" {
		t.Fatalf("first delivery: inner=%q ok=%v err=%v", inner, ok, err)
	}
	// Duplicate (e.g. a relayed copy) must not deliver again.
	_, ok, err = b.OnMessage(body(t, payload))
	if err != nil || ok {
		t.Fatalf("duplicate delivered: ok=%v err=%v", ok, err)
	}
	if b.DeliveredCount() != 1 {
		t.Errorf("DeliveredCount = %d, want 1", b.DeliveredCount())
	}
}

func TestEagerRelayOnFirstDelivery(t *testing.T) {
	netA, netB := &fakeNet{}, &fakeNet{}
	group := proto.Group(3)
	a := New(Config{Self: 0, Group: group, Send: netA.sender(0), Mode: Eager})
	b := New(Config{Self: 1, Group: group, Send: netB.sender(1), Mode: Eager})

	a.Multicast([]byte("m"))
	payload := netA.take()[0].payload

	if _, ok, _ := b.OnMessage(body(t, payload)); !ok {
		t.Fatal("no delivery")
	}
	relays := netB.take()
	// b must relay to everyone except itself and the origin: only p2.
	if len(relays) != 1 || relays[0].to != 2 {
		t.Fatalf("relays = %+v, want exactly one to p2", relays)
	}
}

func TestLazyNoRelayUntilAsked(t *testing.T) {
	netA, netB := &fakeNet{}, &fakeNet{}
	group := proto.Group(3)
	a := New(Config{Self: 0, Group: group, Send: netA.sender(0), Mode: Lazy})
	b := New(Config{Self: 1, Group: group, Send: netB.sender(1), Mode: Lazy})

	a.Multicast([]byte("m"))
	payload := netA.take()[0].payload
	if _, ok, _ := b.OnMessage(body(t, payload)); !ok {
		t.Fatal("no delivery")
	}
	if got := netB.take(); len(got) != 0 {
		t.Fatalf("lazy mode relayed eagerly: %+v", got)
	}

	b.RelayAll()
	relays := netB.take()
	if len(relays) != 1 || relays[0].to != 2 {
		t.Fatalf("RelayAll sends = %+v, want one to p2", relays)
	}
}

func TestLazyRelayAllCoversOwnMulticasts(t *testing.T) {
	net := &fakeNet{}
	group := proto.Group(3)
	a := New(Config{Self: 0, Group: group, Send: net.sender(0), Mode: Lazy})
	a.Multicast([]byte("m1"))
	net.take()
	a.RelayAll()
	// Own messages are re-sent to the other two members.
	if got := net.take(); len(got) != 2 {
		t.Fatalf("RelayAll resent %d, want 2", len(got))
	}
}

func TestLazyBufferBounded(t *testing.T) {
	net := &fakeNet{}
	r := New(Config{Self: 0, Group: proto.Group(2), Send: net.sender(0), Mode: Lazy, BufferLimit: 4})
	for i := 0; i < 10; i++ {
		r.Multicast([]byte{byte(i)})
	}
	net.take()
	r.RelayAll()
	if got := net.take(); len(got) != 4 {
		t.Fatalf("buffer kept %d entries, want 4", len(got))
	}
}

func TestAgreementViaRelayChain(t *testing.T) {
	// Origin "crashes" after reaching only p1; eager relay must still get the
	// message to p2 — the Agreement property.
	nets := map[proto.NodeID]*fakeNet{0: {}, 1: {}, 2: {}}
	group := proto.Group(3)
	endpoints := map[proto.NodeID]*RMcast{}
	for _, id := range group {
		endpoints[id] = New(Config{Self: id, Group: group, Send: nets[id].sender(id), Mode: Eager})
	}
	client := New(Config{Self: proto.ClientID(0), Group: group, Send: nets[0].sender(proto.ClientID(0))})
	// Reuse nets[0] to capture the client sends.
	client.Multicast([]byte("m"))
	sends := nets[0].take()
	// Deliver only the copy addressed to p1 (client crashed mid-multicast).
	var toP1 []byte
	for _, s := range sends {
		if s.to == 1 {
			toP1 = s.payload
		}
	}
	if _, ok, _ := endpoints[1].OnMessage(body(t, toP1)); !ok {
		t.Fatal("p1 did not deliver")
	}
	// p1's relay must reach p2.
	var delivered bool
	for _, s := range nets[1].take() {
		if s.to == 2 {
			if _, ok, _ := endpoints[2].OnMessage(body(t, s.payload)); ok {
				delivered = true
			}
		}
	}
	if !delivered {
		t.Fatal("agreement violated: p2 never delivered despite p1 delivering")
	}
}

func TestDistinctSeqPerMulticast(t *testing.T) {
	net := &fakeNet{}
	r := New(Config{Self: 0, Group: proto.Group(2), Send: net.sender(0)})
	r.Multicast([]byte("a"))
	r.Multicast([]byte("b"))
	sends := net.take()
	m1, _ := proto.UnmarshalRMcast(body(t, sends[0].payload))
	m2, _ := proto.UnmarshalRMcast(body(t, sends[1].payload))
	if m1.Seq == m2.Seq {
		t.Fatal("two multicasts share a sequence number")
	}
}

func TestOnMessageRejectsGarbage(t *testing.T) {
	r := New(Config{Self: 0, Group: proto.Group(2), Send: func(proto.NodeID, []byte) {}})
	if _, ok, err := r.OnMessage([]byte{0xFF}); err == nil || ok {
		t.Fatal("garbage accepted")
	}
}
