// Package rmcast implements the Reliable Multicast primitive of Section 3 of
// the paper, R-multicast(m, Π), with the three properties:
//
//	Validity:  if a correct process R-multicasts m, every correct process in
//	           Π eventually R-delivers m.
//	Agreement: if a correct process R-delivers m, all correct processes in Π
//	           eventually R-deliver m.
//	Integrity: every process R-delivers m at most once, and only if m was
//	           previously R-multicast.
//
// Two relay strategies are provided (ablation A1 in DESIGN.md):
//
//   - Eager: every group member forwards each message to the whole group on
//     first delivery. Agreement holds unconditionally at the cost of O(n²)
//     messages per multicast.
//   - Lazy: members buffer delivered messages and only re-forward them when
//     the owner explicitly asks (RelayAll) — the OAR server does so when
//     entering the conservative phase, i.e. exactly when failures are
//     suspected. Failure-free runs then cost O(n) messages per multicast.
//
// An RMcast instance is owned by a single goroutine (the process event loop)
// and is not safe for concurrent use, in line with the paper's
// tasks-in-mutual-exclusion execution model.
package rmcast

import (
	"fmt"

	"repro/internal/proto"
)

// Mode selects the relay strategy.
type Mode int

// Relay strategies.
const (
	// Eager relays every message on first delivery.
	Eager Mode = iota + 1
	// Lazy relays only on explicit RelayAll calls.
	Lazy
)

// DefaultBufferLimit bounds the lazy-relay buffer.
const DefaultBufferLimit = 4096

// Key uniquely identifies a reliable-multicast message.
type Key struct {
	Origin proto.NodeID
	Seq    uint64
}

// Config configures an RMcast endpoint.
type Config struct {
	// Self is the owning process.
	Self proto.NodeID
	// Group is Π, the set of relay participants (the servers). Self may or
	// may not be a member: clients multicast into a group they do not belong
	// to.
	Group []proto.NodeID
	// GroupID tags every multicast and relay with the ordering group this
	// endpoint belongs to (0 in a single-group system).
	GroupID proto.GroupID
	// Send is the reliable FIFO unicast primitive of the transport layer.
	Send func(to proto.NodeID, payload []byte)
	// Mode selects Eager or Lazy relay. Zero defaults to Eager.
	Mode Mode
	// BufferLimit bounds the lazy relay buffer; zero means
	// DefaultBufferLimit.
	BufferLimit int
	// SendCopies declares that Send copies the payload before returning
	// (e.g. it appends into a transport.Batcher's envelope buffer). It lets
	// the relay hot path encode into a reusable scratch buffer instead of
	// allocating a fresh payload per delivered message. Leave false when
	// Send queues the slice it is given (a raw transport.Node.Send, a
	// channel to a sender goroutine).
	SendCopies bool
	// FirstSeq is the first multicast sequence number this endpoint uses.
	// Receivers deduplicate by (Origin, Seq) forever, so a process that
	// restarts must not reuse its previous incarnation's sequence numbers —
	// a recovered replica passes a disjoint per-incarnation range here
	// (incarnation << 32) and its multicasts stay deliverable.
	FirstSeq uint64
}

// RMcast is one process's reliable-multicast endpoint.
type RMcast struct {
	cfg       Config
	inGroup   bool
	nextSeq   uint64
	delivered map[Key]struct{}
	buffer    []buffered // lazy mode: wrappers eligible for re-relay
	scratch   []byte     // reusable relay-payload encode buffer (SendCopies mode)
}

type buffered struct {
	key     Key
	payload []byte // full KindRMcast payload, ready to resend
}

// New creates an endpoint.
func New(cfg Config) *RMcast {
	if cfg.Mode == 0 {
		cfg.Mode = Eager
	}
	if cfg.BufferLimit == 0 {
		cfg.BufferLimit = DefaultBufferLimit
	}
	r := &RMcast{
		cfg:       cfg,
		nextSeq:   cfg.FirstSeq,
		delivered: make(map[Key]struct{}),
	}
	for _, p := range cfg.Group {
		if p == cfg.Self {
			r.inGroup = true
			break
		}
	}
	return r
}

// Multicast R-multicasts inner (a kind-tagged payload) to the group. If the
// caller itself belongs to the group, the message is locally R-delivered
// immediately and Multicast returns (inner, true); otherwise it returns
// (nil, false).
func (r *RMcast) Multicast(inner []byte) (local []byte, deliverLocal bool) {
	key := Key{Origin: r.cfg.Self, Seq: r.nextSeq}
	r.nextSeq++
	payload := proto.MarshalRMcast(r.cfg.GroupID, proto.RMcastMsg{Origin: key.Origin, Seq: key.Seq, Inner: inner})
	for _, p := range r.cfg.Group {
		if p == r.cfg.Self {
			continue
		}
		r.cfg.Send(p, payload)
	}
	if !r.inGroup {
		return nil, false
	}
	r.markDelivered(key, payload)
	return inner, true
}

// OnMessage processes the body of a received KindRMcast payload. It returns
// the inner payload exactly once per message (Integrity); duplicates return
// (nil, false, nil).
func (r *RMcast) OnMessage(body []byte) (inner []byte, deliver bool, err error) {
	m, err := proto.UnmarshalRMcast(body)
	if err != nil {
		return nil, false, fmt.Errorf("rmcast: %w", err)
	}
	key := Key{Origin: m.Origin, Seq: m.Seq}
	if _, dup := r.delivered[key]; dup {
		return nil, false, nil
	}
	// Rebuild the relayable payload by re-tagging the received body instead
	// of re-encoding the message — the body already is the canonical
	// encoding. The caller verified the envelope group before handing us the
	// body, so re-tagging with our own group is faithful. When Send copies
	// (SendCopies), the payload is assembled in the reusable scratch buffer,
	// so the once-per-delivered-message hot path allocates nothing; the
	// buffer is reused after markDelivered/relay return (markDelivered
	// clones what the lazy buffer retains).
	var payload []byte
	if r.cfg.SendCopies {
		r.scratch = proto.AppendHeader(r.scratch[:0], proto.KindRMcast, r.cfg.GroupID)
		r.scratch = append(r.scratch, body...)
		payload = r.scratch
	} else {
		payload = proto.AppendHeader(make([]byte, 0, 6+len(body)), proto.KindRMcast, r.cfg.GroupID)
		payload = append(payload, body...)
	}
	r.markDelivered(key, payload)
	if r.cfg.Mode == Eager {
		r.relay(key, payload)
	}
	return m.Inner, true, nil
}

// RelayAll re-forwards every buffered message to the whole group. In Lazy
// mode the OAR server calls this when entering phase 2 — the only time
// agreement is actually at risk — restoring the Agreement property at the
// moment it is needed.
func (r *RMcast) RelayAll() {
	for _, b := range r.buffer {
		r.relay(b.key, b.payload)
	}
}

// DeliveredCount returns the number of distinct messages R-delivered so far.
func (r *RMcast) DeliveredCount() int { return len(r.delivered) }

func (r *RMcast) markDelivered(key Key, payload []byte) {
	r.delivered[key] = struct{}{}
	if r.cfg.Mode == Lazy && r.inGroup {
		// The buffer retains the payload for later RelayAll calls, so it
		// takes an owned copy when the payload lives in the scratch buffer
		// (copy-on-retain).
		if r.cfg.SendCopies {
			owned := make([]byte, len(payload))
			copy(owned, payload)
			payload = owned
		}
		r.buffer = append(r.buffer, buffered{key: key, payload: payload})
		if len(r.buffer) > r.cfg.BufferLimit {
			r.buffer = r.buffer[len(r.buffer)-r.cfg.BufferLimit:]
		}
	}
}

func (r *RMcast) relay(key Key, payload []byte) {
	for _, p := range r.cfg.Group {
		if p == r.cfg.Self || p == key.Origin {
			continue
		}
		r.cfg.Send(p, payload)
	}
}
