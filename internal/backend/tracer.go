package backend

import (
	"repro/internal/cnsvorder"
	"repro/internal/proto"
)

// Tracer observes protocol events. The trace checker (internal/check) uses
// it to verify the paper's propositions on every run; metrics collectors use
// it for latency accounting. It lives in this package — below every
// protocol — because all backends emit the same event vocabulary: baselines
// record their irrevocable deliveries as ADeliver, OAR additionally emits
// the optimistic events. All methods are called from protocol event loops:
// implementations must be fast and safe for concurrent use (events come from
// n servers + clients). A nil Tracer disables tracing.
type Tracer interface {
	// Issue records a client executing OAR-multicast(m, Π) (Figure 5, line 2).
	Issue(client proto.NodeID, req proto.RequestID, cmd []byte)
	// OptDeliver records an optimistic delivery (Figure 6, line 17).
	OptDeliver(server proto.NodeID, epoch uint64, req proto.RequestID, pos uint64, result []byte)
	// OptUndeliver records an undo (Figure 6, line 26).
	OptUndeliver(server proto.NodeID, epoch uint64, req proto.RequestID)
	// ADeliver records a conservative (irrevocable) delivery (Figure 6,
	// line 28).
	ADeliver(server proto.NodeID, epoch uint64, req proto.RequestID, pos uint64, result []byte)
	// EpochClose records a completed phase 2: the server's Cnsv-order input
	// and result for the epoch.
	EpochClose(server proto.NodeID, epoch uint64, input cnsvorder.Input, result cnsvorder.Result)
	// Adopt records a client adopting a reply (Figure 5, line 5).
	Adopt(client proto.NodeID, req proto.RequestID, reply proto.Reply)
	// ReadAdopt records a client adopting a fast-path read reply: a reply
	// served from a replica's optimistic prefix (reply.Epoch, reply.Pos)
	// without the request taking a position in the definitive order. Reads
	// that fall back to the ordered path surface as ordinary Issue/Adopt
	// pairs instead.
	ReadAdopt(client proto.NodeID, req proto.RequestID, reply proto.Reply)
}

// RecoveryTracer is the optional recovery extension of Tracer: tracers that
// implement it additionally observe a replica's restart/recovery lifecycle.
// Emitters type-assert (MultiTracer forwards to the members that implement
// it), so existing tracers need no changes.
type RecoveryTracer interface {
	// Restarted records a replica booting after a crash, before it emits any
	// other event: until the matching Recovered, the replica is catching up
	// and must not deliver commands or serve fast-path reads.
	Restarted(server proto.NodeID)
	// Recovered records the replica completing catch-up: its definitive
	// prefix has length pos and it rejoins the protocol at epoch.
	Recovered(server proto.NodeID, epoch uint64, pos uint64)
}

// NopTracer returns the tracer that ignores all events.
func NopTracer() Tracer { return nopTracer{} }

// MultiTracer fans every event out to all given tracers (nil entries are
// skipped), letting e.g. a trace checker and a timeline printer observe the
// same run.
func MultiTracer(tracers ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	return multiTracer(kept)
}

type multiTracer []Tracer

var _ Tracer = multiTracer(nil)

func (m multiTracer) Issue(c proto.NodeID, r proto.RequestID, cmd []byte) {
	for _, t := range m {
		t.Issue(c, r, cmd)
	}
}

func (m multiTracer) OptDeliver(s proto.NodeID, e uint64, r proto.RequestID, p uint64, res []byte) {
	for _, t := range m {
		t.OptDeliver(s, e, r, p, res)
	}
}

func (m multiTracer) OptUndeliver(s proto.NodeID, e uint64, r proto.RequestID) {
	for _, t := range m {
		t.OptUndeliver(s, e, r)
	}
}

func (m multiTracer) ADeliver(s proto.NodeID, e uint64, r proto.RequestID, p uint64, res []byte) {
	for _, t := range m {
		t.ADeliver(s, e, r, p, res)
	}
}

func (m multiTracer) EpochClose(s proto.NodeID, e uint64, in cnsvorder.Input, res cnsvorder.Result) {
	for _, t := range m {
		t.EpochClose(s, e, in, res)
	}
}

func (m multiTracer) Adopt(c proto.NodeID, r proto.RequestID, reply proto.Reply) {
	for _, t := range m {
		t.Adopt(c, r, reply)
	}
}

func (m multiTracer) ReadAdopt(c proto.NodeID, r proto.RequestID, reply proto.Reply) {
	for _, t := range m {
		t.ReadAdopt(c, r, reply)
	}
}

// Restarted implements RecoveryTracer, forwarding to the members that
// observe recovery events. multiTracer always implements the extension so
// that wrapping never hides a member's implementation.
func (m multiTracer) Restarted(s proto.NodeID) {
	for _, t := range m {
		if rt, ok := t.(RecoveryTracer); ok {
			rt.Restarted(s)
		}
	}
}

// Recovered implements RecoveryTracer; see Restarted.
func (m multiTracer) Recovered(s proto.NodeID, epoch, pos uint64) {
	for _, t := range m {
		if rt, ok := t.(RecoveryTracer); ok {
			rt.Recovered(s, epoch, pos)
		}
	}
}

// nopTracer is the default tracer.
type nopTracer struct{}

var _ Tracer = nopTracer{}

func (nopTracer) Issue(proto.NodeID, proto.RequestID, []byte)                      {}
func (nopTracer) OptDeliver(proto.NodeID, uint64, proto.RequestID, uint64, []byte) {}
func (nopTracer) OptUndeliver(proto.NodeID, uint64, proto.RequestID)               {}
func (nopTracer) ADeliver(proto.NodeID, uint64, proto.RequestID, uint64, []byte)   {}
func (nopTracer) EpochClose(proto.NodeID, uint64, cnsvorder.Input, cnsvorder.Result) {
}
func (nopTracer) Adopt(proto.NodeID, proto.RequestID, proto.Reply)     {}
func (nopTracer) ReadAdopt(proto.NodeID, proto.RequestID, proto.Reply) {}
