package backend

import (
	"context"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
)

// Measure wraps an Invoker so that every successful Invoke records its
// end-to-end response time — submit to adopted reply, the metric the
// source paper's optimistic delivery exists to cut — into hist. Failed
// invocations (context expiry, shutdown) record nothing: an aborted wait is
// not a response time, and mixing the two corrupts the tail. A nil hist
// returns inner unchanged.
//
// The wrapper preserves the inner invoker's concurrency contract (Record is
// lock-free) and forwards Stop, so it is transparent to the cluster runtime
// and the shard fan-out client.
func Measure(inner Invoker, hist *metrics.Histogram) Invoker {
	if hist == nil {
		return inner
	}
	return &measuredInvoker{inner: inner, hist: hist}
}

type measuredInvoker struct {
	inner Invoker
	hist  *metrics.Histogram
}

func (m *measuredInvoker) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	start := time.Now()
	r, err := m.inner.Invoke(ctx, cmd)
	if err == nil {
		m.hist.Record(time.Since(start))
	}
	return r, err
}

func (m *measuredInvoker) Stop() { m.inner.Stop() }
