package backend

import (
	"context"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
)

// Measure wraps an Invoker so that every successful Invoke records its
// end-to-end response time — submit to adopted reply, the metric the
// source paper's optimistic delivery exists to cut — into hist, and every
// successful InvokeRead into readHist (when the inner invoker has a read
// fast path and readHist is non-nil; a fast-path-less inner invoker keeps
// reads on Invoke and they land in hist). Failed invocations (context
// expiry, shutdown) record nothing: an aborted wait is not a response time,
// and mixing the two corrupts the tail. A nil hist returns inner unchanged.
//
// The wrapper preserves the inner invoker's concurrency contract (Record is
// lock-free) and forwards Stop, so it is transparent to the cluster runtime
// and the shard fan-out client. It exposes ReadInvoker exactly when inner
// does: wrapping never grants or hides a read fast path.
func Measure(inner Invoker, hist, readHist *metrics.Histogram) Invoker {
	if hist == nil {
		return inner
	}
	m := &measuredInvoker{inner: inner, hist: hist}
	if ri, ok := inner.(ReadInvoker); ok {
		return &measuredReadInvoker{measuredInvoker: m, reader: ri, readHist: readHist}
	}
	return m
}

type measuredInvoker struct {
	inner Invoker
	hist  *metrics.Histogram
}

func (m *measuredInvoker) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	start := time.Now()
	r, err := m.inner.Invoke(ctx, cmd)
	if err == nil {
		m.hist.Record(time.Since(start))
	}
	return r, err
}

func (m *measuredInvoker) Stop() { m.inner.Stop() }

// measuredReadInvoker adds the timed InvokeRead forwarding for inner
// invokers that implement the read fast path.
type measuredReadInvoker struct {
	*measuredInvoker
	reader   ReadInvoker
	readHist *metrics.Histogram
}

func (m *measuredReadInvoker) InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error) {
	start := time.Now()
	r, err := m.reader.InvokeRead(ctx, cmd)
	if err == nil && m.readHist != nil {
		m.readHist.Record(time.Since(start))
	}
	return r, err
}
