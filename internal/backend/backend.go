// Package backend is the protocol-agnostic replica runtime contract: the
// seam between the ordering protocols (the OAR protocol of internal/core and
// the two baselines of internal/baseline) and everything above them (the
// cluster runtime, the shard router, the facade, the experiment suite).
//
// A protocol plugs in by implementing Backend — a factory for server-side
// Replicas and client-side Invokers — and registering it under a name.
// Everything above this package speaks only these interfaces: the cluster
// boots N Replicas per ordering group over any transport, hands out Invokers
// (fanned out per group by internal/shard when the keyspace is sharded), and
// reads the one shared Stats counter set. The built-in protocols register
// themselves from their own packages ("oar", "fixedseq", "ctab"); tests
// register stubs; nothing in the runtime enumerates protocols.
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/fd"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rmcast"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Defaults for replica event loops, shared by every backend (core re-exports
// them under its historical names).
const (
	// DefaultTickInterval drives batching flushes, suspicion sampling,
	// heartbeats and consensus timeouts.
	DefaultTickInterval = time.Millisecond
	// DefaultHeartbeatInterval is the gap between heartbeats to peers.
	DefaultHeartbeatInterval = 5 * time.Millisecond
)

// ReplicaConfig is the protocol-independent boot configuration of one
// replica. Backends ignore the knobs their protocol has no use for (the
// baselines have no relay strategy or epoch limit), but every backend must
// honor the identity, transport, machine, detector and tracer fields — they
// are what the cluster runtime and the trace checker are built on.
type ReplicaConfig struct {
	// ID is this replica's rank; Group is Π.
	ID    proto.NodeID
	Group []proto.NodeID
	// GroupID is the ordering group (shard) this replica serves. All outgoing
	// traffic is tagged with it; inbound traffic tagged with a foreign group
	// is dropped before the body is decoded.
	GroupID proto.GroupID
	// Node is the transport endpoint.
	Node transport.Node
	// Machine is the deterministic replicated state machine.
	Machine app.Machine
	// Detector drives failure suspicion (sequencer fail-over, consensus
	// coordinator rotation).
	Detector fd.Detector
	// RelayMode selects the reliable-multicast relay strategy (OAR only).
	RelayMode rmcast.Mode
	// TickInterval and HeartbeatInterval drive the replica event loop
	// (protocol defaults apply when zero; negative HeartbeatInterval disables
	// heartbeats).
	TickInterval      time.Duration
	HeartbeatInterval time.Duration
	// EpochRequestLimit bounds the optimistic epoch length (OAR only).
	EpochRequestLimit int
	// BatchWindow and MaxBatch tune the transport batching layer. A negative
	// BatchWindow disables send coalescing entirely (the experiment control);
	// MaxBatch caps requests per ordering message where the protocol batches
	// its ordering (OAR).
	BatchWindow time.Duration
	MaxBatch    int
	// AutoTune replaces the static send-side hold with a closed-loop
	// controller (internal/tune) that continuously adjusts the effective
	// batch window between a latency floor and a throughput ceiling.
	// Requires the batching layer (BatchWindow >= 0).
	AutoTune bool
	// Pipeline runs the replica event loop as decode → order → send stages
	// on separate goroutines connected by SPSC rings (protocols that have
	// no staged loop ignore it). PipelineDepth sets the per-ring capacity
	// (protocol default when zero).
	Pipeline      bool
	PipelineDepth int
	// WALDir enables the write-ahead log: definitive deliveries and epoch
	// markers are persisted there and replayed on the next boot. Empty
	// disables durability (the replica still serves peer catch-up from its
	// in-memory history). WALSync selects the fsync policy.
	WALDir  string
	WALSync wal.SyncPolicy
	// SnapshotEvery takes a state snapshot every that many closed epochs
	// (0 = protocol default, negative = never). Snapshots bound both the WAL
	// on disk and the in-memory catch-up tail, and require the Machine to
	// implement app.Durable.
	SnapshotEvery int
	// Recovering marks a replica booting after a crash: it must replay its
	// local snapshot+WAL, catch up from peers, and refuse reads until caught
	// up, instead of joining the protocol at epoch 0.
	Recovering bool
	// Incarnation counts this replica's boots (0 for the first). Restarted
	// replicas need it to claim a fresh reliable-multicast sequence range:
	// peers deduplicate multicasts by (origin, seq) forever, so reusing the
	// previous incarnation's numbers would get the new ones dropped.
	Incarnation uint64
	// Tracer observes protocol events (nil disables tracing).
	Tracer Tracer
}

// InvokerConfig is the protocol-independent boot configuration of one
// client endpoint attached to a single ordering group.
type InvokerConfig struct {
	// ID is the client's node ID (proto.ClientID(i)); Group is Π.
	ID    proto.NodeID
	Group []proto.NodeID
	// GroupID is the ordering group this invoker talks to.
	GroupID proto.GroupID
	// Node is the client's transport endpoint.
	Node transport.Node
	// Tracer observes Issue/Adopt events (nil disables tracing).
	Tracer Tracer
	// Unbatched disables the client-side send-coalescing layer.
	Unbatched bool
	// AutoTune gives the client's coalescing sender a closed-loop
	// hold-window controller. Ignored when Unbatched.
	AutoTune bool
}

// Replica is one running replica of an ordering protocol: an event loop the
// cluster runtime owns a goroutine for, plus the shared counter surface.
type Replica interface {
	// Run executes the replica event loop until ctx ends or the transport
	// closes (crash injection).
	Run(ctx context.Context) error
	// Stats returns a snapshot of the replica's protocol counters.
	Stats() Stats
}

// Invoker is the client surface of every protocol (and of the sharded
// fan-out client): submit a command, block until the protocol's adoption
// rule accepts a reply. Implementations must be safe for concurrent Invokes.
type Invoker interface {
	Invoke(ctx context.Context, cmd []byte) (proto.Reply, error)
	Stop()
}

// ReadInvoker is the optional read fast path of an Invoker: submit a
// read-only command and block until the protocol's read adoption rule
// accepts a reply served without a position in the definitive order.
// Implementations must fall back to the ordered path themselves when the
// fast path cannot answer, so InvokeRead is always safe to call for a
// read-only command; callers that find the interface absent route reads
// through Invoke unchanged.
type ReadInvoker interface {
	InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error)
}

// Backend builds the two halves of one replication protocol. NewInvoker
// returns a started Invoker (ready for Invoke; released with Stop).
type Backend interface {
	// Name is the registry key ("oar", "fixedseq", ...).
	Name() string
	// NewReplica validates cfg and creates one replica (not yet running).
	NewReplica(cfg ReplicaConfig) (Replica, error)
	// NewInvoker validates cfg and creates a started client endpoint.
	NewInvoker(cfg InvokerConfig) (Invoker, error)
}

// Stats is the protocol-agnostic replica counter set. Every backend fills
// the counters its protocol has; the rest stay zero. Delivered is the one
// every protocol must maintain: the number of definitively delivered
// commands (for OAR, optimistic deliveries that were not rolled back, plus
// conservative deliveries).
type Stats struct {
	// Delivered counts definitive command deliveries (rollbacks deducted).
	Delivered uint64
	// OptDelivered / OptUndelivered / ADelivered / Epochs are the OAR phase
	// counters (Figure 6 lines 17, 26, 28; completed phase-2 rounds).
	OptDelivered   uint64
	OptUndelivered uint64
	ADelivered     uint64
	Epochs         uint64
	// SeqOrdersSent counts sequencer ordering messages (OAR and fixedseq).
	SeqOrdersSent uint64
	// ForeignDropped counts inbound messages dropped for a foreign GroupID.
	ForeignDropped uint64
	// ReadsServed counts read-only requests answered on the read fast path —
	// inline from a replica's optimistic prefix, with zero ordering messages.
	// ReadFallbacks counts reads a replica pushed onto the ordered path
	// instead (no Reader on the machine, or the command was not a
	// well-formed read).
	ReadsServed   uint64
	ReadFallbacks uint64
	// Views counts fixedseq sequencer fail-overs.
	Views uint64
	// Recoveries counts completed crash-recoveries (local replay + peer
	// catch-up, ending with the replica back in full standing).
	// CatchupServed counts catch-up probes this replica answered with state;
	// RecoveryRefusedReads counts fast-path reads refused (dropped) because
	// the replica had not caught up yet.
	Recoveries           uint64
	CatchupServed        uint64
	RecoveryRefusedReads uint64
	// Batches counts ctab's completed consensus instances.
	Batches uint64
	// BatchFrames counts frames the replica's send batcher shipped and
	// BatchedSends the protocol messages those frames carried, so
	// coalescing (messages per frame) is observable per replica.
	BatchFrames  uint64
	BatchedSends uint64
	// BatchWindowNS is the effective send-side hold window in nanoseconds
	// at snapshot time — the AutoTune controller's current output, or the
	// static window. A gauge: Accumulate keeps the maximum.
	BatchWindowNS int64
	// Latency is the client-observed end-to-end invocation latency of the
	// backend's clients, attached at aggregation time: replicas return it
	// nil (a replica never sees a client's response time), and the cluster
	// runtime fills it from the measured invokers it wraps around every
	// client (see Measure). Accumulate merges histograms exactly, so
	// per-shard latencies aggregate into system-wide percentiles.
	Latency *metrics.Histogram
	// ReadLatency is the client-observed latency of fast-path reads
	// (InvokeRead calls), split out from Latency so the read/write latency
	// gap is observable; attached at aggregation time like Latency.
	ReadLatency *metrics.Histogram
}

// Accumulate adds other's counters to s (used to aggregate replicas and
// shards). A non-nil other.Latency is merged into an accumulator-owned
// histogram — other's is never aliased or mutated.
func (s *Stats) Accumulate(other Stats) {
	s.Delivered += other.Delivered
	s.OptDelivered += other.OptDelivered
	s.OptUndelivered += other.OptUndelivered
	s.ADelivered += other.ADelivered
	s.Epochs += other.Epochs
	s.SeqOrdersSent += other.SeqOrdersSent
	s.ForeignDropped += other.ForeignDropped
	s.ReadsServed += other.ReadsServed
	s.ReadFallbacks += other.ReadFallbacks
	s.Views += other.Views
	s.Recoveries += other.Recoveries
	s.CatchupServed += other.CatchupServed
	s.RecoveryRefusedReads += other.RecoveryRefusedReads
	s.Batches += other.Batches
	s.BatchFrames += other.BatchFrames
	s.BatchedSends += other.BatchedSends
	if other.BatchWindowNS > s.BatchWindowNS {
		s.BatchWindowNS = other.BatchWindowNS
	}
	if other.Latency != nil {
		if s.Latency == nil {
			s.Latency = metrics.NewHistogram()
		}
		s.Latency.Merge(other.Latency)
	}
	if other.ReadLatency != nil {
		if s.ReadLatency == nil {
			s.ReadLatency = metrics.NewHistogram()
		}
		s.ReadLatency.Merge(other.ReadLatency)
	}
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register makes a backend available under b.Name(). It panics on an empty
// name or a duplicate registration — both are programming errors, caught at
// init time like database/sql driver registration.
func Register(b Backend) {
	if b == nil || b.Name() == "" {
		panic("backend: Register with nil backend or empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
	}
	registry[b.Name()] = b
}

// Lookup resolves a registered backend by name.
func Lookup(name string) (Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %v)", name, namesLocked())
	}
	return b, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
