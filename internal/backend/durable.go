package backend

import (
	"fmt"
	"hash/crc32"

	"repro/internal/proto"
	"repro/internal/wire"
)

// Durable replica state: the protocol-agnostic bookkeeping every backend
// keeps so a crashed peer can catch up.
//
// A replica's definitive history is a snapshot (covering positions 1..SnapPos)
// plus the tail of commands delivered since (SnapPos+1..Pos). DurableState is
// the in-memory copy of exactly that, maintained at every definitive delivery
// whether or not a WAL is configured — peer catch-up must work on pure
// in-memory clusters too, because a restarted replica with an empty disk still
// has peers with the full history. When a WAL is configured the same events
// additionally go to disk, and the snapshot lets the WAL truncate its prefix.

// DurableState is a replica's boundary state for serving peer catch-up. It is
// owned by the replica event loop (no locking).
type DurableState struct {
	// SnapBlob is the encoded SnapshotBlob covering positions 1..SnapPos
	// (nil when no snapshot has been taken — then SnapPos is 0 and Tail is
	// the full history).
	SnapBlob []byte
	SnapPos  uint64
	// Tail holds the definitive commands at positions SnapPos+1..Pos, in
	// delivery order, each an owned clone.
	Tail []proto.Request
	// Pos is the definitive boundary position; Epoch the current epoch
	// (last closed + 1).
	Pos   uint64
	Epoch uint64
}

// Append records one definitively delivered command (cloning it) and
// advances Pos.
func (ds *DurableState) Append(req proto.Request) {
	ds.Tail = append(ds.Tail, req.Clone())
	ds.Pos++
}

// SetSnapshot installs a snapshot covering the whole current history
// (snapshots are taken at epoch boundaries, so they always cover Pos) and
// drops the tail it covers.
func (ds *DurableState) SetSnapshot(blob []byte) {
	ds.SnapBlob = blob
	ds.SnapPos = ds.Pos
	ds.Tail = ds.Tail[:0]
}

// Respond assembles the state a prober at havePos is missing: a snapshot to
// restore from (nil if the prober's own prefix suffices) and the commands
// from firstPos+1 through ds.Pos. Entries alias ds.Tail; the caller encodes
// them before the event loop mutates the state again.
func (ds *DurableState) Respond(havePos uint64) (snap []byte, firstPos uint64, entries []proto.Request) {
	if havePos >= ds.Pos {
		return nil, ds.Pos, nil
	}
	if havePos >= ds.SnapPos {
		return nil, havePos, ds.Tail[havePos-ds.SnapPos:]
	}
	return ds.SnapBlob, ds.SnapPos, ds.Tail
}

// SnapshotBlob is the replica-level snapshot image: the application machine's
// own Durable image plus the protocol metadata recovery needs — the boundary
// position and epoch the image corresponds to and the full set of delivered
// request IDs (the at-most-once guard must survive a restart, or a retried
// request could execute twice against the restored state).
type SnapshotBlob struct {
	Epoch     uint64
	Pos       uint64
	Delivered []proto.RequestID
	Image     []byte
}

const snapBlobMagic = 0x4f534e50 // "OSNP"

var snapBlobCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeSnapshotBlob encodes b with a magic header and a trailing CRC.
func EncodeSnapshotBlob(b SnapshotBlob) []byte {
	w := wire.NewWriter(64 + 24*len(b.Delivered) + len(b.Image))
	w.Uint32(snapBlobMagic)
	w.Uint64(b.Epoch)
	w.Uint64(b.Pos)
	w.Uint64(uint64(len(b.Delivered)))
	for _, id := range b.Delivered {
		w.Uint32(uint32(id.Group))
		w.Int64(int64(id.Client))
		w.Uint64(id.Seq)
	}
	w.BytesField(b.Image)
	out := w.Bytes()
	var crc [4]byte
	c := crc32.Checksum(out, snapBlobCRC)
	crc[0], crc[1], crc[2], crc[3] = byte(c), byte(c>>8), byte(c>>16), byte(c>>24)
	return append(out, crc[:]...)
}

// DecodeSnapshotBlob validates and decodes an encoded snapshot blob. The
// Image aliases data.
func DecodeSnapshotBlob(data []byte) (SnapshotBlob, error) {
	if len(data) < 4 {
		return SnapshotBlob{}, fmt.Errorf("backend: snapshot blob too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if got := crc32.Checksum(body, snapBlobCRC); got != want {
		return SnapshotBlob{}, fmt.Errorf("backend: snapshot blob checksum mismatch (want %08x, got %08x)", want, got)
	}
	r := wire.NewReader(body)
	if magic := r.Uint32(); magic != snapBlobMagic {
		return SnapshotBlob{}, fmt.Errorf("backend: bad snapshot blob magic %08x", magic)
	}
	var b SnapshotBlob
	b.Epoch = r.Uint64()
	b.Pos = r.Uint64()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return SnapshotBlob{}, fmt.Errorf("backend: decode snapshot blob: %w", err)
	}
	if n > uint64(r.Remaining()) { // each ID takes >= 1 byte
		return SnapshotBlob{}, fmt.Errorf("backend: decode snapshot blob: %w", wire.ErrOverflow)
	}
	for i := uint64(0); i < n; i++ {
		var id proto.RequestID
		id.Group = proto.GroupID(r.Uint32())
		id.Client = proto.NodeID(r.Int64())
		id.Seq = r.Uint64()
		b.Delivered = append(b.Delivered, id)
	}
	b.Image = r.BytesFieldRef()
	if err := r.Err(); err != nil {
		return SnapshotBlob{}, fmt.Errorf("backend: decode snapshot blob: %w", err)
	}
	return b, nil
}
