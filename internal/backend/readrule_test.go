package backend

import (
	"testing"

	"repro/internal/proto"
)

func reply(from int, epoch, pos uint64) proto.Reply {
	return proto.Reply{
		From:   proto.NodeID(from),
		Epoch:  epoch,
		Weight: proto.WeightOf(proto.NodeID(from)),
		Pos:    pos,
	}
}

func TestReadQuorumAdoptsAtMajority(t *testing.T) {
	q := NewReadQuorum(3)
	if _, ok := q.Offer(reply(0, 0, 5), 0); ok {
		t.Fatal("adopted on a single reply")
	}
	best, ok := q.Offer(reply(1, 0, 5), 0)
	if !ok {
		t.Fatal("majority at the same position not adopted")
	}
	if best.Pos != 5 {
		t.Fatalf("adopted pos %d, want 5", best.Pos)
	}
}

func TestReadQuorumFreshestEndorsedPositionWins(t *testing.T) {
	// A reply at pos p endorses every prefix ≤ p: {pos 7, pos 5} must adopt
	// pos 5 (both endorse it), not wait for a second reply at 7.
	q := NewReadQuorum(3)
	if _, ok := q.Offer(reply(0, 0, 7), 0); ok {
		t.Fatal("adopted on a single reply")
	}
	best, ok := q.Offer(reply(1, 0, 5), 0)
	if !ok {
		t.Fatal("mixed positions with a majority ≥ 5 not adopted")
	}
	if best.Pos != 5 {
		t.Fatalf("adopted pos %d, want 5 (the largest majority-endorsed prefix)", best.Pos)
	}
	// A third reply at pos 7 upgrades nothing: the call already adopted.
}

func TestReadQuorumEpochsNeverMix(t *testing.T) {
	// Positions are only comparable within an epoch: one reply from epoch 0
	// and one from epoch 1 are two minorities, not a quorum.
	q := NewReadQuorum(3)
	if _, ok := q.Offer(reply(0, 0, 5), 0); ok {
		t.Fatal("adopted on a single reply")
	}
	if _, ok := q.Offer(reply(1, 1, 5), 0); ok {
		t.Fatal("cross-epoch replies formed a quorum")
	}
	best, ok := q.Offer(reply(2, 1, 6), 0)
	if !ok {
		t.Fatal("same-epoch majority not adopted")
	}
	if best.Epoch != 1 || best.Pos != 5 {
		t.Fatalf("adopted (epoch %d, pos %d), want (1, 5)", best.Epoch, best.Pos)
	}
}

func TestReadQuorumFloorBlocksStalePrefix(t *testing.T) {
	// The client's high-water mark rose to 6 after these replies were
	// accepted: the majority at pos 5 must not be adopted under floor 6.
	q := NewReadQuorum(3)
	q.Offer(reply(0, 0, 5), 0)
	if _, ok := q.Offer(reply(1, 0, 5), 6); ok {
		t.Fatal("adopted a prefix below the floor")
	}
	// A fresh reply at pos 6 cannot rescue it alone (only one reply ≥ 6)...
	if _, ok := q.Offer(reply(2, 0, 6), 6); ok {
		t.Fatal("single reply above the floor adopted")
	}
	// ...but the same accumulator adopts at the floor once a majority
	// answers there (fresh replies during a retry window, same quorum).
	q2 := NewReadQuorum(3)
	q2.Offer(reply(0, 0, 5), 6)
	q2.Offer(reply(1, 0, 6), 6)
	best, ok := q2.Offer(reply(2, 0, 7), 6)
	if !ok {
		t.Fatal("majority at/above the floor not adopted")
	}
	if best.Pos != 6 {
		t.Fatalf("adopted pos %d, want 6", best.Pos)
	}
}

func TestReadQuorumWeightsNotReplyCounts(t *testing.T) {
	// The rule is about weight unions, not reply counts: the same replica
	// answering twice is still one weight.
	q := NewReadQuorum(3)
	q.Offer(reply(0, 0, 5), 0)
	if _, ok := q.Offer(reply(0, 0, 5), 0); ok {
		t.Fatal("duplicate replica weight formed a quorum")
	}
}

func TestReadQuorumAllAnswered(t *testing.T) {
	q := NewReadQuorum(3)
	// Stale replies are counted via Answer without entering adoption.
	q.Answer(reply(0, 0, 1))
	if q.AllAnswered() {
		t.Fatal("one answer of three reported as all")
	}
	q.Answer(reply(1, 0, 2))
	if _, ok := q.Offer(reply(2, 0, 3), 4); ok {
		t.Fatal("adopted below the floor")
	}
	if !q.AllAnswered() {
		t.Fatal("three answers of three not reported as all")
	}
}

func TestReadQuorumLargerGroup(t *testing.T) {
	// n=5: majority is 3. Replies at pos {9, 8, 7} adopt pos 7; two replies
	// do not.
	q := NewReadQuorum(5)
	q.Offer(reply(0, 2, 9), 0)
	if _, ok := q.Offer(reply(1, 2, 8), 0); ok {
		t.Fatal("two of five adopted")
	}
	best, ok := q.Offer(reply(2, 2, 7), 0)
	if !ok {
		t.Fatal("three of five not adopted")
	}
	if best.Pos != 7 {
		t.Fatalf("adopted pos %d, want 7", best.Pos)
	}
}
