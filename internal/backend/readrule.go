package backend

import (
	"sort"

	"repro/internal/proto"
)

// ReadQuorum is the client half of the read fast path, shared by every
// backend's client: it accumulates the replies of one read-only request and
// decides adoption under the majority-validated prefix rule.
//
// A fast-path read reply is a snapshot of one replica's prefix, tagged
// (epoch, pos, weight). A candidate reply is adoptable once the union weight
// of same-epoch replies answering at the candidate's position *or later*
// reaches a majority of the group: each such replica's epoch proposal
// extends the candidate prefix, the epoch-closing agreement adopts a
// proposal endorsed by a majority, and two majorities intersect — so the
// definitive order extends the candidate prefix. Among adoptable candidates
// the freshest (largest position) wins. A prefix that is later rolled back
// was, by the same intersection argument, never adoptable.
//
// The accumulator is not safe for concurrent use; callers hold their client
// lock across Offer (matching the write path's reply handling).
type ReadQuorum struct {
	n       int
	byEpoch map[uint64]*readEpoch

	// Answered unions the weight of every reply seen — including replies the
	// caller filtered out of adoption (stale prefixes) and fed through
	// Answer only — so the client can give up and fall back to the ordered
	// path once the whole group has answered without an adoptable majority.
	Answered proto.Weight
}

type readEpoch struct {
	replies []proto.Reply
	union   proto.Weight
}

// NewReadQuorum creates an accumulator for one read against a group of n.
func NewReadQuorum(n int) *ReadQuorum {
	return &ReadQuorum{n: n, byEpoch: make(map[uint64]*readEpoch)}
}

// Answer counts a reply toward the answered weight without entering it into
// the adoption rule — for replies the caller must discard (e.g. below its
// monotonic-read high-water mark).
func (q *ReadQuorum) Answer(reply proto.Reply) {
	q.Answered = q.Answered.Union(reply.Weight)
}

// AllAnswered reports whether every group member has answered.
func (q *ReadQuorum) AllAnswered() bool { return q.Answered == proto.FullWeight(q.n) }

// Offer records reply and returns the adoptable reply with the largest
// position at or above floor, if the rule is now satisfied. The reply is
// retained across Offers (the quorum builds up over several frames): callers
// pass an owned reply (Clone when it aliases an inbound frame).
//
// floor is the client's monotonic-read high-water mark at this instant — it
// must be re-passed on every Offer, not just enforced at reply arrival,
// because the mark can rise between two replies of the same read (a write on
// the same client adopting in between): a reply accepted under the old mark
// may head a majority that only forms below the new one, and adopting it
// would serve the client a prefix older than an operation it has already
// observed.
func (q *ReadQuorum) Offer(reply proto.Reply, floor uint64) (proto.Reply, bool) {
	q.Answer(reply)
	acc, ok := q.byEpoch[reply.Epoch]
	if !ok {
		acc = &readEpoch{}
		q.byEpoch[reply.Epoch] = acc
	}
	acc.replies = append(acc.replies, reply)
	acc.union = acc.union.Union(reply.Weight)
	if !acc.union.IsMajority(q.n) {
		return proto.Reply{}, false
	}
	// Scan positions from freshest to oldest, accumulating the union weight
	// of every reply at or beyond the current one; the first position where
	// the union reaches a majority is the largest adoptable candidate. A
	// reply below the floor cannot head an adoptable candidate (and replies
	// never endorse positions above their own), so the scan stops there.
	sort.Slice(acc.replies, func(i, j int) bool { return acc.replies[i].Pos > acc.replies[j].Pos })
	var endorse proto.Weight
	for i, r := range acc.replies {
		if r.Pos < floor {
			break
		}
		endorse = endorse.Union(r.Weight)
		if i+1 < len(acc.replies) && acc.replies[i+1].Pos == r.Pos {
			continue // fold in every reply at this position first
		}
		if endorse.IsMajority(q.n) {
			return r, true
		}
	}
	return proto.Reply{}, false
}
