package backend_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/transport"
)

// stubBackend is a minimal ordering backend registered from this test: one
// replica that delivers requests in its own arrival order and replies with
// full weight, served by the classic first-reply client. It exists to prove
// the extension point: cluster.New must boot it — sharded, even — through
// the same registry path as the built-ins, with zero cluster changes.
type stubBackend struct{}

func (stubBackend) Name() string { return "stub" }

func (stubBackend) NewReplica(cfg backend.ReplicaConfig) (backend.Replica, error) {
	if cfg.Node == nil || cfg.Machine == nil {
		return nil, fmt.Errorf("stub: Node and Machine are required")
	}
	if cfg.Tracer == nil {
		cfg.Tracer = backend.NopTracer()
	}
	return &stubReplica{cfg: cfg}, nil
}

func (stubBackend) NewInvoker(cfg backend.InvokerConfig) (backend.Invoker, error) {
	cli, err := baseline.NewClient(baseline.ClientConfig{
		ID:        cfg.ID,
		Group:     cfg.Group,
		GroupID:   cfg.GroupID,
		Node:      cfg.Node,
		Tracer:    cfg.Tracer,
		Unbatched: cfg.Unbatched,
	})
	if err != nil {
		return nil, err
	}
	cli.Start()
	return cli, nil
}

type stubReplica struct {
	cfg       backend.ReplicaConfig
	pos       uint64
	seen      map[proto.RequestID]struct{}
	delivered atomic.Uint64
	foreign   atomic.Uint64
}

func (r *stubReplica) Stats() backend.Stats {
	return backend.Stats{
		Delivered:      r.delivered.Load(),
		ForeignDropped: r.foreign.Load(),
	}
}

func (r *stubReplica) Run(ctx context.Context) error {
	r.seen = make(map[proto.RequestID]struct{})
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-r.cfg.Node.Recv():
			if !ok {
				return nil
			}
			msgs, _ := transport.ExpandBatch(m)
			for _, inner := range msgs {
				r.handle(inner.Payload)
			}
		}
	}
}

func (r *stubReplica) handle(payload []byte) {
	kind, group, body, err := proto.Unmarshal(payload)
	if err != nil || kind != proto.KindRequest {
		return
	}
	if group != r.cfg.GroupID {
		r.foreign.Add(1)
		return
	}
	req, err := proto.UnmarshalRequest(body)
	if err != nil {
		return
	}
	if _, dup := r.seen[req.ID]; dup {
		return
	}
	r.seen[req.ID] = struct{}{}
	result, _ := r.cfg.Machine.Apply(req.Cmd)
	r.pos++
	r.delivered.Add(1)
	r.cfg.Tracer.ADeliver(r.cfg.ID, 0, req.ID, r.pos, result)
	_ = r.cfg.Node.Send(req.ID.Client, proto.MarshalReply(proto.Reply{
		Req:    req.ID,
		From:   r.cfg.ID,
		Weight: proto.FullWeight(len(r.cfg.Group)),
		Pos:    r.pos,
		Result: result,
	}))
}

func registerStub(t *testing.T) {
	t.Helper()
	if _, err := backend.Lookup("stub"); err == nil {
		return // an earlier test already registered it
	}
	backend.Register(stubBackend{})
}

// TestStubBackendThroughCluster proves the extension point: a backend
// registered by a test boots through cluster.New — with Shards > 1, over the
// key-hash router — and serves invokes, without the cluster package knowing
// it exists.
func TestStubBackendThroughCluster(t *testing.T) {
	registerStub(t)
	c, err := cluster.New(cluster.Options{
		Protocol: "stub", N: 1, Shards: 2, Machine: "kv", FD: cluster.FDNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := c.Protocol(); got != "stub" {
		t.Fatalf("Protocol() = %q", got)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const keys = 8
	for i := 0; i < keys; i++ {
		if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		reply, err := cli.Invoke(ctx, []byte(fmt.Sprintf("get k%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(reply.Result) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%d = %q", i, reply.Result)
		}
	}
	if got := c.DeliveredTotal(); got != 2*keys {
		t.Errorf("DeliveredTotal = %d, want %d", got, 2*keys)
	}
	// The router really spread the load: both groups' stub replicas served.
	for s := 0; s < 2; s++ {
		if st := c.ReplicaStats(s, 0); st.Delivered == 0 {
			t.Errorf("shard %d stub replica served nothing", s)
		} else if st.ForeignDropped != 0 {
			t.Errorf("shard %d saw foreign traffic on a disjoint network: %+v", s, st)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"oar", "fixedseq", "ctab"} {
		be, err := backend.Lookup(name)
		if err != nil {
			t.Fatalf("built-in %q not registered: %v", name, err)
		}
		if be.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, be.Name())
		}
	}
	if _, err := backend.Lookup("no-such-backend"); err == nil {
		t.Error("unknown backend resolved")
	}
	names := backend.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	registerStub(t)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate Register", func() { backend.Register(stubBackend{}) })
	mustPanic("nil Register", func() { backend.Register(nil) })
}

func TestStatsAccumulate(t *testing.T) {
	a := backend.Stats{Delivered: 1, OptDelivered: 2, OptUndelivered: 3, ADelivered: 4, Epochs: 5, SeqOrdersSent: 6, ForeignDropped: 7, Views: 8, Batches: 9}
	b := a
	b.Accumulate(a)
	want := backend.Stats{Delivered: 2, OptDelivered: 4, OptUndelivered: 6, ADelivered: 8, Epochs: 10, SeqOrdersSent: 12, ForeignDropped: 14, Views: 16, Batches: 18}
	if b != want {
		t.Errorf("Accumulate = %+v, want %+v", b, want)
	}
}
