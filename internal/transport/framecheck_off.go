//go:build !framecheck

package transport

// frameDebug is the zero-cost stub of the framecheck instrumentation: the
// default build carries no per-frame state and the hooks compile away. Build
// with -tags=framecheck to make Frame.Release panic on double release with
// the acquisition and first-release stacks.
type frameDebug struct{}

func (frameDebug) noteGet()     {}
func (frameDebug) noteRelease() {}
