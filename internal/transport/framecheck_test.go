//go:build framecheck

package transport

import (
	"strings"
	"testing"
)

// TestFramecheckDoubleReleasePanics verifies the framecheck instrumentation
// itself: the second Release of one acquisition must panic, and the panic
// must carry the acquisition stack so the leak is debuggable from the crash
// alone.
func TestFramecheckDoubleReleasePanics(t *testing.T) {
	f := GetFrame()
	f.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Release did not panic under framecheck")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		for _, part := range []string{"acquired at", "first released at", "this release at"} {
			if !strings.Contains(msg, part) {
				t.Errorf("panic message missing %q section:\n%s", part, msg)
			}
		}
		if !strings.Contains(msg, "TestFramecheckDoubleReleasePanics") {
			t.Errorf("acquisition stack does not name the acquiring function:\n%s", msg)
		}
	}()
	f.Release()
}

// TestFramecheckReacquireIsFresh: a frame recycled through the pool starts a
// new acquisition; releasing it once is legal.
func TestFramecheckReacquireIsFresh(t *testing.T) {
	f := GetFrame()
	f.Release()
	g := GetFrame() // may or may not be the same *Frame
	g.Release()
}
