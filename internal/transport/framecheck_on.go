//go:build framecheck

package transport

import (
	"fmt"
	"runtime"
	"sync"
)

// frameDebug tracks a pooled frame's ownership when the framecheck build tag
// is on. GetFrame marks the frame live and captures the acquisition stack;
// Release on a frame that is not live panics with the acquisition, first-
// release and offending stacks. A double release is otherwise silent and
// catastrophic — the frame enters the pool twice, two senders fill the same
// buffer, and the corruption surfaces as a decode error (or worse, a valid-
// looking wrong message) far from the bug. Run the suite with
//
//	go test -race -tags=framecheck ./...
//
// to turn that race into an immediate panic at the second Release.
type frameDebug struct {
	mu         sync.Mutex
	live       bool
	acquiredAt []byte
	releasedAt []byte
}

func (d *frameDebug) noteGet() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.live = true
	d.acquiredAt = captureStack()
	d.releasedAt = nil
}

func (d *frameDebug) noteRelease() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.live {
		panic(fmt.Sprintf(
			"transport: Frame.Release without a live GetFrame (double release, or Release of a never-acquired frame)\n\n--- acquired at ---\n%s\n--- first released at ---\n%s\n--- this release at ---\n%s",
			orUnknown(d.acquiredAt), orUnknown(d.releasedAt), captureStack()))
	}
	d.live = false
	d.releasedAt = captureStack()
}

func orUnknown(stack []byte) string {
	if len(stack) == 0 {
		return "(unknown)"
	}
	return string(stack)
}

func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
