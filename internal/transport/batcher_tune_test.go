package transport

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
)

// captureNode records every sent payload. It deliberately does NOT implement
// FrameSender, exercising the owned-copy fallback path.
type captureNode struct {
	sent [][]byte
	to   []proto.NodeID
}

func (n *captureNode) ID() proto.NodeID { return 0 }
func (n *captureNode) Send(to proto.NodeID, payload []byte) error {
	n.to = append(n.to, to)
	n.sent = append(n.sent, payload)
	return nil
}
func (n *captureNode) Recv() <-chan Message { return nil }
func (n *captureNode) Close() error         { return nil }

// frameCaptureNode records sends arriving on the pooled-frame path and
// releases every frame it is handed, keeping the framecheck ledger balanced.
type frameCaptureNode struct {
	captureNode
	frames atomic.Uint64
}

func (n *frameCaptureNode) SendFrame(to proto.NodeID, f *Frame) error {
	n.frames.Add(1)
	cp := make([]byte, len(f.Buf))
	copy(cp, f.Buf)
	f.Release()
	return n.Send(to, cp)
}

// fixedTuner pins the effective window, recording observations.
type fixedTuner struct {
	window   time.Duration
	observed atomic.Uint64 // frames observed
	msgs     atomic.Uint64
}

func (t *fixedTuner) Window() time.Duration { return t.window }
func (t *fixedTuner) Observe(_ time.Time, msgs int, _ time.Duration) {
	t.observed.Add(1)
	t.msgs.Add(uint64(msgs))
}

func msg(b byte) []byte { return proto.MarshalHeartbeat(proto.GroupID(b)) }

// TestBatcherWindowZeroFlushesImmediately: the zero-options batcher must keep
// the legacy contract — every Flush ships everything, nothing is held.
func TestBatcherWindowZeroFlushesImmediately(t *testing.T) {
	n := &captureNode{}
	b := NewBatcherWith(n, 1, BatcherOptions{Window: 0})
	b.Add(7, msg(1))
	b.Add(7, msg(2))
	b.Flush()
	if len(n.sent) != 1 {
		t.Fatalf("sent %d frames, want 1 coalesced envelope", len(n.sent))
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after flush, want 0", b.Pending())
	}
	// And a second message in a later round ships on its round's flush too.
	b.Add(7, msg(3))
	b.Flush()
	if len(n.sent) != 2 {
		t.Fatalf("sent %d frames after second round, want 2", len(n.sent))
	}
}

// TestBatcherMaxBatchOneDegeneratesToUnbatched: with MaxBatch=1 every Add
// ships a bare frame immediately, byte-identical to the unbatched wire.
func TestBatcherMaxBatchOneDegeneratesToUnbatched(t *testing.T) {
	n := &captureNode{}
	b := NewBatcherWith(n, 3, BatcherOptions{MaxBatch: 1})
	payloads := [][]byte{msg(3), msg(3), msg(3)}
	for _, p := range payloads {
		b.Add(9, p)
	}
	// Everything already shipped from Add; Flush must be a no-op.
	if len(n.sent) != len(payloads) {
		t.Fatalf("sent %d frames before Flush, want %d (ship-on-Add)", len(n.sent), len(payloads))
	}
	b.Flush()
	if len(n.sent) != len(payloads) {
		t.Fatalf("Flush shipped extra frames: %d", len(n.sent))
	}
	for i, p := range payloads {
		if !bytes.Equal(n.sent[i], p) {
			t.Fatalf("frame %d = %x, want the bare message %x (no envelope)", i, n.sent[i], p)
		}
	}
}

// TestBatcherMaxBatchCapsEnvelope: the cap ships a full envelope from Add
// and the remainder on Flush.
func TestBatcherMaxBatchCapsEnvelope(t *testing.T) {
	n := &captureNode{}
	b := NewBatcherWith(n, 1, BatcherOptions{MaxBatch: 2})
	for i := 0; i < 5; i++ {
		b.Add(4, msg(1))
	}
	if len(n.sent) != 2 {
		t.Fatalf("sent %d envelopes from Add, want 2 (two full batches of 2)", len(n.sent))
	}
	b.Flush()
	if len(n.sent) != 3 {
		t.Fatalf("sent %d total, want 3 (2 capped + 1 remainder)", len(n.sent))
	}
	s := b.Stats()
	if s.Frames != 3 || s.Msgs != 5 {
		t.Fatalf("Stats = %+v, want Frames=3 Msgs=5", s)
	}
}

// TestBatcherWindowHoldsAcrossFlush: with an open window a young envelope
// survives Flush and ships once the hold expires or on Close.
func TestBatcherWindowHoldsAcrossFlush(t *testing.T) {
	n := &captureNode{}
	b := NewBatcherWith(n, 1, BatcherOptions{Window: time.Hour})
	b.Add(2, msg(1))
	b.Flush()
	if len(n.sent) != 0 {
		t.Fatal("held envelope shipped before its window expired")
	}
	if b.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 held message", b.Pending())
	}
	b.Add(2, msg(2)) // joins the held envelope
	b.Add(5, msg(3)) // second destination, also held
	b.Flush()
	if len(n.sent) != 0 || b.Pending() != 3 {
		t.Fatalf("sent=%d pending=%d, want all 3 still held", len(n.sent), b.Pending())
	}
	b.Close()
	if len(n.sent) != 2 {
		t.Fatalf("Close shipped %d frames, want 2 (one per destination)", len(n.sent))
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after Close, want 0", b.Pending())
	}
	if s := b.Stats(); s.Msgs != 3 {
		t.Fatalf("Stats.Msgs = %d, want 3", s.Msgs)
	}
}

// TestBatcherWindowExpiryShips: a held envelope ships on the first Flush
// after its oldest message is Window old.
func TestBatcherWindowExpiryShips(t *testing.T) {
	n := &captureNode{}
	b := NewBatcherWith(n, 1, BatcherOptions{Window: 5 * time.Millisecond})
	b.Add(2, msg(1))
	b.Flush()
	if len(n.sent) != 0 {
		t.Fatal("shipped before expiry")
	}
	time.Sleep(10 * time.Millisecond)
	b.Flush()
	if len(n.sent) != 1 {
		t.Fatalf("sent %d after expiry flush, want 1", len(n.sent))
	}
}

// TestBatcherTunerDrivesWindowAndSeesShips: the tuner's Window gates holds
// and every shipped frame is observed, on the pooled-frame path.
func TestBatcherTunerDrivesWindowAndSeesShips(t *testing.T) {
	n := &frameCaptureNode{}
	tn := &fixedTuner{window: time.Hour}
	b := NewBatcherWith(n, 1, BatcherOptions{Tuner: tn})
	b.Add(2, msg(1))
	b.Flush()
	if len(n.sent) != 0 {
		t.Fatal("tuner window open: envelope should have been held")
	}
	if got := b.Stats().Window; got != time.Hour {
		t.Fatalf("Stats.Window = %v, want the tuner's %v", got, time.Hour)
	}
	tn.window = 0 // tuner decides: latency floor
	b.Flush()
	if len(n.sent) != 1 {
		t.Fatalf("sent %d after tuner closed the window, want 1", len(n.sent))
	}
	if n.frames.Load() != 1 {
		t.Fatalf("pooled-frame sends = %d, want 1", n.frames.Load())
	}
	if tn.observed.Load() != 1 || tn.msgs.Load() != 1 {
		t.Fatalf("tuner observed frames=%d msgs=%d, want 1/1", tn.observed.Load(), tn.msgs.Load())
	}
}

// readReplyFrame encodes a reply the way the replica's read fast path does
// (core.Server.handleRead → sendReply → AppendReply), so these tests exercise
// the exact frames the batcher holds on the read path.
func readReplyFrame(pos uint64) []byte {
	return proto.AppendReply(nil, proto.Reply{
		Req:    proto.RequestID{Group: 1, Client: -7, Seq: pos},
		From:   0,
		Epoch:  0,
		Weight: proto.WeightOf(0),
		Pos:    pos,
		Result: []byte("1"),
	})
}

// TestBatcherReadReplyNeverHeldPastMaxWindow pins the read-latency contract
// of the AutoTune batcher: a read reply may be held by an open window, but
// never longer than the tuner's ceiling (tune.Config.MaxWindow) measured from
// the OLDEST buffered message. The regression this guards: re-stamping the
// hold clock on later Adds would let a trickle of read replies postpone the
// envelope indefinitely, turning the "bounded hold" into an unbounded one and
// destroying the read fast path's latency edge (E13's read p50 ≤ write p50).
func TestBatcherReadReplyNeverHeldPastMaxWindow(t *testing.T) {
	const window = 25 * time.Millisecond // stands in for the tuner's MaxWindow ceiling
	n := &captureNode{}
	tn := &fixedTuner{window: window}
	b := NewBatcherWith(n, 1, BatcherOptions{Tuner: tn})

	b.Add(2, readReplyFrame(1))
	b.Flush()
	if len(n.sent) != 0 {
		t.Fatal("read reply shipped before the window expired (hold layer inactive)")
	}

	// A second reply arrives just as the first's hold expires. The window is
	// measured from the oldest message: the young reply must NOT reset the
	// clock, so this Flush ships both.
	time.Sleep(window + window/2)
	b.Add(2, readReplyFrame(2))
	b.Flush()
	if len(n.sent) != 1 {
		t.Fatalf("sent %d frames, want 1: a fresh Add re-stamped the hold clock and kept the expired reply buffered", len(n.sent))
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after the expiry flush, want 0", b.Pending())
	}
	if s := b.Stats(); s.Msgs != 2 {
		t.Fatalf("Stats.Msgs = %d, want both replies in the shipped envelope", s.Msgs)
	}
}

// TestBatcherReadReplyWindowExtremes drives the tuner to both ends of its
// control range. At the latency floor (window 0) a read reply ships on the
// round's own Flush, byte-identical to the unbatched wire; at an effectively
// infinite window the reply still cannot be held past the envelope cap — a
// full envelope ships from Add itself — and Close drains whatever remains.
func TestBatcherReadReplyWindowExtremes(t *testing.T) {
	// Floor: the tuner decided pure latency mode.
	n := &captureNode{}
	tn := &fixedTuner{window: 0}
	b := NewBatcherWith(n, 1, BatcherOptions{Tuner: tn})
	frame := readReplyFrame(1)
	b.Add(2, frame)
	b.Flush()
	if len(n.sent) != 1 {
		t.Fatalf("sent %d at the latency floor, want the reply shipped on its own round's flush", len(n.sent))
	}
	if !bytes.Equal(n.sent[0], frame) {
		t.Fatalf("single read reply shipped as %x, want the bare unbatched frame %x", n.sent[0], frame)
	}

	// Ceiling stuck open: even a window that never expires cannot hold a
	// reply once the envelope is full, and Close drains the rest.
	n2 := &captureNode{}
	b2 := NewBatcherWith(n2, 1, BatcherOptions{Tuner: &fixedTuner{window: time.Hour}, MaxBatch: 4})
	for pos := uint64(1); pos <= 5; pos++ {
		b2.Add(2, readReplyFrame(pos))
	}
	if len(n2.sent) != 1 {
		t.Fatalf("sent %d under an open window, want 1 full envelope shipped from Add at MaxBatch", len(n2.sent))
	}
	b2.Flush()
	if len(n2.sent) != 1 || b2.Pending() != 1 {
		t.Fatalf("sent=%d pending=%d: the young remainder should still be held", len(n2.sent), b2.Pending())
	}
	b2.Close()
	if len(n2.sent) != 2 || b2.Pending() != 0 {
		t.Fatalf("sent=%d pending=%d after Close, want everything drained", len(n2.sent), b2.Pending())
	}
}

// TestBatcherCloseReleasesEveryQueuedFrame pushes pooled frames through a
// held batcher and closes it: with the framecheck tag on (make framecheck)
// an unbalanced GetFrame/Release panics, so simply completing is the assert.
func TestBatcherCloseReleasesEveryQueuedFrame(t *testing.T) {
	n := &frameCaptureNode{}
	b := NewBatcherWith(n, 1, BatcherOptions{Window: time.Hour})
	for i := 0; i < 100; i++ {
		// Encode into a pooled frame like the replica send path does, hand
		// the aliasing slice to Add (which copies), and release our frame.
		f := GetFrame()
		f.Buf = append(f.Buf, msg(byte(i))...)
		b.Add(proto.NodeID(i%4), f.Buf)
		f.Release()
	}
	if b.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100 held", b.Pending())
	}
	b.Close()
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after Close, want 0", b.Pending())
	}
	if got := n.frames.Load(); got != 4 {
		t.Fatalf("Close shipped %d frames, want 4 (one per destination)", got)
	}
	if s := b.Stats(); s.Msgs != 100 {
		t.Fatalf("Stats.Msgs = %d, want 100", s.Msgs)
	}
}
