package transport

import (
	"sync"
	"testing"
	"time"
)

func TestRingFIFOAndCapacity(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop succeeded on an empty ring")
	}
}

func TestRingSizeRoundsUpToPowerOfTwo(t *testing.T) {
	if got := NewRing[int](5).Cap(); got != 8 {
		t.Fatalf("Cap(5) = %d, want 8", got)
	}
	if got := NewRing[int](0).Cap(); got != 256 {
		t.Fatalf("Cap(0) = %d, want the 256 default", got)
	}
}

func TestRingCloseDrainsBufferedItems(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 3; i++ {
		r.TryPush(i)
	}
	r.Close()
	if r.TryPush(42) {
		t.Fatal("TryPush succeeded after Close")
	}
	if r.Push(42) {
		t.Fatal("Push succeeded after Close")
	}
	// Everything enqueued before Close must still pop, in order.
	for i := 0; i < 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop after close = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop reported an item on a closed empty ring")
	}
}

func TestRingPopUnblocksOnClose(t *testing.T) {
	r := NewRing[int](8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.Pop(); ok {
			t.Error("Pop returned an item from an empty closed ring")
		}
	}()
	r.Close()
	<-done
}

func TestRingPushUnblocksOnClose(t *testing.T) {
	r := NewRing[int](1)
	r.TryPush(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if r.Push(1) {
			t.Error("Push into a full ring succeeded after Close")
		}
	}()
	r.Close()
	<-done
}

// TestRingSPSCStress hammers one producer against one consumer through a
// deliberately tiny ring so both the full-spin/park and empty-spin/park
// paths run many times. Under -race this is the memory-model check: every
// popped value must arrive intact and in order.
func TestRingSPSCStress(t *testing.T) {
	const total = 200_000
	r := NewRing[int](4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if !r.Push(i) {
				t.Error("Push failed mid-stream")
				return
			}
		}
		r.Close()
	}()
	for i := 0; ; i++ {
		v, ok := r.Pop()
		if !ok {
			if i != total {
				t.Fatalf("consumer saw %d items, want %d", i, total)
			}
			break
		}
		if v != i {
			t.Fatalf("out of order: got %d at position %d", v, i)
		}
	}
	wg.Wait()
}

// TestRingParkFlagIsolation is the lost-wakeup regression test for the
// parking flags: through a capacity-1 ring both sides alternate between full
// and empty, so producer and consumer park constantly and often in quick
// succession. With a single shared waiting flag, a producer leaving park
// right after the consumer parked would clear the consumer's wakeup claim,
// every later wake() would skip its broadcast, and both sides would sleep
// forever. The per-side flags make that impossible; the watchdog turns a
// regression into a fast failure instead of a hung suite.
func TestRingParkFlagIsolation(t *testing.T) {
	const total = 100_000
	r := NewRing[int](1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total; i++ {
				if !r.Push(i) {
					t.Error("Push failed mid-stream")
					return
				}
			}
			r.Close()
		}()
		for i := 0; ; i++ {
			v, ok := r.Pop()
			if !ok {
				if i != total {
					t.Errorf("consumer saw %d items, want %d", i, total)
				}
				break
			}
			if v != i {
				t.Errorf("out of order: got %d at position %d", v, i)
				break
			}
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ring deadlocked: both stages parked with no wakeup pending")
	}
}

// TestRingCarriesFrames moves pooled frames producer→consumer: the consumer
// releases every frame it pops, and slots are zeroed behind it, so under the
// framecheck build tag every GetFrame is balanced by exactly one Release.
func TestRingCarriesFrames(t *testing.T) {
	const total = 1000
	r := NewRing[*Frame](8)
	done := make(chan int)
	go func() {
		n := 0
		for {
			f, ok := r.Pop()
			if !ok {
				done <- n
				return
			}
			n += len(f.Buf)
			f.Release()
		}
	}()
	for i := 0; i < total; i++ {
		f := GetFrame()
		f.Buf = append(f.Buf, byte(i))
		//oar:frame-handoff — consumer goroutine releases after Pop.
		if !r.Push(f) {
			t.Fatal("Push failed")
		}
	}
	r.Close()
	if n := <-done; n != total {
		t.Fatalf("consumer saw %d bytes, want %d", n, total)
	}
}
