// Package transport defines the point-to-point messaging abstraction used by
// every protocol in this repository, matching the system model of Section 3
// of the paper: processes communicate over reliable FIFO channels via the two
// primitives send and receive.
//
// Two implementations exist: memnet (in-process, with configurable latency,
// partitions and fault injection — used by tests, examples and benchmarks)
// and tcpnet (real TCP, used by the cmd/ tools).
package transport

import (
	"errors"
	"sync"

	"repro/internal/proto"
)

// ErrClosed is returned by Send after the node or network has been closed.
var ErrClosed = errors.New("transport: closed")

// ErrCrashed is returned by Send on a node that has been crashed by fault
// injection.
var ErrCrashed = errors.New("transport: node crashed")

// Message is a payload delivered to a node, tagged with its sender.
type Message struct {
	From    proto.NodeID
	Payload []byte
}

// Node is one process's endpoint. Send is asynchronous, non-blocking and
// reliable FIFO per destination: two messages sent to the same destination
// are delivered in send order. Implementations must make Send safe for
// concurrent use.
type Node interface {
	// ID returns this node's process identifier.
	ID() proto.NodeID
	// Send enqueues payload for delivery to the destination. It never blocks
	// on the receiver.
	Send(to proto.NodeID, payload []byte) error
	// Recv returns the channel of inbound messages. The channel is closed
	// when the node is closed or crashed.
	Recv() <-chan Message
	// Close releases the node's resources.
	Close() error
}

// SendBatch delivers several kind-tagged payloads to one destination as a
// single frame: one payload is sent as-is, several are coalesced into a
// proto.Batch envelope of group g (one syscall on tcpnet, one link hop on
// memnet). The receiver unwraps the envelope with ExpandBatch, preserving
// order.
func SendBatch(n Node, g proto.GroupID, to proto.NodeID, payloads [][]byte) error {
	switch len(payloads) {
	case 0:
		return nil
	case 1:
		return n.Send(to, payloads[0])
	default:
		return n.Send(to, proto.MarshalBatch(g, payloads))
	}
}

// ExpandBatch splits a received message into its inner messages if it is a
// proto.Batch envelope, preserving the sender and the inner order. Non-batch
// messages (and malformed batches, which are dropped like any other garbage)
// are returned unchanged as a single-element slice with ok=false.
//
// Expansion is single-level by construction: proto.UnmarshalBatch rejects
// envelopes that contain a nested batch, so an adversarial
// batch-inside-a-batch payload is a decode error (dropped wholesale) rather
// than a recursion. The inner filter here is defense in depth — should a
// nested envelope ever slip through a future decoder change, it is discarded
// instead of being handed back to a dispatcher that might expand it again.
func ExpandBatch(m Message) (msgs []Message, ok bool) {
	kind, _, body, err := proto.Unmarshal(m.Payload)
	if err != nil || kind != proto.KindBatch {
		return []Message{m}, false
	}
	batch, err := proto.UnmarshalBatch(body)
	if err != nil {
		return nil, true // corrupt (or nested) batch: drop it wholesale
	}
	out := make([]Message, 0, len(batch.Msgs))
	for _, inner := range batch.Msgs {
		if proto.Kind(inner[0]) == proto.KindBatch {
			continue // never re-expandable: flatten by discarding
		}
		out = append(out, Message{From: m.From, Payload: inner})
	}
	return out, true
}

// Queue is an unbounded FIFO of messages feeding an output channel. It
// decouples senders from receivers so that an event-loop process can never
// deadlock by sending while its own inbox is full. Close is idempotent.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool

	out    chan Message
	notify chan struct{} // closed by Close; unblocks the pump's send
	done   chan struct{} // pump goroutine exited
}

// outBuffer is the capacity of a queue's delivery channel. A buffered
// channel lets the pump stay ahead of the consumer, so an event loop that
// drains its inbox opportunistically (the batching path in core.Server.Run)
// actually observes the backlog instead of one message per goroutine switch.
const outBuffer = 256

// NewQueue creates a queue and starts its delivery pump.
func NewQueue() *Queue {
	q := &Queue{
		out:    make(chan Message, outBuffer),
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	go q.pump()
	return q
}

// Push enqueues m. Pushes after Close are dropped.
func (q *Queue) Push(m Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, m)
	q.cond.Signal()
}

// Out returns the delivery channel. It is closed after Close once the pump
// has stopped; messages not yet consumed are discarded.
func (q *Queue) Out() <-chan Message { return q.out }

// Len returns the number of queued (not yet delivered) messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops the queue. Messages not yet handed to the consumer are
// discarded. Close is idempotent and blocks until the pump has exited.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.notify)
		q.cond.Signal()
	}
	q.mu.Unlock()
	<-q.done
}

func (q *Queue) pump() {
	defer close(q.done)
	defer close(q.out)
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		m := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()

		select {
		case q.out <- m:
		case <-q.notify:
			return
		}
	}
}
