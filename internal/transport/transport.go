// Package transport defines the point-to-point messaging abstraction used by
// every protocol in this repository, matching the system model of Section 3
// of the paper: processes communicate over reliable FIFO channels via the two
// primitives send and receive.
//
// Two implementations exist: memnet (in-process, with configurable latency,
// partitions and fault injection — used by tests, examples and benchmarks)
// and tcpnet (real TCP, used by the cmd/ tools).
package transport

import (
	"errors"
	"sync"

	"repro/internal/proto"
)

// ErrClosed is returned by Send after the node or network has been closed.
var ErrClosed = errors.New("transport: closed")

// ErrCrashed is returned by Send on a node that has been crashed by fault
// injection.
var ErrCrashed = errors.New("transport: node crashed")

// Frame is a uniquely-owned, poolable payload buffer. The steady-state frame
// path recycles Frames instead of allocating: a sender takes one with
// GetFrame, fills Buf, and hands it to a FrameSender; whoever observes the
// frame last — the transport after writing it to a socket, the receiving
// event loop after handling the delivered message — calls Release to return
// it to the pool.
//
// Ownership rule: a Frame has exactly one owner at a time, and Release may
// be called exactly once per GetFrame. After Release the buffer will be
// overwritten by an unrelated message; any data that must outlive it (a
// request body kept in a payloads map, an adopted reply's result) must be
// copied out first — see the Clone methods on proto.Request, proto.Reply and
// proto.SeqOrder.
type Frame struct {
	Buf []byte

	// dbg is empty (and the hooks below free) unless the framecheck build
	// tag is on, in which case double releases panic with the acquisition
	// stack. See framecheck_on.go.
	dbg frameDebug
}

// frameMaxIdle caps the capacity a pooled frame may retain, so one
// exceptional burst does not pin memory in the pool forever.
const frameMaxIdle = 64 << 10

var framePool = sync.Pool{New: func() any { return &Frame{} }}

// GetFrame takes an empty frame from the shared pool.
func GetFrame() *Frame {
	f := framePool.Get().(*Frame)
	f.Buf = f.Buf[:0]
	f.dbg.noteGet()
	return f
}

// Release returns f to the pool. Exactly one Release per GetFrame; the
// caller must not touch f.Buf (or anything aliasing it) afterwards.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	f.dbg.noteRelease()
	if cap(f.Buf) > frameMaxIdle {
		return // ownership still ends here; the frame just isn't pooled
	}
	framePool.Put(f)
}

// Message is a payload delivered to a node, tagged with its sender. If the
// payload rides a pooled Frame, the frame travels with the message and the
// receiver recycles it by calling Release once the message (and everything
// decoded zero-copy from it) is no longer needed.
type Message struct {
	From    proto.NodeID
	Payload []byte

	frame *Frame // pooled backing buffer; nil for unpooled payloads
}

// OwnedMessage builds a Message whose payload rides the pooled frame f.
// payload must alias f.Buf (it is usually f.Buf itself, but may be a
// sub-slice — e.g. the single survivor of a filtered envelope). The message
// takes over the frame's single ownership: the receiver's Release recycles
// it.
func OwnedMessage(from proto.NodeID, payload []byte, f *Frame) Message {
	//oar:frame-handoff released by the receiver's Message.Release, once per delivery
	return Message{From: from, Payload: payload, frame: f}
}

// Release recycles the message's pooled backing frame, if any. Receivers
// call it once per delivered message, after the message — including every
// slice decoded zero-copy from its payload — is done with. Releasing an
// unpooled message is a no-op, so event loops release unconditionally.
func (m Message) Release() {
	if m.frame != nil {
		m.frame.Release()
	}
}

// Node is one process's endpoint. Send is asynchronous, non-blocking and
// reliable FIFO per destination: two messages sent to the same destination
// are delivered in send order. Implementations must make Send safe for
// concurrent use.
//
// Send borrows payload: the transport may queue and share the very slice it
// was given, so the caller must not mutate it afterwards (it may still hold
// and resend it — heartbeat frames do). The zero-allocation path transfers
// ownership instead: see FrameSender.
type Node interface {
	// ID returns this node's process identifier.
	ID() proto.NodeID
	// Send enqueues payload for delivery to the destination. It never blocks
	// on the receiver.
	Send(to proto.NodeID, payload []byte) error
	// Recv returns the channel of inbound messages. The channel is closed
	// when the node is closed or crashed.
	Recv() <-chan Message
	// Close releases the node's resources.
	Close() error
}

// FrameSender is the optional zero-allocation send capability of a
// transport. SendFrame transfers ownership of a pooled frame obtained from
// GetFrame: the transport (or the final in-process receiver it delivers to)
// releases it, and the caller must not touch the frame after the call —
// succeed or fail. Same delivery semantics as Send otherwise.
// transport.Batcher uses this automatically when the node provides it.
type FrameSender interface {
	SendFrame(to proto.NodeID, f *Frame) error
}

// SendBatch delivers several kind-tagged payloads to one destination as a
// single frame: one payload is sent as-is, several are coalesced into a
// proto.Batch envelope of group g (one syscall on tcpnet, one link hop on
// memnet). The receiver unwraps the envelope with ExpandBatch, preserving
// order.
func SendBatch(n Node, g proto.GroupID, to proto.NodeID, payloads [][]byte) error {
	switch len(payloads) {
	case 0:
		return nil
	case 1:
		return n.Send(to, payloads[0])
	default:
		return n.Send(to, proto.MarshalBatch(g, payloads))
	}
}

// ExpandBatch splits a received message into its inner messages if it is a
// proto.Batch envelope, preserving the sender and the inner order. Non-batch
// messages (and malformed batches, which are dropped like any other garbage)
// are returned unchanged as a single-element slice with ok=false.
//
// Expansion is single-level by construction: proto.UnmarshalBatch rejects
// envelopes that contain a nested batch, so an adversarial
// batch-inside-a-batch payload is a decode error (dropped wholesale) rather
// than a recursion. The inner filter here is defense in depth — should a
// nested envelope ever slip through a future decoder change, it is discarded
// instead of being handed back to a dispatcher that might expand it again.
func ExpandBatch(m Message) (msgs []Message, ok bool) {
	kind, _, body, err := proto.Unmarshal(m.Payload)
	if err != nil || kind != proto.KindBatch {
		//oar:frame-handoff ownership returns to the caller inside the result slice
		return []Message{m}, false
	}
	batch, err := proto.UnmarshalBatch(body)
	if err != nil {
		return nil, true // corrupt (or nested) batch: drop it wholesale
	}
	out := make([]Message, 0, len(batch.Msgs))
	for _, inner := range batch.Msgs {
		if proto.Kind(inner[0]) == proto.KindBatch {
			continue // never re-expandable: flatten by discarding
		}
		out = append(out, Message{From: m.From, Payload: inner})
	}
	return out, true
}

// Queue is an unbounded FIFO of messages feeding an output channel. It
// decouples senders from receivers so that an event-loop process can never
// deadlock by sending while its own inbox is full. Close is idempotent.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool

	out    chan Message
	notify chan struct{} // closed by Close; unblocks the pump's send
	done   chan struct{} // pump goroutine exited
}

// outBuffer is the capacity of a queue's delivery channel. A buffered
// channel lets the pump stay ahead of the consumer, so an event loop that
// drains its inbox opportunistically (the batching path in core.Server.Run)
// actually observes the backlog instead of one message per goroutine switch.
const outBuffer = 256

// NewQueue creates a queue and starts its delivery pump.
func NewQueue() *Queue {
	q := &Queue{
		out:    make(chan Message, outBuffer),
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	go q.pump()
	return q
}

// Push enqueues m. Pushes after Close are dropped (releasing any pooled
// frame the message rides).
func (q *Queue) Push(m Message) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		m.Release()
		return
	}
	q.items = append(q.items, m) //oar:frame-handoff released by the consumer after delivery, or by pump's discard path on Close
	q.cond.Signal()
	q.mu.Unlock()
}

// Out returns the delivery channel. It is closed after Close once the pump
// has stopped; messages not yet consumed are discarded.
func (q *Queue) Out() <-chan Message { return q.out }

// Len returns the number of queued (not yet delivered) messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops the queue. Messages not yet handed to the consumer are
// discarded. Close is idempotent and blocks until the pump has exited.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.notify)
		q.cond.Signal()
	}
	q.mu.Unlock()
	<-q.done
}

func (q *Queue) pump() {
	defer close(q.done)
	defer close(q.out)
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			// Discard (and recycle) whatever the consumer never saw.
			items := q.items
			q.items = nil
			q.mu.Unlock()
			for _, m := range items {
				m.Release()
			}
			return
		}
		m := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()

		select {
		case q.out <- m: //oar:frame-handoff released by the consumer reading Out()
		case <-q.notify:
			m.Release()
			q.mu.Lock()
			items := q.items
			q.items = nil
			q.mu.Unlock()
			for _, im := range items {
				im.Release()
			}
			return
		}
	}
}
