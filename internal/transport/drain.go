package transport

import "runtime"

// DrainLinger forms one batching round over ch: it opportunistically absorbs
// the backlog that has already arrived into handle, lingering up to spins
// consecutive empty-channel scheduler yields — companion messages of the
// round (relayed copies, the other replicas' traffic, a concurrent Invoke's
// frames) are frequently in flight on runnable goroutines, and yielding lets
// them join the round, making every coalesced outbound frame
// correspondingly larger. An idle channel pays only the yields; a flooded
// one stops at maxAbsorb messages so the caller's flush always runs and the
// backlog stays hot.
//
// It reports how many messages were absorbed and whether the channel is
// still open (a closed channel ends the round immediately — for a replica
// inbox that is crash injection, and the caller's event loop should exit).
// spins <= 0 disables round formation entirely: the unbatched experiment
// control handles one message per round.
//
// Every event loop in the repository — the OAR server and client, both
// baseline replicas, and the first-reply client's sender — forms its rounds
// through this one function, so "a round" means the same thing in every
// backend.
func DrainLinger[T any](ch <-chan T, spins, maxAbsorb int, handle func(T)) (absorbed int, open bool) {
	for s := 0; s < spins; s++ {
	drain:
		for absorbed < maxAbsorb {
			select {
			case m, ok := <-ch:
				if !ok {
					return absorbed, false
				}
				handle(m)
				absorbed++
				s = -1 // progress: restart the linger
			default:
				break drain
			}
		}
		if absorbed >= maxAbsorb {
			break // round full: flush now
		}
		runtime.Gosched()
	}
	return absorbed, true
}
