package transport

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/tune"
)

// sinkFrameNode is the cheapest possible FrameSender: it recycles every
// frame on the spot, so benchmarks measure only the batcher's own work.
type sinkFrameNode struct{}

func (sinkFrameNode) ID() proto.NodeID                { return 0 }
func (sinkFrameNode) Send(proto.NodeID, []byte) error { return nil }
func (sinkFrameNode) Recv() <-chan Message            { return nil }
func (sinkFrameNode) Close() error                    { return nil }
func (sinkFrameNode) SendFrame(_ proto.NodeID, f *Frame) error {
	f.Release()
	return nil
}

// BenchmarkHotPathAllocs asserts the transport-layer hot paths allocate
// nothing in steady state — the batcher's Add/Flush round (plain and with
// the AutoTune controller observing every ship), the SPSC ring hand-off the
// pipelined replica loop rides on, and the tuner's observation path itself.
// Any regression fails the benchmark run, so CI executes it with
// -benchtime=1x as a gate.
func BenchmarkHotPathAllocs(b *testing.B) {
	payload := proto.MarshalHeartbeat(1)

	plain := NewBatcher(sinkFrameNode{}, 1)
	tuned := NewBatcherWith(sinkFrameNode{}, 1, BatcherOptions{
		Tuner:    tune.New(tune.Config{}),
		MaxBatch: 512,
	})
	ring := NewRing[Message](8)
	ctl := tune.New(tune.Config{})
	now := time.Now()

	cases := []struct {
		name string
		op   func()
	}{
		{"batcher add+flush", func() {
			for i := 0; i < 4; i++ {
				plain.Add(proto.NodeID(i%2), payload)
			}
			plain.Flush()
		}},
		{"batcher add+flush autotune", func() {
			for i := 0; i < 4; i++ {
				tuned.Add(proto.NodeID(i%2), payload)
			}
			tuned.Flush()
		}},
		{"ring push+pop", func() {
			ring.TryPush(Message{From: 1, Payload: payload})
			m, _ := ring.TryPop()
			m.Release()
		}},
		{"tuner observe", func() {
			now = now.Add(50 * time.Microsecond)
			ctl.Observe(now, 4, 10*time.Microsecond)
		}},
	}

	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tc.op() // warm pools and grow reusable buffers once
			if allocs := testing.AllocsPerRun(100, tc.op); allocs != 0 {
				b.Fatalf("%s: %v allocs/op, want 0", tc.name, allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.op()
			}
		})
	}
}
