package transport

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"repro/internal/proto"
)

// WindowTuner is a closed-loop controller for the Batcher's hold window.
// Window is the current control output; Observe feeds the controller one
// shipped frame (how many messages it coalesced and how long its oldest
// message was held). The Batcher calls Observe from its owning goroutine;
// Window may be read by the same call, so implementations must make both
// cheap and Window safe for concurrent readers. internal/tune.Controller is
// the production implementation.
type WindowTuner interface {
	Window() time.Duration
	Observe(now time.Time, msgs int, hold time.Duration)
}

// BatcherOptions tune a Batcher beyond the per-round coalescing default.
// The zero value is the legacy behaviour: every Flush ships everything.
type BatcherOptions struct {
	// Window, when positive, holds a destination's envelope across Flush
	// calls until its oldest message is Window old (or MaxBatch is reached).
	// The owner must keep calling Flush periodically (a tick, or a timer)
	// for held envelopes to drain. Zero means Flush always ships.
	Window time.Duration
	// MaxBatch, when positive, caps messages per envelope: a destination
	// reaching it ships immediately from Add, without waiting for Flush.
	// MaxBatch=1 degenerates to the unbatched wire (every message ships as
	// a bare frame the moment it is added). When a hold is configured
	// (Window or Tuner) and MaxBatch is zero, DefaultMaxBatch applies so a
	// held envelope cannot grow past the transport frame limit; negative
	// disables the cap explicitly.
	MaxBatch int
	// Tuner, when non-nil, overrides Window with a closed-loop controller:
	// the effective window is Tuner.Window() at each Flush, and every
	// shipped frame is reported back through Tuner.Observe.
	Tuner WindowTuner
}

// sendBuf accumulates one destination's outbound messages as a proto.Batch
// envelope under construction: [KindBatch][group][len][msg][len][msg]... The
// buffer is reused across flushes.
type sendBuf struct {
	buf      []byte
	count    int
	queued   bool      // present in Batcher.order
	firstAdd time.Time // when the oldest buffered message was added (timed mode)
}

// sendBufMaxIdle caps the capacity a reusable send buffer may retain after a
// flush, so one exceptional burst does not pin memory forever.
const sendBufMaxIdle = 64 << 10

// DefaultMaxBatch is the envelope cap a holding batcher (Window or Tuner set)
// falls back to when the owner left MaxBatch at zero. A hold bounds an
// envelope only in time, not in size, so without a cap a saturated sender
// could grow one past the transport frame limit (tcpnet rejects such frames
// whole, silently dropping every coalesced message in them). Matches the OAR
// server's default ordering batch size.
const DefaultMaxBatch = 512

// Batcher coalesces the sends of one batching round per destination, tagging
// every envelope with the owning ordering group. Every protocol's hot path —
// the OAR server and client loops as well as the baseline replicas and the
// first-reply client — funnels its sends through one of these, so all
// backends are measured under the same transport. A Batcher is owned by a
// single goroutine (a replica event loop, or a client's sender loop). FIFO
// per destination is preserved because frames are appended in send order and
// rounds never interleave.
//
// With BatcherOptions a Batcher can also hold envelopes across rounds (a
// static Window or a closed-loop WindowTuner) and cap envelope size
// (MaxBatch). An owner using a window must call Flush on a timer or tick so
// held envelopes drain, and Close when shutting down so nothing queued is
// dropped.
//
// Allocation discipline: Add copies the frame into the destination's reusable
// envelope buffer, so callers may encode into a scratch buffer and hand the
// aliasing slice straight in. Flush ships each envelope as a pooled Frame
// when the node supports FrameSender (the steady-state zero-allocation path)
// and falls back to an owned copy plus plain Send otherwise.
type Batcher struct {
	node   Node
	frames FrameSender // non-nil when node supports the pooled-frame path
	header []byte      // precomputed [KindBatch][group] envelope header
	opts   BatcherOptions
	timed  bool // stamp firstAdd: a window or tuner may hold envelopes
	bufs   map[proto.NodeID]*sendBuf
	order  []proto.NodeID // destinations with buffered sends, in first-send order

	// Lifetime counters for the stats surface; read concurrently.
	framesSent atomic.Uint64
	msgsSent   atomic.Uint64
}

// NewBatcher creates a batcher shipping through node, tagging envelopes with
// the given ordering group. Legacy per-round behaviour: Flush ships all.
func NewBatcher(node Node, group proto.GroupID) *Batcher {
	return NewBatcherWith(node, group, BatcherOptions{})
}

// NewBatcherWith creates a batcher with explicit hold-window / batch-size
// options.
func NewBatcherWith(node Node, group proto.GroupID, opts BatcherOptions) *Batcher {
	if (opts.Window > 0 || opts.Tuner != nil) && opts.MaxBatch == 0 {
		// A hold without a size cap could grow an envelope past the frame
		// limit; see DefaultMaxBatch.
		opts.MaxBatch = DefaultMaxBatch
	}
	b := &Batcher{
		node:   node,
		header: proto.AppendHeader(nil, proto.KindBatch, group),
		opts:   opts,
		timed:  opts.Window > 0 || opts.Tuner != nil,
		bufs:   make(map[proto.NodeID]*sendBuf),
	}
	if fs, ok := node.(FrameSender); ok {
		b.frames = fs
	}
	return b
}

// Add appends one kind-tagged message to to's envelope buffer, copying it —
// frame may alias a scratch buffer the caller reuses immediately after. When
// MaxBatch is set and the envelope reaches it, the envelope ships here.
func (b *Batcher) Add(to proto.NodeID, frame []byte) {
	sb, ok := b.bufs[to]
	if !ok {
		sb = &sendBuf{} // once per destination; the map entry is reused forever
		b.bufs[to] = sb
	}
	if sb.count == 0 {
		sb.buf = append(sb.buf[:0], b.header...)
		if b.timed {
			sb.firstAdd = time.Now()
		}
		if !sb.queued {
			sb.queued = true
			b.order = append(b.order, to)
		}
	}
	sb.buf = binary.AppendUvarint(sb.buf, uint64(len(frame)))
	sb.buf = append(sb.buf, frame...)
	sb.count++
	if b.opts.MaxBatch > 0 && sb.count >= b.opts.MaxBatch {
		var now time.Time
		if b.timed {
			now = time.Now()
		}
		b.ship(sb, to, now)
		// sb stays queued; the next Flush prunes it from order if it gets
		// no further messages.
	}
}

// Flush ships every buffered send whose hold has expired: one owned frame per
// destination — the batch envelope, or the bare inner message when it holds
// just one (so single-message traffic is byte-identical to the unbatched
// wire). With no window (and no tuner, or a tuner currently at the latency
// floor) everything ships; with an open window, a destination whose oldest
// message is younger than the window and whose envelope is under MaxBatch is
// retained for a later Flush. On a FrameSender transport the frame comes from
// (and returns to) the shared frame pool; otherwise it is freshly allocated.
// Send errors mean the network or this node is gone; the caller's receive
// side will observe the closed inbox. Nothing useful to do here.
func (b *Batcher) Flush() {
	b.flush(false)
}

// Close force-ships everything still buffered, ignoring any hold window.
// Owners using a window (or tuner) must call it on shutdown so queued
// messages are not silently dropped.
func (b *Batcher) Close() {
	b.flush(true)
}

func (b *Batcher) flush(force bool) {
	if len(b.order) == 0 {
		return
	}
	w := b.opts.Window
	if b.opts.Tuner != nil {
		w = b.opts.Tuner.Window()
	}
	var now time.Time
	if b.timed {
		now = time.Now()
	}
	kept := b.order[:0]
	for _, to := range b.order {
		sb := b.bufs[to]
		if sb.count == 0 {
			// Shipped from Add when it hit MaxBatch; drop from order.
			sb.queued = false
			continue
		}
		if !force && w > 0 && now.Sub(sb.firstAdd) < w &&
			(b.opts.MaxBatch <= 0 || sb.count < b.opts.MaxBatch) {
			kept = append(kept, to)
			continue
		}
		sb.queued = false
		b.ship(sb, to, now)
	}
	b.order = kept
}

// ship sends one destination's envelope and resets its buffer. now is zero
// when the batcher is untimed (no window, no tuner).
func (b *Batcher) ship(sb *sendBuf, to proto.NodeID, now time.Time) {
	raw := sb.buf
	if sb.count == 1 {
		// Unwrap [KindBatch][group][len][msg] to the bare message.
		skip := len(b.header)
		_, n := binary.Uvarint(raw[skip:])
		raw = raw[skip+n:]
	}
	if b.frames != nil {
		f := GetFrame()
		f.Buf = append(f.Buf, raw...)
		_ = b.frames.SendFrame(to, f)
	} else {
		frame := make([]byte, len(raw))
		copy(frame, raw)
		_ = b.node.Send(to, frame)
	}
	b.framesSent.Add(1)
	b.msgsSent.Add(uint64(sb.count))
	if b.opts.Tuner != nil {
		var hold time.Duration
		if !sb.firstAdd.IsZero() {
			hold = now.Sub(sb.firstAdd)
		}
		b.opts.Tuner.Observe(now, sb.count, hold)
	}
	sb.count = 0
	sb.firstAdd = time.Time{}
	if cap(sb.buf) > sendBufMaxIdle {
		sb.buf = nil
	}
}

// Pending reports how many messages are buffered (held or not yet flushed).
// Owners holding a window use it to arm a drain timer.
func (b *Batcher) Pending() int {
	n := 0
	for _, to := range b.order {
		n += b.bufs[to].count
	}
	return n
}

// BatcherStats is a point-in-time view of a Batcher, for stats surfaces.
// Read concurrently with the owner's Add/Flush.
type BatcherStats struct {
	// Frames counts shipped frames; Msgs counts the messages they carried.
	Frames uint64
	Msgs   uint64
	// Window is the effective hold window right now: the tuner's output
	// when auto-tuning, the static option otherwise.
	Window time.Duration
}

// Stats reads the batcher's counters. Safe from any goroutine.
func (b *Batcher) Stats() BatcherStats {
	s := BatcherStats{
		Frames: b.framesSent.Load(),
		Msgs:   b.msgsSent.Load(),
		Window: b.opts.Window,
	}
	if b.opts.Tuner != nil {
		s.Window = b.opts.Tuner.Window()
	}
	return s
}
