package transport

import (
	"encoding/binary"

	"repro/internal/proto"
)

// sendBuf accumulates one destination's outbound messages as a proto.Batch
// envelope under construction: [KindBatch][group][len][msg][len][msg]... The
// buffer is reused across flushes.
type sendBuf struct {
	buf   []byte
	count int
}

// sendBufMaxIdle caps the capacity a reusable send buffer may retain after a
// flush, so one exceptional burst does not pin memory forever.
const sendBufMaxIdle = 64 << 10

// Batcher coalesces the sends of one batching round per destination, tagging
// every envelope with the owning ordering group. Every protocol's hot path —
// the OAR server and client loops as well as the baseline replicas and the
// first-reply client — funnels its sends through one of these, so all
// backends are measured under the same transport. A Batcher is owned by a
// single goroutine (a replica event loop, or a client's sender loop). FIFO
// per destination is preserved because frames are appended in send order and
// rounds never interleave.
//
// Allocation discipline: Add copies the frame into the destination's reusable
// envelope buffer, so callers may encode into a scratch buffer and hand the
// aliasing slice straight in. Flush ships each envelope as a pooled Frame
// when the node supports FrameSender (the steady-state zero-allocation path)
// and falls back to an owned copy plus plain Send otherwise.
type Batcher struct {
	node   Node
	frames FrameSender // non-nil when node supports the pooled-frame path
	header []byte      // precomputed [KindBatch][group] envelope header
	bufs   map[proto.NodeID]*sendBuf
	order  []proto.NodeID // destinations with buffered sends, in first-send order
}

// NewBatcher creates a batcher shipping through node, tagging envelopes with
// the given ordering group.
func NewBatcher(node Node, group proto.GroupID) *Batcher {
	b := &Batcher{
		node:   node,
		header: proto.AppendHeader(nil, proto.KindBatch, group),
		bufs:   make(map[proto.NodeID]*sendBuf),
	}
	if fs, ok := node.(FrameSender); ok {
		b.frames = fs
	}
	return b
}

// Add appends one kind-tagged message to to's envelope buffer, copying it —
// frame may alias a scratch buffer the caller reuses immediately after.
func (b *Batcher) Add(to proto.NodeID, frame []byte) {
	sb, ok := b.bufs[to]
	if !ok {
		sb = &sendBuf{} // once per destination; the map entry is reused forever
		b.bufs[to] = sb
	}
	if sb.count == 0 {
		b.order = append(b.order, to)
		sb.buf = append(sb.buf[:0], b.header...)
	}
	sb.buf = binary.AppendUvarint(sb.buf, uint64(len(frame)))
	sb.buf = append(sb.buf, frame...)
	sb.count++
}

// Flush ships every buffered send: one owned frame per destination — the
// batch envelope, or the bare inner message when the round produced just one
// (so single-message traffic is byte-identical to the unbatched wire). On a
// FrameSender transport the frame comes from (and returns to) the shared
// frame pool; otherwise it is freshly allocated. Send errors mean the
// network or this node is gone; the caller's receive side will observe the
// closed inbox. Nothing useful to do here.
func (b *Batcher) Flush() {
	for _, to := range b.order {
		sb := b.bufs[to]
		raw := sb.buf
		if sb.count == 1 {
			// Unwrap [KindBatch][group][len][msg] to the bare message.
			skip := len(b.header)
			_, n := binary.Uvarint(raw[skip:])
			raw = raw[skip+n:]
		}
		if b.frames != nil {
			f := GetFrame()
			f.Buf = append(f.Buf, raw...)
			_ = b.frames.SendFrame(to, f)
		} else {
			frame := make([]byte, len(raw))
			copy(frame, raw)
			_ = b.node.Send(to, frame)
		}
		sb.count = 0
		if cap(sb.buf) > sendBufMaxIdle {
			sb.buf = nil
		}
	}
	b.order = b.order[:0]
}
