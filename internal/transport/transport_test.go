package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	defer q.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(Message{From: proto.NodeID(i % 3), Payload: []byte{byte(i), byte(i >> 8)}})
	}
	for i := 0; i < n; i++ {
		m := <-q.Out()
		if m.Payload[0] != byte(i) || m.Payload[1] != byte(i>>8) {
			t.Fatalf("message %d out of order: got %v", i, m.Payload)
		}
	}
}

func TestQueuePushNeverBlocks(t *testing.T) {
	q := NewQueue()
	defer q.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100000; i++ { // nobody consumes; must not block
			q.Push(Message{})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push blocked with no consumer")
	}
	if q.Len() == 0 && func() int { <-q.Out(); return q.Len() }() == 0 {
		// At least one message was buffered; Len is inherently racy with the
		// pump, so we only assert non-blocking behaviour above.
		t.Log("queue drained quickly")
	}
}

func TestQueueCloseIdempotentAndUnblocks(t *testing.T) {
	q := NewQueue()
	q.Push(Message{Payload: []byte("x")})
	q.Close()
	q.Close() // must not panic or deadlock

	// Out must be closed.
	if _, ok := <-q.Out(); ok {
		// The pushed message may or may not have been consumed before Close;
		// but after Close eventually the channel closes.
		if _, ok := <-q.Out(); ok {
			t.Fatal("Out not closed after Close")
		}
	}
	// Pushes after close are dropped, not panicking.
	q.Push(Message{})
}

func TestQueueCloseWhileBlockedOnConsumer(t *testing.T) {
	q := NewQueue()
	q.Push(Message{Payload: []byte("a")})
	// Give the pump time to block on the unconsumed out channel.
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		q.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked while pump blocked on consumer")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue()
	defer q.Close()
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(Message{From: proto.NodeID(p), Payload: []byte{byte(i), byte(i >> 8)}})
			}
		}(p)
	}
	go func() { wg.Wait() }()

	// Per-producer FIFO must hold even with interleaving.
	next := make(map[proto.NodeID]int)
	for i := 0; i < producers*per; i++ {
		m := <-q.Out()
		got := int(m.Payload[0]) | int(m.Payload[1])<<8
		if got != next[m.From] {
			t.Fatalf("producer %v: got %d, want %d", m.From, got, next[m.From])
		}
		next[m.From]++
	}
}
