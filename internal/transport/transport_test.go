package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/wire"
)

func TestExpandBatchPassesNonBatchThrough(t *testing.T) {
	m := Message{From: 1, Payload: proto.MarshalHeartbeat(0)}
	msgs, ok := ExpandBatch(m)
	if ok || len(msgs) != 1 || &msgs[0].Payload[0] != &m.Payload[0] {
		t.Fatalf("non-batch message altered: ok=%v msgs=%v", ok, msgs)
	}
}

func TestExpandBatchSplitsEnvelope(t *testing.T) {
	inner := [][]byte{proto.MarshalHeartbeat(2), proto.MarshalPhaseII(2, proto.PhaseII{Epoch: 3})}
	msgs, ok := ExpandBatch(Message{From: 4, Payload: proto.MarshalBatch(2, inner)})
	if !ok || len(msgs) != 2 {
		t.Fatalf("ok=%v msgs=%d", ok, len(msgs))
	}
	for i, m := range msgs {
		if m.From != 4 {
			t.Errorf("inner %d lost its sender: %v", i, m.From)
		}
	}
}

// TestExpandBatchRejectsNestedEnvelope covers the adversarial shape: a batch
// containing a batch must come back as a decode failure (dropped wholesale),
// never as something a dispatcher could recurse on.
func TestExpandBatchRejectsNestedEnvelope(t *testing.T) {
	nested := proto.MarshalBatch(0, [][]byte{proto.MarshalHeartbeat(0)})
	// Hand-build the envelope (MarshalBatch's caller contract forbids this).
	w := wire.NewWriter(64)
	proto.EncodeHeader(w, proto.KindBatch, 0)
	w.BytesField(proto.MarshalHeartbeat(0))
	w.BytesField(nested)
	msgs, ok := ExpandBatch(Message{From: 1, Payload: w.Bytes()})
	if !ok {
		t.Fatal("nested envelope not recognized as a batch")
	}
	for _, m := range msgs {
		if k, _, _, err := proto.Unmarshal(m.Payload); err == nil && k == proto.KindBatch {
			t.Fatal("ExpandBatch returned a nested batch for re-expansion")
		}
	}
}

// FuzzExpandBatch feeds arbitrary frames to the receive-side expander. It
// must never panic, and no returned message may itself be a batch envelope —
// the property that makes dispatcher recursion bounded on adversarial input.
func FuzzExpandBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(proto.MarshalHeartbeat(0))
	f.Add(proto.MarshalBatch(0, [][]byte{proto.MarshalHeartbeat(0), proto.MarshalHeartbeat(1)}))
	nested := proto.MarshalBatch(0, [][]byte{proto.MarshalHeartbeat(0)})
	w := wire.NewWriter(64)
	proto.EncodeHeader(w, proto.KindBatch, 0)
	w.BytesField(nested)
	f.Add(w.Bytes())
	f.Fuzz(func(t *testing.T, payload []byte) {
		msgs, ok := ExpandBatch(Message{From: 7, Payload: payload})
		if !ok {
			return // passed through unchanged; nothing was expanded
		}
		for _, m := range msgs {
			if len(m.Payload) == 0 {
				t.Fatal("ExpandBatch returned an empty message")
			}
			if proto.Kind(m.Payload[0]) == proto.KindBatch {
				t.Fatal("ExpandBatch returned an expandable batch")
			}
			if m.From != 7 {
				t.Fatal("ExpandBatch lost the sender")
			}
		}
	})
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	defer q.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(Message{From: proto.NodeID(i % 3), Payload: []byte{byte(i), byte(i >> 8)}})
	}
	for i := 0; i < n; i++ {
		m := <-q.Out()
		if m.Payload[0] != byte(i) || m.Payload[1] != byte(i>>8) {
			t.Fatalf("message %d out of order: got %v", i, m.Payload)
		}
	}
}

func TestQueuePushNeverBlocks(t *testing.T) {
	q := NewQueue()
	defer q.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100000; i++ { // nobody consumes; must not block
			q.Push(Message{})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push blocked with no consumer")
	}
	if q.Len() == 0 && func() int { <-q.Out(); return q.Len() }() == 0 {
		// At least one message was buffered; Len is inherently racy with the
		// pump, so we only assert non-blocking behaviour above.
		t.Log("queue drained quickly")
	}
}

func TestQueueCloseIdempotentAndUnblocks(t *testing.T) {
	q := NewQueue()
	q.Push(Message{Payload: []byte("x")})
	q.Close()
	q.Close() // must not panic or deadlock

	// Out must be closed.
	if _, ok := <-q.Out(); ok {
		// The pushed message may or may not have been consumed before Close;
		// but after Close eventually the channel closes.
		if _, ok := <-q.Out(); ok {
			t.Fatal("Out not closed after Close")
		}
	}
	// Pushes after close are dropped, not panicking.
	q.Push(Message{})
}

func TestQueueCloseWhileBlockedOnConsumer(t *testing.T) {
	q := NewQueue()
	q.Push(Message{Payload: []byte("a")})
	// Give the pump time to block on the unconsumed out channel.
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		q.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked while pump blocked on consumer")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue()
	defer q.Close()
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(Message{From: proto.NodeID(p), Payload: []byte{byte(i), byte(i >> 8)}})
			}
		}(p)
	}
	go func() { wg.Wait() }()

	// Per-producer FIFO must hold even with interleaving.
	next := make(map[proto.NodeID]int)
	for i := 0; i < producers*per; i++ {
		m := <-q.Out()
		got := int(m.Payload[0]) | int(m.Payload[1])<<8
		if got != next[m.From] {
			t.Fatalf("producer %v: got %d, want %d", m.From, got, next[m.From])
		}
		next[m.From]++
	}
}
