package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ringSpin is how many scheduler yields a blocked Push/Pop spends spinning
// before parking on the condition variable. Spinning covers the common case
// where the peer stage is actively draining; parking keeps an idle pipeline
// off the CPU.
const ringSpin = 32

// Ring is a single-producer single-consumer bounded queue connecting two
// pipeline stages. Exactly one goroutine may call Push/TryPush/Close (the
// producer) and exactly one may call Pop/TryPop (the consumer); Len is safe
// from anywhere. The fast path is two sequentially-consistent atomics and no
// locks; a stage that runs ahead spins briefly and then parks.
//
// Close is the producer's end-of-stream: Pop keeps returning buffered items
// after Close and reports ok=false only once the ring is closed AND empty,
// so nothing handed off is ever dropped. Consumed slots are zeroed so the
// ring does not pin frames or payloads it no longer owns.
type Ring[T any] struct {
	buf  []T
	mask uint64

	head   atomic.Uint64 // next slot to pop; written only by the consumer
	tail   atomic.Uint64 // next slot to push; written only by the producer
	closed atomic.Bool

	// Parking: a blocked side sets its own flag, re-checks under mu, then
	// waits. The peer re-reads that flag after its atomic head/tail store
	// (both seq-cst, so the flag store and the re-check cannot both miss) and
	// broadcasts under mu — the Dekker pattern that makes lost wakeups
	// impossible. The flags are per-side: each park touches only its own, so
	// a producer leaving park can never clear a consumer's claim (or vice
	// versa) and suppress its wakeup.
	mu          sync.Mutex
	cond        *sync.Cond
	prodWaiting atomic.Bool // producer parked in Push (ring full)
	consWaiting atomic.Bool // consumer parked in Pop (ring empty)
}

// NewRing creates a ring holding at least size items (rounded up to a power
// of two; size <= 0 selects 256).
func NewRing[T any](size int) *Ring[T] {
	if size <= 0 {
		size = 256
	}
	n := 1
	for n < size {
		n <<= 1
	}
	r := &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns how many items are currently buffered. Safe from any
// goroutine; the answer is naturally stale.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush enqueues v if the ring is open and has space. Producer-only.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	//oar:frame-handoff — slot ownership passes to the consumer; released by
	// the consuming stage (Pop zeroes the slot).
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.wake(&r.consWaiting)
	return true
}

// Push enqueues v, blocking while the ring is full. It returns false only if
// the ring is (or becomes) closed — the item was not enqueued and the caller
// still owns whatever it carries. Producer-only.
func (r *Ring[T]) Push(v T) bool {
	for spin := 0; ; {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		if spin < ringSpin {
			spin++
			runtime.Gosched()
			continue
		}
		r.park(&r.prodWaiting, func() bool {
			return r.tail.Load()-r.head.Load() < uint64(len(r.buf)) || r.closed.Load()
		})
		spin = 0
	}
}

// TryPop dequeues the next item if one is buffered. Consumer-only.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if r.tail.Load() == h {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // release the slot's references with it
	r.head.Store(h + 1)
	r.wake(&r.prodWaiting)
	return v, true
}

// Pop dequeues the next item, blocking while the ring is empty and open. It
// returns ok=false only once the ring is closed and fully drained.
// Consumer-only.
func (r *Ring[T]) Pop() (T, bool) {
	for spin := 0; ; {
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Re-check: items pushed before Close must still drain.
			if v, ok := r.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		if spin < ringSpin {
			spin++
			runtime.Gosched()
			continue
		}
		r.park(&r.consWaiting, func() bool {
			return r.tail.Load() != r.head.Load() || r.closed.Load()
		})
		spin = 0
	}
}

// Close marks end-of-stream. Producer-only (and idempotent). Buffered items
// remain poppable; blocked peers wake.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	r.closed.Store(true)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// park blocks until ready() holds, claiming the caller's own waiting flag
// (prodWaiting for Push, consWaiting for Pop). ready must be safe to call
// under mu.
func (r *Ring[T]) park(waiting *atomic.Bool, ready func() bool) {
	r.mu.Lock()
	waiting.Store(true)
	for !ready() {
		r.cond.Wait()
	}
	waiting.Store(false)
	r.mu.Unlock()
}

// wake unblocks the peer if it is parked on the given flag (the consumer's
// after a push, the producer's after a pop). Called after the head/tail store
// so the seq-cst total order guarantees either the peer's re-check sees the
// store or this load sees the peer's waiting flag.
func (r *Ring[T]) wake(waiting *atomic.Bool) {
	if waiting.Load() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}
