package consensus

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
)

// harness is a deterministic in-memory network for consensus instances:
// messages queue up and the test decides the delivery order. Crashed nodes
// neither send nor receive; each node has its own scriptable oracle.
type harness struct {
	t       *testing.T
	group   []proto.NodeID
	insts   map[proto.NodeID]*Instance
	oracles map[proto.NodeID]*fd.Oracle
	queue   []envelope
	crashed map[proto.NodeID]bool
	drop    func(from, to proto.NodeID, kind proto.Kind) bool
	decided map[proto.NodeID]Decision
}

type envelope struct {
	from, to proto.NodeID
	payload  []byte
}

func newHarness(t *testing.T, n int) *harness {
	h := &harness{
		t:       t,
		group:   proto.Group(n),
		insts:   make(map[proto.NodeID]*Instance),
		oracles: make(map[proto.NodeID]*fd.Oracle),
		crashed: make(map[proto.NodeID]bool),
		decided: make(map[proto.NodeID]Decision),
	}
	for _, id := range h.group {
		id := id
		h.oracles[id] = fd.NewOracle()
		h.insts[id] = NewInstance(Config{
			Self:     id,
			Group:    h.group,
			Instance: 7,
			Send: func(to proto.NodeID, payload []byte) {
				if h.crashed[id] {
					return
				}
				h.queue = append(h.queue, envelope{from: id, to: to, payload: payload})
			},
			Detector: h.oracles[id],
			OnDecide: func(d Decision) {
				if prev, ok := h.decided[id]; ok {
					t.Errorf("%v decided twice: %v then %v", id, prev, d)
				}
				h.decided[id] = d
			},
		})
	}
	return h
}

// crash stops a node and makes all other oracles suspect it.
func (h *harness) crash(id proto.NodeID) {
	h.crashed[id] = true
	for other, o := range h.oracles {
		if other != id {
			o.Suspect(id)
		}
	}
}

// step delivers the i-th queued message.
func (h *harness) step(i int) {
	env := h.queue[i]
	h.queue = append(h.queue[:i], h.queue[i+1:]...)
	if h.crashed[env.to] {
		return
	}
	if h.drop != nil {
		k, _, _, _ := proto.Unmarshal(env.payload)
		if h.drop(env.from, env.to, k) {
			return
		}
	}
	kind, _, body, err := proto.Unmarshal(env.payload)
	if err != nil {
		h.t.Fatalf("bad payload: %v", err)
	}
	if err := h.insts[env.to].OnMessage(env.from, kind, body); err != nil {
		h.t.Fatalf("OnMessage: %v", err)
	}
}

// run pumps messages (in rng order if rng != nil, else FIFO) and ticks until
// all correct nodes decide or the step budget is exhausted.
func (h *harness) run(rng *rand.Rand, budget int) {
	now := time.Unix(0, 0)
	for steps := 0; steps < budget; steps++ {
		if len(h.queue) == 0 {
			if h.allCorrectDecided() {
				return
			}
			// Quiescent but undecided: drive suspicion-based progress.
			now = now.Add(time.Millisecond)
			for id, inst := range h.insts {
				if !h.crashed[id] {
					inst.Tick(now)
				}
			}
			if len(h.queue) == 0 && h.allCorrectDecided() {
				return
			}
			if len(h.queue) == 0 {
				h.t.Fatalf("quiescent without decision; decided=%d/%d", len(h.decided), h.correctCount())
			}
			continue
		}
		i := 0
		if rng != nil {
			i = rng.Intn(len(h.queue))
		}
		h.step(i)
	}
	h.t.Fatalf("step budget exhausted; decided=%d/%d, queue=%d", len(h.decided), h.correctCount(), len(h.queue))
}

func (h *harness) correctCount() int {
	n := 0
	for _, id := range h.group {
		if !h.crashed[id] {
			n++
		}
	}
	return n
}

func (h *harness) allCorrectDecided() bool {
	for _, id := range h.group {
		if h.crashed[id] {
			continue
		}
		if _, ok := h.decided[id]; !ok {
			return false
		}
	}
	return true
}

// checkAgreementAndValidity verifies Agreement, Maj-validity and Validity of
// the decisions recorded so far.
func (h *harness) checkAgreementAndValidity(proposed map[proto.NodeID][]byte) {
	h.t.Helper()
	var ref Decision
	var refID proto.NodeID
	for id, d := range h.decided {
		if ref == nil {
			ref, refID = d, id
			continue
		}
		if !decisionsEqual(ref, d) {
			h.t.Fatalf("agreement violated: %v decided %v, %v decided %v", refID, ref, id, d)
		}
	}
	if ref == nil {
		h.t.Fatal("nobody decided")
	}
	// Validity: every value in the decision was actually proposed by its
	// claimed proposer.
	inDecision := map[proto.NodeID]bool{}
	for _, pv := range ref {
		want, ok := proposed[pv.From]
		if !ok {
			h.t.Fatalf("decision contains value from %v which never proposed", pv.From)
		}
		if string(want) != string(pv.Val) {
			h.t.Fatalf("decision misattributes %v: got %q want %q", pv.From, pv.Val, want)
		}
		inDecision[pv.From] = true
	}
	// Maj-validity: the decision contains initial values of a majority.
	if len(inDecision) < proto.MajoritySize(len(h.group)) {
		h.t.Fatalf("maj-validity violated: decision covers %d of %d processes", len(inDecision), len(h.group))
	}
}

func decisionsEqual(a, b Decision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || string(a[i].Val) != string(b[i].Val) {
			return false
		}
	}
	return true
}

func startAll(h *harness, proposed map[proto.NodeID][]byte) {
	for _, id := range h.group {
		if !h.crashed[id] {
			h.insts[id].Start(proposed[id])
		}
	}
}

func proposals(n int) map[proto.NodeID][]byte {
	m := make(map[proto.NodeID][]byte, n)
	for i := 0; i < n; i++ {
		m[proto.NodeID(i)] = []byte(fmt.Sprintf("v%d", i))
	}
	return m
}

func TestFailureFreeDecidesRoundOne(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			h := newHarness(t, n)
			props := proposals(n)
			startAll(h, props)
			h.run(nil, 100000)
			h.checkAgreementAndValidity(props)
			// CT processes advance one round right after acking, so round 2
			// is the ceiling in a failure-free run (decide lands before any
			// round-2 proposal can form).
			for id, inst := range h.insts {
				if inst.Round() > 2 {
					t.Errorf("%v needed round %d in a failure-free run", id, inst.Round())
				}
			}
		})
	}
}

func TestDecisionIsMajorityOfInitialValues(t *testing.T) {
	h := newHarness(t, 5)
	props := proposals(5)
	startAll(h, props)
	h.run(nil, 100000)
	d := h.decided[proto.NodeID(0)]
	if len(d) < 3 {
		t.Fatalf("decision has %d values, want >= majority (3)", len(d))
	}
}

func TestCoordinatorCrashBeforeProposing(t *testing.T) {
	h := newHarness(t, 3)
	props := proposals(3)
	h.crash(0) // round-1 coordinator dead from the start
	startAll(h, props)
	h.run(nil, 100000)
	h.checkAgreementAndValidity(props)
	// The decision cannot contain p0's value: it never proposed.
	for _, pv := range h.decided[proto.NodeID(1)] {
		if pv.From == proto.NodeID(0) {
			t.Fatal("dead coordinator's value in decision")
		}
	}
}

func TestCoordinatorCrashAfterPartialPropose(t *testing.T) {
	// The round-1 coordinator's proposal reaches p1 but not p2; then the
	// coordinator crashes. p1 has a lock; agreement requires the lock to
	// prevail in round 2.
	h := newHarness(t, 3)
	props := proposals(3)
	dropped := false
	h.drop = func(from, to proto.NodeID, kind proto.Kind) bool {
		if kind == proto.KindPropose && from == 0 && to == 2 {
			dropped = true
			return true
		}
		// Also kill the coordinator's decide messages: it must not finish.
		if kind == proto.KindDecide && from == 0 {
			return true
		}
		return false
	}
	startAll(h, props)
	// Pump until p1 has acked round 1 (its lock is set), then crash p0.
	for i := 0; i < 1000 && !dropped; i++ {
		if len(h.queue) == 0 {
			break
		}
		h.step(0)
	}
	lockRef := h.insts[proto.NodeID(1)].lock
	h.crash(0)
	h.run(nil, 100000)
	h.checkAgreementAndValidity(props)
	if lockRef != nil && !decisionsEqual(h.decided[proto.NodeID(1)], lockRef) {
		t.Fatalf("locked value overturned: lock=%v decided=%v", lockRef, h.decided[proto.NodeID(1)])
	}
}

func TestDecideRelayedWhenDeciderCrashes(t *testing.T) {
	// The coordinator's decide reaches only p1; the coordinator then
	// crashes. p1's relay must bring p2 to a decision.
	h := newHarness(t, 3)
	props := proposals(3)
	h.drop = func(from, to proto.NodeID, kind proto.Kind) bool {
		return kind == proto.KindDecide && from == 0 && to == 2
	}
	startAll(h, props)
	h.run(nil, 100000)
	h.checkAgreementAndValidity(props)
	if _, ok := h.decided[proto.NodeID(2)]; !ok {
		t.Fatal("p2 never decided despite relay")
	}
}

func TestLateStarterStillDecides(t *testing.T) {
	// p2 starts only after the others are already deep in the protocol;
	// buffered messages must let it catch up.
	h := newHarness(t, 3)
	props := proposals(3)
	h.insts[proto.NodeID(0)].Start(props[proto.NodeID(0)])
	h.insts[proto.NodeID(1)].Start(props[proto.NodeID(1)])
	for i := 0; i < 50 && len(h.queue) > 0; i++ {
		h.step(0)
	}
	h.insts[proto.NodeID(2)].Start(props[proto.NodeID(2)])
	h.run(nil, 100000)
	h.checkAgreementAndValidity(props)
}

func TestWrongSuspicionStillSafe(t *testing.T) {
	// p2 wrongly suspects the (alive) round-1 coordinator and nacks. The run
	// must still decide with agreement (possibly in a later round).
	h := newHarness(t, 3)
	props := proposals(3)
	h.oracles[proto.NodeID(2)].Suspect(0)
	startAll(h, props)
	h.run(nil, 100000)
	h.checkAgreementAndValidity(props)
}

func TestInstanceRouting(t *testing.T) {
	h := newHarness(t, 3)
	inst := h.insts[proto.NodeID(0)]
	est := marshalEstimate(0, estimateMsg{Inst: 99, Round: 1})
	kind, _, body, _ := proto.Unmarshal(est)
	if err := inst.OnMessage(1, kind, body); err == nil {
		t.Fatal("wrong-instance message accepted")
	}
	if got, err := InstanceOf(body); err != nil || got != 99 {
		t.Fatalf("InstanceOf = %d, %v", got, err)
	}
}

func TestGarbageMessagesRejected(t *testing.T) {
	h := newHarness(t, 3)
	inst := h.insts[proto.NodeID(0)]
	for _, kind := range []proto.Kind{proto.KindEstimate, proto.KindPropose, proto.KindAck, proto.KindDecide} {
		if err := inst.OnMessage(1, kind, []byte{0xFF}); err == nil {
			t.Errorf("garbage %v accepted", kind)
		}
	}
	if err := inst.OnMessage(1, proto.KindReply, nil); err == nil {
		t.Error("non-consensus kind accepted")
	}
}

func TestRandomSchedulesWithMinorityCrash(t *testing.T) {
	// Property: under arbitrary delivery orders and an arbitrary minority of
	// crash failures (possibly mid-run), all correct processes decide the
	// same majority-covering value.
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(3)*2 // 3, 5, or 7
			h := newHarness(t, n)
			props := proposals(n)
			startAll(h, props)

			maxCrash := (n - 1) / 2
			crashes := rng.Intn(maxCrash + 1)
			crashAfter := map[int]proto.NodeID{}
			for c := 0; c < crashes; c++ {
				crashAfter[10+rng.Intn(40)] = proto.NodeID(rng.Intn(n))
			}
			now := time.Unix(0, 0)
			for steps := 0; steps < 200000; steps++ {
				if id, ok := crashAfter[steps]; ok {
					h.crash(id)
				}
				if len(h.queue) == 0 {
					if h.allCorrectDecided() {
						break
					}
					now = now.Add(time.Millisecond)
					for id, inst := range h.insts {
						if !h.crashed[id] {
							inst.Tick(now)
						}
					}
					if len(h.queue) == 0 {
						if h.allCorrectDecided() {
							break
						}
						t.Fatalf("stuck: decided=%d queue empty", len(h.decided))
					}
					continue
				}
				h.step(rng.Intn(len(h.queue)))
			}
			if !h.allCorrectDecided() {
				t.Fatal("not all correct processes decided")
			}
			h.checkAgreementAndValidity(props)
		})
	}
}

func TestStartIdempotent(t *testing.T) {
	h := newHarness(t, 3)
	props := proposals(3)
	startAll(h, props)
	h.insts[proto.NodeID(0)].Start([]byte("other")) // must be ignored
	h.run(nil, 100000)
	h.checkAgreementAndValidity(props)
}

func TestDecodeRoundTrips(t *testing.T) {
	d := Decision{{From: 1, Val: []byte("a")}, {From: 2, Val: nil}}
	est := estimateMsg{Inst: 3, Round: 4, Init: []byte("i"), LockTS: 2, Lock: d}
	_, _, body, _ := proto.Unmarshal(marshalEstimate(0, est))
	got, err := unmarshalEstimate(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Inst != 3 || got.Round != 4 || string(got.Init) != "i" || got.LockTS != 2 || !decisionsEqual(got.Lock, d) {
		t.Fatalf("estimate round trip: %+v", got)
	}

	_, _, body, _ = proto.Unmarshal(marshalPropose(0, proposeMsg{Inst: 1, Round: 2, Val: d}))
	gp, err := unmarshalPropose(body)
	if err != nil || gp.Inst != 1 || gp.Round != 2 || !decisionsEqual(gp.Val, d) {
		t.Fatalf("propose round trip: %+v err=%v", gp, err)
	}

	_, _, body, _ = proto.Unmarshal(marshalAck(0, ackMsg{Inst: 5, Round: 6, OK: true}))
	ga, err := unmarshalAck(body)
	if err != nil || ga.Inst != 5 || ga.Round != 6 || !ga.OK {
		t.Fatalf("ack round trip: %+v err=%v", ga, err)
	}

	_, _, body, _ = proto.Unmarshal(marshalDecide(0, decideMsg{Inst: 8, Val: d}))
	gd, err := unmarshalDecide(body)
	if err != nil || gd.Inst != 8 || !decisionsEqual(gd.Val, d) {
		t.Fatalf("decide round trip: %+v err=%v", gd, err)
	}
}
