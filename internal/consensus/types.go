// Package consensus implements the Chandra–Toueg ◊S rotating-coordinator
// consensus algorithm [CT96] with the Maj-validity modification described in
// Section 5.5 of the paper (and in [Fel98]):
//
//	Maj-validity. If a process executes decide(V), then V is a sequence of
//	values such that, for a majority of processes pi, if pi has executed
//	propose(vi), then vi ∈ V.
//
// Instead of deciding a single proposed value, the algorithm decides a
// *sequence of initial values* collected from a majority of processes. This
// is exactly what Cnsv-order needs: the decision D_k is the list of
// (O_delivered, O_notdelivered) pairs of a majority.
//
// The implementation is event-driven and single-owner: the process event
// loop feeds messages in via OnMessage, drives timeouts via Tick, and
// receives the decision via the OnDecide callback. It assumes a majority of
// correct processes and reliable FIFO channels, per the system model.
package consensus

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/wire"
)

// ProposedValue is one process's initial value, as carried in a decision.
type ProposedValue struct {
	From proto.NodeID
	Val  []byte
}

// Decision is the decided sequence of initial values (Maj-validity: it
// contains the initial value of at least a majority of processes).
type Decision []ProposedValue

// encodeDecision appends d to w.
func encodeDecision(w *wire.Writer, d Decision) {
	w.Uint64(uint64(len(d)))
	for _, pv := range d {
		w.Int64(int64(pv.From))
		w.BytesField(pv.Val)
	}
}

// decodeDecision reads a Decision from r.
func decodeDecision(r *wire.Reader) Decision {
	n := r.Uint64()
	if r.Err() != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // each entry takes >= 1 byte
		return nil
	}
	d := make(Decision, 0, n)
	for i := uint64(0); i < n; i++ {
		var pv ProposedValue
		pv.From = proto.NodeID(r.Int64())
		pv.Val = r.BytesField()
		d = append(d, pv)
	}
	return d
}

// estimateMsg is consensus phase 1: a process's current estimate sent to the
// round coordinator. Init is the sender's (immutable) initial value; if the
// sender has adopted a coordinator proposal in an earlier round, Lock/LockTS
// carry it (LockTS is the round of adoption; zero means no lock).
type estimateMsg struct {
	Inst   uint64
	Round  uint32
	Init   []byte
	LockTS uint32
	Lock   Decision
}

func marshalEstimate(g proto.GroupID, m estimateMsg) []byte {
	w := wire.NewWriter(64 + len(m.Init))
	proto.EncodeHeader(w, proto.KindEstimate, g)
	w.Uint64(m.Inst)
	w.Uint64(uint64(m.Round))
	w.BytesField(m.Init)
	w.Uint64(uint64(m.LockTS))
	encodeDecision(w, m.Lock)
	return w.Bytes()
}

func unmarshalEstimate(body []byte) (estimateMsg, error) {
	r := wire.NewReader(body)
	var m estimateMsg
	m.Inst = r.Uint64()
	m.Round = uint32(r.Uint64())
	m.Init = r.BytesField()
	m.LockTS = uint32(r.Uint64())
	m.Lock = decodeDecision(r)
	if err := r.Err(); err != nil {
		return estimateMsg{}, fmt.Errorf("consensus: decode estimate: %w", err)
	}
	return m, nil
}

// proposeMsg is consensus phase 2: the coordinator's proposal for a round.
type proposeMsg struct {
	Inst  uint64
	Round uint32
	Val   Decision
}

func marshalPropose(g proto.GroupID, m proposeMsg) []byte {
	w := wire.NewWriter(64)
	proto.EncodeHeader(w, proto.KindPropose, g)
	w.Uint64(m.Inst)
	w.Uint64(uint64(m.Round))
	encodeDecision(w, m.Val)
	return w.Bytes()
}

func unmarshalPropose(body []byte) (proposeMsg, error) {
	r := wire.NewReader(body)
	var m proposeMsg
	m.Inst = r.Uint64()
	m.Round = uint32(r.Uint64())
	m.Val = decodeDecision(r)
	if err := r.Err(); err != nil {
		return proposeMsg{}, fmt.Errorf("consensus: decode propose: %w", err)
	}
	return m, nil
}

// ackMsg is consensus phase 3: ack (OK) or nack (coordinator suspected).
type ackMsg struct {
	Inst  uint64
	Round uint32
	OK    bool
}

func marshalAck(g proto.GroupID, m ackMsg) []byte {
	w := wire.NewWriter(16)
	proto.EncodeHeader(w, proto.KindAck, g)
	w.Uint64(m.Inst)
	w.Uint64(uint64(m.Round))
	w.Bool(m.OK)
	return w.Bytes()
}

func unmarshalAck(body []byte) (ackMsg, error) {
	r := wire.NewReader(body)
	var m ackMsg
	m.Inst = r.Uint64()
	m.Round = uint32(r.Uint64())
	m.OK = r.Bool()
	if err := r.Err(); err != nil {
		return ackMsg{}, fmt.Errorf("consensus: decode ack: %w", err)
	}
	return m, nil
}

// decideMsg disseminates the decision (reliable-broadcast style: first
// receipt is relayed to the whole group before deciding).
type decideMsg struct {
	Inst uint64
	Val  Decision
}

func marshalDecide(g proto.GroupID, m decideMsg) []byte {
	w := wire.NewWriter(64)
	proto.EncodeHeader(w, proto.KindDecide, g)
	w.Uint64(m.Inst)
	encodeDecision(w, m.Val)
	return w.Bytes()
}

func unmarshalDecide(body []byte) (decideMsg, error) {
	r := wire.NewReader(body)
	var m decideMsg
	m.Inst = r.Uint64()
	m.Val = decodeDecision(r)
	if err := r.Err(); err != nil {
		return decideMsg{}, fmt.Errorf("consensus: decode decide: %w", err)
	}
	return m, nil
}

// InstanceOf extracts the instance number from any consensus message body
// (all four kinds lead with it), letting the owner route messages to the
// right instance without a full decode.
func InstanceOf(body []byte) (uint64, error) {
	r := wire.NewReader(body)
	inst := r.Uint64()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("consensus: decode instance: %w", err)
	}
	return inst, nil
}
