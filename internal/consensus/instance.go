package consensus

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fd"
	"repro/internal/proto"
)

// Config configures one consensus instance.
type Config struct {
	// Self is the owning process.
	Self proto.NodeID
	// Group is Π. Must contain Self. Round r's coordinator is
	// Group[(r-1) mod |Group|].
	Group []proto.NodeID
	// Instance is the instance number (the OAR epoch k).
	Instance uint64
	// GroupID tags every outgoing message with the ordering group this
	// instance belongs to (0 in a single-group system).
	GroupID proto.GroupID
	// Send transmits a payload to one peer.
	Send func(to proto.NodeID, payload []byte)
	// Detector is the ◊S failure detector used to suspect coordinators.
	Detector fd.Detector
	// OnDecide is invoked exactly once, with the decided value.
	OnDecide func(Decision)
}

// Instance is one execution of Maj-validity consensus. It is owned by a
// single goroutine: OnMessage and Tick must be called from the owner's event
// loop only.
type Instance struct {
	cfg Config
	n   int
	maj int

	started bool
	init    []byte

	round  uint32
	acked  bool // this process completed phase 3 of the current round
	lock   Decision
	lockTS uint32

	// Coordinator bookkeeping, buffered by round (messages may arrive before
	// this process enters the round).
	estimates map[uint32]map[proto.NodeID]estimateMsg
	replies   map[uint32]map[proto.NodeID]bool
	proposed  map[uint32]bool // rounds in which we (as coordinator) proposed
	proposals map[uint32]Decision

	decided       bool
	decision      Decision
	relayedDecide bool
}

// NewInstance creates an idle instance. It processes (buffers) messages
// immediately but only participates after Start.
func NewInstance(cfg Config) *Instance {
	n := len(cfg.Group)
	return &Instance{
		cfg:       cfg,
		n:         n,
		maj:       proto.MajoritySize(n),
		estimates: make(map[uint32]map[proto.NodeID]estimateMsg),
		replies:   make(map[uint32]map[proto.NodeID]bool),
		proposed:  make(map[uint32]bool),
		proposals: make(map[uint32]Decision),
	}
}

// Decided reports whether this instance has decided, and the decision.
func (in *Instance) Decided() (Decision, bool) { return in.decision, in.decided }

// Started reports whether Start has been called.
func (in *Instance) Started() bool { return in.started }

// Round returns the current round (0 before Start).
func (in *Instance) Round() uint32 { return in.round }

// Start begins participating with the given initial value (propose(v)).
func (in *Instance) Start(initial []byte) {
	if in.started || in.decided {
		return
	}
	in.started = true
	in.init = initial
	in.enterRound(1)
}

func (in *Instance) coordinator(round uint32) proto.NodeID {
	return in.cfg.Group[int(round-1)%in.n]
}

func (in *Instance) enterRound(r uint32) {
	if in.decided {
		return
	}
	in.round = r
	in.acked = false
	coord := in.coordinator(r)

	// Phase 1: send the estimate to the coordinator.
	est := estimateMsg{
		Inst:   in.cfg.Instance,
		Round:  r,
		Init:   in.init,
		LockTS: in.lockTS,
		Lock:   in.lock,
	}
	if coord == in.cfg.Self {
		in.recordEstimate(in.cfg.Self, est)
	} else {
		in.cfg.Send(coord, marshalEstimate(in.cfg.GroupID, est))
	}

	// Estimates (and nacks) for this round may have arrived before we got
	// here; if we are its coordinator, phase 2 may already be satisfiable.
	if coord == in.cfg.Self {
		in.maybePropose(r)
		return
	}
	// A proposal for this round may already be buffered.
	if d, ok := in.proposals[r]; ok {
		in.handleProposalForCurrentRound(d)
	}
}

// OnMessage feeds a consensus message (kind + body of a transport payload)
// into the instance.
func (in *Instance) OnMessage(from proto.NodeID, kind proto.Kind, body []byte) error {
	if in.decided {
		return nil // late round messages are irrelevant once decided
	}
	switch kind {
	case proto.KindEstimate:
		m, err := unmarshalEstimate(body)
		if err != nil {
			return err
		}
		if m.Inst != in.cfg.Instance {
			return fmt.Errorf("consensus: estimate for instance %d routed to %d", m.Inst, in.cfg.Instance)
		}
		in.recordEstimate(from, m)
	case proto.KindPropose:
		m, err := unmarshalPropose(body)
		if err != nil {
			return err
		}
		if m.Inst != in.cfg.Instance {
			return fmt.Errorf("consensus: propose for instance %d routed to %d", m.Inst, in.cfg.Instance)
		}
		in.proposals[m.Round] = m.Val
		if in.started && m.Round == in.round {
			in.handleProposalForCurrentRound(m.Val)
		}
	case proto.KindAck:
		m, err := unmarshalAck(body)
		if err != nil {
			return err
		}
		if m.Inst != in.cfg.Instance {
			return fmt.Errorf("consensus: ack for instance %d routed to %d", m.Inst, in.cfg.Instance)
		}
		in.recordReply(m.Round, from, m.OK)
	case proto.KindDecide:
		m, err := unmarshalDecide(body)
		if err != nil {
			return err
		}
		if m.Inst != in.cfg.Instance {
			return fmt.Errorf("consensus: decide for instance %d routed to %d", m.Inst, in.cfg.Instance)
		}
		in.decide(m.Val)
	default:
		return fmt.Errorf("consensus: unexpected kind %v", kind)
	}
	return nil
}

// Tick drives failure-detector-based progress: if this process is waiting
// for the current round's proposal and suspects the coordinator, it nacks
// and moves to the next round. Call it periodically (e.g. every few
// milliseconds) while the instance is undecided.
func (in *Instance) Tick(now time.Time) {
	if !in.started || in.decided || in.acked {
		return
	}
	coord := in.coordinator(in.round)
	if coord == in.cfg.Self {
		return // the coordinator does not suspect itself
	}
	if _, hasProposal := in.proposals[in.round]; hasProposal {
		return
	}
	if in.cfg.Detector.Suspected(coord, now) {
		// Phase 3, suspicion branch: nack and advance.
		in.acked = true
		in.cfg.Send(coord, marshalAck(in.cfg.GroupID, ackMsg{Inst: in.cfg.Instance, Round: in.round, OK: false}))
		in.enterRound(in.round + 1)
	}
}

func (in *Instance) recordEstimate(from proto.NodeID, m estimateMsg) {
	if in.decided {
		return
	}
	byRound, ok := in.estimates[m.Round]
	if !ok {
		byRound = make(map[proto.NodeID]estimateMsg, in.n)
		in.estimates[m.Round] = byRound
	}
	if _, dup := byRound[from]; dup {
		return
	}
	byRound[from] = m
	in.maybePropose(m.Round)
}

// maybePropose runs coordinator phase 2 once a majority of estimates for the
// round is available.
func (in *Instance) maybePropose(round uint32) {
	if !in.started || in.decided || in.proposed[round] {
		return
	}
	if in.coordinator(round) != in.cfg.Self || round > in.round {
		// Not coordinator, or we have not reached this round ourselves yet
		// (we propose when we get there; estimates stay buffered).
		return
	}
	ests := in.estimates[round]
	if len(ests) < in.maj {
		return
	}
	in.proposed[round] = true

	// Maj-validity choice: adopt the highest-timestamp lock if any estimate
	// carries one; otherwise combine the majority's initial values into a
	// fresh decision sequence (deterministic order: by process ID).
	var proposal Decision
	var bestTS uint32
	for _, e := range ests {
		if e.LockTS > bestTS {
			bestTS = e.LockTS
			proposal = e.Lock
		}
	}
	if bestTS == 0 {
		froms := make([]proto.NodeID, 0, len(ests))
		for from := range ests {
			froms = append(froms, from)
		}
		sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
		proposal = make(Decision, 0, len(froms))
		for _, from := range froms {
			proposal = append(proposal, ProposedValue{From: from, Val: ests[from].Init})
		}
	}

	payload := marshalPropose(in.cfg.GroupID, proposeMsg{Inst: in.cfg.Instance, Round: round, Val: proposal})
	for _, p := range in.cfg.Group {
		if p == in.cfg.Self {
			continue
		}
		in.cfg.Send(p, payload)
	}
	// Handle our own proposal locally, then re-check phase 4: nacks from
	// processes that suspected us may have arrived before we proposed.
	in.proposals[round] = proposal
	if round == in.round {
		in.handleProposalForCurrentRound(proposal)
	}
	in.maybeConclude(round)
}

// handleProposalForCurrentRound runs phase 3's adoption branch.
func (in *Instance) handleProposalForCurrentRound(d Decision) {
	if in.decided || in.acked {
		return
	}
	in.acked = true
	in.lock = d
	in.lockTS = in.round
	coord := in.coordinator(in.round)
	if coord == in.cfg.Self {
		in.recordReply(in.round, in.cfg.Self, true)
	} else {
		in.cfg.Send(coord, marshalAck(in.cfg.GroupID, ackMsg{Inst: in.cfg.Instance, Round: in.round, OK: true}))
	}
	// CT: after phase 3 the process proceeds to the next round (it keeps
	// cycling until a decide arrives). The coordinator advances after
	// phase 4 instead, so that it can still collect this round's replies.
	if coord != in.cfg.Self && !in.decided {
		in.enterRound(in.round + 1)
	}
}

// recordReply runs coordinator phase 4 bookkeeping.
func (in *Instance) recordReply(round uint32, from proto.NodeID, ok bool) {
	if in.decided {
		return
	}
	byRound, exists := in.replies[round]
	if !exists {
		byRound = make(map[proto.NodeID]bool, in.n)
		in.replies[round] = byRound
	}
	if _, dup := byRound[from]; dup {
		return
	}
	byRound[from] = ok
	in.maybeConclude(round)
}

// maybeConclude finishes coordinator phase 4 once a majority of replies is
// in: all acks => decide; any nack => next round.
func (in *Instance) maybeConclude(round uint32) {
	if !in.started || in.decided {
		return
	}
	if in.coordinator(round) != in.cfg.Self || !in.proposed[round] {
		return
	}
	byRound := in.replies[round]
	if len(byRound) < in.maj {
		return
	}
	allOK := true
	for _, ok := range byRound {
		if !ok {
			allOK = false
			break
		}
	}
	if allOK {
		in.broadcastDecide(in.proposals[round])
		return
	}
	if round == in.round {
		in.enterRound(round + 1)
	}
}

func (in *Instance) broadcastDecide(d Decision) {
	payload := marshalDecide(in.cfg.GroupID, decideMsg{Inst: in.cfg.Instance, Val: d})
	for _, p := range in.cfg.Group {
		if p == in.cfg.Self {
			continue
		}
		in.cfg.Send(p, payload)
	}
	in.relayedDecide = true
	in.decide(d)
}

// decide records the decision (idempotent) and relays it once
// (reliable-broadcast pattern) so that all correct processes decide even if
// the deciding coordinator crashes mid-broadcast.
func (in *Instance) decide(d Decision) {
	if in.decided {
		return
	}
	if !in.relayedDecide {
		payload := marshalDecide(in.cfg.GroupID, decideMsg{Inst: in.cfg.Instance, Val: d})
		for _, p := range in.cfg.Group {
			if p == in.cfg.Self {
				continue
			}
			in.cfg.Send(p, payload)
		}
		in.relayedDecide = true
	}
	in.decided = true
	in.decision = d
	// Free round bookkeeping; the instance is done.
	in.estimates = nil
	in.replies = nil
	in.proposals = nil
	in.proposed = nil
	if in.cfg.OnDecide != nil {
		in.cfg.OnDecide(d)
	}
}
