package proto

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/wire"
)

// Kind tags every payload exchanged over the transport. The first byte of a
// transport payload is its Kind, followed by the uvarint GroupID of the
// ordering group the message belongs to; the remainder is the kind-specific
// body. Group-scoped processes drop payloads tagged with a foreign group
// before decoding the body.
type Kind uint8

// Message kinds. Kinds are stable wire constants; do not reorder.
const (
	// KindRMcast wraps an inner payload in the reliable-multicast header.
	KindRMcast Kind = iota + 1
	// KindRequest is a client request (always carried inside KindRMcast).
	KindRequest
	// KindPhaseII tells servers to proceed to the conservative phase of an
	// epoch (always carried inside KindRMcast, i.e. R-broadcast).
	KindPhaseII
	// KindSeqOrder is the sequencer's ordering message (k, msgSet_k).
	KindSeqOrder
	// KindReply is a server reply to a client.
	KindReply
	// KindHeartbeat is a failure-detector heartbeat.
	KindHeartbeat
	// KindEstimate is consensus phase 1 (process -> coordinator).
	KindEstimate
	// KindPropose is consensus phase 2 (coordinator -> all).
	KindPropose
	// KindAck is consensus phase 3 (process -> coordinator; OK or nack).
	KindAck
	// KindDecide disseminates a consensus decision (reliable-broadcast style).
	KindDecide
	// KindBaseline carries a baseline-protocol-specific payload; the baseline
	// packages define their own sub-kinds inside the body.
	KindBaseline
	// KindBatch is an envelope coalescing several kind-tagged messages into
	// one transport frame (one syscall / one channel hop instead of many).
	// Batches do not nest.
	KindBatch
	// KindRead is a read-only client request sent directly to each replica of
	// the owning group, bypassing reliable multicast and the sequencer (the
	// read fast path). The body encoding is identical to KindRequest — the
	// envelope kind alone carries the read-only flag, so existing frames stay
	// wire-compatible.
	KindRead
	// KindCatchupReq is a recovering replica's probe to its peers: "I have
	// replayed my local snapshot+WAL up to definitive position HavePos; send
	// me what I am missing."
	KindCatchupReq
	// KindCatchupResp answers a catch-up probe with the responder's current
	// epoch, its definitive boundary position, and — when the prober is
	// behind — a state snapshot and/or the missing log suffix.
	KindCatchupResp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRMcast:
		return "rmcast"
	case KindRequest:
		return "request"
	case KindPhaseII:
		return "phase2"
	case KindSeqOrder:
		return "seqorder"
	case KindReply:
		return "reply"
	case KindHeartbeat:
		return "heartbeat"
	case KindEstimate:
		return "estimate"
	case KindPropose:
		return "propose"
	case KindAck:
		return "ack"
	case KindDecide:
		return "decide"
	case KindBaseline:
		return "baseline"
	case KindBatch:
		return "batch"
	case KindRead:
		return "read"
	case KindCatchupReq:
		return "catchup-req"
	case KindCatchupResp:
		return "catchup-resp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AppendHeader appends the [kind][uvarint group] envelope header to dst and
// returns the extended slice. It is the raw-buffer twin of EncodeHeader, used
// by senders that build envelopes incrementally (core's per-round batcher).
func AppendHeader(dst []byte, k Kind, g GroupID) []byte {
	dst = append(dst, byte(k))
	return binary.AppendUvarint(dst, uint64(g))
}

// EncodeHeader appends the envelope header to a wire.Writer.
func EncodeHeader(w *wire.Writer, k Kind, g GroupID) {
	w.Uint8(byte(k))
	w.Uint32(uint32(g))
}

// Marshal prefixes body with its kind tag and group.
func Marshal(k Kind, g GroupID, body []byte) []byte {
	out := make([]byte, 0, 6+len(body))
	out = AppendHeader(out, k, g)
	out = append(out, body...)
	return out
}

// Unmarshal splits a transport payload into kind, group and body. The body
// aliases the input.
func Unmarshal(payload []byte) (Kind, GroupID, []byte, error) {
	if len(payload) == 0 {
		return 0, 0, nil, fmt.Errorf("proto: empty payload: %w", wire.ErrTruncated)
	}
	g, n := binary.Uvarint(payload[1:])
	if n <= 0 || g > math.MaxUint32 {
		return 0, 0, nil, fmt.Errorf("proto: bad group tag: %w", wire.ErrTruncated)
	}
	return Kind(payload[0]), GroupID(g), payload[1+n:], nil
}

// --- reliable multicast wrapper ---

// RMcastMsg is the reliable-multicast header: a globally unique (Origin, Seq)
// identifier plus the wrapped inner payload (itself kind-tagged).
type RMcastMsg struct {
	Origin NodeID
	Seq    uint64
	Inner  []byte
}

// MarshalRMcast encodes m as an owned kind-tagged payload of group g.
func MarshalRMcast(g GroupID, m RMcastMsg) []byte {
	return AppendRMcast(make([]byte, 0, 16+len(m.Inner)), g, m)
}

// UnmarshalRMcast decodes the body of a KindRMcast payload. Inner aliases
// body: the wrapper is unwrapped exactly where the inner message is
// processed, and whatever outlives that processing (request payloads, relay
// buffers) is copied into owned state by its consumer.
func UnmarshalRMcast(body []byte) (RMcastMsg, error) {
	r := wire.NewReader(body)
	var m RMcastMsg
	m.Origin = NodeID(r.Int64())
	m.Seq = r.Uint64()
	m.Inner = r.BytesFieldRef()
	if err := r.Err(); err != nil {
		return RMcastMsg{}, fmt.Errorf("proto: decode rmcast: %w", err)
	}
	return m, nil
}

// --- client request ---

// MarshalRequest encodes a Request as an owned kind-tagged payload. The
// envelope group is the request's own: requests are addressed to the group
// that owns their key.
func MarshalRequest(req Request) []byte {
	return AppendRequest(make([]byte, 0, 24+len(req.Cmd)), req)
}

// UnmarshalRequest decodes the body of a KindRequest payload.
func UnmarshalRequest(body []byte) (Request, error) {
	r := wire.NewReader(body)
	req := DecodeRequest(r)
	if err := r.Err(); err != nil {
		return Request{}, fmt.Errorf("proto: decode request: %w", err)
	}
	return req, nil
}

// MarshalRead encodes a read-only Request as an owned KindRead payload. The
// body bytes are identical to MarshalRequest's; only the envelope kind
// differs.
func MarshalRead(req Request) []byte {
	return AppendRead(make([]byte, 0, 24+len(req.Cmd)), req)
}

// UnmarshalRead decodes the body of a KindRead payload; the decoded request
// has ReadOnly set.
func UnmarshalRead(body []byte) (Request, error) {
	req, err := UnmarshalRequest(body)
	if err != nil {
		return Request{}, err
	}
	req.ReadOnly = true
	return req, nil
}

// --- sequencer ordering message (Task 1a -> Task 1b) ---

// SeqOrder is the sequencer's ordering message for epoch k. It carries the
// full requests (not just identifiers) so that a replica can Opt-deliver a
// request whose R-multicast copy has not reached it yet; integrity is
// preserved by ID-based deduplication at the receiver.
//
// Ownership: a decoded SeqOrder's request commands alias the decode input
// (see Request); a receiver that retains the order beyond the handling of
// its frame (e.g. buffering a future epoch's ordering) must Clone it.
type SeqOrder struct {
	Epoch uint64
	Reqs  []Request
}

// Clone returns a deep copy of m: the Reqs slice and every command buffer
// are owned by the result. It is the copy-on-retain step for receivers that
// keep a zero-copy-decoded order alive past its input frame.
func (m SeqOrder) Clone() SeqOrder {
	out := SeqOrder{Epoch: m.Epoch}
	if len(m.Reqs) > 0 {
		out.Reqs = make([]Request, len(m.Reqs))
		for i, req := range m.Reqs {
			out.Reqs[i] = req.Clone()
		}
	}
	return out
}

// MarshalSeqOrder encodes m as an owned kind-tagged payload of group g.
func MarshalSeqOrder(g GroupID, m SeqOrder) []byte {
	return AppendSeqOrder(make([]byte, 0, 64), g, m)
}

// UnmarshalSeqOrder decodes the body of a KindSeqOrder payload. The decoded
// request commands alias body (zero-copy); see SeqOrder for the ownership
// rule.
func UnmarshalSeqOrder(body []byte) (SeqOrder, error) {
	var m SeqOrder
	if err := m.UnmarshalBody(body); err != nil {
		return SeqOrder{}, err
	}
	return m, nil
}

// UnmarshalBody decodes the body of a KindSeqOrder payload into m, reusing
// m's Reqs slice when its capacity allows — the allocation-free decode used
// by replica event loops, which keep one scratch SeqOrder and re-decode into
// it every round. The decoded request commands alias body.
func (m *SeqOrder) UnmarshalBody(body []byte) error {
	r := wire.NewReader(body)
	m.Epoch = r.Uint64()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("proto: decode seqorder: %w", err)
	}
	if n > uint64(r.Remaining()) { // each request takes >= 1 byte
		return fmt.Errorf("proto: decode seqorder: %w", wire.ErrOverflow)
	}
	m.Reqs = m.Reqs[:0]
	for i := uint64(0); i < n; i++ {
		m.Reqs = append(m.Reqs, DecodeRequest(r))
	}
	if err := r.Err(); err != nil {
		m.Reqs = m.Reqs[:0]
		return fmt.Errorf("proto: decode seqorder: %w", err)
	}
	return nil
}

// --- phase II trigger ---

// PhaseII asks all servers to run the conservative phase of epoch k. It is
// R-broadcast so that either all correct servers enter phase 2 or none does.
type PhaseII struct {
	Epoch uint64
}

// MarshalPhaseII encodes m as an owned kind-tagged payload of group g.
func MarshalPhaseII(g GroupID, m PhaseII) []byte {
	return AppendPhaseII(make([]byte, 0, 12), g, m)
}

// UnmarshalPhaseII decodes the body of a KindPhaseII payload.
func UnmarshalPhaseII(body []byte) (PhaseII, error) {
	r := wire.NewReader(body)
	m := PhaseII{Epoch: r.Uint64()}
	if err := r.Err(); err != nil {
		return PhaseII{}, fmt.Errorf("proto: decode phase2: %w", err)
	}
	return m, nil
}

// --- reply ---

// MarshalReply encodes a Reply as an owned kind-tagged payload. The envelope
// group is the replied-to request's own.
func MarshalReply(p Reply) []byte {
	return AppendReply(make([]byte, 0, 48+len(p.Result)), p)
}

// UnmarshalReply decodes the body of a KindReply payload.
func UnmarshalReply(body []byte) (Reply, error) {
	r := wire.NewReader(body)
	p := DecodeReply(r)
	if err := r.Err(); err != nil {
		return Reply{}, fmt.Errorf("proto: decode reply: %w", err)
	}
	return p, nil
}

// --- heartbeat ---

// MarshalHeartbeat encodes an owned heartbeat payload for group g. The frame
// is constant per group: steady-state senders call this once at start-up and
// resend the same slice every tick (see AppendHeartbeat).
func MarshalHeartbeat(g GroupID) []byte {
	return AppendHeartbeat(make([]byte, 0, 6), g)
}

// --- batch envelope ---

// Batch is an envelope carrying several complete kind-tagged messages as one
// transport frame. Senders use it to coalesce the optimistic hot path (many
// replies to one client, many ordering messages to one peer) into a single
// send; receivers unwrap it and process the inner messages in order. Inner
// messages must not themselves be batches.
type Batch struct {
	Msgs [][]byte
}

// MarshalBatch encodes the given kind-tagged messages as one KindBatch
// payload of group g. The caller guarantees none of the messages is itself a
// batch.
func MarshalBatch(g GroupID, msgs [][]byte) []byte {
	size := 16
	for _, m := range msgs {
		size += len(m) + 4
	}
	w := wire.NewWriter(size)
	EncodeHeader(w, KindBatch, g)
	w.FrameList(msgs)
	return w.Bytes()
}

// WalkBatch decodes the body of a KindBatch payload in place, invoking fn on
// every inner kind-tagged message without allocating. The same validation as
// UnmarshalBatch applies (no empty batches, no empty inner messages, no
// nested batches); on error, fn may already have run on a prefix of the
// messages. Each inner message aliases body.
func WalkBatch(body []byte, fn func(msg []byte)) error {
	r := wire.NewReader(body)
	seen := 0
	for r.Remaining() > 0 {
		msg := r.BytesFieldRef()
		if err := r.Err(); err != nil {
			return fmt.Errorf("proto: decode batch: %w", err)
		}
		if len(msg) == 0 {
			return fmt.Errorf("proto: decode batch: empty inner message: %w", wire.ErrTruncated)
		}
		if Kind(msg[0]) == KindBatch {
			return fmt.Errorf("proto: decode batch: nested batch: %w", wire.ErrOverflow)
		}
		fn(msg)
		seen++
	}
	if seen == 0 {
		return fmt.Errorf("proto: decode batch: empty: %w", wire.ErrTruncated)
	}
	return nil
}

// UnmarshalBatch decodes the body of a KindBatch payload. It rejects empty
// batches, empty inner messages and nested batches, so a decoded batch always
// expands into processable kind-tagged messages and recursion cannot occur.
// The inner messages alias body.
func UnmarshalBatch(body []byte) (Batch, error) {
	r := wire.NewReader(body)
	msgs := r.FrameList()
	if err := r.Err(); err != nil {
		return Batch{}, fmt.Errorf("proto: decode batch: %w", err)
	}
	if len(msgs) == 0 {
		return Batch{}, fmt.Errorf("proto: decode batch: empty: %w", wire.ErrTruncated)
	}
	for _, m := range msgs {
		if len(m) == 0 {
			return Batch{}, fmt.Errorf("proto: decode batch: empty inner message: %w", wire.ErrTruncated)
		}
		if Kind(m[0]) == KindBatch {
			return Batch{}, fmt.Errorf("proto: decode batch: nested batch: %w", wire.ErrOverflow)
		}
	}
	return Batch{Msgs: msgs}, nil
}
