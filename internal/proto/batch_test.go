package proto

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// batchBody strips the envelope header of a KindBatch payload.
func batchBody(t *testing.T, payload []byte) []byte {
	t.Helper()
	kind, _, body, err := Unmarshal(payload)
	if err != nil || kind != KindBatch {
		t.Fatalf("outer kind %v err %v", kind, err)
	}
	return body
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := [][]byte{
		MarshalHeartbeat(0),
		MarshalRequest(Request{ID: RequestID{Client: ClientID(3), Seq: 9}, Cmd: []byte("set k v")}),
		MarshalReply(Reply{Req: RequestID{Client: ClientID(3), Seq: 9}, From: 1, Epoch: 4, Weight: WeightOf(0, 1), Pos: 17, Result: []byte("ok")}),
	}
	payload := MarshalBatch(0, msgs)
	kind, g, body, err := Unmarshal(payload)
	if err != nil || kind != KindBatch || g != 0 {
		t.Fatalf("outer kind %v group %v err %v", kind, g, err)
	}
	batch, err := UnmarshalBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Msgs) != len(msgs) {
		t.Fatalf("got %d inner messages, want %d", len(batch.Msgs), len(msgs))
	}
	for i, m := range batch.Msgs {
		if !bytes.Equal(m, msgs[i]) {
			t.Errorf("inner %d: got %x want %x", i, m, msgs[i])
		}
	}
}

func TestBatchCarriesGroup(t *testing.T) {
	payload := MarshalBatch(7, [][]byte{MarshalHeartbeat(7)})
	kind, g, _, err := Unmarshal(payload)
	if err != nil || kind != KindBatch || g != 7 {
		t.Fatalf("kind %v group %v err %v", kind, g, err)
	}
}

func TestBatchSingleMessage(t *testing.T) {
	msgs := [][]byte{MarshalPhaseII(0, PhaseII{Epoch: 7})}
	batch, err := UnmarshalBatch(batchBody(t, MarshalBatch(0, msgs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Msgs) != 1 || !bytes.Equal(batch.Msgs[0], msgs[0]) {
		t.Fatalf("got %v", batch.Msgs)
	}
}

func TestBatchRejectsGarbage(t *testing.T) {
	nested := MarshalBatch(0, [][]byte{MarshalHeartbeat(0)})
	cases := map[string][]byte{
		"empty batch":      {},
		"truncated length": {0x05, 'a'},
		"huge length":      {0xff, 0xff, 0xff, 0xff, 0x7f},
		"empty inner":      {0x00},
		"nested batch":     batchBody(t, MarshalBatch(0, [][]byte{nested})),
	}
	for name, body := range cases {
		if _, err := UnmarshalBatch(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestBatchInnerAliasesInput(t *testing.T) {
	payload := MarshalBatch(0, [][]byte{MarshalHeartbeat(0), MarshalHeartbeat(0)})
	batch, err := UnmarshalBatch(batchBody(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	// The contract is aliasing (zero-copy); consumers decode inner messages
	// before the buffer can be reused. The first inner message starts right
	// after the 2-byte envelope header and the 1-byte frame length.
	payload[3] = 0xEE
	if batch.Msgs[0][0] != 0xEE {
		t.Error("inner message does not alias the envelope buffer")
	}
}

func FuzzUnmarshalBatch(f *testing.F) {
	strip := func(payload []byte) []byte {
		_, _, body, _ := Unmarshal(payload)
		return body
	}
	f.Add(strip(MarshalBatch(0, [][]byte{MarshalHeartbeat(0)})))
	f.Add(strip(MarshalBatch(3, [][]byte{MarshalPhaseII(3, PhaseII{Epoch: 1}), MarshalHeartbeat(3)})))
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x01})
	f.Fuzz(func(t *testing.T, body []byte) {
		batch, err := UnmarshalBatch(body) // must never panic
		// WalkBatch must agree with UnmarshalBatch on acceptance and, when
		// both accept, on the exact inner messages (memnet's accounting
		// walks envelopes in place with it).
		var walked [][]byte
		walkErr := WalkBatch(body, func(msg []byte) { walked = append(walked, msg) })
		if (err == nil) != (walkErr == nil) {
			t.Fatalf("WalkBatch err=%v, UnmarshalBatch err=%v", walkErr, err)
		}
		if err != nil {
			return
		}
		if len(walked) != len(batch.Msgs) {
			t.Fatalf("WalkBatch saw %d messages, UnmarshalBatch %d", len(walked), len(batch.Msgs))
		}
		for i := range walked {
			if !bytes.Equal(walked[i], batch.Msgs[i]) {
				t.Fatalf("WalkBatch message %d differs", i)
			}
		}
		for _, m := range batch.Msgs {
			if len(m) == 0 {
				t.Fatal("decoded batch contains an empty inner message")
			}
			if Kind(m[0]) == KindBatch {
				t.Fatal("decoded batch contains a nested batch")
			}
		}
		// A decoded batch must re-encode to an equivalent envelope.
		_, _, reBody, err := Unmarshal(MarshalBatch(0, batch.Msgs))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := UnmarshalBatch(reBody)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(again.Msgs) != len(batch.Msgs) {
			t.Fatalf("re-encode changed message count: %d != %d", len(again.Msgs), len(batch.Msgs))
		}
	})
}

func TestFrameListWriterReaderRoundTrip(t *testing.T) {
	frames := [][]byte{[]byte("a"), []byte("bb"), {0x01, 0x02, 0x03}}
	w := wire.NewWriter(32)
	w.FrameList(frames)
	got := wire.NewReader(w.Bytes()).FrameList()
	if len(got) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d: %x != %x", i, got[i], frames[i])
		}
	}
}
