package proto

import (
	"fmt"

	"repro/internal/wire"
)

// Catch-up messages: the recovery protocol a restarted replica runs before
// re-entering ordering for its group.
//
// After replaying its local snapshot+WAL, a recovering replica knows a
// definitive prefix of length HavePos. It probes every peer with a
// CatchupReq; a peer that is between epochs (not in phase 2, so its state is
// a pure A-delivered boundary) answers with its current epoch, its boundary
// position, and — when the prober is behind — a state snapshot and/or the
// missing suffix of the definitive command log. The prober adopts the first
// sufficient answer, joins the responder's epoch in observe mode, and forces
// an epoch boundary (PhaseII) to regain full standing.

// CatchupReq is a recovering replica's probe: "my definitive prefix has
// length HavePos; send me what I am missing."
type CatchupReq struct {
	HavePos uint64
}

// MarshalCatchupReq encodes m as an owned kind-tagged payload of group g.
func MarshalCatchupReq(g GroupID, m CatchupReq) []byte {
	w := wire.NewWriter(16)
	EncodeHeader(w, KindCatchupReq, g)
	w.Uint64(m.HavePos)
	return w.Bytes()
}

// UnmarshalCatchupReq decodes the body of a KindCatchupReq payload.
func UnmarshalCatchupReq(body []byte) (CatchupReq, error) {
	r := wire.NewReader(body)
	m := CatchupReq{HavePos: r.Uint64()}
	if err := r.Err(); err != nil {
		return CatchupReq{}, fmt.Errorf("proto: decode catchup-req: %w", err)
	}
	return m, nil
}

// CatchupResp answers a catch-up probe.
//
// Pos is the responder's definitive boundary position (number of A-delivered
// commands at its last closed epoch). When the prober is behind, Snap
// optionally carries an encoded state snapshot (empty means "replay from
// your own position") and Entries carries the definitive commands from
// FirstPos+1 through Pos in delivery order, each a full Request so the
// prober can both apply the command and record the ID for deduplication.
//
// InPhase2 responses carry no state: mid-phase-2 a responder's definitive
// prefix is about to move, and more importantly the epoch's PhaseII and
// Decide broadcasts may predate the prober's restart — adopting now could
// strand the prober in an epoch whose closing messages it will never see.
// The prober simply re-probes.
type CatchupResp struct {
	CurEpoch uint64
	InPhase2 bool
	Pos      uint64
	Snap     []byte
	FirstPos uint64
	Entries  []Request
}

// MarshalCatchupResp encodes m as an owned kind-tagged payload of group g.
func MarshalCatchupResp(g GroupID, m CatchupResp) []byte {
	size := 64 + len(m.Snap)
	for _, e := range m.Entries {
		size += 32 + len(e.Cmd)
	}
	w := wire.NewWriter(size)
	EncodeHeader(w, KindCatchupResp, g)
	w.Uint64(m.CurEpoch)
	w.Bool(m.InPhase2)
	w.Uint64(m.Pos)
	w.BytesField(m.Snap)
	w.Uint64(m.FirstPos)
	w.Uint64(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		e.Encode(w)
	}
	return w.Bytes()
}

// UnmarshalCatchupResp decodes the body of a KindCatchupResp payload. Snap
// and the entry commands alias body: the receiver applies them (machine
// restore / Apply copy what they keep) before releasing the frame.
func UnmarshalCatchupResp(body []byte) (CatchupResp, error) {
	r := wire.NewReader(body)
	var m CatchupResp
	m.CurEpoch = r.Uint64()
	m.InPhase2 = r.Bool()
	m.Pos = r.Uint64()
	m.Snap = r.BytesFieldRef()
	m.FirstPos = r.Uint64()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return CatchupResp{}, fmt.Errorf("proto: decode catchup-resp: %w", err)
	}
	if n > uint64(r.Remaining()) { // each request takes >= 1 byte
		return CatchupResp{}, fmt.Errorf("proto: decode catchup-resp: %w", wire.ErrOverflow)
	}
	for i := uint64(0); i < n; i++ {
		m.Entries = append(m.Entries, DecodeRequest(r))
	}
	if err := r.Err(); err != nil {
		return CatchupResp{}, fmt.Errorf("proto: decode catchup-resp: %w", err)
	}
	return m, nil
}
