package proto

import (
	"sync"

	"repro/internal/wire"
)

// Writer pooling and append-style marshals: the zero-allocation encode path.
//
// The original Marshal* helpers build a fresh wire.Writer (and therefore a
// fresh backing buffer) per message — two heap allocations on a path that
// runs once per protocol message. Steady-state senders avoid both:
//
//   - A single-goroutine sender (a replica event loop, a client sender loop)
//     keeps one scratch buffer or wire.Writer and encodes every outgoing
//     message of a round into it with the Append* variants below; the
//     transport.Batcher copies the bytes into its per-destination envelope
//     immediately, so the scratch is free again for the next message.
//   - Code that needs a writer transiently but has no natural place to hang
//     a scratch buffer borrows one from the shared pool with
//     GetWriter/PutWriter.
//
// Ownership rule: the slice returned by an Append* call (and by
// wire.Writer.Bytes) aliases the scratch/pooled buffer. It is valid until
// the next use of that buffer; whoever needs the bytes longer — a transport
// that queues the payload, a lazy-relay buffer — must copy them first.
// transport.Batcher.Add copies; transport.Node.Send implementations queue
// the caller's slice and therefore require an owned payload (use Marshal*).

// writerCapHint is the initial capacity of pooled writers; writers that grew
// beyond writerMaxIdle are dropped on Put so one exceptional message does not
// pin memory in the pool forever.
const (
	writerCapHint = 512
	writerMaxIdle = 64 << 10
)

var writerPool = sync.Pool{
	New: func() any { return wire.NewWriter(writerCapHint) },
}

// GetWriter borrows a reset wire.Writer from the shared pool.
func GetWriter() *wire.Writer {
	return writerPool.Get().(*wire.Writer)
}

// PutWriter returns w to the pool. The caller must not use w (or any slice
// obtained from w.Bytes()) afterwards: the buffer will be handed to another
// goroutine and overwritten.
func PutWriter(w *wire.Writer) {
	if w == nil || cap(w.Bytes()) > writerMaxIdle {
		return
	}
	w.Reset()
	writerPool.Put(w)
}

// AppendRMcast appends the kind-tagged encoding of m (group g) to dst.
func AppendRMcast(dst []byte, g GroupID, m RMcastMsg) []byte {
	w := wire.Wrap(AppendHeader(dst, KindRMcast, g))
	w.Int64(int64(m.Origin))
	w.Uint64(m.Seq)
	w.BytesField(m.Inner)
	return w.Bytes()
}

// AppendRequest appends the kind-tagged encoding of req to dst. The envelope
// group is the request's own.
func AppendRequest(dst []byte, req Request) []byte {
	w := wire.Wrap(AppendHeader(dst, KindRequest, req.ID.Group))
	req.Encode(&w)
	return w.Bytes()
}

// AppendRead appends the kind-tagged encoding of a read-only request to dst.
// The body encoding matches AppendRequest; only the envelope kind differs.
func AppendRead(dst []byte, req Request) []byte {
	w := wire.Wrap(AppendHeader(dst, KindRead, req.ID.Group))
	req.Encode(&w)
	return w.Bytes()
}

// AppendSeqOrder appends the kind-tagged encoding of m (group g) to dst.
func AppendSeqOrder(dst []byte, g GroupID, m SeqOrder) []byte {
	w := wire.Wrap(AppendHeader(dst, KindSeqOrder, g))
	w.Uint64(m.Epoch)
	w.Uint64(uint64(len(m.Reqs)))
	for _, req := range m.Reqs {
		req.Encode(&w)
	}
	return w.Bytes()
}

// AppendPhaseII appends the kind-tagged encoding of m (group g) to dst.
func AppendPhaseII(dst []byte, g GroupID, m PhaseII) []byte {
	w := wire.Wrap(AppendHeader(dst, KindPhaseII, g))
	w.Uint64(m.Epoch)
	return w.Bytes()
}

// AppendReply appends the kind-tagged encoding of p to dst. The envelope
// group is the replied-to request's own.
func AppendReply(dst []byte, p Reply) []byte {
	w := wire.Wrap(AppendHeader(dst, KindReply, p.Req.Group))
	p.Encode(&w)
	return w.Bytes()
}

// AppendHeartbeat appends a heartbeat payload for group g to dst. Heartbeat
// senders precompute the frame once per process (it is constant per group)
// and reuse it for every tick.
func AppendHeartbeat(dst []byte, g GroupID) []byte {
	return AppendHeader(dst, KindHeartbeat, g)
}
