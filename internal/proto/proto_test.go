package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNodeIDStringAndKind(t *testing.T) {
	if got := NodeID(2).String(); got != "p2" {
		t.Errorf("server id = %q, want p2", got)
	}
	if got := ClientID(0).String(); got != "c0" {
		t.Errorf("client id = %q, want c0", got)
	}
	if NodeID(3).IsClient() {
		t.Error("server classified as client")
	}
	if !ClientID(7).IsClient() {
		t.Error("client classified as server")
	}
}

func TestGroup(t *testing.T) {
	g := Group(3)
	want := []NodeID{0, 1, 2}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("Group(3) = %v, want %v", g, want)
	}
}

func TestMajoritySize(t *testing.T) {
	// ⌈(n+1)/2⌉ per the paper.
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 4}
	for n, want := range cases {
		if got := MajoritySize(n); got != want {
			t.Errorf("MajoritySize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWeightBasics(t *testing.T) {
	w := WeightOf(0, 2)
	if !w.Has(0) || !w.Has(2) || w.Has(1) {
		t.Error("WeightOf membership wrong")
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d, want 2", w.Count())
	}
	u := w.Union(WeightOf(1))
	if u.Count() != 3 {
		t.Errorf("Union count = %d, want 3", u.Count())
	}
	if got := FullWeight(3); got != WeightOf(0, 1, 2) {
		t.Errorf("FullWeight(3) = %v", got)
	}
	if FullWeight(64) != ^Weight(0) {
		t.Error("FullWeight(64) should be all ones")
	}
}

func TestWeightMajority(t *testing.T) {
	// n=3: {p,s} (2 servers) is a majority; {s} alone is not.
	if WeightOf(0).IsMajority(3) {
		t.Error("singleton weight should not be a majority of 3")
	}
	if !WeightOf(0, 1).IsMajority(3) {
		t.Error("two of three should be a majority")
	}
	// n=4: majority is 3.
	if WeightOf(0, 1).IsMajority(4) {
		t.Error("two of four should not be a majority")
	}
	if !WeightOf(0, 1, 2).IsMajority(4) {
		t.Error("three of four should be a majority")
	}
}

func TestWeightString(t *testing.T) {
	if got := WeightOf(0, 2).String(); got != "{p0,p2}" {
		t.Errorf("String = %q", got)
	}
	if got := Weight(0).String(); got != "{}" {
		t.Errorf("empty weight String = %q", got)
	}
}

func TestMarshalUnmarshalKinds(t *testing.T) {
	payload := Marshal(KindReply, 5, []byte{1, 2, 3})
	k, g, body, err := Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if k != KindReply || g != 5 || !bytes.Equal(body, []byte{1, 2, 3}) {
		t.Errorf("got kind=%v group=%v body=%v", k, g, body)
	}
	if _, _, _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) should fail")
	}
	// A kind byte with a truncated group varint is malformed.
	if _, _, _, err := Unmarshal([]byte{byte(KindReply), 0x80}); err == nil {
		t.Error("Unmarshal with unterminated group varint should fail")
	}
	// Groups above 32 bits are malformed.
	big := append([]byte{byte(KindReply)}, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, _, err := Unmarshal(big); err == nil {
		t.Error("Unmarshal with 64-bit group should fail")
	}
}

func TestGroupIDString(t *testing.T) {
	if got := GroupID(3).String(); got != "g3" {
		t.Errorf("GroupID String = %q, want g3", got)
	}
	id := RequestID{Group: 2, Client: ClientID(1), Seq: 4}
	if got := id.String(); got != "g2/c1#4" {
		t.Errorf("qualified RequestID String = %q", got)
	}
	id.Group = 0
	if got := id.String(); got != "c1#4" {
		t.Errorf("group-0 RequestID String = %q, want the paper notation", got)
	}
}

// FuzzUnmarshal checks the envelope splitter on arbitrary payloads: it must
// never panic, and whatever it accepts must round-trip through Marshal.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalHeartbeat(0))
	f.Add(Marshal(KindReply, 1<<20, []byte("body")))
	f.Add([]byte{byte(KindRMcast), 0x80})
	f.Add(MarshalRead(Request{ID: RequestID{Group: 3, Client: ClientIDBase, Seq: 1}, Cmd: []byte("get k"), ReadOnly: true}))
	f.Fuzz(func(t *testing.T, payload []byte) {
		k, g, body, err := Unmarshal(payload)
		if err != nil {
			return
		}
		k2, g2, body2, err := Unmarshal(Marshal(k, g, body))
		if err != nil || k2 != k || g2 != g || !bytes.Equal(body2, body) {
			t.Fatalf("envelope round trip: (%v,%v,%x,%v) != (%v,%v,%x)", k2, g2, body2, err, k, g, body)
		}
		if k == KindRead {
			// Whatever UnmarshalRead accepts must round-trip through
			// MarshalRead with the flag and the decoded fields preserved
			// (byte equality is too strong: the decoder tolerates
			// non-minimal varints and trailing bytes).
			req, err := UnmarshalRead(body)
			if err != nil {
				return
			}
			if !req.ReadOnly {
				t.Fatal("UnmarshalRead did not set ReadOnly")
			}
			k3, g3, body3, err := Unmarshal(MarshalRead(req))
			if err != nil || k3 != KindRead || g3 != req.ID.Group {
				t.Fatalf("read re-encode: kind=%v group=%v err=%v", k3, g3, err)
			}
			req2, err := UnmarshalRead(body3)
			if err != nil || req2.ID != req.ID || !bytes.Equal(req2.Cmd, req.Cmd) || !req2.ReadOnly {
				t.Fatalf("read round trip: %+v vs %+v (err=%v)", req2, req, err)
			}
		}
	})
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindRMcast, KindRequest, KindPhaseII, KindSeqOrder, KindReply,
		KindHeartbeat, KindEstimate, KindPropose, KindAck, KindDecide, KindBaseline,
		KindBatch, KindRead}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "kind(200)" {
		t.Error("unknown kind String wrong")
	}
}

func TestRMcastRoundTrip(t *testing.T) {
	m := RMcastMsg{Origin: ClientID(3), Seq: 42, Inner: []byte("inner")}
	payload := MarshalRMcast(9, m)
	k, g, body, err := Unmarshal(payload)
	if err != nil || k != KindRMcast || g != 9 {
		t.Fatalf("kind=%v group=%v err=%v", k, g, err)
	}
	got, err := UnmarshalRMcast(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != m.Origin || got.Seq != m.Seq || !bytes.Equal(got.Inner, m.Inner) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := Request{ID: RequestID{Group: 2, Client: ClientID(1), Seq: 9}, Cmd: []byte("push x")}
	k, g, body, err := Unmarshal(MarshalRequest(req))
	if err != nil || k != KindRequest || g != req.ID.Group {
		t.Fatalf("kind=%v group=%v err=%v", k, g, err)
	}
	got, err := UnmarshalRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || !bytes.Equal(got.Cmd, req.Cmd) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, req)
	}
}

func TestReadRoundTrip(t *testing.T) {
	req := Request{ID: RequestID{Group: 2, Client: ClientID(1), Seq: 9}, Cmd: []byte("get k"), ReadOnly: true}
	payload := MarshalRead(req)
	k, g, body, err := Unmarshal(payload)
	if err != nil || k != KindRead || g != req.ID.Group {
		t.Fatalf("kind=%v group=%v err=%v", k, g, err)
	}
	got, err := UnmarshalRead(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || !bytes.Equal(got.Cmd, req.Cmd) || !got.ReadOnly {
		t.Errorf("round trip mismatch: %+v vs %+v", got, req)
	}
	// The body bytes are exactly the KindRequest body: the envelope kind alone
	// carries the flag, so a read body decoded as an ordinary request is
	// identical but for ReadOnly.
	_, _, wbody, err := Unmarshal(MarshalRequest(Request{ID: req.ID, Cmd: req.Cmd}))
	if err != nil || !bytes.Equal(body, wbody) {
		t.Errorf("read body differs from request body: %x vs %x (err=%v)", body, wbody, err)
	}
	asWrite, err := UnmarshalRequest(body)
	if err != nil || asWrite.ReadOnly {
		t.Errorf("request decode of read body: %+v err=%v", asWrite, err)
	}
	if clone := got.Clone(); !clone.ReadOnly || !bytes.Equal(clone.Cmd, got.Cmd) {
		t.Errorf("Clone dropped ReadOnly or Cmd: %+v", clone)
	}
}

func TestSeqOrderRoundTrip(t *testing.T) {
	m := SeqOrder{
		Epoch: 7,
		Reqs: []Request{
			{ID: RequestID{Client: ClientID(0), Seq: 1}, Cmd: []byte("a")},
			{ID: RequestID{Client: ClientID(1), Seq: 2}, Cmd: nil},
		},
	}
	k, g, body, err := Unmarshal(MarshalSeqOrder(4, m))
	if err != nil || k != KindSeqOrder || g != 4 {
		t.Fatalf("kind=%v group=%v err=%v", k, g, err)
	}
	got, err := UnmarshalSeqOrder(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || len(got.Reqs) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Reqs[0].ID != m.Reqs[0].ID || !bytes.Equal(got.Reqs[0].Cmd, []byte("a")) {
		t.Error("first request mismatch")
	}
	if got.Reqs[1].ID != m.Reqs[1].ID || got.Reqs[1].Cmd != nil {
		t.Error("second request mismatch")
	}
}

func TestSeqOrderEmptyAndCorrupt(t *testing.T) {
	m := SeqOrder{Epoch: 0}
	_, _, body, _ := Unmarshal(MarshalSeqOrder(0, m))
	got, err := UnmarshalSeqOrder(body)
	if err != nil || len(got.Reqs) != 0 {
		t.Fatalf("empty seqorder: %+v err=%v", got, err)
	}
	// A count far larger than the remaining bytes must be rejected, not OOM.
	if _, err := UnmarshalSeqOrder([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("corrupt seqorder accepted")
	}
}

func TestPhaseIIRoundTrip(t *testing.T) {
	k, g, body, err := Unmarshal(MarshalPhaseII(6, PhaseII{Epoch: 11}))
	if err != nil || k != KindPhaseII || g != 6 {
		t.Fatalf("kind=%v group=%v err=%v", k, g, err)
	}
	got, err := UnmarshalPhaseII(body)
	if err != nil || got.Epoch != 11 {
		t.Fatalf("got %+v err=%v", got, err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	p := Reply{
		Req:    RequestID{Group: 3, Client: ClientID(2), Seq: 5},
		From:   NodeID(1),
		Epoch:  3,
		Weight: WeightOf(0, 1),
		Pos:    17,
		Result: []byte("y"),
	}
	k, g, body, err := Unmarshal(MarshalReply(p))
	if err != nil || k != KindReply || g != p.Req.Group {
		t.Fatalf("kind=%v group=%v err=%v", k, g, err)
	}
	got, err := UnmarshalReply(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Req != p.Req || got.From != p.From || got.Epoch != p.Epoch ||
		got.Weight != p.Weight || got.Pos != p.Pos || !bytes.Equal(got.Result, p.Result) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestHeartbeat(t *testing.T) {
	k, g, body, err := Unmarshal(MarshalHeartbeat(2))
	if err != nil || k != KindHeartbeat || g != 2 || len(body) != 0 {
		t.Fatalf("heartbeat decode: kind=%v group=%v body=%v err=%v", k, g, body, err)
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		// None of these may panic; errors are fine.
		_, _ = UnmarshalRMcast(b)
		_, _ = UnmarshalRequest(b)
		_, _ = UnmarshalSeqOrder(b)
		_, _ = UnmarshalPhaseII(b)
		_, _ = UnmarshalReply(b)
	}
}

func TestPropWeightCountMatchesNaive(t *testing.T) {
	prop := func(w uint64) bool {
		n := 0
		for i := 0; i < 64; i++ {
			if w&(1<<uint(i)) != 0 {
				n++
			}
		}
		return Weight(w).Count() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropReplyRoundTrip(t *testing.T) {
	prop := func(group uint32, client uint16, seq uint64, from uint8, epoch uint64, weight uint64, pos uint64, result []byte) bool {
		p := Reply{
			Req:    RequestID{Group: GroupID(group), Client: ClientID(int(client)), Seq: seq},
			From:   NodeID(from % 64),
			Epoch:  epoch,
			Weight: Weight(weight),
			Pos:    pos,
			Result: result,
		}
		_, _, body, err := Unmarshal(MarshalReply(p))
		if err != nil {
			return false
		}
		got, err := UnmarshalReply(body)
		if err != nil {
			return false
		}
		return got.Req == p.Req && got.From == p.From && got.Epoch == p.Epoch &&
			got.Weight == p.Weight && got.Pos == p.Pos && bytes.Equal(got.Result, p.Result)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
