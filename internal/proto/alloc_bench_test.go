package proto

import (
	"fmt"
	"testing"
)

// BenchmarkHotPathAllocs measures — and asserts — the allocation count of
// every steady-state codec operation on the request→order→opt-deliver→reply
// path. Encode uses the Append* scratch-buffer variants a replica's event
// loop uses; decode uses the zero-copy paths (BytesFieldRef-based, plus the
// reusable-SeqOrder decode). Each sub-benchmark fails if the operation
// allocates at all, so `go test -bench=HotPathAllocs -benchtime=1x` doubles
// as a CI regression gate for the zero-allocation message path.
func BenchmarkHotPathAllocs(b *testing.B) {
	const g = GroupID(3)
	req := Request{
		ID:  RequestID{Group: g, Client: ClientID(7), Seq: 42},
		Cmd: []byte("push v17"),
	}
	reply := Reply{
		Req:    req.ID,
		From:   1,
		Epoch:  9,
		Weight: WeightOf(0, 1),
		Pos:    1337,
		Result: []byte("ok"),
	}
	orderReqs := make([]Request, 16)
	for i := range orderReqs {
		r := req
		r.ID.Seq = uint64(i)
		orderReqs[i] = r
	}
	order := SeqOrder{Epoch: 9, Reqs: orderReqs}
	rmc := RMcastMsg{Origin: ClientID(7), Seq: 42, Inner: MarshalRequest(req)}

	readReq := Request{
		ID:       RequestID{Group: g, Client: ClientID(7), Seq: 43},
		Cmd:      []byte("get v17"),
		ReadOnly: true,
	}

	// Pre-encoded inputs for the decode benchmarks.
	reqPayload := MarshalRequest(req)
	readPayload := MarshalRead(readReq)
	replyPayload := MarshalReply(reply)
	orderPayload := MarshalSeqOrder(g, order)
	rmcPayload := MarshalRMcast(g, rmc)
	batchPayload := MarshalBatch(g, [][]byte{replyPayload, replyPayload, replyPayload})

	var scratch []byte
	var orderScratch SeqOrder

	cases := []struct {
		name string
		op   func()
	}{
		{"encode/request", func() { scratch = AppendRequest(scratch[:0], req) }},
		{"encode/read", func() { scratch = AppendRead(scratch[:0], readReq) }},
		{"encode/seqorder", func() { scratch = AppendSeqOrder(scratch[:0], g, order) }},
		{"encode/reply", func() { scratch = AppendReply(scratch[:0], reply) }},
		{"encode/heartbeat", func() { scratch = AppendHeartbeat(scratch[:0], g) }},
		{"encode/rmcast", func() { scratch = AppendRMcast(scratch[:0], g, rmc) }},
		{"encode/pooled-writer", func() {
			w := GetWriter()
			EncodeHeader(w, KindRequest, g)
			req.Encode(w)
			scratch = append(scratch[:0], w.Bytes()...)
			PutWriter(w)
		}},
		{"decode/request", func() {
			_, _, body, err := Unmarshal(reqPayload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := UnmarshalRequest(body); err != nil {
				b.Fatal(err)
			}
		}},
		{"decode/read", func() {
			_, _, body, err := Unmarshal(readPayload)
			if err != nil {
				b.Fatal(err)
			}
			got, err := UnmarshalRead(body)
			if err != nil {
				b.Fatal(err)
			}
			if !got.ReadOnly {
				b.Fatal("decoded read request lost its ReadOnly flag")
			}
		}},
		{"decode/seqorder", func() {
			_, _, body, err := Unmarshal(orderPayload)
			if err != nil {
				b.Fatal(err)
			}
			if err := orderScratch.UnmarshalBody(body); err != nil {
				b.Fatal(err)
			}
			if len(orderScratch.Reqs) != len(order.Reqs) {
				b.Fatalf("decoded %d reqs, want %d", len(orderScratch.Reqs), len(order.Reqs))
			}
		}},
		{"decode/reply", func() {
			_, _, body, err := Unmarshal(replyPayload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := UnmarshalReply(body); err != nil {
				b.Fatal(err)
			}
		}},
		{"decode/rmcast", func() {
			_, _, body, err := Unmarshal(rmcPayload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := UnmarshalRMcast(body); err != nil {
				b.Fatal(err)
			}
		}},
		{"decode/batch-walk", func() {
			_, _, body, err := Unmarshal(batchPayload)
			if err != nil {
				b.Fatal(err)
			}
			if err := WalkBatch(body, func(msg []byte) {
				if Kind(msg[0]) != KindReply {
					b.Fatalf("unexpected inner kind %v", Kind(msg[0]))
				}
			}); err != nil {
				b.Fatal(err)
			}
		}},
		{"roundtrip/request", func() {
			scratch = AppendRequest(scratch[:0], req)
			_, _, body, err := Unmarshal(scratch)
			if err != nil {
				b.Fatal(err)
			}
			got, err := UnmarshalRequest(body)
			if err != nil {
				b.Fatal(err)
			}
			if got.ID != req.ID {
				b.Fatalf("roundtrip ID mismatch: %v != %v", got.ID, req.ID)
			}
		}},
	}

	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tc.op() // warm up: grow scratch buffers, populate the pool
			if allocs := testing.AllocsPerRun(100, tc.op); allocs != 0 {
				b.Fatalf("%s: %v allocs/op, want 0 (zero-allocation hot path regressed)", tc.name, allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.op()
			}
		})
	}
}

// sanity check for the fixture above: the encoded forms used by the alloc
// benchmark must round-trip (guards against the benchmark silently measuring
// failed decodes).
func TestHotPathAllocFixturesRoundTrip(t *testing.T) {
	g := GroupID(3)
	req := Request{ID: RequestID{Group: g, Client: ClientID(1), Seq: 5}, Cmd: []byte("x")}
	payload := AppendRequest(nil, req)
	kind, group, body, err := Unmarshal(payload)
	if err != nil || kind != KindRequest || group != g {
		t.Fatalf("envelope: kind=%v group=%v err=%v", kind, group, err)
	}
	got, err := UnmarshalRequest(body)
	if err != nil || got.ID != req.ID || string(got.Cmd) != "x" {
		t.Fatalf("roundtrip: %+v err=%v", got, err)
	}
	if fmt.Sprintf("%p", &payload[0]) == "" {
		t.Fatal("unreachable")
	}
}
