// Package proto defines the identities, requests, replies, weights and wire
// messages shared by every protocol in this repository (the OAR protocol of
// Felber & Schiper, the fixed-sequencer baseline, the conservative
// consensus-based baseline, reliable multicast, the failure detector and the
// consensus engine).
//
// Terminology follows the paper: the replicated service is run by server
// processes Π = {p0, ..., pn-1}; clients are outside Π. A reply carries a
// weight — the set of servers known to endorse that reply — encoded as a
// bitmask over server ranks.
package proto

import (
	"fmt"

	"repro/internal/wire"
)

// GroupID identifies one independent OAR ordering group (a shard of the
// keyspace). Every wire payload is tagged with the group it belongs to, so a
// process can cheaply drop traffic that was routed to the wrong group. The
// single-group system is group 0.
type GroupID uint32

// String returns "g<id>".
func (g GroupID) String() string { return fmt.Sprintf("g%d", uint32(g)) }

// NodeID identifies a process (server or client) in the system. Server
// processes use their rank in Π (0..n-1); clients use IDs ≥ ClientIDBase.
// NodeIDs are scoped to one group: replica p0 of group g0 and replica p0 of
// group g1 are distinct processes.
type NodeID int32

// ClientIDBase is the first NodeID used for client processes. Server ranks
// are always below it.
const ClientIDBase NodeID = 1 << 16

// IsClient reports whether id denotes a client process.
func (id NodeID) IsClient() bool { return id >= ClientIDBase }

// String returns "p<rank>" for servers and "c<index>" for clients, matching
// the paper's notation.
func (id NodeID) String() string {
	if id.IsClient() {
		return fmt.Sprintf("c%d", int32(id-ClientIDBase))
	}
	return fmt.Sprintf("p%d", int32(id))
}

// ClientID returns the NodeID of the i-th client.
func ClientID(i int) NodeID { return ClientIDBase + NodeID(i) }

// Group returns the server group Π = {p0, ..., pn-1}.
func Group(n int) []NodeID {
	g := make([]NodeID, n)
	for i := range g {
		g[i] = NodeID(i)
	}
	return g
}

// MajoritySize returns ⌈(n+1)/2⌉, the quorum size used throughout the paper
// (client weight quorum, consensus majority, Cnsv-order majority).
func MajoritySize(n int) int { return (n + 2) / 2 }

// Weight is the set of servers endorsing a reply, as a bitmask over server
// ranks (|Π| ≤ 64). An optimistic reply from server p carries {p, s} (or {s}
// if p is the sequencer s); a conservative reply carries all of Π.
type Weight uint64

// MaxGroupSize is the largest supported |Π|, bounded by the Weight bitmask.
const MaxGroupSize = 64

// WeightOf returns the weight containing exactly the given servers.
func WeightOf(servers ...NodeID) Weight {
	var w Weight
	for _, s := range servers {
		w = w.Add(s)
	}
	return w
}

// FullWeight returns the weight Π for a group of n servers.
func FullWeight(n int) Weight {
	if n >= MaxGroupSize {
		return ^Weight(0)
	}
	return Weight(1)<<uint(n) - 1
}

// Add returns w ∪ {server}.
func (w Weight) Add(server NodeID) Weight { return w | 1<<uint(server) }

// Has reports whether server ∈ w.
func (w Weight) Has(server NodeID) bool { return w&(1<<uint(server)) != 0 }

// Union returns w ∪ x.
func (w Weight) Union(x Weight) Weight { return w | x }

// Count returns |w|.
func (w Weight) Count() int {
	n := 0
	for x := w; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// IsMajority reports whether |w| ≥ ⌈(n+1)/2⌉ for a group of n servers.
func (w Weight) IsMajority(n int) bool { return w.Count() >= MajoritySize(n) }

// String renders the weight as a set of server names.
func (w Weight) String() string {
	out := "{"
	first := true
	for i := 0; i < MaxGroupSize; i++ {
		if w.Has(NodeID(i)) {
			if !first {
				out += ","
			}
			out += NodeID(i).String()
			first = false
		}
	}
	return out + "}"
}

// RequestID uniquely identifies a client request across the whole system:
// the ordering group that owns the request's key, the issuing client, and a
// client-local sequence number. The Group qualification is what keeps
// identities unique when several groups run side by side — each group has its
// own client index space.
type RequestID struct {
	Group  GroupID
	Client NodeID
	Seq    uint64
}

// String implements fmt.Stringer. Group 0 (the single-group system) keeps
// the paper's plain "c0#1" notation; other groups are prefixed "g2/c0#1".
func (r RequestID) String() string {
	if r.Group == 0 {
		return fmt.Sprintf("%s#%d", r.Client, r.Seq)
	}
	return fmt.Sprintf("%s/%s#%d", r.Group, r.Client, r.Seq)
}

// Request is a client request: a unique ID plus an opaque command for the
// replicated state machine.
//
// Ownership: a decoded Request's Cmd aliases the decode input (zero-copy).
// It is valid only while the input frame is; a receiver that retains the
// request past the handling of its frame — buffering it in a payloads map,
// a future-epoch ordering buffer — must Clone it first (copy-on-retain).
// Consuming the command inside the handling of the frame (applying it to
// the state machine, re-encoding it into an outgoing round buffer) needs no
// copy.
type Request struct {
	ID  RequestID
	Cmd []byte
	// ReadOnly marks a request eligible for the read fast path: answered
	// from the optimistic prefix without taking a position in the definitive
	// order. The flag lives in the envelope kind (KindRead vs KindRequest),
	// not in the body encoding, so request bodies embedded in SeqOrder and
	// consensus values are unchanged on the wire; Encode/DecodeRequest do not
	// carry it. A read that falls back to the ordered path is re-submitted
	// with the flag cleared.
	ReadOnly bool
}

// Clone returns a copy of r whose Cmd is owned by the result — the
// copy-on-retain step for receivers that keep a decoded request alive past
// its input frame.
func (r Request) Clone() Request {
	if len(r.Cmd) == 0 {
		r.Cmd = nil
		return r
	}
	cmd := make([]byte, len(r.Cmd))
	copy(cmd, r.Cmd)
	r.Cmd = cmd
	return r
}

// Encode appends the request to w.
func (r Request) Encode(w *wire.Writer) {
	w.Uint32(uint32(r.ID.Group))
	w.Int64(int64(r.ID.Client))
	w.Uint64(r.ID.Seq)
	w.BytesField(r.Cmd)
}

// DecodeRequest reads a Request from r. Cmd aliases the reader's input (see
// Request for the ownership rule).
func DecodeRequest(r *wire.Reader) Request {
	var req Request
	req.ID.Group = GroupID(r.Uint32())
	req.ID.Client = NodeID(r.Int64())
	req.ID.Seq = r.Uint64()
	req.Cmd = r.BytesFieldRef()
	return req
}

// Reply is a server's response to a client request. Pos is the position at
// which the request was processed in the server's delivery order (the proofs
// in Appendix A use exactly this as the reply value); Result is the
// application-level result. Epoch and Weight implement the client adoption
// rule of Figure 5.
//
// Ownership: a decoded Reply's Result aliases the decode input (zero-copy).
// A client that retains the reply past the handling of its frame — the
// per-epoch accumulation of Figure 5, the adopted reply handed to the
// invoking goroutine — must Clone it first (copy-on-retain).
type Reply struct {
	Req    RequestID
	From   NodeID
	Epoch  uint64
	Weight Weight
	Pos    uint64
	Result []byte
}

// Encode appends the reply to w.
func (p Reply) Encode(w *wire.Writer) {
	w.Uint32(uint32(p.Req.Group))
	w.Int64(int64(p.Req.Client))
	w.Uint64(p.Req.Seq)
	w.Int64(int64(p.From))
	w.Uint64(p.Epoch)
	w.Uint64(uint64(p.Weight))
	w.Uint64(p.Pos)
	w.BytesField(p.Result)
}

// Clone returns a copy of p whose Result is owned by the result — the
// copy-on-retain step for clients that keep a decoded reply alive past its
// input frame (which may be a pooled buffer about to be recycled).
func (p Reply) Clone() Reply {
	if len(p.Result) == 0 {
		p.Result = nil
		return p
	}
	res := make([]byte, len(p.Result))
	copy(res, p.Result)
	p.Result = res
	return p
}

// DecodeReply reads a Reply from r. Result aliases the reader's input (see
// Reply for the ownership rule).
func DecodeReply(r *wire.Reader) Reply {
	var p Reply
	p.Req.Group = GroupID(r.Uint32())
	p.Req.Client = NodeID(r.Int64())
	p.Req.Seq = r.Uint64()
	p.From = NodeID(r.Int64())
	p.Epoch = r.Uint64()
	p.Weight = Weight(r.Uint64())
	p.Pos = r.Uint64()
	p.Result = r.BytesFieldRef()
	return p
}
