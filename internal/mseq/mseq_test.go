package mseq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func seq(xs ...int) Seq[int] { return New(xs...) }

func TestNewAndClone(t *testing.T) {
	s := seq(1, 2, 3)
	c := s.Clone()
	if !Equal(s, c) {
		t.Fatalf("clone mismatch: %v vs %v", s, c)
	}
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	if New[int]() != nil {
		t.Fatal("New() should be nil (empty sequence)")
	}
	if Seq[int](nil).Clone() != nil {
		t.Fatal("Clone of empty should be nil")
	}
}

func TestConcat(t *testing.T) {
	tests := []struct {
		name    string
		a, b, w Seq[int]
	}{
		{"both empty", nil, nil, nil},
		{"left empty", nil, seq(1, 2), seq(1, 2)},
		{"right empty", seq(1, 2), nil, seq(1, 2)},
		{"disjoint", seq(1, 2), seq(3, 4), seq(1, 2, 3, 4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Concat(tt.a, tt.b); !Equal(got, tt.w) {
				t.Errorf("Concat(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.w)
			}
		})
	}
}

func TestConcatDoesNotAlias(t *testing.T) {
	a := seq(1, 2)
	got := Concat(a, nil)
	got[0] = 42
	if a[0] != 1 {
		t.Fatal("Concat result aliases input")
	}
}

func TestMinus(t *testing.T) {
	tests := []struct {
		name    string
		a, b, w Seq[int]
	}{
		{"empty minus empty", nil, nil, nil},
		{"empty minus any", nil, seq(1), nil},
		{"any minus empty", seq(1, 2), nil, seq(1, 2)},
		{"remove middle", seq(1, 2, 3), seq(2), seq(1, 3)},
		{"remove all", seq(1, 2), seq(2, 1), nil},
		{"remove none", seq(1, 2), seq(3, 4), seq(1, 2)},
		{"order preserved", seq(5, 4, 3, 2, 1), seq(4, 2), seq(5, 3, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Minus(tt.a, tt.b); !Equal(got, tt.w) {
				t.Errorf("Minus(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.w)
			}
		})
	}
}

func TestCommonPrefix(t *testing.T) {
	tests := []struct {
		name string
		in   []Seq[int]
		want Seq[int]
	}{
		{"no args", nil, nil},
		{"single", []Seq[int]{seq(1, 2)}, seq(1, 2)},
		{"identical", []Seq[int]{seq(1, 2), seq(1, 2)}, seq(1, 2)},
		{"prefix pair", []Seq[int]{seq(1, 2, 3), seq(1, 2)}, seq(1, 2)},
		{"diverge", []Seq[int]{seq(1, 2, 3), seq(1, 9, 3)}, seq(1)},
		{"nothing common", []Seq[int]{seq(1), seq(2)}, nil},
		{"three way", []Seq[int]{seq(1, 2, 3, 4), seq(1, 2, 9), seq(1, 2, 3)}, seq(1, 2)},
		{"with empty", []Seq[int]{seq(1, 2), nil}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CommonPrefix(tt.in...); !Equal(got, tt.want) {
				t.Errorf("CommonPrefix(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMerge(t *testing.T) {
	tests := []struct {
		name string
		in   []Seq[int]
		want Seq[int]
	}{
		{"none", nil, nil},
		{"single", []Seq[int]{seq(1, 2)}, seq(1, 2)},
		{"disjoint", []Seq[int]{seq(1), seq(2)}, seq(1, 2)},
		{"overlap keeps first", []Seq[int]{seq(1, 2), seq(2, 3)}, seq(1, 2, 3)},
		{"paper recursive def", []Seq[int]{seq(3, 1), seq(1, 2), seq(2, 4)}, seq(3, 1, 2, 4)},
		{"all duplicate", []Seq[int]{seq(1), seq(1), seq(1)}, seq(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Merge(tt.in...); !Equal(got, tt.want) {
				t.Errorf("Merge(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestPrefixSuffix(t *testing.T) {
	s := seq(1, 2, 3, 4)
	if !s.HasPrefix(nil) || !s.HasPrefix(seq(1, 2)) || !s.HasPrefix(s) {
		t.Error("HasPrefix false negatives")
	}
	if s.HasPrefix(seq(2)) || s.HasPrefix(seq(1, 2, 3, 4, 5)) {
		t.Error("HasPrefix false positives")
	}
	if !s.HasSuffix(nil) || !s.HasSuffix(seq(3, 4)) || !s.HasSuffix(s) {
		t.Error("HasSuffix false negatives")
	}
	if s.HasSuffix(seq(1)) || s.HasSuffix(seq(0, 1, 2, 3, 4)) {
		t.Error("HasSuffix false positives")
	}
}

func TestContainsIndexSet(t *testing.T) {
	s := seq(10, 20, 30)
	if !s.Contains(20) || s.Contains(99) {
		t.Error("Contains wrong")
	}
	if s.Index(30) != 2 || s.Index(99) != -1 {
		t.Error("Index wrong")
	}
	set := s.Set()
	if len(set) != 3 {
		t.Errorf("Set size = %d, want 3", len(set))
	}
}

func TestIntersects(t *testing.T) {
	if Intersects(seq(1, 2), seq(3, 4)) {
		t.Error("disjoint sequences reported as intersecting")
	}
	if !Intersects(seq(1, 2), seq(2, 3)) {
		t.Error("overlapping sequences reported as disjoint")
	}
	if Intersects[int](nil, seq(1)) || Intersects(seq(1), nil) {
		t.Error("empty sequence intersects something")
	}
}

func TestAppendNoAlias(t *testing.T) {
	s := seq(1, 2)
	a := s.Append(3)
	b := s.Append(4)
	if !Equal(a, seq(1, 2, 3)) || !Equal(b, seq(1, 2, 4)) {
		t.Fatalf("Append aliasing: a=%v b=%v", a, b)
	}
}

func TestNoDuplicates(t *testing.T) {
	if !seq(1, 2, 3).NoDuplicates() {
		t.Error("distinct sequence reported duplicated")
	}
	if seq(1, 2, 1).NoDuplicates() {
		t.Error("duplicate not detected")
	}
	if !Seq[int](nil).NoDuplicates() {
		t.Error("empty sequence reported duplicated")
	}
}

// --- property-based tests (testing/quick) ---

// genSeq builds a duplicate-free random sequence from a small alphabet so
// that overlaps are common.
func genSeq(r *rand.Rand) Seq[int] {
	perm := r.Perm(12)
	n := r.Intn(len(perm) + 1)
	return New(perm[:n]...)
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genSeq(r))
			}
		},
	}
}

func TestPropMinusThenConcatPartition(t *testing.T) {
	// (s ⊖ t) ⊕ (s ∩-order t) is a permutation-free partition of s:
	// every element of s is in exactly one part, order preserved per part.
	prop := func(s, x Seq[int]) bool {
		kept := Minus(s, x)
		removed := Minus(s, kept)
		if kept.Len()+removed.Len() != s.Len() {
			return false
		}
		for _, e := range kept {
			if x.Contains(e) {
				return false
			}
		}
		for _, e := range removed {
			if !x.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropUndoLegalityShape(t *testing.T) {
	// The Cnsv-order undo-legality identity: for any s and any prefix cut,
	// (s ⊖ bad) ⊕ bad == s when bad is a suffix of s.
	prop := func(s Seq[int]) bool {
		for cut := 0; cut <= s.Len(); cut++ {
			bad := s[cut:].Clone()
			if !Equal(Concat(Minus(s, bad), bad), s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropCommonPrefixIsPrefix(t *testing.T) {
	prop := func(a, b Seq[int]) bool {
		p := CommonPrefix(a, b)
		return a.HasPrefix(p) && b.HasPrefix(p)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropCommonPrefixMaximal(t *testing.T) {
	prop := func(a, b Seq[int]) bool {
		p := CommonPrefix(a, b)
		n := p.Len()
		// One longer must not be a common prefix.
		if n < a.Len() && n < b.Len() && a[n] == b[n] {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropMergeNoDuplicates(t *testing.T) {
	prop := func(a, b, c Seq[int]) bool {
		return Merge(a, b, c).NoDuplicates()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropMergeContainsAll(t *testing.T) {
	prop := func(a, b Seq[int]) bool {
		m := Merge(a, b)
		for _, e := range a {
			if !m.Contains(e) {
				return false
			}
		}
		for _, e := range b {
			if !m.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropMergeMatchesRecursiveDefinition(t *testing.T) {
	// ⊎(s1,...,si+1) = ⊎(s1,...,si) ⊕ (si+1 ⊖ ⊎(s1,...,si))
	prop := func(a, b, c Seq[int]) bool {
		recursive := Concat(Merge(a, b), Minus(c, Merge(a, b)))
		return Equal(Merge(a, b, c), recursive)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropMinusIdempotent(t *testing.T) {
	prop := func(a, b Seq[int]) bool {
		once := Minus(a, b)
		return Equal(once, Minus(once, b))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropConcatAssociative(t *testing.T) {
	prop := func(a, b, c Seq[int]) bool {
		return Equal(Concat(Concat(a, b), c), Concat(a, Concat(b, c)))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func BenchmarkMinus(b *testing.B) {
	s := make(Seq[int], 1024)
	for i := range s {
		s[i] = i
	}
	x := make(Seq[int], 512)
	for i := range x {
		x[i] = i * 2
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Minus(s, x)
	}
}

func BenchmarkMerge(b *testing.B) {
	var seqs []Seq[int]
	for j := 0; j < 8; j++ {
		s := make(Seq[int], 256)
		for i := range s {
			s[i] = i + j*128
		}
		seqs = append(seqs, s)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Merge(seqs...)
	}
}
