// Package mseq implements the message-sequence algebra of Section 5.1 of
// "Optimistic Active Replication" (Felber & Schiper, ICDCS 2001).
//
// The paper manipulates sequences of messages with four operators:
//
//	seq1 ⊕ seq2   concatenation                      -> Concat
//	seq1 ⊖ seq2   elements of seq1 not in seq2       -> Minus
//	⊓(seq1,...)   longest common prefix              -> CommonPrefix
//	⊎(seq1,...)   append-all, removing duplicates    -> Merge
//
// Sequences are generic over any comparable element type; the OAR protocol
// instantiates them with message identifiers. All operations are
// non-destructive: they return fresh slices and never alias their inputs,
// so a Seq stored in protocol state cannot be mutated through a result.
package mseq

// Seq is an ordered sequence of distinct elements. The zero value (nil) is
// the empty sequence ε and is ready to use. Protocol code maintains the
// invariant that a Seq contains no duplicates; the operations in this
// package preserve that invariant (and Merge enforces it).
type Seq[T comparable] []T

// New returns a sequence containing the given elements in order.
func New[T comparable](elems ...T) Seq[T] {
	if len(elems) == 0 {
		return nil
	}
	s := make(Seq[T], len(elems))
	copy(s, elems)
	return s
}

// Clone returns an independent copy of s.
func (s Seq[T]) Clone() Seq[T] {
	if len(s) == 0 {
		return nil
	}
	out := make(Seq[T], len(s))
	copy(out, s)
	return out
}

// IsEmpty reports whether s is the empty sequence ε.
func (s Seq[T]) IsEmpty() bool { return len(s) == 0 }

// Len returns the number of elements in s.
func (s Seq[T]) Len() int { return len(s) }

// Contains reports whether x is an element of s.
func (s Seq[T]) Contains(x T) bool {
	for _, e := range s {
		if e == x {
			return true
		}
	}
	return false
}

// Index returns the zero-based position of x in s, or -1 if absent.
func (s Seq[T]) Index(x T) int {
	for i, e := range s {
		if e == x {
			return i
		}
	}
	return -1
}

// Set returns the elements of s as a set, implementing the paper's implicit
// sequence-to-set conversion used with the ∩, ∪, ∈ operators.
func (s Seq[T]) Set() map[T]struct{} {
	set := make(map[T]struct{}, len(s))
	for _, e := range s {
		set[e] = struct{}{}
	}
	return set
}

// Concat returns s ⊕ t: all elements of s followed by all elements of t.
func Concat[T comparable](s, t Seq[T]) Seq[T] {
	if len(s) == 0 {
		return t.Clone()
	}
	if len(t) == 0 {
		return s.Clone()
	}
	out := make(Seq[T], 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Minus returns s ⊖ t: the elements of s, in order, that do not appear in t.
func Minus[T comparable](s, t Seq[T]) Seq[T] {
	if len(s) == 0 {
		return nil
	}
	if len(t) == 0 {
		return s.Clone()
	}
	exclude := t.Set()
	out := make(Seq[T], 0, len(s))
	for _, e := range s {
		if _, ok := exclude[e]; !ok {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// CommonPrefix returns ⊓(seqs...): the longest sequence that is a common
// prefix of every argument. With no arguments it returns ε.
func CommonPrefix[T comparable](seqs ...Seq[T]) Seq[T] {
	if len(seqs) == 0 {
		return nil
	}
	prefix := seqs[0]
	for _, s := range seqs[1:] {
		n := min(len(prefix), len(s))
		i := 0
		for i < n && prefix[i] == s[i] {
			i++
		}
		prefix = prefix[:i]
		if len(prefix) == 0 {
			return nil
		}
	}
	return prefix.Clone()
}

// Merge returns ⊎(seqs...): the concatenation of all sequences with
// duplicates removed, keeping the first occurrence of each element. This is
// the paper's recursive definition
//
//	⊎(s1) = s1
//	⊎(s1,...,si+1) = ⊎(s1,...,si) ⊕ (si+1 ⊖ ⊎(s1,...,si))
//
// computed iteratively.
func Merge[T comparable](seqs ...Seq[T]) Seq[T] {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	if total == 0 {
		return nil
	}
	seen := make(map[T]struct{}, total)
	out := make(Seq[T], 0, total)
	for _, s := range seqs {
		for _, e := range s {
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// HasPrefix reports whether p is a prefix of s.
func (s Seq[T]) HasPrefix(p Seq[T]) bool {
	if len(p) > len(s) {
		return false
	}
	for i, e := range p {
		if s[i] != e {
			return false
		}
	}
	return true
}

// HasSuffix reports whether p is a suffix of s.
func (s Seq[T]) HasSuffix(p Seq[T]) bool {
	if len(p) > len(s) {
		return false
	}
	off := len(s) - len(p)
	for i, e := range p {
		if s[off+i] != e {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements in the same order.
func Equal[T comparable](s, t Seq[T]) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅ under the implicit set conversion.
func Intersects[T comparable](s, t Seq[T]) bool {
	if len(s) == 0 || len(t) == 0 {
		return false
	}
	small, large := s, t
	if len(small) > len(large) {
		small, large = large, small
	}
	set := small.Set()
	for _, e := range large {
		if _, ok := set[e]; ok {
			return true
		}
	}
	return false
}

// Append returns s with x appended (s ⊕ {x}), as a fresh sequence.
func (s Seq[T]) Append(x T) Seq[T] {
	out := make(Seq[T], 0, len(s)+1)
	out = append(out, s...)
	out = append(out, x)
	return out
}

// NoDuplicates reports whether every element of s occurs exactly once.
func (s Seq[T]) NoDuplicates() bool {
	seen := make(map[T]struct{}, len(s))
	for _, e := range s {
		if _, ok := seen[e]; ok {
			return false
		}
		seen[e] = struct{}{}
	}
	return true
}
