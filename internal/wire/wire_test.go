package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.Uint64(0)
	w.Uint64(1)
	w.Uint64(math.MaxUint64)
	w.Int64(-1)
	w.Int64(math.MinInt64)
	w.Int64(math.MaxInt64)
	w.Uint8(0xAB)
	w.Bool(true)
	w.Bool(false)

	r := NewReader(w.Bytes())
	if got := r.Uint64(); got != 0 {
		t.Errorf("Uint64 = %d, want 0", got)
	}
	if got := r.Uint64(); got != 1 {
		t.Errorf("Uint64 = %d, want 1", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d, want max", got)
	}
	if got := r.Int64(); got != -1 {
		t.Errorf("Int64 = %d, want -1", got)
	}
	if got := r.Int64(); got != math.MinInt64 {
		t.Errorf("Int64 = %d, want min", got)
	}
	if got := r.Int64(); got != math.MaxInt64 {
		t.Errorf("Int64 = %d, want max", got)
	}
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %x, want ab", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestRoundTripBytesAndString(t *testing.T) {
	w := NewWriter(0)
	w.BytesField(nil)
	w.BytesField([]byte{1, 2, 3})
	w.String("")
	w.String("héllo")

	r := NewReader(w.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("empty bytes = %v, want nil", got)
	}
	if got := r.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty string = %q", got)
	}
	if got := r.String(); got != "héllo" {
		t.Errorf("string = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRoundTripUint32(t *testing.T) {
	w := NewWriter(16)
	for _, v := range []uint32{0, 1, 127, 128, math.MaxUint32} {
		w.Uint32(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range []uint32{0, 1, 127, 128, math.MaxUint32} {
		if got := r.Uint32(); got != want {
			t.Errorf("Uint32 = %d, want %d", got, want)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUint32Overflow(t *testing.T) {
	w := NewWriter(16)
	w.Uint64(uint64(math.MaxUint32) + 1)
	r := NewReader(w.Bytes())
	if got := r.Uint32(); got != 0 {
		t.Errorf("overflowing Uint32 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", r.Err())
	}
}

// FuzzReader feeds arbitrary bytes to every decoder primitive: none may
// panic, and a decoded Uint32 must always round-trip through Writer.Uint32.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x03, 'a', 'b', 'c'})
	w := NewWriter(16)
	w.Uint32(12345)
	w.BytesField([]byte("frame"))
	f.Add(w.Bytes())
	f.Fuzz(func(t *testing.T, in []byte) {
		r := NewReader(in)
		for r.Err() == nil && r.Remaining() > 0 {
			switch r.Remaining() % 6 {
			case 0:
				r.Uint64()
			case 1:
				r.Int64()
			case 2:
				if v := r.Uint32(); r.Err() == nil {
					w := NewWriter(8)
					w.Uint32(v)
					if got := NewReader(w.Bytes()).Uint32(); got != v {
						t.Fatalf("Uint32 round trip: %d != %d", got, v)
					}
				}
			case 3:
				r.BytesField()
			case 4:
				r.Uint8()
			case 5:
				r.FrameList()
			}
		}
	})
}

func TestBytesFieldDoesNotAliasInput(t *testing.T) {
	w := NewWriter(0)
	w.BytesField([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.BytesField()
	buf[1] = 0 // corrupt the underlying buffer after decode
	if got[0] != 9 {
		t.Fatal("decoded bytes alias the input buffer")
	}
}

func TestTruncatedInputs(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(300)
	w.BytesField([]byte("abcdef"))
	full := w.Bytes()

	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uint64()
		r.BytesField()
		if r.Err() == nil {
			t.Errorf("cut=%d: expected error on truncated input", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	if r.Uint64() != 0 {
		t.Error("read after end should return zero")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// All subsequent reads must keep returning zero values, not panic.
	if r.Uint8() != 0 || r.Bool() || r.BytesField() != nil || r.String() != "" || r.Int64() != 0 {
		t.Error("sticky error reader returned non-zero values")
	}
}

func TestOverflowLengthPrefix(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(uint64(MaxBytesLen) + 1)
	r := NewReader(w.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("got %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", r.Err())
	}
}

func TestLengthLongerThanInput(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(10) // claims 10 bytes follow
	w.Raw([]byte{1, 2})
	r := NewReader(w.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("got %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(42)
	if w.Len() == 0 {
		t.Fatal("writer empty after append")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("writer not empty after Reset")
	}
	w.Uint64(7)
	r := NewReader(w.Bytes())
	if r.Uint64() != 7 {
		t.Fatal("reuse after Reset failed")
	}
}

func TestDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	// A decoder must survive arbitrary input without panicking.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		r := NewReader(b)
		for r.Err() == nil && r.Remaining() > 0 {
			switch rng.Intn(4) {
			case 0:
				r.Uint64()
			case 1:
				r.Int64()
			case 2:
				r.BytesField()
			case 3:
				r.Uint8()
			}
		}
	}
}

func TestPropRoundTripRandomRecords(t *testing.T) {
	prop := func(a uint64, b int64, c []byte, d string, e bool) bool {
		w := NewWriter(0)
		w.Uint64(a)
		w.Int64(b)
		w.BytesField(c)
		w.String(d)
		w.Bool(e)

		r := NewReader(w.Bytes())
		ga, gb, gc, gd, ge := r.Uint64(), r.Int64(), r.BytesField(), r.String(), r.Bool()
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		return ga == a && gb == b && bytes.Equal(gc, c) && gd == d && ge == e
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSmallRecord(b *testing.B) {
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(96)
		w.Uint64(uint64(i))
		w.Uint64(12345)
		w.BytesField(payload)
	}
}

func BenchmarkDecodeSmallRecord(b *testing.B) {
	w := NewWriter(96)
	w.Uint64(7)
	w.Uint64(12345)
	w.BytesField(make([]byte, 64))
	buf := w.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		r.Uint64()
		r.Uint64()
		r.BytesField()
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

func TestFrameListRoundTrip(t *testing.T) {
	frames := [][]byte{[]byte("x"), []byte("yz"), bytes.Repeat([]byte{7}, 300)}
	w := NewWriter(16)
	w.FrameList(frames)
	r := NewReader(w.Bytes())
	got := r.FrameList()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestFrameListTruncatedAndOverflow(t *testing.T) {
	// A frame length running past the end of the input must fail cleanly,
	// without large allocations or panics.
	for _, in := range [][]byte{
		{0x05, 'a'},                // frame claims 5 bytes, 1 present
		{0xff, 0xff, 0xff, 0x7f},   // absurd length prefix
		{0x01, 'a', 0x02, 'b'},     // second frame truncated
		append([]byte{0x80}, 0x80), // unterminated varint
	} {
		r := NewReader(in)
		if got := r.FrameList(); got != nil || r.Err() == nil {
			t.Errorf("input %x: frames=%v err=%v, want failure", in, got, r.Err())
		}
	}
}

func TestBytesFieldRefAliasesInput(t *testing.T) {
	w := NewWriter(8)
	w.BytesField([]byte("abc"))
	in := w.Bytes()
	ref := NewReader(in).BytesFieldRef()
	in[1] = 'Z'
	if string(ref) != "Zbc" {
		t.Errorf("BytesFieldRef does not alias its input: %q", ref)
	}
}
