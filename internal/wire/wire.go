// Package wire provides the low-level binary encoding used by every protocol
// message in this repository. The format is deliberately simple: unsigned
// varints for integers, length-prefixed byte strings, and no reflection, so
// encoding sits well under a microsecond for typical protocol messages.
//
// Encoders never fail; decoders return ErrTruncated or ErrOverflow on
// malformed input and are safe to run on adversarial bytes (fuzz-tested).
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// Encoding errors.
var (
	// ErrTruncated is returned when the input ends before a complete value.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrOverflow is returned when a length prefix or varint exceeds sane bounds.
	ErrOverflow = errors.New("wire: length overflow")
)

// MaxBytesLen bounds any single length-prefixed byte string (16 MiB). It
// protects decoders from allocating unbounded memory on corrupt input.
const MaxBytesLen = 16 << 20

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Wrap returns a Writer that appends to dst (sharing its backing array).
// It is the zero-allocation bridge between the Encode methods (which take a
// *Writer) and callers that accumulate into a reusable byte slice: wrap the
// scratch slice, encode, and take Bytes() as the extended slice. The returned
// value is meant to live on the caller's stack.
func Wrap(dst []byte) Writer { return Writer{buf: dst} }

// Bytes returns the encoded bytes. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint64 appends v as an unsigned varint.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Int64 appends v using zig-zag varint encoding.
func (w *Writer) Int64(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Uint32 appends v as an unsigned varint. It is the codec of small bounded
// identifiers (group IDs, rounds): one byte for values below 128.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.AppendUvarint(w.buf, uint64(v))
}

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) {
	w.buf = append(w.buf, v)
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Bytes appends b with a varint length prefix.
func (w *Writer) BytesField(b []byte) {
	w.Uint64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s with a varint length prefix.
func (w *Writer) String(s string) {
	w.Uint64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// FrameList appends a list of length-prefixed byte strings — the envelope
// format of batched messages: each frame as a BytesField, running to the end
// of the payload with no count prefix. The count-less format is what lets
// senders build an envelope incrementally, appending frames to a reusable
// buffer as they are produced.
func (w *Writer) FrameList(frames [][]byte) {
	for _, f := range frames {
		w.BytesField(f)
	}
}

// Raw appends b verbatim, without a length prefix.
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Reader decodes a message produced by Writer. Methods record the first
// error; once an error occurs all subsequent reads return zero values, so
// callers may decode a full struct and check Err once (the "sticky error"
// pattern).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uint64 decodes an unsigned varint.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Int64 decodes a zig-zag varint.
func (r *Reader) Int64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Uint32 decodes an unsigned varint written by Writer.Uint32. Values that do
// not fit in 32 bits fail with ErrOverflow.
func (r *Reader) Uint32() uint32 {
	v := r.Uint64()
	if v > math.MaxUint32 {
		r.fail(ErrOverflow)
		return 0
	}
	return uint32(v)
}

// Uint8 decodes a single byte.
func (r *Reader) Uint8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool decodes a one-byte boolean.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// BytesField decodes a length-prefixed byte string. The result is a copy and
// does not alias the input buffer.
func (r *Reader) BytesField() []byte {
	ref := r.BytesFieldRef()
	if len(ref) == 0 {
		return nil
	}
	out := make([]byte, len(ref))
	copy(out, ref)
	return out
}

// BytesFieldRef decodes a length-prefixed byte string without copying: the
// result aliases the reader's input. Use it on hot paths where the decoded
// value is consumed (or re-copied into owned state) before the input buffer
// can be reused — e.g. expanding a batch envelope whose inner messages are
// decoded immediately.
func (r *Reader) BytesFieldRef() []byte {
	n := r.Uint64()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen || n > uint64(r.Remaining()) {
		r.fail(errOverflowOrTruncated(n, r.Remaining()))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	return string(r.BytesField())
}

// FrameList decodes a list written by Writer.FrameList: length-prefixed
// frames until the input is exhausted. Each frame's length prefix is
// validated against the remaining input before any allocation, so corrupt
// prefixes cannot trigger huge allocations. The returned frames alias the
// reader's input (see BytesFieldRef): an envelope is decoded exactly where
// its content is consumed.
func (r *Reader) FrameList() [][]byte {
	var frames [][]byte
	for r.Remaining() > 0 {
		frames = append(frames, r.BytesFieldRef())
		if r.err != nil {
			return nil
		}
	}
	return frames
}

func errOverflowOrTruncated(n uint64, remaining int) error {
	if n > MaxBytesLen || n > math.MaxInt32 {
		return ErrOverflow
	}
	_ = remaining
	return ErrTruncated
}
