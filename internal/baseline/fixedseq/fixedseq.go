// Package fixedseq implements the Isis/Amoeba-style sequencer-based Atomic
// Broadcast of Section 2.4 of the paper [BSS91, KT91], with the naive
// fail-over that makes it efficient but UNSAFE: on suspicion of the
// sequencer, the next replica takes over and re-orders every message it has
// not delivered yet, with no agreement on what the old sequencer already
// delivered.
//
// This is the baseline whose Figure 1(b) run produces an external
// inconsistency: the crashed sequencer's reply reaches the client (which,
// per classic active replication, adopts the first reply) while its ordering
// message is lost, and the new sequencer picks a different order. The OAR
// protocol (internal/core) exists to close exactly this hole; experiment E1
// measures it.
//
// The replica is group-scoped and rides the shared transport-batching layer
// (transport.Batcher): all outgoing traffic — orders, replies, heartbeats —
// is tagged with the ordering group and coalesced per event-loop round into
// proto.Batch frames, exactly like the OAR hot path, so cross-protocol
// experiments compare ordering protocols rather than transport disciplines.
// The package registers itself as the "fixedseq" backend.
package fixedseq

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/fd"
	"repro/internal/mseq"
	"repro/internal/proto"
	"repro/internal/transport"
	"repro/internal/tune"
)

// Config configures one fixed-sequencer replica.
type Config struct {
	// ID is this replica's rank; Group is Π.
	ID    proto.NodeID
	Group []proto.NodeID
	// GroupID is the ordering group (shard) this replica serves. Outgoing
	// traffic is tagged with it; inbound traffic tagged with a foreign group
	// is dropped before the body is decoded.
	GroupID proto.GroupID
	// Node is the transport endpoint.
	Node transport.Node
	// Machine is the deterministic state machine (undo is never used: this
	// protocol has no rollback — that is its flaw).
	Machine app.Machine
	// Detector drives sequencer fail-over.
	Detector fd.Detector
	// TickInterval and HeartbeatInterval as in core (same defaults).
	TickInterval      time.Duration
	HeartbeatInterval time.Duration
	// BatchWindow controls the transport-batching layer exactly as in
	// core.ServerConfig: >= 0 (the default) coalesces each round's sends per
	// destination into proto.Batch frames; negative disables the layer (the
	// experiment control).
	BatchWindow time.Duration
	// AutoTune gives the send batcher a closed-loop hold-window controller
	// (internal/tune), exactly as in core.ServerConfig. Requires the
	// batching layer (BatchWindow >= 0).
	AutoTune bool
	// Tracer records deliveries as ADeliver events (they are irrevocable).
	Tracer backend.Tracer
	// Recovering boots the replica into catch-up mode: it defers ordering
	// traffic and refuses reads until it has adopted the sequencer's state
	// (see recovery.go). Set by cluster.Restart.
	Recovering bool
}

// Stats are protocol counters.
type Stats struct {
	Delivered      uint64
	Views          uint64 // fail-overs performed
	OrdersSent     uint64 // sequencer ordering messages sent
	ForeignDropped uint64 // inbound messages dropped for a foreign GroupID
	ReadsServed    uint64 // reads answered inline (zero ordering messages)
	ReadFallbacks  uint64 // reads pushed onto the ordered path

	// Recovery observability (see core.ServerStats).
	Recoveries           uint64 // completed restart recoveries
	CatchupServed        uint64 // catch-up responses served with state
	RecoveryRefusedReads uint64 // reads refused while catching up

	// Send-batcher observability (see core.ServerStats).
	BatchFrames uint64
	BatchedMsgs uint64
	BatchWindow time.Duration
}

// Server is one fixed-sequencer replica.
type Server struct {
	cfg Config
	n   int

	view      uint64 // current sequencer = Group[view mod n]
	buffered  mseq.Seq[proto.RequestID]
	payloads  map[proto.RequestID]proto.Request
	delivered map[proto.RequestID]struct{}
	pos       uint64

	out     *transport.Batcher // per-round send coalescing
	encBuf  []byte             // reusable encode scratch (replies, orders) on the batching path
	hbFrame []byte             // heartbeat payload, constant per group

	// orderScratch is the reusable decode target for inbound SeqOrder
	// bodies (request commands alias the inbound frame; buffer() clones
	// what it retains).
	orderScratch proto.SeqOrder

	lastHeartbeat time.Time
	tracer        backend.Tracer

	// Recovery state (see recovery.go). ds is the in-memory catch-up base
	// every replica maintains so it can serve a restarted peer.
	ds          backend.DurableState
	durable     app.Durable // machine's durable surface; nil without one
	recovering  bool
	catchupTick int
	recoveryBuf [][]byte // deferred SeqOrder bodies (owned copies)

	statDelivered   atomic.Uint64
	statViews       atomic.Uint64
	statOrders      atomic.Uint64
	statForeign     atomic.Uint64
	statReads       atomic.Uint64
	statReadFalls   atomic.Uint64
	statRecoveries  atomic.Uint64
	statCatchup     atomic.Uint64
	statReadRefused atomic.Uint64

	// reader is the machine's optional read-only surface; with it, KindRead
	// requests are answered inline without entering the ordering path.
	reader app.Reader
}

// NewServer validates cfg and creates a replica.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Group) == 0 || len(cfg.Group) > proto.MaxGroupSize {
		return nil, fmt.Errorf("fixedseq: bad group size %d", len(cfg.Group))
	}
	if cfg.Node == nil || cfg.Machine == nil || cfg.Detector == nil {
		return nil, fmt.Errorf("fixedseq: Node, Machine and Detector are required")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = backend.DefaultTickInterval
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = backend.DefaultHeartbeatInterval
	}
	if cfg.Tracer == nil {
		cfg.Tracer = backend.NopTracer()
	}
	if cfg.AutoTune && cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("fixedseq: AutoTune requires the batching layer (BatchWindow >= 0)")
	}
	var opts transport.BatcherOptions
	if cfg.AutoTune {
		opts.Tuner = tune.New(tune.Config{})
	}
	s := &Server{
		cfg:       cfg,
		n:         len(cfg.Group),
		payloads:  make(map[proto.RequestID]proto.Request),
		delivered: make(map[proto.RequestID]struct{}),
		out:       transport.NewBatcherWith(cfg.Node, cfg.GroupID, opts),
		encBuf:    make([]byte, 0, 256),
		hbFrame:   proto.MarshalHeartbeat(cfg.GroupID),
		tracer:    cfg.Tracer,
	}
	if r, ok := cfg.Machine.(app.Reader); ok {
		s.reader = r
	}
	s.initRecovery()
	return s, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	bs := s.out.Stats()
	return Stats{
		Delivered:            s.statDelivered.Load(),
		Views:                s.statViews.Load(),
		OrdersSent:           s.statOrders.Load(),
		ForeignDropped:       s.statForeign.Load(),
		ReadsServed:          s.statReads.Load(),
		ReadFallbacks:        s.statReadFalls.Load(),
		Recoveries:           s.statRecoveries.Load(),
		CatchupServed:        s.statCatchup.Load(),
		RecoveryRefusedReads: s.statReadRefused.Load(),
		BatchFrames:          bs.Frames,
		BatchedMsgs:          bs.Msgs,
		BatchWindow:          bs.Window,
	}
}

// batching reports whether the send-coalescing layer is enabled.
func (s *Server) batching() bool { return s.cfg.BatchWindow >= 0 }

// send ships one kind-tagged payload, through the round batcher when
// batching is on.
func (s *Server) send(to proto.NodeID, payload []byte) {
	if !s.batching() {
		_ = s.cfg.Node.Send(to, payload)
		return
	}
	s.out.Add(to, payload)
}

// flushSpins and maxDrain parameterize transport.DrainLinger exactly as in
// core.Server.Run: drain the backlog (lingering a couple of scheduler
// yields for companion messages in flight), then flush every coalesced
// frame.
const (
	flushSpins = 2
	maxDrain   = 1024
)

// Run executes the replica loop until ctx ends or the transport closes.
func (s *Server) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	// Ship anything a held (AutoTune) window still buffers on exit.
	defer s.out.Close()
	inbox := s.cfg.Node.Recv()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-inbox:
			if !ok {
				return nil
			}
			now := time.Now()
			handle := func(m transport.Message) {
				// Senders coalesce rounds into proto.Batch frames; expand
				// (a non-batch message passes through unchanged). The
				// handlers clone whatever they retain, so the frame's
				// pooled buffer is recycled as soon as handling returns.
				msgs, _ := transport.ExpandBatch(m)
				for _, inner := range msgs {
					s.handleMessage(inner, now)
				}
				m.Release()
			}
			handle(m)
			spins := 0
			if s.batching() {
				spins = flushSpins
			}
			if _, open := transport.DrainLinger(inbox, spins, maxDrain-1, handle); !open {
				return nil
			}
			s.out.Flush()
		case now := <-ticker.C:
			s.tick(now)
			s.out.Flush()
		}
	}
}

func (s *Server) sequencer() proto.NodeID {
	return s.cfg.Group[int(s.view%uint64(s.n))] //nolint:gosec // n ≤ 64
}

func (s *Server) handleMessage(m transport.Message, now time.Time) {
	kind, group, body, err := proto.Unmarshal(m.Payload)
	if err != nil {
		return
	}
	if group != s.cfg.GroupID {
		s.statForeign.Add(1)
		return
	}
	if s.recovering {
		s.handleRecovering(m.From, kind, body, now)
		return
	}
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(m.From, now)
	case proto.KindRequest:
		req, err := proto.UnmarshalRequest(body)
		if err != nil {
			return
		}
		s.buffer(req)
		s.maybeOrder()
	case proto.KindRead:
		s.handleRead(body)
	case proto.KindSeqOrder:
		// Zero-allocation decode into the scratch order; the commands alias
		// the inbound frame and are cloned at retention (buffer).
		if err := s.orderScratch.UnmarshalBody(body); err != nil {
			return
		}
		s.handleOrder(s.orderScratch)
	case proto.KindCatchupReq:
		s.handleCatchupReq(m.From, body)
	case proto.KindCatchupResp:
		// A response to a recovery that already completed; drop.
	default:
		// Batch envelopes were already expanded by Run; everything else is
		// not for this replica.
	}
}

// handleRead serves a read-only request inline from the replica's delivered
// prefix, bypassing the sequencer entirely. The reply is tagged with (view,
// pos, own weight); the client's majority-validated rule does the rest —
// which is what keeps fast-path reads on this baseline consistent even
// though its write path is first-reply. Machines without a Reader — and
// commands that are not well-formed reads — fall back to the ordered path.
func (s *Server) handleRead(body []byte) {
	req, err := proto.UnmarshalRead(body)
	if err != nil {
		return
	}
	if s.reader != nil {
		if result, ok := s.reader.Query(req.Cmd); ok {
			s.statReads.Add(1)
			s.sendReply(req.ID.Client, proto.Reply{
				Req:    req.ID,
				From:   s.cfg.ID,
				Epoch:  s.view,
				Weight: proto.WeightOf(s.cfg.ID),
				Pos:    s.pos,
				Result: result,
			})
			return
		}
	}
	s.statReadFalls.Add(1)
	s.buffer(req)
	s.maybeOrder()
}

// buffer retains req past the inbound frame's handling, so the command is
// cloned here (copy-on-retain); duplicates return before the clone.
func (s *Server) buffer(req proto.Request) {
	if _, known := s.payloads[req.ID]; known {
		return
	}
	s.payloads[req.ID] = req.Clone()
	s.buffered = append(s.buffered, req.ID)
}

// maybeOrder: the sequencer assigns the order to all undelivered buffered
// messages, ships it, and delivers immediately.
func (s *Server) maybeOrder() {
	if s.sequencer() != s.cfg.ID {
		return
	}
	var pending []proto.Request
	for _, id := range s.buffered {
		if _, done := s.delivered[id]; !done {
			pending = append(pending, s.payloads[id])
		}
	}
	if len(pending) == 0 {
		return
	}
	order := proto.SeqOrder{Epoch: s.view, Reqs: pending}
	// On the batching path the order is encoded into the reusable scratch
	// buffer (the batcher copies per destination); the unbatched path needs
	// an owned payload because the transport queues the slice it is given.
	var payload []byte
	if s.batching() {
		s.encBuf = proto.AppendSeqOrder(s.encBuf[:0], s.cfg.GroupID, order)
		payload = s.encBuf
	} else {
		payload = proto.MarshalSeqOrder(s.cfg.GroupID, order)
	}
	s.statOrders.Add(1)
	for _, p := range s.cfg.Group {
		if p != s.cfg.ID {
			s.send(p, payload)
		}
	}
	s.deliverBatch(order.Reqs)
}

// handleOrder delivers a sequencer's batch. Orders from newer views move
// this replica into that view (it may have missed the suspicion); orders
// from older views are stale and dropped — the root of the protocol's
// unsafety, faithfully reproduced.
func (s *Server) handleOrder(order proto.SeqOrder) {
	if order.Epoch < s.view {
		return
	}
	if order.Epoch > s.view {
		s.view = order.Epoch
	}
	s.deliverBatch(order.Reqs)
}

func (s *Server) deliverBatch(reqs []proto.Request) {
	for _, req := range reqs {
		if _, done := s.delivered[req.ID]; done {
			continue
		}
		s.buffer(req)
		s.delivered[req.ID] = struct{}{}
		result, _ := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.ds.Append(req)
		s.statDelivered.Add(1)
		s.tracer.ADeliver(s.cfg.ID, s.view, req.ID, s.pos, result)
		s.sendReply(req.ID.Client, proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  s.view,
			Weight: proto.WeightOf(s.cfg.ID),
			Pos:    s.pos,
			Result: result,
		})
	}
	s.ds.Epoch = s.view
	s.maybeSnapshot()
}

// sendReply encodes and ships one reply. On the batching path it is encoded
// into the reusable scratch; the batcher copies it into the destination's
// envelope immediately.
func (s *Server) sendReply(to proto.NodeID, reply proto.Reply) {
	if s.batching() {
		s.encBuf = proto.AppendReply(s.encBuf[:0], reply)
		s.out.Add(to, s.encBuf)
	} else {
		_ = s.cfg.Node.Send(to, proto.MarshalReply(reply))
	}
}

func (s *Server) tick(now time.Time) {
	if s.cfg.HeartbeatInterval > 0 && now.Sub(s.lastHeartbeat) >= s.cfg.HeartbeatInterval {
		s.lastHeartbeat = now
		// One immutable heartbeat frame per process, encoded at start-up.
		for _, p := range s.cfg.Group {
			if p != s.cfg.ID {
				s.send(p, s.hbFrame)
			}
		}
	}
	if s.recovering {
		s.probeCatchup()
		return
	}
	// Naive fail-over: bump the view past every suspected sequencer; if that
	// makes us the sequencer, re-order everything we have not delivered.
	// No agreement, no recovery of the old sequencer's deliveries.
	bumped := false
	for s.sequencer() != s.cfg.ID && s.cfg.Detector.Suspected(s.sequencer(), now) {
		s.view++
		bumped = true
		s.statViews.Add(1)
	}
	if bumped {
		s.maybeOrder()
	}
}
