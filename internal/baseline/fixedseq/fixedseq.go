// Package fixedseq implements the Isis/Amoeba-style sequencer-based Atomic
// Broadcast of Section 2.4 of the paper [BSS91, KT91], with the naive
// fail-over that makes it efficient but UNSAFE: on suspicion of the
// sequencer, the next replica takes over and re-orders every message it has
// not delivered yet, with no agreement on what the old sequencer already
// delivered.
//
// This is the baseline whose Figure 1(b) run produces an external
// inconsistency: the crashed sequencer's reply reaches the client (which,
// per classic active replication, adopts the first reply) while its ordering
// message is lost, and the new sequencer picks a different order. The OAR
// protocol (internal/core) exists to close exactly this hole; experiment E1
// measures it.
package fixedseq

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/mseq"
	"repro/internal/proto"
	"repro/internal/transport"
)

// Config configures one fixed-sequencer replica.
type Config struct {
	// ID is this replica's rank; Group is Π.
	ID    proto.NodeID
	Group []proto.NodeID
	// Node is the transport endpoint.
	Node transport.Node
	// Machine is the deterministic state machine (undo is never used: this
	// protocol has no rollback — that is its flaw).
	Machine app.Machine
	// Detector drives sequencer fail-over.
	Detector fd.Detector
	// TickInterval and HeartbeatInterval as in core (same defaults).
	TickInterval      time.Duration
	HeartbeatInterval time.Duration
	// Tracer records deliveries as ADeliver events (they are irrevocable).
	Tracer core.Tracer
}

// Stats are protocol counters.
type Stats struct {
	Delivered uint64
	Views     uint64 // fail-overs performed
}

// Server is one fixed-sequencer replica.
type Server struct {
	cfg Config
	n   int

	view      uint64 // current sequencer = Group[view mod n]
	buffered  mseq.Seq[proto.RequestID]
	payloads  map[proto.RequestID]proto.Request
	delivered map[proto.RequestID]struct{}
	pos       uint64

	lastHeartbeat time.Time
	tracer        core.Tracer

	statDelivered atomic.Uint64
	statViews     atomic.Uint64
}

// NewServer validates cfg and creates a replica.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Group) == 0 || len(cfg.Group) > proto.MaxGroupSize {
		return nil, fmt.Errorf("fixedseq: bad group size %d", len(cfg.Group))
	}
	if cfg.Node == nil || cfg.Machine == nil || cfg.Detector == nil {
		return nil, fmt.Errorf("fixedseq: Node, Machine and Detector are required")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = core.DefaultTickInterval
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = core.DefaultHeartbeatInterval
	}
	if cfg.Tracer == nil {
		cfg.Tracer = core.NopTracer()
	}
	return &Server{
		cfg:       cfg,
		n:         len(cfg.Group),
		payloads:  make(map[proto.RequestID]proto.Request),
		delivered: make(map[proto.RequestID]struct{}),
		tracer:    cfg.Tracer,
	}, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{Delivered: s.statDelivered.Load(), Views: s.statViews.Load()}
}

// Run executes the replica loop until ctx ends or the transport closes.
func (s *Server) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-s.cfg.Node.Recv():
			if !ok {
				return nil
			}
			s.handleMessage(m, time.Now())
		case now := <-ticker.C:
			s.tick(now)
		}
	}
}

func (s *Server) sequencer() proto.NodeID {
	return s.cfg.Group[int(s.view%uint64(s.n))]
}

func (s *Server) handleMessage(m transport.Message, now time.Time) {
	kind, _, body, err := proto.Unmarshal(m.Payload)
	if err != nil {
		return
	}
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(m.From, now)
	case proto.KindRequest:
		req, err := proto.UnmarshalRequest(body)
		if err != nil {
			return
		}
		s.buffer(req)
		s.maybeOrder()
	case proto.KindSeqOrder:
		order, err := proto.UnmarshalSeqOrder(body)
		if err != nil {
			return
		}
		s.handleOrder(order)
	default:
	}
}

func (s *Server) buffer(req proto.Request) {
	if _, known := s.payloads[req.ID]; known {
		return
	}
	s.payloads[req.ID] = req
	s.buffered = append(s.buffered, req.ID)
}

// maybeOrder: the sequencer assigns the order to all undelivered buffered
// messages, ships it, and delivers immediately.
func (s *Server) maybeOrder() {
	if s.sequencer() != s.cfg.ID {
		return
	}
	var pending []proto.Request
	for _, id := range s.buffered {
		if _, done := s.delivered[id]; !done {
			pending = append(pending, s.payloads[id])
		}
	}
	if len(pending) == 0 {
		return
	}
	order := proto.SeqOrder{Epoch: s.view, Reqs: pending}
	payload := proto.MarshalSeqOrder(0, order)
	for _, p := range s.cfg.Group {
		if p != s.cfg.ID {
			_ = s.cfg.Node.Send(p, payload)
		}
	}
	s.deliverBatch(order.Reqs)
}

// handleOrder delivers a sequencer's batch. Orders from newer views move
// this replica into that view (it may have missed the suspicion); orders
// from older views are stale and dropped — the root of the protocol's
// unsafety, faithfully reproduced.
func (s *Server) handleOrder(order proto.SeqOrder) {
	if order.Epoch < s.view {
		return
	}
	if order.Epoch > s.view {
		s.view = order.Epoch
	}
	s.deliverBatch(order.Reqs)
}

func (s *Server) deliverBatch(reqs []proto.Request) {
	for _, req := range reqs {
		if _, done := s.delivered[req.ID]; done {
			continue
		}
		s.buffer(req)
		s.delivered[req.ID] = struct{}{}
		result, _ := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.statDelivered.Add(1)
		s.tracer.ADeliver(s.cfg.ID, s.view, req.ID, s.pos, result)
		_ = s.cfg.Node.Send(req.ID.Client, proto.MarshalReply(proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  s.view,
			Weight: proto.WeightOf(s.cfg.ID),
			Pos:    s.pos,
			Result: result,
		}))
	}
}

func (s *Server) tick(now time.Time) {
	if s.cfg.HeartbeatInterval > 0 && now.Sub(s.lastHeartbeat) >= s.cfg.HeartbeatInterval {
		s.lastHeartbeat = now
		hb := proto.MarshalHeartbeat(0)
		for _, p := range s.cfg.Group {
			if p != s.cfg.ID {
				_ = s.cfg.Node.Send(p, hb)
			}
		}
	}
	// Naive fail-over: bump the view past every suspected sequencer; if that
	// makes us the sequencer, re-order everything we have not delivered.
	// No agreement, no recovery of the old sequencer's deliveries.
	bumped := false
	for s.sequencer() != s.cfg.ID && s.cfg.Detector.Suspected(s.sequencer(), now) {
		s.view++
		bumped = true
		s.statViews.Add(1)
	}
	if bumped {
		s.maybeOrder()
	}
}
