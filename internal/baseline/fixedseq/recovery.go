// Crash-recovery for the fixed-sequencer baseline: a restarted replica
// refuses reads and defers ordering traffic while it adopts a catch-up
// snapshot+suffix — but only from the current sequencer. The sequencer is
// the single origin of ordering messages, and its link to the prober's new
// endpoint incarnation is FIFO: every order it ships after answering the
// probe arrives after the response, so the adopted prefix plus the deferred
// order stream is gapless. A non-sequencer's prefix carries no such
// guarantee (orders it has seen may have been addressed to the prober's
// previous, dead incarnation), so non-sequencers stay silent.
//
// The baseline keeps no WAL: its recovery is purely the in-memory peer
// catch-up. Durability proper (replay-from-disk) is the OAR backend's
// territory — this arm exists so restart-under-load scenarios compare all
// backends on the same schedule.
package fixedseq

import (
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/proto"
)

const (
	// recoveryProbeTicks is how many ticks a recovering replica waits
	// between catch-up probes.
	recoveryProbeTicks = 4
	// maxRecoveryBuffer bounds the deferred-order buffer while recovering.
	maxRecoveryBuffer = 1 << 14
	// snapshotEveryDeliveries is how often the catch-up base state is
	// compacted into a machine snapshot (when the machine supports it).
	snapshotEveryDeliveries = 256
)

// initRecovery wires the durable surface and, for a restarted replica,
// enters catch-up mode. Called from NewServer.
func (s *Server) initRecovery() {
	if d, ok := s.cfg.Machine.(app.Durable); ok {
		s.durable = d
	}
	if !s.cfg.Recovering {
		return
	}
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Restarted(s.cfg.ID)
	}
	if s.n > 1 {
		s.recovering = true
		s.catchupTick = recoveryProbeTicks // first tick probes immediately
		return
	}
	// A single-replica group has no peers and no history it could have
	// missed; recovery is trivially complete.
	s.statRecoveries.Add(1)
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Recovered(s.cfg.ID, s.view, s.pos)
	}
}

// handleRecovering is handleMessage while catching up: heartbeats keep the
// detector warm, catch-up responses drive adoption, reads are refused, and
// sequencer orders are deferred for replay after adoption. Raw requests are
// dropped — they re-arrive inside the sequencer's orders.
func (s *Server) handleRecovering(from proto.NodeID, kind proto.Kind, body []byte, now time.Time) {
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(from, now)
	case proto.KindCatchupResp:
		s.handleCatchupResp(from, body)
	case proto.KindRead:
		s.statReadRefused.Add(1)
	case proto.KindSeqOrder:
		// The body aliases a pooled inbound frame; keep an owned copy.
		if len(s.recoveryBuf) < maxRecoveryBuffer {
			s.recoveryBuf = append(s.recoveryBuf, append([]byte(nil), body...))
		}
	default:
	}
}

// handleCatchupReq answers a recovering peer's probe — sequencer only (see
// the package comment for why).
func (s *Server) handleCatchupReq(from proto.NodeID, body []byte) {
	if s.sequencer() != s.cfg.ID {
		return
	}
	req, err := proto.UnmarshalCatchupReq(body)
	if err != nil {
		return
	}
	resp := proto.CatchupResp{CurEpoch: s.view, Pos: s.ds.Pos, FirstPos: s.ds.Pos}
	snap, firstPos, entries := s.ds.Respond(req.HavePos)
	resp.Snap, resp.FirstPos, resp.Entries = snap, firstPos, entries
	if len(snap) > 0 || len(entries) > 0 {
		s.statCatchup.Add(1)
	}
	s.send(from, proto.MarshalCatchupResp(s.cfg.GroupID, resp))
}

// handleCatchupResp adopts the sequencer's boundary state, then replays the
// deferred order stream.
func (s *Server) handleCatchupResp(from proto.NodeID, body []byte) {
	if !s.recovering {
		return
	}
	resp, err := proto.UnmarshalCatchupResp(body)
	if err != nil || resp.InPhase2 {
		return
	}
	if s.cfg.Group[int(resp.CurEpoch%uint64(s.n))] != from { //nolint:gosec // n ≤ 64
		return // not the sequencer of its own view; see handleCatchupReq
	}
	// Validate the response's shape before mutating anything.
	useSnap := len(resp.Snap) > 0
	var blob backend.SnapshotBlob
	if useSnap {
		if blob, err = backend.DecodeSnapshotBlob(resp.Snap); err != nil || blob.Pos != resp.FirstPos || s.durable == nil {
			return
		}
	} else if resp.FirstPos != s.pos {
		return
	}
	if resp.Pos != resp.FirstPos+uint64(len(resp.Entries)) {
		return
	}

	if useSnap {
		if s.durable.Restore(blob.Image) != nil {
			return
		}
		s.pos = blob.Pos
		s.delivered = make(map[proto.RequestID]struct{}, len(blob.Delivered))
		for _, id := range blob.Delivered {
			s.delivered[id] = struct{}{}
		}
		s.ds.SnapBlob = append([]byte(nil), resp.Snap...)
		s.ds.SnapPos = blob.Pos
		s.ds.Tail = s.ds.Tail[:0]
		s.ds.Pos = blob.Pos
	}
	for _, e := range resp.Entries {
		s.delivered[e.ID] = struct{}{}
		s.cfg.Machine.Apply(e.Cmd)
		s.pos++
		s.ds.Append(e)
	}
	s.view = resp.CurEpoch
	s.ds.Epoch = resp.CurEpoch
	s.recovering = false
	s.statRecoveries.Add(1)
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Recovered(s.cfg.ID, s.view, s.pos)
	}

	buf := s.recoveryBuf
	s.recoveryBuf = nil
	for _, b := range buf {
		if err := s.orderScratch.UnmarshalBody(b); err == nil {
			s.handleOrder(s.orderScratch)
		}
	}
	s.maybeOrder()
}

// probeCatchup broadcasts a catch-up probe every few ticks while recovering.
func (s *Server) probeCatchup() {
	s.catchupTick++
	if s.catchupTick < recoveryProbeTicks {
		return
	}
	s.catchupTick = 0
	probe := proto.MarshalCatchupReq(s.cfg.GroupID, proto.CatchupReq{HavePos: s.pos})
	for _, p := range s.cfg.Group {
		if p != s.cfg.ID {
			s.send(p, probe)
		}
	}
}

// maybeSnapshot compacts the catch-up tail into a machine snapshot once it
// has grown past the cadence. The delivered prefix is never rolled back in
// this protocol, so any delivery boundary is a valid snapshot point.
func (s *Server) maybeSnapshot() {
	if s.durable == nil || s.pos-s.ds.SnapPos < snapshotEveryDeliveries {
		return
	}
	img, err := s.durable.Snapshot()
	if err != nil {
		return
	}
	ids := make([]proto.RequestID, 0, len(s.delivered))
	for id := range s.delivered {
		ids = append(ids, id)
	}
	s.ds.SetSnapshot(backend.EncodeSnapshotBlob(backend.SnapshotBlob{
		Epoch:     s.view,
		Pos:       s.pos,
		Delivered: ids,
		Image:     img,
	}))
}
