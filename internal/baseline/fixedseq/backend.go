package fixedseq

import (
	"repro/internal/backend"
	"repro/internal/baseline"
)

// BackendName is the registry name of the fixed-sequencer baseline.
const BackendName = "fixedseq"

func init() { backend.Register(fsBackend{}) }

// fsBackend adapts the fixed-sequencer protocol to the protocol-agnostic
// backend contract. The invoker is the classic first-reply client — the
// adoption rule whose unsafety under the Figure 1(b) fault is the point of
// this baseline.
type fsBackend struct{}

var _ backend.Backend = fsBackend{}

func (fsBackend) Name() string { return BackendName }

func (fsBackend) NewReplica(cfg backend.ReplicaConfig) (backend.Replica, error) {
	srv, err := NewServer(Config{
		ID:                cfg.ID,
		Group:             cfg.Group,
		GroupID:           cfg.GroupID,
		Node:              cfg.Node,
		Machine:           cfg.Machine,
		Detector:          cfg.Detector,
		TickInterval:      cfg.TickInterval,
		HeartbeatInterval: cfg.HeartbeatInterval,
		BatchWindow:       cfg.BatchWindow,
		AutoTune:          cfg.AutoTune,
		Tracer:            cfg.Tracer,
		// The baseline keeps no WAL (see recovery.go): WALDir/WALSync/
		// SnapshotEvery/Incarnation are OAR knobs and are ignored here;
		// restart recovery is the in-memory peer catch-up alone.
		Recovering: cfg.Recovering,
	})
	if err != nil {
		return nil, err
	}
	return fsReplica{srv}, nil
}

func (fsBackend) NewInvoker(cfg backend.InvokerConfig) (backend.Invoker, error) {
	cli, err := baseline.NewClient(baseline.ClientConfig{
		ID:        cfg.ID,
		Group:     cfg.Group,
		GroupID:   cfg.GroupID,
		Node:      cfg.Node,
		Tracer:    cfg.Tracer,
		Unbatched: cfg.Unbatched,
		AutoTune:  cfg.AutoTune,
	})
	if err != nil {
		return nil, err
	}
	cli.Start()
	return cli, nil
}

// fsReplica maps the fixed-sequencer counters onto the shared set.
type fsReplica struct{ *Server }

var _ backend.Replica = fsReplica{}

func (r fsReplica) Stats() backend.Stats {
	s := r.Server.Stats()
	return backend.Stats{
		Delivered:      s.Delivered,
		SeqOrdersSent:  s.OrdersSent,
		ForeignDropped: s.ForeignDropped,
		ReadsServed:    s.ReadsServed,
		ReadFallbacks:  s.ReadFallbacks,
		Views:          s.Views,
		BatchFrames:    s.BatchFrames,
		BatchedSends:   s.BatchedMsgs,
		BatchWindowNS:  int64(s.BatchWindow),

		Recoveries:           s.Recoveries,
		CatchupServed:        s.CatchupServed,
		RecoveryRefusedReads: s.RecoveryRefusedReads,
	}
}
