package ctab

import (
	"repro/internal/backend"
	"repro/internal/baseline"
)

// BackendName is the registry name of the consensus-per-batch baseline.
const BackendName = "ctab"

func init() { backend.Register(ctBackend{}) }

// ctBackend adapts the conservative consensus-based protocol to the
// protocol-agnostic backend contract. The invoker is the classic first-reply
// client — sound here, because no ctab reply is ever invalidated.
type ctBackend struct{}

var _ backend.Backend = ctBackend{}

func (ctBackend) Name() string { return BackendName }

func (ctBackend) NewReplica(cfg backend.ReplicaConfig) (backend.Replica, error) {
	srv, err := NewServer(Config{
		ID:                cfg.ID,
		Group:             cfg.Group,
		GroupID:           cfg.GroupID,
		Node:              cfg.Node,
		Machine:           cfg.Machine,
		Detector:          cfg.Detector,
		TickInterval:      cfg.TickInterval,
		HeartbeatInterval: cfg.HeartbeatInterval,
		BatchWindow:       cfg.BatchWindow,
		AutoTune:          cfg.AutoTune,
		Tracer:            cfg.Tracer,
		// The baseline keeps no WAL (see recovery.go): WALDir/WALSync/
		// SnapshotEvery/Incarnation are OAR knobs and are ignored here;
		// restart recovery is the in-memory peer catch-up alone.
		Recovering: cfg.Recovering,
	})
	if err != nil {
		return nil, err
	}
	return ctReplica{srv}, nil
}

func (ctBackend) NewInvoker(cfg backend.InvokerConfig) (backend.Invoker, error) {
	cli, err := baseline.NewClient(baseline.ClientConfig{
		ID:        cfg.ID,
		Group:     cfg.Group,
		GroupID:   cfg.GroupID,
		Node:      cfg.Node,
		Tracer:    cfg.Tracer,
		Unbatched: cfg.Unbatched,
		AutoTune:  cfg.AutoTune,
	})
	if err != nil {
		return nil, err
	}
	cli.Start()
	return cli, nil
}

// ctReplica maps the ctab counters onto the shared set.
type ctReplica struct{ *Server }

var _ backend.Replica = ctReplica{}

func (r ctReplica) Stats() backend.Stats {
	s := r.Server.Stats()
	return backend.Stats{
		Delivered:      s.Delivered,
		ForeignDropped: s.ForeignDropped,
		ReadsServed:    s.ReadsServed,
		ReadFallbacks:  s.ReadFallbacks,
		Batches:        s.Batches,
		BatchFrames:    s.BatchFrames,
		BatchedSends:   s.BatchedMsgs,
		BatchWindowNS:  int64(s.BatchWindow),

		Recoveries:           s.Recoveries,
		CatchupServed:        s.CatchupServed,
		RecoveryRefusedReads: s.RecoveryRefusedReads,
	}
}
