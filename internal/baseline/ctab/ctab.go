// Package ctab implements a conservative, consensus-based Atomic Broadcast
// in the style of Chandra–Toueg [CT96]: every batch of client requests is
// ordered by a full consensus instance before any replica processes it.
//
// This is the "always safe, never optimistic" end of the paper's
// latency/consistency trade-off (Section 2.2): no reply ever needs to be
// invalidated, so the first-reply client rule is sound — but every request
// pays consensus latency (several message delays) instead of the OAR
// optimistic phase's single sequencer hop. Experiment E2 measures the gap.
//
// The replica is group-scoped and rides the shared transport-batching layer
// (transport.Batcher): all outgoing traffic — consensus rounds, replies,
// heartbeats — is tagged with the ordering group and coalesced per
// event-loop round into proto.Batch frames, exactly like the OAR hot path.
// The package registers itself as the "ctab" backend.
package ctab

import (
	"context"
	"fmt"

	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/consensus"

	"repro/internal/fd"
	"repro/internal/mseq"
	"repro/internal/proto"
	"repro/internal/transport"
	"repro/internal/tune"
	"repro/internal/wire"
)

// Config configures one replica.
type Config struct {
	// ID is this replica's rank; Group is Π.
	ID    proto.NodeID
	Group []proto.NodeID
	// GroupID is the ordering group (shard) this replica serves. Outgoing
	// traffic is tagged with it; inbound traffic tagged with a foreign group
	// is dropped before the body is decoded.
	GroupID proto.GroupID
	// Node is the transport endpoint.
	Node transport.Node
	// Machine is the deterministic state machine.
	Machine app.Machine
	// Detector drives consensus coordinator suspicion.
	Detector fd.Detector
	// TickInterval and HeartbeatInterval as in core (same defaults).
	TickInterval      time.Duration
	HeartbeatInterval time.Duration
	// BatchWindow controls the transport-batching layer exactly as in
	// core.ServerConfig: >= 0 (the default) coalesces each round's sends per
	// destination into proto.Batch frames; negative disables the layer (the
	// experiment control).
	BatchWindow time.Duration
	// AutoTune gives the send batcher a closed-loop hold-window controller
	// (internal/tune), exactly as in core.ServerConfig. Requires the
	// batching layer (BatchWindow >= 0).
	AutoTune bool
	// Tracer records deliveries as ADeliver events.
	Tracer backend.Tracer
	// Recovering boots the replica into catch-up mode: it defers consensus
	// traffic and refuses reads until it has adopted a peer's state (see
	// recovery.go). Set by cluster.Restart.
	Recovering bool
}

// Stats are protocol counters.
type Stats struct {
	Delivered      uint64
	Batches        uint64 // completed consensus instances
	ForeignDropped uint64 // inbound messages dropped for a foreign GroupID
	ReadsServed    uint64 // reads answered inline (zero consensus instances)
	ReadFallbacks  uint64 // reads pushed onto the ordered path

	// Recovery observability (see core.ServerStats).
	Recoveries           uint64 // completed restart recoveries
	CatchupServed        uint64 // catch-up responses served with state
	RecoveryRefusedReads uint64 // reads refused while catching up

	// Send-batcher observability (see core.ServerStats).
	BatchFrames uint64
	BatchedMsgs uint64
	BatchWindow time.Duration
}

// Server is one conservative-atomic-broadcast replica.
type Server struct {
	cfg Config
	n   int

	buffered  mseq.Seq[proto.RequestID]
	payloads  map[proto.RequestID]proto.Request
	delivered map[proto.RequestID]struct{}
	pos       uint64

	next      uint64 // current consensus instance
	running   bool
	instances map[uint64]*consensus.Instance
	decisions map[uint64]consensus.Decision

	out     *transport.Batcher // per-round send coalescing
	encBuf  []byte             // reusable encode scratch (replies) on the batching path
	hbFrame []byte             // heartbeat payload, constant per group

	lastHeartbeat time.Time
	tracer        backend.Tracer

	// Recovery state (see recovery.go). ds is the in-memory catch-up base
	// every replica maintains so it can serve a restarted peer.
	ds          backend.DurableState
	durable     app.Durable // machine's durable surface; nil without one
	recovering  bool
	catchupTick int
	recoveryBuf []deferredFrame

	statDelivered   atomic.Uint64
	statBatches     atomic.Uint64
	statForeign     atomic.Uint64
	statReads       atomic.Uint64
	statReadFalls   atomic.Uint64
	statRecoveries  atomic.Uint64
	statCatchup     atomic.Uint64
	statReadRefused atomic.Uint64

	// reader is the machine's optional read-only surface; with it, KindRead
	// requests are answered inline without a consensus instance.
	reader app.Reader
}

// NewServer validates cfg and creates a replica.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Group) == 0 || len(cfg.Group) > proto.MaxGroupSize {
		return nil, fmt.Errorf("ctab: bad group size %d", len(cfg.Group))
	}
	if cfg.Node == nil || cfg.Machine == nil || cfg.Detector == nil {
		return nil, fmt.Errorf("ctab: Node, Machine and Detector are required")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = backend.DefaultTickInterval
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = backend.DefaultHeartbeatInterval
	}
	if cfg.Tracer == nil {
		cfg.Tracer = backend.NopTracer()
	}
	if cfg.AutoTune && cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("ctab: AutoTune requires the batching layer (BatchWindow >= 0)")
	}
	var opts transport.BatcherOptions
	if cfg.AutoTune {
		opts.Tuner = tune.New(tune.Config{})
	}
	s := &Server{
		cfg:       cfg,
		n:         len(cfg.Group),
		payloads:  make(map[proto.RequestID]proto.Request),
		delivered: make(map[proto.RequestID]struct{}),
		instances: make(map[uint64]*consensus.Instance),
		decisions: make(map[uint64]consensus.Decision),
		out:       transport.NewBatcherWith(cfg.Node, cfg.GroupID, opts),
		encBuf:    make([]byte, 0, 256),
		hbFrame:   proto.MarshalHeartbeat(cfg.GroupID),
		tracer:    cfg.Tracer,
	}
	if r, ok := cfg.Machine.(app.Reader); ok {
		s.reader = r
	}
	s.initRecovery()
	return s, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	bs := s.out.Stats()
	return Stats{
		Delivered:            s.statDelivered.Load(),
		Batches:              s.statBatches.Load(),
		ForeignDropped:       s.statForeign.Load(),
		ReadsServed:          s.statReads.Load(),
		ReadFallbacks:        s.statReadFalls.Load(),
		Recoveries:           s.statRecoveries.Load(),
		CatchupServed:        s.statCatchup.Load(),
		RecoveryRefusedReads: s.statReadRefused.Load(),
		BatchFrames:          bs.Frames,
		BatchedMsgs:          bs.Msgs,
		BatchWindow:          bs.Window,
	}
}

// batching reports whether the send-coalescing layer is enabled.
func (s *Server) batching() bool { return s.cfg.BatchWindow >= 0 }

// send ships one kind-tagged payload, through the round batcher when
// batching is on.
func (s *Server) send(to proto.NodeID, payload []byte) {
	if !s.batching() {
		_ = s.cfg.Node.Send(to, payload)
		return
	}
	s.out.Add(to, payload)
}

// flushSpins and maxDrain parameterize transport.DrainLinger exactly as in
// core.Server.Run.
const (
	flushSpins = 2
	maxDrain   = 1024
)

// Run executes the replica loop until ctx ends or the transport closes.
func (s *Server) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	// Ship anything a held (AutoTune) window still buffers on exit.
	defer s.out.Close()
	inbox := s.cfg.Node.Recv()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-inbox:
			if !ok {
				return nil
			}
			now := time.Now()
			handle := func(m transport.Message) {
				// Senders coalesce rounds into proto.Batch frames; expand
				// (a non-batch message passes through unchanged). The
				// handlers clone whatever they retain, so the frame's
				// pooled buffer is recycled as soon as handling returns.
				msgs, _ := transport.ExpandBatch(m)
				for _, inner := range msgs {
					s.handleMessage(inner, now)
				}
				m.Release()
			}
			handle(m)
			spins := 0
			if s.batching() {
				spins = flushSpins
			}
			if _, open := transport.DrainLinger(inbox, spins, maxDrain-1, handle); !open {
				return nil
			}
			s.out.Flush()
		case now := <-ticker.C:
			s.tick(now)
			s.out.Flush()
		}
	}
}

func (s *Server) handleMessage(m transport.Message, now time.Time) {
	kind, group, body, err := proto.Unmarshal(m.Payload)
	if err != nil {
		return
	}
	if group != s.cfg.GroupID {
		s.statForeign.Add(1)
		return
	}
	if s.recovering {
		s.handleRecovering(m.From, kind, body, now)
		return
	}
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(m.From, now)
	case proto.KindRequest:
		req, err := proto.UnmarshalRequest(body)
		if err != nil {
			return
		}
		if _, known := s.payloads[req.ID]; known {
			return
		}
		// The payloads map outlives the inbound frame: clone the command
		// (copy-on-retain); duplicates returned above without allocating.
		s.payloads[req.ID] = req.Clone()
		s.buffered = append(s.buffered, req.ID)
		s.maybeStartBatch()
	case proto.KindRead:
		s.handleRead(body)
	case proto.KindEstimate, proto.KindPropose, proto.KindAck, proto.KindDecide:
		k, err := consensus.InstanceOf(body)
		if err != nil || k < s.next {
			return
		}
		_ = s.instance(k).OnMessage(m.From, kind, body)
		// Seeing traffic for the current instance means the group is
		// batching; join with whatever we have (possibly nothing).
		if k == s.next && !s.running {
			s.startBatch()
		}
	case proto.KindCatchupReq:
		s.handleCatchupReq(m.From, body)
	case proto.KindCatchupResp:
		// A response to a recovery that already completed; drop.
	default:
		// Batch envelopes were already expanded by Run; everything else is
		// not for this replica.
	}
}

// handleRead serves a read-only request inline from the replica's delivered
// prefix, with no consensus instance. Ctab's prefix is never rolled back and
// positions are identical across replicas (consensus agreement), so every
// fast-path read reply is tagged with one constant epoch — grouping by
// consensus instance would only split the client's quorum — and the
// majority rule buys freshness: a lagging replica alone cannot serve a
// stale read. Machines without a Reader, and commands that are not
// well-formed reads, fall back to the ordered path.
func (s *Server) handleRead(body []byte) {
	req, err := proto.UnmarshalRead(body)
	if err != nil {
		return
	}
	if s.reader != nil {
		if result, ok := s.reader.Query(req.Cmd); ok {
			s.statReads.Add(1)
			s.sendReply(req.ID.Client, proto.Reply{
				Req:    req.ID,
				From:   s.cfg.ID,
				Epoch:  0,
				Weight: proto.WeightOf(s.cfg.ID),
				Pos:    s.pos,
				Result: result,
			})
			return
		}
	}
	s.statReadFalls.Add(1)
	if _, known := s.payloads[req.ID]; known {
		return
	}
	s.payloads[req.ID] = req.Clone()
	s.buffered = append(s.buffered, req.ID)
	s.maybeStartBatch()
}

func (s *Server) pending() []proto.Request {
	var out []proto.Request
	for _, id := range s.buffered {
		if _, done := s.delivered[id]; !done {
			out = append(out, s.payloads[id])
		}
	}
	return out
}

func (s *Server) maybeStartBatch() {
	if !s.running && len(s.pending()) > 0 {
		s.startBatch()
	}
}

func (s *Server) startBatch() {
	s.running = true
	inst := s.instance(s.next)
	inst.Start(encodeBatch(s.pending()))
	if d, ok := s.decisions[s.next]; ok {
		s.applyDecision(s.next, d)
	}
}

func (s *Server) instance(k uint64) *consensus.Instance {
	if inst, ok := s.instances[k]; ok {
		return inst
	}
	inst := consensus.NewInstance(consensus.Config{
		Self:     s.cfg.ID,
		Group:    s.cfg.Group,
		GroupID:  s.cfg.GroupID,
		Instance: k,
		Send:     s.send,
		Detector: s.cfg.Detector,
		OnDecide: func(d consensus.Decision) { s.onDecide(k, d) },
	})
	s.instances[k] = inst
	return inst
}

func (s *Server) onDecide(k uint64, d consensus.Decision) {
	if k == s.next && s.running {
		s.applyDecision(k, d)
		return
	}
	s.decisions[k] = d
}

// applyDecision delivers the decided batch: the union of all proposed
// request sequences, merged in decision order (identical everywhere by
// consensus agreement), minus what is already delivered.
func (s *Server) applyDecision(k uint64, d consensus.Decision) {
	seqs := make([]mseq.Seq[proto.RequestID], 0, len(d))
	for _, pv := range d {
		reqs, err := decodeBatch(pv.Val)
		if err != nil {
			panic(fmt.Sprintf("ctab server %v: corrupt decision from %v: %v", s.cfg.ID, pv.From, err))
		}
		ids := make(mseq.Seq[proto.RequestID], 0, len(reqs))
		for _, r := range reqs {
			// Copy-on-retain, first writer wins: the decoded command aliases
			// the decision value pv.Val, and the payloads map outlives it.
			if _, known := s.payloads[r.ID]; !known {
				s.payloads[r.ID] = r.Clone()
			}
			if !s.buffered.Contains(r.ID) {
				s.buffered = append(s.buffered, r.ID)
			}
			ids = append(ids, r.ID)
		}
		seqs = append(seqs, ids)
	}
	batch := mseq.Merge(seqs...)
	for _, id := range batch {
		if _, done := s.delivered[id]; done {
			continue
		}
		s.delivered[id] = struct{}{}
		req := s.payloads[id]
		result, _ := s.cfg.Machine.Apply(req.Cmd)
		s.pos++
		s.ds.Append(req)
		s.statDelivered.Add(1)
		s.tracer.ADeliver(s.cfg.ID, k, req.ID, s.pos, result)
		s.sendReply(req.ID.Client, proto.Reply{
			Req:    req.ID,
			From:   s.cfg.ID,
			Epoch:  k,
			Weight: proto.FullWeight(s.n),
			Pos:    s.pos,
			Result: result,
		})
	}

	s.statBatches.Add(1)
	delete(s.instances, k)
	delete(s.decisions, k)
	s.running = false
	s.next = k + 1
	s.ds.Epoch = s.next
	s.maybeSnapshot()
	// A decision for the next instance may already be waiting.
	if _, ok := s.decisions[s.next]; ok {
		s.startBatch()
		return
	}
	s.maybeStartBatch()
}

// sendReply encodes and ships one reply. On the batching path it is encoded
// into the reusable scratch; the batcher copies it into the destination's
// envelope immediately.
func (s *Server) sendReply(to proto.NodeID, reply proto.Reply) {
	if s.batching() {
		s.encBuf = proto.AppendReply(s.encBuf[:0], reply)
		s.out.Add(to, s.encBuf)
	} else {
		_ = s.cfg.Node.Send(to, proto.MarshalReply(reply))
	}
}

func (s *Server) tick(now time.Time) {
	if s.cfg.HeartbeatInterval > 0 && now.Sub(s.lastHeartbeat) >= s.cfg.HeartbeatInterval {
		s.lastHeartbeat = now
		// One immutable heartbeat frame per process, encoded at start-up.
		for _, p := range s.cfg.Group {
			if p != s.cfg.ID {
				s.send(p, s.hbFrame)
			}
		}
	}
	if s.recovering {
		s.probeCatchup()
		return
	}
	if s.running {
		if inst, ok := s.instances[s.next]; ok {
			inst.Tick(now)
		}
	}
}

// encodeBatch/decodeBatch serialize a request sequence as a consensus value.
func encodeBatch(reqs []proto.Request) []byte {
	w := wire.NewWriter(32)
	w.Uint64(uint64(len(reqs)))
	for _, r := range reqs {
		r.Encode(w)
	}
	return w.Bytes()
}

func decodeBatch(b []byte) ([]proto.Request, error) {
	r := wire.NewReader(b)
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, wire.ErrOverflow
	}
	reqs := make([]proto.Request, 0, n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, proto.DecodeRequest(r))
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return reqs, nil
}
