// Crash-recovery for the conservative baseline: a restarted replica refuses
// reads and defers consensus traffic while it adopts a catch-up
// snapshot+suffix from a peer that is between batches. The gate matters:
// a peer mid-instance may have received that instance's deciding broadcasts
// before the prober's new endpoint came up, and decided instances are
// garbage-collected — nobody would retransmit. A peer that has not started
// its next instance, by contrast, has not decided it either, and every
// replica relays a Decision once on first receipt (reliable-broadcast
// style), so the responder's own relay of any instance >= its reported one
// is in the prober's future.
//
// The baseline keeps no WAL: its recovery is purely the in-memory peer
// catch-up (see the fixedseq twin of this file).
package ctab

import (
	"time"

	"repro/internal/app"
	"repro/internal/backend"
	"repro/internal/consensus"
	"repro/internal/proto"
)

const (
	// recoveryProbeTicks is how many ticks a recovering replica waits
	// between catch-up probes.
	recoveryProbeTicks = 4
	// maxRecoveryBuffer bounds the deferred-frame buffer while recovering.
	maxRecoveryBuffer = 1 << 14
	// snapshotEveryDeliveries is how often the catch-up base state is
	// compacted into a machine snapshot (when the machine supports it).
	snapshotEveryDeliveries = 256
)

// deferredFrame is one consensus frame a recovering replica set aside.
type deferredFrame struct {
	from proto.NodeID
	kind proto.Kind
	body []byte // owned copy
}

// initRecovery wires the durable surface and, for a restarted replica,
// enters catch-up mode. Called from NewServer.
func (s *Server) initRecovery() {
	if d, ok := s.cfg.Machine.(app.Durable); ok {
		s.durable = d
	}
	if !s.cfg.Recovering {
		return
	}
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Restarted(s.cfg.ID)
	}
	if s.n > 1 {
		s.recovering = true
		s.catchupTick = recoveryProbeTicks // first tick probes immediately
		return
	}
	s.statRecoveries.Add(1)
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Recovered(s.cfg.ID, s.next, s.pos)
	}
}

// handleRecovering is handleMessage while catching up.
func (s *Server) handleRecovering(from proto.NodeID, kind proto.Kind, body []byte, now time.Time) {
	switch kind {
	case proto.KindHeartbeat:
		s.cfg.Detector.Observe(from, now)
	case proto.KindCatchupResp:
		s.handleCatchupResp(from, body)
	case proto.KindRead:
		s.statReadRefused.Add(1)
	case proto.KindEstimate, proto.KindPropose, proto.KindAck, proto.KindDecide:
		// The body aliases a pooled inbound frame; keep an owned copy.
		if len(s.recoveryBuf) < maxRecoveryBuffer {
			s.recoveryBuf = append(s.recoveryBuf, deferredFrame{
				from: from,
				kind: kind,
				body: append([]byte(nil), body...),
			})
		}
	default:
		// Raw requests re-arrive inside decided batches (decisions carry
		// full payloads); everything else is droppable while catching up.
	}
}

// handleCatchupReq answers a recovering peer's probe — only between batches
// (see the package comment for why).
func (s *Server) handleCatchupReq(from proto.NodeID, body []byte) {
	req, err := proto.UnmarshalCatchupReq(body)
	if err != nil {
		return
	}
	resp := proto.CatchupResp{CurEpoch: s.next, InPhase2: s.running, Pos: s.ds.Pos, FirstPos: s.ds.Pos}
	if !s.running {
		snap, firstPos, entries := s.ds.Respond(req.HavePos)
		resp.Snap, resp.FirstPos, resp.Entries = snap, firstPos, entries
		if len(snap) > 0 || len(entries) > 0 {
			s.statCatchup.Add(1)
		}
	}
	s.send(from, proto.MarshalCatchupResp(s.cfg.GroupID, resp))
}

// handleCatchupResp adopts a between-batches peer's state, then replays the
// deferred consensus frames.
func (s *Server) handleCatchupResp(from proto.NodeID, body []byte) {
	_ = from
	if !s.recovering {
		return
	}
	resp, err := proto.UnmarshalCatchupResp(body)
	if err != nil || resp.InPhase2 {
		return
	}
	// Validate the response's shape before mutating anything.
	useSnap := len(resp.Snap) > 0
	var blob backend.SnapshotBlob
	if useSnap {
		if blob, err = backend.DecodeSnapshotBlob(resp.Snap); err != nil || blob.Pos != resp.FirstPos || s.durable == nil {
			return
		}
	} else if resp.FirstPos != s.pos {
		return
	}
	if resp.Pos != resp.FirstPos+uint64(len(resp.Entries)) {
		return
	}

	if useSnap {
		if s.durable.Restore(blob.Image) != nil {
			return
		}
		s.pos = blob.Pos
		s.delivered = make(map[proto.RequestID]struct{}, len(blob.Delivered))
		for _, id := range blob.Delivered {
			s.delivered[id] = struct{}{}
		}
		s.ds.SnapBlob = append([]byte(nil), resp.Snap...)
		s.ds.SnapPos = blob.Pos
		s.ds.Tail = s.ds.Tail[:0]
		s.ds.Pos = blob.Pos
	}
	for _, e := range resp.Entries {
		s.delivered[e.ID] = struct{}{}
		s.cfg.Machine.Apply(e.Cmd)
		s.pos++
		s.ds.Append(e)
	}
	s.next = resp.CurEpoch
	s.ds.Epoch = resp.CurEpoch
	s.recovering = false
	s.statRecoveries.Add(1)
	if rt, ok := s.tracer.(backend.RecoveryTracer); ok {
		rt.Recovered(s.cfg.ID, s.next, s.pos)
	}

	// Replay the deferred consensus frames exactly as handleMessage would
	// route them: instances below the adopted one are stale and drop out.
	buf := s.recoveryBuf
	s.recoveryBuf = nil
	for _, f := range buf {
		k, err := consensus.InstanceOf(f.body)
		if err != nil || k < s.next {
			continue
		}
		_ = s.instance(k).OnMessage(f.from, f.kind, f.body)
		if k == s.next && !s.running {
			s.startBatch()
		}
	}
	s.maybeStartBatch()
}

// probeCatchup broadcasts a catch-up probe every few ticks while recovering.
func (s *Server) probeCatchup() {
	s.catchupTick++
	if s.catchupTick < recoveryProbeTicks {
		return
	}
	s.catchupTick = 0
	probe := proto.MarshalCatchupReq(s.cfg.GroupID, proto.CatchupReq{HavePos: s.pos})
	for _, p := range s.cfg.Group {
		if p != s.cfg.ID {
			s.send(p, probe)
		}
	}
}

// maybeSnapshot compacts the catch-up tail into a machine snapshot once it
// has grown past the cadence. Called at batch boundaries — the delivered
// prefix is never rolled back, so any such boundary is a valid snapshot
// point.
func (s *Server) maybeSnapshot() {
	if s.durable == nil || s.pos-s.ds.SnapPos < snapshotEveryDeliveries {
		return
	}
	img, err := s.durable.Snapshot()
	if err != nil {
		return
	}
	ids := make([]proto.RequestID, 0, len(s.delivered))
	for id := range s.delivered {
		ids = append(ids, id)
	}
	s.ds.SetSnapshot(backend.EncodeSnapshotBlob(backend.SnapshotBlob{
		Epoch:     s.next,
		Pos:       s.pos,
		Delivered: ids,
		Image:     img,
	}))
}
