// Package baseline provides the classic active-replication client used by
// both baseline protocols (the Isis-style fixed-sequencer Atomic Broadcast
// of Section 2.4 and the conservative consensus-based Atomic Broadcast):
// the client sends its request to all replicas and adopts the FIRST reply
// (Section 2.1: "The client waits only for the first reply").
//
// This first-reply rule is precisely what makes the fixed-sequencer protocol
// externally inconsistent in the Figure 1(b) scenario — and what the OAR
// weight-quorum client (Figure 5) fixes.
package baseline

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/transport"
)

// ClientConfig configures a first-reply client.
type ClientConfig struct {
	// ID is the client's node ID (proto.ClientID(i)).
	ID proto.NodeID
	// Group is the server group Π.
	Group []proto.NodeID
	// Node is the client's transport endpoint.
	Node transport.Node
	// Tracer records Issue/Adopt events (nil disables tracing).
	Tracer core.Tracer
}

// Client is a classic active-replication client: multicast to all, adopt the
// first reply. Safe for concurrent Invokes.
type Client struct {
	cfg    ClientConfig
	tracer core.Tracer

	mu      sync.Mutex
	nextSeq uint64
	pending map[proto.RequestID]chan proto.Reply

	done chan struct{}
	stop context.CancelFunc
}

// NewClient validates cfg and creates a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Node == nil || len(cfg.Group) == 0 {
		return nil, fmt.Errorf("baseline: Node and Group are required")
	}
	if !cfg.ID.IsClient() {
		return nil, fmt.Errorf("baseline: %v is not a client ID", cfg.ID)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = core.NopTracer()
	}
	return &Client{
		cfg:     cfg,
		tracer:  cfg.Tracer,
		pending: make(map[proto.RequestID]chan proto.Reply),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the reply-dispatch loop.
func (c *Client) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.loop(ctx)
}

// Stop terminates the dispatch loop.
func (c *Client) Stop() {
	if c.stop != nil {
		c.stop()
	}
	<-c.done
}

func (c *Client) loop(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-c.cfg.Node.Recv():
			if !ok {
				return
			}
			kind, _, body, err := proto.Unmarshal(m.Payload)
			if err != nil || kind != proto.KindReply {
				continue
			}
			reply, err := proto.UnmarshalReply(body)
			if err != nil {
				continue
			}
			c.onReply(reply)
		}
	}
}

func (c *Client) onReply(reply proto.Reply) {
	c.mu.Lock()
	ch, ok := c.pending[reply.Req]
	if ok {
		delete(c.pending, reply.Req) // first reply wins; the rest are dropped
	}
	c.mu.Unlock()
	if ok {
		ch <- reply
		c.tracer.Adopt(c.cfg.ID, reply.Req, reply)
	}
}

// Invoke sends cmd to all replicas and returns the first reply.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	ch := make(chan proto.Reply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.tracer.Issue(c.cfg.ID, id, cmd)
	payload := proto.MarshalRequest(proto.Request{ID: id, Cmd: cmd})
	for _, p := range c.cfg.Group {
		_ = c.cfg.Node.Send(p, payload)
	}

	select {
	case reply := <-ch:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("baseline: invoke %v: %w", id, ctx.Err())
	}
}
