// Package baseline provides the classic active-replication client used by
// both baseline protocols (the Isis-style fixed-sequencer Atomic Broadcast
// of Section 2.4 and the conservative consensus-based Atomic Broadcast):
// the client sends its request to all replicas and adopts the FIRST reply
// (Section 2.1: "The client waits only for the first reply").
//
// This first-reply rule is precisely what makes the fixed-sequencer protocol
// externally inconsistent in the Figure 1(b) scenario — and what the OAR
// weight-quorum client (Figure 5) fixes.
//
// The client rides the same transport-batching layer as the OAR client:
// concurrent Invokes are coalesced per server into proto.Batch frames by a
// sender loop, replies arrive batched and are dispatched per frame, and all
// traffic is tagged with the client's ordering group — so the baselines are
// measured under the transport the optimistic hot path actually uses.
package baseline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/proto"
	"repro/internal/transport"
	"repro/internal/tune"
)

// ClientConfig configures a first-reply client.
type ClientConfig struct {
	// ID is the client's node ID (proto.ClientID(i)).
	ID proto.NodeID
	// Group is the server group Π.
	Group []proto.NodeID
	// GroupID is the ordering group this client talks to. Requests carry it
	// in their identity, outgoing frames are tagged with it, and replies
	// tagged with a different group are dropped. Zero is the single-group
	// system.
	GroupID proto.GroupID
	// Node is the client's transport endpoint.
	Node transport.Node
	// Tracer records Issue/Adopt events (nil disables tracing).
	Tracer backend.Tracer
	// Unbatched disables the send-coalescing sender loop: each request copy
	// goes out as its own frame from the invoking goroutine.
	Unbatched bool
	// AutoTune gives the sender loop a closed-loop hold-window controller
	// (internal/tune): under load outbound frames are held up to the tuned
	// window to coalesce more request copies per frame; at idle the window
	// collapses to zero. Ignored when Unbatched.
	AutoTune bool
}

// Client is a classic active-replication client: multicast to all, adopt the
// first reply. Safe for concurrent Invokes.
type Client struct {
	cfg    ClientConfig
	tracer backend.Tracer

	mu      sync.Mutex
	nextSeq uint64
	pending map[proto.RequestID]chan proto.Reply
	// reads tracks outstanding fast-path reads, which — unlike first-reply
	// writes — accumulate replies under the shared majority-validated
	// adoption rule. highWater is the largest position this client adopted
	// at; fast-path read replies from shorter prefixes are discarded, making
	// reads monotonic and read-your-writes.
	reads     map[proto.RequestID]*readCall
	highWater uint64

	// sendCh feeds the coalescing sender loop (nil when cfg.Unbatched).
	sendCh chan sendJob

	done       chan struct{}
	senderDone chan struct{} // closed immediately when unbatched
	stop       context.CancelFunc
	stopOnce   sync.Once
	stopped    chan struct{} // closed by Stop; unblocks enqueues
}

// sendJob is one frame bound for one server.
type sendJob struct {
	to      proto.NodeID
	payload []byte
}

// readCall is one outstanding fast-path read.
type readCall struct {
	rq      *backend.ReadQuorum
	result  chan proto.Reply // buffered(1)
	adopted bool
	giveUp  chan struct{} // closed once every replica answered without adoption
	gaveUp  bool
}

// NewClient validates cfg and creates a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Node == nil || len(cfg.Group) == 0 {
		return nil, fmt.Errorf("baseline: Node and Group are required")
	}
	if !cfg.ID.IsClient() {
		return nil, fmt.Errorf("baseline: %v is not a client ID", cfg.ID)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = backend.NopTracer()
	}
	c := &Client{
		cfg:        cfg,
		tracer:     cfg.Tracer,
		pending:    make(map[proto.RequestID]chan proto.Reply),
		reads:      make(map[proto.RequestID]*readCall),
		done:       make(chan struct{}),
		senderDone: make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	if !cfg.Unbatched {
		c.sendCh = make(chan sendJob, 256)
	}
	return c, nil
}

// Start launches the reply-dispatch loop (and the batching sender loop).
func (c *Client) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.loop(ctx)
	if c.sendCh != nil {
		go c.sendLoop(ctx)
	} else {
		close(c.senderDone)
	}
}

// Stop terminates the dispatch and sender loops and waits for them to exit.
func (c *Client) Stop() {
	if c.stop != nil {
		c.stop()
	}
	c.stopOnce.Do(func() { close(c.stopped) })
	<-c.done
	<-c.senderDone
}

// enqueue hands one outbound frame to the sender loop. After Stop the frame
// is dropped — outstanding Invokes are failing with their contexts anyway.
func (c *Client) enqueue(to proto.NodeID, payload []byte) {
	select {
	case c.sendCh <- sendJob{to: to, payload: payload}:
	case <-c.stopped:
	}
}

// flushSpins and maxDrain parameterize transport.DrainLinger exactly as in
// the OAR client's sender loop: linger a couple of scheduler yields over an
// empty queue so concurrent Invokes land in the same round, but never let a
// flooded queue starve the flush.
const (
	flushSpins = 2
	maxDrain   = 1024
)

// sendLoop drains queued frames and flushes them per destination, coalescing
// the sends of concurrent Invokes into one frame per server per round. With
// AutoTune the batcher may additionally hold frames across rounds; the drain
// timer bounds any hold at about a tick when no further Invokes arrive.
func (c *Client) sendLoop(ctx context.Context) {
	defer close(c.senderDone)
	var opts transport.BatcherOptions
	if c.cfg.AutoTune {
		opts.Tuner = tune.New(tune.Config{})
	}
	out := transport.NewBatcherWith(c.cfg.Node, c.cfg.GroupID, opts)
	defer out.Close()
	drain := time.NewTimer(time.Hour)
	if !drain.Stop() {
		<-drain.C
	}
	armed := false
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-c.sendCh:
			out.Add(job.to, job.payload)
			transport.DrainLinger(c.sendCh, flushSpins, maxDrain-1, func(j sendJob) {
				out.Add(j.to, j.payload)
			})
			out.Flush()
		case <-drain.C:
			armed = false
			out.Flush()
		}
		if !armed && out.Pending() > 0 {
			drain.Reset(backend.DefaultTickInterval)
			armed = true
		}
	}
}

func (c *Client) loop(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-c.cfg.Node.Recv():
			if !ok {
				return
			}
			// Servers coalesce the replies of one delivery round into a
			// proto.Batch frame; expand it (a non-batch message passes
			// through unchanged) and dispatch every inner reply. The decoded
			// results alias the frame; onReply clones what it hands to the
			// invoking goroutine, so the frame's pooled buffer is recycled
			// as soon as dispatch returns.
			msgs, _ := transport.ExpandBatch(m)
			for _, inner := range msgs {
				kind, group, body, err := proto.Unmarshal(inner.Payload)
				if err != nil || kind != proto.KindReply || group != c.cfg.GroupID {
					continue
				}
				reply, err := proto.UnmarshalReply(body)
				if err != nil {
					continue
				}
				c.onReply(reply)
			}
			m.Release()
		}
	}
}

func (c *Client) onReply(reply proto.Reply) {
	c.mu.Lock()
	if rc, isRead := c.reads[reply.Req]; isRead {
		c.onReadReplyLocked(rc, reply)
		c.mu.Unlock()
		return
	}
	ch, ok := c.pending[reply.Req]
	if ok {
		delete(c.pending, reply.Req) // first reply wins; the rest are dropped
		if reply.Pos > c.highWater {
			c.highWater = reply.Pos
		}
	}
	c.mu.Unlock()
	if ok {
		// The adopted reply outlives the inbound frame it was decoded from:
		// clone its result before handing it over (copy-on-retain).
		reply = reply.Clone()
		ch <- reply
		c.tracer.Adopt(c.cfg.ID, reply.Req, reply)
	}
}

// onReadReplyLocked feeds a fast-path read reply through the shared
// majority-validated adoption rule (backend.ReadQuorum): unlike the
// first-reply write rule, a read is only adopted once a majority of the
// group has answered at a compatible prefix. Stale-prefix replies (below
// the client's high-water mark) are discarded but still counted, so an
// unadoptable read falls back instead of hanging. Caller holds c.mu.
func (c *Client) onReadReplyLocked(rc *readCall, reply proto.Reply) {
	defer func() {
		if !rc.adopted && !rc.gaveUp && rc.rq.AllAnswered() {
			rc.gaveUp = true
			close(rc.giveUp)
		}
	}()
	if rc.adopted {
		return
	}
	if reply.Pos < c.highWater {
		rc.rq.Answer(reply)
		return // stale prefix: predates this client's last adopted operation
	}
	best, ok := rc.rq.Offer(reply.Clone(), c.highWater)
	if !ok {
		return
	}
	rc.adopted = true
	rc.result <- best
	delete(c.reads, reply.Req)
	if best.Pos > c.highWater {
		c.highWater = best.Pos
	}
	c.tracer.ReadAdopt(c.cfg.ID, reply.Req, best)
}

// Invoke sends cmd to all replicas and returns the first reply.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Group: c.cfg.GroupID, Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	ch := make(chan proto.Reply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.tracer.Issue(c.cfg.ID, id, cmd)
	payload := proto.MarshalRequest(proto.Request{ID: id, Cmd: cmd})
	for _, p := range c.cfg.Group {
		if c.sendCh != nil {
			c.enqueue(p, payload)
		} else {
			_ = c.cfg.Node.Send(p, payload)
		}
	}

	select {
	case reply := <-ch:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("baseline: invoke %v: %w", id, ctx.Err())
	}
}

// readFallbackTimeout bounds how long a fast-path read waits for an
// adoptable majority before re-issuing on the ordered path; the
// all-answered-without-adoption case falls back immediately.
const readFallbackTimeout = 64 * backend.DefaultTickInterval

// InvokeRead performs a read-only request on the fast path: the command goes
// directly to every replica as a KindRead frame, bypassing the protocol's
// ordering machinery, and each replica that can answers inline from its
// current prefix. The reply is adopted under the shared majority-validated
// rule — stricter than the baselines' first-reply write rule, because a
// single replica's unordered snapshot carries no ordering evidence at all.
// Reads that cannot be adopted fall back to a fresh ordered Invoke (safe:
// the fast-path attempt had no effect on any replica).
func (c *Client) InvokeRead(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Group: c.cfg.GroupID, Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	rc := &readCall{
		rq:     backend.NewReadQuorum(len(c.cfg.Group)),
		result: make(chan proto.Reply, 1),
		giveUp: make(chan struct{}),
	}
	c.reads[id] = rc
	c.mu.Unlock()

	// One owned frame shared across every destination: sent payloads are
	// immutable, and the batching sender copies on Add anyway.
	frame := proto.MarshalRead(proto.Request{ID: id, Cmd: cmd, ReadOnly: true})
	for _, p := range c.cfg.Group {
		if c.sendCh != nil {
			c.enqueue(p, frame)
		} else {
			_ = c.cfg.Node.Send(p, frame)
		}
	}

	timer := time.NewTimer(readFallbackTimeout)
	defer timer.Stop()
	select {
	case reply := <-rc.result:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.reads, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("baseline: read %v: %w", id, ctx.Err())
	case <-rc.giveUp:
	case <-timer.C:
	}

	// Fall back to the ordered path. Retire the fast-path attempt first; an
	// adoption that slipped in before the lock sits in the buffered result
	// channel.
	c.mu.Lock()
	delete(c.reads, id)
	c.mu.Unlock()
	select {
	case reply := <-rc.result:
		return reply, nil
	default:
	}
	return c.Invoke(ctx, cmd)
}
