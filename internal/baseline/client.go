// Package baseline provides the classic active-replication client used by
// both baseline protocols (the Isis-style fixed-sequencer Atomic Broadcast
// of Section 2.4 and the conservative consensus-based Atomic Broadcast):
// the client sends its request to all replicas and adopts the FIRST reply
// (Section 2.1: "The client waits only for the first reply").
//
// This first-reply rule is precisely what makes the fixed-sequencer protocol
// externally inconsistent in the Figure 1(b) scenario — and what the OAR
// weight-quorum client (Figure 5) fixes.
//
// The client rides the same transport-batching layer as the OAR client:
// concurrent Invokes are coalesced per server into proto.Batch frames by a
// sender loop, replies arrive batched and are dispatched per frame, and all
// traffic is tagged with the client's ordering group — so the baselines are
// measured under the transport the optimistic hot path actually uses.
package baseline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/proto"
	"repro/internal/transport"
	"repro/internal/tune"
)

// ClientConfig configures a first-reply client.
type ClientConfig struct {
	// ID is the client's node ID (proto.ClientID(i)).
	ID proto.NodeID
	// Group is the server group Π.
	Group []proto.NodeID
	// GroupID is the ordering group this client talks to. Requests carry it
	// in their identity, outgoing frames are tagged with it, and replies
	// tagged with a different group are dropped. Zero is the single-group
	// system.
	GroupID proto.GroupID
	// Node is the client's transport endpoint.
	Node transport.Node
	// Tracer records Issue/Adopt events (nil disables tracing).
	Tracer backend.Tracer
	// Unbatched disables the send-coalescing sender loop: each request copy
	// goes out as its own frame from the invoking goroutine.
	Unbatched bool
	// AutoTune gives the sender loop a closed-loop hold-window controller
	// (internal/tune): under load outbound frames are held up to the tuned
	// window to coalesce more request copies per frame; at idle the window
	// collapses to zero. Ignored when Unbatched.
	AutoTune bool
}

// Client is a classic active-replication client: multicast to all, adopt the
// first reply. Safe for concurrent Invokes.
type Client struct {
	cfg    ClientConfig
	tracer backend.Tracer

	mu      sync.Mutex
	nextSeq uint64
	pending map[proto.RequestID]chan proto.Reply

	// sendCh feeds the coalescing sender loop (nil when cfg.Unbatched).
	sendCh chan sendJob

	done       chan struct{}
	senderDone chan struct{} // closed immediately when unbatched
	stop       context.CancelFunc
	stopOnce   sync.Once
	stopped    chan struct{} // closed by Stop; unblocks enqueues
}

// sendJob is one frame bound for one server.
type sendJob struct {
	to      proto.NodeID
	payload []byte
}

// NewClient validates cfg and creates a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Node == nil || len(cfg.Group) == 0 {
		return nil, fmt.Errorf("baseline: Node and Group are required")
	}
	if !cfg.ID.IsClient() {
		return nil, fmt.Errorf("baseline: %v is not a client ID", cfg.ID)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = backend.NopTracer()
	}
	c := &Client{
		cfg:        cfg,
		tracer:     cfg.Tracer,
		pending:    make(map[proto.RequestID]chan proto.Reply),
		done:       make(chan struct{}),
		senderDone: make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	if !cfg.Unbatched {
		c.sendCh = make(chan sendJob, 256)
	}
	return c, nil
}

// Start launches the reply-dispatch loop (and the batching sender loop).
func (c *Client) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.loop(ctx)
	if c.sendCh != nil {
		go c.sendLoop(ctx)
	} else {
		close(c.senderDone)
	}
}

// Stop terminates the dispatch and sender loops and waits for them to exit.
func (c *Client) Stop() {
	if c.stop != nil {
		c.stop()
	}
	c.stopOnce.Do(func() { close(c.stopped) })
	<-c.done
	<-c.senderDone
}

// enqueue hands one outbound frame to the sender loop. After Stop the frame
// is dropped — outstanding Invokes are failing with their contexts anyway.
func (c *Client) enqueue(to proto.NodeID, payload []byte) {
	select {
	case c.sendCh <- sendJob{to: to, payload: payload}:
	case <-c.stopped:
	}
}

// flushSpins and maxDrain parameterize transport.DrainLinger exactly as in
// the OAR client's sender loop: linger a couple of scheduler yields over an
// empty queue so concurrent Invokes land in the same round, but never let a
// flooded queue starve the flush.
const (
	flushSpins = 2
	maxDrain   = 1024
)

// sendLoop drains queued frames and flushes them per destination, coalescing
// the sends of concurrent Invokes into one frame per server per round. With
// AutoTune the batcher may additionally hold frames across rounds; the drain
// timer bounds any hold at about a tick when no further Invokes arrive.
func (c *Client) sendLoop(ctx context.Context) {
	defer close(c.senderDone)
	var opts transport.BatcherOptions
	if c.cfg.AutoTune {
		opts.Tuner = tune.New(tune.Config{})
	}
	out := transport.NewBatcherWith(c.cfg.Node, c.cfg.GroupID, opts)
	defer out.Close()
	drain := time.NewTimer(time.Hour)
	if !drain.Stop() {
		<-drain.C
	}
	armed := false
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-c.sendCh:
			out.Add(job.to, job.payload)
			transport.DrainLinger(c.sendCh, flushSpins, maxDrain-1, func(j sendJob) {
				out.Add(j.to, j.payload)
			})
			out.Flush()
		case <-drain.C:
			armed = false
			out.Flush()
		}
		if !armed && out.Pending() > 0 {
			drain.Reset(backend.DefaultTickInterval)
			armed = true
		}
	}
}

func (c *Client) loop(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-c.cfg.Node.Recv():
			if !ok {
				return
			}
			// Servers coalesce the replies of one delivery round into a
			// proto.Batch frame; expand it (a non-batch message passes
			// through unchanged) and dispatch every inner reply. The decoded
			// results alias the frame; onReply clones what it hands to the
			// invoking goroutine, so the frame's pooled buffer is recycled
			// as soon as dispatch returns.
			msgs, _ := transport.ExpandBatch(m)
			for _, inner := range msgs {
				kind, group, body, err := proto.Unmarshal(inner.Payload)
				if err != nil || kind != proto.KindReply || group != c.cfg.GroupID {
					continue
				}
				reply, err := proto.UnmarshalReply(body)
				if err != nil {
					continue
				}
				c.onReply(reply)
			}
			m.Release()
		}
	}
}

func (c *Client) onReply(reply proto.Reply) {
	c.mu.Lock()
	ch, ok := c.pending[reply.Req]
	if ok {
		delete(c.pending, reply.Req) // first reply wins; the rest are dropped
	}
	c.mu.Unlock()
	if ok {
		// The adopted reply outlives the inbound frame it was decoded from:
		// clone its result before handing it over (copy-on-retain).
		reply = reply.Clone()
		ch <- reply
		c.tracer.Adopt(c.cfg.ID, reply.Req, reply)
	}
}

// Invoke sends cmd to all replicas and returns the first reply.
func (c *Client) Invoke(ctx context.Context, cmd []byte) (proto.Reply, error) {
	c.mu.Lock()
	id := proto.RequestID{Group: c.cfg.GroupID, Client: c.cfg.ID, Seq: c.nextSeq}
	c.nextSeq++
	ch := make(chan proto.Reply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.tracer.Issue(c.cfg.ID, id, cmd)
	payload := proto.MarshalRequest(proto.Request{ID: id, Cmd: cmd})
	for _, p := range c.cfg.Group {
		if c.sendCh != nil {
			c.enqueue(p, payload)
		} else {
			_ = c.cfg.Node.Send(p, payload)
		}
	}

	select {
	case reply := <-ch:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Reply{}, fmt.Errorf("baseline: invoke %v: %w", id, ctx.Err())
	}
}
