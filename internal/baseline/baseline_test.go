package baseline_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/memnet"
	"repro/internal/proto"
)

const testTimeout = 10 * time.Second

func mustCluster(t *testing.T, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func invoke(t *testing.T, cli cluster.Invoker, cmd string) proto.Reply {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	reply, err := cli.Invoke(ctx, []byte(cmd))
	if err != nil {
		t.Fatalf("invoke %q: %v", cmd, err)
	}
	return reply
}

func TestFixedSeqFailureFree(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{Protocol: cluster.FixedSeq, N: 3, FD: cluster.FDNever, Tracer: ck})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		reply := invoke(t, cli, fmt.Sprintf("m%d", i))
		if reply.Pos != uint64(i) {
			t.Fatalf("pos = %d, want %d", reply.Pos, i)
		}
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.DeliveredTotal() == 30 }) {
		t.Fatalf("delivered = %d, want 30", c.DeliveredTotal())
	}
	for _, v := range ck.Verify() {
		t.Error(v)
	}
}

func TestFixedSeqFailoverWithoutLoss(t *testing.T) {
	// A benign crash (no in-flight ordering lost) fails over cleanly: this
	// is why the protocol was considered good enough in practice.
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		Protocol: cluster.FixedSeq, N: 3, Tracer: ck,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")
	invoke(t, cli, "m2")
	if !cluster.WaitUntil(testTimeout, func() bool { return c.DeliveredTotal() == 6 }) {
		t.Fatal("pre-crash deliveries incomplete")
	}
	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)
	for i := 3; i <= 6; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	if got := c.ReplicaStats(0, 1).Views; got == 0 {
		t.Error("no view change after sequencer crash")
	}
	for _, v := range ck.Verify() {
		t.Error(v)
	}
}

// TestFixedSeqFigure1bExternalInconsistency reproduces Figure 1(b): the
// sequencer replies to the client and crashes before its ordering message
// reaches the other replicas; the new sequencer orders differently; the
// client has adopted a reply (first-reply rule) that the surviving replicas
// contradict. The trace checker must flag an external inconsistency — this
// is the flaw OAR fixes.
func TestFixedSeqFigure1bExternalInconsistency(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		Protocol: cluster.FixedSeq, N: 3, Tracer: ck,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
		Machine:           "stack",
	})
	c1, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// The stack holds [y] everywhere.
	invoke(t, c1, "push y")
	if !cluster.WaitUntil(testTimeout, func() bool { return c.DeliveredTotal() == 3 }) {
		t.Fatal("push y incomplete")
	}

	// The sequencer's next ordering messages are lost (crash in flight), and
	// c1 stops hearing from anyone but the sequencer.
	c.Net(0).SetFilter(func(from, to proto.NodeID, payload []byte) memnet.Verdict {
		if from == proto.NodeID(0) && len(payload) > 0 && proto.Kind(payload[0]) == proto.KindSeqOrder {
			return memnet.Drop
		}
		return memnet.Deliver
	})
	// c1's "pop" reaches only the sequencer p0 (links to p1, p2 blocked).
	c1ID := proto.ClientID(0)
	c.Net(0).Block(c1ID, proto.NodeID(1))
	c.Net(0).Block(c1ID, proto.NodeID(2))

	// Figure 1(b): the sequencer orders (pop; push x), executes pop -> "y",
	// replies to the client... and its ordering message never leaves.
	popReply := invoke(t, c1, "pop")
	if string(popReply.Result) != "y" {
		t.Fatalf("sequencer's pop returned %q, want y", popReply.Result)
	}

	// Now the crash becomes visible; the new sequencer p1 knows only c2's
	// "push x" and orders (push x; ...); after the client links heal, the
	// late "pop" executes at position 3 and returns "x".
	pushReply := invoke(t, c2, "push x")
	_ = pushReply
	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 1).Delivered >= 2 && c.ReplicaStats(0, 2).Delivered >= 2
	}) {
		t.Fatal("survivors did not deliver push x")
	}
	c.Net(0).Unblock(c1ID, proto.NodeID(1))
	c.Net(0).Unblock(c1ID, proto.NodeID(2))
	if !cluster.WaitUntil(testTimeout, func() bool {
		return c.ReplicaStats(0, 1).Delivered >= 3 && c.ReplicaStats(0, 2).Delivered >= 3
	}) {
		t.Fatal("survivors never received the pop")
	}

	// The survivors' stacks agree with each other but contradict the reply
	// the client already adopted: pop returned y to the client, x here.
	violations := ck.Verify()
	var external bool
	for _, v := range violations {
		if v.Property == "prop7 external consistency" {
			external = true
		}
	}
	if !external {
		t.Fatalf("expected an external-inconsistency violation, got %v", violations)
	}
	if got := c.Machine(0, 1).Fingerprint(); got != "" {
		// Stack after (push y; push x; pop) = [y]: survivors' pop returned x.
		if got != "y" {
			t.Fatalf("survivor stack = %q, want y", got)
		}
	}
}

func TestCTabFailureFree(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{Protocol: cluster.CTab, N: 3, FD: cluster.FDNever, Tracer: ck})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		reply := invoke(t, cli, fmt.Sprintf("m%d", i))
		if reply.Pos != uint64(i) {
			t.Fatalf("pos = %d, want %d", reply.Pos, i)
		}
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.DeliveredTotal() == 30 }) {
		t.Fatalf("delivered = %d, want 30", c.DeliveredTotal())
	}
	if got := c.ReplicaStats(0, 0).Batches; got == 0 {
		t.Error("no consensus batches recorded")
	}
	for _, v := range ck.Verify() {
		t.Error(v)
	}
}

func TestCTabConcurrentClients(t *testing.T) {
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{Protocol: cluster.CTab, N: 3, Machine: "kv", Tracer: ck,
		FDTimeout: 50 * time.Millisecond})
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, cli cluster.Invoker) {
			ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
			defer cancel()
			for j := 0; j < 10; j++ {
				if _, err := cli.Invoke(ctx, []byte(fmt.Sprintf("set k%d-%d v", i, j))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, cli)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if !cluster.WaitUntil(testTimeout, func() bool { return c.DeliveredTotal() == 90 }) {
		t.Fatalf("delivered = %d, want 90", c.DeliveredTotal())
	}
	if !cluster.WaitUntil(testTimeout, func() bool {
		ref := c.Machine(0, 0).Fingerprint()
		return ref == c.Machine(0, 1).Fingerprint() && ref == c.Machine(0, 2).Fingerprint()
	}) {
		t.Fatal("ctab replicas diverged")
	}
	for _, v := range ck.Verify() {
		t.Error(v)
	}
}

func TestCTabCoordinatorCrash(t *testing.T) {
	// ctab survives a crash (consensus handles it) — it is slow, not unsafe.
	ck := check.New(3)
	c := mustCluster(t, cluster.Options{
		Protocol: cluster.CTab, N: 3, Tracer: ck,
		FDTimeout:         15 * time.Millisecond,
		HeartbeatInterval: 3 * time.Millisecond,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, cli, "m1")
	ck.MarkCrashed(proto.NodeID(0))
	c.Crash(0, 0)
	for i := 2; i <= 5; i++ {
		invoke(t, cli, fmt.Sprintf("m%d", i))
	}
	for _, v := range ck.Verify() {
		t.Error(v)
	}
}
