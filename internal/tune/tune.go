// Package tune implements the closed-loop controller behind the AutoTune
// batching option: an AIMD (additive-increase / multiplicative-decrease)
// regulator that continuously adjusts the effective batch window of a
// transport.Batcher between a latency floor and a throughput ceiling.
//
// The controller observes exactly what the batching layer can see about
// itself — the arrival rate of messages entering the batcher, how many
// messages each shipped frame coalesced, and the hold latency distribution
// (time from a destination's first buffered message to the frame actually
// shipping) — and from those signals steers one output, the hold window:
//
//   - Idle (the arrival rate is too low for any window to coalesce anything):
//     multiplicative decrease toward zero, so an idle system flushes
//     immediately and pays no added latency. The window snaps to exactly 0
//     once it falls below one additive step.
//   - Under-coalesced but loaded (frames ship with fewer messages than
//     TargetBatch while the rate could support more): additive increase, one
//     Step per control period, up to MaxWindow — trading a bounded hold for
//     larger frames. Growth requires evidence that arrivals genuinely
//     overlap (the interval averaged at least 2 messages per frame): an
//     aggregate rate can look coalescible while the arrivals actually
//     serialize behind the frames themselves — a closed-loop client cannot
//     send its next request until the held reply ships — and holding a
//     serialized stream buys latency, never coalescing.
//   - Probe failed (the window is open, yet frames still ship
//     near-singleton): collapse to zero, so a workload shift from
//     overlapping to serialized arrivals costs at most one Step of hold
//     until the next control period notices.
//   - Hold latency over budget (the interval's hold p99 exceeds
//     LatencyBudget, e.g. because ticks arrive late under overload):
//     multiplicative decrease, restoring the latency floor fast.
//   - At target (frames already coalesce TargetBatch messages — typically
//     because event-loop round formation batches naturally under
//     saturation): hold steady. The controller deliberately does not grow
//     the window when round formation already achieves the ceiling, so a
//     saturated system keeps the static optimum.
//
// Observe is single-writer (the goroutine owning the batcher) and
// allocation-free: interval state is plain fields and a fixed power-of-two
// bucket array. Window and Snapshot are atomic reads, safe from any
// goroutine — a replica's stats surface polls them while the loop runs.
package tune

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Defaults for Config.
const (
	// DefaultMaxWindow is the throughput-ceiling hold window.
	DefaultMaxWindow = 2 * time.Millisecond
	// DefaultDecideInterval is the control period.
	DefaultDecideInterval = 5 * time.Millisecond
	// DefaultTargetBatch is the messages-per-frame goal; once frames
	// coalesce this many messages, growing the window buys nothing.
	DefaultTargetBatch = 8
)

// Config parameterizes a Controller. The zero value selects the defaults,
// so tune.New(tune.Config{}) is a working controller.
type Config struct {
	// MaxWindow caps the hold window (default DefaultMaxWindow).
	MaxWindow time.Duration
	// Step is the additive-increase increment per control period (default
	// MaxWindow/16).
	Step time.Duration
	// LatencyBudget bounds the observed hold p99: above it the window is
	// halved (default MaxWindow — i.e. only the ceiling itself, plus
	// tick-scheduling slack, limits the hold).
	LatencyBudget time.Duration
	// DecideInterval is how often the control law runs, measured against
	// the timestamps passed to Observe (default DefaultDecideInterval).
	DecideInterval time.Duration
	// TargetBatch is the messages-per-frame goal (default
	// DefaultTargetBatch).
	TargetBatch int
}

func (c Config) withDefaults() Config {
	if c.MaxWindow <= 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.Step <= 0 {
		c.Step = c.MaxWindow / 16
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = c.MaxWindow
	}
	if c.DecideInterval <= 0 {
		c.DecideInterval = DefaultDecideInterval
	}
	if c.TargetBatch <= 0 {
		c.TargetBatch = DefaultTargetBatch
	}
	return c
}

// Controller is the closed-loop batch-window regulator. Create with New.
// Observe must be called from a single goroutine (the batcher's owner);
// Window and Snapshot are safe from any goroutine.
type Controller struct {
	cfg Config

	// window is the control output, read lock-free by the batching layer
	// (and by the ordering layer's flush decision in core).
	window atomic.Int64 // nanoseconds

	// Lifetime counters for the stats surface.
	frames    atomic.Uint64
	msgs      atomic.Uint64
	decisions atomic.Uint64

	// Interval accumulators, owned by the Observe goroutine. holdBuckets is
	// a power-of-two latency histogram: bucket i counts holds in
	// [2^(i-1), 2^i) ns — coarse, but the control law only needs "is the
	// tail over budget", and incrementing a fixed array allocates nothing.
	lastDecide  int64 // unix nanoseconds of the last control step
	intMsgs     uint64
	intFrames   uint64
	holdBuckets [65]uint32
	holdCount   uint64
}

// New creates a controller. The window starts at zero — the latency floor —
// and grows only when observed load shows coalescing headroom.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Window returns the current hold window. Lock-free; safe from any
// goroutine.
func (c *Controller) Window() time.Duration {
	return time.Duration(c.window.Load())
}

// Observe records one shipped frame: it coalesced msgs messages and its
// oldest message waited hold between buffering and shipping (0 when the
// frame shipped in the round it was filled). When a control period has
// elapsed the AIMD step runs inline. Single-writer; allocation-free.
func (c *Controller) Observe(now time.Time, msgs int, hold time.Duration) {
	if msgs <= 0 {
		return
	}
	c.frames.Add(1)
	c.msgs.Add(uint64(msgs))
	c.intFrames++
	c.intMsgs += uint64(msgs)
	if hold > 0 {
		c.holdBuckets[bits.Len64(uint64(hold))]++
		c.holdCount++
	}
	t := now.UnixNano()
	if c.lastDecide == 0 {
		c.lastDecide = t
		return
	}
	if t-c.lastDecide >= int64(c.cfg.DecideInterval) {
		c.decide(t)
	}
}

// decide runs one AIMD step over the interval accumulators and resets them.
func (c *Controller) decide(t int64) {
	elapsed := t - c.lastDecide
	c.lastDecide = t
	rate := float64(c.intMsgs) / float64(elapsed) // messages per nanosecond
	w := c.window.Load()
	step := int64(c.cfg.Step)

	switch {
	case rate*float64(c.cfg.MaxWindow) < float64(c.cfg.TargetBatch):
		// Latency floor: even the maximum window could not coalesce a
		// target batch at this rate, so holding buys nothing. Halve toward
		// zero and snap once below one step.
		w /= 2
		if w < step {
			w = 0
		}
	case c.holdP99() > c.cfg.LatencyBudget:
		// The hold tail blew the budget (late ticks under overload, or a
		// budget tighter than the ceiling): back off multiplicatively.
		w /= 2
		if w < step {
			w = 0
		}
	case w > 0 && c.intMsgs < 2*c.intFrames:
		// The probe failed: the window is open, yet frames still ship
		// near-singleton. The arrival process is serializing behind the held
		// frames (a closed-loop client stalls until its reply ships), so no
		// window can improve coalescing — it only adds latency. Collapse to
		// the floor; the next under-coalesced interval re-probes with one
		// step, bounding the cost of each failed probe to Step, not
		// MaxWindow.
		w = 0
	case float64(c.intMsgs) < float64(c.cfg.TargetBatch)*float64(c.intFrames):
		// Loaded but under-coalesced: frames average fewer than TargetBatch
		// messages, and the rate check above says a bigger window can fix
		// that. Additive increase — but only when the interval shows
		// arrivals genuinely overlapping (at least 2 messages per frame on
		// average, the same threshold the probe-failure case collapses
		// under, so the two cannot limit-cycle): a request-response stream
		// ships its frames near-singleton however fast it runs — each
		// arrival waits for the previous frame's response — and holding it
		// cannot create overlap, only latency. Note the protocol coalesces
		// some messages per request intrinsically (a sequencer's relay and
		// its ordering message share a frame); that raises the average
		// without any cross-request overlap, which is exactly why the bar
		// sits at 2, not just above 1.
		if c.intMsgs >= 2*c.intFrames {
			if w += step; w > int64(c.cfg.MaxWindow) {
				w = int64(c.cfg.MaxWindow)
			}
		}
	default:
		// Frames already coalesce the target (event-loop round formation
		// does this for free under saturation): hold the operating point.
	}

	c.window.Store(w)
	c.decisions.Add(1)
	c.intMsgs, c.intFrames, c.holdCount = 0, 0, 0
	clear(c.holdBuckets[:])
}

// holdP99 returns an upper bound of the interval's 99th-percentile hold
// latency (the power-of-two bucket ceiling), or 0 with no samples.
func (c *Controller) holdP99() time.Duration {
	if c.holdCount == 0 {
		return 0
	}
	tail := c.holdCount / 100 // samples allowed above p99
	var seen uint64
	for i := len(c.holdBuckets) - 1; i >= 0; i-- {
		seen += uint64(c.holdBuckets[i])
		if seen > tail {
			return time.Duration(uint64(1) << i) // bucket upper bound
		}
	}
	return 0
}

// Snapshot is a point-in-time view of the controller, for stats surfaces.
type Snapshot struct {
	// Window is the current hold window (the control output).
	Window time.Duration
	// Frames and Msgs count shipped frames and the messages they carried
	// since the controller was created.
	Frames uint64
	Msgs   uint64
	// Decisions counts completed control periods.
	Decisions uint64
}

// Snapshot reads the controller's stats. Safe from any goroutine.
func (c *Controller) Snapshot() Snapshot {
	return Snapshot{
		Window:    time.Duration(c.window.Load()),
		Frames:    c.frames.Load(),
		Msgs:      c.msgs.Load(),
		Decisions: c.decisions.Load(),
	}
}
